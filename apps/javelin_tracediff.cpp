// javelin_tracediff — golden-trace behavioral regression gate, from the shell.
//
// Replays the golden scenarios (sim/goldens.hpp), projects their traces into
// behavioral snapshots (obs/snapshot.hpp) and compares them against the
// snapshots checked into tests/golden/. A divergence means the runtime's
// *decision sequences* changed — decide outcomes, compile plans, retry/
// breaker behavior, power-down spans — even if every energy total still
// looks plausible. Exit status: 0 identical, 1 divergence, 2 usage/IO error,
// so the tool slots into CI next to javelin_lint.
//
//   javelin_tracediff check [name ...]     replay + compare vs goldens
//   javelin_tracediff --check              alias for `check` (CI spelling)
//   javelin_tracediff record [name ...]    replay + (re)write golden files
//   javelin_tracediff record --all         ... for every scenario
//   javelin_tracediff diff A.snap B.snap   compare two snapshot files
//   javelin_tracediff list                 list scenarios
//   options: --json, --context N, --dir DIR (default: the source tree's
//   tests/golden, overridable with JAVELIN_GOLDEN_DIR)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/snapshot.hpp"
#include "sim/goldens.hpp"
#include "support/error.hpp"

using namespace javelin;

namespace {

#ifndef JAVELIN_GOLDEN_DIR
#define JAVELIN_GOLDEN_DIR "tests/golden"
#endif

struct Options {
  std::string mode;                 // check / record / diff / list
  std::vector<std::string> names;   // scenario names or snapshot paths
  std::string dir = JAVELIN_GOLDEN_DIR;
  bool json = false;
  bool all = false;
  int context = 3;
};

int usage(std::FILE* to) {
  std::fputs(
      "usage: javelin_tracediff <mode> [options]\n"
      "  check [name ...]      replay scenarios, compare vs golden snapshots\n"
      "  --check               alias for `check` over every scenario\n"
      "  record [name|--all]   replay scenarios, write golden snapshots\n"
      "  diff <a> <b>          compare two snapshot files\n"
      "  list                  list golden scenarios\n"
      "options:\n"
      "  --json                machine-readable diff output\n"
      "  --context N           events of context around a divergence (3)\n"
      "  --dir DIR             golden directory (default: " JAVELIN_GOLDEN_DIR
      ",\n"
      "                        or $JAVELIN_GOLDEN_DIR when set)\n",
      to);
  return to == stdout ? 0 : 2;
}

std::string golden_path(const Options& opt, const char* name) {
  return opt.dir + "/" + name + ".snap";
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  std::size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = !std::ferror(f);
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return !(std::fclose(f) != 0 || !ok);
}

/// Replay one scenario and project its trace.
obs::Snapshot replay(const sim::GoldenScenario& s) {
  obs::TraceCollector collector;
  s.run(collector);
  return obs::project(collector, s.name);
}

/// Resolve the scenario set for check/record: explicit names, or all.
int resolve(const Options& opt, std::vector<const sim::GoldenScenario*>* out) {
  if (opt.names.empty() || opt.all) {
    for (const sim::GoldenScenario& s : sim::golden_scenarios())
      out->push_back(&s);
    return 0;
  }
  for (const std::string& name : opt.names) {
    const sim::GoldenScenario* s = sim::find_golden_scenario(name);
    if (!s) {
      std::fprintf(stderr, "javelin_tracediff: unknown scenario '%s'\n",
                   name.c_str());
      return 2;
    }
    out->push_back(s);
  }
  return 0;
}

int run_list() {
  for (const sim::GoldenScenario& s : sim::golden_scenarios())
    std::printf("%-16s %s\n", s.name, s.description);
  return 0;
}

int run_record(const Options& opt) {
  std::vector<const sim::GoldenScenario*> scenarios;
  if (int rc = resolve(opt, &scenarios)) return rc;
  for (const sim::GoldenScenario* s : scenarios) {
    const std::string path = golden_path(opt, s->name);
    const obs::Snapshot snap = replay(*s);
    if (!write_file(path, obs::render(snap))) {
      std::fprintf(stderr, "javelin_tracediff: cannot write %s\n",
                   path.c_str());
      return 2;
    }
    std::size_t events = 0;
    for (const obs::SnapTrack& t : snap.tracks) events += t.events.size();
    std::printf("recorded %s: %zu tracks, %zu events\n", path.c_str(),
                snap.tracks.size(), events);
  }
  return 0;
}

int run_check(const Options& opt) {
  std::vector<const sim::GoldenScenario*> scenarios;
  if (int rc = resolve(opt, &scenarios)) return rc;
  int divergent = 0;
  for (const sim::GoldenScenario* s : scenarios) {
    const std::string path = golden_path(opt, s->name);
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr,
                   "javelin_tracediff: cannot read golden %s "
                   "(run `javelin_tracediff record %s` first)\n",
                   path.c_str(), s->name);
      return 2;
    }
    obs::Snapshot golden;
    try {
      golden = obs::parse(text);
    } catch (const FormatError& e) {
      std::fprintf(stderr, "javelin_tracediff: %s: %s\n", path.c_str(),
                   e.what());
      return 2;
    }
    const obs::Snapshot current = replay(*s);
    const obs::DiffResult d = obs::diff(golden, current, opt.context);
    if (opt.json) {
      std::printf("{\"scenario\": \"%s\", \"diff\": %s}\n", s->name,
                  obs::diff_json(d).c_str());
    } else if (d.identical) {
      std::printf("ok %s (%zu tracks)\n", s->name, current.tracks.size());
    } else {
      std::printf("DIVERGED %s vs %s\n%s\n", s->name, path.c_str(),
                  d.report.c_str());
    }
    if (!d.identical) ++divergent;
  }
  if (divergent)
    std::fprintf(stderr, "javelin_tracediff: %d scenario(s) diverged\n",
                 divergent);
  return divergent ? 1 : 0;
}

int run_diff(const Options& opt) {
  if (opt.names.size() != 2) return usage(stderr);
  obs::Snapshot snaps[2];
  for (int i = 0; i < 2; ++i) {
    std::string text;
    if (!read_file(opt.names[i], &text)) {
      std::fprintf(stderr, "javelin_tracediff: cannot read %s\n",
                   opt.names[i].c_str());
      return 2;
    }
    try {
      snaps[i] = obs::parse(text);
    } catch (const FormatError& e) {
      std::fprintf(stderr, "javelin_tracediff: %s: %s\n",
                   opt.names[i].c_str(), e.what());
      return 2;
    }
  }
  const obs::DiffResult d = obs::diff(snaps[0], snaps[1], opt.context);
  if (opt.json)
    std::printf("%s\n", obs::diff_json(d).c_str());
  else if (d.identical)
    std::printf("identical\n");
  else
    std::printf("%s\n", d.report.c_str());
  return d.identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env = std::getenv("JAVELIN_GOLDEN_DIR"))
    if (*env) opt.dir = env;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") {
      opt.json = true;
    } else if (a == "--all") {
      opt.all = true;
    } else if (a == "--context") {
      if (i + 1 >= args.size()) return usage(stderr);
      opt.context = std::atoi(args[++i].c_str());
      if (opt.context < 0) return usage(stderr);
    } else if (a == "--dir") {
      if (i + 1 >= args.size()) return usage(stderr);
      opt.dir = args[++i];
    } else if (a == "--check") {
      opt.mode = "check";
    } else if (a == "--help" || a == "-h") {
      return usage(stdout);
    } else if (opt.mode.empty()) {
      opt.mode = a;
    } else {
      opt.names.push_back(a);
    }
  }

  if (opt.mode == "check") return run_check(opt);
  if (opt.mode == "record") return run_record(opt);
  if (opt.mode == "diff") return run_diff(opt);
  if (opt.mode == "list") return run_list();
  return usage(opt.mode.empty() ? stderr : stderr);
}
