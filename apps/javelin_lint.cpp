// javelin_lint — static analysis over mini-JVM bytecode, from the shell.
//
// Runs the src/analysis passes (bytecode lint, static cost estimation,
// offload safety) over the shipped benchmark applications, exactly as the
// runtime would at class-load time: every class is verified first, then
// analyzed. Diagnostics print in deterministic source order; exit status is
// nonzero iff any error-severity diagnostic fired, so the tool slots into CI
// as a quality gate for guest bytecode.
//
//   javelin_lint                 lint every shipped app
//   javelin_lint sort db         lint selected apps
//   javelin_lint --json          machine-readable output
//   javelin_lint --analysis      also print per-method cost + safety verdicts
//   javelin_lint --bounds        add the interval-backed checks (always-
//                                true/false branch, guaranteed out-of-bounds,
//                                may-wrap arithmetic); --verbose additionally
//                                prints the cannot-overflow proofs
//   javelin_lint --self-check    prove the checks fire (seeded defects) and
//                                that every shipped app lints clean — with
//                                and without --bounds
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/lint.hpp"
#include "apps/app.hpp"
#include "jvm/verifier.hpp"

using namespace javelin;

namespace {

struct Options {
  bool json = false;
  bool self_check = false;
  bool analysis = false;
  bool bounds = false;
  bool verbose = false;
  std::vector<std::string> apps;
};

int usage(std::FILE* to) {
  std::fputs(
      "usage: javelin_lint [--json] [--analysis] [--bounds] [--verbose] "
      "[--self-check] [app ...]\n"
      "  apps: fe pf mf hpf ed sort jess db (default: all)\n",
      to);
  return to == stdout ? 0 : 2;
}

/// One linted application: all class files verified + analyzed.
struct AppReport {
  std::string app;
  std::vector<analysis::MethodAnalysis> methods;
};

/// Verify then analyze every class of `classes` (the class-load-time
/// sequence). Throws jvm::VerifyError on malformed bytecode.
std::vector<analysis::MethodAnalysis> analyze_classes(
    std::vector<jvm::ClassFile> classes, bool bounds = false,
    bool verbose = false) {
  // Verification fills in max_stack and rejects malformed code; the analysis
  // passes assume it ran (they tolerate, but do not re-check, odd shapes).
  std::vector<const jvm::ClassFile*> deps;
  deps.reserve(classes.size());
  for (const jvm::ClassFile& cf : classes) deps.push_back(&cf);
  for (jvm::ClassFile& cf : classes) jvm::verify_class(cf, deps);

  jvm::ClassSetResolver resolver;
  for (const jvm::ClassFile& cf : classes) resolver.add(&cf);
  analysis::Analyzer analyzer(resolver);
  std::vector<analysis::MethodAnalysis> out;
  for (const jvm::ClassFile& cf : classes)
    for (analysis::MethodAnalysis& m : analyzer.analyze_class(cf))
      out.push_back(std::move(m));
  if (bounds) {
    // The interval-backed checks ride on the same report: diagnostics merge
    // into their method's list, keeping the stable (pc, code) order.
    for (const jvm::ClassFile& cf : classes)
      for (const jvm::MethodInfo& mi : cf.methods) {
        std::vector<analysis::Diagnostic> ds;
        analysis::lint_bounds(cf, mi, &resolver, ds, verbose);
        if (ds.empty()) continue;
        for (analysis::MethodAnalysis& m : out)
          if (m.method == &mi) {
            m.diagnostics.insert(m.diagnostics.end(), ds.begin(), ds.end());
            analysis::sort_diagnostics(m.diagnostics);
            break;
          }
      }
  }
  return out;
}

void count_diagnostics(const std::vector<AppReport>& reports, int* errors,
                       int* warnings, int* notes) {
  for (const AppReport& r : reports)
    for (const analysis::MethodAnalysis& m : r.methods)
      for (const analysis::Diagnostic& d : m.diagnostics) {
        if (d.severity == analysis::Severity::kError) ++*errors;
        else if (d.severity == analysis::Severity::kWarning) ++*warnings;
        else ++*notes;
      }
}

void print_text(const std::vector<AppReport>& reports, bool with_analysis) {
  int methods = 0;
  for (const AppReport& r : reports) {
    for (const analysis::MethodAnalysis& m : r.methods) {
      ++methods;
      if (with_analysis) {
        std::printf(
            "%s: %s: cost %.3e J, %d blocks, %d insns, loop depth %d%s, %s\n",
            r.app.c_str(), m.qualified_name.c_str(), m.cost.energy_j,
            m.cost.num_blocks, m.cost.num_insns, m.cost.max_loop_depth,
            m.cost.recursive ? " (recursive)" : "",
            analysis::safety_verdict(m.safety).c_str());
      }
      for (const analysis::Diagnostic& d : m.diagnostics)
        std::printf("%s: %s.%s @%d: %s [%s] %s\n", r.app.c_str(),
                    d.cls.c_str(), d.method.c_str(), d.pc,
                    analysis::severity_name(d.severity), d.code.c_str(),
                    d.message.c_str());
    }
  }
  int errors = 0, warnings = 0, notes = 0;
  count_diagnostics(reports, &errors, &warnings, &notes);
  std::printf("%d method%s linted: %d error%s, %d warning%s, %d note%s\n",
              methods, methods == 1 ? "" : "s", errors,
              errors == 1 ? "" : "s", warnings, warnings == 1 ? "" : "s",
              notes, notes == 1 ? "" : "s");
}

void print_json(const std::vector<AppReport>& reports, bool with_analysis) {
  std::printf("{\"diagnostics\": [");
  bool first = true;
  for (const AppReport& r : reports)
    for (const analysis::MethodAnalysis& m : r.methods)
      for (const analysis::Diagnostic& d : m.diagnostics) {
        std::printf(
            "%s\n  {\"app\": \"%s\", \"class\": \"%s\", \"method\": \"%s\", "
            "\"pc\": %d, \"severity\": \"%s\", \"code\": \"%s\", "
            "\"message\": \"%s\"}",
            first ? "" : ",", r.app.c_str(), d.cls.c_str(), d.method.c_str(),
            d.pc, analysis::severity_name(d.severity), d.code.c_str(),
            d.message.c_str());
        first = false;
      }
  std::printf("\n]");
  if (with_analysis) {
    std::printf(", \"methods\": [");
    first = true;
    for (const AppReport& r : reports)
      for (const analysis::MethodAnalysis& m : r.methods) {
        std::printf(
            "%s\n  {\"app\": \"%s\", \"method\": \"%s\", "
            "\"energy_j\": %.6e, \"blocks\": %d, \"insns\": %d, "
            "\"loop_depth\": %d, \"recursive\": %s, \"verdict\": \"%s\", "
            "\"request_bytes_bound\": %lld}",
            first ? "" : ",", r.app.c_str(), m.qualified_name.c_str(),
            m.cost.energy_j, m.cost.num_blocks, m.cost.num_insns,
            m.cost.max_loop_depth, m.cost.recursive ? "true" : "false",
            analysis::safety_verdict(m.safety).c_str(),
            static_cast<long long>(m.safety.request_bytes_bound));
        first = false;
      }
    std::printf("\n]");
  }
  int errors = 0, warnings = 0, notes = 0;
  count_diagnostics(reports, &errors, &warnings, &notes);
  std::printf(", \"errors\": %d, \"warnings\": %d, \"notes\": %d}\n", errors,
              warnings, notes);
}

/// A class seeded with known defects: a dead store (the first istore is
/// re-stored before any load) and an unreachable block after the return.
/// Verifies cleanly — the verifier only walks reachable code — which is
/// exactly why the lint pass exists.
jvm::ClassFile seeded_defects() {
  using jvm::Op;
  jvm::ClassFile cf;
  cf.name = "LintDemo";
  jvm::MethodInfo m;
  m.name = "seeded";
  m.sig = jvm::Signature{{jvm::TypeKind::kInt}, jvm::TypeKind::kInt};
  m.is_static = true;
  m.max_locals = 2;
  m.code = {
      {Op::kIload, 0, 0},   // 0: p0
      {Op::kIstore, 1, 0},  // 1: t = p0        <- dead store
      {Op::kIconst, 2, 0},  // 2:
      {Op::kIstore, 1, 0},  // 3: t = 2
      {Op::kIload, 1, 0},   // 4:
      {Op::kIreturn, 0, 0}, // 5: return t
      {Op::kIconst, 7, 0},  // 6: <- unreachable block
      {Op::kIreturn, 0, 0}, // 7:
  };
  cf.methods.push_back(std::move(m));
  return cf;
}

/// A class seeded with defects only the interval analysis can see: bounded
/// arithmetic that provably fits int32, bounded arithmetic that can wrap,
/// a branch decided the same way on every execution (each way), and an
/// array access guaranteed out of bounds. Verifies cleanly — all the code
/// is statically reachable and stack-consistent.
jvm::ClassFile seeded_bounds_defects() {
  using jvm::Op;
  jvm::ClassFile cf;
  cf.name = "BoundsDemo";
  jvm::MethodInfo m;
  m.name = "seeded";
  m.sig = jvm::Signature{{jvm::TypeKind::kInt}, jvm::TypeKind::kInt};
  m.is_static = true;
  m.max_locals = 4;
  const auto k_int = static_cast<std::int32_t>(jvm::TypeKind::kInt);
  m.code = {
      {Op::kIconst, 2, 0},          //  0:
      {Op::kIconst, 3, 0},          //  1:
      {Op::kIadd, 0, 0},            //  2: 2+3        <- cannot-overflow
      {Op::kIstore, 3, 0},          //  3:
      {Op::kIconst, 1 << 30, 0},    //  4:
      {Op::kIconst, 1 << 30, 0},    //  5:
      {Op::kIadd, 0, 0},            //  6: 2^30+2^30  <- may-wrap
      {Op::kIstore, 2, 0},          //  7:
      {Op::kIconst, 0, 0},          //  8:
      {Op::kIconst, 1, 0},          //  9:
      {Op::kIfIcmpLt, 13, 0},       // 10: 0 < 1      <- branch-always-true
      {Op::kIconst, 7, 0},          // 11:
      {Op::kIstore, 2, 0},          // 12:
      {Op::kIconst, 5, 0},          // 13:
      {Op::kIfle, 17, 0},           // 14: 5 <= 0     <- branch-always-false
      {Op::kIconst, 7, 0},          // 15:
      {Op::kIstore, 2, 0},          // 16:
      {Op::kIconst, 3, 0},          // 17:
      {Op::kNewArray, k_int, 0},    // 18: a = new int[3]
      {Op::kAstore, 1, 0},          // 19:
      {Op::kAload, 1, 0},           // 20:
      {Op::kIconst, 5, 0},          // 21:
      {Op::kIaload, 0, 0},          // 22: a[5]       <- guaranteed-oob
      {Op::kIreturn, 0, 0},         // 23:
  };
  cf.methods.push_back(std::move(m));
  return cf;
}

bool has_diag(const std::vector<analysis::MethodAnalysis>& ms,
              const char* code, int pc) {
  for (const analysis::MethodAnalysis& m : ms)
    for (const analysis::Diagnostic& d : m.diagnostics)
      if (d.code == code && d.pc == pc) return true;
  return false;
}

/// Prove the tool works: the seeded defects are flagged at the right pcs and
/// every shipped application lints completely clean.
int self_check() {
  std::vector<analysis::MethodAnalysis> seeded;
  try {
    seeded = analyze_classes({seeded_defects()});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "self-check: seeded class failed to verify: %s\n",
                 e.what());
    return 1;
  }
  if (!has_diag(seeded, "dead-store", 1)) {
    std::fprintf(stderr, "self-check: dead-store @1 not flagged\n");
    return 1;
  }
  if (!has_diag(seeded, "unreachable-block", 6)) {
    std::fprintf(stderr, "self-check: unreachable-block @6 not flagged\n");
    return 1;
  }
  std::vector<analysis::MethodAnalysis> bounds;
  try {
    bounds = analyze_classes({seeded_bounds_defects()}, /*bounds=*/true,
                             /*verbose=*/true);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "self-check: seeded bounds class failed to verify: %s\n",
                 e.what());
    return 1;
  }
  const struct { const char* code; int pc; } expected_bounds[] = {
      {"cannot-overflow", 2},    {"may-wrap", 6},
      {"branch-always-true", 10}, {"branch-always-false", 14},
      {"guaranteed-oob", 22},
  };
  for (const auto& e : expected_bounds)
    if (!has_diag(bounds, e.code, e.pc)) {
      std::fprintf(stderr, "self-check: %s @%d not flagged\n", e.code, e.pc);
      return 1;
    }
  // The shipped corpus must be clean for the default checks AND the
  // --bounds checks (cannot-overflow proofs are verbose-only by design:
  // the proof is the common case, not a finding).
  for (const apps::App& a : apps::registry()) {
    const std::vector<analysis::MethodAnalysis> ms =
        analyze_classes(a.classes, /*bounds=*/true);
    for (const analysis::MethodAnalysis& m : ms)
      for (const analysis::Diagnostic& d : m.diagnostics) {
        std::fprintf(stderr, "self-check: shipped app %s is not clean: "
                     "%s.%s @%d [%s] %s\n",
                     a.name.c_str(), d.cls.c_str(), d.method.c_str(), d.pc,
                     d.code.c_str(), d.message.c_str());
        return 1;
      }
  }
  std::printf("self-check OK: seeded defects flagged (incl. --bounds), "
              "%zu shipped apps clean\n", apps::registry().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) opt.json = true;
    else if (std::strcmp(a, "--self-check") == 0) opt.self_check = true;
    else if (std::strcmp(a, "--analysis") == 0) opt.analysis = true;
    else if (std::strcmp(a, "--bounds") == 0) opt.bounds = true;
    else if (std::strcmp(a, "--verbose") == 0) opt.verbose = true;
    else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0)
      return usage(stdout);
    else if (a[0] == '-') return usage(stderr);
    else opt.apps.emplace_back(a);
  }
  if (opt.self_check) return self_check();

  std::vector<AppReport> reports;
  try {
    if (opt.apps.empty())
      for (const apps::App& a : apps::registry())
        reports.push_back(
            {a.name, analyze_classes(a.classes, opt.bounds, opt.verbose)});
    else
      for (const std::string& name : opt.apps) {
        const apps::App& a = apps::app(name);
        reports.push_back(
            {a.name, analyze_classes(a.classes, opt.bounds, opt.verbose)});
      }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "javelin_lint: %s\n", e.what());
    return 2;
  }

  if (opt.json) print_json(reports, opt.analysis);
  else print_text(reports, opt.analysis);

  int errors = 0, warnings = 0, notes = 0;
  count_diagnostics(reports, &errors, &warnings, &notes);
  return errors > 0 ? 1 : 0;
}
