// Corpus pair-frequency profiler driver.
//
// Runs the deterministic 8-app corpus profile (sim/pairprof.cpp) and either
// dumps both pair rankings in human-readable form (default) or emits one of
// the two committed fusion tables verbatim:
//
//   javelin_profile                 # ranked dump of both layers
//   javelin_profile --nisa-inc      # > src/isa/nfusion.inc
//   javelin_profile --jvm-inc       # > src/jvm/fusion_table.inc
#include <cstring>
#include <iostream>

#include "isa/nisa.hpp"
#include "jvm/opcodes.hpp"
#include "sim/pairprof.hpp"

int main(int argc, char** argv) {
  using namespace javelin;
  bool nisa_inc = false, jvm_inc = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nisa-inc") == 0) {
      nisa_inc = true;
    } else if (std::strcmp(argv[i], "--jvm-inc") == 0) {
      jvm_inc = true;
    } else {
      std::cerr << "usage: javelin_profile [--nisa-inc | --jvm-inc]\n";
      return 2;
    }
  }

  const sim::PairProfile prof = sim::profile_corpus();
  if (nisa_inc) {
    std::cout << sim::render_nisa_inc(prof);
    return 0;
  }
  if (jvm_inc) {
    std::cout << sim::render_jvm_inc(prof);
    return 0;
  }

  std::cout << "nisa fused-pair ranking (legal pairs, top "
            << sim::kMaxNisaFused << "):\n";
  std::size_t rank = 0;
  for (const sim::RankedPair& r : sim::ranked_nisa_pairs(prof))
    std::cout << "  " << rank++ << ". "
              << isa::nop_name(static_cast<isa::NOp>(r.a)) << " + "
              << isa::nop_name(static_cast<isa::NOp>(r.b)) << "  " << r.count
              << "\n";
  std::cout << "\njvm L0.5 admission ranking (shape-capable pairs):\n";
  rank = 0;
  for (const sim::RankedPair& r : sim::ranked_jvm_pairs(prof))
    std::cout << "  " << rank++ << ". "
              << jvm::op_name(static_cast<jvm::Op>(r.a)) << " + "
              << jvm::op_name(static_cast<jvm::Op>(r.b)) << "  dyn=" << r.count
              << " static=" << r.stat << "\n";
  return 0;
}
