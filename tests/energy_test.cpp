// Unit tests for the energy model — including that the Fig 1 table of the
// paper is encoded exactly.
#include <gtest/gtest.h>

#include "energy/energy.hpp"

namespace javelin::energy {
namespace {

TEST(InstructionEnergyTable, MatchesPaperFig1) {
  const InstructionEnergyTable t;
  EXPECT_DOUBLE_EQ(t.of(InstrClass::kLoad), 4.814e-9);
  EXPECT_DOUBLE_EQ(t.of(InstrClass::kStore), 4.479e-9);
  EXPECT_DOUBLE_EQ(t.of(InstrClass::kBranch), 2.868e-9);
  EXPECT_DOUBLE_EQ(t.of(InstrClass::kAluSimple), 2.846e-9);
  EXPECT_DOUBLE_EQ(t.of(InstrClass::kAluComplex), 3.726e-9);
  EXPECT_DOUBLE_EQ(t.of(InstrClass::kNop), 2.644e-9);
  EXPECT_DOUBLE_EQ(t.main_memory, 4.94e-9);
}

TEST(InstrCounts, TotalsAndEnergy) {
  const InstructionEnergyTable t;
  InstrCounts c;
  c.add(InstrClass::kLoad, 10);
  c.add(InstrClass::kAluSimple, 5);
  EXPECT_EQ(c.total(), 15u);
  EXPECT_DOUBLE_EQ(c.energy(t), 10 * 4.814e-9 + 5 * 2.846e-9);
  InstrCounts d;
  d.add(InstrClass::kLoad, 1);
  c += d;
  EXPECT_EQ(c.of(InstrClass::kLoad), 11u);
}

TEST(EnergyMeter, SubsystemBreakdown) {
  const InstructionEnergyTable t;
  EnergyMeter m;
  m.add_instr(InstrClass::kLoad, t);
  m.add_instr(InstrClass::kStore, t);
  m.add_dram_accesses(3, t);
  m.add(Subsystem::kCommTx, 1e-3);
  m.add(Subsystem::kCommRx, 2e-3);
  m.add(Subsystem::kIdle, 5e-4);

  EXPECT_DOUBLE_EQ(m.of(Subsystem::kCore), 4.814e-9 + 4.479e-9);
  EXPECT_DOUBLE_EQ(m.of(Subsystem::kDram), 3 * 4.94e-9);
  EXPECT_DOUBLE_EQ(m.communication(), 3e-3);
  EXPECT_DOUBLE_EQ(m.computation(), m.of(Subsystem::kCore) + m.of(Subsystem::kDram));
  EXPECT_NEAR(m.total(), 3e-3 + 5e-4 + m.computation(), 1e-18);
  EXPECT_EQ(m.counts().total(), 2u);
  EXPECT_EQ(m.dram_accesses(), 3u);
}

TEST(EnergyMeter, SnapshotDelta) {
  const InstructionEnergyTable t;
  EnergyMeter m;
  m.add_instr(InstrClass::kLoad, t);
  const EnergyMeter snap = m.snapshot();
  m.add_instr(InstrClass::kBranch, t);
  m.add(Subsystem::kCommTx, 1e-3);
  const EnergyMeter d = m.since(snap);
  EXPECT_DOUBLE_EQ(d.of(Subsystem::kCore), 2.868e-9);
  EXPECT_DOUBLE_EQ(d.of(Subsystem::kCommTx), 1e-3);
  EXPECT_EQ(d.counts().of(InstrClass::kLoad), 0u);
  EXPECT_EQ(d.counts().of(InstrClass::kBranch), 1u);
}

TEST(EnergyMeter, SummaryMentionsSubsystems) {
  EnergyMeter m;
  m.add(Subsystem::kIdle, 1e-3);
  const std::string s = m.summary();
  EXPECT_NE(s.find("idle"), std::string::npos);
  EXPECT_NE(s.find("comm_tx"), std::string::npos);
}

}  // namespace
}  // namespace javelin::energy
