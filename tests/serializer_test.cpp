// Serializer tests: round trips of primitives, arrays of every element kind,
// objects with inherited fields, shared structure (back references), cyclic
// graphs, cross-JVM transfer, energy charging, and malformed input.
#include <gtest/gtest.h>

#include "jvm/builder.hpp"
#include "net/serializer.hpp"

namespace javelin::net {
namespace {

using jvm::ClassBuilder;
using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

struct Rig {
  isa::MachineConfig cfg = isa::client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier{cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter};
  isa::Core core{&cfg, &arena, &hier, &meter};
  jvm::Jvm vm{core};

  Rig() {
    // A small class hierarchy for object tests.
    ClassBuilder base("Node");
    base.field("val", TypeKind::kInt);
    base.field("next", TypeKind::kRef);
    {
      auto& m = base.method("noop", Signature{{}, TypeKind::kVoid});
      m.ret();
    }
    jvm::ClassFile base_cf = base.build();

    ClassBuilder sub("FatNode", "Node");
    sub.field("weight", TypeKind::kDouble);
    {
      auto& m = sub.method("noop2", Signature{{}, TypeKind::kVoid});
      m.ret();
    }
    vm.load(base_cf);
    vm.load(sub.build({&base_cf}));
    vm.link();
  }
};

TEST(Serializer, PrimitivesRoundTrip) {
  Rig rig;
  for (const Value v : {Value::make_int(-42), Value::make_int(0),
                        Value::make_double(3.14159),
                        Value::make_ref(mem::kNullAddr)}) {
    const auto bytes = serialize_value(rig.vm, v, false);
    const Value back = deserialize_value(rig.vm, bytes, false);
    EXPECT_TRUE(back == v || (v.kind == TypeKind::kRef &&
                              back.as_ref() == mem::kNullAddr));
  }
}

TEST(Serializer, ArraysOfEveryKind) {
  Rig rig;
  {
    const mem::Addr a = rig.vm.new_array(TypeKind::kInt, 5, false);
    rig.vm.write_i32_array(a, {1, -2, 3, -4, 5});
    const auto bytes = serialize_value(rig.vm, Value::make_ref(a), false);
    const Value back = deserialize_value(rig.vm, bytes, false);
    EXPECT_EQ(rig.vm.read_i32_array(back.as_ref()),
              (std::vector<std::int32_t>{1, -2, 3, -4, 5}));
  }
  {
    const mem::Addr a = rig.vm.new_array(TypeKind::kDouble, 3, false);
    rig.vm.write_f64_array(a, {0.5, -1.25, 1e100});
    const auto bytes = serialize_value(rig.vm, Value::make_ref(a), false);
    const Value back = deserialize_value(rig.vm, bytes, false);
    EXPECT_EQ(rig.vm.read_f64_array(back.as_ref()),
              (std::vector<double>{0.5, -1.25, 1e100}));
  }
  {
    const mem::Addr a = rig.vm.new_array(TypeKind::kByte, 4, false);
    rig.vm.write_u8_array(a, {0, 127, 128, 255});
    const auto bytes = serialize_value(rig.vm, Value::make_ref(a), false);
    const Value back = deserialize_value(rig.vm, bytes, false);
    EXPECT_EQ(rig.vm.read_u8_array(back.as_ref()),
              (std::vector<std::uint8_t>{0, 127, 128, 255}));
  }
  {
    // Empty array.
    const mem::Addr a = rig.vm.new_array(TypeKind::kInt, 0, false);
    const auto bytes = serialize_value(rig.vm, Value::make_ref(a), false);
    const Value back = deserialize_value(rig.vm, bytes, false);
    EXPECT_EQ(rig.vm.array_length(back.as_ref()), 0);
  }
}

TEST(Serializer, RefArrayWithSharingAndNulls) {
  Rig rig;
  const mem::Addr inner = rig.vm.new_array(TypeKind::kInt, 2, false);
  rig.vm.write_i32_array(inner, {7, 8});
  const mem::Addr outer = rig.vm.new_array(TypeKind::kRef, 3, false);
  // outer = [inner, null, inner] — shared element must stay shared.
  rig.arena.store_u32(rig.vm.elem_addr(outer, 0), inner);
  rig.arena.store_u32(rig.vm.elem_addr(outer, 1), mem::kNullAddr);
  rig.arena.store_u32(rig.vm.elem_addr(outer, 2), inner);

  const auto bytes = serialize_value(rig.vm, Value::make_ref(outer), false);
  const Value back = deserialize_value(rig.vm, bytes, false);
  const mem::Addr b0 = rig.arena.load_u32(rig.vm.elem_addr(back.as_ref(), 0));
  const mem::Addr b1 = rig.arena.load_u32(rig.vm.elem_addr(back.as_ref(), 1));
  const mem::Addr b2 = rig.arena.load_u32(rig.vm.elem_addr(back.as_ref(), 2));
  EXPECT_EQ(b1, mem::kNullAddr);
  EXPECT_EQ(b0, b2) << "sharing must be preserved";
  EXPECT_NE(b0, inner) << "deserialized copy must be a new object";
  EXPECT_EQ(rig.vm.read_i32_array(b0), (std::vector<std::int32_t>{7, 8}));
}

TEST(Serializer, ObjectWithInheritedFieldsAndCycle) {
  Rig rig;
  const std::int32_t fat_id = rig.vm.find_class("FatNode");
  const mem::Addr node = rig.vm.new_object(fat_id, false);
  const jvm::RtClass& fat = rig.vm.cls(fat_id);
  const jvm::RtClass& base = rig.vm.cls(rig.vm.find_class("Node"));
  const jvm::RtField& val = rig.vm.field(base.field_ids[0]);
  const jvm::RtField& next = rig.vm.field(base.field_ids[1]);
  const jvm::RtField& weight = rig.vm.field(fat.field_ids[0]);
  rig.arena.store_i32(rig.vm.field_addr(node, val), 99);
  rig.arena.store_u32(rig.vm.field_addr(node, next), node);  // self-cycle
  rig.arena.store_f64(rig.vm.field_addr(node, weight), 2.75);

  const auto bytes = serialize_value(rig.vm, Value::make_ref(node), false);
  const Value back = deserialize_value(rig.vm, bytes, false);
  const mem::Addr copy = back.as_ref();
  EXPECT_EQ(rig.vm.obj_class_id(copy), fat_id);
  EXPECT_EQ(rig.arena.load_i32(rig.vm.field_addr(copy, val)), 99);
  EXPECT_DOUBLE_EQ(rig.arena.load_f64(rig.vm.field_addr(copy, weight)), 2.75);
  EXPECT_EQ(rig.arena.load_u32(rig.vm.field_addr(copy, next)), copy)
      << "cycle must be reconstructed";
}

TEST(Serializer, CrossJvmTransferByClassName) {
  Rig a, b;  // independent JVMs with the same classes
  const mem::Addr node = a.vm.new_object(a.vm.find_class("Node"), false);
  const jvm::RtField& val =
      a.vm.field(a.vm.cls(a.vm.find_class("Node")).field_ids[0]);
  a.arena.store_i32(a.vm.field_addr(node, val), 1234);

  const auto bytes = serialize_value(a.vm, Value::make_ref(node), false);
  const Value got = deserialize_value(b.vm, bytes, false);
  EXPECT_EQ(b.arena.load_i32(b.vm.field_addr(got.as_ref(), val)), 1234);
}

TEST(Serializer, ChargingCostsEnergy) {
  Rig rig;
  const mem::Addr a = rig.vm.new_array(TypeKind::kInt, 1000, false);
  const double e0 = rig.meter.total();
  const auto bytes = serialize_value(rig.vm, Value::make_ref(a), true);
  const double e_ser = rig.meter.total() - e0;
  EXPECT_GT(e_ser, 0.0);
  const double e1 = rig.meter.total();
  deserialize_value(rig.vm, bytes, true);
  EXPECT_GT(rig.meter.total() - e1, 0.0);
  // Roughly linear in payload: 4x the elements -> about 4x the energy.
  const mem::Addr big = rig.vm.new_array(TypeKind::kInt, 4000, false);
  const double e2 = rig.meter.total();
  serialize_value(rig.vm, Value::make_ref(big), true);
  EXPECT_NEAR((rig.meter.total() - e2) / e_ser, 4.0, 0.8);
}

TEST(Serializer, MalformedInputRejected) {
  Rig rig;
  EXPECT_THROW(deserialize_value(rig.vm, {99}, false), FormatError);
  EXPECT_THROW(deserialize_value(rig.vm, {}, false), FormatError);
  // Unknown class name.
  ByteWriter w;
  w.u8(4);  // kTagObject
  w.str("NoSuchClass");
  EXPECT_THROW(deserialize_value(rig.vm, w.data(), false), FormatError);
  // Trailing bytes.
  const auto good = serialize_value(rig.vm, Value::make_int(1), false);
  auto trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_value(rig.vm, trailing, false), FormatError);
}

}  // namespace
}  // namespace javelin::net
