// End-to-end smoke: build a class, verify, link, interpret, JIT at all three
// levels, and check that every execution path computes the same results.
#include <gtest/gtest.h>

#include "jit/compiler.hpp"
#include "jvm/builder.hpp"
#include "jvm/engine.hpp"

namespace javelin {
namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

struct TestDevice {
  isa::MachineConfig cfg = isa::client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier{cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter};
  isa::Core core{&cfg, &arena, &hier, &meter};
  jvm::Jvm vm{core};
  jvm::ExecutionEngine engine{vm};
};

// sum of i*i for i in [0, n) plus a quicksort-free loop with an array.
jvm::ClassFile make_math_class() {
  jvm::ClassBuilder cb("Math");
  {
    auto& m = cb.method("sumsq", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "n");
    auto loop = m.new_label();
    auto done = m.new_label();
    m.iconst(0).istore("acc");
    m.iconst(0).istore("i");
    m.bind(loop);
    m.iload("i").iload("n").if_icmpge(done);
    m.iload("acc").iload("i").iload("i").imul().iadd().istore("acc");
    m.iload("i").iconst(1).iadd().istore("i");
    m.goto_(loop);
    m.bind(done);
    m.iload("acc").iret();
  }
  {
    // fill an int array with i*3, then sum it
    auto& m =
        cb.method("arrsum", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "n");
    auto l1 = m.new_label(), d1 = m.new_label();
    auto l2 = m.new_label(), d2 = m.new_label();
    m.iload("n").newarray(TypeKind::kInt).astore("a");
    m.iconst(0).istore("i");
    m.bind(l1);
    m.iload("i").iload("n").if_icmpge(d1);
    m.aload("a").iload("i").iload("i").iconst(3).imul().iastore();
    m.iload("i").iconst(1).iadd().istore("i");
    m.goto_(l1);
    m.bind(d1);
    m.iconst(0).istore("acc").iconst(0).istore("i");
    m.bind(l2);
    m.iload("i").aload("a").arraylength().if_icmpge(d2);
    m.iload("acc").aload("a").iload("i").iaload().iadd().istore("acc");
    m.iload("i").iconst(1).iadd().istore("i");
    m.goto_(l2);
    m.bind(d2);
    m.iload("acc").iret();
  }
  {
    // double kernel with an intrinsic and a call
    auto& m = cb.method("hyp", Signature{{TypeKind::kDouble, TypeKind::kDouble},
                                         TypeKind::kDouble});
    m.param_name(0, "x").param_name(1, "y");
    m.dload("x").dload("x").dmul();
    m.dload("y").dload("y").dmul();
    m.dadd();
    m.intrinsic(isa::Intrinsic::kSqrt);
    m.dret();
  }
  {
    auto& m = cb.method("callhyp",
                        Signature{{TypeKind::kInt}, TypeKind::kDouble});
    m.param_name(0, "n");
    m.iload("n").i2d().iconst(3).i2d().invokestatic("Math", "hyp");
    m.dret();
  }
  return cb.build();
}

TEST(Smoke, InterpreterComputes) {
  TestDevice d;
  d.vm.load(make_math_class());
  d.vm.link();
  const Value r = d.engine.call("Math", "sumsq", {{Value::make_int(10)}});
  EXPECT_EQ(r.as_int(), 285);
  const Value r2 = d.engine.call("Math", "arrsum", {{Value::make_int(100)}});
  EXPECT_EQ(r2.as_int(), 3 * 99 * 100 / 2);
  const Value r3 = d.engine.call(
      "Math", "hyp", {{Value::make_double(3.0), Value::make_double(4.0)}});
  EXPECT_DOUBLE_EQ(r3.as_double(), 5.0);
  const Value r4 = d.engine.call("Math", "callhyp", {{Value::make_int(4)}});
  EXPECT_DOUBLE_EQ(r4.as_double(), 5.0);
  EXPECT_GT(d.meter.total(), 0.0);
}

TEST(Smoke, JitMatchesInterpreterAtAllLevels) {
  for (int level = 1; level <= 3; ++level) {
    TestDevice d;
    d.vm.load(make_math_class());
    d.vm.link();

    // Interpreted references.
    const std::int32_t sumsq = d.vm.find_method("Math", "sumsq");
    const std::int32_t arrsum = d.vm.find_method("Math", "arrsum");
    const std::int32_t callhyp = d.vm.find_method("Math", "callhyp");
    const Value i1 = d.engine.invoke(sumsq, {{Value::make_int(37)}});
    const Value i2 = d.engine.invoke(arrsum, {{Value::make_int(64)}});
    const Value i3 = d.engine.invoke(callhyp, {{Value::make_int(7)}});

    // Compile everything at this level and re-run.
    jit::CompileOptions opts;
    opts.opt_level = level;
    for (const auto id : {sumsq, arrsum, callhyp}) {
      auto res = jit::compile_method(d.vm, id, opts, d.cfg.energy);
      EXPECT_GT(res.compile_energy, 0.0);
      d.engine.install(id, std::move(res.program), level);
    }
    const Value j1 = d.engine.invoke(sumsq, {{Value::make_int(37)}});
    const Value j2 = d.engine.invoke(arrsum, {{Value::make_int(64)}});
    const Value j3 = d.engine.invoke(callhyp, {{Value::make_int(7)}});

    EXPECT_EQ(i1.as_int(), j1.as_int()) << "level " << level;
    EXPECT_EQ(i2.as_int(), j2.as_int()) << "level " << level;
    EXPECT_DOUBLE_EQ(i3.as_double(), j3.as_double()) << "level " << level;
  }
}

TEST(Smoke, JitCheaperThanInterp) {
  TestDevice d;
  d.vm.load(make_math_class());
  d.vm.link();
  const std::int32_t sumsq = d.vm.find_method("Math", "sumsq");

  const auto before = d.meter.snapshot();
  d.engine.invoke(sumsq, {{Value::make_int(1000)}});
  const double interp_energy = d.meter.since(before).total();

  auto res = jit::compile_method(d.vm, sumsq, jit::CompileOptions{.opt_level = 2},
                                 d.cfg.energy);
  d.engine.install(sumsq, std::move(res.program), 2);
  const auto before2 = d.meter.snapshot();
  d.engine.invoke(sumsq, {{Value::make_int(1000)}});
  const double jit_energy = d.meter.since(before2).total();

  EXPECT_LT(jit_energy, interp_energy / 2.0)
      << "interp=" << interp_energy << " jit=" << jit_energy;
}

}  // namespace
}  // namespace javelin
