// Verifier tests: the paper leans on load-time verification (Section 3.3 —
// it is what downloaded *native* code cannot get). These tests build
// malformed methods directly (bypassing the builder's own checks) and assert
// the verifier rejects each category, plus positive tests for join-point
// merging.
#include <gtest/gtest.h>

#include "jvm/builder.hpp"
#include "jvm/verifier.hpp"

namespace javelin::jvm {
namespace {

ClassFile raw_class(std::vector<Insn> code, Signature sig,
                    std::uint16_t max_locals) {
  ClassFile cf;
  cf.name = "Raw";
  MethodInfo m;
  m.name = "f";
  m.sig = std::move(sig);
  m.max_locals = max_locals;
  m.code = std::move(code);
  cf.methods.push_back(std::move(m));
  return cf;
}

TEST(Verifier, RejectsStackUnderflow) {
  ClassFile cf = raw_class({{Op::kIadd, 0, 0}, {Op::kReturn, 0, 0}},
                           Signature{{}, TypeKind::kVoid}, 0);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsTypeMismatch) {
  // iconst then dneg: int where double expected.
  ClassFile cf = raw_class({{Op::kIconst, 1, 0},
                            {Op::kDneg, 0, 0},
                            {Op::kReturn, 0, 0}},
                           Signature{{}, TypeKind::kVoid}, 0);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsBranchOutOfRange) {
  ClassFile cf = raw_class({{Op::kGoto, 99, 0}},
                           Signature{{}, TypeKind::kVoid}, 0);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsFallingOffEnd) {
  ClassFile cf = raw_class({{Op::kIconst, 1, 0}},
                           Signature{{}, TypeKind::kVoid}, 0);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsWrongReturnKind) {
  ClassFile cf = raw_class({{Op::kIconst, 1, 0}, {Op::kIreturn, 0, 0}},
                           Signature{{}, TypeKind::kDouble}, 0);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsLocalIndexOutOfRange) {
  ClassFile cf = raw_class({{Op::kIload, 3, 0}, {Op::kIreturn, 0, 0}},
                           Signature{{TypeKind::kInt}, TypeKind::kInt}, 1);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsReadingUninitializedLocal) {
  ClassFile cf = raw_class({{Op::kIload, 0, 0}, {Op::kIreturn, 0, 0}},
                           Signature{{}, TypeKind::kInt}, 1);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsInconsistentStackAtJoin) {
  // Path A pushes an int, path B pushes a double, both jump to the same pc.
  ClassFile cf = raw_class(
      {
          {Op::kIload, 0, 0},        // 0: condition
          {Op::kIfeq, 4, 0},         // 1: if 0 goto 4
          {Op::kIconst, 1, 0},       // 2: push int
          {Op::kGoto, 6, 0},         // 3:
          {Op::kDconst, 0, 0},       // 4: push double
          {Op::kGoto, 6, 0},         // 5:
          {Op::kPop, 0, 0},          // 6: join with mismatched stacks
          {Op::kReturn, 0, 0},       // 7:
      },
      Signature{{TypeKind::kInt}, TypeKind::kVoid}, 1);
  cf.pool.add_double(1.0);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, AcceptsLocalKindConflictOnlyIfUnused) {
  // A local that holds an int on one path and a double on the other is fine
  // at the join as long as it is re-stored before being read again.
  ClassBuilder cb("C");
  auto& m = cb.method("f", Signature{{TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "c");
  auto other = m.new_label(), join = m.new_label();
  m.iload("c").ifeq(other);
  m.iconst(1).istore("tmp_i");
  m.goto_(join);
  m.bind(other);
  m.iconst(2).istore("tmp_i");
  m.bind(join);
  m.iload("tmp_i").iret();
  EXPECT_NO_THROW(cb.build());
}

TEST(Verifier, RejectsUseOfConflictedLocalAfterJoin) {
  // local 1 is int on one path, double on the other; reading it after the
  // join must be rejected.
  ClassFile cf = raw_class(
      {
          {Op::kIload, 0, 0},    // 0
          {Op::kIfeq, 5, 0},     // 1
          {Op::kIconst, 1, 0},   // 2
          {Op::kIstore, 1, 0},   // 3
          {Op::kGoto, 7, 0},     // 4
          {Op::kDconst, 0, 0},   // 5
          {Op::kDstore, 1, 0},   // 6
          {Op::kIload, 1, 0},    // 7: conflicting kinds
          {Op::kIreturn, 0, 0},  // 8
      },
      Signature{{TypeKind::kInt}, TypeKind::kInt}, 2);
  cf.pool.add_double(1.0);
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsUnresolvedCall) {
  ClassFile cf = raw_class({{Op::kInvokeStatic, 0, 0}, {Op::kReturn, 0, 0}},
                           Signature{{}, TypeKind::kVoid}, 0);
  cf.pool.add_method("Missing", "nope");
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, RejectsStaticInstanceMismatch) {
  ClassBuilder cb("C");
  auto& inst = cb.method("inst", Signature{{}, TypeKind::kVoid},
                         /*is_static=*/false);
  inst.ret();
  ClassFile cf = cb.build();
  // Hand-craft a method that invokestatic's the instance method.
  MethodInfo bad;
  bad.name = "bad";
  bad.sig = Signature{{}, TypeKind::kVoid};
  bad.max_locals = 0;
  bad.code = {{Op::kInvokeStatic,
               cf.pool.add_method("C", "inst"), 0},
              {Op::kReturn, 0, 0}};
  cf.methods.push_back(std::move(bad));
  EXPECT_THROW(verify_class(cf), VerifyError);
}

TEST(Verifier, ResolvesThroughSuperclassChain) {
  ClassBuilder base("Base");
  base.field("x", TypeKind::kInt);
  auto& bm = base.method("get", Signature{{}, TypeKind::kInt},
                         /*is_static=*/false);
  bm.aload("this").getfield("Base", "x").iret();
  ClassFile base_cf = base.build();

  // Derived has no own "get"; the virtual call resolves through the chain.
  ClassBuilder derived("Derived", "Base");
  auto& dm = derived.method("use", Signature{{TypeKind::kRef}, TypeKind::kInt});
  dm.param_name(0, "o");
  dm.aload("o").invokevirtual("Derived", "get").iret();

  EXPECT_NO_THROW(derived.build({&base_cf}));

  // Without the resolver the reference is unresolvable.
  ClassBuilder lonely("Lonely", "Base");
  auto& lm = lonely.method("use", Signature{{TypeKind::kRef}, TypeKind::kInt});
  lm.param_name(0, "o");
  lm.aload("o").invokevirtual("Lonely", "get").iret();
  EXPECT_THROW(lonely.build(), VerifyError);
}

TEST(Verifier, ComputesMaxStackOverBranches) {
  ClassBuilder cb("C");
  auto& m = cb.method("f", Signature{{TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "c");
  auto deep = m.new_label(), out = m.new_label();
  m.iload("c").ifeq(deep);
  m.iconst(1).iret();
  m.bind(deep);
  m.iconst(1).iconst(2).iconst(3).iconst(4).iadd().iadd().iadd();
  m.goto_(out);
  m.bind(out);
  m.iret();
  ClassFile cf = cb.build();
  EXPECT_EQ(cf.find_method("f")->max_stack, 4);
}


TEST(ClassSetResolver, DuplicateClassNamesKeepFirstAdded) {
  // Classpath semantics: when two classes share a name, the first one added
  // wins for every lookup (the map build in add() must preserve what the
  // old linear scan did).
  ClassFile first;
  first.name = "Dup";
  MethodInfo fm;
  fm.name = "m";
  fm.sig = Signature{{TypeKind::kInt}, TypeKind::kInt};
  first.methods.push_back(fm);

  ClassFile second;
  second.name = "Dup";
  MethodInfo sm;
  sm.name = "m";
  sm.sig = Signature{{}, TypeKind::kVoid};  // Different signature.
  second.methods.push_back(sm);

  ClassSetResolver r;
  r.add(&first);
  r.add(&second);
  const MethodInfo* got = r.resolve_method(MethodRef{"Dup", "m"});
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got, &first.methods[0]);
  EXPECT_EQ(r.resolve_class("Dup"), &first);

  // Reversed insertion order flips the winner.
  ClassSetResolver rev;
  rev.add(&second);
  rev.add(&first);
  EXPECT_EQ(rev.resolve_method(MethodRef{"Dup", "m"}), &second.methods[0]);
}

TEST(Verifier, HostileBodiesAreRejectedNamingThePc) {
  // Table-driven structural negative paths. Every rejection message must
  // carry the offending pc ("@<pc>") so a tool user can find the site.
  struct Case {
    const char* label;
    std::vector<Insn> code;
    Signature sig;
    std::uint16_t max_locals;
    int pc;                  ///< Offending pc the message must name.
    const char* why;         ///< Substring of the reason.
  };
  const std::vector<Case> cases = {
      {"branch past code end",
       {{Op::kGoto, 99, 0}},
       Signature{{}, TypeKind::kVoid}, 0, 0, "branch target out of range"},
      {"truncated double-constant operand (no pool backing)",
       {{Op::kDconst, 0, 0}, {Op::kDreturn, 0, 0}},
       Signature{{}, TypeKind::kDouble}, 0, 0,
       "dconst pool index out of range"},
      {"constant-pool index 0xFFFF",
       {{Op::kInvokeStatic, 0xFFFF, 0}, {Op::kReturn, 0, 0}},
       Signature{{}, TypeKind::kVoid}, 0, 0,
       "method pool index out of range"},
      {"stack underflow at a merge point",
       // Both paths reach pc 5 with an empty stack; the pop underflows
       // exactly at the join.
       {{Op::kIload, 0, 0},
        {Op::kIfeq, 5, 0},
        {Op::kIconst, 1, 0},
        {Op::kPop, 0, 0},
        {Op::kGoto, 5, 0},
        {Op::kPop, 0, 0},
        {Op::kReturn, 0, 0}},
       Signature{{TypeKind::kInt}, TypeKind::kVoid}, 1, 5,
       "operand stack underflow"},
      {"negative branch target",
       {{Op::kGoto, -3, 0}},
       Signature{{}, TypeKind::kVoid}, 0, 0, "negative branch target"},
      {"newarray with a forged element-kind operand",
       {{Op::kIconst, 1, 0}, {Op::kNewArray, 999, 0}, {Op::kReturn, 0, 0}},
       Signature{{}, TypeKind::kVoid}, 0, 1, "newarray of bad element kind"},
      {"array load with a non-ref receiver",
       {{Op::kIconst, 0, 0},
        {Op::kIconst, 0, 0},
        {Op::kIaload, 0, 0},
        {Op::kIreturn, 0, 0}},
       Signature{{}, TypeKind::kInt}, 0, 2, "expected ref"},
      {"field pool index 0xFFFF",
       {{Op::kGetStatic, 0xFFFF, 0}, {Op::kReturn, 0, 0}},
       Signature{{}, TypeKind::kVoid}, 0, 0, "field pool index out of range"},
      {"new with a forged class pool index",
       {{Op::kNew, 0xFFFF, 0}, {Op::kPop, 0, 0}, {Op::kReturn, 0, 0}},
       Signature{{}, TypeKind::kVoid}, 0, 0, "class pool index out of range"},
      {"forged intrinsic id",
       {{Op::kInvokeIntrinsic, 9999, 0}, {Op::kReturn, 0, 0}},
       Signature{{}, TypeKind::kVoid}, 0, 0, "bad intrinsic id"},
  };
  for (const Case& c : cases) {
    ClassFile cf = raw_class(c.code, c.sig, c.max_locals);
    try {
      verify_class(cf);
      FAIL() << c.label << ": expected VerifyError";
    } catch (const VerifyError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("@" + std::to_string(c.pc) + ":"), std::string::npos)
          << c.label << ": message does not name pc " << c.pc << ": " << msg;
      EXPECT_NE(msg.find(c.why), std::string::npos)
          << c.label << ": message missing reason: " << msg;
    }
  }
}

}  // namespace
}  // namespace javelin::jvm
