// Pins the nisa specification table (isa/nspec.hpp) — the single source of
// truth the executor dispatch tables, the fused-stream builder and the
// static analyses are all stamped from. Coverage and enum-order are already
// compile-time errors; this suite pins the *cross-view agreements* that the
// type system cannot: mnemonics vs nop_name(), flag/operand consistency,
// fusion-legality shape, and the committed fused-pair table's invariants.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "isa/nspec.hpp"
#include "isa/nstream.hpp"

namespace javelin::isa {
namespace {

using nspec::NCategory;
using nspec::NOperandKind;
using nspec::spec;

NOp nth(std::size_t i) { return static_cast<NOp>(i); }

TEST(NSpec, MnemonicsAgreeWithNopNameAndAreUnique) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kNumNOps; ++i) {
    const NOp op = nth(i);
    ASSERT_NE(spec(op).mnemonic, nullptr);
    const std::string m = spec(op).mnemonic;
    EXPECT_FALSE(m.empty()) << i;
    EXPECT_EQ(m, nop_name(op)) << i;
    EXPECT_TRUE(seen.insert(m).second) << "duplicate mnemonic " << m;
  }
}

TEST(NSpec, BranchFlagIffBranchTargetOperand) {
  for (std::size_t i = 0; i < kNumNOps; ++i) {
    const NOp op = nth(i);
    EXPECT_EQ(nspec::uses_branch_target(op),
              spec(op).operand == NOperandKind::kBranchTarget)
        << nop_name(op);
  }
}

TEST(NSpec, ControlAndBridgeFlagsMatchCategories) {
  for (std::size_t i = 0; i < kNumNOps; ++i) {
    const NOp op = nth(i);
    const NCategory c = spec(op).category;
    // Every category that can leave the fall-through path carries kFlagCtrl;
    // calls/allocs transfer control on the *host* side only (the executor
    // resumes at pc + 1), so they are bridge, not ctrl.
    const bool ctrl = c == NCategory::kCondBranch || c == NCategory::kJump ||
                      c == NCategory::kReturn || c == NCategory::kTrap;
    EXPECT_EQ(nspec::transfers_control(op), ctrl) << nop_name(op);
    const bool bridge = c == NCategory::kCall || c == NCategory::kAlloc;
    EXPECT_EQ(nspec::is_bridge(op), bridge) << nop_name(op);
  }
}

TEST(NSpec, EnergyClassesFollowCategory) {
  for (std::size_t i = 0; i < kNumNOps; ++i) {
    const NOp op = nth(i);
    switch (spec(op).category) {
      case NCategory::kMemLoad:
        EXPECT_EQ(spec(op).cls, energy::InstrClass::kLoad) << nop_name(op);
        break;
      case NCategory::kMemStore:
        EXPECT_EQ(spec(op).cls, energy::InstrClass::kStore) << nop_name(op);
        break;
      case NCategory::kAluSimple:
        EXPECT_EQ(spec(op).cls, energy::InstrClass::kAluSimple)
            << nop_name(op);
        break;
      case NCategory::kAluComplex:
      case NCategory::kIntrinsic:
        EXPECT_EQ(spec(op).cls, energy::InstrClass::kAluComplex)
            << nop_name(op);
        break;
      case NCategory::kCondBranch:
      case NCategory::kJump:
      case NCategory::kCall:
      case NCategory::kReturn:
      case NCategory::kTrap:
      case NCategory::kAlloc:
        EXPECT_EQ(spec(op).cls, energy::InstrClass::kBranch) << nop_name(op);
        break;
      case NCategory::kNop:
        EXPECT_EQ(spec(op).cls, energy::InstrClass::kNop) << nop_name(op);
        break;
    }
  }
}

TEST(NSpec, FusionLegalityShape) {
  for (std::size_t i = 0; i < kNumNOps; ++i) {
    const NOp op = nth(i);
    // Bridge ops are never fusable on either side: their handlers flush the
    // register-cached core state and reset the fetch-line memo, which the
    // fused handlers' second-fetch replay relies on staying warm.
    if (nspec::is_bridge(op)) {
      EXPECT_FALSE(nspec::fusable_first(op)) << nop_name(op);
      EXPECT_FALSE(nspec::fusable_second(op)) << nop_name(op);
    }
    // Only straight-line ops or conditional branches may lead a pair.
    if (nspec::fusable_first(op))
      EXPECT_FALSE(nspec::transfers_control(op)) << nop_name(op);
    for (std::size_t j = 0; j < kNumNOps; ++j) {
      const NOp b = nth(j);
      EXPECT_EQ(nspec::fusable_pair_legal(op, b),
                (nspec::fusable_first(op) || nspec::is_cond_branch(op)) &&
                    nspec::fusable_second(b))
          << nop_name(op) << "+" << nop_name(b);
    }
  }
}

TEST(NSpec, PoolResolutionClobberScanIsConservative) {
  // writes_int_rd must cover every op whose handler assigns an integer
  // destination register — under-approximating would let the stream builder
  // pre-resolve a pool operand across a literal-base clobber. Spot-pin the
  // tricky rows: FP-destination ops do not write the int file.
  EXPECT_FALSE(nspec::writes_int_rd(NOp::kLdd));
  EXPECT_FALSE(nspec::writes_int_rd(NOp::kFmov));
  EXPECT_FALSE(nspec::writes_int_rd(NOp::kFadd));
  EXPECT_FALSE(nspec::writes_int_rd(NOp::kIntrD));
  EXPECT_TRUE(nspec::writes_int_rd(NOp::kLdw));
  EXPECT_TRUE(nspec::writes_int_rd(NOp::kD2i));
  EXPECT_TRUE(nspec::writes_int_rd(NOp::kFcmp));
  EXPECT_TRUE(nspec::writes_int_rd(NOp::kIntrI));
  EXPECT_TRUE(nspec::writes_int_rd(NOp::kRtNewArr));
  EXPECT_FALSE(nspec::writes_int_rd(NOp::kBeq));
  EXPECT_FALSE(nspec::writes_int_rd(NOp::kStw));
}

TEST(NSpec, CommittedFusedPairTableIsLegalRankedAndUnique) {
  ASSERT_GT(kNumFusedPairs, 0u);
  ASSERT_LE(kNumFusedPairs, 64u);
  std::set<std::pair<NOp, NOp>> seen;
  for (std::size_t i = 0; i < kNumFusedPairs; ++i) {
    const NFusePair& p = kFusedPairs[i];
    EXPECT_TRUE(nspec::fusable_pair_legal(p.a, p.b))
        << nop_name(p.a) << "+" << nop_name(p.b);
    EXPECT_EQ(p.branch_first, nspec::is_cond_branch(p.a))
        << nop_name(p.a) << "+" << nop_name(p.b);
    EXPECT_TRUE(seen.insert({p.a, p.b}).second)
        << "duplicate fused pair " << nop_name(p.a) << "+" << nop_name(p.b);
  }
}

}  // namespace
}  // namespace javelin::isa
