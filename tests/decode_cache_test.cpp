// The interpreter's pre-decoded bytecode cache is a host-side optimisation:
// it must not change anything the simulation observes. For every app in the
// registry, an interpreted run with the cache enabled (default) must charge
// exactly the same energy and cycles as one with the cache disabled, and
// produce a correct result either way.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "rt/device.hpp"

namespace javelin {
namespace {

struct RunTotals {
  double energy_j = 0;
  std::uint64_t cycles = 0;
  std::uint64_t steps = 0;
  std::uint64_t dram = 0;
  bool correct = false;
};

RunTotals run_interpreted(const apps::App& app, bool decode_cache) {
  rt::Device dev(isa::client_machine());
  dev.core.step_limit = ~0ULL;
  dev.vm.set_decode_cache(decode_cache);
  dev.deploy(app.classes);
  EXPECT_EQ(dev.vm.decode_cache_enabled(), decode_cache);
  dev.engine.set_force_interpret(true);

  Rng rng(7);
  auto args = app.make_args(dev.vm, app.small_scale, rng);
  const jvm::Value result =
      dev.engine.invoke(dev.vm.find_method(app.cls, app.method), args);

  RunTotals t;
  t.energy_j = dev.meter.total();
  t.cycles = dev.core.cycles;
  t.steps = dev.core.steps;
  t.dram = dev.meter.dram_accesses();
  t.correct = app.check(dev.vm, args, dev.vm, result);
  return t;
}

TEST(DecodeCache, SimulatedTotalsUnchangedForEveryApp) {
  for (const apps::App& app : apps::registry()) {
    SCOPED_TRACE(app.name);
    const RunTotals cached = run_interpreted(app, /*decode_cache=*/true);
    const RunTotals plain = run_interpreted(app, /*decode_cache=*/false);
    EXPECT_TRUE(cached.correct);
    EXPECT_TRUE(plain.correct);
    EXPECT_EQ(cached.steps, plain.steps);
    EXPECT_EQ(cached.cycles, plain.cycles);
    EXPECT_EQ(cached.dram, plain.dram);
    EXPECT_EQ(cached.energy_j, plain.energy_j);  // bitwise, not approximate
  }
}

TEST(DecodeCache, CannotToggleAfterLink) {
  rt::Device dev(isa::client_machine());
  dev.deploy(apps::app("sort").classes);
  EXPECT_THROW(dev.vm.set_decode_cache(false), Error);
}

TEST(DecodeCache, DisabledLeavesMethodsUndecoded) {
  rt::Device dev(isa::client_machine());
  dev.vm.set_decode_cache(false);
  dev.deploy(apps::app("sort").classes);
  const std::int32_t mid = dev.vm.find_method("Sort", "sortcopy");
  EXPECT_TRUE(dev.vm.method(mid).decoded.empty());
}

TEST(DecodeCache, EnabledDecodesEveryInstruction) {
  rt::Device dev(isa::client_machine());
  dev.deploy(apps::app("sort").classes);
  const std::int32_t mid = dev.vm.find_method("Sort", "sortcopy");
  const jvm::RtMethod& m = dev.vm.method(mid);
  EXPECT_EQ(m.decoded.size(), m.info->code.size());
}

}  // namespace
}  // namespace javelin
