// Unit tests for the JIT's CFG analyses on hand-built graphs: reverse
// postorder, dominators, natural loops and liveness.
#include <gtest/gtest.h>

#include "jit/analysis.hpp"

namespace javelin::jit {
namespace {

IInstr jmp(std::int32_t target) {
  IInstr in;
  in.op = IOp::kJmp;
  in.imm = target;
  return in;
}

IInstr br(std::int32_t target, std::int32_t a, std::int32_t b) {
  IInstr in;
  in.op = IOp::kBrEq;
  in.a = a;
  in.b = b;
  in.imm = target;
  return in;
}

IInstr ret() {
  IInstr in;
  in.op = IOp::kRet;
  return in;
}

IInstr def(std::int32_t d, std::int32_t imm = 0) {
  IInstr in;
  in.op = IOp::kConstI;
  in.d = d;
  in.imm = imm;
  return in;
}

IInstr add(std::int32_t d, std::int32_t a, std::int32_t b) {
  IInstr in;
  in.op = IOp::kIAdd;
  in.d = d;
  in.a = a;
  in.b = b;
  return in;
}

/// Diamond: 0 -> {1, 2} -> 3.
Function diamond() {
  Function f;
  for (int i = 0; i < 6; ++i) f.new_vreg(TypeKind::kInt);
  f.blocks.resize(4);
  f.blocks[0].instrs = {def(0), def(1), br(2, 0, 1)};
  f.blocks[0].succs = {2, 1};
  f.blocks[1].instrs = {def(2, 10), jmp(3)};
  f.blocks[1].succs = {3};
  f.blocks[2].instrs = {def(2, 20), jmp(3)};
  f.blocks[2].succs = {3};
  f.blocks[3].instrs = {add(3, 2, 0), ret()};
  f.recompute_preds();
  return f;
}

/// Loop: 0 -> 1 (header) -> 2 (body) -> 1; 1 -> 3 (exit).
Function loop() {
  Function f;
  for (int i = 0; i < 8; ++i) f.new_vreg(TypeKind::kInt);
  f.blocks.resize(4);
  f.blocks[0].instrs = {def(0), def(1, 100), jmp(1)};
  f.blocks[0].succs = {1};
  f.blocks[1].instrs = {br(3, 0, 1)};
  f.blocks[1].succs = {3, 2};
  f.blocks[2].instrs = {add(0, 0, 1), jmp(1)};
  f.blocks[2].succs = {1};
  f.blocks[3].instrs = {ret()};
  f.recompute_preds();
  return f;
}

TEST(Analysis, RpoVisitsEveryReachableBlockOnce) {
  Function f = diamond();
  CompileMeter m;
  const Analysis a = analyze(f, m);
  EXPECT_EQ(a.rpo.size(), 4u);
  EXPECT_EQ(a.rpo.front(), 0);
  // Every block appears exactly once.
  std::vector<int> seen(4, 0);
  for (std::int32_t b : a.rpo) ++seen[b];
  for (int s : seen) EXPECT_EQ(s, 1);
  // RPO property: 3 comes after both 1 and 2.
  EXPECT_GT(a.rpo_index[3], a.rpo_index[1]);
  EXPECT_GT(a.rpo_index[3], a.rpo_index[2]);
}

TEST(Analysis, DominatorsOfDiamond) {
  Function f = diamond();
  CompileMeter m;
  const Analysis a = analyze(f, m);
  EXPECT_EQ(a.idom[0], -1);
  EXPECT_EQ(a.idom[1], 0);
  EXPECT_EQ(a.idom[2], 0);
  EXPECT_EQ(a.idom[3], 0);  // join dominated by the split, not a branch arm
  EXPECT_TRUE(a.dominates(0, 3));
  EXPECT_FALSE(a.dominates(1, 3));
  EXPECT_TRUE(a.dominates(3, 3));
}

TEST(Analysis, UnreachableBlocksExcluded) {
  Function f = diamond();
  f.blocks.push_back(Block{{ret()}, {}, {}});  // unreachable block 4
  f.recompute_preds();
  CompileMeter m;
  const Analysis a = analyze(f, m);
  EXPECT_FALSE(a.reachable(4));
  EXPECT_EQ(a.rpo.size(), 4u);
}

TEST(Analysis, NaturalLoopDetection) {
  Function f = loop();
  CompileMeter m;
  const Analysis a = analyze(f, m);
  const auto loops = find_loops(f, a, m);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1);
  EXPECT_TRUE(loops[0].contains(1));
  EXPECT_TRUE(loops[0].contains(2));
  EXPECT_FALSE(loops[0].contains(0));
  EXPECT_FALSE(loops[0].contains(3));
}

TEST(Analysis, NoLoopsInDiamond) {
  Function f = diamond();
  CompileMeter m;
  const Analysis a = analyze(f, m);
  EXPECT_TRUE(find_loops(f, a, m).empty());
}

TEST(Analysis, LivenessAcrossLoop) {
  Function f = loop();
  CompileMeter m;
  const Liveness lv = compute_liveness(f, m);
  // v0 (induction) and v1 (bound) are live around the whole loop.
  EXPECT_TRUE(lv.live_out(0, 0));
  EXPECT_TRUE(lv.live_in(1, 0));
  EXPECT_TRUE(lv.live_out(2, 0));  // live across the back edge
  EXPECT_TRUE(lv.live_in(2, 1));
  // Nothing is live into the entry.
  EXPECT_FALSE(lv.live_in(0, 0));
  // Nothing is live out of the exit block.
  EXPECT_FALSE(lv.live_out(3, 0));
}

TEST(Analysis, LivenessDiamondJoin) {
  Function f = diamond();
  CompileMeter m;
  const Liveness lv = compute_liveness(f, m);
  // v2 is defined in both arms and used at the join: live out of arms,
  // live into the join.
  EXPECT_TRUE(lv.live_out(1, 2));
  EXPECT_TRUE(lv.live_out(2, 2));
  EXPECT_TRUE(lv.live_in(3, 2));
  // v2 is NOT live into the arms (defined there).
  EXPECT_FALSE(lv.live_in(1, 2));
  // v1 is dead after block 0's branch.
  EXPECT_FALSE(lv.live_in(3, 1));
}

}  // namespace
}  // namespace javelin::jit
