// Fault-injection tests: Gilbert-Elliott burstiness, outage windows,
// guaranteed-detectable corruption, per-direction link loss, CRC frame
// charging, and preservation of the legacy loss stream.
#include <gtest/gtest.h>

#include "net/fault.hpp"
#include "net/link.hpp"
#include "net/protocol.hpp"

namespace javelin::net {
namespace {

FaultPlan burst_plan(std::uint64_t seed = 7) {
  FaultPlan p;
  p.enabled = true;
  p.seed = seed;
  p.ge_p_good_to_bad = 0.1;
  p.ge_p_bad_to_good = 0.2;
  p.ge_loss_good = 0.0;
  p.ge_loss_bad = 1.0;
  return p;
}

TEST(FaultPlan, OutageWindowsAreDeterministicInTime) {
  FaultPlan p;
  p.enabled = true;
  p.outage_period_s = 10.0;
  p.outage_duration_s = 2.0;
  p.outage_phase_s = 1.0;
  EXPECT_FALSE(p.server_down(0.0));
  EXPECT_TRUE(p.server_down(1.0));
  EXPECT_TRUE(p.server_down(2.9));
  EXPECT_FALSE(p.server_down(3.0));
  EXPECT_TRUE(p.server_down(11.5));
  EXPECT_FALSE(p.server_down(13.0));
  EXPECT_TRUE(p.server_down(101.5));

  // Outages disabled: period 0, or the whole plan off.
  p.outage_period_s = 0.0;
  EXPECT_FALSE(p.server_down(1.0));
  p.outage_period_s = 10.0;
  p.enabled = false;
  EXPECT_FALSE(p.server_down(1.0));
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan p = burst_plan();
  p.corrupt_uplink_p = 0.3;
  p.corrupt_downlink_p = 0.3;
  p.spike_p = 0.2;
  p.spike_seconds = 0.5;

  FaultInjector a(p), b(p);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.uplink_lost(), b.uplink_lost());
    EXPECT_EQ(a.downlink_lost(), b.downlink_lost());
    EXPECT_EQ(a.corrupt_uplink(), b.corrupt_uplink());
    EXPECT_EQ(a.corrupt_downlink(), b.corrupt_downlink());
    EXPECT_EQ(a.latency_spike(), b.latency_spike());
  }
  EXPECT_EQ(a.counters().losses, b.counters().losses);
}

TEST(FaultInjector, ResetRestoresTheFullDecisionStream) {
  FaultInjector inj(burst_plan());
  std::vector<bool> first;
  for (int i = 0; i < 500; ++i) first.push_back(inj.uplink_lost());
  inj.reset();
  EXPECT_FALSE(inj.in_bad_state());
  EXPECT_EQ(inj.counters().messages, 0u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(inj.uplink_lost(), first[static_cast<std::size_t>(i)]);
}

TEST(FaultInjector, GilbertElliottLossesCluster) {
  // loss_good = 0 and loss_bad = 1, so losses mirror bad-state dwells: the
  // mean loss-run length should approach 1/p_bad_to_good = 5, far above the
  // ~1 a Bernoulli process of equal rate would produce.
  FaultInjector inj(burst_plan());
  const int n = 20000;
  int losses = 0, runs = 0;
  bool prev = false;
  for (int i = 0; i < n; ++i) {
    const bool lost = inj.uplink_lost();
    if (lost) {
      ++losses;
      if (!prev) ++runs;
    }
    prev = lost;
  }
  const double rate = static_cast<double>(losses) / n;
  // Stationary bad-state probability = 0.1 / (0.1 + 0.2) = 1/3.
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.5);
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(losses) / runs;
  EXPECT_GT(mean_run, 3.0);
}

TEST(FaultInjector, CorruptionAlwaysBreaksTheFrame) {
  InvokeRequest req;
  req.cls = "FE";
  req.method = "integrate";
  req.estimated_server_seconds = 0.01;
  req.args = {{1, 2, 3, 4}, {9, 9}};
  const std::vector<std::uint8_t> frame = req.encode();
  ASSERT_NO_THROW(InvokeRequest::decode(frame));

  FaultPlan p;
  p.enabled = true;
  p.seed = 99;
  FaultInjector inj(p);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> damaged = frame;
    inj.corrupt(damaged);
    EXPECT_NE(damaged, frame);
    // CRC32 framing turns every single-bit flip and every strict-prefix
    // truncation into FormatError — never a crash, never silent garbage.
    EXPECT_THROW(InvokeRequest::decode(damaged), FormatError);
  }
}

TEST(Link, PerDirectionLossIsIndependent) {
  energy::EnergyMeter meter;
  {
    Link link(radio::CommModel{}, 3);
    link.set_direction_loss(1.0, 0.0);
    EXPECT_TRUE(link.client_send(100, radio::PowerClass::kClass4, meter).lost);
    EXPECT_FALSE(link.client_recv(100, meter).lost);
  }
  {
    Link link(radio::CommModel{}, 3);
    link.set_direction_loss(0.0, 1.0);
    EXPECT_FALSE(link.client_send(100, radio::PowerClass::kClass4, meter).lost);
    EXPECT_TRUE(link.client_recv(100, meter).lost);
  }
  // The radio listened / transmitted either way: energy is charged on loss.
  EXPECT_GT(meter.of(energy::Subsystem::kCommTx), 0.0);
  EXPECT_GT(meter.of(energy::Subsystem::kCommRx), 0.0);
}

TEST(Link, LegacyLossStreamIsUntouchedByNewModels) {
  // The legacy whole-exchange loss draws the same deterministic stream it
  // always has: one bernoulli(p) per send, straight from the link seed —
  // with per-direction loss and fault injection off, nothing else draws.
  const std::uint64_t seed = 42;
  const double p = 0.3;
  Link link(radio::CommModel{}, seed);
  link.set_loss_probability(p);
  Rng reference(seed);
  energy::EnergyMeter meter;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(link.client_send(50, radio::PowerClass::kClass2, meter).lost,
              reference.bernoulli(p));
    // Downlink draws nothing in this configuration.
    EXPECT_FALSE(link.client_recv(50, meter).lost);
  }
}

TEST(Link, CrcFrameBytesChargedOnlyUnderFaultInjection) {
  energy::EnergyMeter plain_meter, faulty_meter;
  Link plain(radio::CommModel{}, 5);
  Link faulty(radio::CommModel{}, 5);
  FaultPlan p;
  p.enabled = true;  // all probabilities zero: overhead but no faults
  faulty.attach_faults(p);
  ASSERT_NE(faulty.fault_injector(), nullptr);
  EXPECT_EQ(plain.fault_injector(), nullptr);

  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(
        faulty.client_send(200, radio::PowerClass::kClass4, faulty_meter).lost);
    EXPECT_FALSE(faulty.client_recv(200, faulty_meter).lost);
    plain.client_send(200, radio::PowerClass::kClass4, plain_meter);
    plain.client_recv(200, plain_meter);
  }
  // Same payload bytes, but the faulty link carries the 4-byte CRC trailer.
  EXPECT_GT(faulty_meter.of(energy::Subsystem::kCommTx),
            plain_meter.of(energy::Subsystem::kCommTx));
  EXPECT_GT(faulty_meter.of(energy::Subsystem::kCommRx),
            plain_meter.of(energy::Subsystem::kCommRx));

  // A disabled plan attaches nothing: byte accounting identical to legacy.
  Link ignored(radio::CommModel{}, 5);
  ignored.attach_faults(FaultPlan{});
  EXPECT_EQ(ignored.fault_injector(), nullptr);
}

}  // namespace
}  // namespace javelin::net
