// Radio model tests: the paper's Fig 2 component powers, transmit/receive
// energies at the 2.3 Mbps effective rate, channel processes and the pilot
// estimator.
#include <gtest/gtest.h>

#include "net/link.hpp"
#include "radio/radio.hpp"

namespace javelin::radio {
namespace {

TEST(ComponentPowers, MatchesPaperFig2) {
  const ComponentPowers p;
  EXPECT_DOUBLE_EQ(p.mixer_rx, 33.75e-3);
  EXPECT_DOUBLE_EQ(p.demodulator_rx, 37.8e-3);
  EXPECT_DOUBLE_EQ(p.adc_rx, 710e-3);
  EXPECT_DOUBLE_EQ(p.dac_tx, 185e-3);
  EXPECT_DOUBLE_EQ(p.pa(PowerClass::kClass1), 5.88);
  EXPECT_DOUBLE_EQ(p.pa(PowerClass::kClass2), 1.5);
  EXPECT_DOUBLE_EQ(p.pa(PowerClass::kClass3), 0.74);
  EXPECT_DOUBLE_EQ(p.pa(PowerClass::kClass4), 0.37);
  EXPECT_DOUBLE_EQ(p.driver_amp_tx, 102.6e-3);
  EXPECT_DOUBLE_EQ(p.modulator_tx, 108e-3);
  EXPECT_DOUBLE_EQ(p.vco, 90e-3);
}

TEST(CommModel, RateAndEnergies) {
  const CommModel comm;
  EXPECT_DOUBLE_EQ(comm.bit_rate(), 2.3e6);
  // 1 kB at 2.3 Mbps = 8000/2.3e6 s.
  EXPECT_NEAR(comm.tx_seconds(1000), 8000.0 / 2.3e6, 1e-12);
  // Tx energy is time x chain power; Class 1 costs ~7.4x Class 4.
  const double e1 = comm.tx_energy(1000, PowerClass::kClass1);
  const double e4 = comm.tx_energy(1000, PowerClass::kClass4);
  EXPECT_NEAR(e1 / e4, (5.88 + 0.4856) / (0.37 + 0.4856), 1e-9);
  // Rx chain power: mixer + demod + ADC + VCO.
  EXPECT_NEAR(comm.rx_energy(1000),
              8000.0 / 2.3e6 * (0.03375 + 0.0378 + 0.710 + 0.090), 1e-9);
}

TEST(FixedChannel, Constant) {
  FixedChannel c(PowerClass::kClass2);
  EXPECT_EQ(c.at(0.0), PowerClass::kClass2);
  EXPECT_EQ(c.at(1e9), PowerClass::kClass2);
}

TEST(IidChannel, MatchesDistribution) {
  IidChannel c({0.1, 0.2, 0.3, 0.4}, 0.01, 77);
  std::array<int, 4> counts{};
  for (int i = 0; i < 40000; ++i)
    ++counts[static_cast<std::size_t>(c.at(i * 0.01)) - 1];
  EXPECT_NEAR(counts[0] / 40000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 40000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 40000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 40000.0, 0.4, 0.02);
}

TEST(IidChannel, DeterministicPerSlot) {
  IidChannel c({1, 1, 1, 1}, 0.1, 5);
  for (double t : {0.0, 0.05, 0.3, 7.77}) EXPECT_EQ(c.at(t), c.at(t));
  IidChannel c2({1, 1, 1, 1}, 0.1, 5);
  EXPECT_EQ(c.at(0.42), c2.at(0.42));  // same seed, same trace
}

TEST(IidChannel, RejectsBadArguments) {
  EXPECT_THROW(IidChannel({1, 1, 1, 1}, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(IidChannel({0, 0, 0, 0}, 0.1, 1), std::invalid_argument);
}

TEST(MarkovChannel, StaysInStateSpaceAndMixes) {
  MarkovChannel c(MarkovChannel::default_transition(), PowerClass::kClass4,
                  0.01, 3);
  std::array<int, 4> counts{};
  for (int i = 0; i < 20000; ++i) {
    const PowerClass pc = c.at(i * 0.01);
    ASSERT_GE(static_cast<int>(pc), 1);
    ASSERT_LE(static_cast<int>(pc), 4);
    ++counts[static_cast<std::size_t>(pc) - 1];
  }
  for (int k : counts) EXPECT_GT(k, 500);  // every state visited
}

TEST(PilotEstimator, LagsByAtMostOnePeriod) {
  IidChannel c({1, 1, 1, 1}, 0.005, 11);
  PilotEstimator est(c, 0.020);
  // The estimate equals the channel at the last pilot sample time.
  for (double t : {0.001, 0.019, 0.021, 0.100, 0.555}) {
    const double sample = std::floor(t / 0.020) * 0.020;
    EXPECT_EQ(est.estimate(t), c.at(sample));
  }
}

TEST(Link, ChargesClientMeter) {
  net::Link link;
  energy::EnergyMeter meter;
  const auto up = link.client_send(1000, PowerClass::kClass4, meter);
  EXPECT_FALSE(up.lost);
  EXPECT_NEAR(up.seconds, 8000.0 / 2.3e6, 1e-12);
  EXPECT_GT(meter.of(energy::Subsystem::kCommTx), 0.0);
  const auto down = link.client_recv(500, meter);
  EXPECT_GT(meter.of(energy::Subsystem::kCommRx), 0.0);
  EXPECT_NEAR(down.seconds, 4000.0 / 2.3e6, 1e-12);
}

TEST(Link, LossProbability) {
  net::Link link(radio::CommModel{}, 99);
  link.set_loss_probability(0.5);
  energy::EnergyMeter meter;
  int lost = 0;
  for (int i = 0; i < 1000; ++i)
    if (link.client_send(10, PowerClass::kClass4, meter).lost) ++lost;
  EXPECT_NEAR(lost / 1000.0, 0.5, 0.08);
}

}  // namespace
}  // namespace javelin::radio
