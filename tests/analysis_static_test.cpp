// src/analysis tests: bytecode CFG construction, the lint checks (and their
// corpus calibration), static cost estimation pinned against two benchmark
// methods, offload-safety verdicts, interprocedural recursion cut-off, and
// the analyzer's obs trace events.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/analyzer.hpp"
#include "analysis/bytecode_cfg.hpp"
#include "analysis/intervals.hpp"
#include "analysis/wcec.hpp"
#include "apps/app.hpp"
#include "isa/nisa.hpp"
#include "jvm/builder.hpp"
#include "jvm/verifier.hpp"

namespace javelin::analysis {
namespace {

using jvm::Op;

jvm::ClassFile raw_class(std::vector<jvm::Insn> code, jvm::Signature sig,
                         std::uint16_t max_locals,
                         const std::string& name = "Raw") {
  jvm::ClassFile cf;
  cf.name = name;
  jvm::MethodInfo m;
  m.name = "f";
  m.sig = std::move(sig);
  m.is_static = true;
  m.max_locals = max_locals;
  m.code = std::move(code);
  cf.methods.push_back(std::move(m));
  return cf;
}

std::vector<Diagnostic> lint_raw(const jvm::ClassFile& cf) {
  std::vector<Diagnostic> out;
  lint_method(cf, cf.methods[0], out);
  sort_diagnostics(out);
  return out;
}

bool has(const std::vector<Diagnostic>& ds, const char* code, int pc) {
  for (const Diagnostic& d : ds)
    if (d.code == code && d.pc == pc) return true;
  return false;
}

/// Analyze one method of one shipped benchmark app.
MethodAnalysis analyze_app_method(const std::string& app,
                                  const std::string& method) {
  const apps::App& a = apps::app(app);
  jvm::ClassSetResolver resolver;
  for (const jvm::ClassFile& cf : a.classes) resolver.add(&cf);
  Analyzer analyzer(resolver);
  for (const jvm::ClassFile& cf : a.classes)
    for (const jvm::MethodInfo& m : cf.methods)
      if (m.name == method) return analyzer.analyze_method(cf, m);
  throw std::runtime_error("no such method: " + method);
}

// ---------------------------------------------------------------------------
// Bytecode CFG
// ---------------------------------------------------------------------------

TEST(BytecodeCfg, SplitsAtBranchesAndTargets) {
  // 0: iload 0
  // 1: ifeq -> 4
  // 2: iconst 1
  // 3: goto -> 5
  // 4: iconst 2
  // 5: ireturn        (join point)
  const jvm::ClassFile cf = raw_class({{Op::kIload, 0, 0},
                                       {Op::kIfeq, 4, 0},
                                       {Op::kIconst, 1, 0},
                                       {Op::kGoto, 5, 0},
                                       {Op::kIconst, 2, 0},
                                       {Op::kIreturn, 0, 0}},
                                      {{jvm::TypeKind::kInt},
                                       jvm::TypeKind::kInt},
                                      1);
  const BytecodeCfg cfg = build_bytecode_cfg(cf.methods[0].code);
  ASSERT_EQ(cfg.num_blocks(), 4u);
  EXPECT_EQ(cfg.blocks[0].begin, 0);
  EXPECT_EQ(cfg.blocks[0].end, 2);
  // Conditional branch: fallthrough first, then target.
  ASSERT_EQ(cfg.graph.succs[0].size(), 2u);
  EXPECT_EQ(cfg.graph.succs[0][0], 1);
  EXPECT_EQ(cfg.graph.succs[0][1], 2);
  // The join block has two predecessors.
  EXPECT_EQ(cfg.graph.preds[3].size(), 2u);
  // block_of maps every pc into its block.
  EXPECT_EQ(cfg.block_of[0], 0);
  EXPECT_EQ(cfg.block_of[3], 1);
  EXPECT_EQ(cfg.block_of[5], 3);
}

TEST(BytecodeCfg, EmptyCodeYieldsEmptyCfg) {
  const BytecodeCfg cfg = build_bytecode_cfg({});
  EXPECT_EQ(cfg.num_blocks(), 0u);
}

// ---------------------------------------------------------------------------
// Lint
// ---------------------------------------------------------------------------

TEST(Lint, FlagsDeadStoreAndUnreachableBlock) {
  // The canonical seeded example (javelin_lint --self-check uses the same
  // shape): a store that is overwritten before any read, and code after the
  // return. Both verify cleanly — the verifier only walks reachable code.
  jvm::ClassFile cf = raw_class({{Op::kIload, 0, 0},
                                 {Op::kIstore, 1, 0},   // dead store
                                 {Op::kIconst, 2, 0},
                                 {Op::kIstore, 1, 0},
                                 {Op::kIload, 1, 0},
                                 {Op::kIreturn, 0, 0},
                                 {Op::kIconst, 7, 0},   // unreachable
                                 {Op::kIreturn, 0, 0}},
                                {{jvm::TypeKind::kInt}, jvm::TypeKind::kInt},
                                2);
  EXPECT_NO_THROW(jvm::verify_class(cf));
  const auto ds = lint_raw(cf);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_TRUE(has(ds, "dead-store", 1));
  EXPECT_EQ(ds[0].severity, Severity::kWarning);
  EXPECT_TRUE(has(ds, "unreachable-block", 6));
  EXPECT_EQ(ds[1].severity, Severity::kError);
}

TEST(Lint, FlagsPeepholePatterns) {
  // iconst 2, iconst 3, iadd  -> constant-foldable @2
  // iload 0, iload 0, istore 1 -> redundant-load-pair @4 (not the x*x idiom)
  // iconst 9, pop             -> pop-of-pure-value @7
  const jvm::ClassFile cf = raw_class({{Op::kIconst, 2, 0},
                                       {Op::kIconst, 3, 0},
                                       {Op::kIadd, 0, 0},
                                       {Op::kIload, 0, 0},
                                       {Op::kIload, 0, 0},
                                       {Op::kIstore, 1, 0},
                                       {Op::kIconst, 9, 0},
                                       {Op::kPop, 0, 0},
                                       {Op::kIreturn, 0, 0}},
                                      {{jvm::TypeKind::kInt},
                                       jvm::TypeKind::kInt},
                                      2);
  const auto ds = lint_raw(cf);
  EXPECT_TRUE(has(ds, "constant-foldable", 2));
  EXPECT_TRUE(has(ds, "redundant-load-pair", 4));
  EXPECT_TRUE(has(ds, "pop-of-pure-value", 7));
}

TEST(Lint, CalibrationSuppressesDeliberateIdioms) {
  // x*x squaring, 1 << 30 bit-flag construction, and BIG + 1 named-constant
  // arithmetic are all deliberate patterns in the shipped benchmarks; the
  // checks are calibrated to stay silent on them (the whole corpus lints
  // clean — javelin_lint --self-check enforces that end to end).
  const jvm::ClassFile square = raw_class({{Op::kIload, 0, 0},
                                           {Op::kIload, 0, 0},
                                           {Op::kImul, 0, 0},
                                           {Op::kIreturn, 0, 0}},
                                          {{jvm::TypeKind::kInt},
                                           jvm::TypeKind::kInt},
                                          1);
  EXPECT_TRUE(lint_raw(square).empty());

  const jvm::ClassFile flag = raw_class({{Op::kIconst, 1, 0},
                                         {Op::kIconst, 30, 0},
                                         {Op::kIshl, 0, 0},
                                         {Op::kIreturn, 0, 0}},
                                        {{}, jvm::TypeKind::kInt}, 0);
  EXPECT_TRUE(lint_raw(flag).empty());

  const jvm::ClassFile sentinel = raw_class({{Op::kIconst, 1 << 29, 0},
                                             {Op::kIconst, 1, 0},
                                             {Op::kIadd, 0, 0},
                                             {Op::kIreturn, 0, 0}},
                                            {{}, jvm::TypeKind::kInt}, 0);
  EXPECT_TRUE(lint_raw(sentinel).empty());
}

TEST(Lint, PeepholeChecksSkipUnreachableBlocks) {
  // The unreachable block contains a pop-of-pure-value; only the
  // unreachable-block error should be reported for it.
  const jvm::ClassFile cf = raw_class({{Op::kIconst, 1, 0},
                                       {Op::kIreturn, 0, 0},
                                       {Op::kIconst, 2, 0},
                                       {Op::kPop, 0, 0},
                                       {Op::kIconst, 3, 0},
                                       {Op::kIreturn, 0, 0}},
                                      {{}, jvm::TypeKind::kInt}, 0);
  const auto ds = lint_raw(cf);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].code, "unreachable-block");
  EXPECT_EQ(ds[0].pc, 2);
}

TEST(Lint, DiagnosticsAreDeterministicallyOrdered) {
  const apps::App& a = apps::app("fe");
  const auto first = lint_class(a.classes[0]);
  const auto second = lint_class(a.classes[0]);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].pc, second[i].pc);
    EXPECT_EQ(first[i].code, second[i].code);
  }
}

// ---------------------------------------------------------------------------
// Static cost estimation
// ---------------------------------------------------------------------------

TEST(Cost, PinsFeIntegrandSummary) {
  const MethodAnalysis r = analyze_app_method("fe", "f");
  EXPECT_EQ(r.cost.num_blocks, 1);
  EXPECT_EQ(r.cost.num_insns, 33);
  EXPECT_EQ(r.cost.max_loop_depth, 0);
  EXPECT_FALSE(r.cost.recursive);
  // Pinned golden value: straight-line transcendental evaluation.
  EXPECT_NEAR(r.cost.energy_j, 1.593312e-06, 1e-11);
}

TEST(Cost, PinsFeIntegrateSummary) {
  const MethodAnalysis r = analyze_app_method("fe", "integrate");
  EXPECT_EQ(r.cost.num_blocks, 4);
  EXPECT_EQ(r.cost.num_insns, 39);
  EXPECT_EQ(r.cost.max_loop_depth, 1);
  EXPECT_FALSE(r.cost.recursive);
  // Pinned golden value: the loop body (which inlines FE.f's summary) is
  // weighted by the loop-trip factor.
  EXPECT_NEAR(r.cost.energy_j, 2.349919e-05, 1e-10);
  // Interprocedural sanity: one loop-weighted call to FE.f dominates, so
  // integrate must cost well over the default trip weight times f.
  const MethodAnalysis f = analyze_app_method("fe", "f");
  EXPECT_GT(r.cost.energy_j, 10.0 * f.cost.energy_j);
}

TEST(Cost, PinsSortQsortSummary) {
  const MethodAnalysis r = analyze_app_method("sort", "qsort");
  EXPECT_EQ(r.cost.num_blocks, 9);
  EXPECT_EQ(r.cost.num_insns, 96);
  EXPECT_EQ(r.cost.max_loop_depth, 1);
  EXPECT_TRUE(r.cost.recursive);  // Self-recursion is cut off, not followed.
  EXPECT_NEAR(r.cost.energy_j, 6.475422e-05, 1e-10);
}

TEST(Cost, RecursionCutOffTerminates) {
  // Mutually recursive a <-> b: the estimator must terminate, flag both as
  // recursive, and produce a finite energy figure.
  jvm::ClassBuilder cb("Mut");
  auto& a = cb.method("a", {{jvm::TypeKind::kInt}, jvm::TypeKind::kInt});
  a.iload("p0").invokestatic("Mut", "b").iret();
  auto& b = cb.method("b", {{jvm::TypeKind::kInt}, jvm::TypeKind::kInt});
  b.iload("p0").invokestatic("Mut", "a").iret();
  const jvm::ClassFile cf = cb.build();

  jvm::ClassSetResolver resolver;
  resolver.add(&cf);
  CostEstimator est(resolver);
  const StaticCostSummary& sa = est.summarize(cf, cf.methods[0]);
  EXPECT_TRUE(sa.recursive);
  EXPECT_GT(sa.energy_j, 0.0);
  EXPECT_LT(sa.energy_j, 1.0);  // Finite, not a blow-up.
}

// ---------------------------------------------------------------------------
// Offload safety
// ---------------------------------------------------------------------------

TEST(Offload, BenchmarkVerdicts) {
  const MethodAnalysis f = analyze_app_method("fe", "f");
  EXPECT_TRUE(f.safety.offloadable());
  EXPECT_EQ(safety_verdict(f.safety), "offloadable");
  EXPECT_EQ(f.safety.request_bytes_bound, 9);  // One double argument.

  const MethodAnalysis integrate = analyze_app_method("fe", "integrate");
  EXPECT_TRUE(integrate.safety.offloadable());
  EXPECT_EQ(integrate.safety.request_bytes_bound, 23);  // d + d + i.

  const MethodAnalysis qsort = analyze_app_method("sort", "qsort");
  EXPECT_TRUE(qsort.safety.offloadable());
  EXPECT_TRUE(qsort.safety.mutates_params);
  EXPECT_TRUE(qsort.safety.recursive);
  EXPECT_EQ(qsort.safety.request_bytes_bound, -1);  // Ref argument.
}

TEST(Offload, StaticWriteBlocksOffload) {
  jvm::ClassBuilder cb("S");
  cb.field("total", jvm::TypeKind::kInt, /*is_static=*/true);
  auto& m = cb.method("bump", {{jvm::TypeKind::kInt}, jvm::TypeKind::kInt});
  m.getstatic("S", "total").iload("p0").iadd().putstatic("S", "total");
  m.getstatic("S", "total").iret();
  const jvm::ClassFile cf = cb.build();

  jvm::ClassSetResolver resolver;
  resolver.add(&cf);
  const OffloadSafety s = OffloadAnalyzer(resolver).analyze(cf, cf.methods[0]);
  EXPECT_TRUE(s.writes_statics);
  EXPECT_FALSE(s.offloadable());
}

TEST(Offload, AllocationInLoopIsFlagged) {
  jvm::ClassBuilder cb("A");
  auto& m = cb.method("grow", {{jvm::TypeKind::kInt}, jvm::TypeKind::kInt});
  auto loop = m.new_label(), done = m.new_label();
  const auto i = m.local("i");
  (void)i;
  m.iconst(0).istore("i");
  m.bind(loop);
  m.iload("i").iload("p0").if_icmpge(done);
  m.iconst(8).newarray(jvm::TypeKind::kInt).pop();
  m.iload("i").iconst(1).iadd().istore("i");
  m.goto_(loop);
  m.bind(done);
  m.iload("i").iret();
  const jvm::ClassFile cf = cb.build();

  jvm::ClassSetResolver resolver;
  resolver.add(&cf);
  const OffloadSafety s = OffloadAnalyzer(resolver).analyze(cf, cf.methods[0]);
  EXPECT_TRUE(s.alloc_in_loop);
  EXPECT_TRUE(s.offloadable());  // A bound concern, not a correctness one.
}

TEST(Offload, UnresolvedCalleeBlocksOffload) {
  const jvm::ClassFile cf = raw_class(
      {{Op::kInvokeStatic, 0, 0}, {Op::kReturn, 0, 0}},
      {{}, jvm::TypeKind::kVoid}, 0);
  // The pool has no method entry 0 resolvable anywhere.
  jvm::ClassSetResolver resolver;
  const OffloadSafety s = OffloadAnalyzer(resolver).analyze(cf, cf.methods[0]);
  EXPECT_TRUE(s.calls_unresolved);
  EXPECT_FALSE(s.offloadable());
}

// ---------------------------------------------------------------------------
// Analyzer + obs events
// ---------------------------------------------------------------------------

TEST(Analyzer, EmitsOneAnalysisEventPerMethodWhenTraced) {
  const apps::App& a = apps::app("fe");
  jvm::ClassSetResolver resolver;
  for (const jvm::ClassFile& cf : a.classes) resolver.add(&cf);

  Analyzer analyzer(resolver);
  obs::TraceBuffer buf("test");
  analyzer.set_trace(&buf);
  std::size_t methods = 0;
  for (const jvm::ClassFile& cf : a.classes)
    methods += analyzer.analyze_class(cf).size();

  ASSERT_EQ(buf.events().size(), methods);
  for (const obs::TraceEvent& e : buf.events()) {
    EXPECT_EQ(e.kind, obs::EventKind::kAnalysis);
    EXPECT_GT(e.b, 0.0);  // Deterministic pass work units, never a clock.
  }
  EXPECT_EQ(buf.string_at(buf.events()[0].name), "FE.f");
  EXPECT_EQ(buf.string_at(buf.events()[0].detail), "offloadable");
}

TEST(Analyzer, NoBufferMeansNoEvents) {
  // The nullptr-hook convention: an untrace analyzer touches no obs state
  // and produces the same analysis results.
  const apps::App& a = apps::app("fe");
  jvm::ClassSetResolver resolver;
  for (const jvm::ClassFile& cf : a.classes) resolver.add(&cf);

  Analyzer untraced(resolver);
  Analyzer traced(resolver);
  obs::TraceBuffer buf("test");
  traced.set_trace(&buf);

  const auto r1 = untraced.analyze_class(a.classes[0]);
  const auto r2 = traced.analyze_class(a.classes[0]);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1[i].cost.energy_j, r2[i].cost.energy_j);
    EXPECT_EQ(r1[i].safety.offloadable(), r2[i].safety.offloadable());
    EXPECT_EQ(r1[i].diagnostics.size(), r2[i].diagnostics.size());
  }
  EXPECT_EQ(buf.events().size(), r2.size());  // And only the traced one emits.
}

// ---------------------------------------------------------------------------
// Interval lattice (analysis/intervals.hpp, DESIGN.md §15)
// ---------------------------------------------------------------------------

TEST(Intervals, LoopBoundsProofFromArgumentFact) {
  // for (i = 0; i < a.length; ++i) sum += a[i]: the canonical induction
  // pattern. With an array-length fact the access is proven in-bounds and
  // the loop body's execution count is bounded by the length's ceiling.
  jvm::ClassBuilder cb("L");
  auto& m = cb.method("sum", {{jvm::TypeKind::kRef}, jvm::TypeKind::kInt});
  auto loop = m.new_label(), done = m.new_label();
  m.iconst(0).istore("s").iconst(0).istore("i");
  m.bind(loop);
  m.iload("i").aload("p0").arraylength().if_icmpge(done);
  m.iload("s").aload("p0").iload("i").iaload().iadd().istore("s");
  m.iload("i").iconst(1).iadd().istore("i");
  m.goto_(loop);
  m.bind(done);
  m.iload("s").iret();
  const jvm::ClassFile cf = cb.build();

  jvm::ClassSetResolver resolver;
  resolver.add(&cf);
  ArgFact fact;
  fact.non_null = true;
  fact.is_array = true;
  fact.array_len = Interval{16, 16};
  const std::vector<ArgFact> args{fact};
  const MethodIntervals mi =
      analyze_intervals(cf, cf.methods[0], &resolver, args);
  ASSERT_TRUE(mi.converged);
  EXPECT_TRUE(mi.reducible);
  // The single kIaload is proven; the analysis needs no dominating access
  // and no caller fact beyond the length.
  std::int32_t iaload_pc = -1;
  for (std::size_t pc = 0; pc < cf.methods[0].code.size(); ++pc)
    if (cf.methods[0].code[pc].op == Op::kIaload)
      iaload_pc = static_cast<std::int32_t>(pc);
  ASSERT_GE(iaload_pc, 0);
  EXPECT_EQ(mi.proven_inbounds[static_cast<std::size_t>(iaload_pc)], 1);
  // The loop body's execution bound is finite and near the true 16 (the
  // inference is conservative by a small widening-threshold slack).
  const std::int32_t body = mi.cfg.block_of[iaload_pc];
  EXPECT_LE(mi.block_count[static_cast<std::size_t>(body)], 18.0);
  // And without the fact, the same access is unproven and the loop
  // unbounded — the relational a.length fact alone cannot bound the trip
  // count, only argument knowledge can.
  const MethodIntervals bare = analyze_intervals(cf, cf.methods[0], &resolver);
  ASSERT_TRUE(bare.converged);
  EXPECT_EQ(bare.proven_inbounds[static_cast<std::size_t>(iaload_pc)], 1)
      << "i < a.length is relational: in-bounds holds for every input";
  EXPECT_TRUE(std::isinf(bare.block_count[static_cast<std::size_t>(body)]));
}

TEST(Intervals, InfeasibleEdgeStateIsKilledNotClamped) {
  // x = 5; if (x > 3) return 1; return x; — the fall-through edge is
  // infeasible. A clamping meet would leak a contradictory interval into
  // the return; the kill must instead mark the branch always-taken and
  // keep the dead block's count at zero reachability-wise.
  jvm::ClassBuilder cb("K");
  auto& m = cb.method("f", {{}, jvm::TypeKind::kInt});
  auto taken = m.new_label();
  m.iconst(5).istore("x");
  m.iload("x").iconst(3).if_icmpgt(taken);
  m.iload("x").iret();
  m.bind(taken);
  m.iconst(1).iret();
  const jvm::ClassFile cf = cb.build();

  jvm::ClassSetResolver resolver;
  resolver.add(&cf);
  const MethodIntervals mi = analyze_intervals(cf, cf.methods[0], &resolver);
  ASSERT_TRUE(mi.converged);
  ASSERT_EQ(mi.branch_facts.size(), 1u);
  EXPECT_TRUE(mi.branch_facts[0].always_taken);
}

TEST(Intervals, WideningTerminatesOnUnboundedLoop) {
  // while (n != 0) --n; with n unknown: no finite trip bound exists, so
  // the fixpoint must still terminate (delayed widening) and the loop
  // block's count must honestly be infinite.
  jvm::ClassBuilder cb("W");
  auto& m = cb.method("spin", {{jvm::TypeKind::kInt}, jvm::TypeKind::kVoid});
  auto loop = m.new_label(), done = m.new_label();
  m.bind(loop);
  m.iload("p0").ifeq(done);
  m.iload("p0").iconst(1).isub().istore("p0");
  m.goto_(loop);
  m.bind(done);
  m.ret();
  const jvm::ClassFile cf = cb.build();

  jvm::ClassSetResolver resolver;
  resolver.add(&cf);
  const MethodIntervals mi = analyze_intervals(cf, cf.methods[0], &resolver);
  ASSERT_TRUE(mi.converged);
  bool saw_infinite = false;
  for (double c : mi.block_count) saw_infinite = saw_infinite || std::isinf(c);
  EXPECT_TRUE(saw_infinite);
  // Termination itself is the assertion: a widening bug would spin the
  // solver into its transfer bound and fail `converged` instead.
}

TEST(Intervals, GuaranteedOobDetected) {
  // new int[3] indexed with constant 7: the index interval lies entirely
  // outside [0, 3), so the access is a guaranteed trap for every input.
  jvm::ClassBuilder cb("O");
  auto& m = cb.method("f", {{}, jvm::TypeKind::kInt});
  m.iconst(3).newarray(jvm::TypeKind::kInt).astore("a");
  m.aload("a").iconst(7).iaload().iret();
  const jvm::ClassFile cf = cb.build();

  jvm::ClassSetResolver resolver;
  resolver.add(&cf);
  const MethodIntervals mi = analyze_intervals(cf, cf.methods[0], &resolver);
  ASSERT_TRUE(mi.converged);
  ASSERT_EQ(mi.oob_facts.size(), 1u);
  EXPECT_EQ(cf.methods[0].code[static_cast<std::size_t>(mi.oob_facts[0].pc)].op,
            Op::kIaload);
}

TEST(Intervals, StepInsideNestedInnerLoopCannotBoundOuterLoop) {
  // int32-wrap attack on trip inference: the outer "induction" variable i
  // is stepped inside a nested inner loop, so one outer iteration advances
  // it inner-trip times (2^15 steps of 2^17 = 2^32, a full int32 wrap back
  // to exactly its old value), while the equality back edge refines i to a
  // singleton at the outer header. The per-site step-sum wrap guard alone
  // would admit a finite outer bound for this *unbounded* execution; the
  // stepping site's inner-loop membership must disqualify the candidate.
  jvm::ClassBuilder cb("NL");
  auto& m = cb.method("f", {{}, jvm::TypeKind::kVoid});
  auto outer = m.new_label(), inner = m.new_label(), done = m.new_label();
  m.iconst(5).istore("i");
  m.bind(outer);
  m.iload("i").iconst(10).if_icmpge(done);  // Outer header: i in [.., 10).
  m.iconst(0).istore("j");
  m.bind(inner);
  m.iload("i").iconst(1 << 17).iadd().istore("i");  // Step in the inner loop.
  m.iload("j").iconst(1).iadd().istore("j");
  m.iload("j").iconst(1 << 15).if_icmplt(inner);
  m.iload("i").iconst(5).if_icmpeq(outer);  // i wraps to exactly 5: forever.
  m.bind(done);
  m.ret();
  const jvm::ClassFile cf = cb.build();

  jvm::ClassSetResolver resolver;
  resolver.add(&cf);
  const MethodIntervals mi = analyze_intervals(cf, cf.methods[0], &resolver);
  ASSERT_TRUE(mi.converged);
  EXPECT_TRUE(mi.reducible);
  std::int32_t header_pc = -1;
  for (std::size_t pc = 0; pc < cf.methods[0].code.size(); ++pc)
    if (cf.methods[0].code[pc].op == Op::kIfIcmpGe)
      header_pc = static_cast<std::int32_t>(pc);
  ASSERT_GE(header_pc, 0);
  const std::int32_t hb = mi.cfg.block_of[static_cast<std::size_t>(header_pc)];
  EXPECT_TRUE(std::isinf(mi.block_count[static_cast<std::size_t>(hb)]))
      << "outer loop bounded through a stepping site that executes 2^15 "
         "times per iteration";
}

TEST(Wcec, StepInsideNestedInnerLoopCannotBoundNativeLoop) {
  // The same wrap attack against the native-register trip rule: r1 is
  // stepped by 2^17 inside a self-loop that runs 2^15 times per outer
  // iteration, and the outer back edge is an equality test that refines r1
  // to a singleton at the outer header. The outer loop never terminates,
  // so the worst-case bound must be infinite.
  jvm::ClassBuilder cb("NN");
  auto& mb = cb.method("f", {{}, jvm::TypeKind::kVoid});
  mb.ret();  // Bytecode body is irrelevant; the native program is bound.
  const jvm::ClassFile cf = cb.build();

  using isa::NInstr;
  using isa::NOp;
  auto I = [](NOp op, std::uint8_t rd = 0, std::uint8_t ra = 0,
              std::uint8_t rb = 0, std::int32_t imm = 0) {
    return NInstr{op, rd, ra, rb, imm};
  };
  isa::NativeProgram prog;
  prog.code = {
      I(NOp::kMovi, 1, 0, 0, 5),        // 0: i = 5
      I(NOp::kMovi, 2, 0, 0, 10),       // 1: outer bound
      I(NOp::kMovi, 4, 0, 0, 5),        // 2: equality constant
      I(NOp::kMovi, 5, 0, 0, 1 << 15),  // 3: inner trip bound
      I(NOp::kBge, 0, 1, 2, 10),        // 4: outer header: i >= 10 -> ret
      I(NOp::kMovi, 3, 0, 0, 0),        // 5: j = 0
      I(NOp::kAddi, 1, 1, 0, 1 << 17),  // 6: i += 2^17 (inner loop)
      I(NOp::kAddi, 3, 3, 0, 1),        // 7: j += 1
      I(NOp::kBlt, 0, 3, 5, 6),         // 8: inner back edge
      I(NOp::kBeq, 0, 1, 4, 4),         // 9: outer back edge (i == 5)
      I(NOp::kRet),                     // 10
  };

  const energy::InstructionEnergyTable table;
  WcecAnalysis wcec({&cf}, table);
  wcec.set_native(1, &cf.methods[0], &prog);
  const EnergyInterval b = wcec.bounds(&cf.methods[0], 1);
  EXPECT_GT(b.bcec_j, 0.0);
  EXPECT_FALSE(b.bounded())
      << "native outer loop bounded through an inner-loop stepping block";
}

TEST(Wcec, UnboundedLoopWithZeroCostTableIsInfNotNaN) {
  // An infinite block count times a 0.0 per-block worst cost is NaN under
  // naive accumulation (inf * 0); the bound must instead fail to +inf. A
  // NaN wcec reads as "not bounded()" yet corrupts ordered comparisons.
  jvm::ClassBuilder cb("ZT");
  auto& m = cb.method("spin", {{jvm::TypeKind::kInt}, jvm::TypeKind::kVoid});
  auto loop = m.new_label(), done = m.new_label();
  m.bind(loop);
  m.iload("p0").ifeq(done);
  m.iload("p0").iconst(1).isub().istore("p0");
  m.goto_(loop);
  m.bind(done);
  m.ret();
  const jvm::ClassFile cf = cb.build();

  energy::InstructionEnergyTable zero;
  zero.instr.fill(0.0);
  zero.main_memory = 0.0;
  WcecAnalysis wcec({&cf}, zero);
  const EnergyInterval b = wcec.bounds(&cf.methods[0], 0);
  EXPECT_TRUE(std::isinf(b.wcec_j));
  EXPECT_FALSE(std::isnan(b.wcec_j));
}

}  // namespace
}  // namespace javelin::analysis
