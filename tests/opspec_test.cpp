// Pins the opcode-spec table (jvm/opspec.hpp) as the single source of truth:
// coverage of every jvm::Op exactly once and in enum order, agreement of all
// derived views (mnemonics, branch predicates, lint categories, static cost
// rows), and the L0.5 baseline translator's fusion/branch-remap rules.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "jvm/baseline.hpp"
#include "jvm/opcodes.hpp"
#include "jvm/opspec.hpp"
#include "jvm/vm.hpp"

namespace javelin::jvm {
namespace {

using opspec::kTable;
using opspec::OpCategory;
using opspec::OperandKind;

TEST(OpSpec, CoversEveryOpExactlyOnceInEnumOrder) {
  // The static_assert in opspec.hpp already fails the build on a count
  // mismatch; here we additionally pin that row i describes opcode i.
  for (std::size_t i = 0; i < kNumOps; ++i)
    EXPECT_EQ(static_cast<std::size_t>(kTable[i].op), i)
        << "row " << i << " (" << kTable[i].mnemonic << ") out of order";

  std::set<std::string> mnemonics;
  for (const auto& row : kTable)
    EXPECT_TRUE(mnemonics.insert(row.mnemonic).second)
        << "duplicate mnemonic " << row.mnemonic;
  EXPECT_EQ(mnemonics.size(), kNumOps);
}

TEST(OpSpec, MnemonicsAndFlagsAgreeWithOpcodeQueries) {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    EXPECT_STREQ(op_name(op), kTable[i].mnemonic);
    EXPECT_EQ(is_branch(op), (kTable[i].flags & opspec::kFlagBranch) != 0)
        << kTable[i].mnemonic;
    EXPECT_EQ(ends_block(op), (kTable[i].flags & opspec::kFlagEndsBlock) != 0)
        << kTable[i].mnemonic;
    // `a` is a branch target exactly for the branch ops.
    EXPECT_EQ(kTable[i].operand == OperandKind::kBranchTarget, is_branch(op))
        << kTable[i].mnemonic;
  }
}

TEST(OpSpec, CategoryPredicatesMatchLintExpectations) {
  using namespace opspec;
  for (Op op : {Op::kIload, Op::kDload, Op::kAload})
    EXPECT_TRUE(is_local_load(op));
  for (Op op : {Op::kIstore, Op::kDstore, Op::kAstore})
    EXPECT_TRUE(is_local_store(op));
  for (Op op : {Op::kIadd, Op::kIsub, Op::kImul, Op::kIdiv, Op::kIrem,
                Op::kIshl, Op::kIshr, Op::kIushr, Op::kIand, Op::kIor,
                Op::kIxor})
    EXPECT_TRUE(is_int_binop(op));
  for (Op op : {Op::kDadd, Op::kDsub, Op::kDmul, Op::kDdiv})
    EXPECT_TRUE(is_double_binop(op));
  for (Op op : {Op::kIshl, Op::kIshr, Op::kIushr}) EXPECT_TRUE(is_shift(op));
  EXPECT_FALSE(is_shift(Op::kIadd));
  for (Op op : {Op::kIconst, Op::kDconst, Op::kAconstNull, Op::kIload,
                Op::kDload, Op::kAload, Op::kDup})
    EXPECT_TRUE(is_pure_producer(op));
  for (Op op : {Op::kInvokeStatic, Op::kGetField, Op::kIaload, Op::kNew})
    EXPECT_FALSE(is_pure_producer(op));
}

TEST(OpSpec, StaticCostRowsMatchInterpreterChargeSequences) {
  // Spot-pin rows against the interpreter's actual charge sequences
  // (jvm/interp_ops.inc). Dispatch triple is charged separately.
  const auto& dc = opspec::kDispatchCost;
  EXPECT_EQ(dc.loads, 1);
  EXPECT_EQ(dc.alu_simple, 1);
  EXPECT_EQ(dc.branches, 1);

  auto cost = [](Op op) { return opspec::spec(op).cost; };
  // Local load: pop nothing, read slot (load), push (store).
  for (Op op : {Op::kIload, Op::kDload, Op::kAload}) {
    EXPECT_EQ(cost(op).loads, 1) << op_name(op);
    EXPECT_EQ(cost(op).stores, 1) << op_name(op);
    EXPECT_EQ(cost(op).branches, 0) << op_name(op);
  }
  // Int binop: two pops, one push, one simple (or complex for mul/div) ALU.
  EXPECT_EQ(cost(Op::kIadd).loads, 2);
  EXPECT_EQ(cost(Op::kIadd).stores, 1);
  EXPECT_EQ(cost(Op::kIadd).alu_simple, 1);
  EXPECT_EQ(cost(Op::kImul).alu_complex, 1);
  EXPECT_EQ(cost(Op::kDadd).alu_complex, 1);
  // Array access: ref+idx pops, length load, 2 bounds branches, address
  // arithmetic, element access.
  for (Op op : {Op::kIaload, Op::kIastore, Op::kDaload, Op::kDastore,
                Op::kBaload, Op::kBastore, Op::kAaload, Op::kAastore}) {
    EXPECT_EQ(cost(op).loads, 4) << op_name(op);
    EXPECT_EQ(cost(op).branches, 2) << op_name(op);
    EXPECT_EQ(cost(op).alu_simple, 2) << op_name(op);
  }
  // Context-dependent rows are exactly the invokes and the intrinsic call.
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    const bool expect_ctx = op == Op::kInvokeStatic ||
                            op == Op::kInvokeVirtual ||
                            op == Op::kInvokeIntrinsic;
    EXPECT_EQ(cost(op).context_dependent, expect_ctx) << op_name(op);
  }
}

// ---- L0.5 baseline translator ----------------------------------------------

DecodedInsn di(Op op, std::int32_t a = 0) {
  DecodedInsn d;
  d.op = op;
  d.a = a;
  return d;
}

TEST(BaselineStream, FusionRules) {
  std::uint16_t sop = 0;
  EXPECT_TRUE(fusable_pair(di(Op::kIload, 0), di(Op::kIload, 1), sop));
  EXPECT_EQ(sop, kSopFuseLL);
  EXPECT_TRUE(fusable_pair(di(Op::kAload, 0), di(Op::kAload, 1), sop));
  EXPECT_EQ(sop, kSopFuseLL);
  EXPECT_TRUE(fusable_pair(di(Op::kDload, 0), di(Op::kDload, 1), sop));
  EXPECT_EQ(sop, kSopFuseDD);
  EXPECT_TRUE(fusable_pair(di(Op::kIload, 0), di(Op::kIconst, 7), sop));
  EXPECT_EQ(sop, kSopFuseLC);
  EXPECT_TRUE(fusable_pair(di(Op::kIconst, 7), di(Op::kIstore, 2), sop));
  EXPECT_EQ(sop, kSopFuseCS);
  EXPECT_TRUE(fusable_pair(di(Op::kIload, 0), di(Op::kIadd), sop));
  EXPECT_EQ(sop, kSopFuseLA);
  EXPECT_TRUE(fusable_pair(di(Op::kDload, 0), di(Op::kDmul), sop));
  EXPECT_EQ(sop, kSopFuseDA);

  // Throwing ops never fuse (division can trap; array ops can throw).
  EXPECT_FALSE(fusable_pair(di(Op::kIload, 0), di(Op::kIdiv), sop));
  EXPECT_FALSE(fusable_pair(di(Op::kDload, 0), di(Op::kDdiv), sop));
  EXPECT_FALSE(fusable_pair(di(Op::kIload, 0), di(Op::kIaload), sop));
  // Dstore is never a fusion tail.
  EXPECT_FALSE(fusable_pair(di(Op::kDconst, 0), di(Op::kDstore, 1), sop));
  // Branches never fuse.
  EXPECT_FALSE(fusable_pair(di(Op::kIload, 0), di(Op::kIfeq, 0), sop));
  EXPECT_FALSE(fusable_pair(di(Op::kGoto, 0), di(Op::kIload, 0), sop));
}

TEST(BaselineStream, FusesAdjacentPairAndRemapsBranches) {
  // 0: iload 0          --+ fused (LL)
  // 1: iload 1          --+
  // 2: iadd
  // 3: ifgt -> 6
  // 4: iconst 1         --+ fused (CS)
  // 5: istore 0         --+
  // 6: iload 0
  // 7: ireturn
  const std::vector<DecodedInsn> body{
      di(Op::kIload, 0),  di(Op::kIload, 1), di(Op::kIadd),
      di(Op::kIfgt, 6),   di(Op::kIconst, 1), di(Op::kIstore, 0),
      di(Op::kIload, 0),  di(Op::kIreturn)};
  const auto stream = build_baseline_stream(body);
  ASSERT_EQ(stream.size(), 6u);
  EXPECT_EQ(stream[0].sop, kSopFuseLL);
  EXPECT_EQ(stream[0].pc, 0u);
  EXPECT_EQ(stream[1].sop, static_cast<std::uint16_t>(Op::kIadd));
  EXPECT_EQ(stream[2].sop, static_cast<std::uint16_t>(Op::kIfgt));
  // Branch operand remapped from bytecode index 6 to stream index 4.
  EXPECT_EQ(stream[2].di.a, 4);
  EXPECT_EQ(stream[3].sop, kSopFuseCS);
  EXPECT_EQ(stream[4].sop, static_cast<std::uint16_t>(Op::kIload));
  EXPECT_EQ(stream[5].sop, static_cast<std::uint16_t>(Op::kIreturn));
}

TEST(BaselineStream, NeverFusesAcrossBranchTarget) {
  // 2: iload 1 is a branch target: the pair (1,2) must not fuse even though
  // iload;iload is otherwise fusable.
  const std::vector<DecodedInsn> body{
      di(Op::kGoto, 2), di(Op::kIload, 0), di(Op::kIload, 1),
      di(Op::kIreturn)};
  const auto stream = build_baseline_stream(body);
  ASSERT_EQ(stream.size(), 4u);
  for (const auto& e : stream)
    EXPECT_LT(e.sop, static_cast<std::uint16_t>(kNumOps));
  EXPECT_EQ(stream[0].di.a, 2);  // goto remapped 2 -> 2 (1:1 here)
}

TEST(BaselineStream, OutOfRangeBranchTargetMapsToStreamEnd) {
  // The interpreter throws "pc out of range" when a branch lands outside the
  // body; the translator maps such targets to the stream size so the stream
  // executor's bounds check fires at exactly the same point.
  const std::vector<DecodedInsn> body{di(Op::kGoto, 99), di(Op::kIreturn)};
  const auto stream = build_baseline_stream(body);
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].di.a, static_cast<std::int32_t>(stream.size()));
}

TEST(BaselineStream, EmptyBodyGivesEmptyStream) {
  EXPECT_TRUE(build_baseline_stream({}).empty());
}

}  // namespace
}  // namespace javelin::jvm
