// JIT tests: individual optimization passes (the paper's Level-2 list) and
// properties of the compiled code — fewer executed instructions at higher
// levels, monotonically increasing compile work, inlining effects, spill
// correctness under register pressure.
#include <gtest/gtest.h>

#include "jit/analysis.hpp"
#include "jit/codegen.hpp"
#include "jit/compiler.hpp"
#include "jit/regalloc.hpp"
#include "jvm/builder.hpp"
#include "jvm/engine.hpp"

namespace javelin::jit {
namespace {

using jvm::ClassBuilder;
using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

struct Rig {
  isa::MachineConfig cfg = isa::client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier{cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter};
  isa::Core core{&cfg, &arena, &hier, &meter};
  jvm::Jvm vm{core};
  jvm::ExecutionEngine engine{vm};

  std::int32_t load(jvm::ClassFile cf) {
    const std::int32_t id = vm.load(std::move(cf));
    vm.link();
    return id;
  }
  void install(std::int32_t mid, int level) {
    std::vector<std::int32_t> plan{mid};
    for (auto c : collect_callees(vm, mid)) plan.push_back(c);
    for (auto id : plan) {
      auto res = compile_method(vm, id, CompileOptions{.opt_level = level},
                                cfg.energy);
      engine.install(id, std::move(res.program), level);
    }
  }
  std::uint64_t run_count(std::int32_t mid, std::span<const Value> args) {
    const std::uint64_t c0 = meter.counts().total();
    engine.invoke(mid, args);
    return meter.counts().total() - c0;
  }
};

// A loop with a redundant invariant expression and a multiply by 4 —
// exercises CSE, LICM and strength reduction at once.
jvm::ClassFile opt_fodder() {
  ClassBuilder cb("Opt");
  auto& m = cb.method("f", Signature{{TypeKind::kInt, TypeKind::kInt},
                                     TypeKind::kInt});
  m.param_name(0, "n").param_name(1, "a");
  auto loop = m.new_label(), done = m.new_label();
  m.iconst(0).istore("acc").iconst(0).istore("i");
  m.bind(loop);
  m.iload("i").iload("n").if_icmpge(done);
  // invariant: (a*a + 7); variant: i*4
  m.iload("a").iload("a").imul().iconst(7).iadd();
  m.iload("i").iconst(4).imul();
  m.iadd().iload("acc").iadd().istore("acc");
  m.iload("i").iconst(1).iadd().istore("i");
  m.goto_(loop);
  m.bind(done);
  m.iload("acc").iret();
  return cb.build();
}

std::int32_t golden_opt(std::int32_t n, std::int32_t a) {
  std::int32_t acc = 0;
  for (std::int32_t i = 0; i < n; ++i) acc += (a * a + 7) + i * 4 + 0;
  return acc;
}

TEST(Jit, L2ExecutesFewerInstructionsThanL1) {
  std::uint64_t counts[3];
  for (int level = 1; level <= 2; ++level) {
    Rig rig;
    const std::int32_t mid = [&] {
      rig.load(opt_fodder());
      return rig.vm.find_method("Opt", "f");
    }();
    rig.install(mid, level);
    std::vector<Value> args{Value::make_int(100), Value::make_int(9)};
    EXPECT_EQ(rig.engine.invoke(mid, args).as_int(), golden_opt(100, 9));
    counts[level] = rig.run_count(mid, args);
  }
  EXPECT_LT(counts[2], counts[1] * 3 / 4)
      << "L2 (CSE+LICM+strength reduction) should cut executed instructions "
      << "substantially: L1=" << counts[1] << " L2=" << counts[2];
}

TEST(Jit, LocalValueNumberingFoldsConstants) {
  Rig rig;
  rig.load(opt_fodder());
  const std::int32_t mid = rig.vm.find_method("Opt", "f");
  CompileMeter meter;
  Function f = translate_to_ir(rig.vm, mid, meter);
  const std::size_t before = f.num_instrs();
  passes::local_value_numbering(f, meter);
  passes::copy_prop_dce(f, meter);
  EXPECT_LT(f.num_instrs(), before);
}

TEST(Jit, LicmHoistsInvariants) {
  Rig rig;
  rig.load(opt_fodder());
  const std::int32_t mid = rig.vm.find_method("Opt", "f");
  CompileMeter meter;
  Function f = translate_to_ir(rig.vm, mid, meter);
  passes::local_value_numbering(f, meter);
  passes::copy_prop_dce(f, meter);
  const std::size_t blocks_before = f.blocks.size();
  passes::licm(f, meter);
  // LICM creates a preheader when it hoists.
  EXPECT_GT(f.blocks.size(), blocks_before);
}

TEST(Jit, StrengthReductionRemovesMulByPow2) {
  Rig rig;
  rig.load(opt_fodder());
  const std::int32_t mid = rig.vm.find_method("Opt", "f");
  CompileMeter meter;
  Function f = translate_to_ir(rig.vm, mid, meter);
  passes::local_value_numbering(f, meter);
  int muls = 0, shifts = 0;
  for (const auto& b : f.blocks)
    for (const auto& in : b.instrs) {
      if (in.op == IOp::kIMul) ++muls;
      if (in.op == IOp::kIShl) ++shifts;
    }
  // i*4 became a shift; a*a stays a multiply.
  EXPECT_GE(shifts, 1);
  EXPECT_EQ(muls, 1);
}

TEST(Jit, CompileWorkGrowsWithLevel) {
  Rig rig;
  rig.load(opt_fodder());
  const std::int32_t mid = rig.vm.find_method("Opt", "f");
  double e[4] = {};
  for (int level = 1; level <= 3; ++level) {
    const auto res = compile_method(rig.vm, mid,
                                    CompileOptions{.opt_level = level},
                                    rig.cfg.energy);
    e[level] = res.compile_energy;
    EXPECT_GT(res.compile_cycles, 0u);
  }
  EXPECT_GT(e[2], e[1]);
  EXPECT_GE(e[3], e[2]);
}

TEST(Jit, InliningRemovesCallsAndPreservesSemantics) {
  // Builders are single-use, so build a fresh class file per level.
  const auto make_class = [] {
    ClassBuilder cb("Inl");
    {
      auto& m = cb.method("sq", Signature{{TypeKind::kInt}, TypeKind::kInt});
      m.param_name(0, "x");
      m.iload("x").iload("x").imul().iret();
    }
    {
      auto& m = cb.method("sumsq", Signature{{TypeKind::kInt}, TypeKind::kInt});
      m.param_name(0, "n");
      auto loop = m.new_label(), done = m.new_label();
      m.iconst(0).istore("acc").iconst(0).istore("i");
      m.bind(loop);
      m.iload("i").iload("n").if_icmpge(done);
      m.iload("acc").iload("i").invokestatic("Inl", "sq").iadd().istore("acc");
      m.iload("i").iconst(1).iadd().istore("i");
      m.goto_(loop);
      m.bind(done);
      m.iload("acc").iret();
    }
    return cb.build();
  };

  std::uint64_t branch_counts[4] = {};
  for (int level : {2, 3}) {
    Rig rig;
    rig.load(make_class());
    const std::int32_t mid = rig.vm.find_method("Inl", "sumsq");
    rig.install(mid, level);
    std::vector<Value> args{Value::make_int(50)};
    const auto b0 = rig.meter.counts().of(energy::InstrClass::kBranch);
    EXPECT_EQ(rig.engine.invoke(mid, args).as_int(), 40425);
    branch_counts[level] =
        rig.meter.counts().of(energy::InstrClass::kBranch) - b0;
    if (level == 3) {
      // The L3 body should contain no calls to sq at all.
      const auto* prog = rig.engine.compiled(mid);
      ASSERT_NE(prog, nullptr);
      for (const auto& in : prog->code) {
        EXPECT_NE(in.op, isa::NOp::kCall) << "call survived inlining";
      }
    }
  }
  // Inlining eliminates 50 call/ret pairs.
  EXPECT_LT(branch_counts[3], branch_counts[2]);
}

TEST(Jit, SpillsAreCorrectUnderPressure) {
  // More than 18 simultaneously-live int values force spilling.
  ClassBuilder cb("Spill");
  auto& m = cb.method("f", Signature{{TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "x");
  constexpr int kVars = 30;
  for (int i = 0; i < kVars; ++i) {
    m.iload("x").iconst(i + 1).iadd().istore("v" + std::to_string(i));
  }
  // Sum them in reverse so all stay live across the block.
  m.iconst(0);
  for (int i = kVars - 1; i >= 0; --i)
    m.iload("v" + std::to_string(i)).iadd();
  m.iret();

  Rig rig;
  rig.load(cb.build());
  const std::int32_t mid = rig.vm.find_method("Spill", "f");
  const std::int32_t expected = [] {
    std::int32_t acc = 0;
    for (int i = 0; i < kVars; ++i) acc += 7 + i + 1;
    return acc;
  }();
  EXPECT_EQ(rig.engine.call("Spill", "f", {{Value::make_int(7)}}).as_int(),
            expected);
  // L1: locals each get a vreg; with 30 live, spills must occur.
  CompileMeter meter;
  Function f = translate_to_ir(rig.vm, mid, meter);
  Allocation al = allocate(f, meter);
  EXPECT_GT(al.num_spilled, 0u);
  EXPECT_GT(al.frame_bytes, 0u);
  rig.install(mid, 1);
  EXPECT_EQ(rig.engine.call("Spill", "f", {{Value::make_int(7)}}).as_int(),
            expected);
}

TEST(Jit, DoubleRegisterPressure) {
  // More than 5 live doubles force FP spills.
  ClassBuilder cb("FSpill");
  auto& m = cb.method("f", Signature{{TypeKind::kDouble}, TypeKind::kDouble});
  m.param_name(0, "x");
  constexpr int kVars = 12;
  for (int i = 0; i < kVars; ++i)
    m.dload("x").dconst(i + 0.5).dmul().dstore("d" + std::to_string(i));
  m.dconst(0.0);
  for (int i = kVars - 1; i >= 0; --i)
    m.dload("d" + std::to_string(i)).dadd();
  m.dret();

  Rig rig;
  rig.load(cb.build());
  const std::int32_t mid = rig.vm.find_method("FSpill", "f");
  const double x = 2.0;
  double expected = 0.0;
  for (int i = 0; i < kVars; ++i) expected += x * (i + 0.5);
  const Value interp =
      rig.engine.call("FSpill", "f", {{Value::make_double(x)}});
  EXPECT_DOUBLE_EQ(interp.as_double(), expected);
  rig.install(mid, 1);
  const Value jit = rig.engine.call("FSpill", "f", {{Value::make_double(x)}});
  EXPECT_DOUBLE_EQ(jit.as_double(), expected);
}

TEST(Jit, GlobalCseAcrossBlocks) {
  // a*a computed in two sibling-dominated blocks collapses to one.
  ClassBuilder cb("G");
  auto& m = cb.method("f", Signature{{TypeKind::kInt, TypeKind::kInt},
                                     TypeKind::kInt});
  m.param_name(0, "a").param_name(1, "c");
  auto other = m.new_label(), join = m.new_label();
  m.iload("a").iload("a").imul().istore("first");  // dominating computation
  m.iload("c").ifeq(other);
  m.iload("a").iload("a").imul().istore("r");
  m.goto_(join);
  m.bind(other);
  m.iload("a").iload("a").imul().iconst(1).iadd().istore("r");
  m.bind(join);
  m.iload("r").iload("first").iadd().iret();

  Rig rig;
  rig.load(cb.build());
  const std::int32_t mid = rig.vm.find_method("G", "f");
  CompileMeter meter;
  Function f = translate_to_ir(rig.vm, mid, meter);
  passes::local_value_numbering(f, meter);
  passes::copy_prop_dce(f, meter);
  passes::global_cse(f, meter);
  passes::copy_prop_dce(f, meter);
  int muls = 0;
  for (const auto& b : f.blocks)
    for (const auto& in : b.instrs)
      if (in.op == IOp::kIMul) ++muls;
  EXPECT_EQ(muls, 1) << f.dump();
  // Still correct.
  rig.install(mid, 2);
  EXPECT_EQ(rig.engine
                .call("G", "f", {{Value::make_int(5), Value::make_int(1)}})
                .as_int(),
            50);
  EXPECT_EQ(rig.engine
                .call("G", "f", {{Value::make_int(5), Value::make_int(0)}})
                .as_int(),
            51);
}

TEST(Jit, NonCompilableMethodFallsBack) {
  // A local slot reused as int and double is interpretable but the JIT
  // refuses it.
  jvm::ClassFile cf;
  cf.name = "Weird";
  jvm::MethodInfo m;
  m.name = "f";
  m.sig = Signature{{}, TypeKind::kInt};
  m.max_locals = 1;
  using jvm::Op;
  m.code = {
      {Op::kDconst, 0, 0},  // push 1.0
      {Op::kDstore, 0, 0},
      {Op::kIconst, 5, 0},
      {Op::kIstore, 0, 0},  // slot 0 reused as int
      {Op::kIload, 0, 0},
      {Op::kIreturn, 0, 0},
  };
  cf.pool.add_double(1.0);
  cf.methods.push_back(std::move(m));

  Rig rig;
  rig.load(std::move(cf));
  const std::int32_t mid = rig.vm.find_method("Weird", "f");
  EXPECT_EQ(rig.engine.invoke(mid, {}).as_int(), 5);  // interpreter is fine
  CompileMeter meter;
  EXPECT_THROW(translate_to_ir(rig.vm, mid, meter), CompileError);
}

TEST(Jit, DcmpBranchFusion) {
  ClassBuilder cb("F");
  auto& m = cb.method("gt", Signature{{TypeKind::kDouble, TypeKind::kDouble},
                                      TypeKind::kInt});
  m.param_name(0, "a").param_name(1, "b");
  auto yes = m.new_label();
  m.dload("a").dload("b").dcmp().ifgt(yes);
  m.iconst(0).iret();
  m.bind(yes);
  m.iconst(1).iret();

  Rig rig;
  rig.load(cb.build());
  const std::int32_t mid = rig.vm.find_method("F", "gt");
  CompileMeter meter;
  Function f = translate_to_ir(rig.vm, mid, meter);
  passes::local_value_numbering(f, meter);
  passes::copy_prop_dce(f, meter);
  bool fused = false;
  for (const auto& b : f.blocks)
    for (const auto& in : b.instrs)
      if (in.op == IOp::kBrDGt) fused = true;
  EXPECT_TRUE(fused) << f.dump();
  rig.install(mid, 2);
  EXPECT_EQ(rig.engine
                .call("F", "gt",
                      {{Value::make_double(2.0), Value::make_double(1.0)}})
                .as_int(),
            1);
  EXPECT_EQ(rig.engine
                .call("F", "gt",
                      {{Value::make_double(1.0), Value::make_double(2.0)}})
                .as_int(),
            0);
}

TEST(Jit, BoundsCheckEliminationRemovesDominatedGuards) {
  // b[i] is read three times with the same (array, index) pair; only the
  // first access needs guards.
  ClassBuilder cb("Bce");
  auto& m = cb.method("f", Signature{{TypeKind::kRef, TypeKind::kInt},
                                     TypeKind::kInt});
  m.param_name(0, "b").param_name(1, "i");
  m.aload("b").iload("i").iaload();
  m.aload("b").iload("i").iaload().iadd();
  m.aload("b").iload("i").iaload().iadd();
  m.iret();

  Rig rig;
  rig.load(cb.build());
  const std::int32_t mid = rig.vm.find_method("Bce", "f");
  CompileMeter meter;
  Function f = translate_to_ir(rig.vm, mid, meter);
  passes::local_value_numbering(f, meter);
  passes::copy_prop_dce(f, meter);
  const std::size_t eliminated = passes::bounds_check_elim(f, meter);
  EXPECT_EQ(eliminated, 2u) << f.dump();

  // Executed-instruction count shrinks with BCE, semantics preserved.
  const mem::Addr arr = rig.vm.new_array(TypeKind::kInt, 4, false);
  rig.vm.write_i32_array(arr, {5, 6, 7, 8});
  std::vector<Value> args{Value::make_ref(arr), Value::make_int(2)};
  std::uint64_t instrs[2];
  for (int bce = 0; bce < 2; ++bce) {
    CompileOptions opts;
    opts.opt_level = 3;
    opts.bounds_check_elimination = bce != 0;
    auto res = compile_method(rig.vm, mid, opts, rig.cfg.energy);
    rig.engine.install(mid, std::move(res.program), 3);
    const std::uint64_t c0 = rig.meter.counts().total();
    EXPECT_EQ(rig.engine.invoke(mid, args).as_int(), 21);
    instrs[bce] = rig.meter.counts().total() - c0;
  }
  EXPECT_LT(instrs[1], instrs[0]);
}

TEST(Jit, BoundsCheckEliminationStillTrapsOnFirstAccess) {
  // The *first* access keeps its guards, so out-of-range indices still trap
  // under BCE.
  ClassBuilder cb("Bce2");
  auto& m = cb.method("f", Signature{{TypeKind::kRef, TypeKind::kInt},
                                     TypeKind::kInt});
  m.param_name(0, "b").param_name(1, "i");
  m.aload("b").iload("i").iaload();
  m.aload("b").iload("i").iaload().iadd();
  m.iret();

  Rig rig;
  rig.load(cb.build());
  const std::int32_t mid = rig.vm.find_method("Bce2", "f");
  auto res = compile_method(rig.vm, mid, CompileOptions{.opt_level = 3},
                            rig.cfg.energy);
  rig.engine.install(mid, std::move(res.program), 3);
  const mem::Addr arr = rig.vm.new_array(TypeKind::kInt, 4, false);
  EXPECT_THROW(
      rig.engine.invoke(mid, {{Value::make_ref(arr), Value::make_int(9)}}),
      VmError);
  EXPECT_THROW(rig.engine.invoke(
                   mid, {{Value::make_ref(mem::kNullAddr), Value::make_int(0)}}),
               VmError);
}

}  // namespace
}  // namespace javelin::jit
