// Correctness of the eight benchmarks on every execution path: interpreted,
// JIT-compiled at Levels 1-3 (whole compilation plan), and remotely executed
// through the serializer + server. Every result is checked against the C++
// golden model. This is the broadest property suite in the repository: any
// miscompilation, interpreter bug or serializer defect fails here.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "jit/compiler.hpp"
#include "net/link.hpp"
#include "rt/client.hpp"
#include "rt/profiler.hpp"

namespace javelin {
namespace {

using apps::App;

struct ModeCase {
  std::string app;
  int level;  // -1 = interp, 1..3 = JIT level
};

std::string case_name(const testing::TestParamInfo<ModeCase>& info) {
  return info.param.app +
         (info.param.level < 0 ? "_interp"
                               : "_L" + std::to_string(info.param.level));
}

class AppExecution : public testing::TestWithParam<ModeCase> {};

TEST_P(AppExecution, MatchesGolden) {
  const ModeCase& mc = GetParam();
  const App& a = apps::app(mc.app);

  rt::Device dev(isa::client_machine());
  dev.core.step_limit = 100'000'000'000ULL;
  dev.deploy(a.classes);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
  ASSERT_GE(mid, 0);

  if (mc.level > 0) {
    std::vector<std::int32_t> plan{mid};
    for (std::int32_t callee : jit::collect_callees(dev.vm, mid))
      plan.push_back(callee);
    for (std::int32_t id : plan) {
      auto res = jit::compile_method(dev.vm, id,
                                     jit::CompileOptions{.opt_level = mc.level},
                                     dev.cfg.energy);
      dev.engine.install(id, std::move(res.program), mc.level);
    }
  } else {
    dev.engine.set_force_interpret(true);
  }

  // Two scales, two seeds each.
  Rng rng(0xfeed1234 + mc.level * 7);
  for (double scale : {a.profile_scales.front(), a.profile_scales.back()}) {
    for (int rep = 0; rep < 2; ++rep) {
      const std::size_t mark = dev.arena.heap_mark();
      const auto args = a.make_args(dev.vm, scale, rng);
      const jvm::Value result = dev.engine.invoke(mid, args);
      EXPECT_TRUE(a.check(dev.vm, args, dev.vm, result))
          << a.name << " scale=" << scale << " rep=" << rep;
      dev.arena.heap_release(mark);
    }
  }
}

std::vector<ModeCase> all_cases() {
  std::vector<ModeCase> cases;
  for (const App& a : apps::registry())
    for (int level : {-1, 1, 2, 3}) cases.push_back({a.name, level});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppExecution, testing::ValuesIn(all_cases()),
                         case_name);

// Remote execution: args serialized to the server, executed there, result
// deserialized back into the client heap — still must match golden.
class AppRemote : public testing::TestWithParam<std::string> {};

TEST_P(AppRemote, RemoteMatchesGolden) {
  const App& a = apps::app(GetParam());

  // Profile (required by Client for the server-time estimate formulation).
  auto classes = a.classes;
  rt::profile_application(classes, {{a.cls + "." + a.method, a.workload()}});

  rt::Server server;
  server.deploy(classes);
  radio::FixedChannel channel(radio::PowerClass::kClass4);
  net::Link link;
  rt::Client client(rt::ClientConfig{}, server, channel, link);
  client.deploy(classes);
  client.device().core.step_limit = 100'000'000'000ULL;

  Rng rng(0xabc);
  const std::size_t mark = client.device().arena.heap_mark();
  const auto args =
      a.make_args(client.device().vm, a.profile_scales.back(), rng);
  rt::InvokeReport report;
  const jvm::Value result =
      client.run(a.cls, a.method, args, rt::Strategy::kRemote, &report);
  EXPECT_EQ(report.mode, rt::ExecMode::kRemote);
  EXPECT_TRUE(a.check(client.device().vm, args, client.device().vm, result));
  EXPECT_GT(client.device().meter.communication(), 0.0);
  client.device().arena.heap_release(mark);
}

std::vector<std::string> app_names() {
  std::vector<std::string> names;
  for (const App& a : apps::registry()) names.push_back(a.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppRemote, testing::ValuesIn(app_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace javelin
