// Unit tests for the simulated memory: arena zones and the cache model.
#include <gtest/gtest.h>

#include <cstdint>

#include "mem/arena.hpp"
#include "mem/cache.hpp"

namespace javelin::mem {
namespace {

TEST(Arena, AllocZeroesAndAligns) {
  Arena a(1 << 20, 1 << 16);
  const Addr p = a.alloc(100, 8);
  EXPECT_EQ(p % 8, 0u);
  EXPECT_GE(p, 1u << 16);  // heap zone starts after the immortal zone
  for (Addr i = 0; i < 100; i += 4) EXPECT_EQ(a.load_i32(p + i), 0);
  a.store_i32(p, 42);
  EXPECT_EQ(a.load_i32(p), 42);
}

TEST(Arena, TypedAccessRoundTrip) {
  Arena a(1 << 20, 1 << 16);
  const Addr p = a.alloc(64);
  a.store_f64(p, 3.5);
  EXPECT_DOUBLE_EQ(a.load_f64(p), 3.5);
  a.store_u8(p + 8, 200);
  EXPECT_EQ(a.load_u8(p + 8), 200);
  a.store_i64(p + 16, -123456789012345LL);
  EXPECT_EQ(a.load_i64(p + 16), -123456789012345LL);
}

TEST(Arena, NullAndOutOfRangeAccessThrow) {
  Arena a(1 << 20, 1 << 16);
  EXPECT_THROW(a.load_i32(0), VmError);
  EXPECT_THROW(a.load_i32(4), VmError);  // reserved low addresses
  const Addr p = a.alloc(8);
  EXPECT_THROW(a.load_i32(p + 8), VmError);  // past heap top
}

TEST(Arena, HeapWatermarkReleases) {
  Arena a(1 << 20, 1 << 16);
  a.alloc(128);
  const std::size_t mark = a.heap_mark();
  const Addr p = a.alloc(64);
  a.heap_release(mark);
  EXPECT_THROW(a.load_i32(p), VmError);
  EXPECT_THROW(a.heap_release(mark + 100), std::invalid_argument);
}

TEST(Arena, StackZoneIsDisjointFromHeap) {
  Arena a(1 << 20, 1 << 16);
  const Addr heap = a.alloc(64);
  const std::size_t mark = a.stack_mark();
  const Addr frame = a.alloc_stack(256);
  EXPECT_GT(frame, heap);
  a.store_i32(frame, 7);
  // Popping the frame must not affect the heap object.
  a.store_i32(heap, 13);
  a.stack_release(mark);
  EXPECT_EQ(a.load_i32(heap), 13);
  EXPECT_THROW(a.load_i32(frame), VmError);
}

TEST(Arena, ImmortalZoneSurvivesHeapRelease) {
  Arena a(1 << 20, 1 << 16);
  const Addr code = a.alloc_immortal(64);
  a.store_i32(code, 99);
  const std::size_t mark = a.heap_mark();
  a.alloc(128);
  a.heap_release(mark);
  EXPECT_EQ(a.load_i32(code), 99);
}

TEST(Arena, ExhaustionThrows) {
  Arena a(1 << 16, 1 << 12);
  EXPECT_THROW(a.alloc(1 << 20), VmError);
  EXPECT_THROW(a.alloc_stack(1 << 20), VmError);
  EXPECT_THROW(a.alloc_immortal(1 << 20), VmError);
}

TEST(Arena, StaleHeapWatermarkThrows) {
  Arena a(1 << 20, 1 << 16);
  const std::size_t base_mark = a.heap_mark();
  // Below the heap base: no watermark can ever have been issued there.
  EXPECT_THROW(a.heap_release(base_mark - 1), std::invalid_argument);
  EXPECT_THROW(a.heap_release(0), std::invalid_argument);
  // A mark taken high, then invalidated by releasing below it, is stale.
  a.alloc(64);
  const std::size_t low = a.heap_mark();
  a.alloc(64);
  const std::size_t high = a.heap_mark();
  a.heap_release(low);
  EXPECT_THROW(a.heap_release(high), std::invalid_argument);
  // The arena is still usable after each rejected release.
  const Addr p = a.alloc(16);
  a.store_i32(p, 7);
  EXPECT_EQ(a.load_i32(p), 7);
}

TEST(Arena, ZoneSpanningAccessThrows) {
  Arena a(1 << 20, 1 << 16);
  // Immortal object at the immortal bump frontier: an 8-byte access whose
  // last bytes hang past the frontier is in no zone, even though its first
  // bytes are valid immortal memory.
  const Addr code = a.alloc_immortal(32);
  a.store_i32(code + 24, 5);
  EXPECT_THROW(a.load_i64(code + 28), VmError);
  // Heap object at the heap frontier: same rule.
  const Addr p = a.alloc(8);
  EXPECT_THROW(a.load_i64(p + 4), VmError);
  // The gap between heap top and the stack frontier belongs to neither zone.
  const Addr frame = a.alloc_stack(16);
  EXPECT_THROW(a.load_i32(frame - 8), VmError);
  a.store_i32(frame, 9);
  EXPECT_EQ(a.load_i32(frame), 9);
}

TEST(Arena, AllocationSizeOverflowThrowsInsteadOfWrapping) {
  Arena a(1 << 20, 1 << 16);
  // A forged guest array header claiming 0xFFFFFFFF elements, scaled by an
  // 8-byte element width, must be rejected — the `base + size` sum used by a
  // naive limit check would wrap and "succeed".
  const std::size_t forged = std::size_t{0xFFFFFFFFu} * 8;
  EXPECT_THROW(a.alloc(forged), VmError);
  EXPECT_THROW(a.alloc(SIZE_MAX - 4), VmError);
  EXPECT_THROW(a.alloc_stack(SIZE_MAX - 4), VmError);
  EXPECT_THROW(a.alloc_immortal(SIZE_MAX - 4), VmError);
  // The failed requests must not have corrupted the bump pointers.
  const Addr p = a.alloc(16);
  a.store_i32(p, 11);
  EXPECT_EQ(a.load_i32(p), 11);
  const Addr q = a.alloc_immortal(16);
  a.store_i32(q, 12);
  EXPECT_EQ(a.load_i32(q), 12);
}

TEST(Cache, HitsAfterFill) {
  DirectMappedCache c({1024, 32});
  EXPECT_FALSE(c.access(64, false).hit);   // cold miss
  EXPECT_TRUE(c.access(64, false).hit);    // same line
  EXPECT_TRUE(c.access(95, false).hit);    // same 32B line
  EXPECT_FALSE(c.access(96, false).hit);   // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ConflictEviction) {
  DirectMappedCache c({1024, 32});  // 32 lines
  EXPECT_FALSE(c.access(0, false).hit);
  EXPECT_FALSE(c.access(1024, false).hit);  // same index, different tag
  EXPECT_FALSE(c.access(0, false).hit);     // evicted
}

TEST(Cache, DirtyEvictionCostsExtraDramAccess) {
  DirectMappedCache c({1024, 32});
  c.access(0, true);  // miss, fill, dirty
  const CacheAccess a = c.access(1024, false);  // evicts dirty line
  EXPECT_FALSE(a.hit);
  EXPECT_EQ(a.dram_accesses, 2u);  // fill + writeback
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(DirectMappedCache({1000, 32}), std::invalid_argument);
  EXPECT_THROW(DirectMappedCache({1024, 33}), std::invalid_argument);
}

TEST(CacheStats, SaturatingIncrementDoesNotWrap) {
  std::uint64_t c = ~0ULL - 1;
  CacheStats::saturating_inc(c);
  EXPECT_EQ(c, ~0ULL);
  CacheStats::saturating_inc(c);  // at the ceiling: stays, never wraps to 0
  EXPECT_EQ(c, ~0ULL);
}

TEST(CacheStats, HitRateIsOverflowSafe) {
  // hits + misses would wrap u64 arithmetic; the double-domain computation
  // must not (and must land near 0.5 for equal counts).
  CacheStats s;
  s.hits = ~0ULL;
  s.misses = ~0ULL;
  EXPECT_NEAR(s.hit_rate(), 0.5, 1e-9);
  s.reset();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 1.0);  // no accesses yet
}

TEST(Cache, ResetStatsClearsCountersButKeepsContents) {
  DirectMappedCache c({1024, 32});
  c.access(0, true);
  c.access(1024, false);  // dirty eviction
  EXPECT_GT(c.misses(), 0u);
  EXPECT_EQ(c.writebacks(), 1u);
  c.reset_stats();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_EQ(c.writebacks(), 0u);
  // The tag array is untouched: the line filled by the last access still
  // hits.
  EXPECT_TRUE(c.access(1024, false).hit);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(Hierarchy, ResetStatsClearsBothCaches) {
  energy::InstructionEnergyTable table;
  energy::EnergyMeter meter;
  MemoryHierarchy h({1024, 32}, {1024, 32}, 20, &table, &meter);
  h.load(64);
  h.store(128);
  h.fetch(64);
  EXPECT_GT(h.dcache().misses(), 0u);
  EXPECT_GT(h.icache().misses(), 0u);
  h.reset_stats();
  EXPECT_EQ(h.dcache().hits(), 0u);
  EXPECT_EQ(h.dcache().misses(), 0u);
  EXPECT_EQ(h.dcache().writebacks(), 0u);
  EXPECT_EQ(h.icache().hits(), 0u);
  EXPECT_EQ(h.icache().misses(), 0u);
  // Contents survive: re-touching the same lines hits.
  EXPECT_EQ(h.load(64), 0u);
  EXPECT_EQ(h.fetch(64), 0u);
}

TEST(Hierarchy, ChargesDramAndStalls) {
  energy::InstructionEnergyTable table;
  energy::EnergyMeter meter;
  MemoryHierarchy h({1024, 32}, {1024, 32}, 20, &table, &meter);
  EXPECT_EQ(h.load(64), 20u);  // miss -> stall
  EXPECT_EQ(h.load(64), 0u);   // hit
  EXPECT_EQ(meter.dram_accesses(), 1u);
  EXPECT_DOUBLE_EQ(meter.of(energy::Subsystem::kDram), 4.94e-9);
  // I-cache and D-cache are independent.
  EXPECT_EQ(h.fetch(64), 20u);
  EXPECT_EQ(h.fetch(64), 0u);
}

// Pins the documented zero-access convention: an untouched cache reports a
// hit rate of 1.0 (never 0.0 or NaN), because downstream consumers treat the
// rate as "fraction of accesses that did not stall" and the vacuous case is
// a perfect score. See CacheStats::hit_rate() in mem/cache.hpp.
TEST(CacheStats, HitRateZeroAccessConventionIsOne) {
  CacheStats s;
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 1.0);
  // A fresh cache object reports the same.
  DirectMappedCache c({1024, 32});
  EXPECT_DOUBLE_EQ(c.hit_rate(), 1.0);
  // After reset() the convention applies again.
  s.hits = 3;
  s.misses = 1;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
  s.reset();
  EXPECT_DOUBLE_EQ(s.hit_rate(), 1.0);
  // Misses-only is a genuine 0.0, not the vacuous 1.0.
  s.misses = 5;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.0);
}

TEST(CacheStats, SaturatingIncSticksAtMax) {
  std::uint64_t c = ~0ULL - 2;
  CacheStats::saturating_inc(c);
  EXPECT_EQ(c, ~0ULL - 1);
  CacheStats::saturating_inc(c);
  EXPECT_EQ(c, ~0ULL);
  CacheStats::saturating_inc(c);  // Saturates instead of wrapping to zero.
  EXPECT_EQ(c, ~0ULL);
  // The saturated counter still yields a finite, sane hit rate.
  CacheStats s;
  s.hits = ~0ULL;
  s.misses = ~0ULL;
  const double r = s.hit_rate();
  EXPECT_GT(r, 0.49);
  EXPECT_LT(r, 0.51);
}

}  // namespace
}  // namespace javelin::mem
