// Table-driven opcode semantics: every arithmetic/logical/conversion opcode
// is checked against expected values on both execution paths (interpreter
// and Level-1 native code), including edge cases (INT_MIN, wraparound, shift
// masking, negative division, NaN-free double compares).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "jit/compiler.hpp"
#include "jvm/builder.hpp"
#include "jvm/engine.hpp"

namespace javelin::jvm {
namespace {

struct Rig {
  isa::MachineConfig cfg = isa::client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier{cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter};
  isa::Core core{&cfg, &arena, &hier, &meter};
  Jvm vm{core};
  ExecutionEngine engine{vm};
};

// ---------------------------------------------------------------------------
// Integer binary ops.
// ---------------------------------------------------------------------------

struct IntBinCase {
  const char* name;
  Op op;
  std::int32_t a, b, expected;
};

constexpr std::int32_t kMin = std::numeric_limits<std::int32_t>::min();
constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();

const IntBinCase kIntBinCases[] = {
    {"iadd_basic", Op::kIadd, 7, 5, 12},
    {"iadd_wrap", Op::kIadd, kMax, 1, kMin},
    {"isub_basic", Op::kIsub, 7, 5, 2},
    {"isub_wrap", Op::kIsub, kMin, 1, kMax},
    {"imul_basic", Op::kImul, -6, 7, -42},
    {"imul_wrap", Op::kImul, 1 << 30, 4, 0},
    {"idiv_trunc_neg", Op::kIdiv, -7, 2, -3},
    {"idiv_exact", Op::kIdiv, 42, -6, -7},
    {"irem_sign_follows_dividend", Op::kIrem, -7, 2, -1},
    {"irem_pos", Op::kIrem, 7, -2, 1},
    {"iand", Op::kIand, 0b1100, 0b1010, 0b1000},
    {"ior", Op::kIor, 0b1100, 0b1010, 0b1110},
    {"ixor", Op::kIxor, 0b1100, 0b1010, 0b0110},
    {"ishl_basic", Op::kIshl, 1, 4, 16},
    {"ishl_mask32", Op::kIshl, 1, 33, 2},  // shift amount masked to 5 bits
    {"ishr_arith", Op::kIshr, -16, 2, -4},
    {"ishr_mask", Op::kIshr, -16, 34, -4},
    {"iushr_logical", Op::kIushr, -1, 28, 15},
    {"iushr_zero", Op::kIushr, kMin, 31, 1},
};

class IntBinOp : public testing::TestWithParam<IntBinCase> {};

TEST_P(IntBinOp, InterpAndJitAgreeWithExpected) {
  const IntBinCase& c = GetParam();
  ClassBuilder cb("T");
  auto& m = cb.method("f", Signature{{TypeKind::kInt, TypeKind::kInt},
                                     TypeKind::kInt});
  m.param_name(0, "a").param_name(1, "b");
  m.iload("a").iload("b");
  // Emit the raw op under test.
  switch (c.op) {
    case Op::kIadd: m.iadd(); break;
    case Op::kIsub: m.isub(); break;
    case Op::kImul: m.imul(); break;
    case Op::kIdiv: m.idiv(); break;
    case Op::kIrem: m.irem(); break;
    case Op::kIand: m.iand(); break;
    case Op::kIor: m.ior(); break;
    case Op::kIxor: m.ixor(); break;
    case Op::kIshl: m.ishl(); break;
    case Op::kIshr: m.ishr(); break;
    case Op::kIushr: m.iushr(); break;
    default: FAIL() << "unexpected op";
  }
  m.iret();

  Rig rig;
  rig.vm.load(cb.build());
  rig.vm.link();
  const std::int32_t mid = rig.vm.find_method("T", "f");
  const std::vector<Value> args{Value::make_int(c.a), Value::make_int(c.b)};
  EXPECT_EQ(rig.engine.invoke(mid, args).as_int(), c.expected) << "interp";
  auto res = jit::compile_method(rig.vm, mid, {.opt_level = 1},
                                 rig.cfg.energy);
  rig.engine.install(mid, std::move(res.program), 1);
  EXPECT_EQ(rig.engine.invoke(mid, args).as_int(), c.expected) << "jit L1";
}

INSTANTIATE_TEST_SUITE_P(AllOps, IntBinOp, testing::ValuesIn(kIntBinCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// Double ops and conversions.
// ---------------------------------------------------------------------------

struct DblCase {
  const char* name;
  Op op;
  double a, b;
  double expected;
};

const DblCase kDblCases[] = {
    {"dadd", Op::kDadd, 1.5, 2.25, 3.75},
    {"dsub", Op::kDsub, 1.0, 0.75, 0.25},
    {"dmul", Op::kDmul, -3.0, 0.5, -1.5},
    {"ddiv", Op::kDdiv, 1.0, 8.0, 0.125},
    {"ddiv_by_zero_is_inf", Op::kDdiv, 1.0, 0.0,
     std::numeric_limits<double>::infinity()},
};

class DblBinOp : public testing::TestWithParam<DblCase> {};

TEST_P(DblBinOp, InterpAndJitAgreeWithExpected) {
  const DblCase& c = GetParam();
  ClassBuilder cb("T");
  auto& m = cb.method("f", Signature{{TypeKind::kDouble, TypeKind::kDouble},
                                     TypeKind::kDouble});
  m.param_name(0, "a").param_name(1, "b");
  m.dload("a").dload("b");
  switch (c.op) {
    case Op::kDadd: m.dadd(); break;
    case Op::kDsub: m.dsub(); break;
    case Op::kDmul: m.dmul(); break;
    case Op::kDdiv: m.ddiv(); break;
    default: FAIL();
  }
  m.dret();

  Rig rig;
  rig.vm.load(cb.build());
  rig.vm.link();
  const std::int32_t mid = rig.vm.find_method("T", "f");
  const std::vector<Value> args{Value::make_double(c.a),
                                Value::make_double(c.b)};
  EXPECT_EQ(rig.engine.invoke(mid, args).as_double(), c.expected) << "interp";
  auto res = jit::compile_method(rig.vm, mid, {.opt_level = 1},
                                 rig.cfg.energy);
  rig.engine.install(mid, std::move(res.program), 1);
  EXPECT_EQ(rig.engine.invoke(mid, args).as_double(), c.expected) << "jit";
}

INSTANTIATE_TEST_SUITE_P(AllOps, DblBinOp, testing::ValuesIn(kDblCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(OpcodeSemantics, ConversionsAndUnary) {
  ClassBuilder cb("T");
  {
    auto& m = cb.method("i2d", Signature{{TypeKind::kInt}, TypeKind::kDouble});
    m.param_name(0, "a");
    m.iload("a").i2d().dret();
  }
  {
    auto& m = cb.method("d2i", Signature{{TypeKind::kDouble}, TypeKind::kInt});
    m.param_name(0, "a");
    m.dload("a").d2i().iret();
  }
  {
    auto& m = cb.method("ineg", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "a");
    m.iload("a").ineg().iret();
  }
  {
    auto& m = cb.method("dneg", Signature{{TypeKind::kDouble}, TypeKind::kDouble});
    m.param_name(0, "a");
    m.dload("a").dneg().dret();
  }
  {
    auto& m = cb.method("dcmp", Signature{{TypeKind::kDouble, TypeKind::kDouble},
                                          TypeKind::kInt});
    m.param_name(0, "a").param_name(1, "b");
    m.dload("a").dload("b").dcmp().iret();
  }

  Rig rig;
  rig.vm.load(cb.build());
  rig.vm.link();
  auto check_all = [&] {
    EXPECT_DOUBLE_EQ(
        rig.engine.call("T", "i2d", {{Value::make_int(-3)}}).as_double(),
        -3.0);
    EXPECT_EQ(
        rig.engine.call("T", "d2i", {{Value::make_double(2.9)}}).as_int(), 2);
    EXPECT_EQ(
        rig.engine.call("T", "d2i", {{Value::make_double(-2.9)}}).as_int(),
        -2);  // truncation toward zero
    EXPECT_EQ(rig.engine.call("T", "ineg", {{Value::make_int(kMin)}}).as_int(),
              kMin);  // -INT_MIN wraps
    EXPECT_DOUBLE_EQ(
        rig.engine.call("T", "dneg", {{Value::make_double(0.5)}}).as_double(),
        -0.5);
    EXPECT_EQ(rig.engine
                  .call("T", "dcmp", {{Value::make_double(1.0),
                                       Value::make_double(2.0)}})
                  .as_int(),
              -1);
    EXPECT_EQ(rig.engine
                  .call("T", "dcmp", {{Value::make_double(2.0),
                                       Value::make_double(2.0)}})
                  .as_int(),
              0);
    EXPECT_EQ(rig.engine
                  .call("T", "dcmp", {{Value::make_double(3.0),
                                       Value::make_double(2.0)}})
                  .as_int(),
              1);
  };
  check_all();  // interpreted
  for (const char* name : {"i2d", "d2i", "ineg", "dneg", "dcmp"}) {
    const std::int32_t mid = rig.vm.find_method("T", name);
    auto res = jit::compile_method(rig.vm, mid, {.opt_level = 1},
                                   rig.cfg.energy);
    rig.engine.install(mid, std::move(res.program), 1);
  }
  check_all();  // native
}

TEST(OpcodeSemantics, AllConditionalBranches) {
  // One method per condition: returns 1 if taken, 0 otherwise.
  struct BranchCase {
    const char* name;
    void (*emit)(MethodBuilder&, MethodBuilder::Label);
    std::int32_t a, b;
    std::int32_t expected;
  };
  const BranchCase cases[] = {
      {"icmpeq_t", [](MethodBuilder& m, MethodBuilder::Label l) { m.if_icmpeq(l); }, 3, 3, 1},
      {"icmpeq_f", [](MethodBuilder& m, MethodBuilder::Label l) { m.if_icmpeq(l); }, 3, 4, 0},
      {"icmpne_t", [](MethodBuilder& m, MethodBuilder::Label l) { m.if_icmpne(l); }, 3, 4, 1},
      {"icmplt_t", [](MethodBuilder& m, MethodBuilder::Label l) { m.if_icmplt(l); }, -5, -4, 1},
      {"icmplt_f", [](MethodBuilder& m, MethodBuilder::Label l) { m.if_icmplt(l); }, -4, -4, 0},
      {"icmple_t", [](MethodBuilder& m, MethodBuilder::Label l) { m.if_icmple(l); }, -4, -4, 1},
      {"icmpgt_t", [](MethodBuilder& m, MethodBuilder::Label l) { m.if_icmpgt(l); }, 9, 2, 1},
      {"icmpge_f", [](MethodBuilder& m, MethodBuilder::Label l) { m.if_icmpge(l); }, 1, 2, 0},
  };
  for (const auto& c : cases) {
    ClassBuilder cb("T");
    auto& m = cb.method("f", Signature{{TypeKind::kInt, TypeKind::kInt},
                                       TypeKind::kInt});
    m.param_name(0, "a").param_name(1, "b");
    auto taken = m.new_label();
    m.iload("a").iload("b");
    c.emit(m, taken);
    m.iconst(0).iret();
    m.bind(taken);
    m.iconst(1).iret();

    Rig rig;
    rig.vm.load(cb.build());
    rig.vm.link();
    const std::int32_t mid = rig.vm.find_method("T", "f");
    const std::vector<Value> args{Value::make_int(c.a), Value::make_int(c.b)};
    EXPECT_EQ(rig.engine.invoke(mid, args).as_int(), c.expected)
        << c.name << " interp";
    auto res = jit::compile_method(rig.vm, mid, {.opt_level = 2},
                                   rig.cfg.energy);
    rig.engine.install(mid, std::move(res.program), 2);
    EXPECT_EQ(rig.engine.invoke(mid, args).as_int(), c.expected)
        << c.name << " jit";
  }
}

}  // namespace
}  // namespace javelin::jvm
