// Freshness and determinism gate for the two committed fusion tables.
//
// The corpus pair profile (sim/pairprof.cpp) is re-derived in-process and
// compared against the tables compiled into this binary:
//   * src/isa/nfusion.inc     — the fused native stream's pair ranking;
//   * src/jvm/fusion_table.inc — the L0.5 admission set.
// A mismatch means either the committed table is stale (someone changed the
// corpus, the JIT, or the profiler without regenerating) or the profile is
// not deterministic — both are defects. The suite also cross-checks the JIT
// codegen's pool-site markers against the stream builder's independent
// pattern detection: every operand the compiler pre-resolved must come out
// of the builder as a zero-lookup Abs entry.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "apps/app.hpp"
#include "isa/nstream.hpp"
#include "jit/compiler.hpp"
#include "jvm/baseline.hpp"
#include "rt/device.hpp"
#include "sim/pairprof.hpp"

namespace javelin {
namespace {

/// One corpus profile per test binary — the runs are deterministic, so
/// sharing it across tests loses nothing.
const sim::PairProfile& corpus_profile() {
  static const sim::PairProfile p = sim::profile_corpus();
  return p;
}

TEST(FusionProfile, CommittedNisaTableMatchesFreshProfile) {
  const auto ranked = sim::ranked_nisa_pairs(corpus_profile());
  ASSERT_EQ(ranked.size(), isa::kNumFusedPairs)
      << "src/isa/nfusion.inc is stale — regenerate with "
         "javelin_profile --nisa-inc";
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const isa::NFusePair& committed = isa::kFusedPairs[i];
    EXPECT_EQ(static_cast<isa::NOp>(ranked[i].a), committed.a) << "rank " << i;
    EXPECT_EQ(static_cast<isa::NOp>(ranked[i].b), committed.b) << "rank " << i;
    EXPECT_EQ(isa::nspec::is_cond_branch(committed.a), committed.branch_first)
        << "rank " << i;
  }
}

TEST(FusionProfile, CommittedJvmAdmissionMatchesFreshProfile) {
  std::set<std::pair<std::uint8_t, std::uint8_t>> derived;
  for (const sim::RankedPair& r : sim::ranked_jvm_pairs(corpus_profile()))
    derived.insert({r.a, r.b});
  for (std::size_t a = 0; a < jvm::kNumOps; ++a)
    for (std::size_t b = 0; b < jvm::kNumOps; ++b) {
      const bool admitted = jvm::fusion_admitted(static_cast<jvm::Op>(a),
                                                 static_cast<jvm::Op>(b));
      const bool expected = derived.count({static_cast<std::uint8_t>(a),
                                           static_cast<std::uint8_t>(b)}) > 0;
      EXPECT_EQ(admitted, expected)
          << jvm::op_name(static_cast<jvm::Op>(a)) << "+"
          << jvm::op_name(static_cast<jvm::Op>(b))
          << " — src/jvm/fusion_table.inc is stale, regenerate with "
             "javelin_profile --jvm-inc";
    }
}

TEST(FusionProfile, AdmittedJvmPairsAreShapeCapable) {
  for (std::size_t a = 0; a < jvm::kNumOps; ++a)
    for (std::size_t b = 0; b < jvm::kNumOps; ++b) {
      if (!jvm::fusion_admitted(static_cast<jvm::Op>(a),
                                static_cast<jvm::Op>(b)))
        continue;
      jvm::DecodedInsn da, db;
      da.op = static_cast<jvm::Op>(a);
      db.op = static_cast<jvm::Op>(b);
      std::uint16_t sop = 0;
      EXPECT_TRUE(jvm::fusable_pair(da, db, sop))
          << jvm::op_name(da.op) << "+" << jvm::op_name(db.op);
    }
}

/// Rebuild the code-index -> stream-entry map the builder used: entries are
/// emitted in code order, fused entries consume two slots.
std::vector<std::size_t> entry_of_code_index(const isa::NativeStream& s,
                                             std::size_t code_len) {
  std::vector<std::size_t> map(code_len, ~std::size_t{0});
  std::size_t pc = 0;
  for (std::size_t e = 0; e < s.entries.size(); ++e) {
    map[pc++] = e;
    if (s.entries[e].fop >= isa::kNFopFusedBase) map[pc++] = e;
  }
  EXPECT_EQ(pc, code_len);
  return map;
}

TEST(FusionProfile, PoolSitesAllPreResolvedAcrossCorpus) {
  for (const apps::App& a : apps::registry()) {
    SCOPED_TRACE(a.name);
    for (int level : {1, 2, 3}) {
      rt::Device dev(isa::client_machine());
      dev.deploy(a.classes);
      const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
      std::vector<std::int32_t> plan{mid};
      for (std::int32_t callee : jit::collect_callees(dev.vm, mid))
        plan.push_back(callee);
      for (std::int32_t id : plan) {
        auto res = jit::compile_method(
            dev.vm, id, jit::CompileOptions{.opt_level = level},
            dev.cfg.energy);
        dev.engine.install(id, std::move(res.program), level);
        const isa::NativeProgram& prog = *dev.engine.compiled(id);
        const isa::NativeStream* stream = dev.engine.native_stream(id);
        ASSERT_NE(stream, nullptr);
        // Stream accounting covers the whole body exactly once.
        EXPECT_EQ(stream->plain_ops + stream->abs_sites +
                      2 * stream->fused_pairs,
                  prog.code.size())
            << "method " << id << " L" << level;
        const auto map = entry_of_code_index(*stream, prog.code.size());
        for (std::uint32_t site : prog.pool_sites) {
          ASSERT_LT(site, prog.code.size());
          const isa::NStreamEntry& e = stream->entries[map[site]];
          EXPECT_GE(e.fop, isa::kNFopAbsBase)
              << "pool site " << site << " in method " << id << " L" << level
              << " not pre-resolved";
          EXPECT_LT(e.fop, isa::kNFopAbsBase + 6) << "pool site " << site;
        }
      }
    }
  }
}

}  // namespace
}  // namespace javelin
