// DecisionPolicy::static_seed tests: the knob's default leaves the decision
// sequence bit-identical, the seed changes cold-start behaviour when set,
// the OffloadSafety verdict excludes remote execution only under the knob,
// analysis trace events appear only when a buffer is attached, and seeded
// sweeps stay bit-identical across worker counts.
#include <gtest/gtest.h>

#include <cmath>

#include "jvm/builder.hpp"
#include "sim/sweep.hpp"

namespace javelin {
namespace {

using jvm::TypeKind;
using jvm::Value;

rt::ClientConfig seeded_config() {
  rt::ClientConfig c;
  c.decision.static_seed = true;
  return c;
}

/// A deliberately offload-unsafe benchmark: the potential method's loop
/// bumps a static counter (visible side effect on the client VM), so its
/// OffloadSafety verdict is not-offloadable even though the transcendental
/// loop body makes it look exactly like the offload-friendly FE shape.
apps::App make_unsafe_app() {
  jvm::ClassBuilder cb("Unsafe");
  cb.field("calls", TypeKind::kInt, /*is_static=*/true);
  auto& m = cb.method(
      "work", {{TypeKind::kDouble, TypeKind::kInt}, TypeKind::kDouble});
  m.param_name(0, "x").param_name(1, "n");
  m.potential(jvm::SizeParamSpec{{{1, false}}});
  auto loop = m.new_label(), done = m.new_label();
  m.dconst(0.0).dstore("acc");
  m.iconst(0).istore("i");
  m.bind(loop);
  m.iload("i").iload("n").if_icmpge(done);
  m.getstatic("Unsafe", "calls").iconst(1).iadd().putstatic("Unsafe", "calls");
  m.dload("acc");
  m.dload("x").iload("i").i2d().dadd().intrinsic(isa::Intrinsic::kSin);
  m.dadd().dstore("acc");
  m.iload("i").iconst(1).iadd().istore("i");
  m.goto_(loop);
  m.bind(done);
  m.dload("acc").dret();

  apps::App a;
  a.name = "unsafe";
  a.description = "transcendental loop that also bumps a static counter";
  a.cls = "Unsafe";
  a.method = "work";
  a.classes = {cb.build()};
  a.make_args = [](jvm::Jvm&, double scale, Rng& rng) {
    return std::vector<Value>{Value::make_double(rng.uniform_real(0.0, 1.0)),
                              Value::make_int(static_cast<int>(scale))};
  };
  // The static counter accumulates across executions, so there is no
  // per-invocation golden value to pin; correctness of the loop itself is
  // covered by the shipped apps.
  a.check = [](const jvm::Jvm&, std::span<const Value>, const jvm::Jvm&,
               Value) { return true; };
  a.profile_scales = {200, 400, 800, 1600, 3200};
  a.small_scale = 300;
  a.large_scale = 6000;
  return a;
}

int remote_count(const sim::StrategyResult& r) {
  const auto it = r.mode_counts.find(rt::ExecMode::kRemote);
  return it == r.mode_counts.end() ? 0 : it->second;
}

TEST(StaticPolicy, DefaultConfigLeavesDecisionsUntouched) {
  // An explicit default-constructed config must reproduce the nullptr
  // (runner-default) path bit for bit: the knob's default runs no analysis.
  const sim::ScenarioRunner runner(apps::app("fe"));
  const rt::ClientConfig defaults;
  const auto a = runner.run(rt::Strategy::kAdaptiveAdaptive,
                            sim::Situation::kUniform, 30);
  const auto b = runner.run(rt::Strategy::kAdaptiveAdaptive,
                            sim::Situation::kUniform, 30, true, &defaults);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mode_counts, b.mode_counts);
  EXPECT_EQ(a.compiles, b.compiles);
}

TEST(StaticPolicy, SeedChangesColdStartDecisions) {
  // db shows the largest cold-start penalty in the ablation: the seeded
  // decision compiles earlier and never pays the exploration ladder.
  const sim::ScenarioRunner runner(apps::app("db"));
  const rt::ClientConfig seeded = seeded_config();
  const auto cold = runner.run(rt::Strategy::kAdaptiveAdaptive,
                               sim::Situation::kUniform, 40);
  const auto with_seed = runner.run(rt::Strategy::kAdaptiveAdaptive,
                                    sim::Situation::kUniform, 40, true,
                                    &seeded);
  EXPECT_NE(cold.total_energy_j, with_seed.total_energy_j);
  EXPECT_LT(with_seed.total_energy_j, cold.total_energy_j);
  EXPECT_TRUE(with_seed.all_correct);
}

TEST(StaticPolicy, OffloadVerdictExcludesRemoteOnlyWhenSeeded) {
  const apps::App unsafe = make_unsafe_app();
  const sim::ScenarioRunner runner(unsafe);
  // Good channel + heavy transcendental loop: cold AA offloads eagerly —
  // the knob-off path ignores the (unsafe) verdict entirely.
  const auto cold = runner.run(rt::Strategy::kAdaptiveAdaptive,
                               sim::Situation::kGoodChannelDominantSize, 30);
  EXPECT_GT(remote_count(cold), 0);
  // Seeded, the static verdict (writes-statics) excludes the remote
  // candidate; every invocation must run locally.
  const rt::ClientConfig seeded = seeded_config();
  const auto with_seed =
      runner.run(rt::Strategy::kAdaptiveAdaptive,
                 sim::Situation::kGoodChannelDominantSize, 30, true, &seeded);
  EXPECT_EQ(remote_count(with_seed), 0);
}

TEST(StaticPolicy, AnalysisEventsAppearOnlyWhenTraced) {
  const sim::ScenarioRunner runner(apps::app("fe"));
  const rt::ClientConfig seeded = seeded_config();

  // Seeded + traced: one kAnalysis event per deployed method.
  obs::TraceBuffer traced("t");
  const auto with_trace =
      runner.run(rt::Strategy::kAdaptiveAdaptive, sim::Situation::kUniform,
                 20, true, &seeded, &traced);
  std::size_t analysis_events = 0;
  for (const obs::TraceEvent& e : traced.events())
    if (e.kind == obs::EventKind::kAnalysis) ++analysis_events;
  EXPECT_EQ(analysis_events, apps::app("fe").classes[0].methods.size());

  // Tracing is read-only: the untraced seeded run is bit-identical.
  const auto untraced = runner.run(rt::Strategy::kAdaptiveAdaptive,
                                   sim::Situation::kUniform, 20, true,
                                   &seeded);
  EXPECT_EQ(with_trace.total_energy_j, untraced.total_energy_j);
  EXPECT_EQ(with_trace.mode_counts, untraced.mode_counts);

  // Knob off: no analysis runs, so a traced run emits zero analysis events.
  obs::TraceBuffer cold_buf("c");
  runner.run(rt::Strategy::kAdaptiveAdaptive, sim::Situation::kUniform, 20,
             true, nullptr, &cold_buf);
  for (const obs::TraceEvent& e : cold_buf.events())
    EXPECT_NE(e.kind, obs::EventKind::kAnalysis);
}

TEST(StaticPolicy, SeededSweepIsBitIdenticalAcrossJobCounts) {
  // The acceptance bar: seeding must not introduce any scheduling
  // sensitivity. Run the same seeded cells at 1 and 8 workers and require
  // exact equality.
  const apps::App& db = apps::app("db");
  const apps::App& sort = apps::app("sort");
  const sim::ScenarioRunner runners[] = {sim::ScenarioRunner(db),
                                         sim::ScenarioRunner(sort)};
  const sim::Situation situations[] = {
      sim::Situation::kGoodChannelDominantSize,
      sim::Situation::kPoorChannelDominantSize,
      sim::Situation::kUniform,
  };
  const rt::ClientConfig seeded = seeded_config();
  const auto run_cells = [&](int jobs) {
    sim::SweepEngine engine(jobs);
    return engine.map<sim::StrategyResult>(6, [&](std::size_t i) {
      return runners[i / 3].run(rt::Strategy::kAdaptiveAdaptive,
                                situations[i % 3], 25, true, &seeded);
    });
  };
  const auto serial = run_cells(1);
  const auto parallel = run_cells(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].total_energy_j, parallel[i].total_energy_j) << i;
    EXPECT_EQ(serial[i].mode_counts, parallel[i].mode_counts) << i;
    EXPECT_EQ(serial[i].compiles, parallel[i].compiles) << i;
  }
}

}  // namespace
}  // namespace javelin
