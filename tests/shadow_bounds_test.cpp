// Shadow-bounds tests: the elide-then-validate contract (DESIGN.md §13).
//
// Unit tests for the ShadowBounds oracle itself, arena integration (alignment
// gaps between live allocations), and the tier-1 differential criteria:
//  (a) interprocedural BCE elisions produce zero shadow violations across
//      the 8-app corpus (and a synthetic app where elisions provably fire),
//  (b) energy ledgers are bit-identical with shadow mode on or off,
//      regardless of the BCE setting, and
//  (c) a deliberately-forged class (fabricated length facts backing an
//      out-of-bounds elided access) raises a typed BoundsFault and the
//      session survives — no crash, no silent read of a neighbour.
#include <gtest/gtest.h>

#include "analysis/lengths.hpp"
#include "apps/app.hpp"
#include "jit/compiler.hpp"
#include "jvm/builder.hpp"
#include "jvm/engine.hpp"
#include "mem/shadow.hpp"
#include "rt/client.hpp"

namespace javelin {
namespace {

using jvm::ClassBuilder;
using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

// ---- ShadowBounds unit tests ----------------------------------------------

TEST(ShadowBounds, NoteAllocEnforcesBumpOrder) {
  mem::ShadowBounds sb;
  sb.note_alloc(100, 10);
  // Overlapping or retrograde bases would break the binary search.
  EXPECT_THROW(sb.note_alloc(105, 4), std::invalid_argument);
  EXPECT_THROW(sb.note_alloc(99, 1), std::invalid_argument);
  sb.note_alloc(110, 4);  // exactly adjacent is fine
  EXPECT_EQ(sb.live_entries(), 2u);
  EXPECT_EQ(sb.stats().allocations, 2u);
}

TEST(ShadowBounds, CheckAccessRequiresOneLiveEntry) {
  mem::ShadowBounds sb;
  sb.note_alloc(100, 10);
  sb.note_alloc(120, 8);
  sb.check_access(100, 10);  // whole first entry
  sb.check_access(108, 2);   // tail of first entry
  sb.check_access(120, 8);   // whole second entry
  // Below, between, past, and spanning-out-of an entry all fault.
  EXPECT_THROW(sb.check_access(96, 4), BoundsFault);
  EXPECT_THROW(sb.check_access(110, 4), BoundsFault);
  EXPECT_THROW(sb.check_access(128, 1), BoundsFault);
  EXPECT_THROW(sb.check_access(108, 4), BoundsFault);
  EXPECT_EQ(sb.stats().checks, 7u);
  EXPECT_EQ(sb.stats().violations, 4u);
}

TEST(ShadowBounds, ReleaseAboveAndClearDropEntries) {
  mem::ShadowBounds sb;
  sb.note_alloc(100, 10);
  sb.note_alloc(120, 8);
  sb.note_alloc(128, 8);
  sb.release_above(120);  // watermark release back to the second allocation
  EXPECT_EQ(sb.live_entries(), 1u);
  EXPECT_THROW(sb.check_access(120, 4), BoundsFault);
  sb.check_access(100, 10);
  // The bump pointer may now revisit released addresses.
  sb.note_alloc(120, 16);
  sb.check_access(130, 4);
  sb.clear();
  EXPECT_EQ(sb.live_entries(), 0u);
  EXPECT_THROW(sb.check_access(100, 1), BoundsFault);
}

// ---- Arena integration -----------------------------------------------------

TEST(ShadowArena, AlignmentGapBetweenAllocationsFaults) {
  mem::Arena a(1 << 20, 1 << 16);
  mem::ShadowBounds sb;
  a.set_shadow(&sb);
  // alloc(5) occupies 5 bytes; the next 8-aligned allocation leaves a 3-byte
  // gap the zone check cannot see (both sides are heap).
  const mem::Addr p = a.alloc(5);
  const mem::Addr q = a.alloc(8);
  ASSERT_GT(q, p + 5);
  EXPECT_EQ(a.load_u8(p + 4), 0);                   // inside the allocation
  EXPECT_THROW(a.load_u8(p + 6), BoundsFault);      // the gap
  EXPECT_THROW(a.load_i64(p), BoundsFault);         // spans out of the entry
  a.store_i64(q, 42);                               // neighbour is untouched
  EXPECT_EQ(a.load_i64(q), 42);
  EXPECT_EQ(sb.stats().violations, 2u);
  EXPECT_GT(sb.stats().checks, sb.stats().violations);
}

TEST(ShadowArena, WatermarkReleaseAndResetTrackTheArena) {
  mem::Arena a(1 << 20, 1 << 16);
  mem::ShadowBounds sb;
  a.set_shadow(&sb);
  a.alloc(16);
  const std::size_t mark = a.heap_mark();
  a.alloc(16);
  a.alloc(16);
  EXPECT_EQ(sb.live_entries(), 3u);
  a.heap_release(mark);
  EXPECT_EQ(sb.live_entries(), 1u);
  // Reuse after release is clean: the bump pointer revisits the addresses.
  const mem::Addr p = a.alloc(24);
  a.store_i32(p + 16, 9);
  EXPECT_EQ(a.load_i32(p + 16), 9);
  a.reset();
  EXPECT_EQ(sb.live_entries(), 0u);
}

// ---- Synthetic interprocedural app ----------------------------------------

// Caller allocates a length-3 array and passes it to a non-root kernel whose
// accesses (arraylength + constant indices 0 and 2) are exactly what the
// length-fact pass can prove safe across the call.
jvm::ClassFile chain_class() {
  ClassBuilder cb("Chain");
  {
    auto& k = cb.method("kernel", Signature{{TypeKind::kRef}, TypeKind::kInt});
    k.param_name(0, "b");
    k.aload("b").arraylength();
    k.aload("b").iconst(0).iaload().iadd();
    k.aload("b").iconst(2).iaload().iadd();
    k.iret();
  }
  {
    auto& e = cb.method("entry", Signature{{TypeKind::kInt}, TypeKind::kInt});
    e.param_name(0, "n");
    e.potential(jvm::SizeParamSpec{{{0, false}}});
    e.iconst(3).newarray(TypeKind::kInt).astore("a");
    e.aload("a").iconst(0).iload("n").iastore();
    e.aload("a").iconst(2).iload("n").iconst(2).imul().iastore();
    e.aload("a").invokestatic("Chain", "kernel").iret();
  }
  return cb.build();
}

struct EngineRig {
  isa::MachineConfig cfg = isa::client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier{cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter};
  isa::Core core{&cfg, &arena, &hier, &meter};
  jvm::Jvm vm{core};
  jvm::ExecutionEngine engine{vm};
};

TEST(ShadowInterproc, ElidedKernelRunsCleanUnderShadow) {
  EngineRig rig;
  const jvm::ClassFile cf = chain_class();
  rig.vm.load(cf);
  rig.vm.link();

  // The pass proves kernel's parameter non-null with length >= 3.
  const analysis::LengthAnalysis la = analysis::analyze_lengths({&cf});
  ASSERT_FALSE(la.incomplete);
  const jvm::MethodInfo* kmi = nullptr;
  for (const auto& m : cf.methods)
    if (m.name == "kernel") kmi = &m;
  ASSERT_NE(kmi, nullptr);
  const analysis::MethodLengthFacts* f = la.find(kmi);
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->valid());
  ASSERT_EQ(f->params.size(), 1u);
  EXPECT_TRUE(f->params[0].non_null);
  EXPECT_EQ(f->params[0].min_len, 3);

  // L3 with the facts elides guards no dominating access could prove.
  const std::int32_t kid = rig.vm.find_method("Chain", "kernel");
  std::vector<jit::ArrayParamFact> facts{{f->params[0].non_null,
                                          f->params[0].min_len}};
  jit::CompileOptions opts;
  opts.opt_level = 3;
  opts.param_facts = &facts;
  auto res = jit::compile_method(rig.vm, kid, opts, rig.cfg.energy);
  EXPECT_GT(res.guards_elided_interproc, 0u);
  EXPECT_GE(res.guards_elided, res.guards_elided_interproc);
  rig.engine.install(kid, std::move(res.program), 3);

  // Shadow mode dynamically validates every elision.
  mem::ShadowBounds sb;
  rig.arena.set_shadow(&sb);
  const std::int32_t eid = rig.vm.find_method("Chain", "entry");
  const Value v = rig.engine.invoke(eid, {{Value::make_int(5)}});
  EXPECT_EQ(v.as_int(), 3 + 5 + 10);
  EXPECT_EQ(sb.stats().violations, 0u);
  EXPECT_GT(sb.stats().checks, 0u);
}

// ---- Forged facts: the hostile case ---------------------------------------

// peek() reads b[3] of a length-3 array. With honestly-computed facts that
// access keeps its guard and traps as a guest error; with *forged* facts
// (min_len = 4) the guard is elided and the generated code reads the 4-byte
// alignment gap after the array — precisely what shadow mode exists to catch.
jvm::ClassFile forge_class() {
  ClassBuilder cb("Forge");
  {
    auto& p = cb.method("peek", Signature{{TypeKind::kRef}, TypeKind::kInt});
    p.param_name(0, "b");
    p.aload("b").iconst(3).iaload().iret();
  }
  {
    auto& g = cb.method("go", Signature{{TypeKind::kInt}, TypeKind::kInt});
    g.param_name(0, "n");
    g.potential(jvm::SizeParamSpec{{{0, false}}});
    // a = new int[3] (20 bytes: 8 header + 12 data, bumped to 24 by the
    // next allocation's alignment); pad keeps the heap frontier past the gap
    // so the zone check alone cannot catch the overflow.
    g.iconst(3).newarray(TypeKind::kInt).astore("a");
    g.iconst(16).newarray(TypeKind::kInt).astore("pad");
    g.aload("a").iconst(0).iload("n").iastore();
    g.aload("a").invokestatic("Forge", "peek").iret();
  }
  {
    auto& k = cb.method("ok", Signature{{TypeKind::kInt}, TypeKind::kInt});
    k.param_name(0, "n");
    k.potential(jvm::SizeParamSpec{{{0, false}}});
    k.iload("n").iconst(2).imul().iret();
  }
  return cb.build();
}

// Compile peek with fabricated facts; the elision must actually fire for the
// test to mean anything.
isa::NativeProgram forged_peek(EngineRig& rig, std::int32_t pid) {
  std::vector<jit::ArrayParamFact> forged{{true, 4}};
  jit::CompileOptions opts;
  opts.opt_level = 3;
  opts.param_facts = &forged;
  auto res = jit::compile_method(rig.vm, pid, opts, rig.cfg.energy);
  EXPECT_GT(res.guards_elided_interproc, 0u);
  return std::move(res.program);
}

TEST(ShadowForged, SilentNeighbourReadWithoutShadowFaultsWithShadow) {
  // Without shadow: the elided access reads the zero-filled alignment gap —
  // wrong but silent, the exact failure mode the oracle closes.
  {
    EngineRig rig;
    rig.vm.load(forge_class());
    rig.vm.link();
    const std::int32_t pid = rig.vm.find_method("Forge", "peek");
    rig.engine.install(pid, forged_peek(rig, pid), 3);
    const std::int32_t gid = rig.vm.find_method("Forge", "go");
    EXPECT_EQ(rig.engine.invoke(gid, {{Value::make_int(7)}}).as_int(), 0);
  }
  // With shadow: a typed BoundsFault, and the engine survives it.
  {
    EngineRig rig;
    rig.vm.load(forge_class());
    rig.vm.link();
    const std::int32_t pid = rig.vm.find_method("Forge", "peek");
    rig.engine.install(pid, forged_peek(rig, pid), 3);
    mem::ShadowBounds sb;
    rig.arena.set_shadow(&sb);
    const std::int32_t gid = rig.vm.find_method("Forge", "go");
    EXPECT_THROW(rig.engine.invoke(gid, {{Value::make_int(7)}}), BoundsFault);
    EXPECT_EQ(sb.stats().violations, 1u);
    // The arena is intact: further guest work proceeds normally.
    const std::int32_t oid = rig.vm.find_method("Forge", "ok");
    EXPECT_EQ(rig.engine.invoke(oid, {{Value::make_int(7)}}).as_int(), 14);
  }
}

TEST(ShadowForged, ClientSessionSurvivesBoundsFault) {
  rt::Server server;
  radio::FixedChannel channel{radio::PowerClass::kClass4};
  net::Link link;
  rt::Client client(rt::ClientConfig{}, server, channel, link);
  client.deploy({forge_class()});
  rt::Device& dev = client.device();
  dev.enable_shadow_bounds();

  // Plant the forged compilation; ensure_compiled() sees the level tag and
  // never recompiles it.
  const std::int32_t pid = dev.vm.find_method("Forge", "peek");
  {
    std::vector<jit::ArrayParamFact> forged{{true, 4}};
    jit::CompileOptions opts;
    opts.opt_level = 3;
    opts.param_facts = &forged;
    auto res = jit::compile_method(dev.vm, pid, opts, dev.cfg.energy);
    ASSERT_GT(res.guards_elided_interproc, 0u);
    dev.engine.install(pid, std::move(res.program), 1);
  }

  // The invocation aborts with the typed fault; the report records it.
  rt::InvokeReport rep;
  std::vector<Value> args{Value::make_int(7)};
  EXPECT_THROW(client.run("Forge", "go", args, rt::Strategy::kLocal1, &rep),
               BoundsFault);
  EXPECT_EQ(rep.resilience.bounds_faults, 1);
  ASSERT_NE(dev.shadow_bounds, nullptr);
  EXPECT_EQ(dev.shadow_bounds->stats().violations, 1u);

  // Graceful degradation: the session survives — the same client serves the
  // next invocation (and even the faulting method interpreted, where the
  // guard is back and the error is an ordinary guest trap).
  rt::InvokeReport rep2;
  EXPECT_EQ(
      client.run("Forge", "ok", args, rt::Strategy::kInterpret, &rep2).as_int(),
      14);
  EXPECT_EQ(rep2.resilience.bounds_faults, 0);
  EXPECT_THROW(client.run("Forge", "go", args, rt::Strategy::kInterpret),
               VmError);
}

// ---- The 8-app differential -----------------------------------------------

struct CorpusRun {
  double energy = 0.0;
  std::uint64_t violations = 0;
  bool correct = false;
};

CorpusRun run_app(const apps::App& a, bool shadow, bool interproc_bce) {
  rt::Server server;
  radio::FixedChannel channel{radio::PowerClass::kClass4};
  net::Link link;
  rt::ClientConfig cfg;
  cfg.decision.interprocedural_bce = interproc_bce;
  rt::Client client(cfg, server, channel, link);
  client.deploy(a.classes);
  if (shadow) client.device().enable_shadow_bounds();

  Rng rng(11);
  jvm::Jvm& vm = client.device().vm;
  const auto args = a.make_args(vm, a.small_scale, rng);
  const Value result =
      client.run(a.cls, a.method, args, rt::Strategy::kLocal3);
  CorpusRun out;
  out.correct = a.check(vm, args, vm, result);
  out.energy = client.device().meter.total();
  const mem::ShadowBounds* sb = client.device().shadow_bounds.get();
  out.violations = sb ? sb->stats().violations : 0;
  return out;
}

TEST(ShadowDifferential, CorpusLedgersIdenticalAndElisionsClean) {
  for (const apps::App& a : apps::registry()) {
    SCOPED_TRACE(a.name);
    const CorpusRun base = run_app(a, /*shadow=*/false, /*bce=*/false);
    const CorpusRun base_sh = run_app(a, /*shadow=*/true, /*bce=*/false);
    const CorpusRun ip = run_app(a, /*shadow=*/false, /*bce=*/true);
    const CorpusRun ip_sh = run_app(a, /*shadow=*/true, /*bce=*/true);

    EXPECT_TRUE(base.correct);
    EXPECT_TRUE(base_sh.correct);
    EXPECT_TRUE(ip.correct);
    EXPECT_TRUE(ip_sh.correct);

    // (b) shadow mode never perturbs the ledger, under either BCE setting:
    // bit-identical energy, not approximately equal.
    EXPECT_EQ(base.energy, base_sh.energy);
    EXPECT_EQ(ip.energy, ip_sh.energy);

    // (a) every check the interprocedural pass elided holds dynamically.
    EXPECT_EQ(base_sh.violations, 0u);
    EXPECT_EQ(ip_sh.violations, 0u);
  }
}

}  // namespace
}  // namespace javelin
