// Differential fuzzing of the execution paths.
//
// Generates random — but verifier-clean — guest methods (arithmetic over int
// and double locals, array reads/writes with in-range and clamped indices,
// branches, bounded loops, intrinsics, helper calls), then executes each
// method interpreted and JIT-compiled at Levels 1-3 and requires bit-identical
// results and identical heap side effects. Any miscompilation in translation,
// an optimization pass, register allocation or codegen shows up here.
//
// The generator is seeded and enumerated deterministically, so failures
// reproduce by seed.
#include <gtest/gtest.h>

#include <sstream>

#include "jit/compiler.hpp"
#include "jvm/builder.hpp"
#include "jvm/engine.hpp"
#include "support/rng.hpp"

namespace javelin {
namespace {

using jvm::ClassBuilder;
using jvm::MethodBuilder;
using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

/// Emits a random expression/statement soup into a method with signature
/// (int, int, double, int[]) -> int. Every array index is masked into range,
/// every divisor is forced nonzero, every loop is bounded — so the program
/// always terminates without traps and all paths verify.
class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  jvm::ClassFile generate() {
    ClassBuilder cb("Fuzz");
    auto& m = cb.method(
        "run", Signature{{TypeKind::kInt, TypeKind::kInt, TypeKind::kDouble,
                          TypeKind::kRef},
                         TypeKind::kInt});
    m.param_name(0, "a").param_name(1, "b").param_name(2, "x")
        .param_name(3, "arr");

    // Declared int and double locals, pre-initialized from the params.
    const int n_ints = 2 + static_cast<int>(rng_.uniform_int(0, 3));
    const int n_dbls = 1 + static_cast<int>(rng_.uniform_int(0, 2));
    for (int i = 0; i < n_ints; ++i) {
      ivars_.push_back("i" + std::to_string(i));
      m.iload(i % 2 ? "b" : "a").iconst(static_cast<std::int32_t>(
          rng_.uniform_int(-50, 50)));
      m.iadd().istore(ivars_.back());
    }
    for (int i = 0; i < n_dbls; ++i) {
      dvars_.push_back("d" + std::to_string(i));
      m.dload("x").dconst(rng_.uniform_real(-2.0, 2.0)).dmul()
          .dstore(dvars_.back());
    }

    const int n_stmts = 4 + static_cast<int>(rng_.uniform_int(0, 10));
    for (int i = 0; i < n_stmts; ++i) statement(m, 0);

    // Result folds every local and an array checksum together.
    m.iconst(0).istore("acc");
    for (const auto& v : ivars_)
      m.iload("acc").iload(v).ixor().istore("acc");
    for (const auto& v : dvars_) {
      // Fold doubles via a scaled truncation (deterministic across paths).
      m.iload("acc");
      m.dload(v).dconst(64.0).dmul().d2i();
      m.ixor().istore("acc");
    }
    // Array checksum loop.
    auto loop = m.new_label(), done = m.new_label();
    m.iconst(0).istore("ci");
    m.bind(loop);
    m.iload("ci").aload("arr").arraylength().if_icmpge(done);
    m.iload("acc").iconst(31).imul()
        .aload("arr").iload("ci").iaload().iadd().istore("acc");
    m.iload("ci").iconst(1).iadd().istore("ci");
    m.goto_(loop);
    m.bind(done);
    m.iload("acc").iret();
    return cb.build();
  }

 private:
  std::string ivar() {
    return ivars_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(ivars_.size()) - 1))];
  }
  std::string dvar() {
    return dvars_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(dvars_.size()) - 1))];
  }

  /// Push a guaranteed-in-range index for `arr`.
  void masked_index(MethodBuilder& m) {
    int_expr(m, 0);
    // idx = iabs(e % arr.length)  — length is always >= 1 in the harness.
    m.aload("arr").arraylength().irem().intrinsic(isa::Intrinsic::kIabs);
  }

  void int_expr(MethodBuilder& m, int depth) {
    const int choice = static_cast<int>(rng_.uniform_int(0, depth > 2 ? 2 : 7));
    switch (choice) {
      case 0:
        m.iconst(static_cast<std::int32_t>(rng_.uniform_int(-100, 100)));
        break;
      case 1:
      case 2:
        m.iload(ivar());
        break;
      case 3: {
        int_expr(m, depth + 1);
        int_expr(m, depth + 1);
        switch (rng_.uniform_int(0, 6)) {
          case 0: m.iadd(); break;
          case 1: m.isub(); break;
          case 2: m.imul(); break;
          case 3: m.iand(); break;
          case 4: m.ior(); break;
          case 5: m.ixor(); break;
          default:
            // Shift with a masked amount.
            m.iconst(7).iand();
            m.ishl();
            break;
        }
        break;
      }
      case 4: {
        // Division by a nonzero divisor: (e | 1).
        int_expr(m, depth + 1);
        int_expr(m, depth + 1);
        m.iconst(1).ior();
        if (rng_.bernoulli(0.5))
          m.idiv();
        else
          m.irem();
        break;
      }
      case 5: {
        // Array element.
        m.aload("arr");
        masked_index(m);
        m.iaload();
        break;
      }
      case 6: {
        int_expr(m, depth + 1);
        m.ineg();
        break;
      }
      default: {
        // Int intrinsic.
        int_expr(m, depth + 1);
        int_expr(m, depth + 1);
        m.intrinsic(rng_.bernoulli(0.5) ? isa::Intrinsic::kImin
                                        : isa::Intrinsic::kImax);
        break;
      }
    }
  }

  void dbl_expr(MethodBuilder& m, int depth) {
    const int choice = static_cast<int>(rng_.uniform_int(0, depth > 2 ? 1 : 5));
    switch (choice) {
      case 0:
        m.dconst(rng_.uniform_real(-4.0, 4.0));
        break;
      case 1:
        m.dload(dvar());
        break;
      case 2: {
        dbl_expr(m, depth + 1);
        dbl_expr(m, depth + 1);
        switch (rng_.uniform_int(0, 2)) {
          case 0: m.dadd(); break;
          case 1: m.dsub(); break;
          default: m.dmul(); break;
        }
        break;
      }
      case 3:
        int_expr(m, depth + 1);
        m.i2d();
        break;
      case 4:
        dbl_expr(m, depth + 1);
        m.dneg();
        break;
      default:
        // A well-behaved intrinsic (sin stays finite).
        dbl_expr(m, depth + 1);
        m.intrinsic(isa::Intrinsic::kSin);
        break;
    }
  }

  void statement(MethodBuilder& m, int depth) {
    const int choice = static_cast<int>(rng_.uniform_int(0, depth > 1 ? 2 : 5));
    switch (choice) {
      case 0: {
        int_expr(m, 0);
        m.istore(ivar());
        break;
      }
      case 1: {
        dbl_expr(m, 0);
        m.dstore(dvar());
        break;
      }
      case 2: {
        // Array store.
        m.aload("arr");
        masked_index(m);
        int_expr(m, 0);
        m.iastore();
        break;
      }
      case 3: {
        // if (e <cond> e) { stmt } else { stmt }
        auto other = m.new_label(), join = m.new_label();
        int_expr(m, 0);
        int_expr(m, 0);
        switch (rng_.uniform_int(0, 3)) {
          case 0: m.if_icmplt(other); break;
          case 1: m.if_icmpge(other); break;
          case 2: m.if_icmpeq(other); break;
          default: m.if_icmpne(other); break;
        }
        statement(m, depth + 1);
        m.goto_(join);
        m.bind(other);
        statement(m, depth + 1);
        m.bind(join);
        break;
      }
      case 4: {
        // Bounded loop: for (k = 0; k < small; ++k) stmt
        const std::string k = "k" + std::to_string(loop_id_++);
        auto loop = m.new_label(), done = m.new_label();
        const auto bound =
            static_cast<std::int32_t>(rng_.uniform_int(1, 12));
        m.iconst(0).istore(k);
        m.bind(loop);
        m.iload(k).iconst(bound).if_icmpge(done);
        statement(m, depth + 1);
        m.iload(k).iconst(1).iadd().istore(k);
        m.goto_(loop);
        m.bind(done);
        break;
      }
      default: {
        // Double comparison branch (exercises dcmp fusion).
        auto other = m.new_label(), join = m.new_label();
        dbl_expr(m, 0);
        dbl_expr(m, 0);
        m.dcmp();
        if (rng_.bernoulli(0.5))
          m.ifgt(other);
        else
          m.ifle(other);
        statement(m, depth + 1);
        m.goto_(join);
        m.bind(other);
        statement(m, depth + 1);
        m.bind(join);
        break;
      }
    }
  }

  Rng rng_;
  std::vector<std::string> ivars_;
  std::vector<std::string> dvars_;
  int loop_id_ = 0;
};

struct RunOutcome {
  std::int32_t result = 0;
  std::vector<std::int32_t> array_after;
};

RunOutcome run_at(const jvm::ClassFile& cf, int level, std::uint64_t seed) {
  isa::MachineConfig cfg = isa::client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier(cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter);
  isa::Core core{&cfg, &arena, &hier, &meter};
  core.step_limit = 2'000'000'000ULL;
  jvm::Jvm vm(core);
  jvm::ExecutionEngine engine(vm);
  vm.load(cf);
  vm.link();
  const std::int32_t mid = vm.find_method("Fuzz", "run");

  if (level > 0) {
    auto res = jit::compile_method(vm, mid,
                                   jit::CompileOptions{.opt_level = level},
                                   cfg.energy);
    engine.install(mid, std::move(res.program), level);
  } else {
    engine.set_force_interpret(true);
  }

  Rng rng(seed);
  const std::int32_t len = 4 + static_cast<std::int32_t>(rng.uniform_int(0, 12));
  std::vector<std::int32_t> init(static_cast<std::size_t>(len));
  for (auto& v : init)
    v = static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
  const mem::Addr arr = vm.new_array(TypeKind::kInt, len, false);
  vm.write_i32_array(arr, init);

  const std::vector<Value> args{
      Value::make_int(static_cast<std::int32_t>(rng.uniform_int(-500, 500))),
      Value::make_int(static_cast<std::int32_t>(rng.uniform_int(-500, 500))),
      Value::make_double(rng.uniform_real(-3.0, 3.0)), Value::make_ref(arr)};

  RunOutcome out;
  out.result = engine.invoke(mid, args).as_int();
  out.array_after = vm.read_i32_array(arr);
  return out;
}

class DifferentialFuzz : public testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, AllExecutionPathsAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 0x9e3779b9u + 17;
  ProgramGen gen(seed);
  jvm::ClassFile cf;
  ASSERT_NO_THROW(cf = gen.generate()) << "seed " << seed;

  const RunOutcome interp = run_at(cf, 0, seed);
  for (int level = 1; level <= 3; ++level) {
    const RunOutcome jit = run_at(cf, level, seed);
    ASSERT_EQ(jit.result, interp.result)
        << "level " << level << " result diverged, seed " << seed << "\n"
        << jvm::disassemble(cf.find_method("run")->code);
    ASSERT_EQ(jit.array_after, interp.array_after)
        << "level " << level << " heap side effects diverged, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, testing::Range(0, 60),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace javelin
