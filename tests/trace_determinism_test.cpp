// End-to-end contracts of the tracing subsystem (DESIGN.md §10):
//  * exports are byte-identical at any worker count for a fixed seed,
//    because per-cell buffers merge in cell order, not completion order;
//  * tracing is read-only — traced StrategyResults are bit-identical to
//    untraced ones;
//  * the per-event energy ledger is exact: kInvokeEnd totals sum bitwise to
//    StrategyResult::total_energy_j per cell;
//  * faulted traces cross-check the ResilienceStats aggregation (per-class
//    failure counts, retries, breaker transitions, wasted joules).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/sweep.hpp"

namespace javelin {
namespace {

sim::ScenarioSweepSpec trace_spec() {
  sim::ScenarioSweepSpec spec;
  spec.apps = {&apps::app("fe"), &apps::app("sort")};
  spec.situations = {sim::Situation::kGoodChannelDominantSize,
                     sim::Situation::kUniform};
  spec.strategies = {rt::Strategy::kRemote, rt::Strategy::kAdaptiveAdaptive};
  spec.executions = 8;
  return spec;
}

TEST(TraceDeterminism, ExportsAreByteIdenticalAcrossJobCounts) {
  std::string ref_json, ref_dump, ref_metrics;
  for (int jobs : {1, 8}) {
    obs::TraceCollector collector;
    sim::ScenarioSweepSpec spec = trace_spec();
    spec.collector = &collector;
    sim::SweepEngine engine(jobs);
    const auto result = sim::run_scenario_sweep(engine, spec);
    ASSERT_EQ(result.cells.size(), 8u);
    ASSERT_EQ(collector.size(), 8u);

    const std::string json = obs::chrome_trace_json(collector);
    std::string err;
    EXPECT_TRUE(obs::json_valid(json, &err)) << err;
    const std::string dump = obs::text_dump(collector);
    const std::string metrics = obs::build_metrics(collector).prometheus_text();
    if (jobs == 1) {
      ref_json = json;
      ref_dump = dump;
      ref_metrics = metrics;
      EXPECT_GT(json.size(), 1000u);  // Non-vacuous: events were recorded.
    } else {
      EXPECT_EQ(json, ref_json);
      EXPECT_EQ(dump, ref_dump);
      EXPECT_EQ(metrics, ref_metrics);
    }
  }
}

TEST(TraceDeterminism, TracingDoesNotPerturbResults) {
  sim::SweepEngine engine(4);
  const sim::ScenarioSweepSpec plain = trace_spec();
  const auto untraced = sim::run_scenario_sweep(engine, plain);

  obs::TraceCollector collector;
  sim::ScenarioSweepSpec spec = trace_spec();
  spec.collector = &collector;
  const auto traced = sim::run_scenario_sweep(engine, spec);

  ASSERT_EQ(traced.cells.size(), untraced.cells.size());
  for (std::size_t i = 0; i < traced.cells.size(); ++i) {
    const sim::StrategyResult& a = traced.cells[i];
    const sim::StrategyResult& b = untraced.cells[i];
    EXPECT_EQ(a.total_energy_j, b.total_energy_j) << i;
    EXPECT_EQ(a.total_seconds, b.total_seconds) << i;
    EXPECT_EQ(a.computation_j, b.computation_j) << i;
    EXPECT_EQ(a.communication_j, b.communication_j) << i;
    EXPECT_EQ(a.idle_j, b.idle_j) << i;
    EXPECT_EQ(a.dram_j, b.dram_j) << i;
    EXPECT_EQ(a.mode_counts, b.mode_counts) << i;
    EXPECT_EQ(a.compiles, b.compiles) << i;
    EXPECT_EQ(a.retries, b.retries) << i;
    EXPECT_EQ(a.remote_failures, b.remote_failures) << i;
    EXPECT_EQ(a.wasted_retry_j, b.wasted_retry_j) << i;
    EXPECT_EQ(a.all_correct, b.all_correct) << i;
  }
}

TEST(TraceDeterminism, InvokeEndLedgersSumExactlyToCellEnergy) {
  obs::TraceCollector collector;
  sim::ScenarioSweepSpec spec = trace_spec();
  spec.collector = &collector;
  sim::SweepEngine engine(4);
  const auto result = sim::run_scenario_sweep(engine, spec);

  const auto buffers = collector.ordered();
  ASSERT_EQ(buffers.size(), result.cells.size());
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    // One kInvokeEnd per execution, each carrying the meter delta computed
    // from the same snapshot as InvokeReport::energy_j. Summing them in
    // event order is the same FP addition sequence run_sequence performs,
    // so the total must match bit for bit — not approximately.
    double sum = 0.0;
    double server_sum = 0.0;
    int invocations = 0;
    for (const obs::TraceEvent& ev : buffers[i]->events()) {
      if (ev.kind != obs::EventKind::kInvokeEnd) continue;
      sum += ev.ledger.total_j;
      server_sum += ev.ledger.server_j;
      ++invocations;
    }
    EXPECT_EQ(invocations, spec.executions) << buffers[i]->track();
    EXPECT_EQ(sum, result.cells[i].total_energy_j) << buffers[i]->track();
    // The additive server meter line obeys the same contract: per-invoke
    // Server::energy_j() deltas, summed in event order, reproduce
    // StrategyResult::server_j bit for bit — and stay out of total_j.
    EXPECT_EQ(server_sum, result.cells[i].server_j) << buffers[i]->track();
  }
}

TEST(TraceDeterminism, FaultedTraceCrossChecksResilienceAggregation) {
  // A lossy channel with retries and a breaker: every ResilienceStats
  // aggregate in the StrategyResult must be reconstructible from the event
  // stream alone.
  sim::ScenarioRunner runner(apps::app("fe"));
  runner.fault_plan.enabled = true;
  runner.fault_plan.ge_p_good_to_bad = 0.08;
  runner.fault_plan.ge_loss_bad = 0.8;
  runner.fault_plan.outage_period_s = 40.0;
  runner.fault_plan.outage_duration_s = 4.0;
  runner.fault_plan.corrupt_downlink_p = 0.05;
  runner.client_config.resilience.max_attempts = 3;
  runner.client_config.resilience.breaker_threshold = 4;
  runner.client_config.resilience.breaker_cooldown_s = 5.0;

  obs::TraceCollector collector;
  obs::TraceBuffer* buf = collector.make_buffer("fe/good/R", 0);
  const sim::StrategyResult result =
      runner.run(rt::Strategy::kRemote, sim::Situation::kGoodChannelDominantSize,
                 /*executions=*/30, /*verify=*/true, /*config=*/nullptr, buf);
  ASSERT_TRUE(result.all_correct);
  ASSERT_GT(result.remote_failures, 0) << "fault plan produced no failures";
  ASSERT_GT(result.retries, 0);

  int retries = 0, opened = 0, reclosed = 0;
  std::map<std::string, int> failures;
  // wasted_retry_j is a sum of per-invocation subtotals, so reproduce that
  // two-level accumulation: group failure ledgers by enclosing invocation.
  double wasted_total = 0.0, wasted_invocation = 0.0;
  for (const obs::TraceEvent& ev : buf->events()) {
    switch (ev.kind) {
      case obs::EventKind::kInvokeBegin:
        wasted_invocation = 0.0;
        break;
      case obs::EventKind::kInvokeEnd:
        wasted_total += wasted_invocation;
        break;
      case obs::EventKind::kRemoteFailure:
        ++failures[buf->string_at(ev.detail)];
        wasted_invocation += ev.ledger.total_j;
        break;
      case obs::EventKind::kRetryBackoff:
        ++retries;
        break;
      case obs::EventKind::kBreakerTransition: {
        const std::string to = buf->string_at(ev.name);
        if (to == "open") ++opened;
        if (to == "closed") ++reclosed;
        break;
      }
      default:
        break;
    }
  }

  EXPECT_EQ(retries, result.retries);
  EXPECT_EQ(opened, result.breaker_opened);
  EXPECT_EQ(reclosed, result.breaker_reclosed);
  EXPECT_EQ(wasted_total, result.wasted_retry_j);  // Bitwise, not approximate.
  int total_failures = 0;
  for (std::size_t c = 0; c < rt::kNumFailureClasses; ++c) {
    const auto it =
        failures.find(rt::failure_class_name(static_cast<rt::FailureClass>(c)));
    EXPECT_EQ(it == failures.end() ? 0 : it->second,
              result.failures_by_class[c])
        << rt::failure_class_name(static_cast<rt::FailureClass>(c));
    total_failures += result.failures_by_class[c];
  }
  EXPECT_EQ(total_failures, result.remote_failures);

  // The faulted trace also round-trips the JSON checker.
  std::string err;
  EXPECT_TRUE(obs::json_valid(obs::chrome_trace_json(collector), &err)) << err;
}

}  // namespace
}  // namespace javelin
