// Unit tests for the native ISA executor: instruction semantics, the literal
// pool, traps, runtime escapes, and accounting.
#include <gtest/gtest.h>

#include "isa/executor.hpp"

namespace javelin::isa {
namespace {

struct NullBridge : RuntimeBridge {
  void call_static(std::int32_t, NativeExecutor&) override {
    FAIL() << "unexpected call";
  }
  void call_virtual(std::int32_t, NativeExecutor&) override {
    FAIL() << "unexpected call";
  }
  mem::Addr new_array(std::int32_t, std::int32_t) override { return 0; }
  mem::Addr new_object(std::int32_t) override { return 0; }
};

struct Rig {
  MachineConfig cfg = client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier{cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter};
  Core core{&cfg, &arena, &hier, &meter};
  NullBridge bridge;

  std::int64_t run_int(NativeProgram p,
                       std::initializer_list<std::int64_t> iargs = {}) {
    p.install(arena);
    NativeExecutor ex(core, bridge);
    std::uint8_t r = kFirstArgReg;
    for (auto v : iargs) ex.set_int_reg(r++, v);
    ex.run(p);
    return ex.int_reg(kRetReg);
  }
  double run_fp(NativeProgram p, std::initializer_list<double> dargs = {}) {
    p.install(arena);
    NativeExecutor ex(core, bridge);
    std::uint8_t r = kFFirstArgReg;
    for (auto v : dargs) ex.set_fp_reg(r++, v);
    ex.run(p);
    return ex.fp_reg(kFRetReg);
  }
};

NInstr I(NOp op, std::uint8_t rd = 0, std::uint8_t ra = 0, std::uint8_t rb = 0,
         std::int32_t imm = 0) {
  return NInstr{op, rd, ra, rb, imm};
}

TEST(Executor, IntArithmetic) {
  Rig rig;
  NativeProgram p;
  // r1 = (r1 + r2) * 3 - (r1 >> 1)
  p.code = {
      I(NOp::kAdd, 9, 1, 2),
      I(NOp::kMovi, 10, 0, 0, 3),
      I(NOp::kMul, 9, 9, 10),
      I(NOp::kShri, 11, 1, 0, 1),
      I(NOp::kSub, 1, 9, 11),
      I(NOp::kRet),
  };
  EXPECT_EQ(rig.run_int(p, {10, 4}), (10 + 4) * 3 - (10 >> 1));
}

TEST(Executor, Int32WraparoundSemantics) {
  Rig rig;
  NativeProgram p;
  p.code = {I(NOp::kAdd, 1, 1, 2), I(NOp::kRet)};
  EXPECT_EQ(rig.run_int(p, {INT32_MAX, 1}), INT32_MIN);
}

TEST(Executor, DivRemAndTraps) {
  Rig rig;
  {
    NativeProgram p;
    p.code = {I(NOp::kDiv, 1, 1, 2), I(NOp::kRet)};
    EXPECT_EQ(rig.run_int(p, {-7, 2}), -3);  // C-style truncation
  }
  {
    NativeProgram p;
    p.code = {I(NOp::kRem, 1, 1, 2), I(NOp::kRet)};
    EXPECT_EQ(rig.run_int(p, {-7, 2}), -1);
  }
  {
    NativeProgram p;
    p.code = {I(NOp::kDiv, 1, 1, 2), I(NOp::kRet)};
    EXPECT_THROW(rig.run_int(p, {1, 0}), VmError);
  }
  {
    NativeProgram p;
    p.code = {I(NOp::kTrap, 0, 0, 0,
                static_cast<std::int32_t>(TrapCode::kArrayBounds))};
    EXPECT_THROW(rig.run_int(p, {}), VmError);
  }
}

TEST(Executor, BranchesAndLoop) {
  Rig rig;
  // sum 1..n: r9 acc, r10 i
  NativeProgram p;
  p.code = {
      I(NOp::kMovi, 9, 0, 0, 0),           // acc = 0
      I(NOp::kMovi, 10, 0, 0, 1),          // i = 1
      I(NOp::kBgt, 0, 10, 1, 6),           // if i > n goto 6
      I(NOp::kAdd, 9, 9, 10),
      I(NOp::kAddi, 10, 10, 0, 1),
      I(NOp::kJmp, 0, 0, 0, 2),
      I(NOp::kMov, 1, 9),
      I(NOp::kRet),
  };
  EXPECT_EQ(rig.run_int(p, {10}), 55);
}

TEST(Executor, FpArithmeticAndLiteralPool) {
  Rig rig;
  NativeProgram p;
  p.literals = {2.5, -1.0};
  p.code = {
      I(NOp::kLdd, 9, kLiteralBaseReg, 0, 0),   // f9 = 2.5
      I(NOp::kLdd, 10, kLiteralBaseReg, 0, 8),  // f10 = -1.0
      I(NOp::kFmul, 9, 9, 1),                   // f9 *= arg
      I(NOp::kFadd, 1, 9, 10),
      I(NOp::kRet),
  };
  EXPECT_DOUBLE_EQ(rig.run_fp(p, {4.0}), 2.5 * 4.0 - 1.0);
}

TEST(Executor, FcmpAndConversions) {
  Rig rig;
  {
    NativeProgram p;
    p.code = {I(NOp::kFcmp, 1, 1, 2), I(NOp::kRet)};
    p.install(rig.arena);
    NativeExecutor ex(rig.core, rig.bridge);
    ex.set_fp_reg(1, 1.0);
    ex.set_fp_reg(2, 2.0);
    ex.run(p);
    EXPECT_EQ(ex.int_reg(1), -1);
  }
  {
    NativeProgram p;
    p.code = {I(NOp::kI2d, 1, 1), I(NOp::kRet)};
    p.install(rig.arena);
    NativeExecutor ex(rig.core, rig.bridge);
    ex.set_int_reg(1, -7);
    ex.run(p);
    EXPECT_DOUBLE_EQ(ex.fp_reg(1), -7.0);
  }
  {
    NativeProgram p;
    p.code = {I(NOp::kD2i, 1, 1), I(NOp::kRet)};
    p.install(rig.arena);
    NativeExecutor ex(rig.core, rig.bridge);
    ex.set_fp_reg(1, -3.9);
    ex.run(p);
    EXPECT_EQ(ex.int_reg(1), -3);  // truncation toward zero
  }
}

TEST(Executor, MemoryAccessThroughArena) {
  Rig rig;
  const mem::Addr buf = rig.arena.alloc(64);
  rig.arena.store_i32(buf + 8, 77);
  NativeProgram p;
  p.code = {
      I(NOp::kLdw, 9, 1, 0, 8),   // r9 = [arg + 8]
      I(NOp::kAddi, 9, 9, 0, 1),
      I(NOp::kStw, 9, 1, 0, 12),  // [arg + 12] = r9
      I(NOp::kMov, 1, 9),
      I(NOp::kRet),
  };
  EXPECT_EQ(rig.run_int(p, {buf}), 78);
  EXPECT_EQ(rig.arena.load_i32(buf + 12), 78);
}

TEST(Executor, ZeroRegisterIsImmutable) {
  Rig rig;
  NativeProgram p;
  p.code = {
      I(NOp::kMovi, 0, 0, 0, 123),  // attempt to write r0
      I(NOp::kMov, 1, 0),
      I(NOp::kRet),
  };
  EXPECT_EQ(rig.run_int(p, {}), 0);
}

TEST(Executor, IntrinsicCostsAndValues) {
  Rig rig;
  NativeProgram p;
  p.code = {
      I(NOp::kIntrD, 1, 0, 0, static_cast<std::int32_t>(Intrinsic::kSqrt)),
      I(NOp::kRet),
  };
  const auto before = rig.meter.counts().of(energy::InstrClass::kAluComplex);
  EXPECT_DOUBLE_EQ(rig.run_fp(p, {16.0}), 4.0);
  const auto after = rig.meter.counts().of(energy::InstrClass::kAluComplex);
  EXPECT_EQ(after - before, intrinsic_cost(Intrinsic::kSqrt));
}

TEST(Executor, StepLimitAborts) {
  Rig rig;
  rig.core.step_limit = 1000;
  NativeProgram p;
  p.code = {I(NOp::kJmp, 0, 0, 0, 0)};  // infinite loop
  EXPECT_THROW(rig.run_int(p, {}), VmError);
}

TEST(Executor, AccountingChargesEveryInstruction) {
  Rig rig;
  NativeProgram p;
  p.code = {I(NOp::kMovi, 9, 0, 0, 1), I(NOp::kAdd, 9, 9, 9), I(NOp::kRet)};
  const auto total_before = rig.meter.counts().total();
  rig.run_int(p, {});
  EXPECT_EQ(rig.meter.counts().total() - total_before, 3u);
  EXPECT_GT(rig.core.cycles, 0u);
}

TEST(Executor, SpillFrameUsesStackZone) {
  Rig rig;
  NativeProgram p;
  p.spill_bytes = 16;
  p.code = {
      I(NOp::kMovi, 9, 0, 0, 31),
      I(NOp::kStw, 9, kFrameReg, 0, 0),
      I(NOp::kMovi, 9, 0, 0, 0),
      I(NOp::kLdw, 1, kFrameReg, 0, 0),
      I(NOp::kRet),
  };
  const std::size_t mark = rig.arena.stack_mark();
  EXPECT_EQ(rig.run_int(p, {}), 31);
  EXPECT_EQ(rig.arena.stack_mark(), mark);  // frame popped
}

TEST(Machine, Configs) {
  const MachineConfig c = client_machine();
  EXPECT_DOUBLE_EQ(c.clock_hz, 100e6);
  EXPECT_EQ(c.icache.size_bytes, 16u * 1024);
  EXPECT_EQ(c.dcache.size_bytes, 8u * 1024);
  EXPECT_DOUBLE_EQ(c.leakage_power_w(), 0.035);
  const MachineConfig s = server_machine();
  EXPECT_DOUBLE_EQ(s.clock_hz, 750e6);
  EXPECT_DOUBLE_EQ(s.seconds_for_cycles(750), 1e-6);
}

}  // namespace
}  // namespace javelin::isa
