// Interpreter semantics: runtime faults, objects/fields/statics, virtual
// dispatch with inheritance, recursion limits, and cost accounting.
#include <gtest/gtest.h>

#include "jvm/builder.hpp"
#include "jvm/engine.hpp"

namespace javelin::jvm {
namespace {

struct Rig {
  isa::MachineConfig cfg = isa::client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier{cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter};
  isa::Core core{&cfg, &arena, &hier, &meter};
  Jvm vm{core};
  ExecutionEngine engine{vm};
};

TEST(Interp, DivisionByZeroThrows) {
  Rig rig;
  ClassBuilder cb("C");
  auto& m = cb.method("f", Signature{{TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "x");
  m.iconst(10).iload("x").idiv().iret();
  rig.vm.load(cb.build());
  rig.vm.link();
  EXPECT_EQ(rig.engine.call("C", "f", {{Value::make_int(2)}}).as_int(), 5);
  EXPECT_THROW(rig.engine.call("C", "f", {{Value::make_int(0)}}), VmError);
}

TEST(Interp, ArrayBoundsAndNullChecked) {
  Rig rig;
  ClassBuilder cb("C");
  auto& m = cb.method("get",
                      Signature{{TypeKind::kRef, TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "a").param_name(1, "i");
  m.aload("a").iload("i").iaload().iret();
  rig.vm.load(cb.build());
  rig.vm.link();
  const mem::Addr arr = rig.vm.new_array(TypeKind::kInt, 4, false);
  rig.vm.write_i32_array(arr, {10, 11, 12, 13});
  EXPECT_EQ(rig.engine
                .call("C", "get",
                      {{Value::make_ref(arr), Value::make_int(3)}})
                .as_int(),
            13);
  EXPECT_THROW(rig.engine.call("C", "get",
                               {{Value::make_ref(arr), Value::make_int(4)}}),
               VmError);
  EXPECT_THROW(rig.engine.call("C", "get",
                               {{Value::make_ref(arr), Value::make_int(-1)}}),
               VmError);
  EXPECT_THROW(
      rig.engine.call("C", "get",
                      {{Value::make_ref(mem::kNullAddr), Value::make_int(0)}}),
      VmError);
}

TEST(Interp, ObjectsFieldsAndStatics) {
  Rig rig;
  ClassBuilder cb("Point");
  cb.field("x", TypeKind::kInt);
  cb.field("yd", TypeKind::kDouble);
  cb.field("count", TypeKind::kInt, /*is_static=*/true);
  {
    auto& m = cb.method("make",
                        Signature{{TypeKind::kInt, TypeKind::kDouble},
                                  TypeKind::kRef});
    m.param_name(0, "xi").param_name(1, "yi");
    m.new_("Point").astore("p");
    m.aload("p").iload("xi").putfield("Point", "x");
    m.aload("p").dload("yi").putfield("Point", "yd");
    m.getstatic("Point", "count").iconst(1).iadd().putstatic("Point", "count");
    m.aload("p").aret();
  }
  {
    auto& m = cb.method("sum", Signature{{TypeKind::kRef}, TypeKind::kDouble});
    m.param_name(0, "p");
    m.aload("p").getfield("Point", "x").i2d();
    m.aload("p").getfield("Point", "yd");
    m.dadd().dret();
  }
  {
    auto& m = cb.method("getcount", Signature{{}, TypeKind::kInt});
    m.getstatic("Point", "count").iret();
  }
  rig.vm.load(cb.build());
  rig.vm.link();

  const Value p = rig.engine.call(
      "Point", "make", {{Value::make_int(3), Value::make_double(1.5)}});
  EXPECT_DOUBLE_EQ(rig.engine.call("Point", "sum", {{p}}).as_double(), 4.5);
  rig.engine.call("Point", "make",
                  {{Value::make_int(1), Value::make_double(0.0)}});
  EXPECT_EQ(rig.engine.call("Point", "getcount", {}).as_int(), 2);
}

TEST(Interp, VirtualDispatchWithOverride) {
  Rig rig;
  ClassBuilder base("Shape");
  {
    auto& m = base.method("area", Signature{{}, TypeKind::kInt},
                          /*is_static=*/false);
    m.iconst(0).iret();
  }
  ClassBuilder square("Square", "Shape");
  square.field("side", TypeKind::kInt);
  {
    auto& m = square.method("area", Signature{{}, TypeKind::kInt},
                            /*is_static=*/false);
    m.aload("this").getfield("Square", "side");
    m.aload("this").getfield("Square", "side");
    m.imul().iret();
  }
  ClassFile base_cf = base.build();
  ClassFile square_cf = square.build({&base_cf});

  ClassBuilder driver("Driver");
  {
    auto& m = driver.method("measure",
                            Signature{{TypeKind::kRef}, TypeKind::kInt});
    m.param_name(0, "s");
    m.aload("s").invokevirtual("Shape", "area").iret();
  }
  ClassFile driver_cf = driver.build({&base_cf, &square_cf});

  rig.vm.load(base_cf);
  rig.vm.load(square_cf);
  rig.vm.load(driver_cf);
  rig.vm.link();

  // A Square receiver dispatches to the override; a Shape receiver to the
  // base implementation.
  const std::int32_t square_id = rig.vm.find_class("Square");
  const mem::Addr sq = rig.vm.new_object(square_id, false);
  const RtField& side =
      rig.vm.field(rig.vm.cls(square_id).field_ids[0]);
  rig.arena.store_i32(rig.vm.field_addr(sq, side), 6);
  EXPECT_EQ(
      rig.engine.call("Driver", "measure", {{Value::make_ref(sq)}}).as_int(),
      36);

  const mem::Addr sh =
      rig.vm.new_object(rig.vm.find_class("Shape"), false);
  EXPECT_EQ(
      rig.engine.call("Driver", "measure", {{Value::make_ref(sh)}}).as_int(),
      0);
  EXPECT_FALSE(rig.vm.is_monomorphic(rig.vm.find_method("Shape", "area")));
  EXPECT_TRUE(rig.vm.is_monomorphic(rig.vm.find_method("Square", "area")));
}

TEST(Interp, RecursionDepthLimit) {
  Rig rig;
  ClassBuilder cb("C");
  auto& m = cb.method("inf", Signature{{TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "x");
  m.iload("x").invokestatic("C", "inf").iret();
  rig.vm.load(cb.build());
  rig.vm.link();
  EXPECT_THROW(rig.engine.call("C", "inf", {{Value::make_int(1)}}), VmError);
}

TEST(Interp, EnergyAccountingScalesWithWork) {
  Rig rig;
  ClassBuilder cb("C");
  auto& m = cb.method("spin", Signature{{TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "n");
  auto loop = m.new_label(), done = m.new_label();
  m.iconst(0).istore("i");
  m.bind(loop);
  m.iload("i").iload("n").if_icmpge(done);
  m.iload("i").iconst(1).iadd().istore("i");
  m.goto_(loop);
  m.bind(done);
  m.iload("i").iret();
  rig.vm.load(cb.build());
  rig.vm.link();

  const auto e0 = rig.meter.snapshot();
  rig.engine.call("C", "spin", {{Value::make_int(100)}});
  const double e_small = rig.meter.since(e0).total();
  const auto e1 = rig.meter.snapshot();
  rig.engine.call("C", "spin", {{Value::make_int(1000)}});
  const double e_big = rig.meter.since(e1).total();
  EXPECT_NEAR(e_big / e_small, 10.0, 1.0);  // linear in the loop count
  EXPECT_GT(rig.core.cycles, 0u);
}

TEST(Interp, ByteArrayZeroExtension) {
  Rig rig;
  ClassBuilder cb("C");
  auto& m = cb.method("roundtrip", Signature{{TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "v");
  m.iconst(1).newarray(TypeKind::kByte).astore("a");
  m.aload("a").iconst(0).iload("v").bastore();
  m.aload("a").iconst(0).baload().iret();
  rig.vm.load(cb.build());
  rig.vm.link();
  // 200 stays 200 (unsigned byte load), -1 becomes 255.
  EXPECT_EQ(rig.engine.call("C", "roundtrip", {{Value::make_int(200)}}).as_int(),
            200);
  EXPECT_EQ(rig.engine.call("C", "roundtrip", {{Value::make_int(-1)}}).as_int(),
            255);
}

}  // namespace
}  // namespace javelin::jvm
