// Parallel sweep engine tests: the thread pool's contract (submit/drain,
// exception propagation, graceful shutdown) and the determinism guarantee —
// the parallel result grid is bit-identical to the serial run at any worker
// count, because every cell's seeds derive from its coordinates alone.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "sim/sweep.hpp"
#include "support/threadpool.hpp"

namespace javelin {
namespace {

// ---- thread pool ----------------------------------------------------------

TEST(ThreadPool, SubmitAndDrain) {
  support::ThreadPool pool(4, /*queue_capacity=*/8);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ClampsWorkerAndCapacityFloors) {
  support::ThreadPool pool(0, /*queue_capacity=*/0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  support::ThreadPool pool(2);
  auto ok = pool.submit([] { return 1; });
  auto boom = pool.submit([]() -> int {
    throw std::runtime_error("cell exploded");
  });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 2; }).get(), 2);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    support::ThreadPool pool(2, /*queue_capacity=*/64);
    for (int i = 0; i < 32; ++i)
      pool.submit([&ran] { ++ran; });
    pool.shutdown();  // must let all queued tasks finish
    EXPECT_EQ(ran.load(), 32);
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  }
  EXPECT_EQ(ran.load(), 32);  // destructor after shutdown is a no-op
}

TEST(ThreadPool, BoundedQueueBlocksProducerWithoutDeadlock) {
  // Queue of 2 with slow tasks: submission must block and resume, and all
  // tasks must still run exactly once.
  std::atomic<int> ran{0};
  support::ThreadPool pool(1, /*queue_capacity=*/2);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 16; ++i)
    futs.push_back(pool.submit([&ran] { ++ran; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), 16);
}

// ---- sweep engine ---------------------------------------------------------

TEST(SweepEngine, MapIsOrderedByCell) {
  sim::SweepEngine engine(4);
  const auto v = engine.map<std::size_t>(50, [](std::size_t i) {
    return i * 3;
  });
  ASSERT_EQ(v.size(), 50u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], i * 3);
}

TEST(SweepEngine, JobsEnvOverride) {
  ::setenv("JAVELIN_JOBS", "3", 1);
  EXPECT_EQ(sim::sweep_jobs(), 3);
  ::setenv("JAVELIN_JOBS", "garbage", 1);
  EXPECT_GE(sim::sweep_jobs(), 1);  // falls back to hardware concurrency
  ::unsetenv("JAVELIN_JOBS");
  EXPECT_GE(sim::sweep_jobs(), 1);
}

// Exact (bitwise) equality of two strategy results.
void expect_identical(const sim::StrategyResult& a,
                      const sim::StrategyResult& b, const std::string& what) {
  EXPECT_EQ(a.total_energy_j, b.total_energy_j) << what;
  EXPECT_EQ(a.total_seconds, b.total_seconds) << what;
  EXPECT_EQ(a.computation_j, b.computation_j) << what;
  EXPECT_EQ(a.communication_j, b.communication_j) << what;
  EXPECT_EQ(a.idle_j, b.idle_j) << what;
  EXPECT_EQ(a.dram_j, b.dram_j) << what;
  EXPECT_EQ(a.mode_counts, b.mode_counts) << what;
  EXPECT_EQ(a.compiles, b.compiles) << what;
  EXPECT_EQ(a.remote_compiles, b.remote_compiles) << what;
  EXPECT_EQ(a.fallbacks, b.fallbacks) << what;
  EXPECT_EQ(a.executions, b.executions) << what;
  EXPECT_EQ(a.all_correct, b.all_correct) << what;
}

sim::ScenarioSweepSpec small_spec() {
  sim::ScenarioSweepSpec spec;
  spec.apps = {&apps::app("fe"), &apps::app("sort")};
  spec.situations = {sim::Situation::kGoodChannelDominantSize,
                     sim::Situation::kPoorChannelDominantSize,
                     sim::Situation::kUniform};
  spec.strategies = {rt::Strategy::kInterpret, rt::Strategy::kLocal2,
                     rt::Strategy::kAdaptiveLocal};
  spec.executions = 10;
  return spec;
}

TEST(SweepEngine, ParallelGridIsBitIdenticalToSerial) {
  const sim::ScenarioSweepSpec spec = small_spec();

  // Serial reference: plain nested loops over one runner per app, exactly
  // like the pre-engine benches.
  std::vector<sim::StrategyResult> serial;
  for (const apps::App* a : spec.apps) {
    const sim::ScenarioRunner runner(*a, spec.base_seed);
    for (sim::Situation si : spec.situations)
      for (rt::Strategy st : spec.strategies)
        serial.push_back(runner.run(st, si, spec.executions, spec.verify,
                                    &spec.client_config));
  }

  for (int jobs : {1, 2, 8}) {
    sim::SweepEngine engine(jobs);
    ASSERT_EQ(engine.jobs(), jobs);
    const auto result = sim::run_scenario_sweep(engine, spec);
    ASSERT_EQ(result.cells.size(), serial.size());
    EXPECT_EQ(result.jobs, jobs);
    std::size_t i = 0;
    for (std::size_t a = 0; a < spec.apps.size(); ++a)
      for (std::size_t si = 0; si < spec.situations.size(); ++si)
        for (std::size_t st = 0; st < spec.strategies.size(); ++st, ++i)
          expect_identical(
              result.at(a, si, st), serial[i],
              spec.apps[a]->name + " jobs=" + std::to_string(jobs) +
                  " cell=" + std::to_string(i));
  }
}

TEST(SweepEngine, RepeatedSweepsAreIdentical) {
  // Re-running the same sweep on the same engine must reproduce itself —
  // no state leaks between sweeps through the shared pool.
  sim::ScenarioSweepSpec spec = small_spec();
  spec.apps = {&apps::app("fe")};
  spec.executions = 5;
  sim::SweepEngine engine(2);
  const auto r1 = sim::run_scenario_sweep(engine, spec);
  const auto r2 = sim::run_scenario_sweep(engine, spec);
  ASSERT_EQ(r1.cells.size(), r2.cells.size());
  for (std::size_t i = 0; i < r1.cells.size(); ++i)
    expect_identical(r1.cells[i], r2.cells[i], "rerun cell " +
                                                   std::to_string(i));
}

}  // namespace
}  // namespace javelin
