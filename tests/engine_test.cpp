// Execution-engine tests: mixed-mode dispatch plumbing, force-interpret,
// code installation/clearing, and the native calling convention through the
// runtime bridge (deep call chains, many arguments, FP/ref mixes).
#include <gtest/gtest.h>

#include "jit/compiler.hpp"
#include "jvm/builder.hpp"
#include "jvm/engine.hpp"

namespace javelin::jvm {
namespace {

struct Rig {
  isa::MachineConfig cfg = isa::client_machine();
  mem::Arena arena;
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier{cfg.icache, cfg.dcache, cfg.miss_penalty_cycles,
                            &cfg.energy, &meter};
  isa::Core core{&cfg, &arena, &hier, &meter};
  Jvm vm{core};
  ExecutionEngine engine{vm};

  void install(std::int32_t mid, int level) {
    auto res = jit::compile_method(vm, mid,
                                   jit::CompileOptions{.opt_level = level},
                                   cfg.energy);
    engine.install(mid, std::move(res.program), level);
  }
};

ClassFile chain_class() {
  // f3(x) = f2(x)+1, f2(x) = f1(x)+1, f1(x) = 2x — a three-deep call chain.
  ClassBuilder cb("Chain");
  {
    auto& m = cb.method("f1", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "x");
    m.iload("x").iconst(2).imul().iret();
  }
  {
    auto& m = cb.method("f2", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "x");
    m.iload("x").invokestatic("Chain", "f1").iconst(1).iadd().iret();
  }
  {
    auto& m = cb.method("f3", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "x");
    m.iload("x").invokestatic("Chain", "f2").iconst(1).iadd().iret();
  }
  return cb.build();
}

TEST(Engine, ForceInterpretIgnoresInstalledCode) {
  Rig rig;
  rig.vm.load(chain_class());
  rig.vm.link();
  const std::int32_t f1 = rig.vm.find_method("Chain", "f1");
  rig.install(f1, 2);
  EXPECT_EQ(rig.engine.compiled_level(f1), 2);

  // Both paths agree, and force-interpret really interprets (it executes
  // many more native-equivalent instructions).
  const std::uint64_t c0 = rig.meter.counts().total();
  rig.engine.invoke(f1, {{Value::make_int(21)}});
  const std::uint64_t native = rig.meter.counts().total() - c0;

  rig.engine.set_force_interpret(true);
  const std::uint64_t c1 = rig.meter.counts().total();
  EXPECT_EQ(rig.engine.invoke(f1, {{Value::make_int(21)}}).as_int(), 42);
  const std::uint64_t interp = rig.meter.counts().total() - c1;
  rig.engine.set_force_interpret(false);
  EXPECT_GT(interp, native);
}

TEST(Engine, ClearCodeRevertsToInterpreter) {
  Rig rig;
  rig.vm.load(chain_class());
  rig.vm.link();
  const std::int32_t f1 = rig.vm.find_method("Chain", "f1");
  rig.install(f1, 1);
  EXPECT_NE(rig.engine.compiled(f1), nullptr);
  rig.engine.clear_code();
  EXPECT_EQ(rig.engine.compiled(f1), nullptr);
  EXPECT_EQ(rig.engine.compiled_level(f1), 0);
  EXPECT_EQ(rig.engine.invoke(f1, {{Value::make_int(4)}}).as_int(), 8);
}

TEST(Engine, InstallRejectsBadLevel) {
  Rig rig;
  rig.vm.load(chain_class());
  rig.vm.link();
  isa::NativeProgram p;
  EXPECT_THROW(rig.engine.install(0, std::move(p), 0), Error);
}

TEST(Engine, DeepAlternatingCallChain) {
  // f3 native -> f2 interpreted -> f1 native: marshaling across the bridge
  // both ways in one invocation.
  Rig rig;
  rig.vm.load(chain_class());
  rig.vm.link();
  const std::int32_t f1 = rig.vm.find_method("Chain", "f1");
  const std::int32_t f3 = rig.vm.find_method("Chain", "f3");
  rig.install(f1, 2);
  rig.install(f3, 1);
  EXPECT_EQ(rig.engine.invoke(f3, {{Value::make_int(10)}}).as_int(), 22);
}

TEST(Engine, ManyMixedArguments) {
  // 6 int + 4 double arguments exercise both argument register files.
  ClassBuilder cb("Args");
  Signature sig;
  for (int i = 0; i < 6; ++i) sig.params.push_back(TypeKind::kInt);
  for (int i = 0; i < 4; ++i) sig.params.push_back(TypeKind::kDouble);
  sig.ret = TypeKind::kDouble;
  auto& m = cb.method("mix", sig);
  // sum of everything
  m.iconst(0);
  for (int i = 0; i < 6; ++i) m.iload("p" + std::to_string(i)).iadd();
  m.i2d();
  for (int i = 6; i < 10; ++i) m.dload("p" + std::to_string(i)).dadd();
  m.dret();

  Rig rig;
  rig.vm.load(cb.build());
  rig.vm.link();
  const std::int32_t mid = rig.vm.find_method("Args", "mix");
  std::vector<Value> args;
  double expected = 0;
  for (int i = 0; i < 6; ++i) {
    args.push_back(Value::make_int(i + 1));
    expected += i + 1;
  }
  for (int i = 0; i < 4; ++i) {
    args.push_back(Value::make_double(0.5 * (i + 1)));
    expected += 0.5 * (i + 1);
  }
  EXPECT_DOUBLE_EQ(rig.engine.invoke(mid, args).as_double(), expected);
  for (int level = 1; level <= 3; ++level) {
    rig.install(mid, level);
    EXPECT_DOUBLE_EQ(rig.engine.invoke(mid, args).as_double(), expected)
        << "level " << level;
  }
}

TEST(Engine, ArgumentCountMismatchThrows) {
  Rig rig;
  rig.vm.load(chain_class());
  rig.vm.link();
  const std::int32_t f1 = rig.vm.find_method("Chain", "f1");
  EXPECT_THROW(rig.engine.invoke(f1, {}), VmError);
  rig.install(f1, 1);
  EXPECT_THROW(rig.engine.invoke(f1, {}), VmError);
}

TEST(Engine, CallByNameConvenience) {
  Rig rig;
  rig.vm.load(chain_class());
  rig.vm.link();
  EXPECT_EQ(rig.engine.call("Chain", "f3", {{Value::make_int(1)}}).as_int(), 4);
  EXPECT_THROW(rig.engine.call("Chain", "nope", {}), Error);
}

}  // namespace
}  // namespace javelin::jvm
