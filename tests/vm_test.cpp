// VM-level tests: linking, object layout, statics placement, heap brackets,
// mixed-mode execution (compiled and interpreted frames interleaving), and
// the dynamic-download path (applications shipped as serialized class files,
// the paper's Section 1 motivation).
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "jit/compiler.hpp"
#include "jvm/builder.hpp"
#include "jvm/engine.hpp"
#include "rt/device.hpp"

namespace javelin::jvm {
namespace {

TEST(Vm, ObjectLayoutAlignsFields) {
  ClassBuilder cb("L");
  cb.field("b1", TypeKind::kByte);
  cb.field("d", TypeKind::kDouble);
  cb.field("i", TypeKind::kInt);
  auto& m = cb.method("noop", Signature{{}, TypeKind::kVoid});
  m.ret();

  rt::Device dev(isa::client_machine());
  dev.vm.load(cb.build());
  dev.vm.link();
  const RtClass& rc = dev.vm.cls(dev.vm.find_class("L"));
  const RtField& b1 = dev.vm.field(rc.field_ids[0]);
  const RtField& d = dev.vm.field(rc.field_ids[1]);
  const RtField& i = dev.vm.field(rc.field_ids[2]);
  EXPECT_EQ(b1.offset, kObjHeaderBytes);
  EXPECT_EQ(d.offset % 8, 0u);  // doubles 8-aligned
  EXPECT_EQ(i.offset % 4, 0u);
  EXPECT_EQ(rc.obj_size % 8, 0u);
  EXPECT_GE(rc.obj_size, d.offset + 8);
}

TEST(Vm, SubclassLayoutExtendsSuper) {
  ClassBuilder base("B");
  base.field("x", TypeKind::kInt);
  {
    auto& m = base.method("noop", Signature{{}, TypeKind::kVoid});
    m.ret();
  }
  ClassFile base_cf = base.build();
  ClassBuilder sub("S", "B");
  sub.field("y", TypeKind::kInt);
  {
    auto& m = sub.method("noop2", Signature{{}, TypeKind::kVoid});
    m.ret();
  }
  rt::Device dev(isa::client_machine());
  dev.vm.load(base_cf);
  dev.vm.load(sub.build({&base_cf}));
  dev.vm.link();
  const RtClass& b = dev.vm.cls(dev.vm.find_class("B"));
  const RtClass& s = dev.vm.cls(dev.vm.find_class("S"));
  const RtField& x = dev.vm.field(b.field_ids[0]);
  const RtField& y = dev.vm.field(s.field_ids[0]);
  EXPECT_GT(s.obj_size, b.obj_size - 1);
  EXPECT_GE(y.offset, x.offset + 4) << "subclass fields follow super fields";
}

TEST(Vm, LinkRejectsMissingSuperclassAndDuplicates) {
  {
    rt::Device dev(isa::client_machine());
    ClassBuilder cb("Orphan", "Nowhere");
    auto& m = cb.method("noop", Signature{{}, TypeKind::kVoid});
    m.ret();
    // Build bypassing verification of the super reference (no methods use it).
    dev.vm.load(cb.build());
    EXPECT_THROW(dev.vm.link(), Error);
  }
  {
    rt::Device dev(isa::client_machine());
    ClassBuilder a("Dup"), b2("Dup");
    auto& ma = a.method("noop", Signature{{}, TypeKind::kVoid});
    ma.ret();
    auto& mb = b2.method("noop", Signature{{}, TypeKind::kVoid});
    mb.ret();
    dev.vm.load(a.build());
    EXPECT_THROW(dev.vm.load(b2.build()), Error);
  }
}

TEST(Vm, HeapBracketsReclaimWorkloadMemory) {
  rt::Device dev(isa::client_machine());
  ClassBuilder cb("H");
  auto& m = cb.method("noop", Signature{{}, TypeKind::kVoid});
  m.ret();
  dev.vm.load(cb.build());
  dev.vm.link();
  const std::size_t before = dev.arena.heap_used();
  for (int run = 0; run < 200; ++run) {
    const std::size_t mark = dev.arena.heap_mark();
    dev.vm.new_array(TypeKind::kInt, 50'000, false);
    dev.arena.heap_release(mark);
  }
  EXPECT_EQ(dev.arena.heap_used(), before)
      << "200 bracketed executions must not grow the heap";
}

TEST(Vm, MixedModeCompiledCallerInterpretedCallee) {
  // Compile only the caller; the callee stays interpreted. Then the reverse.
  ClassBuilder cb("Mix");
  {
    auto& m = cb.method("leaf", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "x");
    m.iload("x").iconst(3).imul().iret();
  }
  {
    auto& m = cb.method("root", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "x");
    m.iload("x").invokestatic("Mix", "leaf").iconst(1).iadd().iret();
  }
  rt::Device dev(isa::client_machine());
  dev.vm.load(cb.build());
  dev.vm.link();
  const std::int32_t root = dev.vm.find_method("Mix", "root");
  const std::int32_t leaf = dev.vm.find_method("Mix", "leaf");

  auto run = [&] {
    return dev.engine.invoke(root, {{Value::make_int(5)}}).as_int();
  };
  EXPECT_EQ(run(), 16);  // fully interpreted

  auto cr = jit::compile_method(dev.vm, root, {.opt_level = 1},
                                dev.cfg.energy);
  dev.engine.install(root, std::move(cr.program), 1);
  EXPECT_EQ(run(), 16);  // native root -> interpreted leaf

  auto cl = jit::compile_method(dev.vm, leaf, {.opt_level = 2},
                                dev.cfg.energy);
  dev.engine.install(leaf, std::move(cl.program), 2);
  EXPECT_EQ(run(), 16);  // native -> native

  dev.engine.clear_code();
  auto cl2 = jit::compile_method(dev.vm, leaf, {.opt_level = 3},
                                 dev.cfg.energy);
  dev.engine.install(leaf, std::move(cl2.program), 3);
  EXPECT_EQ(run(), 16);  // interpreted root -> native leaf
}

TEST(Vm, DynamicDownloadRoundTripsAllBenchmarks) {
  // The paper's killer feature: applications are downloaded on demand as
  // class files. Every benchmark must survive serialize -> ship -> load ->
  // link -> execute with identical results.
  for (const apps::App& a : apps::registry()) {
    std::vector<ClassFile> shipped;
    for (const ClassFile& cf : a.classes)
      shipped.push_back(deserialize_class(serialize_class(cf)));

    rt::Device original(isa::client_machine());
    original.core.step_limit = 50'000'000'000ULL;
    original.deploy(a.classes);
    rt::Device downloaded(isa::client_machine());
    downloaded.core.step_limit = 50'000'000'000ULL;
    downloaded.deploy(shipped);

    Rng rng1(5), rng2(5);
    const auto args1 =
        a.make_args(original.vm, a.profile_scales.front(), rng1);
    const auto args2 =
        a.make_args(downloaded.vm, a.profile_scales.front(), rng2);
    const Value r1 = original.engine.invoke(
        original.vm.find_method(a.cls, a.method), args1);
    const Value r2 = downloaded.engine.invoke(
        downloaded.vm.find_method(a.cls, a.method), args2);
    EXPECT_TRUE(a.check(downloaded.vm, args2, downloaded.vm, r2)) << a.name;
    // Identical energy accounting too (same seed, same layout).
    EXPECT_TRUE(a.check(original.vm, args1, original.vm, r1)) << a.name;
  }
}

TEST(Vm, StaticsSharedAcrossInvocationsButNotDevices) {
  ClassBuilder cb("Ctr");
  cb.field("n", TypeKind::kInt, /*is_static=*/true);
  {
    auto& m = cb.method("bump", Signature{{}, TypeKind::kInt});
    m.getstatic("Ctr", "n").iconst(1).iadd().putstatic("Ctr", "n");
    m.getstatic("Ctr", "n").iret();
  }
  ClassFile cf = cb.build();
  rt::Device d1(isa::client_machine()), d2(isa::client_machine());
  d1.deploy({cf});
  d2.deploy({cf});
  const std::int32_t m1 = d1.vm.find_method("Ctr", "bump");
  EXPECT_EQ(d1.engine.invoke(m1, {}).as_int(), 1);
  EXPECT_EQ(d1.engine.invoke(m1, {}).as_int(), 2);
  EXPECT_EQ(d2.engine.invoke(d2.vm.find_method("Ctr", "bump"), {}).as_int(), 1);
}

}  // namespace
}  // namespace javelin::jvm
