// Deploy-time profiler tests — including the paper's accuracy claim: "we
// found that our curve fitting based energy estimation is within 2% of the
// actual energy value" (Section 3.2). We verify the fitted models at an
// interpolated scale that was NOT in the profiling set.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "rt/client.hpp"
#include "rt/profiler.hpp"

namespace javelin::rt {
namespace {

using apps::App;

TEST(Profiler, FillsAllProfileFields) {
  const App& a = apps::app("fe");
  auto classes = a.classes;
  profile_application(classes, {{a.cls + "." + a.method, a.workload()}});
  const jvm::MethodInfo* m = classes[0].find_method(a.method);
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(m->profile.valid);
  for (const auto& p : m->profile.local_energy)
    EXPECT_FALSE(p.coeffs.empty());
  EXPECT_FALSE(m->profile.server_cycles.coeffs.empty());
  for (int lvl = 0; lvl < 3; ++lvl) {
    EXPECT_GT(m->profile.compile_energy[lvl], 0.0);
    EXPECT_GT(m->profile.code_size_bytes[lvl], 0u);
  }
  // Compilation energy grows with optimization level.
  EXPECT_GT(m->profile.compile_energy[1], m->profile.compile_energy[0]);
  // Methods without workloads stay unprofiled.
  const jvm::MethodInfo* f = classes[0].find_method("f");
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->profile.valid);
}

struct AccuracyCase {
  const char* app;
  double tolerance;
};

class ProfilerAccuracy : public testing::TestWithParam<AccuracyCase> {};

TEST_P(ProfilerAccuracy, FitWithinPaperTolerance) {
  const App& a = apps::app(GetParam().app);
  auto classes = a.classes;
  profile_application(classes, {{a.cls + "." + a.method, a.workload()}});
  const jvm::MethodInfo* m = nullptr;
  for (auto& cf : classes)
    if (cf.name == a.cls) m = cf.find_method(a.method);
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(m->profile.valid);

  // Pick a scale between two profiled scales (interpolation, the hard case).
  const double s0 = a.profile_scales[1], s1 = a.profile_scales[2];
  const double probe_scale = std::floor((s0 + s1) / 2.0);

  Device dev(isa::client_machine());
  dev.core.step_limit = 100'000'000'000ULL;
  dev.deploy(classes);
  dev.engine.set_force_interpret(true);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);

  Rng rng(909);
  const std::size_t mark = dev.arena.heap_mark();
  const auto args = a.make_args(dev.vm, probe_scale, rng);
  const double s = Client::size_param(dev.vm, *m, args);
  const auto e0 = dev.meter.snapshot();
  dev.engine.invoke(mid, args);
  const double actual = dev.meter.since(e0).total();
  dev.arena.heap_release(mark);

  const double predicted = m->profile.local_energy[0].eval(s);
  // The paper reports <= 2% for its methods; the per-app tolerances below
  // absorb workload randomness (a different random input at the same scale
  // — quicksort pivot luck, db predicate selectivity) which the paper's
  // fixed-input measurements did not face.
  EXPECT_NEAR(predicted / actual, 1.0, GetParam().tolerance)
      << a.name << ": predicted " << predicted << " actual " << actual
      << " at s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Apps, ProfilerAccuracy,
                         testing::Values(AccuracyCase{"fe", 0.04},
                                         AccuracyCase{"hpf", 0.04},
                                         AccuracyCase{"sort", 0.15},
                                         AccuracyCase{"db", 0.25}),
                         [](const auto& info) {
                           return std::string(info.param.app);
                         });

TEST(Profiler, RequestResponseByteModels) {
  const App& a = apps::app("sort");
  auto classes = a.classes;
  profile_application(classes, {{a.cls + "." + a.method, a.workload()}});
  const jvm::MethodInfo* m = classes[0].find_method(a.method);
  ASSERT_TRUE(m->profile.valid);
  // sort ships an int array both ways: ~4 bytes per element.
  const double at_1000 = m->profile.request_bytes.eval(1000);
  EXPECT_NEAR(at_1000, 4000.0, 500.0);
  const double resp_1000 = m->profile.response_bytes.eval(1000);
  EXPECT_NEAR(resp_1000, 4000.0, 500.0);
}

TEST(Profiler, ServerFasterThanClient) {
  const App& a = apps::app("fe");
  auto classes = a.classes;
  profile_application(classes, {{a.cls + "." + a.method, a.workload()}});
  const jvm::MethodInfo* m = classes[0].find_method(a.method);
  // At the same size, server cycles (L3 native) are far fewer than the
  // client's interpreted cycles; with the 7.5x clock the time gap is larger.
  const double s = a.profile_scales.back();
  const double server_s = m->profile.server_cycles.eval(s) / 750e6;
  const double client_interp_s = m->profile.local_cycles[0].eval(s) / 100e6;
  EXPECT_LT(server_s, client_interp_s / 5.0);
}

}  // namespace
}  // namespace javelin::rt
