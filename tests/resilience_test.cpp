// Resilient-offloading tests: bounded retries with true energy accounting,
// circuit-breaker open/half-open/re-close transitions, adaptive degradation
// to local modes, corruption robustness end to end, and session reset.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "rt/client.hpp"
#include "rt/profiler.hpp"

namespace javelin::rt {
namespace {

using apps::App;

std::vector<jvm::ClassFile> profiled_fe() {
  static const std::vector<jvm::ClassFile> classes = [] {
    const App& a = apps::app("fe");
    auto cs = a.classes;
    profile_application(cs, {{a.cls + "." + a.method, a.workload()}});
    return cs;
  }();
  return classes;
}

struct ClientRig {
  Server server;
  radio::FixedChannel channel{radio::PowerClass::kClass4};
  net::Link link;
  ClientConfig cfg;
  std::unique_ptr<Client> client;

  explicit ClientRig(ClientConfig c = {}) : cfg(c) {
    server.deploy(profiled_fe());
    client = std::make_unique<Client>(cfg, server, channel, link);
    client->deploy(profiled_fe());
  }
  void attach_faults(const net::FaultPlan& plan) {
    link.attach_faults(plan);
    server.set_fault_plan(plan);
  }
  std::vector<jvm::Value> args(std::int32_t steps = 400) {
    return {jvm::Value::make_double(0.0), jvm::Value::make_double(4.0),
            jvm::Value::make_int(steps)};
  }
  InvokeReport run(Strategy s, std::int32_t steps = 400) {
    InvokeReport rep;
    const jvm::Value v = client->run("FE", "integrate", args(steps), s, &rep);
    EXPECT_GT(v.as_double(), 0.0);
    return rep;
  }
};

TEST(Resilience, RetryRecoversFromTransientOutage) {
  // One outage window covers the start of the session; the paper's policy
  // (one attempt) would fall back locally, but a second attempt after the
  // timeout + backoff lands past the window and succeeds remotely.
  ClientConfig cfg;
  cfg.resilience.max_attempts = 2;
  ClientRig rig(cfg);
  net::FaultPlan plan;
  plan.enabled = true;
  plan.outage_period_s = 1e6;  // one window only
  plan.outage_duration_s = 2.0;
  rig.attach_faults(plan);

  const InvokeReport rep = rig.run(Strategy::kRemote);
  EXPECT_FALSE(rep.fallback_local);
  EXPECT_EQ(rep.mode, ExecMode::kRemote);
  EXPECT_EQ(rep.resilience.attempts, 2);
  EXPECT_EQ(rep.resilience.retries, 1);
  EXPECT_EQ(
      rep.resilience.failures[static_cast<std::size_t>(FailureClass::kOutage)],
      1);
  // The failed attempt burnt real battery: uplink radio + timeout wait.
  EXPECT_GT(rep.resilience.wasted_energy_j, 0.0);
  EXPECT_GT(
      rep.resilience.wasted_j[static_cast<std::size_t>(FailureClass::kOutage)],
      0.0);
  EXPECT_GT(rep.resilience.backoff_seconds, 0.0);
}

TEST(Resilience, SingleAttemptPolicyMatchesPaperFallback) {
  ClientRig rig;  // default policy: 1 attempt, breaker off
  rig.link.set_loss_probability(1.0);
  const InvokeReport rep = rig.run(Strategy::kRemote);
  EXPECT_TRUE(rep.fallback_local);
  EXPECT_EQ(rep.resilience.attempts, 1);
  EXPECT_EQ(rep.resilience.retries, 0);
  EXPECT_EQ(rep.resilience.failures[static_cast<std::size_t>(
                FailureClass::kUplinkLoss)],
            1);
  EXPECT_EQ(rig.client->breaker().state, CircuitBreaker::State::kClosed);
}

TEST(Resilience, BreakerOpensAfterConsecutiveFailuresAndHalfOpenHeals) {
  ClientConfig cfg;
  cfg.resilience.breaker_threshold = 3;
  ClientRig rig(cfg);
  rig.link.set_loss_probability(1.0);

  for (int i = 0; i < 3; ++i) {
    const InvokeReport rep = rig.run(Strategy::kRemote);
    EXPECT_TRUE(rep.fallback_local);
    EXPECT_EQ(rep.resilience.attempts, 1);
  }
  EXPECT_EQ(rig.client->breaker().state, CircuitBreaker::State::kOpen);
  EXPECT_EQ(rig.client->breaker().times_opened, 1);

  // While open, the remote path is skipped entirely: no radio energy spent.
  const InvokeReport blocked = rig.run(Strategy::kRemote);
  EXPECT_TRUE(blocked.fallback_local);
  EXPECT_TRUE(blocked.resilience.breaker_short_circuit);
  EXPECT_EQ(blocked.resilience.attempts, 0);

  // After the cooldown the breaker half-opens; a successful probe re-closes.
  rig.link.set_loss_probability(0.0);
  rig.client->skip_time(cfg.resilience.breaker_cooldown_s + 1.0);
  const InvokeReport probe = rig.run(Strategy::kRemote);
  EXPECT_FALSE(probe.fallback_local);
  EXPECT_EQ(probe.mode, ExecMode::kRemote);
  EXPECT_TRUE(probe.resilience.breaker_probe);
  EXPECT_EQ(rig.client->breaker().state, CircuitBreaker::State::kClosed);
  EXPECT_EQ(rig.client->breaker().times_half_opened, 1);
  EXPECT_EQ(rig.client->breaker().times_reclosed, 1);
}

TEST(Resilience, FailedProbeReopensTheBreaker) {
  ClientConfig cfg;
  cfg.resilience.breaker_threshold = 2;
  ClientRig rig(cfg);
  rig.link.set_loss_probability(1.0);
  rig.run(Strategy::kRemote);
  rig.run(Strategy::kRemote);
  ASSERT_EQ(rig.client->breaker().state, CircuitBreaker::State::kOpen);

  rig.client->skip_time(cfg.resilience.breaker_cooldown_s + 1.0);
  const InvokeReport probe = rig.run(Strategy::kRemote);  // still lossy
  EXPECT_TRUE(probe.resilience.breaker_probe);
  EXPECT_TRUE(probe.fallback_local);
  EXPECT_EQ(rig.client->breaker().state, CircuitBreaker::State::kOpen);
  EXPECT_EQ(rig.client->breaker().times_opened, 2);
}

TEST(Resilience, OpenBreakerDegradesAdaptiveDecisionsToLocal) {
  // Under AA with a dead link, the helper method keeps picking remote (the
  // cost model cannot see losses) until the breaker opens; afterwards remote
  // candidates are excluded outright and no further attempts are made.
  ClientConfig cfg;
  cfg.resilience.breaker_threshold = 2;
  cfg.resilience.breaker_cooldown_s = 1e6;  // never half-open in this test
  ClientRig rig(cfg);
  rig.link.set_loss_probability(1.0);

  for (int i = 0; i < 20 && rig.client->breaker().times_opened == 0; ++i)
    rig.run(Strategy::kAdaptiveAdaptive, 3200);
  ASSERT_EQ(rig.client->breaker().times_opened, 1);

  const InvokeReport rep = rig.run(Strategy::kAdaptiveAdaptive, 3200);
  EXPECT_NE(rep.mode, ExecMode::kRemote);
  EXPECT_EQ(rep.resilience.attempts, 0);
  EXPECT_EQ(rig.client->breaker().state, CircuitBreaker::State::kOpen);
}

TEST(Resilience, CorruptionIsDetectedRetriedAndNeverWrong) {
  // Every downlink frame is corrupted: the CRC32 framing must turn each one
  // into a clean retryable failure — results stay correct via retry or
  // fallback, never silently wrong, never a crash.
  ClientConfig cfg;
  cfg.resilience.max_attempts = 2;
  ClientRig rig(cfg);
  net::FaultPlan plan;
  plan.enabled = true;
  plan.corrupt_downlink_p = 1.0;
  rig.attach_faults(plan);

  int corrupt_failures = 0;
  for (int i = 0; i < 4; ++i) {
    const InvokeReport rep = rig.run(Strategy::kRemote);
    EXPECT_TRUE(rep.fallback_local);
    corrupt_failures += rep.resilience.failures[static_cast<std::size_t>(
        FailureClass::kCorrupt)];
  }
  EXPECT_EQ(corrupt_failures, 8);  // 4 invocations x 2 attempts

  // Mixed invoke + compile traffic under the same corruption also stays
  // correct (the remote-compile download travels the hardened path too).
  for (int i = 0; i < 6; ++i) rig.run(Strategy::kAdaptiveAdaptive, 900);
}

TEST(Resilience, ResetSessionClearsBreakerRetryAndPredictorState) {
  ClientConfig cfg;
  cfg.resilience.breaker_threshold = 2;
  ClientRig rig(cfg);
  const std::int32_t mid =
      rig.client->device().vm.find_method("FE", "integrate");
  ASSERT_GE(mid, 0);

  rig.link.set_loss_probability(1.0);
  rig.run(Strategy::kRemote);
  rig.run(Strategy::kRemote);
  ASSERT_EQ(rig.client->breaker().state, CircuitBreaker::State::kOpen);
  // The EWMA predictor ticks in decide(), i.e. under adaptive strategies
  // (with the breaker open this one executes locally).
  rig.run(Strategy::kAdaptiveAdaptive);
  ASSERT_GT(rig.client->invocation_count(mid), 0u);

  rig.client->reset_session();
  EXPECT_EQ(rig.client->breaker().state, CircuitBreaker::State::kClosed);
  EXPECT_EQ(rig.client->breaker().consecutive_failures, 0);
  EXPECT_EQ(rig.client->breaker().times_opened, 0);
  EXPECT_EQ(rig.client->invocation_count(mid), 0u);

  // A fresh session behaves as if the breaker never opened.
  rig.link.set_loss_probability(0.0);
  const InvokeReport rep = rig.run(Strategy::kRemote);
  EXPECT_FALSE(rep.fallback_local);
  EXPECT_EQ(rep.resilience.attempts, 1);
  EXPECT_FALSE(rep.resilience.breaker_short_circuit);
}

TEST(Resilience, ReportInvariantsAcrossMixedFailureClasses) {
  // A multi-attempt invocation against a fully-lossy uplink: the per-class
  // breakdowns in ResilienceStats must be consistent with the scalar
  // aggregates — this is the invariant sim::run_sequence relies on when it
  // folds reports into a StrategyResult.
  ClientConfig cfg;
  cfg.resilience.max_attempts = 3;
  ClientRig rig(cfg);
  rig.link.set_loss_probability(1.0);

  const InvokeReport rep = rig.run(Strategy::kRemote);
  EXPECT_TRUE(rep.fallback_local);
  EXPECT_EQ(rep.resilience.attempts, 3);
  EXPECT_EQ(rep.resilience.retries, 2);

  int failures = 0;
  double wasted = 0.0;
  for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
    failures += rep.resilience.failures[c];
    wasted += rep.resilience.wasted_j[c];
    if (rep.resilience.failures[c] == 0)
      EXPECT_EQ(rep.resilience.wasted_j[c], 0.0) << c;
    else
      EXPECT_GT(rep.resilience.wasted_j[c], 0.0) << c;
  }
  // Every attempt failed, each is classified exactly once.
  EXPECT_EQ(failures, rep.resilience.attempts);
  EXPECT_EQ(rep.resilience.failures[static_cast<std::size_t>(
                FailureClass::kUplinkLoss)],
            3);
  // The per-class wasted ledger partitions the scalar (same addends, so only
  // association differs — allow rounding slack, nothing more).
  EXPECT_GT(rep.resilience.wasted_energy_j, 0.0);
  EXPECT_NEAR(wasted, rep.resilience.wasted_energy_j,
              1e-12 * rep.resilience.wasted_energy_j);
  // None of the wasted energy can exceed what the whole invocation burnt.
  EXPECT_LE(rep.resilience.wasted_energy_j, rep.energy_j);
}

}  // namespace
}  // namespace javelin::rt
