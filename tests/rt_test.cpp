// Runtime tests: the server (remote invocation, mobile status table, compile
// service with the client-twin ABI) and the client (strategy execution,
// power-down accounting, loss fallback, remote compilation download).
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "net/serializer.hpp"
#include "rt/client.hpp"
#include "rt/profiler.hpp"
#include "sim/scenario.hpp"

namespace javelin::rt {
namespace {

using apps::App;

std::vector<jvm::ClassFile> profiled_fe() {
  static const std::vector<jvm::ClassFile> classes = [] {
    const App& a = apps::app("fe");
    auto cs = a.classes;
    profile_application(cs, {{a.cls + "." + a.method, a.workload()}});
    return cs;
  }();
  return classes;
}

TEST(Server, RemoteInvocationViaProtocol) {
  Server server;
  server.deploy(profiled_fe());

  net::InvokeRequest req;
  req.cls = "FE";
  req.method = "integrate";
  req.estimated_server_seconds = 0.01;
  // Serialize args through a scratch device.
  Device scratch(isa::client_machine());
  scratch.deploy(profiled_fe());
  for (const jvm::Value v :
       {jvm::Value::make_double(0.0), jvm::Value::make_double(4.0)})
    req.args.push_back(net::serialize_value(scratch.vm, v, false));
  req.args.push_back(
      net::serialize_value(scratch.vm, jvm::Value::make_int(100), false));

  const auto out = server.handle_invoke(req, 1.0, /*client=*/7);
  ASSERT_TRUE(out.response.ok) << out.response.error;
  EXPECT_GT(out.compute_seconds, 0.0);
  const jvm::Value result =
      net::deserialize_value(scratch.vm, out.response.result, false);
  EXPECT_GT(result.as_double(), 0.0);

  // Mobile status table was updated.
  const MobileStatus* st = server.status_of(7);
  ASSERT_NE(st, nullptr);
  EXPECT_DOUBLE_EQ(st->request_time, 1.0);
  EXPECT_DOUBLE_EQ(st->estimated_wake, 1.01);
  // The server queues the response iff it finished before the client wakes.
  EXPECT_EQ(st->response_queued, st->response_ready < st->estimated_wake);
}

TEST(Server, RejectsBadRequests) {
  Server server;
  server.deploy(profiled_fe());
  net::InvokeRequest req;
  req.cls = "FE";
  req.method = "nope";
  EXPECT_FALSE(server.handle_invoke(req, 0, 1).response.ok);
  req.method = "f";  // exists but not a potential method
  EXPECT_FALSE(server.handle_invoke(req, 0, 1).response.ok);
  req.method = "integrate";  // wrong arg count
  EXPECT_FALSE(server.handle_invoke(req, 0, 1).response.ok);
}

TEST(Server, CompileServiceShipsRunnableCode) {
  Server server;
  server.deploy(profiled_fe());
  const net::CompileResponse resp =
      server.handle_compile(net::CompileRequest{"FE", "integrate", 2});
  ASSERT_TRUE(resp.ok) << resp.error;
  // Plan = integrate + its callee f.
  EXPECT_EQ(resp.units.size(), 2u);
  EXPECT_GT(resp.server_seconds, 0.0);

  // Install the downloaded code on a *client* and check it computes the same
  // value as interpretation — this validates the twin-ABI layout (statics,
  // literal pools, bytecode addresses).
  Device client(isa::client_machine());
  client.deploy(profiled_fe());
  std::vector<jvm::Value> args{jvm::Value::make_double(0.5),
                               jvm::Value::make_double(3.5),
                               jvm::Value::make_int(200)};
  const std::int32_t mid = client.vm.find_method("FE", "integrate");
  const double interp = client.engine.invoke(mid, args).as_double();
  for (auto& unit : resp.units) {
    const std::int32_t id = client.vm.find_method(unit.cls, unit.method);
    ASSERT_GE(id, 0);
    client.engine.install(id, std::move(unit.program), resp.level);
  }
  const double native = client.engine.invoke(mid, args).as_double();
  EXPECT_DOUBLE_EQ(native, interp);

  // The compile cache returns the same bundle.
  const net::CompileResponse again =
      server.handle_compile(net::CompileRequest{"FE", "integrate", 2});
  EXPECT_EQ(again.units.size(), 2u);
}

struct ClientRig {
  Server server;
  radio::FixedChannel channel{radio::PowerClass::kClass4};
  net::Link link;
  ClientConfig cfg;
  std::unique_ptr<Client> client;

  explicit ClientRig(ClientConfig c = {}) : cfg(c) {
    server.deploy(profiled_fe());
    client = std::make_unique<Client>(cfg, server, channel, link);
    client->deploy(profiled_fe());
  }
  std::vector<jvm::Value> args(std::int32_t steps = 400) {
    return {jvm::Value::make_double(0.0), jvm::Value::make_double(4.0),
            jvm::Value::make_int(steps)};
  }
};

TEST(Client, StaticStrategiesProduceSameResult) {
  double reference = 0.0;
  for (Strategy s : {Strategy::kInterpret, Strategy::kLocal1, Strategy::kLocal2,
                     Strategy::kLocal3, Strategy::kRemote}) {
    ClientRig rig;
    InvokeReport rep;
    const jvm::Value v =
        rig.client->run("FE", "integrate", rig.args(), s, &rep);
    if (s == Strategy::kInterpret) {
      reference = v.as_double();
    } else {
      EXPECT_DOUBLE_EQ(v.as_double(), reference) << strategy_name(s);
    }
    EXPECT_GT(rep.energy_j, 0.0);
    EXPECT_GT(rep.seconds, 0.0);
  }
}

TEST(Client, PowerDownChargesLeakageOnly) {
  ClientConfig with;
  with.powerdown = true;
  ClientConfig without;
  without.powerdown = false;

  ClientRig a(with), b(without);
  InvokeReport ra, rb;
  a.client->run("FE", "integrate", a.args(4000), Strategy::kRemote, &ra);
  b.client->run("FE", "integrate", b.args(4000), Strategy::kRemote, &rb);
  const double idle_a = a.client->device().meter.of(energy::Subsystem::kIdle);
  const double idle_b = b.client->device().meter.of(energy::Subsystem::kIdle);
  EXPECT_LT(idle_a, idle_b);
  // Leakage is 10% of normal power.
  EXPECT_NEAR(idle_a / idle_b, 0.1, 0.05);
}

TEST(Client, LostConnectionFallsBackLocally) {
  ClientRig rig;
  rig.link.set_loss_probability(1.0);
  InvokeReport rep;
  const jvm::Value v = rig.client->run("FE", "integrate", rig.args(),
                                       Strategy::kRemote, &rep);
  EXPECT_TRUE(rep.fallback_local);
  EXPECT_GT(v.as_double(), 0.0);
  // The timeout idle energy was charged.
  EXPECT_GT(rig.client->device().meter.of(energy::Subsystem::kIdle), 0.0);
}

TEST(Client, AdaptiveSwitchesToRemoteOnGoodChannel) {
  // fe at a large step count strongly favours remote under Class 4.
  ClientRig rig;
  std::map<ExecMode, int> modes;
  for (int i = 0; i < 20; ++i) {
    InvokeReport rep;
    rig.client->run("FE", "integrate", rig.args(3200),
                    Strategy::kAdaptiveLocal, &rep);
    ++modes[rep.mode];
  }
  EXPECT_GT(modes[ExecMode::kRemote], 10);
}

TEST(Client, AdaptiveAvoidsRemoteOnPoorChannel) {
  Server server;
  server.deploy(profiled_fe());
  radio::FixedChannel channel(radio::PowerClass::kClass1);
  net::Link link;
  Client client(ClientConfig{}, server, channel, link);
  client.deploy(profiled_fe());
  std::map<ExecMode, int> modes;
  for (int i = 0; i < 20; ++i) {
    InvokeReport rep;
    client.run("FE", "integrate",
               {{jvm::Value::make_double(0.0), jvm::Value::make_double(4.0),
                 jvm::Value::make_int(800)}},
               Strategy::kAdaptiveLocal, &rep);
    ++modes[rep.mode];
  }
  EXPECT_EQ(modes[ExecMode::kRemote], 0);
}

TEST(Client, AdaptiveCompilationChoiceMatchesProfile) {
  // AA must pick whichever compilation alternative the profile says is
  // cheaper at Class 4 (Section 3.3). We derive the expected choice from the
  // class-file profile exactly like the helper method does, then check the
  // observed behaviour.
  ClientRig rig;
  const jvm::EnergyProfile& prof =
      rig.client->device()
          .vm.method(rig.client->device().vm.find_method("FE", "integrate"))
          .info->profile;
  const radio::CommModel comm;

  int compiles = 0, remote_compiles = 0;
  ExecMode compiled_mode = ExecMode::kInterpret;
  for (int i = 0; i < 30; ++i) {
    InvokeReport rep;
    const jvm::Value v = rig.client->run("FE", "integrate", rig.args(900),
                                         Strategy::kAdaptiveAdaptive, &rep);
    EXPECT_GT(v.as_double(), 0.0);
    if (rep.compiled_this_call) {
      ++compiles;
      compiled_mode = rep.mode;
      if (rep.remote_compile) ++remote_compiles;
    }
  }
  if (compiles > 0) {
    const int level = static_cast<int>(compiled_mode);
    ASSERT_GE(level, 1);
    const double local = prof.compile_energy[level - 1];
    const double remote =
        comm.tx_energy(64, radio::PowerClass::kClass4) +
        comm.rx_energy(prof.code_size_bytes[level - 1]);
    EXPECT_EQ(remote_compiles > 0, remote < local)
        << "AA chose " << (remote_compiles ? "remote" : "local")
        << " but remote=" << remote << " J vs local=" << local << " J";
  }
}

TEST(Client, SizeParamEvaluation) {
  Device dev(isa::client_machine());
  dev.deploy(profiled_fe());
  const jvm::RtMethod& m =
      dev.vm.method(dev.vm.find_method("FE", "integrate"));
  const double s = Client::size_param(
      dev.vm, *m.info,
      {{jvm::Value::make_double(0), jvm::Value::make_double(1),
        jvm::Value::make_int(123)}});
  EXPECT_DOUBLE_EQ(s, 123.0);
}

TEST(Client, EwmaPrediction) {
  // With u = 0.7, after a jump from 100 to 200 the prediction moves 30% of
  // the way per step. Validated through decide()'s observable behaviour:
  // verified indirectly via mode stability under AL in scenario tests; here
  // just check the config plumbs through.
  ClientConfig c;
  c.u1 = 0.25;
  ClientRig rig(c);
  EXPECT_DOUBLE_EQ(rig.client->config().u1, 0.25);
}

}  // namespace
}  // namespace javelin::rt
