// Unit tests for the class-file model and its binary format.
#include <gtest/gtest.h>

#include "jvm/builder.hpp"
#include "jvm/classfile.hpp"

namespace javelin::jvm {
namespace {

TEST(ConstantPool, InterningDeduplicates) {
  ConstantPool pool;
  EXPECT_EQ(pool.add_double(1.5), 0);
  EXPECT_EQ(pool.add_double(2.5), 1);
  EXPECT_EQ(pool.add_double(1.5), 0);
  EXPECT_EQ(pool.add_method("A", "m"), 0);
  EXPECT_EQ(pool.add_method("A", "n"), 1);
  EXPECT_EQ(pool.add_method("A", "m"), 0);
  EXPECT_EQ(pool.add_field("A", "f"), 0);
  EXPECT_EQ(pool.add_field("B", "f"), 1);
  EXPECT_EQ(pool.add_class("A"), 0);
  EXPECT_EQ(pool.add_class("A"), 0);
}

ClassFile sample_class() {
  ClassBuilder cb("Sample");
  cb.field("x", TypeKind::kInt);
  cb.field("d", TypeKind::kDouble);
  cb.field("counter", TypeKind::kInt, /*is_static=*/true);
  auto& m = cb.method("twice", Signature{{TypeKind::kInt}, TypeKind::kInt});
  m.param_name(0, "v");
  m.iload("v").iconst(2).imul().iret();
  m.potential(SizeParamSpec{{{0, false}}});
  auto& g =
      cb.method("pi_ish", Signature{{}, TypeKind::kDouble});
  g.dconst(3.14159).dret();
  return cb.build();
}

TEST(ClassFile, BinaryRoundTrip) {
  ClassFile cf = sample_class();
  // Attach a synthetic profile to check attribute round-tripping.
  MethodInfo* m = cf.find_method("twice");
  ASSERT_NE(m, nullptr);
  m->profile.valid = true;
  m->profile.local_energy[0] = PolyFit{{1.0, 2.0, 3.0}};
  m->profile.local_energy[1] = PolyFit{{0.5}};
  m->profile.server_cycles = PolyFit{{10.0, 0.25}};
  m->profile.request_bytes = PolyFit{{64.0}};
  m->profile.response_bytes = PolyFit{{16.0}};
  m->profile.compile_energy = {1e-3, 2e-3, 3e-3};
  m->profile.code_size_bytes = {100, 200, 300};

  const auto bytes = serialize_class(cf);
  const ClassFile back = deserialize_class(bytes);

  EXPECT_EQ(back.name, "Sample");
  ASSERT_EQ(back.fields.size(), 3u);
  EXPECT_EQ(back.fields[1].kind, TypeKind::kDouble);
  EXPECT_TRUE(back.fields[2].is_static);
  ASSERT_EQ(back.methods.size(), 2u);
  const MethodInfo* bm = back.find_method("twice");
  ASSERT_NE(bm, nullptr);
  EXPECT_EQ(bm->sig.to_string(), "(I)I");
  EXPECT_EQ(bm->code, cf.find_method("twice")->code);
  EXPECT_EQ(bm->max_stack, cf.find_method("twice")->max_stack);
  EXPECT_TRUE(bm->potential);
  ASSERT_EQ(bm->size_param.factors.size(), 1u);
  EXPECT_EQ(bm->size_param.factors[0].arg_index, 0);
  ASSERT_TRUE(bm->profile.valid);
  EXPECT_EQ(bm->profile.local_energy[0].coeffs,
            (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(bm->profile.code_size_bytes[2], 300u);
  EXPECT_DOUBLE_EQ(bm->profile.compile_energy[1], 2e-3);

  // Round-trip is a fixed point.
  EXPECT_EQ(serialize_class(back), bytes);
}

TEST(ClassFile, RejectsBadMagicAndTruncation) {
  ClassFile cf = sample_class();
  auto bytes = serialize_class(cf);
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_THROW(deserialize_class(bad), FormatError);
  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(deserialize_class(truncated), FormatError);
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_class(trailing), FormatError);
}

TEST(ClassFile, EveryTruncationPrefixIsAFormatError) {
  // Exhaustive truncation sweep: every proper prefix of a valid class image
  // must be rejected with a typed FormatError by the ByteReader-backed
  // decoder — never a crash, never a partial ClassFile.
  ClassFile cf = sample_class();
  const auto bytes = serialize_class(cf);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(n));
    EXPECT_THROW(deserialize_class(prefix), FormatError)
        << "prefix of " << n << " bytes was accepted";
  }
}

TEST(ClassFile, ForgedPoolCountsFailCheaplyNotViaBadAlloc) {
  // Forge every 32-bit count field in the image to 0xFFFFFFFF in turn. Each
  // must be caught by the count-vs-remaining-bytes validation (or a later
  // structural check) as a FormatError before it reaches the allocator —
  // a hostile length field must not be able to demand a 4 GiB resize.
  ClassFile cf = sample_class();
  const auto bytes = serialize_class(cf);
  for (std::size_t at = 0; at + 4 <= bytes.size(); ++at) {
    auto forged = bytes;
    forged[at] = forged[at + 1] = forged[at + 2] = forged[at + 3] = 0xFF;
    try {
      deserialize_class(forged);  // some offsets only hit payload, not counts
    } catch (const FormatError&) {
      // The expected rejection for corrupted structure.
    }
  }
}

TEST(MethodInfo, ArgKindsIncludeReceiver) {
  ClassBuilder cb("C");
  auto& m = cb.method("inst", Signature{{TypeKind::kInt}, TypeKind::kVoid},
                      /*is_static=*/false);
  m.ret();
  ClassFile cf = cb.build();
  const MethodInfo* mi = cf.find_method("inst");
  EXPECT_EQ(mi->num_args(), 2u);
  EXPECT_EQ(mi->arg_kind(0), TypeKind::kRef);
  EXPECT_EQ(mi->arg_kind(1), TypeKind::kInt);
}

TEST(Builder, RejectsUnboundLabel) {
  ClassBuilder cb("C");
  auto& m = cb.method("f", Signature{{}, TypeKind::kVoid});
  auto l = m.new_label();
  m.goto_(l);
  EXPECT_THROW(cb.build(), Error);
}

TEST(Builder, RejectsUndeclaredLocalRead) {
  ClassBuilder cb("C");
  auto& m = cb.method("f", Signature{{}, TypeKind::kInt});
  EXPECT_THROW(m.iload("nope"), Error);
}

TEST(Builder, MaxStackComputed) {
  ClassBuilder cb("C");
  auto& m = cb.method("f", Signature{{}, TypeKind::kInt});
  m.iconst(1).iconst(2).iconst(3).iadd().iadd().iret();
  ClassFile cf = cb.build();
  EXPECT_EQ(cf.find_method("f")->max_stack, 3);
}

}  // namespace
}  // namespace javelin::jvm
