// Deterministic fuzz tests for the hardened wire protocol.
//
// Every message type is fed (a) every strict-prefix truncation, (b) every
// single-bit flip, and (c) seeded random multi-bit damage of its encoding.
// The contract under test: decode() either succeeds or raises FormatError —
// it never crashes, never reads out of bounds (an ASan-instrumented copy of
// this binary rides along in the tier-1 suite, see tests/CMakeLists.txt),
// and never attempts a hostile-length allocation.
#include <gtest/gtest.h>

#include "net/fault.hpp"
#include "net/protocol.hpp"
#include "support/rng.hpp"

namespace javelin::net {
namespace {

InvokeRequest sample_invoke_request() {
  InvokeRequest req;
  req.cls = "MF";
  req.method = "median";
  req.estimated_server_seconds = 0.0125;
  req.args = {{1, 2, 3}, {}, {9, 8, 7, 6}};
  return req;
}

InvokeResponse sample_invoke_response() {
  InvokeResponse resp;
  resp.ok = true;
  resp.result = {5, 6, 7};
  return resp;
}

CompileRequest sample_compile_request() { return {"Sort", "qsort", 2}; }

CompileResponse sample_compile_response() {
  CompileResponse resp;
  resp.level = 3;
  resp.server_seconds = 1e-3;
  CompiledUnit u;
  u.cls = "Sort";
  u.method = "qsort";
  u.program.code = {isa::NInstr{isa::NOp::kMovi, 9, 0, 0, 42},
                    isa::NInstr{isa::NOp::kRet, 0, 0, 0, 0}};
  u.program.literals = {2.5, -1.0};
  u.program.spill_bytes = 16;
  resp.units.push_back(std::move(u));
  return resp;
}

template <typename M>
void fuzz_message(const M& msg, const char* label) {
  const std::vector<std::uint8_t> frame = msg.encode();
  ASSERT_NO_THROW((void)M::decode(frame)) << label;

  // (a) Every strict-prefix truncation must fail cleanly: either the frame
  // is too short to carry a CRC trailer, or the trailer no longer matches.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::vector<std::uint8_t> t(frame.begin(),
                                      frame.begin() + static_cast<long>(len));
    EXPECT_THROW((void)M::decode(t), FormatError) << label << " len=" << len;
  }

  // (b) CRC32 detects every single-bit error, wherever it lands — in a
  // length field, a payload byte, or the trailer itself.
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<std::uint8_t> f = frame;
    f[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW((void)M::decode(f), FormatError) << label << " bit=" << bit;
  }

  // (c) Seeded random heavier damage: multi-bit flips plus truncation.
  // decode() must finish — success or FormatError; any other exception (or
  // a sanitizer report) fails the test.
  Rng rng(0xF422ED);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> f = frame;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int k = 0; k < flips; ++k) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(f.size()) - 1));
      f[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    if (rng.bernoulli(0.3))
      f.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(f.size()))));
    try {
      (void)M::decode(f);
    } catch (const FormatError&) {
      // The only acceptable failure mode.
    }
  }

  // (d) The FaultInjector's own damage model (the one the simulator applies
  // over the air) is always detected.
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = 0xDA5A;
  FaultInjector inj(plan);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> f = frame;
    inj.corrupt(f);
    EXPECT_THROW((void)M::decode(f), FormatError) << label;
  }
}

TEST(ProtocolFuzz, InvokeRequest) {
  fuzz_message(sample_invoke_request(), "InvokeRequest");
}

TEST(ProtocolFuzz, InvokeResponse) {
  fuzz_message(sample_invoke_response(), "InvokeResponse");
}

TEST(ProtocolFuzz, CompileRequest) {
  fuzz_message(sample_compile_request(), "CompileRequest");
}

TEST(ProtocolFuzz, CompileResponse) {
  fuzz_message(sample_compile_response(), "CompileResponse");
}

TEST(ProtocolFuzz, Crc32KnownAnswer) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Incremental == one-shot.
  const std::uint32_t a = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, a), 0xCBF43926u);
}

TEST(ProtocolFuzz, HostileLengthFieldFailsBeforeAllocation) {
  // A 4 GiB string length backed by 3 bytes of payload must raise
  // FormatError from the bounds check, not std::bad_alloc (or worse).
  ByteWriter w;
  w.u32(0xFFFFFFFFu);
  w.u8(1);
  w.u8(2);
  w.u8(3);
  const std::vector<std::uint8_t> buf = w.take();
  {
    ByteReader r(buf);
    EXPECT_THROW((void)r.str(), FormatError);
  }
  {
    ByteReader r(buf);
    (void)r.u32();
    std::uint8_t sink[4];
    EXPECT_THROW(r.bytes(sink, sizeof sink), FormatError);
  }
  // The limited-view constructor clamps reads the same way.
  {
    ByteReader r(buf, 2);
    EXPECT_EQ(r.remaining(), 2u);
    EXPECT_THROW((void)r.u32(), FormatError);
  }
}

}  // namespace
}  // namespace javelin::net
