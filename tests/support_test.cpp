// Unit tests for the support library: RNG, statistics, least squares, tables.
#include <gtest/gtest.h>

#include <cmath>

#include "support/bytes.hpp"
#include "support/fit.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace javelin {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRangeAndCoversAll) {
  Rng rng(7);
  std::array<int, 6> counts{};
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    ++counts[static_cast<std::size_t>(v - 2)];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(st.mean(), 3.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(21);
  std::array<int, 3> counts{};
  for (int i = 0; i < 10000; ++i)
    ++counts[rng.categorical({1.0, 0.0, 3.0})];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, CategoricalRejectsEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  // Child should not replay the parent's stream.
  Rng parent2(42);
  parent2.split();
  EXPECT_EQ(child.next_u64(), [&] {
    Rng p(42);
    return p.split().next_u64();
  }());
}

TEST(RunningStats, Basic) {
  RunningStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Percentile, NearestRank) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 10), 1.0);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Geomean, Basic) {
  EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW(geomean({1.0, 0.0}), std::invalid_argument);
}

TEST(Fit, RecoversQuadratic) {
  std::vector<double> xs, ys;
  for (double x = 0; x < 10; x += 0.5) {
    xs.push_back(x);
    ys.push_back(3.0 - 2.0 * x + 0.5 * x * x);
  }
  const PolyFit f = fit_polynomial(xs, ys, 2);
  ASSERT_EQ(f.coeffs.size(), 3u);
  EXPECT_NEAR(f.coeffs[0], 3.0, 1e-9);
  EXPECT_NEAR(f.coeffs[1], -2.0, 1e-9);
  EXPECT_NEAR(f.coeffs[2], 0.5, 1e-9);
  EXPECT_NEAR(r_squared(f, xs, ys), 1.0, 1e-12);
}

TEST(Fit, LeastSquaresUnderNoise) {
  Rng rng(11);
  std::vector<double> xs, ys;
  for (double x = 1; x < 50; x += 1) {
    xs.push_back(x);
    ys.push_back(5.0 + 2.0 * x + rng.normal(0, 0.01));
  }
  const PolyFit f = fit_polynomial(xs, ys, 1);
  EXPECT_NEAR(f.coeffs[1], 2.0, 1e-2);
  EXPECT_GT(r_squared(f, xs, ys), 0.999);
}

TEST(Fit, RejectsUnderdetermined) {
  EXPECT_THROW(fit_polynomial({1.0}, {2.0}, 2), std::invalid_argument);
}

TEST(SolveLinear, SolvesAndDetectsSingular) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1
  const auto x = solve_linear({2, 1, 1, -1}, {5, 1}, 2);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_THROW(solve_linear({1, 1, 2, 2}, {1, 2}, 2), Error);
}

TEST(TextTable, RendersAligned) {
  TextTable t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"x", "1"});
  t.add_row({"long", "2"});
  const std::string s = t.render();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| long | 2  |"), std::string::npos);
}

TEST(Bytes, RoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(123456);
  w.i32(-5);
  w.f64(3.25);
  w.str("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.i32(), -5);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, UnderflowThrows) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.u32(), FormatError);
}

}  // namespace
}  // namespace javelin
