// Differential proof of the dispatch-flavor invariant: every app in the
// corpus, executed through the hand-written switch loop, the generated
// computed-goto loop and the L0.5 baseline superinstruction stream, must
// produce bit-identical simulated state — result correctness, retired guest
// instructions, simulated cycles, per-class instruction counts, metered
// energy (exact double equality: the accumulation order is part of the
// contract) and the full heap image.
//
// The opt-in L0.5 *tier* accounting (Interpreter::run_baseline via
// ExecutionEngine::install_baseline) is also exercised: it must stay correct
// and strictly cheaper than plain interpretation, but is exempt from the
// bit-identity clause (skipping the fused pair's second dispatch triple is
// the tier's whole point).
//
// The same proof covers the native executor: every app JIT-compiled at each
// optimization level and run through the hand switch, the computed-goto loop
// and the fused superinstruction stream (isa/executor_stream.cpp, with its
// pre-resolved pool operands and profile-derived pair fusion) must agree the
// same way, bit for bit.
//
// A UBSan-instrumented copy of this test rides along in the regular build
// (see tests/CMakeLists.txt): the computed-goto loops, the pre-decoded
// streams and the fused operand replay are exactly the kind of code where UB
// would hide.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "apps/app.hpp"
#include "energy/energy.hpp"
#include "jit/compiler.hpp"
#include "rt/device.hpp"
#include "support/rng.hpp"

namespace javelin {
namespace {

struct RunOutcome {
  bool correct = false;
  std::uint64_t steps = 0;
  std::uint64_t cycles = 0;
  std::uint64_t dram = 0;
  double energy = 0.0;
  energy::InstrCounts counts;
  std::uint64_t heap_hash = 0;
  std::size_t heap_used = 0;
};

/// FNV-1a over the live heap zone — any divergence in allocation order or
/// stored values between dispatch flavors shows up here.
std::uint64_t hash_heap(const mem::Arena& arena) {
  const std::size_t top = arena.heap_mark();
  const std::size_t base = top - arena.heap_used();
  std::uint64_t h = 1469598103934665603ull;
  std::uint8_t buf[4096];
  for (std::size_t a = base; a < top; a += sizeof(buf)) {
    const std::size_t n = std::min(sizeof(buf), top - a);
    arena.copy_out(static_cast<mem::Addr>(a), buf, n);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= buf[i];
      h *= 1099511628211ull;
    }
  }
  return h;
}

enum class Flavor { kSwitch, kGoto, kStream, kTier };

/// One deterministic invocation of the app's potential method on a fresh
/// device. `Flavor::kTier` routes through ExecutionEngine::install_baseline
/// (the opt-in L0.5 tier accounting); the others set the interpreter's
/// dispatch mode.
RunOutcome run_app(const apps::App& a, Flavor flavor) {
  rt::Device dev(isa::client_machine());
  dev.core.step_limit = ~0ULL;
  dev.deploy(a.classes);
  dev.engine.set_force_interpret(true);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
  switch (flavor) {
    case Flavor::kSwitch:
      dev.engine.set_dispatch_mode(jvm::DispatchMode::kSwitch);
      break;
    case Flavor::kGoto:
      dev.engine.set_dispatch_mode(jvm::DispatchMode::kGoto);
      break;
    case Flavor::kStream:
      dev.engine.set_dispatch_mode(jvm::DispatchMode::kBaseline);
      break;
    case Flavor::kTier:
      dev.engine.install_baseline(mid);
      break;
  }

  Rng rng(20260808);
  const double scale =
      a.profile_scales.empty() ? a.small_scale : a.profile_scales.front();
  auto args = a.make_args(dev.vm, scale, rng);

  RunOutcome out;
  const jvm::Value result = dev.engine.invoke(mid, args);
  out.correct = a.check(dev.vm, args, dev.vm, result);
  out.steps = dev.core.steps;
  out.cycles = dev.core.cycles;
  out.dram = dev.meter.dram_accesses();
  out.energy = dev.meter.total();
  out.counts = dev.meter.counts();
  out.heap_hash = hash_heap(dev.arena);
  out.heap_used = dev.arena.heap_used();
  return out;
}

void expect_identical(const RunOutcome& ref, const RunOutcome& got,
                      const std::string& label) {
  EXPECT_TRUE(got.correct) << label;
  EXPECT_EQ(ref.steps, got.steps) << label;
  EXPECT_EQ(ref.cycles, got.cycles) << label;
  EXPECT_EQ(ref.dram, got.dram) << label;
  // Exact: both flavors must execute the same double additions in the same
  // order, so even the rounding is identical.
  EXPECT_EQ(ref.energy, got.energy) << label;
  for (std::size_t c = 0; c < energy::kNumInstrClasses; ++c)
    EXPECT_EQ(ref.counts.by_class[c], got.counts.by_class[c])
        << label << " instr class " << c;
  EXPECT_EQ(ref.heap_used, got.heap_used) << label;
  EXPECT_EQ(ref.heap_hash, got.heap_hash) << label;
}

TEST(DispatchDifferential, AllFlavorsBitIdenticalOnWholeCorpus) {
  for (const apps::App& a : apps::registry()) {
    SCOPED_TRACE(a.name);
    const RunOutcome sw = run_app(a, Flavor::kSwitch);
    ASSERT_TRUE(sw.correct) << a.name;
    expect_identical(sw, run_app(a, Flavor::kGoto), a.name + "/goto");
    expect_identical(sw, run_app(a, Flavor::kStream), a.name + "/stream");
  }
}

/// One deterministic invocation with the whole compilation plan JIT-compiled
/// at `level`, executed under the given native dispatch flavor.
RunOutcome run_app_native(const apps::App& a, int level, isa::NExecMode mode) {
  rt::Device dev(isa::client_machine());
  dev.core.step_limit = ~0ULL;
  dev.deploy(a.classes);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
  std::vector<std::int32_t> plan{mid};
  for (std::int32_t callee : jit::collect_callees(dev.vm, mid))
    plan.push_back(callee);
  for (std::int32_t id : plan) {
    auto res = jit::compile_method(
        dev.vm, id, jit::CompileOptions{.opt_level = level}, dev.cfg.energy);
    dev.engine.install(id, std::move(res.program), level);
  }
  dev.engine.set_nexec_mode(mode);

  Rng rng(20260808);
  const double scale =
      a.profile_scales.empty() ? a.small_scale : a.profile_scales.front();
  auto args = a.make_args(dev.vm, scale, rng);

  RunOutcome out;
  const jvm::Value result = dev.engine.invoke(mid, args);
  out.correct = a.check(dev.vm, args, dev.vm, result);
  out.steps = dev.core.steps;
  out.cycles = dev.core.cycles;
  out.dram = dev.meter.dram_accesses();
  out.energy = dev.meter.total();
  out.counts = dev.meter.counts();
  out.heap_hash = hash_heap(dev.arena);
  out.heap_used = dev.arena.heap_used();
  return out;
}

TEST(DispatchDifferential, NativeFlavorsBitIdenticalOnWholeCorpus) {
  for (const apps::App& a : apps::registry()) {
    SCOPED_TRACE(a.name);
    for (int level : {1, 2, 3}) {
      const std::string tag = a.name + "/L" + std::to_string(level);
      const RunOutcome sw = run_app_native(a, level, isa::NExecMode::kSwitch);
      ASSERT_TRUE(sw.correct) << tag;
      expect_identical(sw, run_app_native(a, level, isa::NExecMode::kGoto),
                       tag + "/goto");
      expect_identical(sw, run_app_native(a, level, isa::NExecMode::kFused),
                       tag + "/fused");
    }
  }
}

TEST(DispatchDifferential, BaselineTierCorrectAndCheaper) {
  for (const apps::App& a : apps::registry()) {
    SCOPED_TRACE(a.name);
    const RunOutcome interp = run_app(a, Flavor::kSwitch);
    const RunOutcome tier = run_app(a, Flavor::kTier);
    EXPECT_TRUE(tier.correct) << a.name;
    // Same architectural effects...
    EXPECT_EQ(interp.heap_hash, tier.heap_hash) << a.name;
    EXPECT_EQ(interp.heap_used, tier.heap_used) << a.name;
    // ...but strictly cheaper accounting whenever anything fused.
    EXPECT_LE(tier.energy, interp.energy) << a.name;
    EXPECT_LE(tier.steps, interp.steps) << a.name;
    EXPECT_LE(tier.cycles, interp.cycles) << a.name;
  }
}

}  // namespace
}  // namespace javelin
