// Wire-protocol tests: message round trips, wire-size accounting, and
// native-program encode/decode.
#include <gtest/gtest.h>

#include "net/protocol.hpp"

namespace javelin::net {
namespace {

TEST(Protocol, InvokeRequestRoundTrip) {
  InvokeRequest req;
  req.cls = "MF";
  req.method = "median";
  req.estimated_server_seconds = 0.0125;
  req.args = {{1, 2, 3}, {}, {9}};
  const auto bytes = req.encode();
  const InvokeRequest back = InvokeRequest::decode(bytes);
  EXPECT_EQ(back.cls, "MF");
  EXPECT_EQ(back.method, "median");
  EXPECT_DOUBLE_EQ(back.estimated_server_seconds, 0.0125);
  EXPECT_EQ(back.args, req.args);
  // Wire size tracks the encoding size. The encoding carries a 4-byte CRC32
  // frame trailer that wire_bytes() deliberately excludes (the paper's
  // fault-free byte accounting stays pinned; the link charges the trailer
  // only under fault injection).
  EXPECT_NEAR(static_cast<double>(req.wire_bytes()),
              static_cast<double>(bytes.size()), 6.0);
}

TEST(Protocol, InvokeResponseRoundTrip) {
  InvokeResponse resp;
  resp.ok = false;
  resp.error = "boom";
  resp.result = {5, 6};
  const InvokeResponse back = InvokeResponse::decode(resp.encode());
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, "boom");
  EXPECT_EQ(back.result, resp.result);
}

TEST(Protocol, CompileMessagesRoundTrip) {
  CompileRequest req{"Sort", "qsort", 2};
  const CompileRequest rback = CompileRequest::decode(req.encode());
  EXPECT_EQ(rback.cls, "Sort");
  EXPECT_EQ(rback.level, 2);

  CompileResponse resp;
  resp.level = 3;
  resp.server_seconds = 1e-3;
  CompiledUnit u;
  u.cls = "Sort";
  u.method = "qsort";
  u.program.code = {isa::NInstr{isa::NOp::kMovi, 9, 0, 0, 42},
                    isa::NInstr{isa::NOp::kRet, 0, 0, 0, 0}};
  u.program.literals = {2.5};
  u.program.spill_bytes = 16;
  resp.units.push_back(std::move(u));
  const CompileResponse back = CompileResponse::decode(resp.encode());
  ASSERT_EQ(back.units.size(), 1u);
  EXPECT_EQ(back.units[0].program.code.size(), 2u);
  EXPECT_EQ(back.units[0].program.code[0].imm, 42);
  EXPECT_EQ(back.units[0].program.literals, std::vector<double>{2.5});
  EXPECT_EQ(back.units[0].program.spill_bytes, 16u);
  EXPECT_DOUBLE_EQ(back.server_seconds, 1e-3);
}

TEST(Protocol, CompileResponseWireBytesUsesImageSize) {
  CompileResponse resp;
  CompiledUnit u;
  u.cls = "A";
  u.method = "m";
  u.program.code.resize(100);  // 100 instrs -> 400 image bytes
  u.program.literals = {1.0, 2.0};  // + 16
  resp.units.push_back(std::move(u));
  // Image bytes dominate the wire size (4 B/instr, not the 8 B simulator
  // encoding).
  EXPECT_EQ(resp.units[0].program.image_bytes(), 416u);
  EXPECT_GT(resp.wire_bytes(), 416u);
  EXPECT_LT(resp.wire_bytes(), 470u);
}

TEST(Protocol, RejectsWrongMessageTag) {
  InvokeRequest req;
  req.cls = "X";
  req.method = "y";
  EXPECT_THROW(InvokeResponse::decode(req.encode()), FormatError);
  EXPECT_THROW(CompileRequest::decode(req.encode()), FormatError);
}

TEST(Protocol, RejectsTruncation) {
  InvokeRequest req;
  req.cls = "X";
  req.method = "y";
  req.args = {{1, 2, 3, 4, 5}};
  auto bytes = req.encode();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(InvokeRequest::decode(bytes), FormatError);
}

}  // namespace
}  // namespace javelin::net
