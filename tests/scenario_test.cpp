// Scenario-runner tests: determinism, distribution properties, and the
// paper's headline ordering (adaptive strategies never lose badly to the
// best static strategy, and AA <= AL).
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace javelin::sim {
namespace {

TEST(Scenario, ChannelWeightsMatchSituations) {
  const auto good = channel_weights(Situation::kGoodChannelDominantSize);
  EXPECT_GT(good[3], 0.5);  // mostly Class 4
  const auto poor = channel_weights(Situation::kPoorChannelDominantSize);
  EXPECT_GT(poor[0], 0.5);  // mostly Class 1
  const auto uni = channel_weights(Situation::kUniform);
  for (double w : uni) EXPECT_DOUBLE_EQ(w, 0.25);
}

TEST(Scenario, DominantSizeDistribution) {
  const apps::App& a = apps::app("fe");
  Rng rng(1);
  const auto scales =
      scenario_scales(a, Situation::kGoodChannelDominantSize, rng, 1000);
  const double dominant = a.profile_scales[a.profile_scales.size() / 2];
  int dom = 0;
  for (double s : scales)
    if (s == dominant) ++dom;
  EXPECT_GT(dom, 700);  // ~80% + uniform picks of the same value
  // Uniform situation covers the whole support.
  Rng rng2(2);
  const auto uni = scenario_scales(a, Situation::kUniform, rng2, 1000);
  for (double s : a.profile_scales)
    EXPECT_NE(std::count(uni.begin(), uni.end(), s), 0) << s;
}

TEST(Scenario, DeterministicForSeed) {
  ScenarioRunner r1(apps::app("fe"), 777);
  ScenarioRunner r2(apps::app("fe"), 777);
  const auto a = r1.run(rt::Strategy::kAdaptiveLocal,
                        Situation::kUniform, 40);
  const auto b = r2.run(rt::Strategy::kAdaptiveLocal,
                        Situation::kUniform, 40);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mode_counts, b.mode_counts);
}

TEST(Scenario, AllStrategiesComputeCorrectResults) {
  ScenarioRunner runner(apps::app("fe"));
  for (rt::Strategy s : rt::kAllStrategies) {
    const auto r = runner.run(s, Situation::kUniform, 25);
    EXPECT_TRUE(r.all_correct) << rt::strategy_name(s);
    EXPECT_EQ(r.executions, 25);
    EXPECT_GT(r.total_energy_j, 0.0);
  }
}

TEST(Scenario, HeadlineOrderingOnFe) {
  // fe is the most offload-friendly benchmark: AL must beat every static
  // strategy under the good-channel scenario, and AA must not lose to AL by
  // more than noise (paper Section 3.2/3.3).
  ScenarioRunner runner(apps::app("fe"));
  double best_static = 1e300;
  for (rt::Strategy s : {rt::Strategy::kRemote, rt::Strategy::kInterpret,
                         rt::Strategy::kLocal1, rt::Strategy::kLocal2,
                         rt::Strategy::kLocal3}) {
    best_static = std::min(
        best_static,
        runner.run(s, Situation::kGoodChannelDominantSize, 100).total_energy_j);
  }
  const double al =
      runner.run(rt::Strategy::kAdaptiveLocal,
                 Situation::kGoodChannelDominantSize, 100).total_energy_j;
  const double aa =
      runner.run(rt::Strategy::kAdaptiveAdaptive,
                 Situation::kGoodChannelDominantSize, 100).total_energy_j;
  // Allow a few percent of adaptation overhead (the early exploration
  // ladder) on top of the oracle-best static.
  EXPECT_LT(al, best_static * 1.05);
  EXPECT_LT(aa, al * 1.02);
}

TEST(Scenario, SingleRunIncludesCompileEnergy) {
  ScenarioRunner runner(apps::app("fe"));
  const auto interp = runner.run_single(rt::Strategy::kInterpret,
                                        apps::app("fe").small_scale,
                                        radio::PowerClass::kClass4);
  const auto l3 = runner.run_single(rt::Strategy::kLocal3,
                                    apps::app("fe").small_scale,
                                    radio::PowerClass::kClass4);
  // At the small input, one L3 execution (compile included) costs more than
  // interpretation — the basis of the paper's Fig 6 small-input shape.
  EXPECT_GT(l3.total_energy_j, interp.total_energy_j);
  EXPECT_EQ(l3.compiles, 1);
}

TEST(Scenario, ProfileAccessor) {
  ScenarioRunner runner(apps::app("sort"));
  EXPECT_TRUE(runner.profile().valid);
  EXPECT_GT(runner.profile().code_size_bytes[0], 0u);
}

}  // namespace
}  // namespace javelin::sim
