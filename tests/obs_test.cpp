// Unit tests for the observability layer: trace buffers and interning,
// collector merge order, the energy ledger's exact-delta contract, the
// Chrome trace / text exporters, the JSON validity checker, and the
// Prometheus metrics registry.
#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace javelin::obs {
namespace {

TEST(TraceBuffer, InternsDeterministicInsertionOrderedIds) {
  TraceBuffer buf("t");
  EXPECT_EQ(buf.intern("alpha"), 0);
  EXPECT_EQ(buf.intern("beta"), 1);
  EXPECT_EQ(buf.intern("alpha"), 0);  // Idempotent.
  EXPECT_EQ(buf.intern("gamma"), 2);
  EXPECT_EQ(buf.string_at(1), "beta");
  EXPECT_EQ(buf.string_at(-1), "");   // No-name sentinel.
  EXPECT_EQ(buf.string_at(99), "");   // Out of range is safe.
  ASSERT_EQ(buf.strings().size(), 3u);
}

TEST(TraceBuffer, CountersAccumulate) {
  TraceBuffer buf("t");
  EXPECT_EQ(buf.counter(Counter::kRadioTxBytes), 0u);
  buf.count(Counter::kRadioTxBytes, 128);
  buf.count(Counter::kRadioTxBytes, 64);
  buf.count(Counter::kRadioTxMessages);
  EXPECT_EQ(buf.counter(Counter::kRadioTxBytes), 192u);
  EXPECT_EQ(buf.counter(Counter::kRadioTxMessages), 1u);
}

TEST(TraceCollector, OrderedByOrderKeyNotCreationOrder) {
  TraceCollector col;
  col.make_buffer("late", 2);
  col.make_buffer("early", 0);
  col.make_buffer("mid", 1);
  const auto ordered = col.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0]->track(), "early");
  EXPECT_EQ(ordered[1]->track(), "mid");
  EXPECT_EQ(ordered[2]->track(), "late");
}

TEST(EnergyLedger, SinceMatchesMeterTotalDeltaExactly) {
  energy::EnergyMeter meter;
  meter.add(energy::Subsystem::kCore, 0.1);
  meter.add(energy::Subsystem::kCommTx, 0.037);
  const energy::EnergyMeter before = meter.snapshot();
  const double e0 = meter.total();
  meter.add(energy::Subsystem::kCore, 1e-9);
  meter.add(energy::Subsystem::kDram, 3e-10);
  meter.add(energy::Subsystem::kCommRx, 0.002);
  meter.add(energy::Subsystem::kIdle, 0.5);
  const EnergyLedger d = EnergyLedger::since(meter, before);
  // The bitwise contract: total_j is the same expression on the same doubles
  // as InvokeReport::energy_j (meter-total delta), not a re-associated sum
  // of the per-subsystem deltas.
  EXPECT_EQ(d.total_j, meter.total() - e0);
  // Component deltas are subtractions of accumulated meter values, so they
  // carry the usual cancellation error relative to the nominal charges.
  using energy::Subsystem;
  EXPECT_EQ(d.compute_j, meter.of(Subsystem::kCore) - before.of(Subsystem::kCore));
  EXPECT_EQ(d.dram_j, meter.of(Subsystem::kDram) - before.of(Subsystem::kDram));
  EXPECT_NEAR(d.compute_j, 1e-9, 1e-15);
  EXPECT_NEAR(d.dram_j, 3e-10, 1e-15);
  EXPECT_DOUBLE_EQ(d.comm_j, 0.002);
  EXPECT_DOUBLE_EQ(d.idle_j, 0.5);
}

// TraceCollector owns a mutex, so it is populated in place, not returned.
void fill_sample(TraceCollector& col) {
  TraceBuffer* buf = col.make_buffer("fe/good/AA", 0);
  TraceEvent begin;
  begin.kind = EventKind::kInvokeBegin;
  begin.t_s = 0.25;
  begin.name = buf->intern("FE.integrate");
  begin.detail = buf->intern("AA");
  begin.method_id = 7;
  buf->emit(begin);
  TraceEvent decide;
  decide.kind = EventKind::kDecide;
  decide.t_s = 0.2501;
  decide.name = buf->intern("remote");
  decide.method_id = 7;
  decide.costs = {1.0, 0.5, kCostExcluded, 2.0, 3.0};
  buf->emit(decide);
  TraceEvent wait;
  wait.kind = EventKind::kPowerDown;
  wait.t_s = 0.26;
  wait.dur_s = 0.04;
  wait.ledger.idle_j = 0.001;
  wait.ledger.total_j = 0.001;
  buf->emit(wait);
  TraceEvent end;
  end.kind = EventKind::kInvokeEnd;
  end.t_s = 0.31;
  end.name = begin.name;
  end.detail = buf->intern("remote");
  end.method_id = 7;
  end.ledger.comm_j = 0.003;
  end.ledger.idle_j = 0.001;
  end.ledger.total_j = 0.004;
  buf->emit(end);
  buf->count(Counter::kRadioTxMessages, 2);
  buf->set_stat("dcache_hit_rate", 0.9375);
}

TEST(ChromeTrace, EmitsValidJsonWithTrackMetadataAndPhases) {
  TraceCollector col;
  fill_sample(col);
  const std::string json = chrome_trace_json(col);
  std::string err;
  EXPECT_TRUE(json_valid(json, &err)) << err;
  // Track metadata and the four phases are present.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("fe/good/AA"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Timestamps are simulated microseconds; the decide event carries its
  // candidate-cost vector with the excluded slot marked.
  EXPECT_NE(json.find("\"ts\":250000.000"), std::string::npos);
  EXPECT_NE(json.find("\"costs\":[1,0.5,-1,2,3]"), std::string::npos);
  // Deterministic: same logical contents, same bytes.
  TraceCollector again;
  fill_sample(again);
  EXPECT_EQ(json, chrome_trace_json(again));
}

TEST(TextDump, IsCompactAndDeterministic) {
  TraceCollector col;
  fill_sample(col);
  const std::string dump = text_dump(col);
  EXPECT_NE(dump.find("== fe/good/AA"), std::string::npos);
  EXPECT_NE(dump.find("invoke-begin"), std::string::npos);
  EXPECT_NE(dump.find("decide"), std::string::npos);
  EXPECT_NE(dump.find("counter radio_tx_messages 2"), std::string::npos);
  EXPECT_NE(dump.find("stat dcache_hit_rate 0.9375"), std::string::npos);
  TraceCollector again;
  fill_sample(again);
  EXPECT_EQ(dump, text_dump(again));
}

TEST(JsonValid, AcceptsWellFormedDocuments) {
  for (const char* ok :
       {"{}", "[]", "null", "true", "-12.5e-3", "\"a\\n\\u00e9\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}", "  [1, 2]  "}) {
    std::string err;
    EXPECT_TRUE(json_valid(ok, &err)) << ok << ": " << err;
  }
}

TEST(JsonValid, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "nul", "NaN", "Infinity",
        "01", "1.", "1e", "\"unterminated", "\"bad\\q\"", "\"\\u12g4\"",
        "{} trailing", "[1] 2", "\"a\x01b\""}) {
    std::string err;
    EXPECT_FALSE(json_valid(bad, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(JsonValid, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json_valid(deep));
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(json_valid(ok));
}

TEST(Metrics, PrometheusTextRendersAllThreeTypes) {
  MetricsRegistry reg;
  reg.declare("demo_total", MetricType::kCounter, "A counter.");
  reg.add("demo_total", label("track", "a"), 2.0);
  reg.add("demo_total", label("track", "a"), 3.0);
  reg.declare("demo_gauge", MetricType::kGauge, "A gauge.");
  reg.set("demo_gauge", "", 0.5);
  reg.set("demo_gauge", "", 0.25);  // Last write wins.
  reg.declare("demo_hist", MetricType::kHistogram, "A histogram.");
  reg.observe("demo_hist", "", 5e-4);
  reg.observe("demo_hist", "", 50.0);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP demo_total A counter.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("demo_total{track=\"a\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("demo_gauge 0.25\n"), std::string::npos);
  // Cumulative buckets: 5e-4 lands in le=0.001, 50 in le=100; +Inf = count.
  EXPECT_NE(text.find("demo_hist_bucket{le=\"0.001\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_hist_bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("demo_hist_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("demo_hist_count 2\n"), std::string::npos);
  // Deterministic regardless of family insertion order (sorted maps).
  EXPECT_LT(text.find("demo_gauge"), text.find("demo_hist"));
  EXPECT_LT(text.find("demo_hist"), text.find("demo_total"));
}

TEST(Metrics, LabelEscapesValue) {
  EXPECT_EQ(label("k", "a\"b\\c\nd"), "k=\"a\\\"b\\\\c\\nd\"");
}

TEST(Metrics, BuildMetricsAggregatesEventsCountersAndStats) {
  TraceCollector col;
  fill_sample(col);
  const std::string text = build_metrics(col).prometheus_text();
  EXPECT_NE(text.find("javelin_invocations_total{track=\"fe/good/AA\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("javelin_energy_joules_total{track=\"fe/good/AA\"} "
                      "0.004\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("javelin_radio_tx_messages_total{track=\"fe/good/AA\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("javelin_dcache_hit_rate{track=\"fe/good/AA\"} "
                      "0.9375\n"),
            std::string::npos);
  // The invoke-end energy (0.004 J) lands in the le=0.01 histogram bucket.
  EXPECT_NE(text.find("javelin_invocation_energy_joules_bucket{le=\"0.01\"} "
                      "1\n"),
            std::string::npos);
  EXPECT_NE(text.find("javelin_invocation_energy_joules_count 1\n"),
            std::string::npos);
}

}  // namespace
}  // namespace javelin::obs
