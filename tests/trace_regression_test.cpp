// Golden-trace behavioral regression gate: replays every golden scenario
// (sim/goldens.hpp) in-process and diffs its projected snapshot against the
// file checked into tests/golden/. Any divergence — a flipped decide
// outcome, a shifted compile level, a reordered retry/breaker sequence —
// fails with the first-divergence report. This is the same comparison
// `javelin_tracediff check` runs from the shell; keeping an in-process copy
// in tier-1 means the gate cannot be skipped by not invoking the CLI.
//
// The perturbation test below proves the gate actually fires: flipping one
// DecisionPolicy knob must produce a readable decide-event divergence.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/snapshot.hpp"
#include "sim/goldens.hpp"
#include "sim/scenario.hpp"

using namespace javelin;

namespace {

#ifndef JAVELIN_GOLDEN_DIR
#error "JAVELIN_GOLDEN_DIR must point at tests/golden"
#endif

std::string golden_path(const char* name) {
  return std::string(JAVELIN_GOLDEN_DIR) + "/" + name + ".snap";
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  std::size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = !std::ferror(f);
  std::fclose(f);
  return ok;
}

void check_scenario(const char* name) {
  const sim::GoldenScenario* s = sim::find_golden_scenario(name);
  ASSERT_NE(s, nullptr) << name;

  std::string text;
  ASSERT_TRUE(read_file(golden_path(name), &text))
      << "missing golden " << golden_path(name)
      << " — regenerate with `javelin_tracediff record " << name
      << "` (or the regen-goldens CMake target)";
  obs::Snapshot golden;
  ASSERT_NO_THROW(golden = obs::parse(text)) << golden_path(name);

  obs::TraceCollector collector;
  s->run(collector);
  const obs::Snapshot current = obs::project(collector, s->name);

  const obs::DiffResult d = obs::diff(golden, current);
  EXPECT_TRUE(d.identical)
      << "behavioral divergence from " << golden_path(name)
      << " — if intentional, regenerate with the regen-goldens CMake "
         "target\n"
      << d.report;
}

TEST(TraceRegression, Fig6) { check_scenario("fig6"); }
TEST(TraceRegression, Fig7) { check_scenario("fig7"); }
TEST(TraceRegression, Fig8) { check_scenario("fig8"); }
TEST(TraceRegression, AblationFaults) { check_scenario("ablation_faults"); }

// Prove the gate fires: one flipped DecisionPolicy knob (deploy-time static
// seeding) must change the projected decide sequence of an AA run and be
// reported as a readable first divergence — not slip through as "plausible
// energy totals".
TEST(TraceRegression, PerturbedDecisionPolicyDiverges) {
  const sim::ScenarioRunner runner(apps::app("fe"));
  constexpr int kExecs = 40;

  obs::TraceCollector base_col;
  runner.run(rt::Strategy::kAdaptiveAdaptive, sim::Situation::kUniform,
             kExecs, /*verify=*/true, /*config=*/nullptr,
             base_col.make_buffer("fe/AA/uniform", 0));
  const obs::Snapshot base = obs::project(base_col, "baseline");

  rt::ClientConfig seeded;
  seeded.decision.static_seed = true;
  obs::TraceCollector pert_col;
  runner.run(rt::Strategy::kAdaptiveAdaptive, sim::Situation::kUniform,
             kExecs, /*verify=*/true, &seeded,
             pert_col.make_buffer("fe/AA/uniform", 0));
  const obs::Snapshot perturbed = obs::project(pert_col, "perturbed");

  const obs::DiffResult d = obs::diff(base, perturbed);
  ASSERT_FALSE(d.identical)
      << "static_seed no longer changes AA's decision sequence — the "
         "perturbation canary has lost its subject";
  EXPECT_EQ(d.track, "fe/AA/uniform");
  EXPECT_GE(d.event_index, 0) << d.summary;
  // The report names the divergent events with both versions visible.
  EXPECT_NE(d.report.find("- golden"), std::string::npos) << d.report;
  EXPECT_NE(d.report.find("+ current"), std::string::npos) << d.report;
}

}  // namespace
