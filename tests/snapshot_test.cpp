// Tests for obs/snapshot: text-format round-trip, structural diff semantics
// (first divergence, context window, symmetry), and the JAVELIN_JOBS byte-
// identity of projected golden scenarios.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/snapshot.hpp"
#include "sim/goldens.hpp"
#include "support/error.hpp"

using namespace javelin;

namespace {

obs::SnapEvent decide_event(const char* mode, double ewma, double k) {
  obs::SnapEvent e;
  e.kind = obs::SnapKind::kDecide;
  e.method_id = 1;
  e.name = mode;
  e.a = ewma;
  e.b = k;
  e.costs = {0.25, 0.5, 1.0, 2.0, 4.0};
  return e;
}

/// A small synthetic snapshot exercising every kind and hostile strings.
obs::Snapshot synthetic() {
  obs::Snapshot snap;
  snap.label = "synthetic test% label";

  obs::SnapTrack t0;
  t0.track = "fe/small/R@Class 4";
  {
    obs::SnapEvent e;
    e.kind = obs::SnapKind::kInvoke;
    e.method_id = 1;
    e.name = "FE.integrate";
    e.detail = "AA";
    t0.events.push_back(e);
  }
  t0.events.push_back(decide_event("remote", 0.1, 3));
  {
    obs::SnapEvent e;
    e.kind = obs::SnapKind::kRemoteFailure;
    e.method_id = 1;
    e.detail = "timeout";
    e.a = 2;
    t0.events.push_back(e);
  }
  {
    obs::SnapEvent e;
    e.kind = obs::SnapKind::kBackoff;
    // An awkward double: smallest increments must survive the round trip.
    e.a = 0.1 + 0.2;  // 0.30000000000000004
    t0.events.push_back(e);
  }
  snap.tracks.push_back(t0);

  obs::SnapTrack t1;
  // Track labels with %, newline, tab, non-ASCII bytes and a trailing space.
  t1.track = "weird%track\nwith\tbytes \xc3\xa9 ";
  {
    obs::SnapEvent e;
    e.kind = obs::SnapKind::kBreaker;
    e.name = "open";
    e.detail = "closed";
    e.a = 4;
    t1.events.push_back(e);
  }
  {
    obs::SnapEvent e;
    e.kind = obs::SnapKind::kPowerDown;
    e.a = 7.7176913346008343e-07;
    t1.events.push_back(e);
  }
  {
    obs::SnapEvent e;
    e.kind = obs::SnapKind::kIdleAwake;
    e.a = 1e-300;
    t1.events.push_back(e);
  }
  snap.tracks.push_back(t1);

  // An empty track must survive too (a cell that emitted no events).
  obs::SnapTrack t2;
  t2.track = "empty";
  snap.tracks.push_back(t2);
  return snap;
}

TEST(SnapshotFormat, RoundTripIsExact) {
  const obs::Snapshot snap = synthetic();
  const std::string text = obs::render(snap);
  const obs::Snapshot back = obs::parse(text);
  EXPECT_EQ(snap, back);
  // And the text form itself is a fixed point.
  EXPECT_EQ(text, obs::render(back));
}

TEST(SnapshotFormat, HeaderAndVersion) {
  const std::string text = obs::render(synthetic());
  EXPECT_EQ(text.rfind("javelin-snapshot v1\n", 0), 0u) << text.substr(0, 40);
  // Unknown version: refused with a line-numbered error, not misparsed.
  std::string v2 = text;
  v2.replace(v2.find("v1"), 2, "v2");
  EXPECT_THROW(obs::parse(v2), FormatError);
}

TEST(SnapshotFormat, MalformedInputThrows) {
  EXPECT_THROW(obs::parse(""), FormatError);
  EXPECT_THROW(obs::parse("not a snapshot\n"), FormatError);
  // Event line before any track.
  EXPECT_THROW(
      obs::parse("javelin-snapshot v1\nlabel x\n"
                 "decide m=1 n=a d= a=0 b=0 c=0,0,0,0,0\n"),
      FormatError);
  // Truncated event line.
  EXPECT_THROW(obs::parse("javelin-snapshot v1\nlabel x\ntrack t\n"
                          "decide m=1 n=a\n"),
               FormatError);
  // Unknown event kind.
  EXPECT_THROW(obs::parse("javelin-snapshot v1\nlabel x\ntrack t\n"
                          "frobnicate m=1 n=a d= a=0 b=0 c=0,0,0,0,0\n"),
               FormatError);
}

TEST(SnapshotDiff, IdenticalAndLabelExcluded) {
  obs::Snapshot a = synthetic();
  obs::Snapshot b = synthetic();
  b.label = "recorded later under a different name";
  const obs::DiffResult d = obs::diff(a, b);
  EXPECT_TRUE(d.identical);
  EXPECT_EQ(d.track_index, -1);
  EXPECT_EQ(d.event_index, -1);
}

TEST(SnapshotDiff, FirstDivergenceLocatedAndReadable) {
  obs::Snapshot golden = synthetic();
  obs::Snapshot current = synthetic();
  // Flip the decide outcome in track 0, event 1 — the canonical silent
  // policy drift this layer exists to catch.
  current.tracks[0].events[1].name = "L2";
  const obs::DiffResult d = obs::diff(golden, current);
  ASSERT_FALSE(d.identical);
  EXPECT_EQ(d.track_index, 0);
  EXPECT_EQ(d.track, golden.tracks[0].track);
  EXPECT_EQ(d.event_index, 1);
  // The report shows both versions of the divergent event with context.
  EXPECT_NE(d.report.find("- golden"), std::string::npos) << d.report;
  EXPECT_NE(d.report.find("+ current"), std::string::npos) << d.report;
  EXPECT_NE(d.report.find("decide"), std::string::npos) << d.report;
  EXPECT_NE(d.report.find("remote"), std::string::npos) << d.report;
  EXPECT_NE(d.report.find("L2"), std::string::npos) << d.report;
  // JSON form is strict JSON.
  std::string err;
  EXPECT_TRUE(obs::json_valid(obs::diff_json(d), &err)) << err;
}

TEST(SnapshotDiff, LocationIsSymmetric) {
  obs::Snapshot a = synthetic();
  obs::Snapshot b = synthetic();
  b.tracks[1].events[0].name = "half-open";
  const obs::DiffResult ab = obs::diff(a, b);
  const obs::DiffResult ba = obs::diff(b, a);
  ASSERT_FALSE(ab.identical);
  ASSERT_FALSE(ba.identical);
  EXPECT_EQ(ab.track_index, ba.track_index);
  EXPECT_EQ(ab.event_index, ba.event_index);
  EXPECT_EQ(ab.track, ba.track);
}

TEST(SnapshotDiff, MissingTailAndExtraEvents) {
  obs::Snapshot golden = synthetic();
  obs::Snapshot current = synthetic();
  current.tracks[0].events.pop_back();
  const obs::DiffResult d = obs::diff(golden, current);
  ASSERT_FALSE(d.identical);
  EXPECT_EQ(d.track_index, 0);
  // Diverges where the common prefix ends.
  EXPECT_EQ(d.event_index,
            static_cast<std::int64_t>(current.tracks[0].events.size()));
  EXPECT_NE(d.summary.find("event count"), std::string::npos) << d.summary;
}

TEST(SnapshotDiff, TrackLevelDivergence) {
  obs::Snapshot golden = synthetic();
  obs::Snapshot current = synthetic();
  current.tracks[2].track = "renamed";
  const obs::DiffResult renamed = obs::diff(golden, current);
  ASSERT_FALSE(renamed.identical);
  EXPECT_EQ(renamed.track_index, 2);
  EXPECT_EQ(renamed.event_index, -1);

  obs::Snapshot shorter = synthetic();
  shorter.tracks.pop_back();
  const obs::DiffResult missing = obs::diff(golden, shorter);
  ASSERT_FALSE(missing.identical);
  EXPECT_EQ(missing.track_index, 2);
  EXPECT_EQ(missing.event_index, -1);
}

TEST(SnapshotDiff, VersionMismatchRefused) {
  obs::Snapshot a = synthetic();
  obs::Snapshot b = synthetic();
  b.version = 2;
  const obs::DiffResult d = obs::diff(a, b);
  ASSERT_FALSE(d.identical);
  EXPECT_NE(d.summary.find("version"), std::string::npos) << d.summary;
}

// The load-bearing determinism claim: a golden scenario projects to the
// byte-identical snapshot whether its cells run serially or on a pool.
TEST(SnapshotDeterminism, JobsInvariant) {
  const sim::GoldenScenario* fig8 = sim::find_golden_scenario("fig8");
  ASSERT_NE(fig8, nullptr);

  setenv("JAVELIN_JOBS", "1", 1);
  obs::TraceCollector serial;
  fig8->run(serial);
  const std::string serial_text = obs::render(obs::project(serial, "fig8"));

  setenv("JAVELIN_JOBS", "8", 1);
  obs::TraceCollector pooled;
  fig8->run(pooled);
  const std::string pooled_text = obs::render(obs::project(pooled, "fig8"));
  unsetenv("JAVELIN_JOBS");

  EXPECT_EQ(serial_text, pooled_text);
}

}  // namespace
