// Containment oracle for the static energy-bound analysis (analysis/wcec.hpp):
// for every app in the corpus, at every execution tier (pure interpreter and
// JIT Levels 1..3), the exact metered computation energy of one invocation of
// the potential method must lie inside the statically computed interval
// [bcec_j, wcec_j]. The interval is computed *before* the invocation from the
// class files plus the exact invocation arguments (values and array lengths),
// so the bound is a real prediction, not a fit.
//
// Falsifiability: an infinite wcec makes containment trivially true on the
// upper side, so the test additionally requires a finite wcec on a healthy
// fraction of the corpus, and bcec > 0 everywhere (the entry spills plus one
// dispatch are always charged, so a zero lower bound would be a bug).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "analysis/intervals.hpp"
#include "analysis/lengths.hpp"
#include "analysis/wcec.hpp"
#include "apps/app.hpp"
#include "jit/compiler.hpp"
#include "rt/device.hpp"
#include "support/rng.hpp"

namespace javelin {
namespace {

/// Exact per-argument facts for the root invocation: int values as singleton
/// intervals, array refs with their exact length. Objects stay "non-null ref,
/// nothing else known" — the header sentinel distinguishes the two (see
/// jvm/vm.hpp header layout).
std::vector<analysis::ArgFact> facts_for(const rt::Device& dev,
                                         std::span<const jvm::Value> args) {
  std::vector<analysis::ArgFact> facts(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const jvm::Value& v = args[i];
    analysis::ArgFact& f = facts[i];
    switch (v.kind) {
      case jvm::TypeKind::kInt:
        f.value = analysis::Interval::constant(v.i);
        break;
      case jvm::TypeKind::kRef: {
        if (v.ref == mem::kNullAddr) break;
        f.non_null = true;
        std::uint8_t buf[4];
        dev.arena.copy_out(v.ref + 4, buf, sizeof(buf));
        std::uint32_t word = 0;
        std::memcpy(&word, buf, sizeof(word));
        if (word != jvm::kObjPadSentinel) {
          f.is_array = true;
          f.array_len =
              analysis::Interval::constant(dev.vm.array_length(v.ref));
        }
        break;
      }
      default:
        break;
    }
  }
  return facts;
}

/// Deploy-time per-method range proofs (the same conversion
/// rt::Client::seed_range_facts performs). Feeding them into the test's JIT
/// compiles means the JAVELIN_SHADOW=1 ride-along run of this binary
/// cross-validates every range-proven guard elision at runtime.
std::vector<std::vector<std::uint8_t>> range_facts(const jvm::Jvm& vm) {
  std::vector<const jvm::ClassFile*> classes;
  for (std::size_t c = 0; c < vm.num_classes(); ++c)
    classes.push_back(&vm.cls(static_cast<std::int32_t>(c)).cf);
  jvm::ClassSetResolver resolver;
  for (const jvm::ClassFile* cf : classes) resolver.add(cf);
  const analysis::LengthAnalysis la = analysis::analyze_lengths(classes);
  std::vector<std::vector<std::uint8_t>> out(vm.num_methods());
  for (std::size_t i = 0; i < vm.num_methods(); ++i) {
    const jvm::RtMethod& m = vm.method(static_cast<std::int32_t>(i));
    std::vector<analysis::ArgFact> facts;
    if (const analysis::MethodLengthFacts* f =
            la.incomplete ? nullptr : la.find(m.info);
        f != nullptr && f->valid()) {
      facts.resize(f->params.size());
      for (std::size_t p = 0; p < f->params.size(); ++p) {
        if (!f->params[p].non_null) continue;
        facts[p].non_null = true;
        facts[p].is_array = true;
        facts[p].array_len = analysis::Interval{f->params[p].min_len,
                                                analysis::Interval::kI32Max};
      }
    }
    const analysis::MethodIntervals mi = analysis::analyze_intervals(
        vm.cls(m.class_id).cf, *m.info, &resolver, facts);
    if (!mi.converged) continue;  // Fail closed.
    bool any = false;
    for (const char flag : mi.proven_inbounds) any = any || flag != 0;
    if (any) out[i].assign(mi.proven_inbounds.begin(),
                           mi.proven_inbounds.end());
  }
  return out;
}

struct TierOutcome {
  analysis::EnergyInterval bound;
  double measured = 0.0;
};

/// Predict, then execute, one invocation of the app's potential method at
/// `tier` (0 = forced interpreter, 1..3 = the JIT plan compiled and installed
/// at that level) on a fresh device.
TierOutcome run_tier(const apps::App& a, int tier) {
  rt::Device dev(isa::client_machine());
  dev.core.step_limit = ~0ULL;
  dev.deploy(a.classes);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
  EXPECT_GE(mid, 0) << a.name;

  std::vector<const jvm::ClassFile*> classes;
  for (std::size_t c = 0; c < dev.vm.num_classes(); ++c)
    classes.push_back(&dev.vm.cls(static_cast<std::int32_t>(c)).cf);
  analysis::WcecAnalysis wcec(classes, dev.cfg.energy);
  for (std::size_t i = 0; i < dev.vm.num_methods(); ++i)
    wcec.bind_method(static_cast<std::int32_t>(i),
                     dev.vm.method(static_cast<std::int32_t>(i)).info);

  if (tier == 0) {
    dev.engine.set_force_interpret(true);
  } else {
    // The paper's compilation plan: the potential method plus its callees,
    // all at the same level. Non-compilable methods stay interpreted — the
    // analysis must be told exactly what is installed, nothing more.
    std::vector<std::int32_t> plan{mid};
    for (std::int32_t callee : jit::collect_callees(dev.vm, mid))
      plan.push_back(callee);
    const auto ranges = range_facts(dev.vm);
    for (std::int32_t id : plan) {
      try {
        jit::CompileOptions copts{.opt_level = tier};
        if (static_cast<std::size_t>(id) < ranges.size() &&
            !ranges[static_cast<std::size_t>(id)].empty())
          copts.range_inbounds = &ranges[static_cast<std::size_t>(id)];
        auto res = jit::compile_method(dev.vm, id, copts, dev.cfg.energy);
        dev.engine.install(id, std::move(res.program), tier);
      } catch (const jit::CompileError&) {
        // Interpreted fallback, same as the runtime's plan compiler.
      }
    }
    for (std::int32_t id : plan)
      if (const isa::NativeProgram* p = dev.engine.compiled(id))
        wcec.set_native(tier, dev.vm.method(id).info, p);
  }

  Rng rng(20260808);
  const double scale =
      a.profile_scales.empty() ? a.small_scale : a.profile_scales.front();
  auto args = a.make_args(dev.vm, scale, rng);
  const auto facts = facts_for(dev, args);

  TierOutcome out;
  out.bound = wcec.bounds(dev.vm.method(mid).info, tier, facts);

  const auto e0 = dev.meter.snapshot();
  (void)dev.engine.invoke(mid, args);
  out.measured = dev.meter.since(e0).computation();
  return out;
}

TEST(WcecOracle, ContainmentAcrossCorpusAndTiers) {
  int finite_wcec = 0;
  int total = 0;
  for (const apps::App& a : apps::registry()) {
    for (int tier = 0; tier < analysis::WcecAnalysis::kNumTiers; ++tier) {
      SCOPED_TRACE(a.name + "/tier" + std::to_string(tier));
      const TierOutcome r = run_tier(a, tier);
      ++total;
      EXPECT_GT(r.measured, 0.0);
      // The lower bound is always live: entry spills + at least one
      // dispatched instruction.
      EXPECT_GT(r.bound.bcec_j, 0.0);
      EXPECT_TRUE(r.bound.contains(r.measured))
          << "measured " << r.measured << " J outside [" << r.bound.bcec_j
          << ", " << r.bound.wcec_j << "] J";
      if (r.bound.bounded()) ++finite_wcec;
    }
  }
  // Anti-triviality: wcec = +inf satisfies containment vacuously on the
  // upper side, so demand real finite bounds on a good chunk of the corpus.
  // Currently 12/32 are finite (fe all tiers; pf/mf/hpf/db at L0-L1); the
  // rest are expected infinities (sort's recursion, unconditioned callee
  // summaries in ed/jess, opt>=2 native shapes the trip rule cannot read).
  EXPECT_GE(finite_wcec, total / 3)
      << "too few finite WCECs (" << finite_wcec << "/" << total
      << ") - the worst-case side of the oracle is not being exercised";
}

/// The interval must shrink (or stay equal) when the analysis is given the
/// exact arguments versus no facts at all — and both must contain the
/// measurement. Uses the interpreter tier where argument-driven loop bounds
/// matter most.
TEST(WcecOracle, ArgumentFactsTightenInterpBounds) {
  const apps::App& a = apps::app("sort");
  rt::Device dev(isa::client_machine());
  dev.core.step_limit = ~0ULL;
  dev.deploy(a.classes);
  dev.engine.set_force_interpret(true);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
  ASSERT_GE(mid, 0);

  std::vector<const jvm::ClassFile*> classes;
  for (std::size_t c = 0; c < dev.vm.num_classes(); ++c)
    classes.push_back(&dev.vm.cls(static_cast<std::int32_t>(c)).cf);
  analysis::WcecAnalysis wcec(classes, dev.cfg.energy);
  for (std::size_t i = 0; i < dev.vm.num_methods(); ++i)
    wcec.bind_method(static_cast<std::int32_t>(i),
                     dev.vm.method(static_cast<std::int32_t>(i)).info);

  Rng rng(20260808);
  auto args = a.make_args(dev.vm, a.small_scale, rng);
  const auto facts = facts_for(dev, args);

  const jvm::MethodInfo* root = dev.vm.method(mid).info;
  const analysis::EnergyInterval with_facts = wcec.bounds(root, 0, facts);
  const analysis::EnergyInterval no_facts = wcec.bounds(root, 0);

  const auto e0 = dev.meter.snapshot();
  (void)dev.engine.invoke(mid, args);
  const double measured = dev.meter.since(e0).computation();

  EXPECT_TRUE(with_facts.contains(measured));
  EXPECT_TRUE(no_facts.contains(measured));
  EXPECT_GE(with_facts.bcec_j, no_facts.bcec_j);
  EXPECT_LE(with_facts.wcec_j, no_facts.wcec_j);
}

}  // namespace
}  // namespace javelin
