// Fail-closed regression tests for the static-analysis guarantees.
//
// Two subsystems promise "never guess" semantics and both are pinned here:
//
//  * dataflow.hpp's solve_forward must report kBoundExhausted — never a
//    fake convergence — when max_transfers truncates a slow lattice,
//    including the edge case where the bound lands on the very last
//    transfer (the result then *equals* the fixed point, but the solver
//    cannot know that without the propagation it skipped).
//  * lengths.cpp (interprocedural array-length facts) must poison every
//    method's facts on any unresolved call site, keep recursive call
//    graphs terminating with facts that only descend, and meet
//    multi-caller facts down to the weakest site. Facts must never
//    strengthen across a fail-closed boundary.
#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/lengths.hpp"
#include "jvm/builder.hpp"

namespace javelin::analysis {
namespace {

// ---------------------------------------------------------------------------
// solve_forward transfer bound
// ---------------------------------------------------------------------------

// 0 -> 1, 1 -> 1 (self loop), 1 -> 2 with an ascending counter lattice:
// the loop block's in-state climbs by one per visit, so convergence needs
// ~kCeiling transfers — a deliberately slow chain standing in for interval
// analysis without widening.
constexpr int kCeiling = 1000;

struct Counter {
  Cfg g;
  DomInfo dom;
  Counter() {
    g.succs = {{1}, {1, 2}, {}};
    g.compute_preds();
    dom = compute_dominators(g);
  }
  FixpointResult<int> solve(std::uint64_t max_transfers) const {
    return solve_forward(
        g, dom, /*entry=*/0,
        [](int& into, const int& from) {
          if (from <= into) return false;
          into = from;
          return true;
        },
        [](std::int32_t b, const int& in) {
          return b == 1 && in < kCeiling ? in + 1 : in;
        },
        max_transfers);
  }
};

TEST(FixpointBound, SlowLatticeConvergesWithoutBound) {
  const Counter c;
  const auto r = c.solve(/*max_transfers=*/0);
  EXPECT_EQ(r.status, FixpointStatus::kConverged);
  EXPECT_EQ(r.in[2], kCeiling);
  EXPECT_GT(r.transfer_count, static_cast<std::uint64_t>(kCeiling));
}

TEST(FixpointBound, TruncationReportsBoundExhausted) {
  const Counter c;
  const auto r = c.solve(/*max_transfers=*/50);
  EXPECT_EQ(r.status, FixpointStatus::kBoundExhausted);
  EXPECT_EQ(r.transfer_count, 50u);
  // The returned states are a truncation, not the fixed point — a caller
  // that ignored `status` would consume this unsound partial result.
  EXPECT_LT(r.in[2], kCeiling);
}

TEST(FixpointBound, BoundOnFinalTransferStillReportsExhaustion) {
  // Acyclic chain 0 -> 1 -> 2 with an identity transfer converges in
  // exactly three transfers (one RPO sweep). A bound of exactly three
  // lands on the last transfer: the states happen to equal the fixed
  // point, but the solver must still report exhaustion because proving
  // that would require the propagation it just skipped.
  Cfg g;
  g.succs = {{1}, {2}, {}};
  g.compute_preds();
  const DomInfo dom = compute_dominators(g);
  const auto join = [](int& into, const int& from) {
    if (from <= into) return false;
    into = from;
    return true;
  };
  const auto transfer = [](std::int32_t, const int& in) { return in; };

  const auto free_run = solve_forward(g, dom, 7, join, transfer);
  ASSERT_EQ(free_run.status, FixpointStatus::kConverged);
  ASSERT_EQ(free_run.transfer_count, 3u);

  const auto bounded = solve_forward(g, dom, 7, join, transfer,
                                     /*max_transfers=*/3);
  EXPECT_EQ(bounded.status, FixpointStatus::kBoundExhausted);
  EXPECT_EQ(bounded.transfer_count, 3u);
}

// ---------------------------------------------------------------------------
// lengths.cpp fail-closed paths
// ---------------------------------------------------------------------------

const jvm::MethodInfo* find_method(const jvm::ClassFile& cf,
                                   const std::string& name) {
  for (const auto& m : cf.methods)
    if (m.name == name) return &m;
  return nullptr;
}

TEST(LengthsFailClosed, UnresolvedCalleePoisonsAllFacts) {
  // A.entry calls A.take(new int[8]) — a perfectly good fact — and also
  // B.helper(). With B loaded the set is closed and take's fact is valid;
  // with B missing the ONE unresolved site must invalidate every fact in
  // the analysis, including take's unrelated one.
  jvm::ClassBuilder bb("B");
  bb.method("helper", {{}, jvm::TypeKind::kVoid}).ret();
  const jvm::ClassFile b = bb.build();

  jvm::ClassBuilder ab("A");
  auto& entry = ab.method("entry", {{}, jvm::TypeKind::kVoid});
  entry.potential(jvm::SizeParamSpec{});
  entry.iconst(8)
      .newarray(jvm::TypeKind::kInt)
      .invokestatic("A", "take")
      .invokestatic("B", "helper")
      .ret();
  ab.method("take", {{jvm::TypeKind::kRef}, jvm::TypeKind::kVoid}).ret();
  const jvm::ClassFile a = ab.build({&b});

  const jvm::MethodInfo* take = find_method(a, "take");
  ASSERT_NE(take, nullptr);

  // Control: closed world — the fact is consumable and exact.
  const LengthAnalysis closed = analyze_lengths({&a, &b});
  EXPECT_FALSE(closed.incomplete);
  const MethodLengthFacts* good = closed.find(take);
  ASSERT_NE(good, nullptr);
  ASSERT_TRUE(good->valid());
  ASSERT_EQ(good->params.size(), 1u);
  EXPECT_TRUE(good->params[0].non_null);
  EXPECT_EQ(good->params[0].min_len, 8);

  // Open world: one unresolved site, zero consumable facts anywhere.
  const LengthAnalysis open = analyze_lengths({&a});
  EXPECT_TRUE(open.incomplete);
  for (const auto& [method, facts] : open.methods) {
    (void)method;
    EXPECT_FALSE(facts.valid());
  }
}

TEST(LengthsFailClosed, RecursionTerminatesAndFactsOnlyDescend) {
  // Two self-recursive shapes:
  //  * rec is entered with new int[8] but recurses with new int[2]; its
  //    fact must descend to the weakest reaching site (min_len 2) — the
  //    self-edge participates in the meet like any other caller.
  //  * thru recurses passing its own parameter through unchanged; the
  //    fixpoint must terminate (optimistic descent, no oscillation) and
  //    keep the entry fact (min_len 8) — pass-through recursion does not
  //    erode what every reaching site actually guarantees.
  jvm::ClassBuilder cb("R");
  auto& entry = cb.method("entry", {{}, jvm::TypeKind::kVoid});
  entry.potential(jvm::SizeParamSpec{});
  entry.iconst(8)
      .newarray(jvm::TypeKind::kInt)
      .invokestatic("R", "rec")
      .iconst(8)
      .newarray(jvm::TypeKind::kInt)
      .invokestatic("R", "thru")
      .ret();
  auto& rec = cb.method("rec", {{jvm::TypeKind::kRef}, jvm::TypeKind::kVoid});
  rec.iconst(2).newarray(jvm::TypeKind::kInt).invokestatic("R", "rec").ret();
  auto& thru =
      cb.method("thru", {{jvm::TypeKind::kRef}, jvm::TypeKind::kVoid});
  thru.aload("p0").invokestatic("R", "thru").ret();
  const jvm::ClassFile cf = cb.build();

  const LengthAnalysis la = analyze_lengths({&cf});
  EXPECT_FALSE(la.incomplete);

  const MethodLengthFacts* rf = la.find(find_method(cf, "rec"));
  ASSERT_NE(rf, nullptr);
  ASSERT_TRUE(rf->valid());
  EXPECT_TRUE(rf->params[0].non_null);
  EXPECT_EQ(rf->params[0].min_len, 2);  // Weakened by the self-site, not 8.

  const MethodLengthFacts* tf = la.find(find_method(cf, "thru"));
  ASSERT_NE(tf, nullptr);
  ASSERT_TRUE(tf->valid());
  EXPECT_TRUE(tf->params[0].non_null);
  EXPECT_EQ(tf->params[0].min_len, 8);  // Pass-through preserves the fact.
}

TEST(LengthsFailClosed, MixedCallersMeetToWeakestSite) {
  // g has two callers: strong passes new int[10], weak (a root) forwards
  // its own unconstrained parameter. The meet must drop g's fact to the
  // unknown bottom — never keep the strong caller's proof. g2, reached
  // from strong only, keeps the exact fact, isolating the weakening to
  // the weak call site.
  jvm::ClassBuilder cb("M");
  auto& strong = cb.method("strong", {{}, jvm::TypeKind::kVoid});
  strong.potential(jvm::SizeParamSpec{});
  strong.iconst(10)
      .newarray(jvm::TypeKind::kInt)
      .invokestatic("M", "g")
      .iconst(10)
      .newarray(jvm::TypeKind::kInt)
      .invokestatic("M", "g2")
      .ret();
  auto& weak =
      cb.method("weak", {{jvm::TypeKind::kRef}, jvm::TypeKind::kVoid});
  weak.potential(jvm::SizeParamSpec{});
  weak.aload("p0").invokestatic("M", "g").ret();
  cb.method("g", {{jvm::TypeKind::kRef}, jvm::TypeKind::kVoid}).ret();
  cb.method("g2", {{jvm::TypeKind::kRef}, jvm::TypeKind::kVoid}).ret();
  const jvm::ClassFile cf = cb.build();

  const LengthAnalysis la = analyze_lengths({&cf});
  EXPECT_FALSE(la.incomplete);

  const MethodLengthFacts* gf = la.find(find_method(cf, "g"));
  ASSERT_NE(gf, nullptr);
  ASSERT_TRUE(gf->valid());  // Constrained by sites — just weakly.
  EXPECT_FALSE(gf->params[0].non_null);
  EXPECT_EQ(gf->params[0].min_len, 0);

  const MethodLengthFacts* g2f = la.find(find_method(cf, "g2"));
  ASSERT_NE(g2f, nullptr);
  ASSERT_TRUE(g2f->valid());
  EXPECT_TRUE(g2f->params[0].non_null);
  EXPECT_EQ(g2f->params[0].min_len, 10);

  // Roots themselves never gain consumable facts.
  const MethodLengthFacts* wf = la.find(find_method(cf, "weak"));
  ASSERT_NE(wf, nullptr);
  EXPECT_FALSE(wf->valid());
}

}  // namespace
}  // namespace javelin::analysis
