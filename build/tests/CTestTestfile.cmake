# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/classfile_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/jit_test[1]_include.cmake")
include("/root/repo/build/tests/serializer_test[1]_include.cmake")
include("/root/repo/build/tests/radio_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_differential_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/opcode_semantics_test[1]_include.cmake")
