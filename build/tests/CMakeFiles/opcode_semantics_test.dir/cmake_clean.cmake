file(REMOVE_RECURSE
  "CMakeFiles/opcode_semantics_test.dir/opcode_semantics_test.cpp.o"
  "CMakeFiles/opcode_semantics_test.dir/opcode_semantics_test.cpp.o.d"
  "opcode_semantics_test"
  "opcode_semantics_test.pdb"
  "opcode_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opcode_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
