# Empty compiler generated dependencies file for opcode_semantics_test.
# This may be replaced when dependencies are built.
