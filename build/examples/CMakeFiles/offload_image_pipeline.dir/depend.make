# Empty dependencies file for offload_image_pipeline.
# This may be replaced when dependencies are built.
