file(REMOVE_RECURSE
  "CMakeFiles/offload_image_pipeline.dir/offload_image_pipeline.cpp.o"
  "CMakeFiles/offload_image_pipeline.dir/offload_image_pipeline.cpp.o.d"
  "offload_image_pipeline"
  "offload_image_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_image_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
