# Empty dependencies file for javelin_cli.
# This may be replaced when dependencies are built.
