file(REMOVE_RECURSE
  "CMakeFiles/javelin_cli.dir/javelin_cli.cpp.o"
  "CMakeFiles/javelin_cli.dir/javelin_cli.cpp.o.d"
  "javelin_cli"
  "javelin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
