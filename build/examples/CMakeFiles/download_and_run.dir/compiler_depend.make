# Empty compiler generated dependencies file for download_and_run.
# This may be replaced when dependencies are built.
