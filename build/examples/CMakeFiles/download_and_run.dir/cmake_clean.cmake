file(REMOVE_RECURSE
  "CMakeFiles/download_and_run.dir/download_and_run.cpp.o"
  "CMakeFiles/download_and_run.dir/download_and_run.cpp.o.d"
  "download_and_run"
  "download_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/download_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
