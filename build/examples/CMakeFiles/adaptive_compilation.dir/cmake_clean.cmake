file(REMOVE_RECURSE
  "CMakeFiles/adaptive_compilation.dir/adaptive_compilation.cpp.o"
  "CMakeFiles/adaptive_compilation.dir/adaptive_compilation.cpp.o.d"
  "adaptive_compilation"
  "adaptive_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
