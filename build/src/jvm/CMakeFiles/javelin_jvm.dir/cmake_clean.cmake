file(REMOVE_RECURSE
  "CMakeFiles/javelin_jvm.dir/builder.cpp.o"
  "CMakeFiles/javelin_jvm.dir/builder.cpp.o.d"
  "CMakeFiles/javelin_jvm.dir/classfile.cpp.o"
  "CMakeFiles/javelin_jvm.dir/classfile.cpp.o.d"
  "CMakeFiles/javelin_jvm.dir/engine.cpp.o"
  "CMakeFiles/javelin_jvm.dir/engine.cpp.o.d"
  "CMakeFiles/javelin_jvm.dir/interp.cpp.o"
  "CMakeFiles/javelin_jvm.dir/interp.cpp.o.d"
  "CMakeFiles/javelin_jvm.dir/opcodes.cpp.o"
  "CMakeFiles/javelin_jvm.dir/opcodes.cpp.o.d"
  "CMakeFiles/javelin_jvm.dir/value.cpp.o"
  "CMakeFiles/javelin_jvm.dir/value.cpp.o.d"
  "CMakeFiles/javelin_jvm.dir/verifier.cpp.o"
  "CMakeFiles/javelin_jvm.dir/verifier.cpp.o.d"
  "CMakeFiles/javelin_jvm.dir/vm.cpp.o"
  "CMakeFiles/javelin_jvm.dir/vm.cpp.o.d"
  "libjavelin_jvm.a"
  "libjavelin_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
