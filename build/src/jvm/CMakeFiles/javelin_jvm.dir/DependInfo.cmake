
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/builder.cpp" "src/jvm/CMakeFiles/javelin_jvm.dir/builder.cpp.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/builder.cpp.o.d"
  "/root/repo/src/jvm/classfile.cpp" "src/jvm/CMakeFiles/javelin_jvm.dir/classfile.cpp.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/classfile.cpp.o.d"
  "/root/repo/src/jvm/engine.cpp" "src/jvm/CMakeFiles/javelin_jvm.dir/engine.cpp.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/engine.cpp.o.d"
  "/root/repo/src/jvm/interp.cpp" "src/jvm/CMakeFiles/javelin_jvm.dir/interp.cpp.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/interp.cpp.o.d"
  "/root/repo/src/jvm/opcodes.cpp" "src/jvm/CMakeFiles/javelin_jvm.dir/opcodes.cpp.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/opcodes.cpp.o.d"
  "/root/repo/src/jvm/value.cpp" "src/jvm/CMakeFiles/javelin_jvm.dir/value.cpp.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/value.cpp.o.d"
  "/root/repo/src/jvm/verifier.cpp" "src/jvm/CMakeFiles/javelin_jvm.dir/verifier.cpp.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/verifier.cpp.o.d"
  "/root/repo/src/jvm/vm.cpp" "src/jvm/CMakeFiles/javelin_jvm.dir/vm.cpp.o" "gcc" "src/jvm/CMakeFiles/javelin_jvm.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/javelin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/javelin_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/javelin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/javelin_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
