file(REMOVE_RECURSE
  "CMakeFiles/javelin_support.dir/fit.cpp.o"
  "CMakeFiles/javelin_support.dir/fit.cpp.o.d"
  "CMakeFiles/javelin_support.dir/rng.cpp.o"
  "CMakeFiles/javelin_support.dir/rng.cpp.o.d"
  "CMakeFiles/javelin_support.dir/stats.cpp.o"
  "CMakeFiles/javelin_support.dir/stats.cpp.o.d"
  "CMakeFiles/javelin_support.dir/table.cpp.o"
  "CMakeFiles/javelin_support.dir/table.cpp.o.d"
  "libjavelin_support.a"
  "libjavelin_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
