file(REMOVE_RECURSE
  "libjavelin_support.a"
)
