# Empty compiler generated dependencies file for javelin_support.
# This may be replaced when dependencies are built.
