# Empty dependencies file for javelin_rt.
# This may be replaced when dependencies are built.
