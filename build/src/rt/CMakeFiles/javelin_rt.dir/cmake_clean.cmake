file(REMOVE_RECURSE
  "CMakeFiles/javelin_rt.dir/client.cpp.o"
  "CMakeFiles/javelin_rt.dir/client.cpp.o.d"
  "CMakeFiles/javelin_rt.dir/profiler.cpp.o"
  "CMakeFiles/javelin_rt.dir/profiler.cpp.o.d"
  "CMakeFiles/javelin_rt.dir/server.cpp.o"
  "CMakeFiles/javelin_rt.dir/server.cpp.o.d"
  "libjavelin_rt.a"
  "libjavelin_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
