file(REMOVE_RECURSE
  "libjavelin_rt.a"
)
