file(REMOVE_RECURSE
  "CMakeFiles/javelin_net.dir/protocol.cpp.o"
  "CMakeFiles/javelin_net.dir/protocol.cpp.o.d"
  "CMakeFiles/javelin_net.dir/serializer.cpp.o"
  "CMakeFiles/javelin_net.dir/serializer.cpp.o.d"
  "libjavelin_net.a"
  "libjavelin_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
