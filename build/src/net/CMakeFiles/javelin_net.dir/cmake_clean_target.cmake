file(REMOVE_RECURSE
  "libjavelin_net.a"
)
