# Empty compiler generated dependencies file for javelin_net.
# This may be replaced when dependencies are built.
