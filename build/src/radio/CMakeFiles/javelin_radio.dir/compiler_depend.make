# Empty compiler generated dependencies file for javelin_radio.
# This may be replaced when dependencies are built.
