file(REMOVE_RECURSE
  "libjavelin_radio.a"
)
