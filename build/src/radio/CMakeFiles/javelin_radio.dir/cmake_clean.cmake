file(REMOVE_RECURSE
  "CMakeFiles/javelin_radio.dir/radio.cpp.o"
  "CMakeFiles/javelin_radio.dir/radio.cpp.o.d"
  "libjavelin_radio.a"
  "libjavelin_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
