# Empty compiler generated dependencies file for javelin_energy.
# This may be replaced when dependencies are built.
