file(REMOVE_RECURSE
  "libjavelin_energy.a"
)
