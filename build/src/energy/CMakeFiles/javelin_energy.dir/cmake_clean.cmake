file(REMOVE_RECURSE
  "CMakeFiles/javelin_energy.dir/energy.cpp.o"
  "CMakeFiles/javelin_energy.dir/energy.cpp.o.d"
  "libjavelin_energy.a"
  "libjavelin_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
