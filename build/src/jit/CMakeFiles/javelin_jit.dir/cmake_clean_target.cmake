file(REMOVE_RECURSE
  "libjavelin_jit.a"
)
