# Empty compiler generated dependencies file for javelin_jit.
# This may be replaced when dependencies are built.
