
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jit/analysis.cpp" "src/jit/CMakeFiles/javelin_jit.dir/analysis.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/analysis.cpp.o.d"
  "/root/repo/src/jit/bce.cpp" "src/jit/CMakeFiles/javelin_jit.dir/bce.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/bce.cpp.o.d"
  "/root/repo/src/jit/codegen.cpp" "src/jit/CMakeFiles/javelin_jit.dir/codegen.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/codegen.cpp.o.d"
  "/root/repo/src/jit/inline.cpp" "src/jit/CMakeFiles/javelin_jit.dir/inline.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/inline.cpp.o.d"
  "/root/repo/src/jit/ir.cpp" "src/jit/CMakeFiles/javelin_jit.dir/ir.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/ir.cpp.o.d"
  "/root/repo/src/jit/jit.cpp" "src/jit/CMakeFiles/javelin_jit.dir/jit.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/jit.cpp.o.d"
  "/root/repo/src/jit/opt.cpp" "src/jit/CMakeFiles/javelin_jit.dir/opt.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/opt.cpp.o.d"
  "/root/repo/src/jit/regalloc.cpp" "src/jit/CMakeFiles/javelin_jit.dir/regalloc.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/regalloc.cpp.o.d"
  "/root/repo/src/jit/translate.cpp" "src/jit/CMakeFiles/javelin_jit.dir/translate.cpp.o" "gcc" "src/jit/CMakeFiles/javelin_jit.dir/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jvm/CMakeFiles/javelin_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/javelin_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/javelin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/javelin_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/javelin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
