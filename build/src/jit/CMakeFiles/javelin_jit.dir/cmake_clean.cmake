file(REMOVE_RECURSE
  "CMakeFiles/javelin_jit.dir/analysis.cpp.o"
  "CMakeFiles/javelin_jit.dir/analysis.cpp.o.d"
  "CMakeFiles/javelin_jit.dir/bce.cpp.o"
  "CMakeFiles/javelin_jit.dir/bce.cpp.o.d"
  "CMakeFiles/javelin_jit.dir/codegen.cpp.o"
  "CMakeFiles/javelin_jit.dir/codegen.cpp.o.d"
  "CMakeFiles/javelin_jit.dir/inline.cpp.o"
  "CMakeFiles/javelin_jit.dir/inline.cpp.o.d"
  "CMakeFiles/javelin_jit.dir/ir.cpp.o"
  "CMakeFiles/javelin_jit.dir/ir.cpp.o.d"
  "CMakeFiles/javelin_jit.dir/jit.cpp.o"
  "CMakeFiles/javelin_jit.dir/jit.cpp.o.d"
  "CMakeFiles/javelin_jit.dir/opt.cpp.o"
  "CMakeFiles/javelin_jit.dir/opt.cpp.o.d"
  "CMakeFiles/javelin_jit.dir/regalloc.cpp.o"
  "CMakeFiles/javelin_jit.dir/regalloc.cpp.o.d"
  "CMakeFiles/javelin_jit.dir/translate.cpp.o"
  "CMakeFiles/javelin_jit.dir/translate.cpp.o.d"
  "libjavelin_jit.a"
  "libjavelin_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
