file(REMOVE_RECURSE
  "libjavelin_apps.a"
)
