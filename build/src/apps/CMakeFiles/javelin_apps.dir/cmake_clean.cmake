file(REMOVE_RECURSE
  "CMakeFiles/javelin_apps.dir/db.cpp.o"
  "CMakeFiles/javelin_apps.dir/db.cpp.o.d"
  "CMakeFiles/javelin_apps.dir/ed.cpp.o"
  "CMakeFiles/javelin_apps.dir/ed.cpp.o.d"
  "CMakeFiles/javelin_apps.dir/fe.cpp.o"
  "CMakeFiles/javelin_apps.dir/fe.cpp.o.d"
  "CMakeFiles/javelin_apps.dir/hpf.cpp.o"
  "CMakeFiles/javelin_apps.dir/hpf.cpp.o.d"
  "CMakeFiles/javelin_apps.dir/jess.cpp.o"
  "CMakeFiles/javelin_apps.dir/jess.cpp.o.d"
  "CMakeFiles/javelin_apps.dir/mf.cpp.o"
  "CMakeFiles/javelin_apps.dir/mf.cpp.o.d"
  "CMakeFiles/javelin_apps.dir/pf.cpp.o"
  "CMakeFiles/javelin_apps.dir/pf.cpp.o.d"
  "CMakeFiles/javelin_apps.dir/registry.cpp.o"
  "CMakeFiles/javelin_apps.dir/registry.cpp.o.d"
  "CMakeFiles/javelin_apps.dir/sort.cpp.o"
  "CMakeFiles/javelin_apps.dir/sort.cpp.o.d"
  "libjavelin_apps.a"
  "libjavelin_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
