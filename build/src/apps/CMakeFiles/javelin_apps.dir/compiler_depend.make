# Empty compiler generated dependencies file for javelin_apps.
# This may be replaced when dependencies are built.
