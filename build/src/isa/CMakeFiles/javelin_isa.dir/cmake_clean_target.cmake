file(REMOVE_RECURSE
  "libjavelin_isa.a"
)
