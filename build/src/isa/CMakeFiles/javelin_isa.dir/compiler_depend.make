# Empty compiler generated dependencies file for javelin_isa.
# This may be replaced when dependencies are built.
