file(REMOVE_RECURSE
  "CMakeFiles/javelin_isa.dir/executor.cpp.o"
  "CMakeFiles/javelin_isa.dir/executor.cpp.o.d"
  "CMakeFiles/javelin_isa.dir/machine.cpp.o"
  "CMakeFiles/javelin_isa.dir/machine.cpp.o.d"
  "CMakeFiles/javelin_isa.dir/nisa.cpp.o"
  "CMakeFiles/javelin_isa.dir/nisa.cpp.o.d"
  "libjavelin_isa.a"
  "libjavelin_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
