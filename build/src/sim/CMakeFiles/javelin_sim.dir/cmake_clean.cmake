file(REMOVE_RECURSE
  "CMakeFiles/javelin_sim.dir/scenario.cpp.o"
  "CMakeFiles/javelin_sim.dir/scenario.cpp.o.d"
  "libjavelin_sim.a"
  "libjavelin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
