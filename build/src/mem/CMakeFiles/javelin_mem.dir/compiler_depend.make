# Empty compiler generated dependencies file for javelin_mem.
# This may be replaced when dependencies are built.
