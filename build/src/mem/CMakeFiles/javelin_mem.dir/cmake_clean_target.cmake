file(REMOVE_RECURSE
  "libjavelin_mem.a"
)
