file(REMOVE_RECURSE
  "CMakeFiles/javelin_mem.dir/arena.cpp.o"
  "CMakeFiles/javelin_mem.dir/arena.cpp.o.d"
  "CMakeFiles/javelin_mem.dir/cache.cpp.o"
  "CMakeFiles/javelin_mem.dir/cache.cpp.o.d"
  "libjavelin_mem.a"
  "libjavelin_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javelin_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
