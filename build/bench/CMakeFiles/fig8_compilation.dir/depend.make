# Empty dependencies file for fig8_compilation.
# This may be replaced when dependencies are built.
