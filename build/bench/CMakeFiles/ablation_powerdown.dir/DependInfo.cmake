
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_powerdown.cpp" "bench/CMakeFiles/ablation_powerdown.dir/ablation_powerdown.cpp.o" "gcc" "bench/CMakeFiles/ablation_powerdown.dir/ablation_powerdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/javelin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/javelin_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/javelin_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/javelin_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/javelin_net.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/javelin_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/javelin_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/javelin_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/javelin_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/javelin_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/javelin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
