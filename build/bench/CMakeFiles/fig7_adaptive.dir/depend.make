# Empty dependencies file for fig7_adaptive.
# This may be replaced when dependencies are built.
