# Empty dependencies file for ablation_ewma.
# This may be replaced when dependencies are built.
