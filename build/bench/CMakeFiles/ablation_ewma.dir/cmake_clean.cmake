file(REMOVE_RECURSE
  "CMakeFiles/ablation_ewma.dir/ablation_ewma.cpp.o"
  "CMakeFiles/ablation_ewma.dir/ablation_ewma.cpp.o.d"
  "ablation_ewma"
  "ablation_ewma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ewma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
