# Empty compiler generated dependencies file for speedup_remote.
# This may be replaced when dependencies are built.
