file(REMOVE_RECURSE
  "CMakeFiles/speedup_remote.dir/speedup_remote.cpp.o"
  "CMakeFiles/speedup_remote.dir/speedup_remote.cpp.o.d"
  "speedup_remote"
  "speedup_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
