file(REMOVE_RECURSE
  "CMakeFiles/fig6_static_strategies.dir/fig6_static_strategies.cpp.o"
  "CMakeFiles/fig6_static_strategies.dir/fig6_static_strategies.cpp.o.d"
  "fig6_static_strategies"
  "fig6_static_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_static_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
