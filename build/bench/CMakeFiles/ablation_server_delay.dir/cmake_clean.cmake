file(REMOVE_RECURSE
  "CMakeFiles/ablation_server_delay.dir/ablation_server_delay.cpp.o"
  "CMakeFiles/ablation_server_delay.dir/ablation_server_delay.cpp.o.d"
  "ablation_server_delay"
  "ablation_server_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_server_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
