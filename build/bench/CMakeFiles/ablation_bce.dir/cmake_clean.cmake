file(REMOVE_RECURSE
  "CMakeFiles/ablation_bce.dir/ablation_bce.cpp.o"
  "CMakeFiles/ablation_bce.dir/ablation_bce.cpp.o.d"
  "ablation_bce"
  "ablation_bce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
