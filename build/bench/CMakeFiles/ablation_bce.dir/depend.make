# Empty dependencies file for ablation_bce.
# This may be replaced when dependencies are built.
