// Offloading an embedded image pipeline (the paper's motivating workload).
//
// Runs the Median-Filter benchmark through the full client/server stack
// under four fixed channel conditions and one fading channel, printing what
// the adaptive runtime decides per invocation and what it costs. This is the
// "aha" demo for the paper's core idea: the same method is best executed in
// different places depending on channel condition and input size.
//
//   $ ./build/examples/offload_image_pipeline

#include <cstdio>

#include "sim/scenario.hpp"

using namespace javelin;

int main() {
  const apps::App& mf = apps::app("mf");
  std::printf("profiling %s at deploy time...\n\n", mf.name.c_str());
  sim::ScenarioRunner runner(mf);

  // --- fixed channels: what does each invocation cost per strategy? --------
  std::printf("one %gx%g median filter, per strategy (mJ):\n",
              mf.large_scale, mf.large_scale);
  std::printf("%-10s", "channel");
  for (const char* s : {"R", "I", "L1", "L2", "AL"}) std::printf("%10s", s);
  std::printf("\n");
  for (auto cls : {radio::PowerClass::kClass4, radio::PowerClass::kClass2,
                   radio::PowerClass::kClass1}) {
    std::printf("%-10s", radio::power_class_name(cls));
    for (rt::Strategy s : {rt::Strategy::kRemote, rt::Strategy::kInterpret,
                           rt::Strategy::kLocal1, rt::Strategy::kLocal2,
                           rt::Strategy::kAdaptiveLocal}) {
      const auto r = runner.run_single(s, mf.large_scale, cls);
      std::printf("%10.2f", r.total_energy_j * 1e3);
    }
    std::printf("\n");
  }

  // --- a fading channel: watch the adaptive runtime switch modes -----------
  std::printf("\n60 invocations over a fading (Markov) channel, AL:\n");
  rt::Server server;
  server.deploy(runner.profiled_classes());
  radio::MarkovChannel channel(radio::MarkovChannel::default_transition(),
                               radio::PowerClass::kClass3, 0.25, 42);
  net::Link link;
  rt::Client client(rt::ClientConfig{}, server, channel, link);
  client.deploy(runner.profiled_classes());

  Rng rng(7);
  std::map<rt::ExecMode, int> modes;
  double total = 0;
  for (int i = 0; i < 60; ++i) {
    client.skip_time(0.5);
    const std::size_t mark = client.device().arena.heap_mark();
    const double scale =
        mf.profile_scales[rng.uniform_int(0, 4)];
    const auto args = mf.make_args(client.device().vm, scale, rng);
    rt::InvokeReport rep;
    client.run(mf.cls, mf.method, args, rt::Strategy::kAdaptiveLocal, &rep);
    ++modes[rep.mode];
    total += rep.energy_j;
    if (i < 10)
      std::printf("  #%02d  size=%2.0f^2  channel=%s  ->  %-6s  %7.3f mJ\n",
                  i, scale,
                  radio::power_class_name(channel.at(client.now())),
                  rt::exec_mode_name(rep.mode), rep.energy_j * 1e3);
    client.device().arena.heap_release(mark);
  }
  std::printf("  ...\nmode histogram:");
  for (const auto& [m, c] : modes)
    std::printf("  %s=%d", rt::exec_mode_name(m), c);
  std::printf("\ntotal adaptive energy: %.1f mJ\n", total * 1e3);
  return 0;
}
