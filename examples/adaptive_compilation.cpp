// Adaptive compilation (the paper's Section 3.3 / AA strategy).
//
// Shows the tradeoff the AA strategy exploits: compiling a method locally
// costs JIT energy; downloading pre-compiled native code from the trusted
// server costs radio energy that depends on the code size and the channel.
// Prints the break-even table for every benchmark and then runs one session
// where the client actually downloads code and executes it.
//
//   $ ./build/examples/adaptive_compilation

#include <cstdio>

#include "sim/scenario.hpp"

using namespace javelin;

int main() {
  const radio::CommModel comm;

  std::printf(
      "local vs remote compilation energy (mJ), per app and level\n"
      "(remote shown at Class 4 / Class 1; cheaper side marked *)\n\n");
  std::printf("%-6s %-5s %10s %14s %14s %10s\n", "app", "level", "local",
              "remote@C4", "remote@C1", "code B");
  for (const apps::App& a : apps::registry()) {
    sim::ScenarioRunner runner(a);
    const jvm::EnergyProfile& prof = runner.profile();
    for (int level = 1; level <= 3; ++level) {
      const double local = prof.compile_energy[level - 1];
      const auto bytes = prof.code_size_bytes[level - 1];
      const double r4 = comm.tx_energy(64, radio::PowerClass::kClass4) +
                        comm.rx_energy(bytes);
      const double r1 = comm.tx_energy(64, radio::PowerClass::kClass1) +
                        comm.rx_energy(bytes);
      std::printf("%-6s L%-4d %9.3f%s %13.3f%s %13.3f%s %10u\n",
                  a.name.c_str(), level, local * 1e3,
                  local <= r4 ? "*" : " ", r4 * 1e3, r4 < local ? "*" : " ",
                  r1 * 1e3, r1 < local ? "*" : " ", bytes);
    }
  }

  // --- watch AA download code over a live session ---------------------------
  std::printf("\nAA session on 'ed' (Class 4 channel):\n");
  const apps::App& ed = apps::app("ed");
  sim::ScenarioRunner runner(ed);
  rt::Server server;
  server.deploy(runner.profiled_classes());
  radio::FixedChannel channel(radio::PowerClass::kClass4);
  net::Link link;
  rt::Client client(rt::ClientConfig{}, server, channel, link);
  client.deploy(runner.profiled_classes());

  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    const std::size_t mark = client.device().arena.heap_mark();
    const jvm::Jvm& vm = client.device().vm;
    const auto a = ed.make_args(client.device().vm,
                                ed.profile_scales[2], rng);
    rt::InvokeReport rep;
    const jvm::Value result =
        client.run(ed.cls, ed.method, a, rt::Strategy::kAdaptiveAdaptive, &rep);
    const bool ok = ed.check(vm, a, vm, result);
    std::printf(
        "  #%d mode=%-6s compiled=%s%s energy=%.3f mJ correct=%s\n", i,
        rt::exec_mode_name(rep.mode), rep.compiled_this_call ? "yes" : "no",
        rep.remote_compile ? " (downloaded from server)" : "",
        rep.energy_j * 1e3, ok ? "yes" : "NO");
    client.device().arena.heap_release(mark);
  }
  return 0;
}
