// Dynamic application download — the paper's Section 1 motivation:
// "customers download new applications on demand as opposed to buying a
//  device with applications pre-installed."
//
// Ships a benchmark's class files over the simulated wireless link (charging
// the client's radio), loads them through the verifier like a real dynamic
// class load, and runs the app — comparing the one-time download energy with
// the per-execution energy it enables.
//
//   $ ./build/examples/download_and_run [app]

#include <cstdio>

#include "net/link.hpp"
#include "sim/scenario.hpp"

using namespace javelin;

int main(int argc, char** argv) {
  const apps::App& a = apps::app(argc > 1 ? argv[1] : "ed");
  sim::ScenarioRunner runner(a);  // deploy-time profiling on the server side

  // --- 1. The store serializes the (profiled) class files. -----------------
  std::uint64_t app_bytes = 0;
  std::vector<std::vector<std::uint8_t>> wire;
  for (const jvm::ClassFile& cf : runner.profiled_classes()) {
    wire.push_back(jvm::serialize_class(cf));
    app_bytes += wire.back().size();
  }
  std::printf("application '%s': %zu class file(s), %llu bytes on the wire\n",
              a.name.c_str(), wire.size(),
              static_cast<unsigned long long>(app_bytes));

  // --- 2. The client downloads them (radio energy) and loads them. ---------
  rt::Device device(isa::client_machine());
  net::Link link;
  for (auto cls : radio::kAllPowerClasses) {
    energy::EnergyMeter probe;
    net::Link l2;
    l2.client_recv(app_bytes, probe);
    std::printf("  download cost at %-8s: %6.3f mJ\n",
                radio::power_class_name(cls),
                (probe.communication() +
                 link.comm().tx_energy(64, cls))  // request uplink
                    * 1e3);
  }
  const auto down = link.client_recv(app_bytes, device.meter);
  std::printf("downloaded in %.1f ms; verifying + linking...\n",
              down.seconds * 1e3);

  std::vector<jvm::ClassFile> classes;
  for (const auto& bytes : wire) classes.push_back(jvm::deserialize_class(bytes));
  device.deploy(classes);  // runs the verifier, lays out statics, installs

  // --- 3. Run it a few times and compare. -----------------------------------
  Rng rng(1);
  const std::int32_t mid = device.vm.find_method(a.cls, a.method);
  double exec_energy = 0;
  for (int i = 0; i < 5; ++i) {
    const std::size_t mark = device.arena.heap_mark();
    const auto args = a.make_args(
        device.vm, a.profile_scales[a.profile_scales.size() / 2], rng);
    const auto e0 = device.meter.snapshot();
    const jvm::Value result = device.engine.invoke(mid, args);
    exec_energy += device.meter.since(e0).total();
    if (!a.check(device.vm, args, device.vm, result)) {
      std::fprintf(stderr, "wrong result!\n");
      return 1;
    }
    device.arena.heap_release(mark);
  }
  std::printf(
      "5 interpreted executions: %.3f mJ total — the one-time download at\n"
      "Class 4 costs about %.1f executions' worth of energy.\n",
      exec_energy * 1e3,
      (link.comm().rx_energy(app_bytes) / (exec_energy / 5)));
  return 0;
}
