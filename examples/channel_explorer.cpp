// Channel playground: visualize the channel processes and what the paper's
// pilot-based power control sees — the substrate behind every remote
// execution decision (Section 2: IS-95-style pilot tracking, four PA
// classes).
//
//   $ ./build/examples/channel_explorer

#include <cstdio>

#include "radio/radio.hpp"

using namespace javelin;
using radio::PowerClass;

namespace {

char glyph(PowerClass c) {
  // Class 4 (best) renders highest.
  switch (c) {
    case PowerClass::kClass4: return '#';
    case PowerClass::kClass3: return '+';
    case PowerClass::kClass2: return '-';
    case PowerClass::kClass1: return '.';
  }
  return '?';
}

void trace(const char* title, radio::ChannelProcess& ch, double seconds) {
  std::printf("%s\n  ", title);
  for (int i = 0; i < 72; ++i)
    std::putchar(glyph(ch.at(seconds * i / 72.0)));
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("channel condition over 30 s ('#'=Class 4/best ... '.'=Class 1/poor)\n\n");

  radio::FixedChannel fixed(PowerClass::kClass3);
  trace("Fixed(Class 3)", fixed, 30);

  radio::IidChannel good({0.05, 0.10, 0.15, 0.70}, 0.25, 42);
  trace("IID, predominantly good (situation i)", good, 30);

  radio::IidChannel poor({0.55, 0.20, 0.15, 0.10}, 0.25, 42);
  trace("IID, predominantly poor (situation ii)", poor, 30);

  radio::MarkovChannel fading(radio::MarkovChannel::default_transition(),
                              PowerClass::kClass4, 0.25, 7);
  trace("Markov fading (sticky states)", fading, 30);

  // Pilot estimation lag: the mobile samples the pilot every 20 ms, so fast
  // fades are seen late. Count estimate/actual mismatches on a fast channel.
  radio::IidChannel fast({1, 1, 1, 1}, 0.010, 5);
  radio::PilotEstimator pilot(fast, 0.020);
  int mismatches = 0;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    const double t = i * 0.001;
    if (pilot.estimate(t) != fast.at(t)) ++mismatches;
  }
  std::printf(
      "\npilot estimator on a 10 ms-dwell channel with a 20 ms pilot period:\n"
      "  estimate != actual in %.1f%% of 1 ms samples (staleness cost)\n",
      100.0 * mismatches / kSamples);

  // Energy view: what a 1 kB uplink costs at each PA class.
  const radio::CommModel comm;
  std::printf("\n1 kB uplink cost by PA class (Fig 2 powers, 2.3 Mbps):\n");
  for (auto c : radio::kAllPowerClasses)
    std::printf("  %-8s  %6.2f mJ\n", radio::power_class_name(c),
                comm.tx_energy(1024, c) * 1e3);
  std::printf("  receive   %6.2f mJ (chain power %.0f mW)\n",
              comm.rx_energy(1024) * 1e3, comm.powers().rx_power() * 1e3);
  return 0;
}
