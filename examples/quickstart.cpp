// Quickstart: build a guest class with the assembler, run it interpreted and
// JIT-compiled on the simulated mobile client, and read the energy meter.
//
//   $ ./build/examples/quickstart
//
// This walks the core API surface end to end:
//   ClassBuilder -> Jvm::load/link -> ExecutionEngine::invoke
//   jit::compile_method -> ExecutionEngine::install -> EnergyMeter

#include <cstdio>

#include "jit/compiler.hpp"
#include "jvm/builder.hpp"
#include "rt/device.hpp"

using namespace javelin;
using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

int main() {
  // --- 1. Write a tiny guest program: dot product of two int arrays. -------
  jvm::ClassBuilder cb("Demo");
  {
    auto& m = cb.method(
        "dot", Signature{{TypeKind::kRef, TypeKind::kRef}, TypeKind::kInt});
    m.param_name(0, "a").param_name(1, "b");
    auto loop = m.new_label(), done = m.new_label();
    m.iconst(0).istore("acc").iconst(0).istore("i");
    m.bind(loop);
    m.iload("i").aload("a").arraylength().if_icmpge(done);
    m.iload("acc");
    m.aload("a").iload("i").iaload();
    m.aload("b").iload("i").iaload();
    m.imul().iadd().istore("acc");
    m.iload("i").iconst(1).iadd().istore("i");
    m.goto_(loop);
    m.bind(done);
    m.iload("acc").iret();
  }

  // --- 2. Boot a simulated mobile device and load the class. ---------------
  rt::Device device(isa::client_machine());
  device.vm.load(cb.build());  // verified here, like a real class load
  device.vm.link();

  // --- 3. Put some data in the guest heap. ---------------------------------
  const mem::Addr a = device.vm.new_array(TypeKind::kInt, 512, false);
  const mem::Addr b = device.vm.new_array(TypeKind::kInt, 512, false);
  std::vector<std::int32_t> va(512), vb(512);
  for (int i = 0; i < 512; ++i) {
    va[i] = i;
    vb[i] = 2 * i + 1;
  }
  device.vm.write_i32_array(a, va);
  device.vm.write_i32_array(b, vb);
  const std::vector<Value> args{Value::make_ref(a), Value::make_ref(b)};

  // --- 4. Run interpreted and measure. --------------------------------------
  const std::int32_t dot = device.vm.find_method("Demo", "dot");
  auto snap = device.meter.snapshot();
  const Value r1 = device.engine.invoke(dot, args);
  const auto interp = device.meter.since(snap);
  std::printf("interpreted : result=%d  energy=%.1f uJ  (%llu instrs)\n",
              r1.as_int(), interp.total() * 1e6,
              static_cast<unsigned long long>(interp.counts().total()));

  // --- 5. JIT at Level 2, install, rerun. -----------------------------------
  auto compiled = jit::compile_method(device.vm, dot,
                                      jit::CompileOptions{.opt_level = 2},
                                      device.cfg.energy);
  std::printf("compile L2  : %zu native instrs, compile energy=%.1f uJ\n",
              compiled.program.code.size(), compiled.compile_energy * 1e6);
  device.engine.install(dot, std::move(compiled.program), 2);

  snap = device.meter.snapshot();
  const Value r2 = device.engine.invoke(dot, args);
  const auto native = device.meter.since(snap);
  std::printf("native L2   : result=%d  energy=%.1f uJ  (%llu instrs)\n",
              r2.as_int(), native.total() * 1e6,
              static_cast<unsigned long long>(native.counts().total()));

  std::printf("\nspeed/energy ratio interp:native = %.1fx\n",
              interp.total() / native.total());
  std::printf("device meter: %s\n", device.meter.summary().c_str());
  return r1.as_int() == r2.as_int() ? 0 : 1;
}
