// javelin_cli — command-line driver for the Javelin stack.
//
//   javelin_cli list
//       List the benchmark suite (paper Fig 3).
//
//   javelin_cli run --app mf [--strategy AL] [--scale 20] [--channel iid-good]
//                   [--n 25] [--seed 1] [--csv trace.csv]
//       Execute an app repeatedly through the client/server stack, printing a
//       per-invocation decision trace (and optionally writing it as CSV).
//       Channels: c1 c2 c3 c4 (fixed), iid-good, iid-poor, iid-uniform,
//       markov.
//
//   javelin_cli profile --app mf
//       Run deploy-time profiling and print the fitted cost models.
//
//   javelin_cli disasm --app mf [--level 2]
//       Print the potential method's bytecode and its native code at the
//       given optimization level.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>

#include "jit/compiler.hpp"
#include "sim/scenario.hpp"

using namespace javelin;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: javelin_cli <list|run|profile|disasm> [options]\n"
               "see the header of examples/javelin_cli.cpp for details\n");
  return 2;
}

struct Args {
  std::string command;
  std::string app = "mf";
  std::string strategy = "AL";
  std::string channel = "iid-uniform";
  double scale = 0;  // 0 = app default (dominant profile scale)
  int n = 25;
  int level = 2;
  std::uint64_t seed = 1;
  std::string csv;
};

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args a;
  a.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string val = argv[i + 1];
    if (key == "--app") a.app = val;
    else if (key == "--strategy") a.strategy = val;
    else if (key == "--channel") a.channel = val;
    else if (key == "--scale") a.scale = std::atof(val.c_str());
    else if (key == "--n") a.n = std::atoi(val.c_str());
    else if (key == "--level") a.level = std::atoi(val.c_str());
    else if (key == "--seed") a.seed = std::strtoull(val.c_str(), nullptr, 10);
    else if (key == "--csv") a.csv = val;
    else return std::nullopt;
  }
  return a;
}

std::optional<rt::Strategy> parse_strategy(const std::string& s) {
  for (rt::Strategy st : rt::kAllStrategies)
    if (s == rt::strategy_name(st)) return st;
  return std::nullopt;
}

std::unique_ptr<radio::ChannelProcess> make_channel(const std::string& name,
                                                    std::uint64_t seed) {
  using radio::PowerClass;
  if (name == "c1") return std::make_unique<radio::FixedChannel>(PowerClass::kClass1);
  if (name == "c2") return std::make_unique<radio::FixedChannel>(PowerClass::kClass2);
  if (name == "c3") return std::make_unique<radio::FixedChannel>(PowerClass::kClass3);
  if (name == "c4") return std::make_unique<radio::FixedChannel>(PowerClass::kClass4);
  if (name == "iid-good")
    return std::make_unique<radio::IidChannel>(
        sim::channel_weights(sim::Situation::kGoodChannelDominantSize), 0.25,
        seed);
  if (name == "iid-poor")
    return std::make_unique<radio::IidChannel>(
        sim::channel_weights(sim::Situation::kPoorChannelDominantSize), 0.25,
        seed);
  if (name == "iid-uniform")
    return std::make_unique<radio::IidChannel>(
        sim::channel_weights(sim::Situation::kUniform), 0.25, seed);
  if (name == "markov")
    return std::make_unique<radio::MarkovChannel>(
        radio::MarkovChannel::default_transition(), PowerClass::kClass3, 0.25,
        seed);
  return nullptr;
}

int cmd_list() {
  std::printf("%-6s %-9s %-12s %s\n", "name", "class", "method",
              "description");
  for (const apps::App& a : apps::registry())
    std::printf("%-6s %-9s %-12s %s\n", a.name.c_str(), a.cls.c_str(),
                a.method.c_str(), a.description.c_str());
  return 0;
}

int cmd_run(const Args& args) {
  const auto strategy = parse_strategy(args.strategy);
  if (!strategy) {
    std::fprintf(stderr, "unknown strategy '%s' (use R I L1 L2 L3 AL AA)\n",
                 args.strategy.c_str());
    return 2;
  }
  auto channel = make_channel(args.channel, args.seed ^ 0xc4a77e1);
  if (!channel) {
    std::fprintf(stderr, "unknown channel '%s'\n", args.channel.c_str());
    return 2;
  }
  const apps::App& a = apps::app(args.app);
  const double scale =
      args.scale > 0 ? args.scale : a.profile_scales[a.profile_scales.size() / 2];

  std::fprintf(stderr, "profiling %s...\n", a.name.c_str());
  sim::ScenarioRunner runner(a, args.seed * 0x9e3779b9u + 3);
  rt::Server server;
  server.deploy(runner.profiled_classes());
  net::Link link(radio::CommModel{}, args.seed);
  rt::Client client(rt::ClientConfig{}, server, *channel, link);
  client.deploy(runner.profiled_classes());
  client.device().core.step_limit = 500'000'000'000ULL;

  std::ofstream csv;
  if (!args.csv.empty()) {
    csv.open(args.csv);
    csv << "invocation,scale,channel_class,mode,compiled,remote_compile,"
           "fallback,energy_mj,seconds_ms\n";
  }

  Rng rng(args.seed * 77 + 1);
  double total_energy = 0;
  std::map<rt::ExecMode, int> modes;
  std::printf("%-4s %-7s %-8s %-7s %-10s %-10s\n", "#", "scale", "channel",
              "mode", "energy mJ", "time ms");
  for (int i = 0; i < args.n; ++i) {
    client.skip_time(rng.uniform_real(0.2, 1.5));
    const std::size_t mark = client.device().arena.heap_mark();
    const auto call_args = a.make_args(client.device().vm, scale, rng);
    const radio::PowerClass cls = channel->at(client.now());
    rt::InvokeReport rep;
    const jvm::Value result =
        client.run(a.cls, a.method, call_args, *strategy, &rep);
    if (!a.check(client.device().vm, call_args, client.device().vm, result)) {
      std::fprintf(stderr, "WRONG RESULT at invocation %d\n", i);
      return 1;
    }
    total_energy += rep.energy_j;
    ++modes[rep.mode];
    std::printf("%-4d %-7.0f %-8s %-7s %-10.3f %-10.2f%s%s\n", i, scale,
                radio::power_class_name(cls), rt::exec_mode_name(rep.mode),
                rep.energy_j * 1e3, rep.seconds * 1e3,
                rep.compiled_this_call
                    ? (rep.remote_compile ? "  [compiled: downloaded]"
                                          : "  [compiled: local]")
                    : "",
                rep.fallback_local ? "  [fallback]" : "");
    if (csv.is_open())
      csv << i << ',' << scale << ',' << static_cast<int>(cls) << ','
          << rt::exec_mode_name(rep.mode) << ',' << rep.compiled_this_call
          << ',' << rep.remote_compile << ',' << rep.fallback_local << ','
          << rep.energy_j * 1e3 << ',' << rep.seconds * 1e3 << '\n';
    client.device().arena.heap_release(mark);
  }
  std::printf("\ntotal %.2f mJ over %d invocations; modes:", total_energy * 1e3,
              args.n);
  for (const auto& [m, c] : modes)
    std::printf(" %s=%d", rt::exec_mode_name(m), c);
  std::printf("\n");
  if (csv.is_open())
    std::fprintf(stderr, "trace written to %s\n", args.csv.c_str());
  return 0;
}

int cmd_profile(const Args& args) {
  const apps::App& a = apps::app(args.app);
  sim::ScenarioRunner runner(a, args.seed * 0x9e3779b9u + 3);
  const jvm::EnergyProfile& p = runner.profile();
  std::printf("deploy-time profile of %s.%s (size parameter s):\n\n",
              a.cls.c_str(), a.method.c_str());
  const char* mode_names[] = {"interp", "L1", "L2", "L3"};
  for (int m = 0; m < 4; ++m) {
    std::printf("  E_%s(s) mJ      =", mode_names[m]);
    for (double c : p.local_energy[m].coeffs) std::printf(" %.6g", c * 1e3);
    std::printf("  (poly coeffs, low order first)\n");
  }
  std::printf("  server_cycles(s) =");
  for (double c : p.server_cycles.coeffs) std::printf(" %.6g", c);
  std::printf("\n  request_bytes(s) =");
  for (double c : p.request_bytes.coeffs) std::printf(" %.6g", c);
  std::printf("\n  response_bytes(s)=");
  for (double c : p.response_bytes.coeffs) std::printf(" %.6g", c);
  std::printf("\n\n  compile energy: L1=%.3f mJ  L2=%.3f mJ  L3=%.3f mJ\n",
              p.compile_energy[0] * 1e3, p.compile_energy[1] * 1e3,
              p.compile_energy[2] * 1e3);
  std::printf("  code size:      L1=%u B    L2=%u B    L3=%u B\n",
              p.code_size_bytes[0], p.code_size_bytes[1],
              p.code_size_bytes[2]);
  return 0;
}

int cmd_disasm(const Args& args) {
  const apps::App& a = apps::app(args.app);
  rt::Device dev(isa::client_machine());
  dev.deploy(a.classes);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
  const jvm::RtMethod& m = dev.vm.method(mid);
  std::printf("== %s bytecode (%zu instructions) ==\n%s\n",
              m.qualified_name.c_str(), m.info->code.size(),
              jvm::disassemble(m.info->code).c_str());
  auto res = jit::compile_method(
      dev.vm, mid, jit::CompileOptions{.opt_level = args.level},
      dev.cfg.energy);
  std::printf("== native code at L%d (%zu instructions, %zu image bytes) ==\n%s",
              args.level, res.program.code.size(), res.program.image_bytes(),
              res.program.disassemble().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "list") return cmd_list();
    if (args->command == "run") return cmd_run(*args);
    if (args->command == "profile") return cmd_profile(*args);
    if (args->command == "disasm") return cmd_disasm(*args);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
