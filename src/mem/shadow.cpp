#include "mem/shadow.hpp"

#include <algorithm>
#include <cstdlib>

namespace javelin::mem {

void ShadowBounds::note_alloc(Addr base, std::size_t size) {
  // The heap is a bump allocator: bases are strictly increasing within one
  // watermark epoch, and release_above() removes every entry at or above the
  // watermark before the bump pointer revisits those addresses. Guard the
  // invariant anyway — a misordered entry would silently break the binary
  // search below.
  if (!entries_.empty() && base < entries_.back().base + entries_.back().size)
    throw std::invalid_argument("shadow: allocation out of bump order");
  entries_.push_back(Entry{base, static_cast<std::uint32_t>(size)});
  ++stats_.allocations;
}

void ShadowBounds::release_above(std::size_t watermark) {
  while (!entries_.empty() && entries_.back().base >= watermark)
    entries_.pop_back();
}

void ShadowBounds::clear() { entries_.clear(); }

void ShadowBounds::check_access(Addr a, std::size_t n) const {
  ++stats_.checks;
  // Last entry with base <= a.
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), a,
      [](Addr addr, const Entry& e) { return addr < e.base; });
  if (it != entries_.begin()) {
    const Entry& e = *(it - 1);
    if (static_cast<std::size_t>(a) + n <= static_cast<std::size_t>(e.base) + e.size)
      return;
  }
  ++stats_.violations;
  throw BoundsFault("shadow: heap access outside any live allocation at addr " +
                    std::to_string(a) + " size " + std::to_string(n));
}

bool shadow_bounds_default() {
  if (const char* env = std::getenv("JAVELIN_SHADOW")) return *env != '0';
#ifdef JAVELIN_SHADOW_FORCE
  return true;
#else
  return false;
#endif
}

}  // namespace javelin::mem
