#include "mem/cache.hpp"

#include <bit>
#include <stdexcept>

namespace javelin::mem {

DirectMappedCache::DirectMappedCache(CacheConfig cfg) : cfg_(cfg) {
  if (cfg_.line_bytes == 0 || (cfg_.line_bytes & (cfg_.line_bytes - 1)) != 0)
    throw std::invalid_argument("cache: line size must be a power of two");
  if (cfg_.size_bytes % cfg_.line_bytes != 0)
    throw std::invalid_argument("cache: size must be a multiple of line size");
  num_lines_ = cfg_.size_bytes / cfg_.line_bytes;
  if ((num_lines_ & (num_lines_ - 1)) != 0)
    throw std::invalid_argument("cache: line count must be a power of two");
  line_shift_ = static_cast<std::size_t>(std::countr_zero(cfg_.line_bytes));
  lines_.resize(num_lines_);
}

CacheAccess DirectMappedCache::access(Addr addr, bool is_write) {
  const std::uint32_t block = addr >> line_shift_;
  const std::size_t index = block & (num_lines_ - 1);
  const std::uint32_t tag = block >> std::countr_zero(num_lines_);
  Line& line = lines_[index];

  CacheAccess result;
  if (line.valid && line.tag == tag) {
    CacheStats::saturating_inc(stats_.hits);
    line.dirty = line.dirty || is_write;
    return result;
  }
  CacheStats::saturating_inc(stats_.misses);
  result.hit = false;
  result.dram_accesses = 1;  // line fill
  if (line.valid && line.dirty) {
    CacheStats::saturating_inc(stats_.writebacks);
    ++result.dram_accesses;  // dirty eviction
  }
  line.valid = true;
  line.tag = tag;
  line.dirty = is_write;
  return result;
}

void DirectMappedCache::invalidate_all() {
  for (auto& l : lines_) l = Line{};
}

std::uint64_t MemoryHierarchy::route(DirectMappedCache& c, Addr a, bool write) {
  const CacheAccess r = c.access(a, write);
  if (r.hit) return 0;
  if (meter_ && table_) meter_->add_dram_accesses(r.dram_accesses, *table_);
  return miss_penalty_;
}

}  // namespace javelin::mem
