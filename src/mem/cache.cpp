#include "mem/cache.hpp"

#include <bit>
#include <stdexcept>

namespace javelin::mem {

DirectMappedCache::DirectMappedCache(CacheConfig cfg) : cfg_(cfg) {
  if (cfg_.line_bytes == 0 || (cfg_.line_bytes & (cfg_.line_bytes - 1)) != 0)
    throw std::invalid_argument("cache: line size must be a power of two");
  if (cfg_.size_bytes % cfg_.line_bytes != 0)
    throw std::invalid_argument("cache: size must be a multiple of line size");
  num_lines_ = cfg_.size_bytes / cfg_.line_bytes;
  if ((num_lines_ & (num_lines_ - 1)) != 0)
    throw std::invalid_argument("cache: line count must be a power of two");
  line_shift_ = static_cast<std::size_t>(std::countr_zero(cfg_.line_bytes));
  index_bits_ = static_cast<std::size_t>(std::countr_zero(num_lines_));
  lines_.resize(num_lines_);
}

void DirectMappedCache::invalidate_all() {
  for (auto& l : lines_) l = Line{};
}

}  // namespace javelin::mem
