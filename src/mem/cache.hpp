// Direct-mapped cache model and the client memory hierarchy.
//
// The paper's client has an 8 KB direct-mapped data cache and a 16 KB
// instruction cache; misses go to a 32 MB DRAM whose per-access energy is in
// the Fig 1 table. We model tags only (data lives in the Arena); a write-back
// write-allocate policy charges an extra DRAM access when a dirty line is
// evicted.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/energy.hpp"
#include "mem/arena.hpp"

namespace javelin::mem {

/// Configuration of one direct-mapped cache.
struct CacheConfig {
  std::size_t size_bytes = 8 * 1024;
  std::size_t line_bytes = 32;
};

/// Result of a single cache access.
struct CacheAccess {
  bool hit = true;
  std::uint32_t dram_accesses = 0;  ///< 0 on hit; 1 on miss (+1 dirty evict).
};

/// Overflow-safe statistics counters. Multi-day sweeps at simulated-GHz
/// rates can push access counts toward 2^64; the counters saturate at the
/// maximum instead of wrapping to zero, and ratios are computed in double so
/// the sum hits+misses cannot overflow either.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  /// Increment that sticks at UINT64_MAX instead of wrapping.
  static void saturating_inc(std::uint64_t& c) {
    if (c != ~0ULL) ++c;
  }

  /// Hits / (hits + misses). With zero recorded accesses this returns 1.0 by
  /// convention, not 0.0 or NaN: an untouched cache has never missed, and
  /// downstream consumers (sweep JSON, Prometheus gauges, efficiency ratios)
  /// treat the rate as "fraction of accesses that did not stall", for which
  /// the vacuous case is a perfect score. Pinned by tests/mem_test.cpp.
  double hit_rate() const {
    const double total =
        static_cast<double>(hits) + static_cast<double>(misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 1.0;
  }

  void reset() { hits = misses = writebacks = 0; }
};

/// Direct-mapped, write-back, write-allocate cache (tags only).
///
/// access() is defined inline: it runs 2–5 times per simulated bytecode /
/// native instruction (every charged fetch/load/store routes through it), so
/// keeping it out-of-line cost an opaque call on the simulator's hottest
/// path. The tag/index math and stats updates are unchanged — simulated
/// hit/miss behaviour is bit-identical.
class DirectMappedCache {
 public:
  explicit DirectMappedCache(CacheConfig cfg = {});

  CacheAccess access(Addr addr, bool is_write) {
    const std::uint32_t block = addr >> line_shift_;
    const std::size_t index = block & (num_lines_ - 1);
    const std::uint32_t tag = block >> index_bits_;
    Line& line = lines_[index];

    CacheAccess result;
    if (line.valid && line.tag == tag) {
      CacheStats::saturating_inc(stats_.hits);
      line.dirty = line.dirty || is_write;
      return result;
    }
    CacheStats::saturating_inc(stats_.misses);
    result.hit = false;
    result.dram_accesses = 1;  // line fill
    if (line.valid && line.dirty) {
      CacheStats::saturating_inc(stats_.writebacks);
      ++result.dram_accesses;  // dirty eviction
    }
    line.valid = true;
    line.tag = tag;
    line.dirty = is_write;
    return result;
  }

  /// Line-granular address key: two addresses with equal keys fall in the
  /// same cache line. Pairs with note_repeat_read_hit() below.
  std::uint64_t line_key(Addr a) const { return a >> line_shift_; }

  /// Record a hit without the tag lookup. Contract: the caller has proved
  /// the line is resident — its immediately-preceding access to this cache
  /// was to the same line (equal line_key) and nothing else touched the
  /// cache in between. A direct-mapped cache can only lose a line to an
  /// access that maps to the same index with a different tag, so a
  /// back-to-back access to the same line is always a hit; the only
  /// architectural side effect of a clean read hit is the hit counter
  /// (dirty is unchanged: `dirty || false`). Used by the executor's
  /// straight-line fetch path; simulated state is bit-identical to access().
  void note_repeat_read_hit() { CacheStats::saturating_inc(stats_.hits); }

  const CacheStats& stats() const { return stats_; }
  std::uint64_t hits() const { return stats_.hits; }
  std::uint64_t misses() const { return stats_.misses; }
  std::uint64_t writebacks() const { return stats_.writebacks; }
  double hit_rate() const { return stats_.hit_rate(); }

  const CacheConfig& config() const { return cfg_; }

  void reset_stats() { stats_.reset(); }
  void invalidate_all();

 private:
  struct Line {
    std::uint32_t tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig cfg_;
  std::size_t num_lines_;
  std::size_t line_shift_;
  std::size_t index_bits_;  ///< log2(num_lines_), precomputed for access().
  std::vector<Line> lines_;
  CacheStats stats_;
};

/// Client/server memory hierarchy: split L1 I/D caches in front of DRAM.
///
/// Charges DRAM access energy to the supplied meter and reports stall cycles
/// so the executor can account time. Instruction fetch goes through the
/// I-cache, data loads/stores through the D-cache.
class MemoryHierarchy {
 public:
  MemoryHierarchy(CacheConfig icache, CacheConfig dcache,
                  std::uint32_t miss_penalty_cycles,
                  const energy::InstructionEnergyTable* table,
                  energy::EnergyMeter* meter)
      : icache_(icache),
        dcache_(dcache),
        miss_penalty_(miss_penalty_cycles),
        table_(table),
        meter_(meter) {}

  /// Returns stall cycles caused by this access. Inline for the same reason
  /// as DirectMappedCache::access — one call per charged memory operation.
  std::uint64_t fetch(Addr pc) { return route(icache_, pc, /*write=*/false); }
  std::uint64_t load(Addr a) { return route(dcache_, a, /*write=*/false); }
  std::uint64_t store(Addr a) { return route(dcache_, a, /*write=*/true); }

  DirectMappedCache& icache() { return icache_; }
  DirectMappedCache& dcache() { return dcache_; }

  void reset_stats() {
    icache_.reset_stats();
    dcache_.reset_stats();
  }

 private:
  std::uint64_t route(DirectMappedCache& c, Addr a, bool write) {
    const CacheAccess r = c.access(a, write);
    if (r.hit) return 0;
    if (meter_ && table_) meter_->add_dram_accesses(r.dram_accesses, *table_);
    return miss_penalty_;
  }

  DirectMappedCache icache_;
  DirectMappedCache dcache_;
  std::uint32_t miss_penalty_;
  const energy::InstructionEnergyTable* table_;
  energy::EnergyMeter* meter_;
};

}  // namespace javelin::mem
