#include "mem/arena.hpp"

#include <algorithm>

#include "mem/shadow.hpp"

namespace javelin::mem {

Arena::Arena(std::size_t capacity, std::size_t immortal_bytes)
    : bytes_(capacity, 0),
      immortal_top_(16),
      heap_base_(immortal_bytes),
      heap_top_(immortal_bytes),
      stack_top_(capacity) {
  // Offsets [0, 16) are reserved so that address 0 is always null and small
  // addresses never alias a real object.
  if (immortal_bytes < 16 || immortal_bytes >= capacity)
    throw std::invalid_argument("arena: bad immortal zone size");
}

Addr Arena::alloc_immortal(std::size_t size, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0)
    throw std::invalid_argument("arena: alignment must be a power of two");
  const std::size_t base = (immortal_top_ + align - 1) & ~(align - 1);
  // `size > limit - base`, not `base + size > limit`: the sum wraps for sizes
  // near SIZE_MAX (a forged 0xFFFFFFFF length scaled by an element width).
  if (base > heap_base_ || size > heap_base_ - base)
    throw VmError("arena: simulated RAM exhausted (immortal zone)");
  immortal_top_ = base + size;
  std::fill(bytes_.begin() + static_cast<std::ptrdiff_t>(base),
            bytes_.begin() + static_cast<std::ptrdiff_t>(immortal_top_), 0);
  return static_cast<Addr>(base);
}

Addr Arena::alloc(std::size_t size, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0)
    throw std::invalid_argument("arena: alignment must be a power of two");
  const std::size_t base = (heap_top_ + align - 1) & ~(align - 1);
  // Overflow-safe form (see alloc_immortal).
  if (base > stack_top_ || size > stack_top_ - base)
    throw VmError("arena: simulated RAM exhausted (heap)");
  heap_top_ = base + size;
  std::fill(bytes_.begin() + static_cast<std::ptrdiff_t>(base),
            bytes_.begin() + static_cast<std::ptrdiff_t>(heap_top_), 0);
  if (shadow_ != nullptr) shadow_->note_alloc(static_cast<Addr>(base), size);
  return static_cast<Addr>(base);
}

Addr Arena::alloc_stack(std::size_t size, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0)
    throw std::invalid_argument("arena: alignment must be a power of two");
  if (size > stack_top_) throw VmError("arena: simulated RAM exhausted (stack)");
  std::size_t base = (stack_top_ - size) & ~(align - 1);
  if (base < heap_top_)
    throw VmError("arena: simulated RAM exhausted (stack)");
  stack_top_ = base;
  std::fill(bytes_.begin() + static_cast<std::ptrdiff_t>(base),
            bytes_.begin() + static_cast<std::ptrdiff_t>(base + size), 0);
  return static_cast<Addr>(base);
}

void Arena::heap_release(std::size_t mark) {
  if (mark > heap_top_ || mark < heap_base_)
    throw std::invalid_argument("arena: bad heap watermark");
  heap_top_ = mark;
  if (shadow_ != nullptr) shadow_->release_above(mark);
}

void Arena::stack_release(std::size_t mark) {
  if (mark < stack_top_ || mark > bytes_.size())
    throw std::invalid_argument("arena: bad stack watermark");
  stack_top_ = mark;
}

void Arena::copy_out(Addr a, void* dst, std::size_t n) const {
  check(a, n);
  std::memcpy(dst, bytes_.data() + a, n);
}

void Arena::copy_in(Addr a, const void* src, std::size_t n) {
  check(a, n);
  std::memcpy(bytes_.data() + a, src, n);
}

void Arena::reset() {
  immortal_top_ = 16;
  heap_top_ = heap_base_;
  stack_top_ = bytes_.size();
  if (shadow_ != nullptr) shadow_->clear();
}

void Arena::shadow_check(Addr a, std::size_t n) const {
  shadow_->check_access(a, n);
}

}  // namespace javelin::mem
