// Opt-in shadow-bounds metadata for the simulated heap.
//
// The arena's zone check (arena.hpp) proves an access stays inside *some*
// zone; it cannot tell a live object from the alignment gap between two
// objects, or from memory whose allocation was released and re-covered by a
// later bump. ShadowBounds closes that gap: every heap allocation registers a
// [base, base+size) shadow entry, and in shadow mode every heap access must
// land fully inside exactly one entry. A miss is a BoundsFault — a typed,
// catchable guest fault, never UB and never a silent read of a neighbour.
//
// This is the defense half of the elide-then-validate workflow (DESIGN.md
// §13): the JIT's interprocedural bounds-check elimination removes guards it
// proves redundant, and tier-1 runs the whole corpus with shadow mode on to
// demonstrate the proofs hold dynamically. Shadow mode is off by default and
// charges no simulated energy; it is a pure host-side validity oracle, so
// ledgers are bit-identical with it on or off.
//
// Enablement: `JAVELIN_SHADOW=1` in the environment, or compiling with
// `JAVELIN_SHADOW_FORCE` (the `JAVELIN_SANITIZE=shadow` CMake preset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/arena.hpp"
#include "support/error.hpp"

namespace javelin::mem {

/// BoundsFault (a VmError, raised on heap accesses outside every live shadow
/// entry) lives in support/error.hpp so the checked ByteReader can raise it
/// too; re-exported here since mem is its conceptual home.
using javelin::BoundsFault;

struct ShadowStats {
  std::uint64_t allocations = 0;  ///< Entries registered (lifetime total).
  std::uint64_t checks = 0;       ///< Heap accesses validated.
  std::uint64_t violations = 0;   ///< BoundsFaults raised.
};

/// Sorted base/limit entries for every live heap allocation. The arena's heap
/// is a bump allocator, so note_alloc() always appends in increasing base
/// order and lookups are a binary search; release_above() mirrors the
/// watermark bulk-release the benchmarks use between executions.
class ShadowBounds {
 public:
  void note_alloc(Addr base, std::size_t size);
  void release_above(std::size_t watermark);
  void clear();

  /// Validate that [a, a+n) lies fully inside one live allocation.
  /// Throws BoundsFault otherwise.
  void check_access(Addr a, std::size_t n) const;

  const ShadowStats& stats() const { return stats_; }
  std::size_t live_entries() const { return entries_.size(); }

 private:
  struct Entry {
    Addr base;
    std::uint32_t size;
  };
  std::vector<Entry> entries_;  ///< Sorted by base (bump order).
  mutable ShadowStats stats_;   ///< Mutable: counted on the const check path.
};

/// Process-wide default: `JAVELIN_SHADOW` env var (any value but "0" enables,
/// "0" disables, overriding the build) else the JAVELIN_SHADOW_FORCE compile
/// definition, else off.
bool shadow_bounds_default();

}  // namespace javelin::mem
