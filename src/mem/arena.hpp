// Simulated byte-addressed memory.
//
// Everything the guest program touches — JVM heap objects, arrays, statics,
// installed code, operand stacks, call frames, and JIT spill slots — lives in
// one Arena so that the interpreter, the jitted-code executor and the
// serializer produce a single coherent address stream for the cache model.
// Addresses are 32-bit offsets into the arena; address 0 is reserved and
// never allocated (null reference).
//
// The arena has three zones:
//  * an *immortal* zone at the bottom (installed byte/native code, literal
//    pools, statics) that is never released,
//  * a *heap* above it (objects and arrays — released in bulk via watermarks
//    between benchmark executions), and
//  * a *stack* growing downward from the top (call frames and spill areas —
//    released stack-style on method return).
// Keeping them disjoint means popping a frame or resetting the heap between
// executions can never reclaim installed code or statics.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace javelin::mem {

using Addr = std::uint32_t;

constexpr Addr kNullAddr = 0;

class ShadowBounds;

/// Bump-allocated simulated RAM with typed accessors.
class Arena {
 public:
  /// `capacity` bytes of simulated RAM (default 32 MB, the paper's DRAM);
  /// `immortal_bytes` are reserved at the bottom for code and statics.
  explicit Arena(std::size_t capacity = 32u << 20,
                 std::size_t immortal_bytes = 4u << 20);

  /// Allocate in the immortal zone (code, literal pools, statics). Zeroed.
  Addr alloc_immortal(std::size_t size, std::size_t align = 8);

  /// Allocate `size` bytes in the heap zone, aligned to `align` (power of
  /// two). Memory is zeroed. Throws VmError when simulated RAM is exhausted.
  Addr alloc(std::size_t size, std::size_t align = 8);

  /// Allocate in the stack zone (grows downward). Zeroed.
  Addr alloc_stack(std::size_t size, std::size_t align = 8);

  // Watermark management. Heap marks release everything allocated above the
  // mark (used between benchmark executions); stack marks pop frames.
  std::size_t heap_mark() const { return heap_top_; }
  void heap_release(std::size_t mark);
  std::size_t stack_mark() const { return stack_top_; }
  void stack_release(std::size_t mark);

  std::size_t heap_used() const { return heap_top_ - heap_base_; }
  std::size_t immortal_used() const { return immortal_top_ - 16; }
  std::size_t stack_used() const { return bytes_.size() - stack_top_; }
  std::size_t capacity() const { return bytes_.size(); }

  // Typed accessors. All check bounds; out-of-zone access is a VmError
  // (guest bug), never UB in the simulator.
  std::int32_t load_i32(Addr a) const { return load<std::int32_t>(a); }
  void store_i32(Addr a, std::int32_t v) { store<std::int32_t>(a, v); }
  double load_f64(Addr a) const { return load<double>(a); }
  void store_f64(Addr a, double v) { store<double>(a, v); }
  std::uint32_t load_u32(Addr a) const { return load<std::uint32_t>(a); }
  void store_u32(Addr a, std::uint32_t v) { store<std::uint32_t>(a, v); }
  std::uint8_t load_u8(Addr a) const { return load<std::uint8_t>(a); }
  void store_u8(Addr a, std::uint8_t v) { store<std::uint8_t>(a, v); }
  std::int64_t load_i64(Addr a) const { return load<std::int64_t>(a); }
  void store_i64(Addr a, std::int64_t v) { store<std::int64_t>(a, v); }

  /// Raw byte access for the serializer.
  void copy_out(Addr a, void* dst, std::size_t n) const;
  void copy_in(Addr a, const void* src, std::size_t n);

  void reset();

  /// Attach opt-in shadow-bounds metadata (mem/shadow.hpp). While attached,
  /// every heap-zone access must additionally land inside a live allocation
  /// (BoundsFault otherwise), heap allocations register entries, and the
  /// watermark releases drop them. nullptr detaches. Not owned.
  void set_shadow(ShadowBounds* s) { shadow_ = s; }
  ShadowBounds* shadow() const { return shadow_; }

 private:
  template <typename T>
  T load(Addr a) const {
    check(a, sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + a, sizeof(T));
    return v;
  }
  template <typename T>
  void store(Addr a, T v) {
    check(a, sizeof(T));
    std::memcpy(bytes_.data() + a, &v, sizeof(T));
  }
  void check(Addr a, std::size_t n) const {
    const auto end = static_cast<std::size_t>(a) + n;
    const bool in_immortal = a >= 16 && end <= immortal_top_;
    const bool in_heap = a >= heap_base_ && end <= heap_top_;
    const bool in_stack = a >= stack_top_ && end <= bytes_.size();
    if (!in_immortal && !in_heap && !in_stack)
      throw VmError("arena: access out of range at addr " + std::to_string(a));
    if (shadow_ != nullptr && in_heap) shadow_check(a, n);
  }
  void shadow_check(Addr a, std::size_t n) const;  // non-inline: cold path

  std::vector<std::uint8_t> bytes_;
  std::size_t immortal_top_;  ///< First free immortal byte.
  std::size_t heap_base_;     ///< Start of the heap zone (= immortal limit).
  std::size_t heap_top_;      ///< First free heap byte.
  std::size_t stack_top_;     ///< Lowest allocated stack byte.
  ShadowBounds* shadow_ = nullptr;  ///< Opt-in checked metadata (not owned).
};

}  // namespace javelin::mem
