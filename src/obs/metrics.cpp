#include "obs/metrics.hpp"

#include <cstdarg>
#include <cstdio>

namespace javelin::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// Format a sample value: integral values (counts) print without exponent
/// noise, everything else as %.9g.
std::string num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v >= -1e15 &&
      v <= 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  return buf;
}

}  // namespace

std::string label(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 MetricType type,
                                                 const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  }
  return it->second;
}

void MetricsRegistry::declare(const std::string& name, MetricType type,
                              const std::string& help) {
  family(name, type, help);
}

void MetricsRegistry::add(const std::string& name, const std::string& labels,
                          double v) {
  family(name, MetricType::kCounter, "").samples[labels] += v;
}

void MetricsRegistry::set(const std::string& name, const std::string& labels,
                          double v) {
  family(name, MetricType::kGauge, "").samples[labels] = v;
}

void MetricsRegistry::observe(const std::string& name,
                              const std::string& labels, double v) {
  Histogram& h = family(name, MetricType::kHistogram, "").hists[labels];
  std::size_t i = 0;
  while (i < kEnergyBucketsJ.size() && v > kEnergyBucketsJ[i]) ++i;
  ++h.buckets[i];
  h.sum += v;
  ++h.count;
}

std::string MetricsRegistry::prometheus_text() const {
  std::string out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) {
      out += "# HELP " + name + " " + fam.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (fam.type) {
      case MetricType::kCounter: out += "counter"; break;
      case MetricType::kGauge: out += "gauge"; break;
      case MetricType::kHistogram: out += "histogram"; break;
    }
    out += "\n";
    for (const auto& [labels, value] : fam.samples) {
      out += name;
      if (!labels.empty()) out += "{" + labels + "}";
      out += " " + num(value) + "\n";
    }
    for (const auto& [labels, h] : fam.hists) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i <= kEnergyBucketsJ.size(); ++i) {
        cum += h.buckets[i];
        std::string le = i < kEnergyBucketsJ.size()
                             ? num(kEnergyBucketsJ[i])
                             : std::string("+Inf");
        out += name + "_bucket{";
        if (!labels.empty()) out += labels + ",";
        out += label("le", le) + "} ";
        appendf(out, "%llu\n", static_cast<unsigned long long>(cum));
      }
      out += name + "_sum";
      if (!labels.empty()) out += "{" + labels + "}";
      appendf(out, " %.9g\n", h.sum);
      out += name + "_count";
      if (!labels.empty()) out += "{" + labels + "}";
      appendf(out, " %llu\n", static_cast<unsigned long long>(h.count));
    }
  }
  return out;
}

MetricsRegistry build_metrics(const TraceCollector& collector) {
  MetricsRegistry reg;
  reg.declare("javelin_invocations_total", MetricType::kCounter,
              "Top-level potential-method invocations per track.");
  reg.declare("javelin_energy_joules_total", MetricType::kCounter,
              "Client energy across invocations per track (ledger sums).");
  reg.declare("javelin_server_energy_joules_total", MetricType::kCounter,
              "Wall-powered server energy spent on behalf of invocations per "
              "track (remote execution + compilation; not client battery).");
  reg.declare("javelin_invocation_energy_joules", MetricType::kHistogram,
              "Per-invocation client energy distribution.");
  reg.declare("javelin_remote_failures_total", MetricType::kCounter,
              "Failed remote exchange attempts by failure class.");
  reg.declare("javelin_wasted_energy_joules_total", MetricType::kCounter,
              "Client energy burnt by failed remote attempts, by class.");
  reg.declare("javelin_retries_total", MetricType::kCounter,
              "Remote exchange retries (backoff waits).");
  reg.declare("javelin_breaker_transitions_total", MetricType::kCounter,
              "Circuit-breaker state transitions by destination state.");
  reg.declare("javelin_compiles_total", MetricType::kCounter,
              "JIT compilations finished per optimization level.");

  for (const TraceBuffer* buf : collector.ordered()) {
    const std::string track = label("track", buf->track());

    for (std::size_t c = 0; c < kNumCounters; ++c) {
      const std::uint64_t v = buf->counter(static_cast<Counter>(c));
      if (!v) continue;
      const std::string name =
          std::string("javelin_") + counter_name(static_cast<Counter>(c)) +
          "_total";
      reg.declare(name, MetricType::kCounter,
                  "Instrumentation hook counter.");
      reg.add(name, track, static_cast<double>(v));
    }

    for (const TraceEvent& ev : buf->events()) {
      switch (ev.kind) {
        case EventKind::kInvokeEnd:
          reg.add("javelin_invocations_total", track, 1.0);
          reg.add("javelin_energy_joules_total", track, ev.ledger.total_j);
          reg.add("javelin_server_energy_joules_total", track,
                  ev.ledger.server_j);
          reg.observe("javelin_invocation_energy_joules", "",
                      ev.ledger.total_j);
          break;
        case EventKind::kRemoteFailure: {
          const std::string by_class =
              track + "," + label("class", buf->string_at(ev.detail));
          reg.add("javelin_remote_failures_total", by_class, 1.0);
          reg.add("javelin_wasted_energy_joules_total", by_class,
                  ev.ledger.total_j);
          break;
        }
        case EventKind::kRetryBackoff:
          reg.add("javelin_retries_total", track, 1.0);
          break;
        case EventKind::kBreakerTransition:
          reg.add("javelin_breaker_transitions_total",
                  track + "," + label("to", buf->string_at(ev.name)), 1.0);
          break;
        case EventKind::kCompileEnd:
          reg.add("javelin_compiles_total",
                  track + "," + label("level", num(ev.a)), 1.0);
          break;
        default:
          break;
      }
    }

    for (const auto& [name, value] : buf->stats()) {
      const std::string metric = "javelin_" + name;
      reg.declare(metric, MetricType::kGauge, "End-of-cell stat.");
      reg.set(metric, track, value);
    }
  }
  return reg;
}

}  // namespace javelin::obs
