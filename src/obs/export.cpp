#include "obs/export.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace javelin::obs {

namespace {

/// printf-append with a bounded stack buffer (every caller formats short
/// numeric fields).
void appendf(std::string& out, const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// JSON string escaping (quotes, backslash, control characters).
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          appendf(out, "\\u%04x", c);
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void append_ledger_args(std::string& out, const EnergyLedger& e) {
  // server_j is the wall-powered server's line, additive alongside the
  // client-battery fields; total_j remains the client meter delta only.
  appendf(out,
          "\"compute_j\":%.9g,\"comm_j\":%.9g,\"idle_j\":%.9g,"
          "\"dram_j\":%.9g,\"total_j\":%.9g,\"server_j\":%.9g",
          e.compute_j, e.comm_j, e.idle_j, e.dram_j, e.total_j, e.server_j);
}

const char* chrome_phase(EventKind k) {
  switch (k) {
    case EventKind::kInvokeBegin:
    case EventKind::kCompileBegin:
      return "B";
    case EventKind::kInvokeEnd:
    case EventKind::kCompileEnd:
      return "E";
    case EventKind::kPowerDown:
    case EventKind::kIdleAwake:
    case EventKind::kRetryBackoff:
      return "X";
    default:
      return "i";
  }
}

void append_chrome_event(std::string& out, const TraceBuffer& buf,
                         std::size_t pid, const TraceEvent& ev) {
  const char* ph = chrome_phase(ev.kind);
  out += ",\n{\"ph\":\"";
  out += ph;
  out += "\",\"pid\":";
  appendf(out, "%zu", pid);
  out += ",\"tid\":0,\"ts\":";
  appendf(out, "%.3f", ev.t_s * 1e6);
  if (ph[0] == 'X') appendf(out, ",\"dur\":%.3f", ev.dur_s * 1e6);
  if (ph[0] == 'i') out += ",\"s\":\"t\"";
  out += ",\"cat\":";
  append_json_string(out, event_kind_name(ev.kind));
  out += ",\"name\":";
  append_json_string(out, ev.name >= 0 ? buf.string_at(ev.name)
                                       : event_kind_name(ev.kind));
  out += ",\"args\":{";
  if (ev.detail >= 0) {
    out += "\"detail\":";
    append_json_string(out, buf.string_at(ev.detail));
    out += ",";
  }
  appendf(out, "\"method_id\":%d,\"a\":%.9g,\"b\":%.9g,", ev.method_id, ev.a,
          ev.b);
  if (ev.kind == EventKind::kDecide) {
    out += "\"costs\":[";
    for (std::size_t i = 0; i < kNumDecideCosts; ++i)
      appendf(out, i ? ",%.9g" : "%.9g", ev.costs[i]);
    out += "],";
  }
  append_ledger_args(out, ev.ledger);
  out += "}}";
}

}  // namespace

std::string chrome_trace_json(const TraceCollector& collector) {
  const auto buffers = collector.ordered();
  std::string out;
  out.reserve(4096);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t pid = 0; pid < buffers.size(); ++pid) {
    const TraceBuffer& buf = *buffers[pid];
    // Track identity: one "process" per (scenario, strategy) cell.
    for (const char* meta : {"process_name", "thread_name"}) {
      out += first ? "\n" : ",\n";
      first = false;
      appendf(out, "{\"ph\":\"M\",\"pid\":%zu,\"tid\":0,\"name\":\"%s\","
                   "\"args\":{\"name\":",
              pid, meta);
      append_json_string(out, buf.track());
      out += "}}";
    }
    for (const TraceEvent& ev : buf.events())
      append_chrome_event(out, buf, pid, ev);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string text_dump(const TraceCollector& collector) {
  std::string out;
  for (const TraceBuffer* buf : collector.ordered()) {
    out += "== ";
    out += buf->track();
    out += "\n";
    for (const TraceEvent& ev : buf->events()) {
      appendf(out, "%s t=%.9f dur=%.9f", event_kind_name(ev.kind), ev.t_s,
              ev.dur_s);
      if (ev.name >= 0) {
        out += " name=";
        out += buf->string_at(ev.name);
      }
      if (ev.detail >= 0) {
        out += " detail=";
        out += buf->string_at(ev.detail);
      }
      appendf(out, " m=%d a=%.9g b=%.9g", ev.method_id, ev.a, ev.b);
      if (ev.kind == EventKind::kDecide) {
        out += " costs=[";
        for (std::size_t i = 0; i < kNumDecideCosts; ++i)
          appendf(out, i ? ",%.9g" : "%.9g", ev.costs[i]);
        out += "]";
      }
      appendf(out, " e=[%.9g,%.9g,%.9g,%.9g,%.9g,%.9g]\n",
              ev.ledger.compute_j, ev.ledger.comm_j, ev.ledger.idle_j,
              ev.ledger.dram_j, ev.ledger.total_j, ev.ledger.server_j);
    }
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      const auto v = buf->counter(static_cast<Counter>(c));
      if (v)
        appendf(out, "counter %s %llu\n", counter_name(static_cast<Counter>(c)),
                static_cast<unsigned long long>(v));
    }
    for (const auto& [name, value] : buf->stats())
      appendf(out, "stat %s %.9g\n", name.c_str(), value);
  }
  return out;
}

// ---- minimal JSON validity checker ----------------------------------------

namespace {

struct JsonParser {
  std::string_view s;
  std::size_t pos = 0;
  std::string err;
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (err.empty())
      err = what + " at byte " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r'))
      ++pos;
  }
  bool consume(char c) {
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_string() {
    if (!consume('"')) return fail("expected string");
    while (pos < s.size()) {
      const auto c = static_cast<unsigned char>(s[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos;
        if (pos >= s.size()) return fail("truncated escape");
        const char e = s[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= s.size() || !std::isxdigit(
                    static_cast<unsigned char>(s[pos])))
              return fail("bad \\u escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_number() {
    const std::size_t start = pos;
    consume('-');
    if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos])))
      return fail("bad number");
    if (s[pos] == '0') {
      ++pos;
    } else {
      while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos])))
        ++pos;
    }
    if (consume('.')) {
      if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos])))
        return fail("bad fraction");
      while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos])))
        ++pos;
    }
    if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos])))
        return fail("bad exponent");
      while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos])))
        ++pos;
    }
    return pos > start;
  }

  bool parse_literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) return fail("bad literal");
    pos += lit.size();
    return true;
  }

  bool parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= s.size()) return fail("unexpected end of input");
    switch (s[pos]) {
      case '{': {
        ++pos;
        skip_ws();
        if (consume('}')) return true;
        for (;;) {
          skip_ws();
          if (!parse_string()) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':'");
          if (!parse_value(depth + 1)) return false;
          skip_ws();
          if (consume('}')) return true;
          if (!consume(',')) return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (consume(']')) return true;
        for (;;) {
          if (!parse_value(depth + 1)) return false;
          skip_ws();
          if (consume(']')) return true;
          if (!consume(',')) return fail("expected ',' or ']'");
        }
      }
      case '"':
        return parse_string();
      case 't':
        return parse_literal("true");
      case 'f':
        return parse_literal("false");
      case 'n':
        return parse_literal("null");
      default:
        return parse_number();
    }
  }
};

}  // namespace

bool json_valid(std::string_view text, std::string* err) {
  JsonParser p{text};
  if (!p.parse_value(0)) {
    if (err) *err = p.err;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err) *err = "trailing garbage at byte " + std::to_string(p.pos);
    return false;
  }
  return true;
}

bool write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

bool export_chrome_trace(const TraceCollector& collector, const char* bench,
                         const std::string& path) {
  const std::string json = chrome_trace_json(collector);
  std::string err;
  if (!json_valid(json, &err)) {
    std::fprintf(stderr, "%s: invalid trace JSON: %s\n", bench, err.c_str());
    return false;
  }
  if (!write_file(path, json)) return false;
  std::fprintf(stderr, "[trace] %zu tracks -> %s (%zu bytes)\n",
               collector.size(), path.c_str(), json.size());
  return true;
}

}  // namespace javelin::obs
