// Behavioral snapshots: a versioned, deterministic digest of a trace.
//
// The figures and ablations pin *energy totals*, and the trace layer records
// *everything* — but neither catches silent decision-policy drift: a change
// that flips a decide() outcome, reorders retry/backoff sequences or shifts
// a breaker transition can leave end-of-run energies plausible while the
// runtime's behavior is quietly different. This module projects a
// TraceCollector into a canonical per-cell *event-sequence* digest — the
// decide candidate-cost vectors and chosen modes, compile level transitions,
// remote attempt/failure/backoff/breaker sequences, and power-down spans —
// and diffs two digests *structurally*, reporting the first divergence with
// a ±N event context window. Energy ledgers and timestamps are deliberately
// NOT part of the digest: those are covered by the byte-identity checks on
// bench output; this layer gates the event *sequences* behind them.
//
// Format: a line-oriented text file ("javelin-snapshot v1"), one event per
// line, strings percent-escaped, doubles printed with %.17g so that
// parse(render(x)) == x exactly. Snapshots of the same scenario are byte-
// identical at any JAVELIN_JOBS (buffers merge in collector order).
//
// Consumers: apps/javelin_tracediff (record/diff/check CLI),
// tests/trace_regression_test (in-process golden gate), sim::goldens (the
// scenario suites whose snapshots live in tests/golden/).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace javelin::obs {

/// Bump when the projection rules or the text format change; `diff` refuses
/// to compare snapshots of different versions (regenerate goldens instead).
inline constexpr int kSnapshotVersion = 1;

/// Behavioral event classes retained by the projection — a deliberate subset
/// of EventKind. Excluded: kFault (injector-side episodes whose behavioral
/// consequences already surface as failure/retry events), kAnalysis (cost-
/// model estimates, not runtime behavior), and the energy/time payloads of
/// every event.
enum class SnapKind : std::uint8_t {
  kInvoke = 0,     ///< Invocation begins: name = method, detail = strategy.
  kInvokeEnd,      ///< ... ends: detail = *executed* mode (fallback visible).
  kDecide,         ///< name = chosen mode, detail = "remote-compile" if the
                   ///< compile will be downloaded, a = predicted size EWMA,
                   ///< b = invocation count k, costs = EI/ER/EL1..EL3.
  kCompileBegin,   ///< name = method, detail = local/remote/baseline,
                   ///< a = level.
  kCompileEnd,     ///< detail = local/downloaded/fallback-local/
                   ///< compile-error/baseline, a = level (cycles excluded).
  kRemoteAttempt,  ///< name = "invoke"/"compile", a = attempt number.
  kRemoteFailure,  ///< detail = failure class, a = attempt number.
  kBackoff,        ///< a = backoff span seconds (policy-derived).
  kBreaker,        ///< name = new state, detail = old state,
                   ///< a = consecutive failures.
  kPowerDown,      ///< a = powered-down span seconds.
  kIdleAwake,      ///< a = awake-idle span seconds.
  kBoundsFault,    ///< name = method, detail = fault message.
  kCount
};

constexpr std::size_t kNumSnapKinds = static_cast<std::size_t>(SnapKind::kCount);

/// Stable one-token name used in the text format ("decide", "power-down"...).
const char* snap_kind_name(SnapKind k);

/// One projected event. Field meanings are per-kind (see SnapKind); fields a
/// kind does not use stay at their defaults so equality is uniform.
struct SnapEvent {
  SnapKind kind = SnapKind::kInvoke;
  std::int32_t method_id = -1;
  std::string name;
  std::string detail;
  double a = 0.0;
  double b = 0.0;
  std::array<double, kNumDecideCosts> costs{};  ///< kDecide only.

  bool operator==(const SnapEvent&) const = default;
};

/// The digest of one cell (one TraceBuffer).
struct SnapTrack {
  std::string track;
  std::vector<SnapEvent> events;

  bool operator==(const SnapTrack&) const = default;
};

struct Snapshot {
  int version = kSnapshotVersion;
  std::string label;  ///< Scenario name ("fig6", "ablation_faults", ...).
  std::vector<SnapTrack> tracks;

  bool operator==(const Snapshot&) const = default;
};

/// Project a collector into a snapshot. Purely a read: iterates
/// `collector.ordered()`, so the result is byte-identical at any
/// JAVELIN_JOBS for a deterministic scenario.
Snapshot project(const TraceCollector& collector, std::string label);

/// Canonical text form. `parse(render(x)) == x` exactly (doubles round-trip
/// via %.17g; strings are percent-escaped).
std::string render(const Snapshot& snap);

/// Parse the canonical text form; throws support::FormatError (with a line
/// number) on anything malformed, unknown versions included.
Snapshot parse(std::string_view text);

/// One event formatted as a single human-readable line (also the exact line
/// the text format uses — handy in diff reports).
std::string format_event(const SnapEvent& e);

/// Structural comparison result. `identical` means equal snapshots (labels
/// excluded — a golden may be compared against a freshly recorded run whose
/// label differs). When not identical, the first divergence is located by
/// (track_index, event_index): event_index == -1 marks a track-level
/// divergence (renamed / missing / extra track). `diff(a, b)` and
/// `diff(b, a)` locate the same position.
struct DiffResult {
  bool identical = true;
  std::int64_t track_index = -1;
  std::string track;            ///< Label of the divergent track ("" = none).
  std::int64_t event_index = -1;
  std::string summary;  ///< One line: where and what diverged.
  std::string report;   ///< Multi-line: summary + ±context event window.
};

/// Compare `golden` against `current`, reporting the first divergence with
/// `context` events of context on each side. Sequences only: any energy or
/// timing drift that leaves the projected fields equal is NOT a divergence.
DiffResult diff(const Snapshot& golden, const Snapshot& current,
                int context = 3);

/// Machine-readable form of a DiffResult (strict JSON; obs::json_valid).
std::string diff_json(const DiffResult& d);

}  // namespace javelin::obs
