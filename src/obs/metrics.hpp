// Metrics registry with a Prometheus text-format exporter.
//
// Two layers:
//  * MetricsRegistry — a plain, deterministic container of counter / gauge /
//    histogram families keyed by (metric name, label set). Families and
//    samples live in sorted maps, so `prometheus_text()` is byte-identical
//    for the same logical contents regardless of insertion order.
//  * build_metrics — turns a TraceCollector into a populated registry:
//    hook counters become per-track counters, invoke-end ledgers feed the
//    energy-per-invocation histogram, remote failures / retries / breaker
//    transitions are tallied from events, and end-of-cell stats (cache hit
//    rates, decode-cache sizes, breaker state) become gauges. Buffers are
//    consumed in TraceCollector::ordered() order, so double accumulation
//    (histogram sums) is deterministic at any JAVELIN_JOBS.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace javelin::obs {

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

/// Fixed log-scale bucket upper bounds (joules) for energy-per-invocation
/// histograms; an implicit +Inf bucket follows. Spans the simulator's range
/// from sub-µJ interpreted calls to multi-J remote exchanges.
inline constexpr std::array<double, 10> kEnergyBucketsJ{
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0};

class MetricsRegistry {
 public:
  /// Register family metadata (idempotent; first help/type wins).
  void declare(const std::string& name, MetricType type,
               const std::string& help);

  /// Accumulate into a counter sample. `labels` is the pre-rendered label
  /// block without braces, e.g. `track="fe/good/AA"` ("" = no labels).
  void add(const std::string& name, const std::string& labels, double v);

  /// Set a gauge sample (last write wins).
  void set(const std::string& name, const std::string& labels, double v);

  /// Record one observation into a histogram sample (kEnergyBucketsJ).
  void observe(const std::string& name, const std::string& labels, double v);

  /// Render everything in Prometheus text exposition format (families and
  /// samples in lexicographic order; histograms emit _bucket/_sum/_count).
  std::string prometheus_text() const;

 private:
  struct Histogram {
    std::array<std::uint64_t, kEnergyBucketsJ.size() + 1> buckets{};
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<std::string, double> samples;      // counter / gauge
    std::map<std::string, Histogram> hists;     // histogram
  };

  Family& family(const std::string& name, MetricType type,
                 const std::string& help);

  std::map<std::string, Family> families_;
};

/// Render one label pair, escaping the value per the Prometheus text format.
std::string label(std::string_view key, std::string_view value);

/// Aggregate a collected trace into a metrics registry (see file comment).
MetricsRegistry build_metrics(const TraceCollector& collector);

}  // namespace javelin::obs
