// Trace exporters: Chrome trace-event JSON (chrome://tracing / Perfetto
// loadable), a compact deterministic text dump for tests, and a minimal
// JSON validity checker used by the round-trip ctest and the trace demo.
//
// Determinism contract: both exporters iterate TraceCollector::ordered()
// (cell-index order) and format every number with fixed printf conversions,
// so output is byte-identical at any JAVELIN_JOBS for a fixed seed.
#pragma once

#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace javelin::obs {

/// Serialize the collected trace in Chrome trace-event JSON ("JSON object
/// format": {"traceEvents":[...]}). One track per buffer: pid = the
/// buffer's position in deterministic order, with process_name/thread_name
/// metadata carrying the track label. Begin/end pairs become ph "B"/"E",
/// spans become complete events ("X"), the rest instants ("i"); timestamps
/// are simulated microseconds.
std::string chrome_trace_json(const TraceCollector& collector);

/// Compact deterministic text dump: one header line per track, one line per
/// event with fixed-precision fields. The test-facing stable format.
std::string text_dump(const TraceCollector& collector);

/// Minimal strict JSON validity checker (objects, arrays, strings with
/// escapes, numbers, true/false/null; rejects trailing garbage and NaN/Inf).
/// On failure returns false and, if `err` is non-null, sets a short
/// description with the byte offset.
bool json_valid(std::string_view text, std::string* err = nullptr);

/// Write `content` to `path`; returns false (and prints to stderr) on error.
bool write_file(const std::string& path, std::string_view content);

/// The shared tail of every bench's opt-in JAVELIN_TRACE_JSON export:
/// serialize `collector` as Chrome trace JSON, validate it, write it to
/// `path` and log a one-line `[trace]` summary to stderr. Returns false
/// (having printed the reason, prefixed with `bench`) on invalid JSON or a
/// write failure.
bool export_chrome_trace(const TraceCollector& collector, const char* bench,
                         const std::string& path);

}  // namespace javelin::obs
