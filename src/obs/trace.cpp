#include "obs/trace.hpp"

#include <algorithm>

namespace javelin::obs {

EnergyLedger EnergyLedger::since(const energy::EnergyMeter& now,
                                 const energy::EnergyMeter& earlier) {
  using energy::Subsystem;
  EnergyLedger d;
  d.compute_j = now.of(Subsystem::kCore) - earlier.of(Subsystem::kCore);
  d.comm_j = now.communication() - earlier.communication();
  d.idle_j = now.of(Subsystem::kIdle) - earlier.of(Subsystem::kIdle);
  d.dram_j = now.of(Subsystem::kDram) - earlier.of(Subsystem::kDram);
  // The canonical sum: the exact expression InvokeReport::energy_j uses
  // (meter.total() delta), so ledger sums reproduce StrategyResult energies
  // bit-for-bit rather than re-associating the component additions.
  d.total_j = now.total() - earlier.total();
  return d;
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kInvokeBegin: return "invoke-begin";
    case EventKind::kInvokeEnd: return "invoke-end";
    case EventKind::kDecide: return "decide";
    case EventKind::kCompileBegin: return "compile-begin";
    case EventKind::kCompileEnd: return "compile-end";
    case EventKind::kRemoteAttempt: return "remote-attempt";
    case EventKind::kRemoteFailure: return "remote-failure";
    case EventKind::kRetryBackoff: return "retry-backoff";
    case EventKind::kBreakerTransition: return "breaker-transition";
    case EventKind::kPowerDown: return "power-down";
    case EventKind::kIdleAwake: return "idle-awake";
    case EventKind::kFault: return "fault";
    case EventKind::kAnalysis: return "analysis";
    case EventKind::kBoundsFault: return "bounds-fault";
    case EventKind::kCount: break;
  }
  return "?";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kInterpRunsDecoded: return "interp_runs_decoded";
    case Counter::kInterpRunsUndecoded: return "interp_runs_undecoded";
    case Counter::kEngineNativeCalls: return "engine_native_calls";
    case Counter::kRadioTxMessages: return "radio_tx_messages";
    case Counter::kRadioTxBytes: return "radio_tx_bytes";
    case Counter::kRadioRxMessages: return "radio_rx_messages";
    case Counter::kRadioRxBytes: return "radio_rx_bytes";
    case Counter::kFaultMessages: return "fault_messages";
    case Counter::kFaultLosses: return "fault_losses";
    case Counter::kFaultCorruptions: return "fault_corruptions";
    case Counter::kFaultSpikes: return "fault_spikes";
    case Counter::kJitCompiles: return "jit_compiles";
    case Counter::kJitIrInstrsIn: return "jit_ir_instrs_in";
    case Counter::kJitIrInstrsOut: return "jit_ir_instrs_out";
    case Counter::kInterpRunsBaseline: return "interp_runs_baseline";
    case Counter::kEngineBaselineCalls: return "engine_baseline_calls";
    case Counter::kCount: break;
  }
  return "?";
}

std::int32_t TraceBuffer::intern(std::string_view s) {
  const auto it = intern_.find(std::string(s));
  if (it != intern_.end()) return it->second;
  const auto id = static_cast<std::int32_t>(strings_.size());
  strings_.emplace_back(s);
  intern_.emplace(strings_.back(), id);
  return id;
}

const std::string& TraceBuffer::string_at(std::int32_t id) const {
  static const std::string empty;
  if (id < 0 || static_cast<std::size_t>(id) >= strings_.size()) return empty;
  return strings_[static_cast<std::size_t>(id)];
}

TraceBuffer* TraceCollector::make_buffer(std::string track,
                                         std::uint64_t order_key) {
  auto buf = std::make_unique<TraceBuffer>(std::move(track));
  TraceBuffer* raw = buf.get();
  const std::lock_guard<std::mutex> lock(mu_);
  buffers_.emplace_back(order_key, std::move(buf));
  return raw;
}

std::vector<const TraceBuffer*> TraceCollector::ordered() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::uint64_t, const TraceBuffer*>> keyed;
  keyed.reserve(buffers_.size());
  for (const auto& [key, buf] : buffers_) keyed.emplace_back(key, buf.get());
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& x, const auto& y) {
              if (x.first != y.first) return x.first < y.first;
              return x.second->track() < y.second->track();
            });
  std::vector<const TraceBuffer*> out;
  out.reserve(keyed.size());
  for (const auto& [key, buf] : keyed) out.push_back(buf);
  return out;
}

std::size_t TraceCollector::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

}  // namespace javelin::obs
