// Cross-layer tracing: typed event buffers with per-event energy attribution.
//
// The paper's argument is about *where energy goes* — per-invocation splits
// across computation, communication, compilation and idle (Figs 6–8) — but
// the simulator's native outputs are end-of-run aggregates. This module adds
// the missing diagnostic layer: every interesting runtime event (method
// invoke begin/end, the helper-method decision with its candidate-cost
// vector, JIT compiles per optimization level, remote exchange attempts and
// failures, circuit-breaker transitions, power-down windows, fault episodes)
// is recorded as a typed TraceEvent stamped with *simulated* time and an
// energy-delta ledger split by subsystem.
//
// Design rules:
//  * Zero overhead when disabled. Every hook site holds a raw
//    `obs::TraceBuffer*` that defaults to nullptr and guards with a single
//    null check; no RNG draw, no meter charge, no allocation happens on the
//    disabled path, so all fig/ablation outputs are byte-identical with
//    tracing off.
//  * Tracing never perturbs the simulation. Hooks only *read* simulated
//    state (time, meter, breaker); they charge nothing and draw nothing, so
//    enabling tracing leaves every StrategyResult bit-identical too
//    (tests/trace_determinism_test.cpp pins this).
//  * Lock-free per thread. One TraceBuffer belongs to exactly one simulation
//    cell, which runs on one worker; buffers are registered with a
//    TraceCollector under an explicit order key (the cell index), so exports
//    merge in cell order and are byte-identical at any JAVELIN_JOBS.
//  * Simulated time only. Events are stamped with Client::now()-style
//    simulated seconds — never host clocks — which is what makes traces
//    reproducible across hosts and worker counts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "energy/energy.hpp"

namespace javelin::obs {

/// Energy attribution for one event: the client meter's delta over the
/// event, split the way the paper reports it (computation / communication /
/// idle, with DRAM broken out of computation).
///
/// `total_j` is the canonical sum: it is computed as
/// `now.total() - earlier.total()`, the *same expression on the same
/// doubles* that `rt::InvokeReport::energy_j` uses, so summing the
/// invoke-end ledgers of a cell in event order reproduces
/// `sim::StrategyResult::total_energy_j` exactly (bit-for-bit), not merely
/// approximately.
struct EnergyLedger {
  double compute_j = 0.0;  ///< Core datapath.
  double comm_j = 0.0;     ///< Radio Tx + Rx.
  double idle_j = 0.0;     ///< Leakage / awake idle waits.
  double dram_j = 0.0;     ///< Off-chip memory accesses.
  double total_j = 0.0;    ///< Meter-total delta (see above).
  /// Wall-powered server energy spent on behalf of this event (remote
  /// execution + remote compilation), from the *server's* meters — a
  /// different meter line entirely, so it is NOT part of `total_j` (the
  /// client-battery delta the paper's figures report). `since()` leaves it
  /// zero; rt::Client fills it on kInvokeEnd from rt::Server::energy_j()
  /// deltas. Total-system energy of an invocation = total_j + server_j.
  double server_j = 0.0;

  /// Delta `now - earlier` of two snapshots from the same meter line.
  /// `server_j` is left zero: it belongs to a different device's meters.
  static EnergyLedger since(const energy::EnergyMeter& now,
                            const energy::EnergyMeter& earlier);
};

/// Event taxonomy (DESIGN.md §10). Begin/end pairs nest (invoke around
/// compile around remote attempts); the rest are instants or spans.
enum class EventKind : std::uint8_t {
  kInvokeBegin = 0,    ///< Top-level potential-method invocation starts.
  kInvokeEnd,          ///< ... ends; ledger covers the whole invocation.
  kDecide,             ///< Helper-method decision: costs[] + chosen mode.
  kCompileBegin,       ///< JIT compile (local or downloaded) starts.
  kCompileEnd,         ///< ... ends; a = level, b = compile cycles.
  kRemoteAttempt,      ///< One remote exchange attempt starts; a = attempt #.
  kRemoteFailure,      ///< Attempt failed; detail = class, ledger = wasted.
  kRetryBackoff,       ///< Awake-idle wait between retries (span).
  kBreakerTransition,  ///< name = new state, detail = old state.
  kPowerDown,          ///< Powered-down wait span (ends at wake).
  kIdleAwake,          ///< Awake idle wait span.
  kFault,              ///< Observed fault episode (loss/corruption/spike).
  kAnalysis,           ///< Static analysis of one method: name = qualified
                       ///< method, detail = verdict string, a = estimated
                       ///< energy (J), b = total pass effort (work units).
  kBoundsFault,        ///< Shadow-bounds violation aborted an invocation:
                       ///< name = qualified method, detail = fault message,
                       ///< ledger = energy spent before the abort.
  kCount
};

constexpr std::size_t kNumEventKinds = static_cast<std::size_t>(EventKind::kCount);

const char* event_kind_name(EventKind k);

/// Candidate-cost slots recorded by kDecide events: EI, ER, EL1, EL2, EL3.
/// A candidate excluded from the decision (open breaker) records
/// `kCostExcluded`.
inline constexpr std::size_t kNumDecideCosts = 5;
inline constexpr double kCostExcluded = -1.0;

/// One trace event. Strings are interned in the owning buffer (`name` /
/// `detail` are ids into TraceBuffer::strings(), -1 = none) so events stay
/// POD-sized and comparisons/exports are cheap.
struct TraceEvent {
  EventKind kind = EventKind::kInvokeBegin;
  double t_s = 0.0;    ///< Simulated start time, seconds.
  double dur_s = 0.0;  ///< Span duration (0 for instants).
  std::int32_t name = -1;       ///< Interned primary name.
  std::int32_t detail = -1;     ///< Interned secondary name.
  std::int32_t method_id = -1;  ///< Runtime method id, if any.
  double a = 0.0;               ///< Kind-specific payload.
  double b = 0.0;               ///< Kind-specific payload.
  std::array<double, kNumDecideCosts> costs{};  ///< kDecide only.
  EnergyLedger ledger;
};

/// Hot-path counters bumped by instrumentation hooks (one uint64 add each;
/// no strings, no allocation). Exported as Prometheus counters.
enum class Counter : std::uint8_t {
  kInterpRunsDecoded = 0,  ///< Interpreter runs served from the decode cache.
  kInterpRunsUndecoded,    ///< ... from the decode-per-iteration fallback.
  kEngineNativeCalls,      ///< Dispatches to installed native code.
  kRadioTxMessages,
  kRadioTxBytes,           ///< Framed (over-the-air) uplink bytes.
  kRadioRxMessages,
  kRadioRxBytes,           ///< Framed downlink bytes.
  kFaultMessages,          ///< Messages seen by the fault injector.
  kFaultLosses,            ///< Gilbert–Elliott losses injected.
  kFaultCorruptions,       ///< Corruption decisions sampled true.
  kFaultSpikes,            ///< Latency spikes injected.
  kJitCompiles,            ///< jit::compile_method completions.
  kJitIrInstrsIn,          ///< IR instructions before optimization (summed).
  kJitIrInstrsOut,         ///< IR instructions after optimization (summed).
  kInterpRunsBaseline,     ///< L0.5 baseline-tier runs (opt-in accounting).
  kEngineBaselineCalls,    ///< Dispatches to an installed L0.5 translation.
  kCount
};

constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);

/// Prometheus-safe base name, e.g. "interp_runs_decoded".
const char* counter_name(Counter c);

/// Append-only event/counter buffer for one simulation cell. Owned by a
/// TraceCollector (or stack-allocated in tests); used by exactly one thread,
/// so no locking anywhere on the hot path.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::string track) : track_(std::move(track)) {}

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Track label ("app/situation/strategy" in sweeps).
  const std::string& track() const { return track_; }

  void emit(const TraceEvent& e) { events_.push_back(e); }

  /// Intern `s`, returning a stable id (insertion-ordered, deterministic
  /// because each buffer is single-threaded).
  std::int32_t intern(std::string_view s);

  /// The interned string for `id` ("" for -1 / out of range).
  const std::string& string_at(std::int32_t id) const;

  void count(Counter c, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(c)] += n;
  }
  std::uint64_t counter(Counter c) const {
    return counters_[static_cast<std::size_t>(c)];
  }

  /// End-of-cell scalar stats (cache hit rates, breaker state, decode-cache
  /// sizes). Insertion-ordered; exported as Prometheus gauges.
  void set_stat(std::string_view name, double value) {
    stats_.emplace_back(std::string(name), value);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<std::pair<std::string, double>>& stats() const {
    return stats_;
  }

 private:
  std::string track_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::int32_t> intern_;
  std::array<std::uint64_t, kNumCounters> counters_{};
  std::vector<std::pair<std::string, double>> stats_;
};

/// Thread-safe registry of per-cell buffers. Creation takes a mutex (cold
/// path, once per cell); the buffers themselves are single-owner and
/// lock-free. `ordered()` sorts by (order_key, track), which sweeps set to
/// the cell index — the deterministic merge order every exporter uses.
class TraceCollector {
 public:
  /// Create and own a buffer. `order_key` fixes its position in exports
  /// regardless of which worker ran the cell or when it finished.
  TraceBuffer* make_buffer(std::string track, std::uint64_t order_key);

  /// Buffers sorted by (order_key, track). Call after the parallel phase.
  std::vector<const TraceBuffer*> ordered() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::uint64_t, std::unique_ptr<TraceBuffer>>> buffers_;
};

}  // namespace javelin::obs
