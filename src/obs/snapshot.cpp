#include "obs/snapshot.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/error.hpp"

namespace javelin::obs {

namespace {

constexpr const char* kMagic = "javelin-snapshot";

constexpr const char* kSnapKindNames[kNumSnapKinds] = {
    "invoke",         "invoke-end", "decide",  "compile-begin", "compile-end",
    "remote-attempt", "failure",    "backoff", "breaker",       "power-down",
    "idle-awake",     "bounds-fault",
};

/// Reverse lookup for parse(); -1 if `s` is not a kind name.
int snap_kind_of(std::string_view s) {
  for (std::size_t i = 0; i < kNumSnapKinds; ++i)
    if (s == kSnapKindNames[i]) return static_cast<int>(i);
  return -1;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// %.17g round-trips every finite double through strtod exactly.
void append_double(std::string& out, double v) { appendf(out, "%.17g", v); }

/// Percent-escape so a string becomes a single whitespace-free token:
/// '%', space, tab, CR, LF and other control bytes become %XX.
void append_escaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    if (c == '%' || c == ' ' || c < 0x21) {
      appendf(out, "%%%02X", c);
    } else {
      out.push_back(ch);
    }
  }
}

std::string unescape(std::string_view s, std::size_t line_no) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size())
      throw FormatError("snapshot line " + std::to_string(line_no) +
                        ": truncated %-escape");
    const auto hex = [&](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0)
      throw FormatError("snapshot line " + std::to_string(line_no) +
                        ": bad %-escape");
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

/// Split a line into whitespace-free tokens (single spaces separate fields).
std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> toks;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t sp = line.find(' ', pos);
    const std::size_t end = sp == std::string_view::npos ? line.size() : sp;
    if (end > pos) toks.push_back(line.substr(pos, end - pos));
    pos = end + 1;
  }
  return toks;
}

double parse_double(std::string_view tok, std::size_t line_no) {
  // Tokens are short and %-free; strtod needs NUL termination.
  char buf[64];
  if (tok.size() >= sizeof buf)
    throw FormatError("snapshot line " + std::to_string(line_no) +
                      ": number too long");
  std::memcpy(buf, tok.data(), tok.size());
  buf[tok.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + tok.size() || tok.empty())
    throw FormatError("snapshot line " + std::to_string(line_no) +
                      ": bad number '" + std::string(tok) + "'");
  return v;
}

std::int32_t parse_i32(std::string_view tok, std::size_t line_no) {
  char buf[32];
  if (tok.size() >= sizeof buf || tok.empty())
    throw FormatError("snapshot line " + std::to_string(line_no) +
                      ": bad integer");
  std::memcpy(buf, tok.data(), tok.size());
  buf[tok.size()] = '\0';
  char* end = nullptr;
  const long v = std::strtol(buf, &end, 10);
  if (end != buf + tok.size())
    throw FormatError("snapshot line " + std::to_string(line_no) +
                      ": bad integer '" + std::string(tok) + "'");
  return static_cast<std::int32_t>(v);
}

/// `tok` must look like "<key>=<value>"; returns the value part.
std::string_view expect_field(std::string_view tok, std::string_view key,
                              std::size_t line_no) {
  if (tok.size() < key.size() + 1 || tok.substr(0, key.size()) != key ||
      tok[key.size()] != '=')
    throw FormatError("snapshot line " + std::to_string(line_no) +
                      ": expected field '" + std::string(key) + "=', got '" +
                      std::string(tok) + "'");
  return tok.substr(key.size() + 1);
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          appendf(out, "\\u%04x", c);
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

/// Name the fields that differ between two events (for diff reports).
std::string field_difference(const SnapEvent& g, const SnapEvent& c) {
  std::string out;
  const auto add = [&out](const char* f) {
    if (!out.empty()) out += ", ";
    out += f;
  };
  if (g.kind != c.kind) add("kind");
  if (g.method_id != c.method_id) add("method_id");
  if (g.name != c.name) add("name");
  if (g.detail != c.detail) add("detail");
  if (g.a != c.a) add("a");
  if (g.b != c.b) add("b");
  if (g.costs != c.costs) add("costs");
  return out;
}

}  // namespace

const char* snap_kind_name(SnapKind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < kNumSnapKinds ? kSnapKindNames[i] : "?";
}

Snapshot project(const TraceCollector& collector, std::string label) {
  Snapshot snap;
  snap.label = std::move(label);
  for (const TraceBuffer* buf : collector.ordered()) {
    SnapTrack track;
    track.track = buf->track();
    track.events.reserve(buf->events().size());
    for (const TraceEvent& ev : buf->events()) {
      SnapEvent e;
      // Per-kind projection: only behavioral fields are copied; energy
      // ledgers and timestamps never are (see header).
      switch (ev.kind) {
        case EventKind::kInvokeBegin:
          e.kind = SnapKind::kInvoke;
          e.method_id = ev.method_id;
          e.name = buf->string_at(ev.name);
          e.detail = buf->string_at(ev.detail);  // Requested strategy.
          break;
        case EventKind::kInvokeEnd:
          e.kind = SnapKind::kInvokeEnd;
          e.method_id = ev.method_id;
          e.name = buf->string_at(ev.name);
          e.detail = buf->string_at(ev.detail);  // Executed mode.
          break;
        case EventKind::kDecide:
          e.kind = SnapKind::kDecide;
          e.method_id = ev.method_id;
          e.name = buf->string_at(ev.name);      // Chosen mode.
          e.detail = buf->string_at(ev.detail);  // "remote-compile" or "".
          e.a = ev.a;                            // Predicted size EWMA.
          e.b = ev.b;                            // Invocation count k.
          e.costs = ev.costs;
          break;
        case EventKind::kCompileBegin:
          e.kind = SnapKind::kCompileBegin;
          e.method_id = ev.method_id;
          e.name = buf->string_at(ev.name);
          e.detail = buf->string_at(ev.detail);
          e.a = ev.a;  // Level (0.5 for the baseline tier).
          break;
        case EventKind::kCompileEnd:
          e.kind = SnapKind::kCompileEnd;
          e.method_id = ev.method_id;
          e.name = buf->string_at(ev.name);
          e.detail = buf->string_at(ev.detail);
          e.a = ev.a;  // Level; compile cycles (b) are work, not behavior.
          break;
        case EventKind::kRemoteAttempt:
          e.kind = SnapKind::kRemoteAttempt;
          e.method_id = ev.method_id;
          e.name = buf->string_at(ev.name);  // "invoke" / "compile".
          e.a = ev.a;                        // Attempt number.
          break;
        case EventKind::kRemoteFailure:
          e.kind = SnapKind::kRemoteFailure;
          e.method_id = ev.method_id;
          e.detail = buf->string_at(ev.detail);  // Failure class.
          e.a = ev.a;                            // Attempt number.
          break;
        case EventKind::kRetryBackoff:
          e.kind = SnapKind::kBackoff;
          e.a = ev.dur_s;  // Policy-derived backoff span.
          break;
        case EventKind::kBreakerTransition:
          e.kind = SnapKind::kBreaker;
          e.name = buf->string_at(ev.name);      // New state.
          e.detail = buf->string_at(ev.detail);  // Old state.
          e.a = ev.a;                            // Consecutive failures.
          break;
        case EventKind::kPowerDown:
          e.kind = SnapKind::kPowerDown;
          e.a = ev.dur_s;
          break;
        case EventKind::kIdleAwake:
          e.kind = SnapKind::kIdleAwake;
          e.a = ev.dur_s;
          break;
        case EventKind::kBoundsFault:
          e.kind = SnapKind::kBoundsFault;
          e.method_id = ev.method_id;
          e.name = buf->string_at(ev.name);
          e.detail = buf->string_at(ev.detail);
          break;
        case EventKind::kFault:     // Injector episodes: consequences only.
        case EventKind::kAnalysis:  // Cost-model estimates, not behavior.
        case EventKind::kCount:
          continue;
      }
      track.events.push_back(std::move(e));
    }
    snap.tracks.push_back(std::move(track));
  }
  return snap;
}

std::string format_event(const SnapEvent& e) {
  std::string out;
  out += snap_kind_name(e.kind);
  appendf(out, " m=%" PRId32 " n=", e.method_id);
  append_escaped(out, e.name);
  out += " d=";
  append_escaped(out, e.detail);
  out += " a=";
  append_double(out, e.a);
  out += " b=";
  append_double(out, e.b);
  out += " c=";
  for (std::size_t i = 0; i < kNumDecideCosts; ++i) {
    if (i) out.push_back(',');
    append_double(out, e.costs[i]);
  }
  return out;
}

std::string render(const Snapshot& snap) {
  std::string out;
  out.reserve(1 << 16);
  appendf(out, "%s v%d\n", kMagic, snap.version);
  out += "label ";
  append_escaped(out, snap.label);
  out.push_back('\n');
  for (const SnapTrack& t : snap.tracks) {
    out += "track ";
    append_escaped(out, t.track);
    out.push_back('\n');
    for (const SnapEvent& e : t.events) {
      out += format_event(e);
      out.push_back('\n');
    }
  }
  return out;
}

Snapshot parse(std::string_view text) {
  Snapshot snap;
  snap.tracks.clear();
  SnapTrack* current = nullptr;
  std::size_t line_no = 0;
  bool saw_magic = false, saw_label = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = nl == std::string_view::npos ? text.size() : nl;
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (nl == std::string_view::npos && line.empty()) break;  // Trailing EOF.
    if (line.empty())
      throw FormatError("snapshot line " + std::to_string(line_no) +
                        ": empty line");
    const auto toks = tokens_of(line);
    if (!saw_magic) {
      if (toks.size() != 2 || toks[0] != kMagic || toks[1].size() < 2 ||
          toks[1][0] != 'v')
        throw FormatError("snapshot line 1: expected '" + std::string(kMagic) +
                          " v<N>' header");
      snap.version = parse_i32(toks[1].substr(1), line_no);
      if (snap.version != kSnapshotVersion)
        throw FormatError("snapshot version v" + std::to_string(snap.version) +
                          " unsupported (this build reads v" +
                          std::to_string(kSnapshotVersion) +
                          "); regenerate goldens");
      saw_magic = true;
      continue;
    }
    if (!saw_label) {
      if (toks.empty() || toks[0] != "label" || toks.size() > 2)
        throw FormatError("snapshot line " + std::to_string(line_no) +
                          ": expected 'label <name>'");
      snap.label = toks.size() == 2 ? unescape(toks[1], line_no) : "";
      saw_label = true;
      continue;
    }
    if (toks[0] == "track") {
      if (toks.size() != 2)
        throw FormatError("snapshot line " + std::to_string(line_no) +
                          ": expected 'track <name>'");
      snap.tracks.emplace_back();
      current = &snap.tracks.back();
      current->track = unescape(toks[1], line_no);
      continue;
    }
    const int kind = snap_kind_of(toks[0]);
    if (kind < 0)
      throw FormatError("snapshot line " + std::to_string(line_no) +
                        ": unknown event kind '" + std::string(toks[0]) + "'");
    if (current == nullptr)
      throw FormatError("snapshot line " + std::to_string(line_no) +
                        ": event before any 'track'");
    if (toks.size() != 7)
      throw FormatError("snapshot line " + std::to_string(line_no) +
                        ": expected 7 fields, got " +
                        std::to_string(toks.size()));
    SnapEvent e;
    e.kind = static_cast<SnapKind>(kind);
    e.method_id = parse_i32(expect_field(toks[1], "m", line_no), line_no);
    e.name = unescape(expect_field(toks[2], "n", line_no), line_no);
    e.detail = unescape(expect_field(toks[3], "d", line_no), line_no);
    e.a = parse_double(expect_field(toks[4], "a", line_no), line_no);
    e.b = parse_double(expect_field(toks[5], "b", line_no), line_no);
    std::string_view cs = expect_field(toks[6], "c", line_no);
    for (std::size_t i = 0; i < kNumDecideCosts; ++i) {
      const std::size_t comma = cs.find(',');
      const bool last = i + 1 == kNumDecideCosts;
      if (last != (comma == std::string_view::npos))
        throw FormatError("snapshot line " + std::to_string(line_no) +
                          ": expected " + std::to_string(kNumDecideCosts) +
                          " costs");
      e.costs[i] = parse_double(last ? cs : cs.substr(0, comma), line_no);
      if (!last) cs = cs.substr(comma + 1);
    }
    current->events.push_back(std::move(e));
  }
  if (!saw_magic)
    throw FormatError("snapshot: empty input (missing header)");
  if (!saw_label)
    throw FormatError("snapshot: missing 'label' line");
  return snap;
}

namespace {

/// Append up to `context` formatted events of `t` from [from, to) as
/// indented, index-numbered lines.
void append_context(std::string& out, const SnapTrack& t, std::int64_t from,
                    std::int64_t to, std::int64_t mark) {
  for (std::int64_t i = std::max<std::int64_t>(from, 0);
       i < to && i < static_cast<std::int64_t>(t.events.size()); ++i) {
    appendf(out, "  %s %5lld: ", i == mark ? ">" : " ",
            static_cast<long long>(i));
    out += format_event(t.events[static_cast<std::size_t>(i)]);
    out.push_back('\n');
  }
}

DiffResult track_level(std::int64_t index, std::string track,
                       std::string what) {
  DiffResult d;
  d.identical = false;
  d.track_index = index;
  d.track = std::move(track);
  d.event_index = -1;
  d.summary = std::move(what);
  d.report = d.summary + "\n";
  return d;
}

}  // namespace

DiffResult diff(const Snapshot& golden, const Snapshot& current, int context) {
  if (golden.version != current.version)
    return track_level(-1, "",
                       "snapshot version mismatch: golden v" +
                           std::to_string(golden.version) + " vs current v" +
                           std::to_string(current.version));
  const std::size_t shared = std::min(golden.tracks.size(),
                                      current.tracks.size());
  for (std::size_t ti = 0; ti < shared; ++ti) {
    const SnapTrack& g = golden.tracks[ti];
    const SnapTrack& c = current.tracks[ti];
    if (g.track != c.track)
      return track_level(static_cast<std::int64_t>(ti), g.track,
                         "track " + std::to_string(ti) + " renamed: golden '" +
                             g.track + "' vs current '" + c.track + "'");
    if (g.events == c.events) continue;

    // First divergent event (or the shorter length if one is a prefix).
    const std::size_t n = std::min(g.events.size(), c.events.size());
    std::size_t ei = 0;
    while (ei < n && g.events[ei] == c.events[ei]) ++ei;

    DiffResult d;
    d.identical = false;
    d.track_index = static_cast<std::int64_t>(ti);
    d.track = g.track;
    d.event_index = static_cast<std::int64_t>(ei);
    const auto e = static_cast<std::int64_t>(ei);
    std::string& r = d.report;
    if (ei >= n) {
      // One side ran out: a missing or extra tail.
      const bool golden_longer = g.events.size() > c.events.size();
      d.summary = "track '" + g.track + "' (index " + std::to_string(ti) +
                  "): event count differs at event " + std::to_string(ei) +
                  " — golden has " + std::to_string(g.events.size()) +
                  " events, current has " + std::to_string(c.events.size());
      r = d.summary + "\n";
      r += "common tail:\n";
      append_context(r, g, e - context, e, -1);
      r += golden_longer ? "golden continues (current ends here):\n"
                         : "current continues (golden ends here):\n";
      append_context(r, golden_longer ? g : c, e, e + context, e);
    } else {
      d.summary = "track '" + g.track + "' (index " + std::to_string(ti) +
                  "), event " + std::to_string(ei) + ": " +
                  field_difference(g.events[ei], c.events[ei]) + " differ(s)";
      r = d.summary + "\n";
      r += "common context:\n";
      append_context(r, g, e - context, e, -1);
      r += "- golden : " + format_event(g.events[ei]) + "\n";
      r += "+ current: " + format_event(c.events[ei]) + "\n";
      r += "golden continues:\n";
      append_context(r, g, e + 1, e + 1 + context, -1);
      r += "current continues:\n";
      append_context(r, c, e + 1, e + 1 + context, -1);
    }
    return d;
  }
  if (golden.tracks.size() != current.tracks.size()) {
    const bool golden_longer = golden.tracks.size() > current.tracks.size();
    const auto& longer = golden_longer ? golden : current;
    return track_level(
        static_cast<std::int64_t>(shared), longer.tracks[shared].track,
        std::string("track count differs: golden has ") +
            std::to_string(golden.tracks.size()) + ", current has " +
            std::to_string(current.tracks.size()) + "; first " +
            (golden_longer ? "missing" : "extra") + " track is '" +
            longer.tracks[shared].track + "'");
  }
  DiffResult d;  // Identical (labels excluded by design).
  d.summary = "identical: " + std::to_string(golden.tracks.size()) +
              " tracks match";
  d.report = d.summary + "\n";
  return d;
}

std::string diff_json(const DiffResult& d) {
  std::string out = "{\"identical\":";
  out += d.identical ? "true" : "false";
  appendf(out, ",\"track_index\":%lld,\"track\":",
          static_cast<long long>(d.track_index));
  append_json_string(out, d.track);
  appendf(out, ",\"event_index\":%lld,\"summary\":",
          static_cast<long long>(d.event_index));
  append_json_string(out, d.summary);
  out += ",\"report\":";
  append_json_string(out, d.report);
  out += "}\n";
  return out;
}

}  // namespace javelin::obs
