#include "sim/sweep.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace javelin::sim {

int sweep_jobs() {
  if (const char* env = std::getenv("JAVELIN_JOBS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

SweepEngine::SweepEngine(int jobs) : pool_(jobs >= 1 ? jobs : sweep_jobs()) {}

ScenarioSweepResult run_scenario_sweep(
    SweepEngine& engine, const ScenarioSweepSpec& spec,
    const std::function<void(const apps::App&)>& on_app_done) {
  const auto t0 = std::chrono::steady_clock::now();

  ScenarioSweepResult out;
  out.num_apps = spec.apps.size();
  out.num_situations = spec.situations.size();
  out.num_strategies = spec.strategies.size();
  out.jobs = engine.jobs();

  // Phase 1: deploy-time profiling, once per app, in parallel. The runners
  // are immutable afterwards and shared read-only by every cell.
  const auto runners = engine.map<std::shared_ptr<const ScenarioRunner>>(
      spec.apps.size(), [&spec](std::size_t i) {
        return std::make_shared<const ScenarioRunner>(*spec.apps[i],
                                                      spec.base_seed);
      });

  // Phase 2: fan out the cells. Each cell's seeds derive from its
  // coordinates (runner seed + situation), never from scheduling order.
  const std::size_t cells_per_app = out.num_situations * out.num_strategies;
  const std::size_t n_cells = out.num_apps * cells_per_app;
  std::vector<std::future<StrategyResult>> futures;
  futures.reserve(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    // Make the cell's trace buffer up front (cold path, mutex-guarded) so
    // the worker lambda only touches its own single-threaded buffer.
    obs::TraceBuffer* trace = nullptr;
    if (spec.collector) {
      const std::size_t app = cell / cells_per_app;
      const std::size_t rem = cell % cells_per_app;
      trace = spec.collector->make_buffer(
          spec.apps[app]->name + "/" +
              situation_tag(spec.situations[rem / out.num_strategies]) + "/" +
              rt::strategy_name(spec.strategies[rem % out.num_strategies]),
          static_cast<std::uint64_t>(cell));
    }
    futures.push_back(engine.pool().submit([&spec, &runners, cells_per_app,
                                            num_strategies = out.num_strategies,
                                            cell, trace] {
      const std::size_t app = cell / cells_per_app;
      const std::size_t rem = cell % cells_per_app;
      return runners[app]->run(spec.strategies[rem % num_strategies],
                               spec.situations[rem / num_strategies],
                               spec.executions, spec.verify,
                               &spec.client_config, trace);
    }));
  }
  out.cells.reserve(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    out.cells.push_back(futures[cell].get());
    if (on_app_done && (cell + 1) % cells_per_app == 0)
      on_app_done(*spec.apps[cell / cells_per_app]);
  }

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

void write_sweep_json(const std::string& path, const std::string& bench_name,
                      const ScenarioSweepResult& result, int executions) {
  write_sweep_json(path, bench_name, result.cells.size(), executions,
                   result.jobs, result.wall_seconds);
}

void write_sweep_json(const std::string& path, const std::string& bench_name,
                      std::size_t cells, int executions, int jobs,
                      double wall_seconds) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "sweep: cannot write %s\n", path.c_str());
    return;
  }
  const double rate =
      wall_seconds > 0.0 ? static_cast<double>(cells) / wall_seconds : 0.0;
  std::fprintf(f,
               "{\"bench\": \"%s\", \"cells\": %zu, \"executions\": %d, "
               "\"jobs\": %d, \"wall_seconds\": %.3f, "
               "\"cells_per_second\": %.3f}\n",
               bench_name.c_str(), cells, executions, jobs, wall_seconds, rate);
  std::fclose(f);
}

}  // namespace javelin::sim
