#include "sim/scenario.hpp"

namespace javelin::sim {

const char* situation_name(Situation s) {
  switch (s) {
    case Situation::kGoodChannelDominantSize:
      return "(i) good channel, dominant size";
    case Situation::kPoorChannelDominantSize:
      return "(ii) poor channel, dominant size";
    case Situation::kUniform:
      return "(iii) uniform channel and size";
  }
  return "?";
}

const char* situation_tag(Situation s) {
  switch (s) {
    case Situation::kGoodChannelDominantSize: return "good";
    case Situation::kPoorChannelDominantSize: return "poor";
    case Situation::kUniform: return "uniform";
  }
  return "?";
}

std::array<double, 4> channel_weights(Situation s) {
  switch (s) {
    case Situation::kGoodChannelDominantSize:
      return {0.05, 0.10, 0.15, 0.70};  // mostly Class 4 (best)
    case Situation::kPoorChannelDominantSize:
      return {0.55, 0.20, 0.15, 0.10};  // mostly Class 1/2 (poor)
    case Situation::kUniform:
      return {0.25, 0.25, 0.25, 0.25};
  }
  return {0.25, 0.25, 0.25, 0.25};
}

std::vector<double> scenario_scales(const apps::App& a, Situation s, Rng& rng,
                                    int executions) {
  std::vector<double> scales;
  scales.reserve(static_cast<std::size_t>(executions));
  const std::vector<double>& support = a.profile_scales;
  // Dominant size: the middle of the profiled range.
  const double dominant = support[support.size() / 2];
  for (int i = 0; i < executions; ++i) {
    switch (s) {
      case Situation::kGoodChannelDominantSize:
      case Situation::kPoorChannelDominantSize:
        if (rng.next_double() < 0.8) {
          scales.push_back(dominant);
        } else {
          scales.push_back(
              support[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(support.size()) - 1))]);
        }
        break;
      case Situation::kUniform:
        scales.push_back(
            support[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(support.size()) - 1))]);
        break;
    }
  }
  return scales;
}

ScenarioRunner::ScenarioRunner(const apps::App& app, std::uint64_t seed)
    : app_(app), classes_(app.classes), seed_(seed) {
  rt::profile_application(classes_,
                          {{app_.cls + "." + app_.method, app_.workload()}},
                          seed_ ^ 0x70f11e);
}

const jvm::EnergyProfile& ScenarioRunner::profile() const {
  for (const auto& cf : classes_) {
    if (cf.name != app_.cls) continue;
    const jvm::MethodInfo* mi = cf.find_method(app_.method);
    if (mi) return mi->profile;
  }
  throw Error("scenario: potential method not found");
}

StrategyResult ScenarioRunner::run_sequence(
    rt::Strategy strategy, radio::ChannelProcess& channel,
    const std::vector<double>& scales, bool verify, std::uint64_t seed,
    const rt::ClientConfig* config, obs::TraceBuffer* trace) const {
  rt::Server server;
  server.deploy(classes_);
  net::Link link(radio::CommModel{}, seed ^ 0x11777);
  if (fault_plan.enabled) {
    // The injector seed is a pure function of the cell seed, so sweeps stay
    // bit-identical at any JAVELIN_JOBS.
    net::FaultPlan plan = fault_plan;
    plan.seed = seed ^ 0xFA017;
    link.attach_faults(plan);
    server.set_fault_plan(plan);
  }
  rt::Client client(config ? *config : client_config, server, channel, link);
  // Attach the trace buffer (forwards through engine/interpreter/link/fault
  // injector) before deploy, so deploy-time events — the static-analysis
  // pass under DecisionPolicy::static_seed — are captured too. Hooks are
  // read-only, so enabling tracing cannot change `out`.
  if (trace) client.set_trace(trace);
  client.deploy(classes_);
  client.device().core.step_limit = 500'000'000'000ULL;

  StrategyResult out;
  Rng workload_rng(seed ^ 0xA0B1C2D3);
  Rng gap_rng(seed ^ 0x5e5e5e);

  for (double scale : scales) {
    client.skip_time(gap_rng.uniform_real(0.2, 2.0) * think_time_s * 2.0);
    const std::size_t mark = client.device().arena.heap_mark();
    const auto args = app_.make_args(client.device().vm, scale, workload_rng);
    rt::InvokeReport report;
    const jvm::Value result =
        client.run(app_.cls, app_.method, args, strategy, &report);
    if (verify &&
        !app_.check(client.device().vm, args, client.device().vm, result))
      out.all_correct = false;
    out.total_energy_j += report.energy_j;
    out.server_j += report.server_j;
    out.total_seconds += report.seconds;
    ++out.mode_counts[report.mode];
    if (report.compiled_this_call) ++out.compiles;
    if (report.remote_compile) ++out.remote_compiles;
    if (report.fallback_local) ++out.fallbacks;
    ++out.executions;
    out.retries += report.resilience.retries;
    out.bounds_faults += report.resilience.bounds_faults;
    out.wasted_retry_j += report.resilience.wasted_energy_j;
    for (std::size_t c = 0; c < rt::kNumFailureClasses; ++c) {
      out.remote_failures += report.resilience.failures[c];
      out.failures_by_class[c] += report.resilience.failures[c];
    }
    client.device().arena.heap_release(mark);
  }
  out.breaker_opened = client.breaker().times_opened;
  out.breaker_reclosed = client.breaker().times_reclosed;
  out.computation_j = client.device().meter.computation();
  out.communication_j = client.device().meter.communication();
  out.idle_j = client.device().meter.of(energy::Subsystem::kIdle);
  out.dram_j = client.device().meter.of(energy::Subsystem::kDram);
  if (trace) {
    // End-of-cell scalar stats (exported as Prometheus gauges).
    rt::Device& dev = client.device();
    const mem::CacheStats& ic = dev.hier.icache().stats();
    const mem::CacheStats& dc = dev.hier.dcache().stats();
    trace->set_stat("icache_hits", static_cast<double>(ic.hits));
    trace->set_stat("icache_misses", static_cast<double>(ic.misses));
    trace->set_stat("icache_hit_rate", ic.hit_rate());
    trace->set_stat("dcache_hits", static_cast<double>(dc.hits));
    trace->set_stat("dcache_misses", static_cast<double>(dc.misses));
    trace->set_stat("dcache_writebacks", static_cast<double>(dc.writebacks));
    trace->set_stat("dcache_hit_rate", dc.hit_rate());
    std::uint64_t decoded_methods = 0, decoded_insns = 0;
    for (std::size_t i = 0; i < dev.vm.num_methods(); ++i) {
      const auto& decoded = dev.vm.method(static_cast<std::int32_t>(i)).decoded;
      if (decoded.empty()) continue;
      ++decoded_methods;
      decoded_insns += decoded.size();
    }
    trace->set_stat("decode_cache_methods", static_cast<double>(decoded_methods));
    trace->set_stat("decode_cache_insns", static_cast<double>(decoded_insns));
    trace->set_stat("breaker_opened", static_cast<double>(out.breaker_opened));
    trace->set_stat("breaker_reclosed",
                    static_cast<double>(out.breaker_reclosed));
    trace->set_stat("total_energy_j", out.total_energy_j);
    trace->set_stat("server_energy_j", out.server_j);
    trace->set_stat("executions", static_cast<double>(out.executions));
  }
  return out;
}

StrategyResult ScenarioRunner::run(rt::Strategy strategy, Situation situation,
                                   int executions, bool verify,
                                   const rt::ClientConfig* config,
                                   obs::TraceBuffer* trace) const {
  Rng rng(seed_ ^ (static_cast<std::uint64_t>(situation) * 0x9e3779b9));
  const std::vector<double> scales =
      scenario_scales(app_, situation, rng, executions);
  radio::IidChannel channel(channel_weights(situation), /*dwell=*/0.25,
                            seed_ ^ 0xc4a77e1);
  return run_sequence(strategy, channel, scales, verify,
                      seed_ ^ (static_cast<std::uint64_t>(situation) << 8),
                      config, trace);
}

StrategyResult ScenarioRunner::run_single(rt::Strategy strategy, double scale,
                                          radio::PowerClass channel_class,
                                          bool verify,
                                          const rt::ClientConfig* config,
                                          obs::TraceBuffer* trace) const {
  radio::FixedChannel channel(channel_class);
  return run_sequence(strategy, channel, {scale}, verify,
                      seed_ ^ (static_cast<std::uint64_t>(channel_class) << 16),
                      config, trace);
}

}  // namespace javelin::sim
