#include "sim/goldens.hpp"

#include <memory>

#include "sim/sweep.hpp"

namespace javelin::sim {

namespace {

// ---- fig6: 3 apps x 2 inputs x 8 static strategy/channel variants ---------
// Exactly bench/fig6_static_strategies.cpp's grid (single executions are
// already cheap, so nothing is scaled down).

struct Fig6Variant {
  const char* label;
  rt::Strategy strategy;
  radio::PowerClass channel;
};

constexpr Fig6Variant kFig6Variants[] = {
    {"R@Class 4", rt::Strategy::kRemote, radio::PowerClass::kClass4},
    {"R@Class 3", rt::Strategy::kRemote, radio::PowerClass::kClass3},
    {"R@Class 2", rt::Strategy::kRemote, radio::PowerClass::kClass2},
    {"R@Class 1", rt::Strategy::kRemote, radio::PowerClass::kClass1},
    {"I", rt::Strategy::kInterpret, radio::PowerClass::kClass4},
    {"L1", rt::Strategy::kLocal1, radio::PowerClass::kClass4},
    {"L2", rt::Strategy::kLocal2, radio::PowerClass::kClass4},
    {"L3", rt::Strategy::kLocal3, radio::PowerClass::kClass4},
};

void run_fig6(obs::TraceCollector& collector) {
  const char* names[] = {"fe", "mf", "hpf"};
  constexpr std::size_t kNumApps = std::size(names);
  constexpr std::size_t kNumVariants = std::size(kFig6Variants);
  const std::size_t n_cells = kNumApps * 2 * kNumVariants;

  SweepEngine engine;
  const auto runners = engine.map<std::shared_ptr<const ScenarioRunner>>(
      kNumApps, [&names](std::size_t i) {
        return std::make_shared<const ScenarioRunner>(apps::app(names[i]));
      });

  std::vector<obs::TraceBuffer*> tracks(n_cells, nullptr);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    const std::size_t app = cell / (2 * kNumVariants);
    const bool large = (cell / kNumVariants) % 2 != 0;
    const Fig6Variant& v = kFig6Variants[cell % kNumVariants];
    tracks[cell] = collector.make_buffer(
        std::string(names[app]) + "/" + (large ? "large" : "small") + "/" +
            v.label,
        /*order_key=*/cell);
  }

  engine.map<int>(n_cells, [&runners, &names, &tracks](std::size_t cell) {
    const std::size_t app = cell / (2 * kNumVariants);
    const bool large = (cell / kNumVariants) % 2 != 0;
    const Fig6Variant& v = kFig6Variants[cell % kNumVariants];
    const apps::App& a = apps::app(names[app]);
    runners[app]->run_single(v.strategy,
                             large ? a.large_scale : a.small_scale, v.channel,
                             /*verify=*/true, /*config=*/nullptr,
                             tracks[cell]);
    return 0;
  });
}

// ---- fig7: the full 8 x 3 x 7 adaptive grid, executions scaled down -------
// bench/fig7_adaptive.cpp runs 300 executions per cell; the golden replays
// the same 168 cells at 4 executions — enough to exercise the EWMA warm-up,
// the compile-amortization cold start and the AA remote-compile choice,
// while keeping the whole suite replayable in seconds. Fixed count, no
// JAVELIN_FIG7_EXECS: goldens take no environment input.

constexpr int kFig7GoldenExecs = 4;

void run_fig7(obs::TraceCollector& collector) {
  constexpr rt::Strategy kStrategies[] = {
      rt::Strategy::kRemote,       rt::Strategy::kInterpret,
      rt::Strategy::kLocal1,       rt::Strategy::kLocal2,
      rt::Strategy::kLocal3,       rt::Strategy::kAdaptiveLocal,
      rt::Strategy::kAdaptiveAdaptive};
  constexpr Situation kSituations[] = {
      Situation::kGoodChannelDominantSize,
      Situation::kPoorChannelDominantSize, Situation::kUniform};

  ScenarioSweepSpec spec;
  for (const apps::App& a : apps::registry()) spec.apps.push_back(&a);
  spec.situations.assign(std::begin(kSituations), std::end(kSituations));
  spec.strategies.assign(std::begin(kStrategies), std::end(kStrategies));
  spec.executions = kFig7GoldenExecs;
  spec.collector = &collector;

  SweepEngine engine;
  run_scenario_sweep(engine, spec);
}

// ---- fig8: one traced L3 execution per app --------------------------------
// Mirrors bench/fig8_compilation.cpp's trace path: the figure itself reads
// deploy-time profiles, so its behavioral surface is the per-app L3
// compile-plan sequence (kCompileBegin/End spans) of a large-scale run.

void run_fig8(obs::TraceCollector& collector) {
  const auto& registry = apps::registry();
  SweepEngine engine;
  const auto runners = engine.map<std::shared_ptr<const ScenarioRunner>>(
      registry.size(), [&registry](std::size_t i) {
        return std::make_shared<const ScenarioRunner>(registry[i]);
      });
  std::vector<obs::TraceBuffer*> tracks(registry.size(), nullptr);
  for (std::size_t ai = 0; ai < registry.size(); ++ai)
    tracks[ai] =
        collector.make_buffer(registry[ai].name + "/L3", /*order_key=*/ai);
  engine.map<int>(registry.size(),
                  [&runners, &registry, &tracks](std::size_t ai) {
                    runners[ai]->run_single(
                        rt::Strategy::kLocal3, registry[ai].large_scale,
                        radio::PowerClass::kClass4, /*verify=*/true,
                        /*config=*/nullptr, tracks[ai]);
                    return 0;
                  });
}

// ---- ablation_faults: 6 fault regimes x 3 resilience policies -------------
// bench/ablation_faults.cpp's grid (fe, AA, uniform situation) at 40
// executions instead of 120: the burst-loss/outage/corruption episodes, the
// retry/backoff sequences and the breaker open/half-open/re-close cycle all
// occur well within 40 executions.

constexpr int kFaultsGoldenExecs = 40;

void run_faults(obs::TraceCollector& collector) {
  const apps::App& fe = apps::app("fe");
  const ScenarioRunner base(fe);
  const auto& faults = golden_fault_cases();
  const auto& policies = golden_policy_cases();

  std::vector<ScenarioRunner> runners;
  runners.reserve(faults.size());
  for (const GoldenFaultCase& fc : faults) {
    runners.push_back(base);
    runners.back().fault_plan = fc.plan;
  }

  const std::size_t n = faults.size() * policies.size();
  std::vector<obs::TraceBuffer*> tracks(n, nullptr);
  for (std::size_t i = 0; i < n; ++i)
    tracks[i] = collector.make_buffer(
        std::string(faults[i / policies.size()].label) + "/" +
            policies[i % policies.size()].label,
        /*order_key=*/i);

  SweepEngine engine;
  engine.map<int>(n, [&](std::size_t i) {
    const std::size_t fi = i / policies.size();
    const std::size_t pi = i % policies.size();
    rt::ClientConfig config = runners[fi].client_config;
    config.resilience = policies[pi].policy;
    runners[fi].run(rt::Strategy::kAdaptiveAdaptive, Situation::kUniform,
                    kFaultsGoldenExecs, /*verify=*/true, &config, tracks[i]);
    return 0;
  });
}

}  // namespace

const std::vector<GoldenFaultCase>& golden_fault_cases() {
  static const std::vector<GoldenFaultCase> cases = [] {
    std::vector<GoldenFaultCase> c;
    c.push_back({"fault-free", {}});

    net::FaultPlan mild;
    mild.enabled = true;
    mild.ge_p_good_to_bad = 0.05;
    mild.ge_p_bad_to_good = 0.5;
    mild.ge_loss_bad = 0.8;
    c.push_back({"mild burst loss", mild});

    net::FaultPlan heavy;
    heavy.enabled = true;
    heavy.ge_p_good_to_bad = 0.15;
    heavy.ge_p_bad_to_good = 0.3;
    heavy.ge_loss_bad = 0.9;
    c.push_back({"heavy burst loss", heavy});

    net::FaultPlan outage;
    outage.enabled = true;
    outage.outage_period_s = 30.0;
    outage.outage_duration_s = 6.0;
    outage.outage_phase_s = 10.0;
    c.push_back({"server outages", outage});

    net::FaultPlan corrupt;
    corrupt.enabled = true;
    corrupt.corrupt_uplink_p = 0.08;
    corrupt.corrupt_downlink_p = 0.08;
    c.push_back({"corruption", corrupt});

    net::FaultPlan works = mild;
    works.outage_period_s = 40.0;
    works.outage_duration_s = 5.0;
    works.corrupt_uplink_p = 0.04;
    works.corrupt_downlink_p = 0.04;
    works.spike_p = 0.05;
    works.spike_seconds = 0.4;
    c.push_back({"the works", works});
    return c;
  }();
  return cases;
}

const std::vector<GoldenPolicyCase>& golden_policy_cases() {
  static const std::vector<GoldenPolicyCase> cases = [] {
    std::vector<GoldenPolicyCase> c;
    c.push_back({"paper (1 try)", {}});

    rt::ResiliencePolicy retry;
    retry.max_attempts = 3;
    c.push_back({"retry x3", retry});

    rt::ResiliencePolicy breaker = retry;
    breaker.breaker_threshold = 4;
    breaker.breaker_cooldown_s = 20.0;
    c.push_back({"retry+breaker", breaker});
    return c;
  }();
  return cases;
}

const std::vector<GoldenScenario>& golden_scenarios() {
  static const std::vector<GoldenScenario> scenarios = {
      {"fig6",
       "static strategies grid (3 apps x 2 inputs x 8 variants, 1 exec)",
       &run_fig6},
      {"fig7",
       "adaptive grid (8 apps x 3 situations x 7 strategies, 4 execs)",
       &run_fig7},
      {"fig8", "per-app L3 compile-plan sequence (8 apps, 1 exec)", &run_fig8},
      {"ablation_faults",
       "fault regimes x resilience policies (fe, AA, 40 execs)", &run_faults},
  };
  return scenarios;
}

const GoldenScenario* find_golden_scenario(std::string_view name) {
  for (const GoldenScenario& s : golden_scenarios())
    if (name == s.name) return &s;
  return nullptr;
}

}  // namespace javelin::sim
