// Golden behavioral scenarios: the fixed trace-producing suites whose
// snapshots (obs/snapshot.hpp) are checked into tests/golden/ and gated by
// tests/trace_regression_test.cpp and `javelin_tracediff --check`.
//
// Each scenario is a deterministic, reduced-size replica of a shipped bench
// grid: same cell coordinates, same seeds-from-coordinates derivation, same
// track naming — only the execution counts are scaled down so the whole
// suite replays in seconds on a one-core host. Scenarios take NO environment
// input (no JAVELIN_FIG7_EXECS-style overrides): a golden must mean the same
// thing in every build. Worker fan-out uses the normal SweepEngine, so
// snapshots are byte-identical at any JAVELIN_JOBS (pinned by
// tests/snapshot_test.cpp).
//
// Regenerate after an *intentional* behavioral change with the
// `regen-goldens` CMake target (runs `javelin_tracediff record --all`); the
// golden files' diff is then auditable in review.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/fault.hpp"
#include "obs/trace.hpp"
#include "rt/client.hpp"

namespace javelin::sim {

struct GoldenScenario {
  const char* name;         ///< Snapshot label and golden file stem.
  const char* description;  ///< One line for CLI listings.
  /// Run the scenario, recording every cell into `collector` (tracks are
  /// created with order_key = cell index; see obs::TraceCollector).
  void (*run)(obs::TraceCollector& collector);
};

/// The registry, in canonical order: fig6, fig7, fig8, ablation_faults.
const std::vector<GoldenScenario>& golden_scenarios();

/// Lookup by name; nullptr when unknown.
const GoldenScenario* find_golden_scenario(std::string_view name);

/// The fault-regime and resilience-policy grids shared by the faults golden
/// and bench/ablation_faults (single definition, so the golden gates exactly
/// the grid the bench reports).
struct GoldenFaultCase {
  const char* label;
  net::FaultPlan plan;
};
struct GoldenPolicyCase {
  const char* label;
  rt::ResiliencePolicy policy;
};
const std::vector<GoldenFaultCase>& golden_fault_cases();
const std::vector<GoldenPolicyCase>& golden_policy_cases();

}  // namespace javelin::sim
