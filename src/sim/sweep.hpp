// Parallel sweep engine for the paper's figure and ablation experiments.
//
// Every headline result is a grid of independent simulation cells — Fig 7
// alone is 8 apps x 3 situations x 7 strategies, each executing the app 300
// times. Cells share no simulated state (each constructs its own server,
// client, link and arena), so they fan out across host cores.
//
// Determinism contract: a cell's RNG seeds are pure functions of its cell
// coordinates (app, situation/channel, strategy) and the base experiment
// seed — ScenarioRunner::run derives them that way — and results are written
// into a cell-indexed grid. Output is therefore bit-identical to the serial
// run at any worker count; JAVELIN_JOBS only changes wall-clock time.
//
// Two layers:
//  * SweepEngine::map — generic ordered fan-out (results[i] = fn(i)) used by
//    the Fig 6/8 and ablation benches whose cells are bespoke;
//  * run_scenario_sweep — the canonical (app x situation x strategy) grid of
//    ScenarioRunner::run cells used by Fig 7-style experiments. Apps are
//    profiled once, up front and in parallel; the profiled runners are then
//    shared read-only by all of that app's cells.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "sim/scenario.hpp"
#include "support/threadpool.hpp"

namespace javelin::sim {

/// Worker count for sweeps: the JAVELIN_JOBS environment override, else
/// std::thread::hardware_concurrency(), clamped to >= 1.
int sweep_jobs();

class SweepEngine {
 public:
  /// `jobs` < 1 means "use sweep_jobs()".
  explicit SweepEngine(int jobs = 0);

  int jobs() const { return pool_.size(); }

  /// Ordered parallel map: returns {fn(0), ..., fn(n-1)}. Tasks run on the
  /// pool in any order; the result vector is indexed by cell, so output is
  /// independent of scheduling. A throwing fn propagates out of map() (the
  /// first-indexed exception wins; remaining cells still complete).
  template <typename T>
  std::vector<T> map(std::size_t n,
                     const std::function<T(std::size_t)>& fn) {
    std::vector<std::future<T>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      futures.push_back(pool_.submit([fn, i] { return fn(i); }));
    std::vector<T> out;
    out.reserve(n);
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

  support::ThreadPool& pool() { return pool_; }

 private:
  support::ThreadPool pool_;
};

/// Specification of an (app x situation x strategy) scenario sweep.
struct ScenarioSweepSpec {
  std::vector<const apps::App*> apps;
  std::vector<Situation> situations;
  std::vector<rt::Strategy> strategies;
  int executions = 300;
  bool verify = true;
  std::uint64_t base_seed = kDefaultScenarioSeed;
  rt::ClientConfig client_config;
  /// When set, every cell records into its own TraceBuffer (track
  /// "app/situation/strategy", order key = cell index), so exports merge in
  /// cell order and are byte-identical at any JAVELIN_JOBS. Null = tracing
  /// off; the sweep then touches no obs state at all.
  obs::TraceCollector* collector = nullptr;
};

/// Cell-indexed result grid plus host-side performance telemetry.
struct ScenarioSweepResult {
  std::size_t num_apps = 0;
  std::size_t num_situations = 0;
  std::size_t num_strategies = 0;
  /// Flattened [app][situation][strategy], app-major.
  std::vector<StrategyResult> cells;

  double wall_seconds = 0.0;  ///< Host wall-clock for the whole sweep.
  int jobs = 1;               ///< Worker count that executed it.

  const StrategyResult& at(std::size_t app, std::size_t situation,
                           std::size_t strategy) const {
    return cells[(app * num_situations + situation) * num_strategies +
                 strategy];
  }
  double cells_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(cells.size()) / wall_seconds
               : 0.0;
  }
};

/// Run the full grid on `engine`. Profiling (ScenarioRunner construction)
/// happens once per app, in parallel; cells then share the immutable
/// runners. `on_app_done`, if set, fires once per app as its last cell
/// completes (progress reporting; called from the collecting thread).
ScenarioSweepResult run_scenario_sweep(
    SweepEngine& engine, const ScenarioSweepSpec& spec,
    const std::function<void(const apps::App&)>& on_app_done = {});

/// Serialize sweep telemetry as a BENCH_*.json machine-readable record and
/// write it to `path`. Schema:
///   {"bench": <name>, "cells": N, "executions": E, "jobs": J,
///    "wall_seconds": S, "cells_per_second": R}
void write_sweep_json(const std::string& path, const std::string& bench_name,
                      const ScenarioSweepResult& result, int executions);

/// Generic variant for benches whose cells are bespoke SweepEngine::map
/// fan-outs (Fig 6/8 and the ablations) rather than a scenario grid. Writes
/// the same record schema; cells_per_second is derived from `cells` and
/// `wall_seconds`.
void write_sweep_json(const std::string& path, const std::string& bench_name,
                      std::size_t cells, int executions, int jobs,
                      double wall_seconds);

}  // namespace javelin::sim
