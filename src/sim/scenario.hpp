// Scenario machinery for reproducing the paper's evaluation.
//
// Section 3.2: "Each benchmark is executed by choosing three different
// situations having different channel condition and input distribution ...
// (i) the channel condition is predominantly good and one input size
// dominates; (ii) the channel condition is predominantly poor and one input
// size dominates; and (iii) both channel condition and size parameters are
// uniformly distributed. ... For each scenario, an application is executed
// 300 times with inputs and channel conditions selected to meet the required
// distribution."
#pragma once

#include <map>
#include <memory>

#include "apps/app.hpp"
#include "net/link.hpp"
#include "rt/client.hpp"

namespace javelin::sim {

enum class Situation {
  kGoodChannelDominantSize = 0,  ///< (i)
  kPoorChannelDominantSize,      ///< (ii)
  kUniform,                      ///< (iii)
};

const char* situation_name(Situation s);

/// Short machine-friendly tag for track labels and metric names:
/// "good" / "poor" / "uniform".
const char* situation_tag(Situation s);

/// Per-class channel weights for a situation.
std::array<double, 4> channel_weights(Situation s);

/// Aggregate result of executing one app n times under one strategy.
struct StrategyResult {
  double total_energy_j = 0.0;
  /// Wall-powered server energy spent on behalf of this cell (remote
  /// execution + remote compilation), summed from InvokeReport::server_j.
  /// NOT part of total_energy_j (client battery only); the total-system
  /// energy of the cell is total_energy_j + server_j.
  double server_j = 0.0;
  double total_seconds = 0.0;
  double computation_j = 0.0;
  double communication_j = 0.0;
  double idle_j = 0.0;
  double dram_j = 0.0;
  std::map<rt::ExecMode, int> mode_counts;
  int compiles = 0;
  int remote_compiles = 0;
  int fallbacks = 0;
  int executions = 0;
  bool all_correct = true;
  // Resilience telemetry (all zero in fault-free runs with the default
  // one-attempt policy).
  int retries = 0;               ///< Retried exchange attempts.
  int remote_failures = 0;       ///< Failed exchange attempts, all classes.
  double wasted_retry_j = 0.0;   ///< Client energy burnt by failed attempts.
  std::array<int, rt::kNumFailureClasses> failures_by_class{};
  int breaker_opened = 0;        ///< Circuit-breaker open transitions.
  int breaker_reclosed = 0;      ///< Successful half-open probes.
  int bounds_faults = 0;         ///< Shadow-bounds faults (aborted invokes).
};

/// Default experiment seed (the paper's submission date).
inline constexpr std::uint64_t kDefaultScenarioSeed = 20030422;

/// Runs one benchmark app under the paper's scenarios. Profiles the app at
/// construction (deploy-time profiling, Section 3.2); after construction the
/// runner is immutable and every run* method is const, so one profiled runner
/// can serve many sweep cells concurrently (each run builds its own
/// server/client/device — no state is shared between calls).
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const apps::App& app,
                          std::uint64_t seed = kDefaultScenarioSeed);

  /// Run `executions` invocations under `situation` with a fresh client and
  /// server. Inputs/channels are drawn deterministically from the seed, so
  /// every strategy sees the same workload sequence. Seeds are functions of
  /// (runner seed, situation) only — never of call order — so results are
  /// identical whether cells run serially or on a pool. `config` overrides
  /// the runner-level client_config for this call (per-cell configuration).
  StrategyResult run(rt::Strategy strategy, Situation situation,
                     int executions = 300, bool verify = true,
                     const rt::ClientConfig* config = nullptr,
                     obs::TraceBuffer* trace = nullptr) const;

  /// Fig 6-style single execution at a fixed scale under a fixed channel.
  /// Includes compilation energy (as the paper's Fig 6 does).
  StrategyResult run_single(rt::Strategy strategy, double scale,
                            radio::PowerClass channel_class, bool verify = true,
                            const rt::ClientConfig* config = nullptr,
                            obs::TraceBuffer* trace = nullptr) const;

  const apps::App& app() const { return app_; }
  const std::vector<jvm::ClassFile>& profiled_classes() const {
    return classes_;
  }
  /// The deploy-time profile of the app's potential method.
  const jvm::EnergyProfile& profile() const;

  /// Configuration hooks applied to every client the runner creates.
  rt::ClientConfig client_config;
  /// Mean inter-invocation think time (seconds, not energy-charged).
  double think_time_s = 0.5;
  /// Fault schedule applied to every run's link and server. Disabled by
  /// default (fault-free numbers stay pinned); when enabled, the injector
  /// seed is derived from the cell seed so sweeps stay deterministic at any
  /// JAVELIN_JOBS.
  net::FaultPlan fault_plan;

 private:
  StrategyResult run_sequence(rt::Strategy strategy,
                              radio::ChannelProcess& channel,
                              const std::vector<double>& scales, bool verify,
                              std::uint64_t seed,
                              const rt::ClientConfig* config,
                              obs::TraceBuffer* trace) const;

  apps::App app_;
  std::vector<jvm::ClassFile> classes_;  ///< Profiled class files.
  std::uint64_t seed_;
};

/// The size-parameter distribution support for a situation: the app's
/// profile scales (+ the Fig 6 large scale for the uniform case).
std::vector<double> scenario_scales(const apps::App& a, Situation s, Rng& rng,
                                    int executions);

}  // namespace javelin::sim
