// Corpus execution-frequency pair profiler.
//
// Runs the whole 8-app corpus deterministically (fixed seed, first profile
// scale) and counts dynamically-adjacent instruction pairs at both layers:
//  * guest bytecode pairs, recorded by the interpreter's counting switch
//    flavor (one interpreted run per app), plus a static adjacency census
//    over every decoded corpus method body;
//  * nisa pairs, recorded by the native executor's counting switch flavor
//    (one JIT-compiled run per app per optimization level 1..3).
//
// The rankings derived here are the *single source* of the two committed
// fusion tables (src/jvm/fusion_table.inc and src/isa/nfusion.inc); the
// renderers below emit those files verbatim, and tests/fusion_profile_test
// re-derives the profile in-process and asserts the committed tables match —
// a determinism regression as much as a staleness check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/executor.hpp"
#include "jvm/interp.hpp"

namespace javelin::sim {

struct PairProfile {
  jvm::OpPairCounts jvm_dyn;              ///< dynamic bytecode pairs
  std::vector<std::uint64_t> jvm_static;  ///< static adjacency, kNumOps^2
  isa::NPairCounts nisa;                  ///< dynamic nisa pairs
};

/// One ranked pair in a derived table.
struct RankedPair {
  std::uint8_t a = 0, b = 0;   ///< op ordinals (jvm::Op or isa::NOp)
  std::uint64_t count = 0;     ///< dynamic corpus count
  std::uint64_t stat = 0;      ///< static adjacency count (jvm table only)
};

/// Maximum fused-pair handlers stamped into the native stream executor.
inline constexpr std::size_t kMaxNisaFused = 16;

/// Run the corpus and collect all three count sets. Deterministic: same
/// binary, same result, bit for bit.
PairProfile profile_corpus();

/// Top-kMaxNisaFused legal (nspec::fusable_pair_legal) nisa pairs by dynamic
/// count, count > 0, ties broken by op ordinal. Order defines the fop
/// ranking in nfusion.inc.
std::vector<RankedPair> ranked_nisa_pairs(const PairProfile& p);

/// All shape-capable (jvm::fusable_pair) bytecode pairs admitted for L0.5
/// fusion: executed adjacently at least once, or statically adjacent in some
/// corpus body (keeps cold-but-present pairs fusing so the tier's ablation
/// accounting is a pure function of the corpus). Ranked by dynamic count,
/// then static count, then op ordinal.
std::vector<RankedPair> ranked_jvm_pairs(const PairProfile& p);

/// Render the complete committed table files (header comment included).
std::string render_nisa_inc(const PairProfile& p);
std::string render_jvm_inc(const PairProfile& p);

}  // namespace javelin::sim
