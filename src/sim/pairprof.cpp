#include "sim/pairprof.hpp"

#include <algorithm>
#include <sstream>

#include "apps/app.hpp"
#include "isa/nspec.hpp"
#include "jit/compiler.hpp"
#include "jvm/baseline.hpp"
#include "jvm/opspec.hpp"
#include "rt/device.hpp"
#include "support/rng.hpp"

namespace javelin::sim {

namespace {

// Enum identifier names (not mnemonics) — the renderers emit macro rows that
// token-paste into Op::k<Name> / NOp::k<Name>.
constexpr const char* kNOpIdent[] = {
#define JAVELIN_PAIRPROF_NID(Name, ...) #Name,
    JAVELIN_NOP_SPEC_LIST(JAVELIN_PAIRPROF_NID)
#undef JAVELIN_PAIRPROF_NID
};
constexpr const char* kOpIdent[] = {
#define JAVELIN_PAIRPROF_OID(Name, ...) #Name,
    JAVELIN_OPCODE_LIST(JAVELIN_PAIRPROF_OID)
#undef JAVELIN_PAIRPROF_OID
};
static_assert(sizeof(kNOpIdent) / sizeof(kNOpIdent[0]) == isa::kNumNOps);
static_assert(sizeof(kOpIdent) / sizeof(kOpIdent[0]) == jvm::kNumOps);

/// Fixed profile conditions: one seed, first profile scale. The profile must
/// be a pure function of the corpus so the committed tables are reproducible.
constexpr std::uint64_t kProfileSeed = 20260808;

double profile_scale(const apps::App& a) {
  return a.profile_scales.empty() ? a.small_scale : a.profile_scales.front();
}

bool pair_shape_capable(jvm::Op a, jvm::Op b) {
  jvm::DecodedInsn da, db;
  da.op = a;
  db.op = b;
  std::uint16_t sop = 0;
  return jvm::fusable_pair(da, db, sop);
}

bool rank_before(const RankedPair& x, const RankedPair& y) {
  if (x.count != y.count) return x.count > y.count;
  if (x.stat != y.stat) return x.stat > y.stat;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

}  // namespace

PairProfile profile_corpus() {
  PairProfile p;
  p.jvm_static.assign(jvm::kNumOps * jvm::kNumOps, 0);
  for (const apps::App& a : apps::registry()) {
    // Interpreted run: dynamic bytecode pairs, plus the static adjacency
    // census over every decoded corpus method body. The census is what keeps
    // admission a superset of anything the L0.5 translator can encounter in
    // a corpus stream, so retiring the hardcoded list cannot change which
    // corpus entries fuse.
    {
      rt::Device dev(isa::client_machine());
      dev.core.step_limit = ~0ULL;
      dev.deploy(a.classes);
      for (std::size_t m = 0; m < dev.vm.num_methods(); ++m) {
        const auto& code =
            dev.vm.method(static_cast<std::int32_t>(m)).decoded;
        for (std::size_t i = 0; i + 1 < code.size(); ++i)
          ++p.jvm_static[static_cast<std::size_t>(code[i].op) * jvm::kNumOps +
                         static_cast<std::size_t>(code[i + 1].op)];
      }
      dev.engine.set_force_interpret(true);
      dev.engine.set_pair_counts(&p.jvm_dyn);
      const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
      Rng rng(kProfileSeed);
      dev.engine.invoke(mid, a.make_args(dev.vm, profile_scale(a), rng));
    }
    // Native runs: whole compilation plan at each JIT level, executed under
    // the counting switch flavor. Levels differ in the code they emit, so
    // the ranking reflects the full generated-code space.
    for (int level : {1, 2, 3}) {
      rt::Device dev(isa::client_machine());
      dev.core.step_limit = ~0ULL;
      dev.deploy(a.classes);
      const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
      std::vector<std::int32_t> plan{mid};
      for (std::int32_t callee : jit::collect_callees(dev.vm, mid))
        plan.push_back(callee);
      for (std::int32_t id : plan) {
        auto res = jit::compile_method(
            dev.vm, id, jit::CompileOptions{.opt_level = level},
            dev.cfg.energy);
        dev.engine.install(id, std::move(res.program), level);
      }
      dev.engine.set_nisa_pair_counts(&p.nisa);
      Rng rng(kProfileSeed);
      dev.engine.invoke(mid, a.make_args(dev.vm, profile_scale(a), rng));
    }
  }
  return p;
}

std::vector<RankedPair> ranked_nisa_pairs(const PairProfile& p) {
  std::vector<RankedPair> out;
  for (std::size_t a = 0; a < isa::kNumNOps; ++a)
    for (std::size_t b = 0; b < isa::kNumNOps; ++b) {
      const auto na = static_cast<isa::NOp>(a);
      const auto nb = static_cast<isa::NOp>(b);
      if (!isa::nspec::fusable_pair_legal(na, nb)) continue;
      const std::uint64_t c = p.nisa.of(na, nb);
      if (c == 0) continue;
      out.push_back({static_cast<std::uint8_t>(a),
                     static_cast<std::uint8_t>(b), c, 0});
    }
  std::stable_sort(out.begin(), out.end(), rank_before);
  if (out.size() > kMaxNisaFused) out.resize(kMaxNisaFused);
  return out;
}

std::vector<RankedPair> ranked_jvm_pairs(const PairProfile& p) {
  std::vector<RankedPair> out;
  for (std::size_t a = 0; a < jvm::kNumOps; ++a)
    for (std::size_t b = 0; b < jvm::kNumOps; ++b) {
      const auto oa = static_cast<jvm::Op>(a);
      const auto ob = static_cast<jvm::Op>(b);
      if (!pair_shape_capable(oa, ob)) continue;
      const std::uint64_t dyn = p.jvm_dyn.of(oa, ob);
      const std::uint64_t stat = p.jvm_static[a * jvm::kNumOps + b];
      if (dyn == 0 && stat == 0) continue;
      out.push_back({static_cast<std::uint8_t>(a),
                     static_cast<std::uint8_t>(b), dyn, stat});
    }
  std::stable_sort(out.begin(), out.end(), rank_before);
  return out;
}

std::string render_nisa_inc(const PairProfile& p) {
  std::ostringstream os;
  os << "// nisa fused-pair table — corpus-profile-derived, committed.\n"
     << "//\n"
     << "// Regenerate with:\n"
     << "//   build/apps/javelin_profile --nisa-inc > src/isa/nfusion.inc\n"
     << "//\n"
     << "// One row per fused superinstruction: the hottest legal\n"
     << "// (nspec::fusable_pair_legal) adjacent nisa pairs by dynamic\n"
     << "// execution count over the 8-app corpus at JIT levels 1-3\n"
     << "// (sim/pairprof.cpp). Rank is the fop offset in the fused stream\n"
     << "// (isa/nstream.hpp: kNFopFusedBase + rank). Kind P = plain pair;\n"
     << "// Kind B = branch-first (the first constituent is a conditional\n"
     << "// branch, the handler tests its predicate before the second op).\n"
     << "//\n"
     << "// Format: JAVELIN_NFUSE(rank, Kind, OpA, OpB, count)\n";
  std::size_t rank = 0;
  for (const RankedPair& r : ranked_nisa_pairs(p)) {
    const auto a = static_cast<isa::NOp>(r.a);
    os << "JAVELIN_NFUSE(" << rank++ << ", "
       << (isa::nspec::is_cond_branch(a) ? 'B' : 'P') << ", " << kNOpIdent[r.a]
       << ", " << kNOpIdent[r.b] << ", " << r.count << ")\n";
  }
  return os.str();
}

std::string render_jvm_inc(const PairProfile& p) {
  std::ostringstream os;
  os << "// L0.5 fusion admission table — corpus-profile-derived, committed.\n"
     << "//\n"
     << "// Regenerate with:\n"
     << "//   build/apps/javelin_profile --jvm-inc > src/jvm/fusion_table.inc\n"
     << "//\n"
     << "// One row per admitted (first, second) bytecode pair, ranked by\n"
     << "// dynamic execution count over the 8-app corpus profile\n"
     << "// (sim/pairprof.cpp). A pair is admitted when it is shape-capable\n"
     << "// (jvm::fusable_pair) and either executes adjacently at least once\n"
     << "// in the corpus profile or appears statically adjacent in some\n"
     << "// corpus method body (the latter keeps the ablation tier\n"
     << "// accounting stable for cold-but-present pairs; its static\n"
     << "// occurrence count is the tie-break).\n"
     << "//\n"
     << "// Format: JAVELIN_JVM_FUSION(rank, OpA, OpB, dynamic_count)\n";
  std::size_t rank = 0;
  for (const RankedPair& r : ranked_jvm_pairs(p))
    os << "JAVELIN_JVM_FUSION(" << rank++ << ", " << kOpIdent[r.a] << ", "
       << kOpIdent[r.b] << ", " << r.count << ")\n";
  return os.str();
}

}  // namespace javelin::sim
