#include "jvm/builder.hpp"

#include "jvm/verifier.hpp"

namespace javelin::jvm {

MethodBuilder::MethodBuilder(ClassBuilder& owner, std::size_t method_index)
    : owner_(owner), method_index_(method_index) {
  // Pre-declare parameter slots.
  MethodInfo& mi = info();
  std::size_t slot = 0;
  if (!mi.is_static) locals_["this"] = static_cast<std::int32_t>(slot++);
  for (std::size_t i = 0; i < mi.sig.params.size(); ++i)
    locals_["p" + std::to_string(i)] = static_cast<std::int32_t>(slot++);
  mi.max_locals = static_cast<std::uint16_t>(slot);
}

MethodInfo& MethodBuilder::info() { return owner_.cf_.methods[method_index_]; }
const MethodInfo& MethodBuilder::info() const {
  return owner_.cf_.methods[method_index_];
}

std::int32_t MethodBuilder::local(const std::string& name) {
  auto it = locals_.find(name);
  if (it != locals_.end()) return it->second;
  const auto slot = static_cast<std::int32_t>(info().max_locals);
  locals_[name] = slot;
  info().max_locals = static_cast<std::uint16_t>(slot + 1);
  return slot;
}

MethodBuilder& MethodBuilder::param_name(std::size_t param_index,
                                         const std::string& name) {
  const std::string def = "p" + std::to_string(param_index);
  auto it = locals_.find(def);
  if (it == locals_.end()) throw Error("param_name: no such parameter " + def);
  locals_[name] = it->second;
  return *this;
}

std::int32_t MethodBuilder::slot_of(const std::string& name) const {
  auto it = locals_.find(name);
  if (it == locals_.end())
    throw Error("builder: undeclared local '" + name + "' in " + info().name);
  return it->second;
}

MethodBuilder& MethodBuilder::emit(Op op, std::int32_t a, std::int32_t b) {
  info().code.push_back(Insn{op, a, b});
  return *this;
}

MethodBuilder& MethodBuilder::emit_branch(Op op, Label l) {
  fixups_.emplace_back(info().code.size(), l);
  return emit(op, -1);
}

MethodBuilder& MethodBuilder::iconst(std::int32_t v) { return emit(Op::kIconst, v); }
MethodBuilder& MethodBuilder::dconst(double v) {
  return emit(Op::kDconst, owner_.cf_.pool.add_double(v));
}
MethodBuilder& MethodBuilder::aconst_null() { return emit(Op::kAconstNull); }

MethodBuilder& MethodBuilder::iload(const std::string& n) { return emit(Op::kIload, slot_of(n)); }
MethodBuilder& MethodBuilder::istore(const std::string& n) { return emit(Op::kIstore, local(n)); }
MethodBuilder& MethodBuilder::dload(const std::string& n) { return emit(Op::kDload, slot_of(n)); }
MethodBuilder& MethodBuilder::dstore(const std::string& n) { return emit(Op::kDstore, local(n)); }
MethodBuilder& MethodBuilder::aload(const std::string& n) { return emit(Op::kAload, slot_of(n)); }
MethodBuilder& MethodBuilder::astore(const std::string& n) { return emit(Op::kAstore, local(n)); }

MethodBuilder& MethodBuilder::pop() { return emit(Op::kPop); }
MethodBuilder& MethodBuilder::dup() { return emit(Op::kDup); }

MethodBuilder& MethodBuilder::iadd() { return emit(Op::kIadd); }
MethodBuilder& MethodBuilder::isub() { return emit(Op::kIsub); }
MethodBuilder& MethodBuilder::imul() { return emit(Op::kImul); }
MethodBuilder& MethodBuilder::idiv() { return emit(Op::kIdiv); }
MethodBuilder& MethodBuilder::irem() { return emit(Op::kIrem); }
MethodBuilder& MethodBuilder::ineg() { return emit(Op::kIneg); }
MethodBuilder& MethodBuilder::ishl() { return emit(Op::kIshl); }
MethodBuilder& MethodBuilder::ishr() { return emit(Op::kIshr); }
MethodBuilder& MethodBuilder::iushr() { return emit(Op::kIushr); }
MethodBuilder& MethodBuilder::iand() { return emit(Op::kIand); }
MethodBuilder& MethodBuilder::ior() { return emit(Op::kIor); }
MethodBuilder& MethodBuilder::ixor() { return emit(Op::kIxor); }
MethodBuilder& MethodBuilder::dadd() { return emit(Op::kDadd); }
MethodBuilder& MethodBuilder::dsub() { return emit(Op::kDsub); }
MethodBuilder& MethodBuilder::dmul() { return emit(Op::kDmul); }
MethodBuilder& MethodBuilder::ddiv() { return emit(Op::kDdiv); }
MethodBuilder& MethodBuilder::dneg() { return emit(Op::kDneg); }
MethodBuilder& MethodBuilder::i2d() { return emit(Op::kI2d); }
MethodBuilder& MethodBuilder::d2i() { return emit(Op::kD2i); }
MethodBuilder& MethodBuilder::dcmp() { return emit(Op::kDcmp); }

MethodBuilder::Label MethodBuilder::new_label() {
  label_target_.push_back(-1);
  return static_cast<Label>(label_target_.size() - 1);
}

MethodBuilder& MethodBuilder::bind(Label l) {
  if (l < 0 || static_cast<std::size_t>(l) >= label_target_.size())
    throw Error("builder: bad label");
  if (label_target_[l] != -1) throw Error("builder: label bound twice");
  label_target_[l] = static_cast<std::int32_t>(info().code.size());
  return *this;
}

MethodBuilder& MethodBuilder::ifeq(Label l) { return emit_branch(Op::kIfeq, l); }
MethodBuilder& MethodBuilder::ifne(Label l) { return emit_branch(Op::kIfne, l); }
MethodBuilder& MethodBuilder::iflt(Label l) { return emit_branch(Op::kIflt, l); }
MethodBuilder& MethodBuilder::ifle(Label l) { return emit_branch(Op::kIfle, l); }
MethodBuilder& MethodBuilder::ifgt(Label l) { return emit_branch(Op::kIfgt, l); }
MethodBuilder& MethodBuilder::ifge(Label l) { return emit_branch(Op::kIfge, l); }
MethodBuilder& MethodBuilder::if_icmpeq(Label l) { return emit_branch(Op::kIfIcmpEq, l); }
MethodBuilder& MethodBuilder::if_icmpne(Label l) { return emit_branch(Op::kIfIcmpNe, l); }
MethodBuilder& MethodBuilder::if_icmplt(Label l) { return emit_branch(Op::kIfIcmpLt, l); }
MethodBuilder& MethodBuilder::if_icmple(Label l) { return emit_branch(Op::kIfIcmpLe, l); }
MethodBuilder& MethodBuilder::if_icmpgt(Label l) { return emit_branch(Op::kIfIcmpGt, l); }
MethodBuilder& MethodBuilder::if_icmpge(Label l) { return emit_branch(Op::kIfIcmpGe, l); }
MethodBuilder& MethodBuilder::ifnull(Label l) { return emit_branch(Op::kIfNull, l); }
MethodBuilder& MethodBuilder::ifnonnull(Label l) { return emit_branch(Op::kIfNonNull, l); }
MethodBuilder& MethodBuilder::goto_(Label l) { return emit_branch(Op::kGoto, l); }

MethodBuilder& MethodBuilder::invokestatic(const std::string& cls,
                                           const std::string& m) {
  return emit(Op::kInvokeStatic, owner_.cf_.pool.add_method(cls, m));
}
MethodBuilder& MethodBuilder::invokevirtual(const std::string& cls,
                                            const std::string& m) {
  return emit(Op::kInvokeVirtual, owner_.cf_.pool.add_method(cls, m));
}
MethodBuilder& MethodBuilder::intrinsic(isa::Intrinsic id) {
  return emit(Op::kInvokeIntrinsic, static_cast<std::int32_t>(id));
}
MethodBuilder& MethodBuilder::ret() { return emit(Op::kReturn); }
MethodBuilder& MethodBuilder::iret() { return emit(Op::kIreturn); }
MethodBuilder& MethodBuilder::dret() { return emit(Op::kDreturn); }
MethodBuilder& MethodBuilder::aret() { return emit(Op::kAreturn); }

MethodBuilder& MethodBuilder::getfield(const std::string& cls,
                                       const std::string& f) {
  return emit(Op::kGetField, owner_.cf_.pool.add_field(cls, f));
}
MethodBuilder& MethodBuilder::putfield(const std::string& cls,
                                       const std::string& f) {
  return emit(Op::kPutField, owner_.cf_.pool.add_field(cls, f));
}
MethodBuilder& MethodBuilder::getstatic(const std::string& cls,
                                        const std::string& f) {
  return emit(Op::kGetStatic, owner_.cf_.pool.add_field(cls, f));
}
MethodBuilder& MethodBuilder::putstatic(const std::string& cls,
                                        const std::string& f) {
  return emit(Op::kPutStatic, owner_.cf_.pool.add_field(cls, f));
}
MethodBuilder& MethodBuilder::new_(const std::string& cls) {
  return emit(Op::kNew, owner_.cf_.pool.add_class(cls));
}
MethodBuilder& MethodBuilder::newarray(TypeKind elem) {
  return emit(Op::kNewArray, static_cast<std::int32_t>(elem));
}
MethodBuilder& MethodBuilder::iaload() { return emit(Op::kIaload); }
MethodBuilder& MethodBuilder::iastore() { return emit(Op::kIastore); }
MethodBuilder& MethodBuilder::daload() { return emit(Op::kDaload); }
MethodBuilder& MethodBuilder::dastore() { return emit(Op::kDastore); }
MethodBuilder& MethodBuilder::baload() { return emit(Op::kBaload); }
MethodBuilder& MethodBuilder::bastore() { return emit(Op::kBastore); }
MethodBuilder& MethodBuilder::aaload() { return emit(Op::kAaload); }
MethodBuilder& MethodBuilder::aastore() { return emit(Op::kAastore); }
MethodBuilder& MethodBuilder::arraylength() { return emit(Op::kArrayLength); }

MethodBuilder& MethodBuilder::potential(SizeParamSpec spec) {
  info().potential = true;
  info().size_param = std::move(spec);
  return *this;
}

void MethodBuilder::finish() {
  for (const auto& [insn_index, label] : fixups_) {
    const std::int32_t target = label_target_.at(label);
    if (target < 0)
      throw Error("builder: unbound label in method " + info().name);
    info().code[insn_index].a = target;
  }
  fixups_.clear();
}

ClassBuilder::ClassBuilder(std::string name, std::string super) {
  cf_.name = std::move(name);
  cf_.super_name = std::move(super);
}

ClassBuilder& ClassBuilder::field(const std::string& name, TypeKind kind,
                                  bool is_static) {
  cf_.fields.push_back(FieldInfo{name, kind, is_static});
  return *this;
}

MethodBuilder& ClassBuilder::method(const std::string& name, Signature sig,
                                    bool is_static) {
  cf_.methods.push_back(MethodInfo{});
  MethodInfo& mi = cf_.methods.back();
  mi.name = name;
  mi.sig = std::move(sig);
  mi.is_static = is_static;
  builders_.push_back(std::unique_ptr<MethodBuilder>(
      new MethodBuilder(*this, cf_.methods.size() - 1)));
  return *builders_.back();
}

ClassFile ClassBuilder::build(const std::vector<const ClassFile*>& deps) {
  for (auto& b : builders_) b->finish();
  builders_.clear();
  verify_class(cf_, deps);  // also fills max_stack
  return std::move(cf_);
}

}  // namespace javelin::jvm
