// Guest value model and method signatures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/arena.hpp"
#include "support/error.hpp"

namespace javelin::jvm {

/// Kinds of guest values. kByte exists only as an array element type; on the
/// operand stack bytes widen to int, as in the JVM.
enum class TypeKind : std::uint8_t {
  kVoid = 0,
  kInt,
  kDouble,
  kRef,
  kByte,
};

const char* type_kind_name(TypeKind k);

/// Element width in bytes inside arrays/objects.
std::uint32_t type_width(TypeKind k);

/// A guest value: 32-bit int, 64-bit double, or reference (arena address).
struct Value {
  TypeKind kind = TypeKind::kVoid;
  union {
    std::int32_t i;
    double d;
    mem::Addr ref;
  };

  Value() : i(0) {}
  static Value make_int(std::int32_t v) {
    Value x;
    x.kind = TypeKind::kInt;
    x.i = v;
    return x;
  }
  static Value make_double(double v) {
    Value x;
    x.kind = TypeKind::kDouble;
    x.d = v;
    return x;
  }
  static Value make_ref(mem::Addr a) {
    Value x;
    x.kind = TypeKind::kRef;
    x.ref = a;
    return x;
  }
  static Value make_void() { return Value{}; }

  std::int32_t as_int() const {
    require(TypeKind::kInt);
    return i;
  }
  double as_double() const {
    require(TypeKind::kDouble);
    return d;
  }
  mem::Addr as_ref() const {
    require(TypeKind::kRef);
    return ref;
  }

  bool operator==(const Value& o) const {
    if (kind != o.kind) return false;
    switch (kind) {
      case TypeKind::kInt: return i == o.i;
      case TypeKind::kDouble: return d == o.d;
      case TypeKind::kRef: return ref == o.ref;
      default: return true;
    }
  }

  std::string to_string() const;

 private:
  void require(TypeKind k) const {
    if (kind != k) throw VmError("value: kind mismatch");
  }
};

/// Method signature: parameter kinds and return kind.
struct Signature {
  std::vector<TypeKind> params;
  TypeKind ret = TypeKind::kVoid;

  bool operator==(const Signature&) const = default;
  std::string to_string() const;
};

}  // namespace javelin::jvm
