#include "jvm/value.hpp"

#include <sstream>

namespace javelin::jvm {

const char* type_kind_name(TypeKind k) {
  switch (k) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kInt: return "int";
    case TypeKind::kDouble: return "double";
    case TypeKind::kRef: return "ref";
    case TypeKind::kByte: return "byte";
  }
  return "?";
}

std::uint32_t type_width(TypeKind k) {
  switch (k) {
    case TypeKind::kByte: return 1;
    case TypeKind::kInt: return 4;
    case TypeKind::kRef: return 4;
    case TypeKind::kDouble: return 8;
    case TypeKind::kVoid: break;
  }
  throw Error("type_width: void has no width");
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case TypeKind::kInt: os << "int:" << i; break;
    case TypeKind::kDouble: os << "double:" << d; break;
    case TypeKind::kRef: os << "ref:" << ref; break;
    default: os << "void"; break;
  }
  return os.str();
}

std::string Signature::to_string() const {
  std::string s = "(";
  for (auto p : params) {
    switch (p) {
      case TypeKind::kInt: s += 'I'; break;
      case TypeKind::kDouble: s += 'D'; break;
      case TypeKind::kRef: s += 'R'; break;
      default: s += '?'; break;
    }
  }
  s += ')';
  switch (ret) {
    case TypeKind::kVoid: s += 'V'; break;
    case TypeKind::kInt: s += 'I'; break;
    case TypeKind::kDouble: s += 'D'; break;
    case TypeKind::kRef: s += 'R'; break;
    default: s += '?'; break;
  }
  return s;
}

}  // namespace javelin::jvm
