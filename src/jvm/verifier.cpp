#include "jvm/verifier.hpp"

#include <deque>
#include <optional>
#include <sstream>

#include "isa/nisa.hpp"

namespace javelin::jvm {

const MethodInfo* ClassSetResolver::resolve_method(const MethodRef& ref) const {
  // Walk the superclass chain starting at the named class (virtual methods
  // may be declared on a base class).
  for (const ClassFile* cf = find_class(ref.class_name); cf != nullptr;
       cf = cf->super_name.empty() ? nullptr : find_class(cf->super_name)) {
    if (const MethodInfo* m = cf->find_method(ref.method_name)) return m;
  }
  return nullptr;
}

const FieldInfo* ClassSetResolver::resolve_field(const FieldRef& ref) const {
  for (const ClassFile* cf = find_class(ref.class_name); cf != nullptr;
       cf = cf->super_name.empty() ? nullptr : find_class(cf->super_name)) {
    for (const auto& f : cf->fields)
      if (f.name == ref.field_name) return &f;
  }
  return nullptr;
}

const ClassFile* ClassSetResolver::find_class(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

namespace {

/// Abstract state at one program point. kVoid in `locals` means
/// unknown/conflicting (unusable until overwritten).
struct AbsState {
  std::vector<TypeKind> stack;
  std::vector<TypeKind> locals;

  bool operator==(const AbsState&) const = default;
};

class MethodVerifier {
 public:
  MethodVerifier(const ClassFile& cf, MethodInfo& m,
                 const SignatureResolver& resolver)
      : cf_(cf), m_(m), resolver_(resolver) {}

  void run();

 private:
  [[noreturn]] void fail(std::size_t pc, const std::string& why) const {
    std::ostringstream os;
    os << "verify " << cf_.name << "." << m_.name << " @" << pc << ": " << why;
    throw VerifyError(os.str());
  }

  TypeKind pop(AbsState& st, std::size_t pc, TypeKind want) {
    if (st.stack.empty()) fail(pc, "operand stack underflow");
    const TypeKind got = st.stack.back();
    st.stack.pop_back();
    if (want != TypeKind::kVoid && got != want)
      fail(pc, std::string("expected ") + type_kind_name(want) + ", got " +
                   type_kind_name(got));
    return got;
  }
  void push(AbsState& st, std::size_t pc, TypeKind k) {
    st.stack.push_back(k);
    if (st.stack.size() > 4096) fail(pc, "operand stack overflow");
  }
  TypeKind local_kind(const AbsState& st, std::size_t pc, std::int32_t slot,
                      TypeKind want) const {
    if (slot < 0 || static_cast<std::size_t>(slot) >= st.locals.size())
      fail(pc, "local index out of range");
    const TypeKind k = st.locals[slot];
    if (k != want)
      fail(pc, std::string("local ") + std::to_string(slot) + " is " +
                   type_kind_name(k) + ", expected " + type_kind_name(want));
    return k;
  }

  /// Merge `incoming` into the recorded state at `target`; returns true if
  /// the target state changed (needs (re)processing).
  bool merge_into(std::size_t target, const AbsState& incoming,
                  std::size_t from_pc);

  void step(std::size_t pc, AbsState st);

  const ClassFile& cf_;
  MethodInfo& m_;
  const SignatureResolver& resolver_;
  std::vector<std::optional<AbsState>> in_state_;
  std::deque<std::size_t> worklist_;
  std::size_t max_stack_ = 0;
};

bool MethodVerifier::merge_into(std::size_t target, const AbsState& incoming,
                                std::size_t from_pc) {
  if (target >= m_.code.size()) fail(from_pc, "branch target out of range");
  auto& slot = in_state_[target];
  if (!slot.has_value()) {
    slot = incoming;
    return true;
  }
  AbsState& cur = *slot;
  if (cur.stack != incoming.stack)
    fail(from_pc, "inconsistent operand stack at join point " +
                      std::to_string(target));
  bool changed = false;
  for (std::size_t i = 0; i < cur.locals.size(); ++i) {
    if (cur.locals[i] != incoming.locals[i] && cur.locals[i] != TypeKind::kVoid) {
      cur.locals[i] = TypeKind::kVoid;  // conflict -> unusable
      changed = true;
    }
  }
  return changed;
}

void MethodVerifier::step(std::size_t pc, AbsState st) {
  const Insn& in = m_.code[pc];
  const Op op = in.op;
  bool falls_through = true;

  auto branch_to = [&](std::int32_t target) {
    if (target < 0) fail(pc, "negative branch target");
    if (merge_into(static_cast<std::size_t>(target), st,
                   pc))
      worklist_.push_back(static_cast<std::size_t>(target));
  };

  switch (op) {
    case Op::kIconst: push(st, pc, TypeKind::kInt); break;
    case Op::kDconst:
      if (in.a < 0 || static_cast<std::size_t>(in.a) >= cf_.pool.doubles.size())
        fail(pc, "dconst pool index out of range");
      push(st, pc, TypeKind::kDouble);
      break;
    case Op::kAconstNull: push(st, pc, TypeKind::kRef); break;

    case Op::kIload:
      local_kind(st, pc, in.a, TypeKind::kInt);
      push(st, pc, TypeKind::kInt);
      break;
    case Op::kDload:
      local_kind(st, pc, in.a, TypeKind::kDouble);
      push(st, pc, TypeKind::kDouble);
      break;
    case Op::kAload:
      local_kind(st, pc, in.a, TypeKind::kRef);
      push(st, pc, TypeKind::kRef);
      break;
    case Op::kIstore:
    case Op::kDstore:
    case Op::kAstore: {
      const TypeKind want = op == Op::kIstore  ? TypeKind::kInt
                            : op == Op::kDstore ? TypeKind::kDouble
                                                : TypeKind::kRef;
      pop(st, pc, want);
      if (in.a < 0 || static_cast<std::size_t>(in.a) >= st.locals.size())
        fail(pc, "local index out of range");
      st.locals[in.a] = want;
      break;
    }

    case Op::kPop: pop(st, pc, TypeKind::kVoid); break;
    case Op::kDup: {
      if (st.stack.empty()) fail(pc, "dup on empty stack");
      push(st, pc, st.stack.back());
      break;
    }

    case Op::kIadd: case Op::kIsub: case Op::kImul: case Op::kIdiv:
    case Op::kIrem: case Op::kIshl: case Op::kIshr: case Op::kIushr:
    case Op::kIand: case Op::kIor: case Op::kIxor:
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kInt);
      push(st, pc, TypeKind::kInt);
      break;
    case Op::kIneg:
      pop(st, pc, TypeKind::kInt);
      push(st, pc, TypeKind::kInt);
      break;
    case Op::kDadd: case Op::kDsub: case Op::kDmul: case Op::kDdiv:
      pop(st, pc, TypeKind::kDouble);
      pop(st, pc, TypeKind::kDouble);
      push(st, pc, TypeKind::kDouble);
      break;
    case Op::kDneg:
      pop(st, pc, TypeKind::kDouble);
      push(st, pc, TypeKind::kDouble);
      break;
    case Op::kI2d:
      pop(st, pc, TypeKind::kInt);
      push(st, pc, TypeKind::kDouble);
      break;
    case Op::kD2i:
      pop(st, pc, TypeKind::kDouble);
      push(st, pc, TypeKind::kInt);
      break;
    case Op::kDcmp:
      pop(st, pc, TypeKind::kDouble);
      pop(st, pc, TypeKind::kDouble);
      push(st, pc, TypeKind::kInt);
      break;

    case Op::kIfeq: case Op::kIfne: case Op::kIflt:
    case Op::kIfle: case Op::kIfgt: case Op::kIfge:
      pop(st, pc, TypeKind::kInt);
      branch_to(in.a);
      break;
    case Op::kIfIcmpEq: case Op::kIfIcmpNe: case Op::kIfIcmpLt:
    case Op::kIfIcmpLe: case Op::kIfIcmpGt: case Op::kIfIcmpGe:
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kInt);
      branch_to(in.a);
      break;
    case Op::kIfNull: case Op::kIfNonNull:
      pop(st, pc, TypeKind::kRef);
      branch_to(in.a);
      break;
    case Op::kGoto:
      branch_to(in.a);
      falls_through = false;
      break;

    case Op::kInvokeStatic:
    case Op::kInvokeVirtual: {
      if (in.a < 0 || static_cast<std::size_t>(in.a) >= cf_.pool.methods.size())
        fail(pc, "method pool index out of range");
      const MethodRef& ref = cf_.pool.methods[in.a];
      const MethodInfo* callee = resolver_.resolve_method(ref);
      if (callee == nullptr)
        fail(pc, "unresolved method " + ref.class_name + "." + ref.method_name);
      if (op == Op::kInvokeStatic && !callee->is_static)
        fail(pc, "invokestatic on instance method");
      if (op == Op::kInvokeVirtual && callee->is_static)
        fail(pc, "invokevirtual on static method");
      // Pop args right-to-left, then receiver for virtual.
      for (std::size_t i = callee->sig.params.size(); i-- > 0;)
        pop(st, pc, callee->sig.params[i]);
      if (!callee->is_static) pop(st, pc, TypeKind::kRef);
      if (callee->sig.ret != TypeKind::kVoid) push(st, pc, callee->sig.ret);
      break;
    }
    case Op::kInvokeIntrinsic: {
      if (in.a < 0 || in.a >= static_cast<std::int32_t>(isa::Intrinsic::kCount))
        fail(pc, "bad intrinsic id");
      const auto id = static_cast<isa::Intrinsic>(in.a);
      for (int i = 0; i < isa::intrinsic_fp_args(id); ++i)
        pop(st, pc, TypeKind::kDouble);
      for (int i = 0; i < isa::intrinsic_int_args(id); ++i)
        pop(st, pc, TypeKind::kInt);
      push(st, pc,
           isa::intrinsic_returns_double(id) ? TypeKind::kDouble
                                             : TypeKind::kInt);
      break;
    }

    case Op::kReturn:
      if (m_.sig.ret != TypeKind::kVoid) fail(pc, "return in non-void method");
      falls_through = false;
      break;
    case Op::kIreturn:
      if (m_.sig.ret != TypeKind::kInt) fail(pc, "ireturn kind mismatch");
      pop(st, pc, TypeKind::kInt);
      falls_through = false;
      break;
    case Op::kDreturn:
      if (m_.sig.ret != TypeKind::kDouble) fail(pc, "dreturn kind mismatch");
      pop(st, pc, TypeKind::kDouble);
      falls_through = false;
      break;
    case Op::kAreturn:
      if (m_.sig.ret != TypeKind::kRef) fail(pc, "areturn kind mismatch");
      pop(st, pc, TypeKind::kRef);
      falls_through = false;
      break;

    case Op::kGetField:
    case Op::kPutField:
    case Op::kGetStatic:
    case Op::kPutStatic: {
      if (in.a < 0 || static_cast<std::size_t>(in.a) >= cf_.pool.fields.size())
        fail(pc, "field pool index out of range");
      const FieldRef& ref = cf_.pool.fields[in.a];
      const FieldInfo* field = resolver_.resolve_field(ref);
      if (field == nullptr)
        fail(pc, "unresolved field " + ref.class_name + "." + ref.field_name);
      const bool is_static_op =
          op == Op::kGetStatic || op == Op::kPutStatic;
      if (field->is_static != is_static_op)
        fail(pc, "static/instance field access mismatch");
      const TypeKind k =
          field->kind == TypeKind::kByte ? TypeKind::kInt : field->kind;
      if (op == Op::kPutField || op == Op::kPutStatic) pop(st, pc, k);
      if (!is_static_op) pop(st, pc, TypeKind::kRef);
      if (op == Op::kGetField || op == Op::kGetStatic) push(st, pc, k);
      break;
    }

    case Op::kNew:
      if (in.a < 0 || static_cast<std::size_t>(in.a) >= cf_.pool.classes.size())
        fail(pc, "class pool index out of range");
      push(st, pc, TypeKind::kRef);
      break;
    case Op::kNewArray: {
      const auto k = static_cast<TypeKind>(in.a);
      if (k != TypeKind::kInt && k != TypeKind::kDouble &&
          k != TypeKind::kByte && k != TypeKind::kRef)
        fail(pc, "newarray of bad element kind");
      pop(st, pc, TypeKind::kInt);
      push(st, pc, TypeKind::kRef);
      break;
    }
    case Op::kIaload: case Op::kBaload:
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kRef);
      push(st, pc, TypeKind::kInt);
      break;
    case Op::kDaload:
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kRef);
      push(st, pc, TypeKind::kDouble);
      break;
    case Op::kAaload:
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kRef);
      push(st, pc, TypeKind::kRef);
      break;
    case Op::kIastore: case Op::kBastore:
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kRef);
      break;
    case Op::kDastore:
      pop(st, pc, TypeKind::kDouble);
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kRef);
      break;
    case Op::kAastore:
      pop(st, pc, TypeKind::kRef);
      pop(st, pc, TypeKind::kInt);
      pop(st, pc, TypeKind::kRef);
      break;
    case Op::kArrayLength:
      pop(st, pc, TypeKind::kRef);
      push(st, pc, TypeKind::kInt);
      break;

    case Op::kCount:
      fail(pc, "invalid opcode");
  }

  max_stack_ = std::max(max_stack_, st.stack.size());

  if (falls_through) {
    if (pc + 1 >= m_.code.size()) fail(pc, "control flow falls off code end");
    if (merge_into(pc + 1, st, pc)) worklist_.push_back(pc + 1);
  }
}

void MethodVerifier::run() {
  if (m_.code.empty())
    fail(0, "empty code");
  if (m_.max_locals < m_.num_args())
    fail(0, "max_locals smaller than argument count");

  in_state_.assign(m_.code.size(), std::nullopt);

  AbsState entry;
  entry.locals.assign(m_.max_locals, TypeKind::kVoid);
  for (std::size_t i = 0; i < m_.num_args(); ++i) {
    TypeKind k = m_.arg_kind(i);
    if (k == TypeKind::kByte) k = TypeKind::kInt;
    entry.locals[i] = k;
  }
  in_state_[0] = entry;
  worklist_.push_back(0);

  std::size_t processed = 0;
  while (!worklist_.empty()) {
    const std::size_t pc = worklist_.front();
    worklist_.pop_front();
    if (++processed > m_.code.size() * 64 + 4096)
      fail(pc, "verification did not converge");
    step(pc, *in_state_[pc]);
  }

  m_.max_stack = static_cast<std::uint16_t>(max_stack_);
}

}  // namespace

void verify_method(const ClassFile& cf, MethodInfo& m,
                   const SignatureResolver& resolver) {
  MethodVerifier(cf, m, resolver).run();
}

void verify_class(ClassFile& cf, const std::vector<const ClassFile*>& deps) {
  ClassSetResolver r;
  r.add(&cf);
  for (const ClassFile* d : deps) r.add(d);
  for (auto& m : cf.methods) verify_method(cf, m, r);
}

}  // namespace javelin::jvm
