// Class-file verification.
//
// When a class is loaded the JVM verifies that it is well formed and does not
// violate the type discipline (the paper leans on this in Section 3.3: the
// verifier cannot check downloaded *native* code, which is why remote
// compilation requires a trusted server). We implement:
//
//  * structural verification — opcode validity, branch targets in range,
//    local indices within max_locals, constant-pool indices in range, no
//    falling off the end of the code; and
//  * type verification — abstract interpretation of the operand stack and
//    local variable types over all paths, with state merging at join points.
//
// Type verification also computes the method's max_stack, which the builder
// stores into the class file (javac's job in real Java).
#pragma once

#include <unordered_map>

#include "jvm/classfile.hpp"

namespace javelin::jvm {

/// Supplies cross-class signatures during verification.
class SignatureResolver {
 public:
  virtual ~SignatureResolver() = default;
  /// Returns nullptr if unknown.
  virtual const MethodInfo* resolve_method(const MethodRef& ref) const = 0;
  virtual const FieldInfo* resolve_field(const FieldRef& ref) const = 0;
  /// The class file for `name`, if this resolver can name one. Optional:
  /// only interprocedural clients (src/analysis) need it; the base returns
  /// nullptr so signature-only resolvers keep working unchanged.
  virtual const ClassFile* resolve_class(const std::string& name) const {
    (void)name;
    return nullptr;
  }
};

/// Resolver over a set of class files (the "classpath"). Lookup is a
/// name-keyed map built in add(); duplicate names keep the first-added class
/// (classpath order wins, as before).
class ClassSetResolver : public SignatureResolver {
 public:
  void add(const ClassFile* cf) { by_name_.emplace(cf->name, cf); }
  const MethodInfo* resolve_method(const MethodRef& ref) const override;
  const FieldInfo* resolve_field(const FieldRef& ref) const override;
  const ClassFile* resolve_class(const std::string& name) const override {
    return find_class(name);
  }

 private:
  const ClassFile* find_class(const std::string& name) const;
  std::unordered_map<std::string, const ClassFile*> by_name_;
};

/// Verify one method; fills in max_stack. Throws VerifyError on rejection.
void verify_method(const ClassFile& cf, MethodInfo& m,
                   const SignatureResolver& resolver);

/// Verify every method of a class. `deps` lists the other class files the
/// class references (superclasses, callees); `cf` itself is always included
/// in the resolution set, and superclass chains may span `deps`.
void verify_class(ClassFile& cf,
                  const std::vector<const ClassFile*>& deps = {});

}  // namespace javelin::jvm
