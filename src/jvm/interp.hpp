// The bytecode interpreter.
//
// Executes guest bytecode with faithful cost accounting for a threaded
// interpreter running on the client core: every bytecode is charged its
// dispatch overhead (opcode fetch through the D-cache at the installed
// bytecode address, decode ALU op, dispatch branch) plus the semantic cost of
// the operation, and every operand-stack/local access is a real load/store to
// the frame in simulated memory (so it flows through the cache model).
//
// Frames live in the arena's stack zone:
//   [ locals: max_locals x 8 bytes | operand stack: max_stack x 8 bytes ]
//
// Three host-side dispatch flavors execute the same per-opcode handler bodies
// (interp_ops.inc) and charge identical simulated costs — they differ only in
// how much host work each dispatch costs:
//   kSwitch   portable switch loop (the original implementation),
//   kGoto     threaded computed-goto loop (GCC/Clang &&label extension),
//   kBaseline the L0.5 superinstruction stream built at link() — operands
//             pre-resolved, adjacent pairs fused (jvm/baseline.cpp); falls
//             back per-method to kGoto/kSwitch when no stream exists.
// Select with JAVELIN_DISPATCH=switch|goto|baseline (default: baseline, the
// fastest; goto where unavailable). tests/dispatch_differential_test.cpp
// pins bit-identical energy/cycles/heap state across all three.
#pragma once

#include <array>
#include <span>

#include "jvm/vm.hpp"
#include "obs/trace.hpp"

namespace javelin::jvm {

/// Recursive method invocation callback (implemented by ExecutionEngine to
/// pick interpreter vs. installed native code per callee).
class Invoker {
 public:
  virtual ~Invoker() = default;
  virtual Value invoke(std::int32_t method_id, std::span<const Value> args) = 0;
};

/// Host-side dispatch flavor. Simulated costs are identical across all
/// three; only host throughput differs.
enum class DispatchMode : std::uint8_t {
  kSwitch = 0,   ///< Portable switch-based loop.
  kGoto = 1,     ///< Threaded computed-goto loop (falls back to switch when
                 ///< the compiler lacks &&label support).
  kBaseline = 2, ///< Pre-resolved superinstruction stream (L0.5 translation).
};

const char* dispatch_mode_name(DispatchMode m);

/// Dynamic adjacent-pair execution counts over the bytecode ISA, collected by
/// the interpreter's switch flavor when profiling (sim/pairprof.cpp ranks
/// these to derive the committed L0.5 fusion table, jvm/fusion_table.inc).
/// A pair (a, b) is counted when b executes immediately after a with the pc
/// falling through — exactly the adjacency the baseline translator can fuse.
struct OpPairCounts {
  std::array<std::uint64_t, kNumOps * kNumOps> counts{};
  void note(Op a, Op b) {
    ++counts[static_cast<std::size_t>(a) * kNumOps + static_cast<std::size_t>(b)];
  }
  std::uint64_t of(Op a, Op b) const {
    return counts[static_cast<std::size_t>(a) * kNumOps +
                  static_cast<std::size_t>(b)];
  }
};

/// Resolve the process-wide default from JAVELIN_DISPATCH
/// ("switch" | "goto" | "baseline"); unset or unrecognized → kBaseline.
DispatchMode default_dispatch_mode();

class Interpreter {
 public:
  explicit Interpreter(Jvm& jvm) : jvm_(jvm), mode_(default_dispatch_mode()) {}

  /// Execute one method to completion. `args` must match the method's
  /// argument kinds (receiver first for instance methods).
  Value run(const RtMethod& m, std::span<const Value> args, Invoker& invoker);

  /// Execute one method as the L0.5 baseline *tier* (opt-in via
  /// DecisionPolicy::baseline_tier): same superinstruction stream, but fused
  /// pairs charge a single dispatch — the honest accounting model for a
  /// baseline translation, which is why the tier can be cheaper than the
  /// interpreter in simulated energy. Requires the method's stream to exist
  /// (engine installs it via jit::compile_baseline first).
  Value run_baseline(const RtMethod& m, std::span<const Value> args,
                     Invoker& invoker);

  /// Host dispatch flavor (simulated costs unaffected).
  void set_dispatch_mode(DispatchMode m) { mode_ = m; }
  DispatchMode dispatch_mode() const { return mode_; }

  /// Observability hook (null = disabled, the default; a single null check
  /// per method run, nothing per bytecode). Counts runs split by whether the
  /// method was served from the link-time decode cache.
  void set_trace(obs::TraceBuffer* t) { trace_ = t; }

  /// Profiling hook (null = disabled, the default). While set, every run is
  /// routed through the switch flavor — the only loop carrying the counting
  /// code, so the default goto/baseline paths stay hook-free — and dynamic
  /// adjacent bytecode pairs are accumulated into `p`.
  void set_pair_counts(OpPairCounts* p) { pairs_ = p; }

 private:
  Value run_mode(const RtMethod& m, std::span<const Value> args,
                 Invoker& invoker, DispatchMode mode, bool baseline_acct);

  Jvm& jvm_;
  DispatchMode mode_;
  obs::TraceBuffer* trace_ = nullptr;
  OpPairCounts* pairs_ = nullptr;
};

}  // namespace javelin::jvm
