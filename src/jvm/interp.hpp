// The bytecode interpreter.
//
// Executes guest bytecode with faithful cost accounting for a threaded
// interpreter running on the client core: every bytecode is charged its
// dispatch overhead (opcode fetch through the D-cache at the installed
// bytecode address, decode ALU op, dispatch branch) plus the semantic cost of
// the operation, and every operand-stack/local access is a real load/store to
// the frame in simulated memory (so it flows through the cache model).
//
// Frames live in the arena's stack zone:
//   [ locals: max_locals x 8 bytes | operand stack: max_stack x 8 bytes ]
#pragma once

#include <span>

#include "jvm/vm.hpp"
#include "obs/trace.hpp"

namespace javelin::jvm {

/// Recursive method invocation callback (implemented by ExecutionEngine to
/// pick interpreter vs. installed native code per callee).
class Invoker {
 public:
  virtual ~Invoker() = default;
  virtual Value invoke(std::int32_t method_id, std::span<const Value> args) = 0;
};

class Interpreter {
 public:
  explicit Interpreter(Jvm& jvm) : jvm_(jvm) {}

  /// Execute one method to completion. `args` must match the method's
  /// argument kinds (receiver first for instance methods).
  Value run(const RtMethod& m, std::span<const Value> args, Invoker& invoker);

  /// Observability hook (null = disabled, the default; a single null check
  /// per method run, nothing per bytecode). Counts runs split by whether the
  /// method was served from the link-time decode cache.
  void set_trace(obs::TraceBuffer* t) { trace_ = t; }

 private:
  Jvm& jvm_;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace javelin::jvm
