// Class-file model: constant pool, fields, methods, attributes.
//
// This is the unit an application ships in. Like a JVM class file it carries
// a constant pool (doubles, method/field/class references by name), field and
// method declarations, bytecode, and attributes. Two attributes matter to the
// offload framework (Section 3 of the paper):
//
//  * the "potential method" annotation marking methods eligible for remote
//    execution, together with the specification of the method's *size
//    parameter* (the paper's `s`), and
//  * the energy profile produced at deployment time — curve-fitted energy
//    cost models per execution mode, per-level compilation energies, and
//    compiled-code image sizes — the paper's "static final variables"
//    consulted by helper methods.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "jvm/opcodes.hpp"
#include "jvm/value.hpp"
#include "support/bytes.hpp"
#include "support/fit.hpp"

namespace javelin::jvm {

/// Number of local execution modes with distinct cost models:
/// interpreter + three JIT levels.
inline constexpr std::size_t kNumLocalModes = 4;
/// Number of JIT optimization levels (Local1..Local3).
inline constexpr std::size_t kNumOptLevels = 3;

struct MethodRef {
  std::string class_name;
  std::string method_name;
  bool operator==(const MethodRef&) const = default;
};

struct FieldRef {
  std::string class_name;
  std::string field_name;
  bool operator==(const FieldRef&) const = default;
};

/// Constant pool with interning add-or-get helpers.
struct ConstantPool {
  std::vector<double> doubles;
  std::vector<MethodRef> methods;
  std::vector<FieldRef> fields;
  std::vector<std::string> classes;

  std::int32_t add_double(double v);
  std::int32_t add_method(const std::string& cls, const std::string& m);
  std::int32_t add_field(const std::string& cls, const std::string& f);
  std::int32_t add_class(const std::string& cls);
};

struct FieldInfo {
  std::string name;
  TypeKind kind = TypeKind::kInt;
  bool is_static = false;
};

/// How to derive the scalar size parameter `s` from call arguments.
///
/// `s` is the product of the selected features; each feature is either an
/// int argument's value or a ref argument's array length. An empty factor
/// list means the method has a constant cost (s = 1).
struct SizeParamSpec {
  struct Factor {
    std::uint8_t arg_index = 0;   ///< Index into the invocation arguments
                                  ///< (receiver included for instance methods).
    bool array_length = false;    ///< Use array length instead of int value.
    bool operator==(const Factor&) const = default;
  };
  std::vector<Factor> factors;
  bool operator==(const SizeParamSpec&) const = default;
};

/// Deploy-time energy profile (class-file attribute).
///
/// Fitted on the server when the application is published; downloaded with
/// the class file and consulted by the helper method at each invocation.
struct EnergyProfile {
  bool valid = false;

  /// Client energy (J) vs. s for Interpreter, Local1, Local2, Local3.
  std::array<PolyFit, kNumLocalModes> local_energy{};
  /// Client core cycles vs. s per local mode (for performance reporting).
  std::array<PolyFit, kNumLocalModes> local_cycles{};
  /// Server execution time estimate: server cycles vs. s.
  PolyFit server_cycles;
  /// Serialized request/response payload bytes vs. s.
  PolyFit request_bytes;
  PolyFit response_bytes;
  /// Local compilation energy (J) per optimization level (constant per
  /// method/platform, as the paper observes).
  std::array<double, kNumOptLevels> compile_energy{};
  /// Compiled native image size (bytes) per level — the remote-compilation
  /// download volume.
  std::array<std::uint32_t, kNumOptLevels> code_size_bytes{};
};

struct MethodInfo {
  std::string name;
  Signature sig;
  bool is_static = true;  ///< Instance methods get the receiver as local 0.
  std::uint16_t max_locals = 0;
  std::uint16_t max_stack = 0;  ///< Computed by the verifier.
  std::vector<Insn> code;

  // Attributes.
  bool potential = false;  ///< Eligible for remote execution.
  SizeParamSpec size_param;
  EnergyProfile profile;

  /// Number of invocation arguments (receiver included).
  std::size_t num_args() const {
    return sig.params.size() + (is_static ? 0 : 1);
  }
  /// Kind of invocation argument `i` (receiver included).
  TypeKind arg_kind(std::size_t i) const {
    if (!is_static) {
      if (i == 0) return TypeKind::kRef;
      return sig.params[i - 1];
    }
    return sig.params[i];
  }
};

struct ClassFile {
  std::string name;
  std::string super_name;  ///< Empty = no superclass.
  ConstantPool pool;
  std::vector<FieldInfo> fields;
  std::vector<MethodInfo> methods;

  MethodInfo* find_method(const std::string& name);
  const MethodInfo* find_method(const std::string& name) const;
};

/// Binary class-file format (what the server ships to the client when an
/// application is downloaded). Round-trips exactly.
void write_class(const ClassFile& cf, ByteWriter& w);
ClassFile read_class(ByteReader& r);

std::vector<std::uint8_t> serialize_class(const ClassFile& cf);
ClassFile deserialize_class(const std::vector<std::uint8_t>& bytes);

}  // namespace javelin::jvm
