// Fluent bytecode assembler.
//
// The benchmark applications (Fig 3) are written against this API: it plays
// the role of javac for the mini-JVM. Labels are resolved at build time and
// every built class passes the verifier, which also computes max_stack.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/nisa.hpp"
#include "jvm/classfile.hpp"
#include "jvm/verifier.hpp"

namespace javelin::jvm {

class ClassBuilder;

/// Assembles one method. Obtained from ClassBuilder::method().
class MethodBuilder {
 public:
  using Label = std::int32_t;

  // --- locals -------------------------------------------------------------
  /// Declare (or look up) a named local variable; returns its slot.
  /// Parameters are pre-declared as "p0", "p1", ... ("this" for the receiver
  /// of instance methods) but may be renamed via `param_name`.
  std::int32_t local(const std::string& name);
  MethodBuilder& param_name(std::size_t param_index, const std::string& name);

  // --- constants ----------------------------------------------------------
  MethodBuilder& iconst(std::int32_t v);
  MethodBuilder& dconst(double v);
  MethodBuilder& aconst_null();

  // --- locals load/store (by name) ----------------------------------------
  MethodBuilder& iload(const std::string& name);
  MethodBuilder& istore(const std::string& name);
  MethodBuilder& dload(const std::string& name);
  MethodBuilder& dstore(const std::string& name);
  MethodBuilder& aload(const std::string& name);
  MethodBuilder& astore(const std::string& name);

  // --- stack --------------------------------------------------------------
  MethodBuilder& pop();
  MethodBuilder& dup();

  // --- arithmetic ----------------------------------------------------------
  MethodBuilder& iadd();
  MethodBuilder& isub();
  MethodBuilder& imul();
  MethodBuilder& idiv();
  MethodBuilder& irem();
  MethodBuilder& ineg();
  MethodBuilder& ishl();
  MethodBuilder& ishr();
  MethodBuilder& iushr();
  MethodBuilder& iand();
  MethodBuilder& ior();
  MethodBuilder& ixor();
  MethodBuilder& dadd();
  MethodBuilder& dsub();
  MethodBuilder& dmul();
  MethodBuilder& ddiv();
  MethodBuilder& dneg();
  MethodBuilder& i2d();
  MethodBuilder& d2i();
  MethodBuilder& dcmp();

  // --- control flow ---------------------------------------------------------
  Label new_label();
  MethodBuilder& bind(Label l);
  MethodBuilder& ifeq(Label l);
  MethodBuilder& ifne(Label l);
  MethodBuilder& iflt(Label l);
  MethodBuilder& ifle(Label l);
  MethodBuilder& ifgt(Label l);
  MethodBuilder& ifge(Label l);
  MethodBuilder& if_icmpeq(Label l);
  MethodBuilder& if_icmpne(Label l);
  MethodBuilder& if_icmplt(Label l);
  MethodBuilder& if_icmple(Label l);
  MethodBuilder& if_icmpgt(Label l);
  MethodBuilder& if_icmpge(Label l);
  MethodBuilder& ifnull(Label l);
  MethodBuilder& ifnonnull(Label l);
  MethodBuilder& goto_(Label l);

  // --- invocation -----------------------------------------------------------
  MethodBuilder& invokestatic(const std::string& cls, const std::string& m);
  MethodBuilder& invokevirtual(const std::string& cls, const std::string& m);
  MethodBuilder& intrinsic(isa::Intrinsic id);
  MethodBuilder& ret();      ///< return void
  MethodBuilder& iret();
  MethodBuilder& dret();
  MethodBuilder& aret();

  // --- fields / objects / arrays ---------------------------------------------
  MethodBuilder& getfield(const std::string& cls, const std::string& f);
  MethodBuilder& putfield(const std::string& cls, const std::string& f);
  MethodBuilder& getstatic(const std::string& cls, const std::string& f);
  MethodBuilder& putstatic(const std::string& cls, const std::string& f);
  MethodBuilder& new_(const std::string& cls);
  MethodBuilder& newarray(TypeKind elem);
  MethodBuilder& iaload();
  MethodBuilder& iastore();
  MethodBuilder& daload();
  MethodBuilder& dastore();
  MethodBuilder& baload();
  MethodBuilder& bastore();
  MethodBuilder& aaload();
  MethodBuilder& aastore();
  MethodBuilder& arraylength();

  // --- attributes -------------------------------------------------------------
  /// Mark as a potential method with the given size-parameter spec.
  MethodBuilder& potential(SizeParamSpec spec);

 private:
  friend class ClassBuilder;
  MethodBuilder(ClassBuilder& owner, std::size_t method_index);

  MethodInfo& info();
  const MethodInfo& info() const;
  MethodBuilder& emit(Op op, std::int32_t a = 0, std::int32_t b = 0);
  MethodBuilder& emit_branch(Op op, Label l);
  std::int32_t slot_of(const std::string& name) const;
  void finish();

  ClassBuilder& owner_;
  std::size_t method_index_;
  std::map<std::string, std::int32_t> locals_;
  std::vector<std::int32_t> label_target_;           // label -> insn index
  std::vector<std::pair<std::size_t, Label>> fixups_;  // insn -> label
};

/// Assembles one class. Methods are verified at build().
class ClassBuilder {
 public:
  explicit ClassBuilder(std::string name, std::string super = "");

  ClassBuilder& field(const std::string& name, TypeKind kind,
                      bool is_static = false);

  /// Begin a method; the returned builder stays valid until build().
  MethodBuilder& method(const std::string& name, Signature sig,
                        bool is_static = true);

  /// Resolve labels, verify all methods (computing max_stack), and return
  /// the finished class file. Pass the class files this class references
  /// (superclasses, callees) when it is not self-contained.
  ClassFile build(const std::vector<const ClassFile*>& deps = {});

 private:
  friend class MethodBuilder;
  ClassFile cf_;
  std::vector<std::unique_ptr<MethodBuilder>> builders_;
};

}  // namespace javelin::jvm
