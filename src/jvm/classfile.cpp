#include "jvm/classfile.hpp"

#include <algorithm>
#include <cmath>

namespace javelin::jvm {

namespace {
constexpr std::uint32_t kMagic = 0x4a564c4e;  // "JVLN"
constexpr std::uint16_t kVersion = 3;
}  // namespace

std::int32_t ConstantPool::add_double(double v) {
  for (std::size_t i = 0; i < doubles.size(); ++i)
    if (doubles[i] == v && !(doubles[i] == 0.0 && std::signbit(doubles[i]) !=
                                                      std::signbit(v)))
      return static_cast<std::int32_t>(i);
  doubles.push_back(v);
  return static_cast<std::int32_t>(doubles.size() - 1);
}

std::int32_t ConstantPool::add_method(const std::string& cls,
                                      const std::string& m) {
  MethodRef ref{cls, m};
  const auto it = std::find(methods.begin(), methods.end(), ref);
  if (it != methods.end())
    return static_cast<std::int32_t>(it - methods.begin());
  methods.push_back(std::move(ref));
  return static_cast<std::int32_t>(methods.size() - 1);
}

std::int32_t ConstantPool::add_field(const std::string& cls,
                                     const std::string& f) {
  FieldRef ref{cls, f};
  const auto it = std::find(fields.begin(), fields.end(), ref);
  if (it != fields.end()) return static_cast<std::int32_t>(it - fields.begin());
  fields.push_back(std::move(ref));
  return static_cast<std::int32_t>(fields.size() - 1);
}

std::int32_t ConstantPool::add_class(const std::string& cls) {
  const auto it = std::find(classes.begin(), classes.end(), cls);
  if (it != classes.end())
    return static_cast<std::int32_t>(it - classes.begin());
  classes.push_back(cls);
  return static_cast<std::int32_t>(classes.size() - 1);
}

MethodInfo* ClassFile::find_method(const std::string& mname) {
  for (auto& m : methods)
    if (m.name == mname) return &m;
  return nullptr;
}

const MethodInfo* ClassFile::find_method(const std::string& mname) const {
  for (const auto& m : methods)
    if (m.name == mname) return &m;
  return nullptr;
}

namespace {

void write_poly(const PolyFit& p, ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(p.coeffs.size()));
  for (double c : p.coeffs) w.f64(c);
}

PolyFit read_poly(ByteReader& r) {
  PolyFit p;
  const std::uint32_t n = r.u32();
  if (n > 16) throw FormatError("classfile: implausible polynomial degree");
  p.coeffs.resize(n);
  for (auto& c : p.coeffs) c = r.f64();
  return p;
}

void write_sig(const Signature& s, ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(s.params.size()));
  for (auto p : s.params) w.u8(static_cast<std::uint8_t>(p));
  w.u8(static_cast<std::uint8_t>(s.ret));
}

Signature read_sig(ByteReader& r) {
  Signature s;
  const std::uint8_t n = r.u8();
  s.params.resize(n);
  for (auto& p : s.params) p = static_cast<TypeKind>(r.u8());
  s.ret = static_cast<TypeKind>(r.u8());
  return s;
}

void write_method(const MethodInfo& m, ByteWriter& w) {
  w.str(m.name);
  write_sig(m.sig, w);
  w.u8(m.is_static ? 1 : 0);
  w.u16(m.max_locals);
  w.u16(m.max_stack);
  w.u32(static_cast<std::uint32_t>(m.code.size()));
  for (const Insn& in : m.code) {
    w.u8(static_cast<std::uint8_t>(in.op));
    w.i32(in.a);
    w.i32(in.b);
  }
  w.u8(m.potential ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(m.size_param.factors.size()));
  for (const auto& f : m.size_param.factors) {
    w.u8(f.arg_index);
    w.u8(f.array_length ? 1 : 0);
  }
  w.u8(m.profile.valid ? 1 : 0);
  if (m.profile.valid) {
    for (const auto& p : m.profile.local_energy) write_poly(p, w);
    for (const auto& p : m.profile.local_cycles) write_poly(p, w);
    write_poly(m.profile.server_cycles, w);
    write_poly(m.profile.request_bytes, w);
    write_poly(m.profile.response_bytes, w);
    for (double e : m.profile.compile_energy) w.f64(e);
    for (std::uint32_t s : m.profile.code_size_bytes) w.u32(s);
  }
}

MethodInfo read_method(ByteReader& r) {
  MethodInfo m;
  m.name = r.str();
  m.sig = read_sig(r);
  m.is_static = r.u8() != 0;
  m.max_locals = r.u16();
  m.max_stack = r.u16();
  const std::uint32_t n = r.u32();
  if (static_cast<std::size_t>(n) * 9 > r.remaining())
    throw FormatError("classfile: truncated code");
  m.code.resize(n);
  for (auto& in : m.code) {
    const std::uint8_t op = r.u8();
    if (op >= kNumOps) throw FormatError("classfile: bad opcode");
    in.op = static_cast<Op>(op);
    in.a = r.i32();
    in.b = r.i32();
  }
  m.potential = r.u8() != 0;
  const std::uint8_t nf = r.u8();
  m.size_param.factors.resize(nf);
  for (auto& f : m.size_param.factors) {
    f.arg_index = r.u8();
    f.array_length = r.u8() != 0;
  }
  m.profile.valid = r.u8() != 0;
  if (m.profile.valid) {
    for (auto& p : m.profile.local_energy) p = read_poly(r);
    for (auto& p : m.profile.local_cycles) p = read_poly(r);
    m.profile.server_cycles = read_poly(r);
    m.profile.request_bytes = read_poly(r);
    m.profile.response_bytes = read_poly(r);
    for (double& e : m.profile.compile_energy) e = r.f64();
    for (std::uint32_t& s : m.profile.code_size_bytes) s = r.u32();
  }
  return m;
}

}  // namespace

void write_class(const ClassFile& cf, ByteWriter& w) {
  w.u32(kMagic);
  w.u16(kVersion);
  w.str(cf.name);
  w.str(cf.super_name);

  w.u32(static_cast<std::uint32_t>(cf.pool.doubles.size()));
  for (double d : cf.pool.doubles) w.f64(d);
  w.u32(static_cast<std::uint32_t>(cf.pool.methods.size()));
  for (const auto& m : cf.pool.methods) {
    w.str(m.class_name);
    w.str(m.method_name);
  }
  w.u32(static_cast<std::uint32_t>(cf.pool.fields.size()));
  for (const auto& f : cf.pool.fields) {
    w.str(f.class_name);
    w.str(f.field_name);
  }
  w.u32(static_cast<std::uint32_t>(cf.pool.classes.size()));
  for (const auto& c : cf.pool.classes) w.str(c);

  w.u32(static_cast<std::uint32_t>(cf.fields.size()));
  for (const auto& f : cf.fields) {
    w.str(f.name);
    w.u8(static_cast<std::uint8_t>(f.kind));
    w.u8(f.is_static ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(cf.methods.size()));
  for (const auto& m : cf.methods) write_method(m, w);
}

ClassFile read_class(ByteReader& r) {
  if (r.u32() != kMagic) throw FormatError("classfile: bad magic");
  if (r.u16() != kVersion) throw FormatError("classfile: unsupported version");
  ClassFile cf;
  cf.name = r.str();
  cf.super_name = r.str();

  // Every count field is validated against the bytes actually present
  // (each element encodes to at least `per` bytes) before it reaches the
  // allocator: a forged 0xFFFFFFFF count must fail as a FormatError, not as
  // a multi-gigabyte resize.
  const auto counted = [&r](std::size_t per, const char* what) {
    const std::uint32_t n = r.u32();
    if (static_cast<std::size_t>(n) * per > r.remaining())
      throw FormatError(std::string("classfile: truncated ") + what);
    return n;
  };

  cf.pool.doubles.resize(counted(8, "pool"));
  for (auto& d : cf.pool.doubles) d = r.f64();
  cf.pool.methods.resize(counted(8, "pool"));  // two length-prefixed strings
  for (auto& m : cf.pool.methods) {
    m.class_name = r.str();
    m.method_name = r.str();
  }
  cf.pool.fields.resize(counted(8, "pool"));
  for (auto& f : cf.pool.fields) {
    f.class_name = r.str();
    f.field_name = r.str();
  }
  cf.pool.classes.resize(counted(4, "pool"));
  for (auto& c : cf.pool.classes) c = r.str();

  cf.fields.resize(counted(6, "field table"));
  for (auto& f : cf.fields) {
    f.name = r.str();
    f.kind = static_cast<TypeKind>(r.u8());
    f.is_static = r.u8() != 0;
  }
  const std::uint32_t nm = counted(9, "method table");
  cf.methods.reserve(nm);
  for (std::uint32_t i = 0; i < nm; ++i) cf.methods.push_back(read_method(r));
  return cf;
}

std::vector<std::uint8_t> serialize_class(const ClassFile& cf) {
  ByteWriter w;
  write_class(cf, w);
  return w.take();
}

ClassFile deserialize_class(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  ClassFile cf = read_class(r);
  if (!r.at_end()) throw FormatError("classfile: trailing bytes");
  return cf;
}

}  // namespace javelin::jvm
