#include "jvm/interp.hpp"

#include <cstdlib>
#include <cstring>

#include "isa/nisa.hpp"
#include "jvm/opspec.hpp"

// Threaded dispatch needs the GNU &&label extension (GCC/Clang). Elsewhere
// every flavor degrades to the portable switch loop.
#if defined(__GNUC__) || defined(__clang__)
#define JAVELIN_HAVE_COMPUTED_GOTO 1
#else
#define JAVELIN_HAVE_COMPUTED_GOTO 0
#endif

namespace javelin::jvm {

using energy::InstrClass;

const char* dispatch_mode_name(DispatchMode m) {
  switch (m) {
    case DispatchMode::kSwitch: return "switch";
    case DispatchMode::kGoto: return "goto";
    case DispatchMode::kBaseline: return "baseline";
  }
  return "?";
}

DispatchMode default_dispatch_mode() {
  if (const char* e = std::getenv("JAVELIN_DISPATCH")) {
    if (std::strcmp(e, "switch") == 0) return DispatchMode::kSwitch;
    if (std::strcmp(e, "goto") == 0) return DispatchMode::kGoto;
    if (std::strcmp(e, "baseline") == 0) return DispatchMode::kBaseline;
  }
  return DispatchMode::kBaseline;
}

namespace {

/// Interpreter frame in the arena stack zone with charged slot accesses.
class Frame {
 public:
  Frame(isa::Core& core, const MethodInfo& mi)
      : core_(core),
        mark_(core.arena->stack_mark()),
        base_(core.arena->alloc_stack(
            (static_cast<std::size_t>(mi.max_locals) + mi.max_stack) * 8, 8)),
        stack_base_(base_ + static_cast<mem::Addr>(mi.max_locals) * 8) {}

  ~Frame() { core_.arena->stack_release(mark_); }

  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

  // Raw slot addresses.
  mem::Addr local_addr(std::int32_t slot) const {
    return base_ + static_cast<mem::Addr>(slot) * 8;
  }
  mem::Addr stack_addr(std::int32_t depth) const {
    return stack_base_ + static_cast<mem::Addr>(depth) * 8;
  }

  // Charged operand-stack accesses.
  void push_i64(std::int64_t v) {
    const mem::Addr a = stack_addr(sp_++);
    core_.stall(core_.hier->store(a));
    core_.charge_class(InstrClass::kStore);
    core_.arena->store_i64(a, v);
  }
  void push_f64(double v) {
    const mem::Addr a = stack_addr(sp_++);
    core_.stall(core_.hier->store(a));
    core_.charge_class(InstrClass::kStore);
    core_.arena->store_f64(a, v);
  }
  std::int64_t pop_i64() {
    const mem::Addr a = stack_addr(--sp_);
    core_.stall(core_.hier->load(a));
    core_.charge_class(InstrClass::kLoad);
    return core_.arena->load_i64(a);
  }
  double pop_f64() {
    const mem::Addr a = stack_addr(--sp_);
    core_.stall(core_.hier->load(a));
    core_.charge_class(InstrClass::kLoad);
    return core_.arena->load_f64(a);
  }
  std::int32_t pop_i32() { return static_cast<std::int32_t>(pop_i64()); }
  mem::Addr pop_ref() { return static_cast<mem::Addr>(pop_i64()); }
  void push_i32(std::int32_t v) { push_i64(v); }
  void push_ref(mem::Addr v) { push_i64(static_cast<std::int64_t>(v)); }

  // Charged local accesses.
  std::int64_t load_local_i64(std::int32_t slot) {
    const mem::Addr a = local_addr(slot);
    core_.stall(core_.hier->load(a));
    core_.charge_class(InstrClass::kLoad);
    return core_.arena->load_i64(a);
  }
  double load_local_f64(std::int32_t slot) {
    const mem::Addr a = local_addr(slot);
    core_.stall(core_.hier->load(a));
    core_.charge_class(InstrClass::kLoad);
    return core_.arena->load_f64(a);
  }
  void store_local_i64(std::int32_t slot, std::int64_t v) {
    const mem::Addr a = local_addr(slot);
    core_.stall(core_.hier->store(a));
    core_.charge_class(InstrClass::kStore);
    core_.arena->store_i64(a, v);
  }
  void store_local_f64(std::int32_t slot, double v) {
    const mem::Addr a = local_addr(slot);
    core_.stall(core_.hier->store(a));
    core_.charge_class(InstrClass::kStore);
    core_.arena->store_f64(a, v);
  }

  std::int32_t sp() const { return sp_; }

 private:
  isa::Core& core_;
  std::size_t mark_;
  mem::Addr base_;
  mem::Addr stack_base_;
  std::int32_t sp_ = 0;
};

// Per-bytecode dispatch overhead: opcode fetch through the D-cache at the
// installed bytecode address, decode ALU op, dispatch branch. Shared by all
// loop flavors so it cannot drift (this is opspec::kDispatchCost in charge
// form).
inline void charge_dispatch(isa::Core& core, mem::Addr bc_addr,
                            std::size_t pc) {
  core.stall(core.hier->load(bc_addr + static_cast<mem::Addr>(pc * 4)));
  core.charge_class(InstrClass::kLoad);
  core.charge_class(InstrClass::kAluSimple);
  core.charge_class(InstrClass::kBranch);
}

// ---------------------------------------------------------------------------
// Flavor 1: portable switch loop (the original implementation, with per-op
// specialized cases generated from interp_ops.inc).
// ---------------------------------------------------------------------------

Value run_switch_loop(Jvm& jvm, const RtMethod& m, const RtClass& rc,
                      isa::Core& core, Frame& fr, Invoker& invoker,
                      OpPairCounts* pairs) {
  std::size_t pc = 0;
  const auto& code = m.info->code;
  // Decoded-bytecode cache: pool-indirect operands were resolved once at
  // link(). When the cache is disabled (golden-path tests), fall back to
  // decoding the raw instruction every iteration — simulated cost is
  // identical, only host work differs.
  const DecodedInsn* dcode = m.decoded.empty() ? nullptr : m.decoded.data();
  DecodedInsn undecoded;

  // Profiling state: previous executed instruction, per frame. A pair is
  // adjacent when the current pc is the previous pc's fall-through.
  std::size_t prev_pc = 0;
  Op prev_op = Op::kCount;
  bool have_prev = false;

  for (;;) {
    if (pc >= code.size())
      throw VmError("interpreter: pc out of range in " + m.qualified_name);
    charge_dispatch(core, m.bc_addr, pc);
    const DecodedInsn& in =
        dcode ? dcode[pc] : (undecoded = Jvm::decode_insn(rc, code[pc]));
    if (pairs) {
      if (have_prev && pc == prev_pc + 1) pairs->note(prev_op, in.op);
      prev_pc = pc;
      prev_op = in.op;
      have_prev = true;
    }
    std::size_t next = pc + 1;

    switch (in.op) {
#define JAVELIN_H(Name) case Op::k##Name: {
#define JAVELIN_H_END \
  }                   \
  break;
#include "jvm/interp_ops.inc"
#undef JAVELIN_H
#undef JAVELIN_H_END
      case Op::kCount:
        throw VmError("interpreter: invalid opcode");
    }

    pc = next;
  }
}

#if JAVELIN_HAVE_COMPUTED_GOTO

// ---------------------------------------------------------------------------
// Flavor 2: threaded computed-goto loop. One indirect jump per bytecode,
// through a label table generated from the opcode-spec X-macro in enum
// order (the static_assert in opspec.hpp pins the correspondence).
// ---------------------------------------------------------------------------

Value run_goto_loop(Jvm& jvm, const RtMethod& m, const RtClass& rc,
                    isa::Core& core, Frame& fr, Invoker& invoker) {
  static const void* kLabels[] = {
#define JAVELIN_LBL(Name, ...) &&h_##Name,
      JAVELIN_OPCODE_LIST(JAVELIN_LBL)
#undef JAVELIN_LBL
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumOps);

  std::size_t pc = 0;
  const auto& code = m.info->code;
  const DecodedInsn* dcode = m.decoded.empty() ? nullptr : m.decoded.data();
  DecodedInsn undecoded;
  const DecodedInsn* in_p = nullptr;
  std::size_t next = 0;

dispatch:
  if (pc >= code.size())
    throw VmError("interpreter: pc out of range in " + m.qualified_name);
  charge_dispatch(core, m.bc_addr, pc);
  in_p = dcode ? &dcode[pc]
               : (undecoded = Jvm::decode_insn(rc, code[pc]), &undecoded);
  next = pc + 1;
  if (static_cast<std::size_t>(in_p->op) >= kNumOps)
    throw VmError("interpreter: invalid opcode");
  goto* kLabels[static_cast<std::size_t>(in_p->op)];

// Handlers cannot bind a reference across a goto, so `in` reads through the
// pointer set at dispatch.
#define in (*in_p)
#define JAVELIN_H(Name) h_##Name : {
#define JAVELIN_H_END \
  }                   \
  pc = next;          \
  goto dispatch;
#include "jvm/interp_ops.inc"
#undef JAVELIN_H
#undef JAVELIN_H_END
#undef in
}

#endif  // JAVELIN_HAVE_COMPUTED_GOTO

// ---------------------------------------------------------------------------
// Flavor 3: L0.5 baseline superinstruction stream. Entries are pre-resolved
// (no per-iteration decode or pool access), branch targets are stream
// indices, and common adjacent pairs are fused into one dispatch. Simulated
// charges are replayed at the original bytecode addresses, so default-mode
// execution is bit-identical to the other flavors; `baseline_acct` is the
// opt-in tier accounting where a fused pair costs a single dispatch.
// ---------------------------------------------------------------------------

Value run_stream_loop(Jvm& jvm, const RtMethod& m, const RtClass& rc,
                      isa::Core& core, Frame& fr, Invoker& invoker,
                      bool baseline_acct) {
  (void)rc;  // Stream entries are fully pre-decoded.
  const BaselineInsn* stream = m.baseline.data();
  const std::size_t nstream = m.baseline.size();
  std::size_t si = 0;
  std::size_t next = 0;
  const BaselineInsn* bi_p = nullptr;

#define JAVELIN_FUSED_DISPATCH2()                        \
  if (!baseline_acct)                                    \
    charge_dispatch(core, m.bc_addr, bi_p->pc + 1)

#if JAVELIN_HAVE_COMPUTED_GOTO

  static const void* kLabels[] = {
#define JAVELIN_LBL(Name, ...) &&h_##Name,
      JAVELIN_OPCODE_LIST(JAVELIN_LBL)
#undef JAVELIN_LBL
      &&h_FuseLL, &&h_FuseDD, &&h_FuseLC,
      &&h_FuseCS, &&h_FuseLA, &&h_FuseDA,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kSopCount);

dispatch:
  if (si >= nstream)
    throw VmError("interpreter: pc out of range in " + m.qualified_name);
  bi_p = &stream[si];
  charge_dispatch(core, m.bc_addr, bi_p->pc);
  next = si + 1;
  goto* kLabels[bi_p->sop];

#define in (bi_p->di)
#define in2 (bi_p->di2)
#define JAVELIN_H(Name) h_##Name : {
#define JAVELIN_H_END \
  }                   \
  si = next;          \
  goto dispatch;
#define JAVELIN_FH(Name) h_##Name : {
#define JAVELIN_FH_END \
  }                    \
  si = next;           \
  goto dispatch;
#include "jvm/interp_ops.inc"
#include "jvm/interp_fused.inc"
#undef JAVELIN_H
#undef JAVELIN_H_END
#undef JAVELIN_FH
#undef JAVELIN_FH_END
#undef in
#undef in2

#else  // !JAVELIN_HAVE_COMPUTED_GOTO — portable switch over the stream.

  for (;;) {
    if (si >= nstream)
      throw VmError("interpreter: pc out of range in " + m.qualified_name);
    bi_p = &stream[si];
    charge_dispatch(core, m.bc_addr, bi_p->pc);
    next = si + 1;

    switch (bi_p->sop) {
#define in (bi_p->di)
#define in2 (bi_p->di2)
#define JAVELIN_H(Name) case static_cast<std::uint16_t>(Op::k##Name): {
#define JAVELIN_H_END \
  }                   \
  break;
#define JAVELIN_FH(Name) case kSop##Name: {
#define JAVELIN_FH_END \
  }                    \
  break;
#include "jvm/interp_ops.inc"
#include "jvm/interp_fused.inc"
#undef JAVELIN_H
#undef JAVELIN_H_END
#undef JAVELIN_FH
#undef JAVELIN_FH_END
#undef in
#undef in2
      default:
        throw VmError("interpreter: invalid opcode");
    }

    si = next;
  }

#endif  // JAVELIN_HAVE_COMPUTED_GOTO

#undef JAVELIN_FUSED_DISPATCH2
}

}  // namespace

Value Interpreter::run_mode(const RtMethod& m, std::span<const Value> args,
                            Invoker& invoker, DispatchMode mode,
                            bool baseline_acct) {
  if (trace_) {
    if (baseline_acct)
      trace_->count(obs::Counter::kInterpRunsBaseline);
    else
      trace_->count(m.decoded.empty() ? obs::Counter::kInterpRunsUndecoded
                                      : obs::Counter::kInterpRunsDecoded);
  }
  const MethodInfo& mi = *m.info;
  isa::Core& core = jvm_.core();
  const RtClass& rc = jvm_.cls(m.class_id);

  // Resolve the effective flavor: the stream only exists when the decode
  // cache + baseline stream were enabled at link(); a missing stream (or a
  // compiler without &&label) degrades one flavor at a time. Simulated costs
  // are identical on every path.
  DispatchMode eff = mode;
  if (eff == DispatchMode::kBaseline && m.baseline.empty())
    eff = DispatchMode::kGoto;
#if !JAVELIN_HAVE_COMPUTED_GOTO
  if (eff == DispatchMode::kGoto) eff = DispatchMode::kSwitch;
#endif
  // Profiling routes through the switch loop — the only flavor that carries
  // the pair-counting hook.
  if (pairs_) eff = DispatchMode::kSwitch;

  if (++core.call_depth > isa::Core::kMaxCallDepth) {
    --core.call_depth;
    throw VmError("interpreter: call depth exceeded");
  }

  try {
    Frame fr(core, mi);

    // Entry: spill arguments into the frame's local slots.
    if (args.size() != mi.num_args())
      throw VmError("interpreter: argument count mismatch for " +
                    m.qualified_name);
    for (std::size_t i = 0; i < args.size(); ++i) {
      switch (args[i].kind) {
        case TypeKind::kDouble:
          fr.store_local_f64(static_cast<std::int32_t>(i), args[i].d);
          break;
        case TypeKind::kRef:
          fr.store_local_i64(static_cast<std::int32_t>(i), args[i].ref);
          break;
        default:
          fr.store_local_i64(static_cast<std::int32_t>(i), args[i].i);
          break;
      }
    }

    switch (eff) {
      case DispatchMode::kBaseline:
        return run_stream_loop(jvm_, m, rc, core, fr, invoker, baseline_acct);
#if JAVELIN_HAVE_COMPUTED_GOTO
      case DispatchMode::kGoto:
        return run_goto_loop(jvm_, m, rc, core, fr, invoker);
#endif
      default:
        return run_switch_loop(jvm_, m, rc, core, fr, invoker, pairs_);
    }
  } catch (...) {
    --core.call_depth;
    throw;
  }
}

Value Interpreter::run(const RtMethod& m, std::span<const Value> args,
                       Invoker& invoker) {
  return run_mode(m, args, invoker, mode_, /*baseline_acct=*/false);
}

Value Interpreter::run_baseline(const RtMethod& m, std::span<const Value> args,
                                Invoker& invoker) {
  return run_mode(m, args, invoker, DispatchMode::kBaseline,
                  /*baseline_acct=*/true);
}

}  // namespace javelin::jvm
