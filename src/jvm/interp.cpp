#include "jvm/interp.hpp"

#include "isa/nisa.hpp"

namespace javelin::jvm {

using energy::InstrClass;

namespace {

/// Interpreter frame in the arena stack zone with charged slot accesses.
class Frame {
 public:
  Frame(isa::Core& core, const MethodInfo& mi)
      : core_(core),
        mark_(core.arena->stack_mark()),
        base_(core.arena->alloc_stack(
            (static_cast<std::size_t>(mi.max_locals) + mi.max_stack) * 8, 8)),
        stack_base_(base_ + static_cast<mem::Addr>(mi.max_locals) * 8) {}

  ~Frame() { core_.arena->stack_release(mark_); }

  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

  // Raw slot addresses.
  mem::Addr local_addr(std::int32_t slot) const {
    return base_ + static_cast<mem::Addr>(slot) * 8;
  }
  mem::Addr stack_addr(std::int32_t depth) const {
    return stack_base_ + static_cast<mem::Addr>(depth) * 8;
  }

  // Charged operand-stack accesses.
  void push_i64(std::int64_t v) {
    const mem::Addr a = stack_addr(sp_++);
    core_.stall(core_.hier->store(a));
    core_.charge_class(InstrClass::kStore);
    core_.arena->store_i64(a, v);
  }
  void push_f64(double v) {
    const mem::Addr a = stack_addr(sp_++);
    core_.stall(core_.hier->store(a));
    core_.charge_class(InstrClass::kStore);
    core_.arena->store_f64(a, v);
  }
  std::int64_t pop_i64() {
    const mem::Addr a = stack_addr(--sp_);
    core_.stall(core_.hier->load(a));
    core_.charge_class(InstrClass::kLoad);
    return core_.arena->load_i64(a);
  }
  double pop_f64() {
    const mem::Addr a = stack_addr(--sp_);
    core_.stall(core_.hier->load(a));
    core_.charge_class(InstrClass::kLoad);
    return core_.arena->load_f64(a);
  }
  std::int32_t pop_i32() { return static_cast<std::int32_t>(pop_i64()); }
  mem::Addr pop_ref() { return static_cast<mem::Addr>(pop_i64()); }
  void push_i32(std::int32_t v) { push_i64(v); }
  void push_ref(mem::Addr v) { push_i64(static_cast<std::int64_t>(v)); }

  // Charged local accesses.
  std::int64_t load_local_i64(std::int32_t slot) {
    const mem::Addr a = local_addr(slot);
    core_.stall(core_.hier->load(a));
    core_.charge_class(InstrClass::kLoad);
    return core_.arena->load_i64(a);
  }
  double load_local_f64(std::int32_t slot) {
    const mem::Addr a = local_addr(slot);
    core_.stall(core_.hier->load(a));
    core_.charge_class(InstrClass::kLoad);
    return core_.arena->load_f64(a);
  }
  void store_local_i64(std::int32_t slot, std::int64_t v) {
    const mem::Addr a = local_addr(slot);
    core_.stall(core_.hier->store(a));
    core_.charge_class(InstrClass::kStore);
    core_.arena->store_i64(a, v);
  }
  void store_local_f64(std::int32_t slot, double v) {
    const mem::Addr a = local_addr(slot);
    core_.stall(core_.hier->store(a));
    core_.charge_class(InstrClass::kStore);
    core_.arena->store_f64(a, v);
  }

  std::int32_t sp() const { return sp_; }

 private:
  isa::Core& core_;
  std::size_t mark_;
  mem::Addr base_;
  mem::Addr stack_base_;
  std::int32_t sp_ = 0;
};

}  // namespace

Value Interpreter::run(const RtMethod& m, std::span<const Value> args,
                       Invoker& invoker) {
  if (trace_)
    trace_->count(m.decoded.empty() ? obs::Counter::kInterpRunsUndecoded
                                    : obs::Counter::kInterpRunsDecoded);
  const MethodInfo& mi = *m.info;
  isa::Core& core = jvm_.core();
  const RtClass& rc = jvm_.cls(m.class_id);

  if (++core.call_depth > isa::Core::kMaxCallDepth) {
    --core.call_depth;
    throw VmError("interpreter: call depth exceeded");
  }

  try {
    Frame fr(core, mi);

    // Entry: spill arguments into the frame's local slots.
    if (args.size() != mi.num_args())
      throw VmError("interpreter: argument count mismatch for " +
                    m.qualified_name);
    for (std::size_t i = 0; i < args.size(); ++i) {
      switch (args[i].kind) {
        case TypeKind::kDouble:
          fr.store_local_f64(static_cast<std::int32_t>(i), args[i].d);
          break;
        case TypeKind::kRef:
          fr.store_local_i64(static_cast<std::int32_t>(i), args[i].ref);
          break;
        default:
          fr.store_local_i64(static_cast<std::int32_t>(i), args[i].i);
          break;
      }
    }

    std::size_t pc = 0;
    const auto& code = mi.code;
    // Decoded-bytecode cache: pool-indirect operands were resolved once at
    // link(). When the cache is disabled (golden-path tests), fall back to
    // decoding the raw instruction every iteration — simulated cost is
    // identical, only host work differs.
    const DecodedInsn* dcode = m.decoded.empty() ? nullptr : m.decoded.data();
    DecodedInsn undecoded;

    for (;;) {
      if (pc >= code.size())
        throw VmError("interpreter: pc out of range in " + m.qualified_name);
      // Fetch-decode-dispatch: the bytecode itself is data for the
      // interpreter, so the fetch goes through the D-cache.
      core.stall(core.hier->load(m.bc_addr + static_cast<mem::Addr>(pc * 4)));
      core.charge_class(InstrClass::kLoad);
      core.charge_class(InstrClass::kAluSimple);
      core.charge_class(InstrClass::kBranch);

      const DecodedInsn& in =
          dcode ? dcode[pc] : (undecoded = Jvm::decode_insn(rc, code[pc]));
      std::size_t next = pc + 1;

      switch (in.op) {
        case Op::kIconst:
          core.charge_class(InstrClass::kAluSimple);
          fr.push_i32(in.a);
          break;
        case Op::kDconst: {
          // Load the double from the constant pool (resident near bytecode).
          core.stall(core.hier->load(m.bc_addr));
          core.charge_class(InstrClass::kLoad);
          fr.push_f64(in.d);
          break;
        }
        case Op::kAconstNull:
          core.charge_class(InstrClass::kAluSimple);
          fr.push_ref(mem::kNullAddr);
          break;

        case Op::kIload:
        case Op::kAload:
          fr.push_i64(fr.load_local_i64(in.a));
          break;
        case Op::kDload:
          fr.push_f64(fr.load_local_f64(in.a));
          break;
        case Op::kIstore:
        case Op::kAstore:
          fr.store_local_i64(in.a, fr.pop_i64());
          break;
        case Op::kDstore:
          fr.store_local_f64(in.a, fr.pop_f64());
          break;

        case Op::kPop:
          fr.pop_i64();
          break;
        case Op::kDup: {
          const std::int64_t v = fr.pop_i64();
          fr.push_i64(v);
          fr.push_i64(v);
          break;
        }

        case Op::kIadd: case Op::kIsub: case Op::kIand: case Op::kIor:
        case Op::kIxor: case Op::kIshl: case Op::kIshr: case Op::kIushr: {
          const std::int32_t b = fr.pop_i32();
          const std::int32_t a = fr.pop_i32();
          core.charge_class(InstrClass::kAluSimple);
          std::int32_t r = 0;
          switch (in.op) {
            case Op::kIadd: r = a + b; break;
            case Op::kIsub: r = a - b; break;
            case Op::kIand: r = a & b; break;
            case Op::kIor: r = a | b; break;
            case Op::kIxor: r = a ^ b; break;
            case Op::kIshl: r = a << (b & 31); break;
            case Op::kIshr: r = a >> (b & 31); break;
            default:
              r = static_cast<std::int32_t>(static_cast<std::uint32_t>(a) >>
                                            (b & 31));
              break;
          }
          fr.push_i32(r);
          break;
        }
        case Op::kImul: case Op::kIdiv: case Op::kIrem: {
          const std::int32_t b = fr.pop_i32();
          const std::int32_t a = fr.pop_i32();
          core.charge_class(InstrClass::kAluComplex);
          std::int32_t r = 0;
          if (in.op == Op::kImul) {
            r = a * b;
          } else {
            if (b == 0) throw VmError("division by zero");
            r = in.op == Op::kIdiv ? a / b : a % b;
          }
          fr.push_i32(r);
          break;
        }
        case Op::kIneg: {
          const std::int32_t a = fr.pop_i32();
          core.charge_class(InstrClass::kAluSimple);
          fr.push_i32(-a);
          break;
        }
        case Op::kDadd: case Op::kDsub: case Op::kDmul: case Op::kDdiv: {
          const double b = fr.pop_f64();
          const double a = fr.pop_f64();
          core.charge_class(InstrClass::kAluComplex);
          double r = 0;
          switch (in.op) {
            case Op::kDadd: r = a + b; break;
            case Op::kDsub: r = a - b; break;
            case Op::kDmul: r = a * b; break;
            default: r = a / b; break;
          }
          fr.push_f64(r);
          break;
        }
        case Op::kDneg: {
          const double a = fr.pop_f64();
          core.charge_class(InstrClass::kAluComplex);
          fr.push_f64(-a);
          break;
        }
        case Op::kI2d: {
          const std::int32_t a = fr.pop_i32();
          core.charge_class(InstrClass::kAluComplex);
          fr.push_f64(static_cast<double>(a));
          break;
        }
        case Op::kD2i: {
          const double a = fr.pop_f64();
          core.charge_class(InstrClass::kAluComplex);
          fr.push_i32(static_cast<std::int32_t>(a));
          break;
        }
        case Op::kDcmp: {
          const double b = fr.pop_f64();
          const double a = fr.pop_f64();
          core.charge_class(InstrClass::kAluComplex);
          fr.push_i32(a > b ? 1 : (a == b ? 0 : -1));
          break;
        }

        case Op::kIfeq: case Op::kIfne: case Op::kIflt:
        case Op::kIfle: case Op::kIfgt: case Op::kIfge: {
          const std::int32_t a = fr.pop_i32();
          core.charge_class(InstrClass::kBranch);
          bool taken = false;
          switch (in.op) {
            case Op::kIfeq: taken = a == 0; break;
            case Op::kIfne: taken = a != 0; break;
            case Op::kIflt: taken = a < 0; break;
            case Op::kIfle: taken = a <= 0; break;
            case Op::kIfgt: taken = a > 0; break;
            default: taken = a >= 0; break;
          }
          if (taken) next = static_cast<std::size_t>(in.a);
          break;
        }
        case Op::kIfIcmpEq: case Op::kIfIcmpNe: case Op::kIfIcmpLt:
        case Op::kIfIcmpLe: case Op::kIfIcmpGt: case Op::kIfIcmpGe: {
          const std::int32_t b = fr.pop_i32();
          const std::int32_t a = fr.pop_i32();
          core.charge_class(InstrClass::kBranch);
          bool taken = false;
          switch (in.op) {
            case Op::kIfIcmpEq: taken = a == b; break;
            case Op::kIfIcmpNe: taken = a != b; break;
            case Op::kIfIcmpLt: taken = a < b; break;
            case Op::kIfIcmpLe: taken = a <= b; break;
            case Op::kIfIcmpGt: taken = a > b; break;
            default: taken = a >= b; break;
          }
          if (taken) next = static_cast<std::size_t>(in.a);
          break;
        }
        case Op::kIfNull: case Op::kIfNonNull: {
          const mem::Addr r = fr.pop_ref();
          core.charge_class(InstrClass::kBranch);
          const bool taken =
              in.op == Op::kIfNull ? r == mem::kNullAddr : r != mem::kNullAddr;
          if (taken) next = static_cast<std::size_t>(in.a);
          break;
        }
        case Op::kGoto:
          core.charge_class(InstrClass::kBranch);
          next = static_cast<std::size_t>(in.a);
          break;

        case Op::kInvokeStatic:
        case Op::kInvokeVirtual: {
          std::int32_t callee_id = in.rid;
          const RtMethod& callee = jvm_.method(callee_id);
          const std::size_t nargs = callee.info->num_args();
          std::vector<Value> call_args(nargs);
          // Pop arguments right-to-left.
          for (std::size_t i = nargs; i-- > 0;) {
            const TypeKind k = callee.info->arg_kind(i);
            if (k == TypeKind::kDouble)
              call_args[i] = Value::make_double(fr.pop_f64());
            else if (k == TypeKind::kRef)
              call_args[i] = Value::make_ref(fr.pop_ref());
            else
              call_args[i] = Value::make_int(fr.pop_i32());
          }
          if (in.op == Op::kInvokeVirtual) {
            // Dynamic dispatch: header load + table lookup + indirect call.
            const mem::Addr receiver = call_args[0].as_ref();
            if (receiver == mem::kNullAddr)
              throw VmError("null pointer dereference");
            core.stall(core.hier->load(receiver));
            core.charge_class(InstrClass::kLoad, 2);
            core.charge_class(InstrClass::kBranch);
            callee_id = jvm_.resolve_virtual(callee_id, receiver);
          } else {
            core.charge_class(InstrClass::kBranch);
          }
          const Value result = invoker.invoke(callee_id, call_args);
          if (result.kind == TypeKind::kDouble)
            fr.push_f64(result.d);
          else if (result.kind == TypeKind::kRef)
            fr.push_ref(result.ref);
          else if (result.kind == TypeKind::kInt)
            fr.push_i32(result.i);
          break;
        }
        case Op::kInvokeIntrinsic: {
          const auto id = static_cast<isa::Intrinsic>(in.a);
          double fp[2]{};
          std::int32_t ints[2]{};
          for (int i = isa::intrinsic_fp_args(id); i-- > 0;)
            fp[i] = fr.pop_f64();
          for (int i = isa::intrinsic_int_args(id); i-- > 0;)
            ints[i] = fr.pop_i32();
          core.charge_class(InstrClass::kAluComplex, isa::intrinsic_cost(id));
          if (isa::intrinsic_returns_double(id))
            fr.push_f64(isa::apply_intrinsic_d(id, fp, ints));
          else
            fr.push_i32(isa::apply_intrinsic_i(id, ints));
          break;
        }

        case Op::kReturn:
          core.charge_class(InstrClass::kBranch);
          --core.call_depth;
          return Value::make_void();
        case Op::kIreturn: {
          const std::int32_t v = fr.pop_i32();
          core.charge_class(InstrClass::kBranch);
          --core.call_depth;
          return Value::make_int(v);
        }
        case Op::kDreturn: {
          const double v = fr.pop_f64();
          core.charge_class(InstrClass::kBranch);
          --core.call_depth;
          return Value::make_double(v);
        }
        case Op::kAreturn: {
          const mem::Addr v = fr.pop_ref();
          core.charge_class(InstrClass::kBranch);
          --core.call_depth;
          return Value::make_ref(v);
        }

        case Op::kGetField:
        case Op::kPutField:
        case Op::kGetStatic:
        case Op::kPutStatic: {
          const RtField& f = jvm_.field(in.rid);
          const bool is_put = in.op == Op::kPutField || in.op == Op::kPutStatic;
          const bool is_instance =
              in.op == Op::kGetField || in.op == Op::kPutField;
          Value v;
          if (is_put) {
            if (f.kind == TypeKind::kDouble)
              v = Value::make_double(fr.pop_f64());
            else if (f.kind == TypeKind::kRef)
              v = Value::make_ref(fr.pop_ref());
            else
              v = Value::make_int(fr.pop_i32());
          }
          mem::Addr base = mem::kNullAddr;
          if (is_instance) {
            base = fr.pop_ref();
            if (base == mem::kNullAddr)
              throw VmError("null pointer dereference");
            core.charge_class(InstrClass::kBranch);  // null check
          }
          const mem::Addr a = jvm_.field_addr(base, f);
          core.charge_class(InstrClass::kAluSimple);  // address arithmetic
          if (is_put) {
            core.stall(core.hier->store(a));
            core.charge_class(InstrClass::kStore);
            if (f.kind == TypeKind::kDouble)
              core.arena->store_f64(a, v.d);
            else if (f.kind == TypeKind::kRef)
              core.arena->store_u32(a, v.ref);
            else if (f.kind == TypeKind::kByte)
              core.arena->store_u8(a, static_cast<std::uint8_t>(v.i));
            else
              core.arena->store_i32(a, v.i);
          } else {
            core.stall(core.hier->load(a));
            core.charge_class(InstrClass::kLoad);
            if (f.kind == TypeKind::kDouble)
              fr.push_f64(core.arena->load_f64(a));
            else if (f.kind == TypeKind::kRef)
              fr.push_ref(core.arena->load_u32(a));
            else if (f.kind == TypeKind::kByte)
              fr.push_i32(core.arena->load_u8(a));
            else
              fr.push_i32(core.arena->load_i32(a));
          }
          break;
        }

        case Op::kNew: {
          const std::int32_t cid = in.rid;
          core.charge_class(InstrClass::kBranch);  // runtime call
          fr.push_ref(jvm_.new_object(cid, /*charge=*/true));
          break;
        }
        case Op::kNewArray: {
          const std::int32_t len = fr.pop_i32();
          core.charge_class(InstrClass::kBranch);  // runtime call
          fr.push_ref(
              jvm_.new_array(static_cast<TypeKind>(in.a), len, /*charge=*/true));
          break;
        }

        case Op::kIaload: case Op::kDaload: case Op::kBaload: case Op::kAaload: {
          const std::int32_t idx = fr.pop_i32();
          const mem::Addr ref = fr.pop_ref();
          // Null + bounds checks: length load and two compare-branches.
          if (ref == mem::kNullAddr) throw VmError("null pointer dereference");
          core.stall(core.hier->load(ref + 4));
          core.charge_class(InstrClass::kLoad);
          core.charge_class(InstrClass::kBranch, 2);
          const mem::Addr a = jvm_.elem_addr(ref, idx);
          core.charge_class(InstrClass::kAluSimple, 2);  // address arithmetic
          core.stall(core.hier->load(a));
          core.charge_class(InstrClass::kLoad);
          switch (in.op) {
            case Op::kIaload: fr.push_i32(core.arena->load_i32(a)); break;
            case Op::kDaload: fr.push_f64(core.arena->load_f64(a)); break;
            case Op::kBaload: fr.push_i32(core.arena->load_u8(a)); break;
            default: fr.push_ref(core.arena->load_u32(a)); break;
          }
          break;
        }
        case Op::kIastore: case Op::kDastore: case Op::kBastore:
        case Op::kAastore: {
          Value v;
          if (in.op == Op::kDastore)
            v = Value::make_double(fr.pop_f64());
          else if (in.op == Op::kAastore)
            v = Value::make_ref(fr.pop_ref());
          else
            v = Value::make_int(fr.pop_i32());
          const std::int32_t idx = fr.pop_i32();
          const mem::Addr ref = fr.pop_ref();
          if (ref == mem::kNullAddr) throw VmError("null pointer dereference");
          core.stall(core.hier->load(ref + 4));
          core.charge_class(InstrClass::kLoad);
          core.charge_class(InstrClass::kBranch, 2);
          const mem::Addr a = jvm_.elem_addr(ref, idx);
          core.charge_class(InstrClass::kAluSimple, 2);
          core.stall(core.hier->store(a));
          core.charge_class(InstrClass::kStore);
          switch (in.op) {
            case Op::kIastore: core.arena->store_i32(a, v.i); break;
            case Op::kDastore: core.arena->store_f64(a, v.d); break;
            case Op::kBastore:
              core.arena->store_u8(a, static_cast<std::uint8_t>(v.i));
              break;
            default: core.arena->store_u32(a, v.ref); break;
          }
          break;
        }
        case Op::kArrayLength: {
          const mem::Addr ref = fr.pop_ref();
          if (ref == mem::kNullAddr) throw VmError("null pointer dereference");
          core.stall(core.hier->load(ref + 4));
          core.charge_class(InstrClass::kLoad);
          fr.push_i32(jvm_.array_length(ref));
          break;
        }

        case Op::kCount:
          throw VmError("interpreter: invalid opcode");
      }

      pc = next;
    }
  } catch (...) {
    --core.call_depth;
    throw;
  }
}

}  // namespace javelin::jvm
