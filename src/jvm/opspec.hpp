// The opcode specification table: the single source of truth for guest
// bytecode semantics metadata.
//
// Every consumer of per-opcode knowledge derives from the X-macro list in
// this header rather than maintaining its own switch:
//  * jvm/opcodes.cpp     — mnemonics, is_branch(), ends_block();
//  * jvm/interp.cpp      — the generated dispatch loops (portable switch,
//                          threaded computed-goto, and the L0.5 baseline
//                          stream executor) are all stamped out over this
//                          list, so a missing handler is a compile error;
//  * jvm/baseline.cpp    — the L0.5 translator's fusion legality checks;
//  * analysis/cost.cpp   — the static cost estimator charges each opcode
//                          from the StaticOpCost column;
//  * analysis/lint.cpp   — opcode-class predicates (local load/store, int
//                          and double binops, pure producers).
// tests/opspec_test.cpp asserts the table covers every jvm::Op exactly once
// and that all derived views agree, so semantics can never drift between
// the interpreter, the lint pass and the static cost model.
//
// Columns of JAVELIN_OPCODE_LIST(X):
//   X(Name, mnemonic, Category, OperandKind, flags, ld, st, br, as, ac, ctx)
//     Name        jvm::Op::k##Name
//     mnemonic    disassembly name
//     Category    semantic family (OpCategory)
//     OperandKind meaning of Insn::a (OperandKind)
//     flags       bitwise-or of OpFlags
//     ld/st/br/as/ac
//                 StaticOpCost: loads/stores/branches/simple-ALU/complex-ALU
//                 the static estimator charges for one execution of the op's
//                 *semantics* (the fetch/decode/dispatch triple is charged
//                 separately; see kDispatchCost)
//     ctx         1 if the semantic cost is context-dependent (invokes:
//                 callee signature and summary; intrinsics: per-id cost) and
//                 the ld..ac columns cover only the context-free part
#pragma once

#include <cstdint>

#include "energy/energy.hpp"
#include "jvm/opcodes.hpp"

namespace javelin::jvm::opspec {

/// Semantic family of an opcode (drives lint predicates and fusion rules).
enum class OpCategory : std::uint8_t {
  kConst,        ///< push a constant (iconst/dconst/aconst_null)
  kLocalLoad,    ///< push a local slot
  kLocalStore,   ///< pop into a local slot
  kStack,        ///< pure operand-stack shuffle (pop/dup)
  kIntBinop,     ///< pop 2 ints, push int
  kIntUnary,     ///< pop int, push int
  kDblBinop,     ///< pop 2 doubles, push double
  kDblUnary,     ///< pop double, push double
  kConv,         ///< numeric conversion
  kCmp,          ///< pop 2 doubles, push -1/0/+1
  kCondBranch,   ///< conditional branch
  kGoto,         ///< unconditional branch
  kInvoke,       ///< static/virtual invocation
  kIntrinsic,    ///< math intrinsic invocation
  kReturn,       ///< method return
  kField,        ///< get/put field or static
  kNew,          ///< object allocation
  kNewArray,     ///< array allocation
  kArrayLoad,    ///< array element load
  kArrayStore,   ///< array element store
  kArrayLength,  ///< array length query
};

/// What Insn::a means for an opcode.
enum class OperandKind : std::uint8_t {
  kNone,          ///< unused
  kImm,           ///< immediate int value
  kPoolDouble,    ///< constant-pool double index
  kSlot,          ///< local variable slot
  kBranchTarget,  ///< instruction index
  kPoolMethod,    ///< constant-pool method index
  kIntrinsicId,   ///< isa::Intrinsic id
  kPoolField,     ///< constant-pool field index
  kPoolClass,     ///< constant-pool class index
  kElemKind,      ///< TypeKind of array elements
};

enum OpFlags : std::uint8_t {
  kFlagNone = 0,
  kFlagBranch = 1 << 0,     ///< `a` is a branch target (jvm::is_branch)
  kFlagEndsBlock = 1 << 1,  ///< unconditional transfer (jvm::ends_block)
};

/// Instruction-class counts the static cost estimator charges for one
/// execution of the op's semantics (context-free part only when `ctx`).
struct StaticOpCost {
  std::uint8_t loads = 0;
  std::uint8_t stores = 0;
  std::uint8_t branches = 0;
  std::uint8_t alu_simple = 0;
  std::uint8_t alu_complex = 0;
  bool context_dependent = false;
};

struct OpSpec {
  Op op = Op::kCount;
  const char* mnemonic = "?";
  OpCategory category = OpCategory::kStack;
  OperandKind operand = OperandKind::kNone;
  std::uint8_t flags = kFlagNone;
  StaticOpCost cost;
};

// clang-format off
#define JAVELIN_OPCODE_LIST(X)                                                  \
  X(Iconst,          "iconst",          kConst,       kImm,          kFlagNone,                    0, 1, 0, 1, 0, 0) \
  X(Dconst,          "dconst",          kConst,       kPoolDouble,   kFlagNone,                    1, 1, 0, 0, 0, 0) \
  X(AconstNull,      "aconst_null",     kConst,       kNone,         kFlagNone,                    0, 1, 0, 1, 0, 0) \
  X(Iload,           "iload",           kLocalLoad,   kSlot,         kFlagNone,                    1, 1, 0, 0, 0, 0) \
  X(Istore,          "istore",          kLocalStore,  kSlot,         kFlagNone,                    1, 1, 0, 0, 0, 0) \
  X(Dload,           "dload",           kLocalLoad,   kSlot,         kFlagNone,                    1, 1, 0, 0, 0, 0) \
  X(Dstore,          "dstore",          kLocalStore,  kSlot,         kFlagNone,                    1, 1, 0, 0, 0, 0) \
  X(Aload,           "aload",           kLocalLoad,   kSlot,         kFlagNone,                    1, 1, 0, 0, 0, 0) \
  X(Astore,          "astore",          kLocalStore,  kSlot,         kFlagNone,                    1, 1, 0, 0, 0, 0) \
  X(Pop,             "pop",             kStack,       kNone,         kFlagNone,                    1, 0, 0, 0, 0, 0) \
  X(Dup,             "dup",             kStack,       kNone,         kFlagNone,                    1, 2, 0, 0, 0, 0) \
  X(Iadd,            "iadd",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 1, 0, 0) \
  X(Isub,            "isub",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 1, 0, 0) \
  X(Imul,            "imul",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 0, 1, 0) \
  X(Idiv,            "idiv",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 0, 1, 0) \
  X(Irem,            "irem",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 0, 1, 0) \
  X(Ineg,            "ineg",            kIntUnary,    kNone,         kFlagNone,                    1, 1, 0, 1, 0, 0) \
  X(Ishl,            "ishl",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 1, 0, 0) \
  X(Ishr,            "ishr",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 1, 0, 0) \
  X(Iushr,           "iushr",           kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 1, 0, 0) \
  X(Iand,            "iand",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 1, 0, 0) \
  X(Ior,             "ior",             kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 1, 0, 0) \
  X(Ixor,            "ixor",            kIntBinop,    kNone,         kFlagNone,                    2, 1, 0, 1, 0, 0) \
  X(Dadd,            "dadd",            kDblBinop,    kNone,         kFlagNone,                    2, 1, 0, 0, 1, 0) \
  X(Dsub,            "dsub",            kDblBinop,    kNone,         kFlagNone,                    2, 1, 0, 0, 1, 0) \
  X(Dmul,            "dmul",            kDblBinop,    kNone,         kFlagNone,                    2, 1, 0, 0, 1, 0) \
  X(Ddiv,            "ddiv",            kDblBinop,    kNone,         kFlagNone,                    2, 1, 0, 0, 1, 0) \
  X(Dneg,            "dneg",            kDblUnary,    kNone,         kFlagNone,                    1, 1, 0, 0, 1, 0) \
  X(I2d,             "i2d",             kConv,        kNone,         kFlagNone,                    1, 1, 0, 0, 1, 0) \
  X(D2i,             "d2i",             kConv,        kNone,         kFlagNone,                    1, 1, 0, 0, 1, 0) \
  X(Dcmp,            "dcmp",            kCmp,         kNone,         kFlagNone,                    2, 1, 0, 0, 1, 0) \
  X(Ifeq,            "ifeq",            kCondBranch,  kBranchTarget, kFlagBranch,                  1, 0, 1, 0, 0, 0) \
  X(Ifne,            "ifne",            kCondBranch,  kBranchTarget, kFlagBranch,                  1, 0, 1, 0, 0, 0) \
  X(Iflt,            "iflt",            kCondBranch,  kBranchTarget, kFlagBranch,                  1, 0, 1, 0, 0, 0) \
  X(Ifle,            "ifle",            kCondBranch,  kBranchTarget, kFlagBranch,                  1, 0, 1, 0, 0, 0) \
  X(Ifgt,            "ifgt",            kCondBranch,  kBranchTarget, kFlagBranch,                  1, 0, 1, 0, 0, 0) \
  X(Ifge,            "ifge",            kCondBranch,  kBranchTarget, kFlagBranch,                  1, 0, 1, 0, 0, 0) \
  X(IfIcmpEq,        "if_icmpeq",       kCondBranch,  kBranchTarget, kFlagBranch,                  2, 0, 1, 0, 0, 0) \
  X(IfIcmpNe,        "if_icmpne",       kCondBranch,  kBranchTarget, kFlagBranch,                  2, 0, 1, 0, 0, 0) \
  X(IfIcmpLt,        "if_icmplt",       kCondBranch,  kBranchTarget, kFlagBranch,                  2, 0, 1, 0, 0, 0) \
  X(IfIcmpLe,        "if_icmple",       kCondBranch,  kBranchTarget, kFlagBranch,                  2, 0, 1, 0, 0, 0) \
  X(IfIcmpGt,        "if_icmpgt",       kCondBranch,  kBranchTarget, kFlagBranch,                  2, 0, 1, 0, 0, 0) \
  X(IfIcmpGe,        "if_icmpge",       kCondBranch,  kBranchTarget, kFlagBranch,                  2, 0, 1, 0, 0, 0) \
  X(IfNull,          "ifnull",          kCondBranch,  kBranchTarget, kFlagBranch,                  1, 0, 1, 0, 0, 0) \
  X(IfNonNull,       "ifnonnull",       kCondBranch,  kBranchTarget, kFlagBranch,                  1, 0, 1, 0, 0, 0) \
  X(Goto,            "goto",            kGoto,        kBranchTarget, kFlagBranch | kFlagEndsBlock, 0, 0, 1, 0, 0, 0) \
  X(InvokeStatic,    "invokestatic",    kInvoke,      kPoolMethod,   kFlagNone,                    0, 0, 0, 0, 0, 1) \
  X(InvokeVirtual,   "invokevirtual",   kInvoke,      kPoolMethod,   kFlagNone,                    0, 0, 0, 0, 0, 1) \
  X(InvokeIntrinsic, "invokeintrinsic", kIntrinsic,   kIntrinsicId,  kFlagNone,                    0, 0, 0, 0, 0, 1) \
  X(Return,          "return",          kReturn,      kNone,         kFlagEndsBlock,               0, 0, 1, 0, 0, 0) \
  X(Ireturn,         "ireturn",         kReturn,      kNone,         kFlagEndsBlock,               1, 0, 1, 0, 0, 0) \
  X(Dreturn,         "dreturn",         kReturn,      kNone,         kFlagEndsBlock,               1, 0, 1, 0, 0, 0) \
  X(Areturn,         "areturn",         kReturn,      kNone,         kFlagEndsBlock,               1, 0, 1, 0, 0, 0) \
  X(GetField,        "getfield",        kField,       kPoolField,    kFlagNone,                    2, 1, 1, 1, 0, 0) \
  X(PutField,        "putfield",        kField,       kPoolField,    kFlagNone,                    2, 1, 1, 1, 0, 0) \
  X(GetStatic,       "getstatic",       kField,       kPoolField,    kFlagNone,                    1, 1, 0, 1, 0, 0) \
  X(PutStatic,       "putstatic",       kField,       kPoolField,    kFlagNone,                    1, 1, 0, 1, 0, 0) \
  X(New,             "new",             kNew,         kPoolClass,    kFlagNone,                    0, 1, 1, 0, 0, 0) \
  X(NewArray,        "newarray",        kNewArray,    kElemKind,     kFlagNone,                    1, 1, 1, 0, 0, 0) \
  X(Iaload,          "iaload",          kArrayLoad,   kNone,         kFlagNone,                    4, 1, 2, 2, 0, 0) \
  X(Iastore,         "iastore",         kArrayStore,  kNone,         kFlagNone,                    4, 1, 2, 2, 0, 0) \
  X(Daload,          "daload",          kArrayLoad,   kNone,         kFlagNone,                    4, 1, 2, 2, 0, 0) \
  X(Dastore,         "dastore",         kArrayStore,  kNone,         kFlagNone,                    4, 1, 2, 2, 0, 0) \
  X(Baload,          "baload",          kArrayLoad,   kNone,         kFlagNone,                    4, 1, 2, 2, 0, 0) \
  X(Bastore,         "bastore",         kArrayStore,  kNone,         kFlagNone,                    4, 1, 2, 2, 0, 0) \
  X(Aaload,          "aaload",          kArrayLoad,   kNone,         kFlagNone,                    4, 1, 2, 2, 0, 0) \
  X(Aastore,         "aastore",         kArrayStore,  kNone,         kFlagNone,                    4, 1, 2, 2, 0, 0) \
  X(ArrayLength,     "arraylength",     kArrayLength, kNone,         kFlagNone,                    2, 1, 0, 0, 0, 0)
// clang-format on

/// The table, indexed by static_cast<std::size_t>(Op). Built entirely at
/// compile time from JAVELIN_OPCODE_LIST.
inline constexpr OpSpec kTable[kNumOps] = {
#define JAVELIN_OPSPEC_ROW(Name, mnem, cat, opnd, flg, ld, st, br, as, ac, ctx) \
  OpSpec{Op::k##Name,         mnem,                                             \
         OpCategory::cat,     OperandKind::opnd,                                \
         std::uint8_t{flg},                                                     \
         StaticOpCost{ld, st, br, as, ac, ctx != 0}},
    JAVELIN_OPCODE_LIST(JAVELIN_OPSPEC_ROW)
#undef JAVELIN_OPSPEC_ROW
};

// Coverage: one row per enum member, in enum order. A new Op without a table
// row (or a row out of order) fails to compile here, not at runtime.
#define JAVELIN_OPSPEC_COUNT(Name, mnem, cat, opnd, flg, ld, st, br, as, ac, \
                             ctx)                                            \
  +1
static_assert(0 JAVELIN_OPCODE_LIST(JAVELIN_OPSPEC_COUNT) == kNumOps,
              "opspec: JAVELIN_OPCODE_LIST must cover every jvm::Op exactly "
              "once");
#undef JAVELIN_OPSPEC_COUNT

constexpr const OpSpec& spec(Op op) {
  return kTable[static_cast<std::size_t>(op)];
}

/// Fetch/decode/dispatch cost charged for *every* bytecode before its
/// semantic cost: opcode fetch (a load through the D-cache at the installed
/// bytecode address), decode ALU op, dispatch branch. The interpreter's
/// dispatch loops and the static cost estimator both charge exactly this.
struct DispatchCost {
  std::uint8_t loads = 1;
  std::uint8_t alu_simple = 1;
  std::uint8_t branches = 1;
};
inline constexpr DispatchCost kDispatchCost{};

// ---- derived predicates (shared by lint and the baseline translator) -------

constexpr bool is_local_load(Op op) {
  return spec(op).category == OpCategory::kLocalLoad;
}
constexpr bool is_local_store(Op op) {
  return spec(op).category == OpCategory::kLocalStore;
}
constexpr bool is_int_binop(Op op) {
  return spec(op).category == OpCategory::kIntBinop;
}
constexpr bool is_double_binop(Op op) {
  return spec(op).category == OpCategory::kDblBinop;
}
constexpr bool is_shift(Op op) {
  return op == Op::kIshl || op == Op::kIshr || op == Op::kIushr;
}
/// Pushes exactly one value computable without observable side effects
/// (constants, local loads, dup) — the lint pass's "pure producer".
constexpr bool is_pure_producer(Op op) {
  const OpCategory c = spec(op).category;
  return c == OpCategory::kConst || c == OpCategory::kLocalLoad ||
         op == Op::kDup;
}

}  // namespace javelin::jvm::opspec
