#include "jvm/baseline.hpp"

#include <array>

#include "jvm/opspec.hpp"

namespace javelin::jvm {

namespace {

bool is_il_load(Op op) { return op == Op::kIload || op == Op::kAload; }

/// Admission lookup table over (a, b) op pairs, stamped from the committed
/// corpus ranking. Built once; lookups are a single byte load.
const std::uint8_t* admission_lut() {
  static const auto lut = [] {
    std::array<std::uint8_t, kNumOps * kNumOps> t{};
#define JAVELIN_JVM_FUSION(rank, OpA, OpB, count)                   \
    t[static_cast<std::size_t>(Op::k##OpA) * kNumOps +              \
      static_cast<std::size_t>(Op::k##OpB)] = 1;
#include "jvm/fusion_table.inc"
#undef JAVELIN_JVM_FUSION
    return t;
  }();
  return lut.data();
}

}  // namespace

bool fusable_pair(const DecodedInsn& a, const DecodedInsn& b,
                  std::uint16_t& sop) {
  if (is_il_load(a.op)) {
    if (is_il_load(b.op)) { sop = kSopFuseLL; return true; }
    if (b.op == Op::kIconst) { sop = kSopFuseLC; return true; }
    if (b.op == Op::kIadd || b.op == Op::kImul) { sop = kSopFuseLA; return true; }
    return false;
  }
  if (a.op == Op::kDload) {
    if (b.op == Op::kDload) { sop = kSopFuseDD; return true; }
    if (b.op == Op::kDadd || b.op == Op::kDmul) { sop = kSopFuseDA; return true; }
    return false;
  }
  if (a.op == Op::kIconst) {
    if (b.op == Op::kIstore || b.op == Op::kAstore) { sop = kSopFuseCS; return true; }
    return false;
  }
  return false;
}

bool fusion_admitted(Op a, Op b) {
  return admission_lut()[static_cast<std::size_t>(a) * kNumOps +
                         static_cast<std::size_t>(b)] != 0;
}

std::vector<BaselineInsn> build_baseline_stream(
    const std::vector<DecodedInsn>& decoded) {
  const std::size_t n = decoded.size();

  // Pass 1: mark branch targets. Fusion must not swallow a pc some branch
  // jumps to — the fused pair has a single stream entry, and landing in the
  // middle of it would skip the first constituent.
  std::vector<std::uint8_t> is_target(n, 0);
  for (const DecodedInsn& in : decoded) {
    if ((opspec::spec(in.op).flags & opspec::kFlagBranch) == 0) continue;
    const auto t = static_cast<std::size_t>(in.a);
    if (static_cast<std::int64_t>(in.a) >= 0 && t < n) is_target[t] = 1;
  }

  // Pass 2: emit entries, fusing eligible adjacent pairs.
  std::vector<BaselineInsn> out;
  out.reserve(n);
  std::vector<std::uint32_t> stream_of(n, 0);
  for (std::size_t pc = 0; pc < n;) {
    stream_of[pc] = static_cast<std::uint32_t>(out.size());
    BaselineInsn bi;
    bi.di = decoded[pc];
    bi.pc = static_cast<std::uint32_t>(pc);
    std::uint16_t sop = 0;
    if (pc + 1 < n && !is_target[pc + 1] &&
        fusable_pair(decoded[pc], decoded[pc + 1], sop) &&
        fusion_admitted(decoded[pc].op, decoded[pc + 1].op)) {
      bi.sop = sop;
      bi.di2 = decoded[pc + 1];
      // The second constituent is never a branch target, but record its
      // stream index anyway so the table is total (harmless: nothing maps
      // through it).
      stream_of[pc + 1] = static_cast<std::uint32_t>(out.size());
      pc += 2;
    } else {
      bi.sop = static_cast<std::uint16_t>(bi.di.op);
      pc += 1;
    }
    out.push_back(bi);
  }

  // Pass 3: remap branch operands to stream indices. Out-of-range targets
  // (including "falls off the end") map to out.size() so the executor's
  // bounds check throws the interpreter's exact "pc out of range" error.
  for (BaselineInsn& bi : out) {
    if ((opspec::spec(bi.di.op).flags & opspec::kFlagBranch) == 0) continue;
    const auto t = static_cast<std::size_t>(bi.di.a);
    if (static_cast<std::int64_t>(bi.di.a) >= 0 && t < n)
      bi.di.a = static_cast<std::int32_t>(stream_of[t]);
    else
      bi.di.a = static_cast<std::int32_t>(out.size());
  }
  return out;
}

}  // namespace javelin::jvm
