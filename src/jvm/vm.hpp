// The linked virtual machine: runtime class/method/field metadata, the guest
// heap, statics, and virtual dispatch.
//
// One Jvm instance exists per simulated device (the mobile client and the
// server each run their own). Class files are loaded, then link() resolves
// symbolic references, runs the verifier over the whole class set, lays out
// object/static storage in the simulated arena, and "installs" bytecode at
// simulated addresses (the interpreter's instruction fetches are charged at
// those addresses).
//
// There is no garbage collector: benchmark executions are bracketed by heap
// watermarks (Arena::heap_mark / heap_release), mirroring how the paper's
// experiments restart the application per execution.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/executor.hpp"
#include "jvm/classfile.hpp"
#include "jvm/verifier.hpp"

namespace javelin::jvm {

/// One pre-decoded interpreter instruction: the original {op, a} record plus
/// operands resolved at link time, so the dispatch loop performs no
/// constant-pool indirection per iteration. Host-side only — the simulated
/// fetch/decode/dispatch energy and cycles are charged exactly as for raw
/// bytecode.
struct DecodedInsn {
  Op op = Op::kReturn;
  std::int32_t a = 0;    ///< Immediate / slot / branch target (Insn::a).
  std::int32_t rid = -1; ///< Resolved runtime method/field/class id.
  double d = 0.0;        ///< Resolved constant for kDconst.
};

/// Stream opcodes for the L0.5 baseline tier. Values below kNumOps are plain
/// jvm::Op; the extra codes are fused superinstruction pairs recognised by
/// the baseline translator (jvm/baseline.cpp). Fusion never crosses a branch
/// target and only combines ops whose handlers cannot throw, so the fused
/// handlers replay both constituents' charge sequences verbatim.
enum : std::uint16_t {
  kSopFuseLL = kNumOps,  ///< {Iload|Aload} ; {Iload|Aload}
  kSopFuseDD,            ///< Dload ; Dload
  kSopFuseLC,            ///< {Iload|Aload} ; Iconst
  kSopFuseCS,            ///< Iconst ; {Istore|Astore}
  kSopFuseLA,            ///< {Iload|Aload} ; {Iadd|Imul}
  kSopFuseDA,            ///< Dload ; {Dadd|Dmul}
  kSopCount,
};

/// One L0.5 baseline-stream entry: a pre-resolved instruction (or fused
/// pair), the original bytecode index it came from (instruction fetches are
/// still charged at the original bytecode addresses), and the stream opcode.
/// Branch operands in `di.a` are remapped to *stream* indices by the
/// translator.
struct BaselineInsn {
  DecodedInsn di;       ///< First (or only) constituent, branch target remapped.
  DecodedInsn di2;      ///< Second constituent of a fused pair.
  std::uint32_t pc = 0; ///< Original bytecode index of `di`.
  std::uint16_t sop = 0;///< jvm::Op value, or a kSopFuse* superinstruction.
};

struct RtMethod {
  std::int32_t id = -1;
  std::int32_t class_id = -1;
  const MethodInfo* info = nullptr;
  mem::Addr bc_addr = mem::kNullAddr;  ///< Installed bytecode address.
  std::string qualified_name;          ///< "Class.method" for diagnostics.
  /// Decoded-bytecode cache, built once per method at link() (empty when the
  /// cache is disabled; the interpreter then decodes per iteration).
  std::vector<DecodedInsn> decoded;
  /// L0.5 baseline superinstruction stream (jvm/baseline.cpp), built at
  /// link() when both the decode cache and the baseline stream are enabled.
  std::vector<BaselineInsn> baseline;
};

struct RtField {
  std::int32_t id = -1;
  std::int32_t class_id = -1;
  TypeKind kind = TypeKind::kInt;
  bool is_static = false;
  std::uint32_t offset = 0;             ///< Byte offset within the object.
  mem::Addr static_addr = mem::kNullAddr;  ///< Address of a static field.
};

struct RtClass {
  std::int32_t id = -1;
  ClassFile cf;
  std::int32_t super_id = -1;
  std::uint32_t obj_size = 0;  ///< Bytes including header.
  std::vector<std::int32_t> method_ids;  ///< Parallel to cf.methods.
  std::vector<std::int32_t> field_ids;   ///< Parallel to cf.fields.
  // Resolved constant-pool tables (parallel to the pool vectors).
  std::vector<std::int32_t> pool_method_ids;
  std::vector<std::int32_t> pool_field_ids;
  std::vector<std::int32_t> pool_class_ids;
};

/// Object header: [class_id:u32][sentinel:u32]; fields follow at offset 8.
/// Array header: [elem kind:u32][length:i32]; elements follow at offset 8.
/// The sentinel word distinguishes objects from arrays (array lengths are
/// non-negative) for the serializer and debugging tools.
inline constexpr std::uint32_t kObjHeaderBytes = 8;
inline constexpr std::uint32_t kArrHeaderBytes = 8;
inline constexpr std::uint32_t kObjPadSentinel = 0xffffffffu;

class Jvm {
 public:
  explicit Jvm(isa::Core& core) : core_(core) {}

  Jvm(const Jvm&) = delete;
  Jvm& operator=(const Jvm&) = delete;

  /// Load a class file. Returns the class id. Call link() before executing.
  std::int32_t load(ClassFile cf);
  /// Resolve references, verify all classes, lay out statics, install code.
  void link();
  bool linked() const { return linked_; }

  /// Enable/disable the decoded-bytecode cache (must be set before link()).
  /// Disabling forces the interpreter onto the decode-per-iteration path;
  /// energy/cycle accounting is identical either way (tests assert this).
  void set_decode_cache(bool enabled);
  bool decode_cache_enabled() const { return decode_cache_; }

  /// Enable/disable building the L0.5 baseline superinstruction stream at
  /// link() (must be set before link()). The stream is only built when the
  /// decode cache is also enabled — with the cache off the interpreter is
  /// deliberately on the decode-per-iteration path and the stream would
  /// bypass it. Execution through the stream is bit-identical in simulated
  /// energy/cycles (tests/dispatch_differential_test.cpp asserts this).
  void set_baseline_stream(bool enabled);
  bool baseline_stream_enabled() const { return baseline_stream_; }

  // ---- lookup ------------------------------------------------------------
  std::int32_t find_class(const std::string& name) const;  ///< -1 if absent.
  std::int32_t find_method(const std::string& cls,
                           const std::string& method) const;
  const RtMethod& method(std::int32_t id) const { return methods_.at(id); }
  const RtField& field(std::int32_t id) const { return fields_.at(id); }
  const RtClass& cls(std::int32_t id) const { return classes_.at(id); }
  std::size_t num_methods() const { return methods_.size(); }
  std::size_t num_classes() const { return classes_.size(); }

  // ---- dispatch ------------------------------------------------------------
  /// Resolve a virtual call against the receiver's dynamic class.
  std::int32_t resolve_virtual(std::int32_t declared_method_id,
                               mem::Addr receiver) const;
  /// True if no loaded subclass overrides this method (virtual-inlining
  /// legality check used by the Local3 optimizer).
  bool is_monomorphic(std::int32_t method_id) const;

  // ---- heap ----------------------------------------------------------------
  // `charge` selects whether allocation cost (header writes + zeroing) is
  // billed to the core; host-side workload setup passes charge = false.
  mem::Addr new_object(std::int32_t class_id, bool charge = true);
  mem::Addr new_array(TypeKind elem, std::int32_t length, bool charge = true);

  std::int32_t array_length(mem::Addr ref) const;
  TypeKind array_elem_kind(mem::Addr ref) const;
  std::int32_t obj_class_id(mem::Addr ref) const;
  /// Address of element `idx`; bounds- and null-checked.
  mem::Addr elem_addr(mem::Addr ref, std::int32_t idx) const;
  /// Address of an instance field.
  mem::Addr field_addr(mem::Addr obj, const RtField& f) const;

  // Host-side (uncharged) accessors for tests, workload setup and goldens.
  std::vector<std::int32_t> read_i32_array(mem::Addr ref) const;
  std::vector<double> read_f64_array(mem::Addr ref) const;
  std::vector<std::uint8_t> read_u8_array(mem::Addr ref) const;
  void write_i32_array(mem::Addr ref, const std::vector<std::int32_t>& v);
  void write_f64_array(mem::Addr ref, const std::vector<double>& v);
  void write_u8_array(mem::Addr ref, const std::vector<std::uint8_t>& v);

  isa::Core& core() const { return core_; }
  mem::Arena& arena() const { return *core_.arena; }

  /// Resolve one instruction's pool-indirect operands against `rc` (the
  /// declaring class). Used for the link-time cache and by the interpreter's
  /// decode-per-iteration fallback path.
  static DecodedInsn decode_insn(const RtClass& rc, const Insn& in);

 private:
  void layout_class(RtClass& rc);

  isa::Core& core_;
  bool linked_ = false;
  bool decode_cache_ = true;
  bool baseline_stream_ = true;
  std::vector<RtClass> classes_;
  std::vector<RtMethod> methods_;
  std::vector<RtField> fields_;
  std::unordered_map<std::string, std::int32_t> class_by_name_;
  mutable std::unordered_map<std::uint64_t, std::int32_t> vdispatch_cache_;
};

}  // namespace javelin::jvm
