// Mixed-mode execution engine.
//
// Dispatches each method invocation to installed native code (if the method
// has been JIT-compiled) or to the interpreter, exactly as an adaptive JVM
// does. It is also the RuntimeBridge that native code escapes into for
// calls and allocation, so interpreted and compiled frames interleave freely
// on one simulated core.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "isa/nstream.hpp"
#include "jvm/interp.hpp"
#include "jvm/vm.hpp"

namespace javelin::jvm {

class ExecutionEngine final : public isa::RuntimeBridge, public Invoker {
 public:
  explicit ExecutionEngine(Jvm& jvm) : jvm_(jvm), interp_(jvm) {}

  // ---- compiled-code management -------------------------------------------
  /// Install a compiled body for a method at the given optimization level
  /// (1..3). The program is placed in simulated memory here.
  void install(std::int32_t method_id, isa::NativeProgram prog, int level);
  /// Compiled program, or nullptr if the method is interpreted.
  const isa::NativeProgram* compiled(std::int32_t method_id) const;
  /// 0 = interpreted, else 1..3.
  int compiled_level(std::int32_t method_id) const;
  /// Drop all installed code (the method reverts to interpretation).
  void clear_code();

  /// Mark a method as having its L0.5 baseline translation installed
  /// (the stream itself was built at link(); this flips the tier on for the
  /// method). Native code, when also installed, still takes precedence.
  void install_baseline(std::int32_t method_id);
  bool baseline_installed(std::int32_t method_id) const;

  /// When set, invoke() always interprets, ignoring installed code (used to
  /// measure the pure-Interpreter execution strategy).
  void set_force_interpret(bool f) { force_interpret_ = f; }
  bool force_interpret() const { return force_interpret_; }

  /// Host-side interpreter dispatch flavor (simulated costs unaffected;
  /// default from JAVELIN_DISPATCH).
  void set_dispatch_mode(DispatchMode m) { interp_.set_dispatch_mode(m); }
  DispatchMode dispatch_mode() const { return interp_.dispatch_mode(); }

  /// Host-side native dispatch flavor (simulated costs unaffected; default
  /// from JAVELIN_NEXEC, normally the fused superinstruction stream).
  void set_nexec_mode(isa::NExecMode m) { nexec_mode_ = m; }
  isa::NExecMode nexec_mode() const { return nexec_mode_; }

  /// The pre-decoded fused stream for a compiled method (null when the
  /// method is interpreted). Built at install(); tests inspect it.
  const isa::NativeStream* native_stream(std::int32_t method_id) const {
    if (static_cast<std::size_t>(method_id) >= code_.size()) return nullptr;
    return code_[method_id].prog ? &code_[method_id].stream : nullptr;
  }

  /// Profiling hooks (null = disabled, the default). While set, interpreted
  /// frames record dynamic bytecode pairs and native frames run under the
  /// counting switch flavor recording nisa pairs — the corpus profiler
  /// (sim/pairprof.cpp) feeds both into the committed fusion tables.
  void set_pair_counts(OpPairCounts* p) { interp_.set_pair_counts(p); }
  void set_nisa_pair_counts(isa::NPairCounts* p) { nisa_pairs_ = p; }

  /// Observability hook (null = disabled, the default). Counts native-code
  /// dispatches here and forwards to the interpreter's run counters.
  void set_trace(obs::TraceBuffer* t) {
    trace_ = t;
    interp_.set_trace(t);
  }

  // ---- invocation ------------------------------------------------------------
  Value invoke(std::int32_t method_id, std::span<const Value> args) override;
  /// Convenience lookup-and-invoke.
  Value call(const std::string& cls, const std::string& method,
             std::span<const Value> args);

  Jvm& jvm() { return jvm_; }

  // ---- RuntimeBridge (escapes from native code) -----------------------------
  void call_static(std::int32_t method_id, isa::NativeExecutor& caller) override;
  void call_virtual(std::int32_t declared_method_id,
                    isa::NativeExecutor& caller) override;
  mem::Addr new_array(std::int32_t elem_kind, std::int32_t length) override;
  mem::Addr new_object(std::int32_t class_id) override;

 private:
  struct CodeSlot {
    std::unique_ptr<isa::NativeProgram> prog;
    isa::NativeStream stream;  ///< pre-decoded fused view of *prog
    int level = 0;
    bool baseline = false;  ///< L0.5 baseline tier installed for the method.
  };

  Value invoke_native(const RtMethod& m, const CodeSlot& slot,
                      std::span<const Value> args);
  void marshal_call(std::int32_t target_id, isa::NativeExecutor& caller);

  Jvm& jvm_;
  Interpreter interp_;
  std::vector<CodeSlot> code_;
  bool force_interpret_ = false;
  obs::TraceBuffer* trace_ = nullptr;
  isa::NExecMode nexec_mode_ = isa::default_nexec_mode();
  isa::NPairCounts* nisa_pairs_ = nullptr;
};

}  // namespace javelin::jvm
