#include "jvm/engine.hpp"

namespace javelin::jvm {

using energy::InstrClass;

void ExecutionEngine::install(std::int32_t method_id, isa::NativeProgram prog,
                              int level) {
  if (level < 1 || level > static_cast<int>(kNumOptLevels))
    throw Error("engine: bad optimization level");
  if (code_.size() < jvm_.num_methods()) code_.resize(jvm_.num_methods());
  prog.method_id = method_id;
  if (!prog.installed()) prog.install(jvm_.arena());
  auto& slot = code_.at(method_id);
  slot.prog = std::make_unique<isa::NativeProgram>(std::move(prog));
  slot.level = level;
  // Pre-decode the fused superinstruction stream now that code/literal
  // addresses are final. Built unconditionally: installs are rare (one per
  // compilation) and the stream serves both the default fused mode and any
  // later mode switch.
  slot.stream = isa::build_native_stream(*slot.prog, jvm_.core().cfg->energy,
                                         jvm_.core().hier->icache());
}

const isa::NativeProgram* ExecutionEngine::compiled(
    std::int32_t method_id) const {
  if (static_cast<std::size_t>(method_id) >= code_.size()) return nullptr;
  return code_[method_id].prog.get();
}

int ExecutionEngine::compiled_level(std::int32_t method_id) const {
  if (static_cast<std::size_t>(method_id) >= code_.size()) return 0;
  return code_[method_id].level;
}

void ExecutionEngine::clear_code() { code_.clear(); }

void ExecutionEngine::install_baseline(std::int32_t method_id) {
  if (jvm_.method(method_id).baseline.empty())
    throw Error("engine: no baseline stream for method (decode cache or "
                "baseline stream disabled at link)");
  if (code_.size() < jvm_.num_methods()) code_.resize(jvm_.num_methods());
  code_.at(method_id).baseline = true;
}

bool ExecutionEngine::baseline_installed(std::int32_t method_id) const {
  if (static_cast<std::size_t>(method_id) >= code_.size()) return false;
  return code_[method_id].baseline;
}

Value ExecutionEngine::invoke(std::int32_t method_id,
                              std::span<const Value> args) {
  const RtMethod& m = jvm_.method(method_id);
  if (!force_interpret_) {
    if (compiled(method_id) != nullptr) {
      if (trace_) trace_->count(obs::Counter::kEngineNativeCalls);
      return invoke_native(m, code_[method_id], args);
    }
    if (static_cast<std::size_t>(method_id) < code_.size() &&
        code_[method_id].baseline) {
      if (trace_) trace_->count(obs::Counter::kEngineBaselineCalls);
      return interp_.run_baseline(m, args, *this);
    }
  }
  return interp_.run(m, args, *this);
}

Value ExecutionEngine::call(const std::string& cls, const std::string& method,
                            std::span<const Value> args) {
  const std::int32_t id = jvm_.find_method(cls, method);
  if (id < 0) throw Error("engine: no such method " + cls + "." + method);
  return invoke(id, args);
}

Value ExecutionEngine::invoke_native(const RtMethod& m, const CodeSlot& slot,
                                     std::span<const Value> args) {
  const isa::NativeProgram& prog = *slot.prog;
  isa::NativeExecutor ex(jvm_.core(), *this);
  // Argument registers: integer/ref args fill r1.. in order of appearance
  // among int-like args; doubles fill f1.. likewise.
  std::uint8_t next_int = isa::kFirstArgReg;
  std::uint8_t next_fp = isa::kFFirstArgReg;
  if (args.size() != m.info->num_args())
    throw VmError("engine: argument count mismatch for " + m.qualified_name);
  for (std::size_t i = 0; i < args.size(); ++i) {
    switch (m.info->arg_kind(i)) {
      case TypeKind::kDouble:
        ex.set_fp_reg(next_fp++, args[i].as_double());
        break;
      case TypeKind::kRef:
        ex.set_int_reg(next_int++, args[i].as_ref());
        break;
      default:
        ex.set_int_reg(next_int++, args[i].as_int());
        break;
    }
  }
  // Host dispatch flavor; all paths produce bit-identical simulated state
  // (tests/dispatch_differential_test.cpp). Profiling overrides the mode:
  // only the switch flavor carries the pair-counting hook.
  if (nisa_pairs_ != nullptr) {
    ex.run_switch(prog, nisa_pairs_);
  } else {
    switch (nexec_mode_) {
      case isa::NExecMode::kSwitch:
        ex.run_switch(prog);
        break;
      case isa::NExecMode::kGoto:
        ex.run(prog);
        break;
      case isa::NExecMode::kFused:
        ex.run_stream(prog, slot.stream);
        break;
    }
  }
  switch (m.info->sig.ret) {
    case TypeKind::kVoid:
      return Value::make_void();
    case TypeKind::kDouble:
      return Value::make_double(ex.fp_reg(isa::kFRetReg));
    case TypeKind::kRef:
      return Value::make_ref(
          static_cast<mem::Addr>(ex.int_reg(isa::kRetReg)));
    default:
      return Value::make_int(
          static_cast<std::int32_t>(ex.int_reg(isa::kRetReg)));
  }
}

void ExecutionEngine::marshal_call(std::int32_t target_id,
                                   isa::NativeExecutor& caller) {
  const RtMethod& callee = jvm_.method(target_id);
  const std::size_t nargs = callee.info->num_args();
  std::vector<Value> args(nargs);
  std::uint8_t next_int = isa::kFirstArgReg;
  std::uint8_t next_fp = isa::kFFirstArgReg;
  for (std::size_t i = 0; i < nargs; ++i) {
    switch (callee.info->arg_kind(i)) {
      case TypeKind::kDouble:
        args[i] = Value::make_double(caller.fp_reg(next_fp++));
        break;
      case TypeKind::kRef:
        args[i] = Value::make_ref(
            static_cast<mem::Addr>(caller.int_reg(next_int++)));
        break;
      default:
        args[i] = Value::make_int(
            static_cast<std::int32_t>(caller.int_reg(next_int++)));
        break;
    }
  }
  const Value result = invoke(target_id, args);
  switch (callee.info->sig.ret) {
    case TypeKind::kVoid:
      break;
    case TypeKind::kDouble:
      caller.set_fp_reg(isa::kFRetReg, result.as_double());
      break;
    case TypeKind::kRef:
      caller.set_int_reg(isa::kRetReg, result.as_ref());
      break;
    default:
      caller.set_int_reg(isa::kRetReg, result.as_int());
      break;
  }
}

void ExecutionEngine::call_static(std::int32_t method_id,
                                  isa::NativeExecutor& caller) {
  marshal_call(method_id, caller);
}

void ExecutionEngine::call_virtual(std::int32_t declared_method_id,
                                   isa::NativeExecutor& caller) {
  const auto receiver = static_cast<mem::Addr>(caller.int_reg(isa::kRetReg));
  if (receiver == mem::kNullAddr) throw VmError("null pointer dereference");
  // Dispatch cost: receiver-header load + table lookup.
  isa::Core& core = jvm_.core();
  core.stall(core.hier->load(receiver));
  core.charge_class(InstrClass::kLoad, 2);
  const std::int32_t target = jvm_.resolve_virtual(declared_method_id, receiver);
  marshal_call(target, caller);
}

mem::Addr ExecutionEngine::new_array(std::int32_t elem_kind,
                                     std::int32_t length) {
  return jvm_.new_array(static_cast<TypeKind>(elem_kind), length,
                        /*charge=*/true);
}

mem::Addr ExecutionEngine::new_object(std::int32_t class_id) {
  return jvm_.new_object(class_id, /*charge=*/true);
}

}  // namespace javelin::jvm
