// The guest bytecode instruction set.
//
// A stack-machine ISA faithful to the subset of JVM bytecode the benchmark
// suite needs: int/double arithmetic, locals, arrays of byte/int/double/ref,
// object fields, statics, comparisons/branches, and static/virtual/intrinsic
// invocation. Instructions are pre-decoded to a fixed {op, a, b} form; branch
// targets are instruction indices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace javelin::jvm {

enum class Op : std::uint8_t {
  // Constants.
  kIconst,      ///< push int; a = immediate
  kDconst,      ///< push double; a = constant-pool index
  kAconstNull,  ///< push null reference

  // Locals. a = slot index.
  kIload, kIstore, kDload, kDstore, kAload, kAstore,

  // Operand stack.
  kPop, kDup,

  // Integer arithmetic/logical.
  kIadd, kIsub, kImul, kIdiv, kIrem, kIneg,
  kIshl, kIshr, kIushr, kIand, kIor, kIxor,

  // Double arithmetic.
  kDadd, kDsub, kDmul, kDdiv, kDneg,

  // Conversions and comparison.
  kI2d, kD2i,
  kDcmp,  ///< push -1/0/+1

  // Branches. a = target instruction index.
  kIfeq, kIfne, kIflt, kIfle, kIfgt, kIfge,          ///< int vs 0
  kIfIcmpEq, kIfIcmpNe, kIfIcmpLt, kIfIcmpLe, kIfIcmpGt, kIfIcmpGe,
  kIfNull, kIfNonNull,
  kGoto,

  // Invocation. a = constant-pool method index (or intrinsic id).
  kInvokeStatic,
  kInvokeVirtual,
  kInvokeIntrinsic,  ///< a = isa::Intrinsic id
  kReturn, kIreturn, kDreturn, kAreturn,

  // Fields. a = constant-pool field index.
  kGetField, kPutField, kGetStatic, kPutStatic,

  // Objects and arrays.
  kNew,       ///< a = constant-pool class index
  kNewArray,  ///< a = TypeKind of elements
  kIaload, kIastore, kDaload, kDastore,
  kBaload, kBastore, kAaload, kAastore,
  kArrayLength,

  kCount
};

constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kCount);

const char* op_name(Op op);

/// Pre-decoded instruction. Operand meanings are per-op (see Op comments).
struct Insn {
  Op op = Op::kReturn;
  std::int32_t a = 0;
  std::int32_t b = 0;

  bool operator==(const Insn&) const = default;
};

/// True for ops whose `a` operand is a branch target.
bool is_branch(Op op);
/// True for unconditional control transfer (goto/returns).
bool ends_block(Op op);

std::string disassemble(const std::vector<Insn>& code);

}  // namespace javelin::jvm
