#include "jvm/vm.hpp"

#include <algorithm>

#include "jvm/baseline.hpp"

namespace javelin::jvm {

std::int32_t Jvm::load(ClassFile cf) {
  if (linked_) throw Error("jvm: cannot load classes after link()");
  if (class_by_name_.count(cf.name))
    throw Error("jvm: duplicate class " + cf.name);
  const auto id = static_cast<std::int32_t>(classes_.size());
  classes_.push_back(RtClass{});
  RtClass& rc = classes_.back();
  rc.id = id;
  rc.cf = std::move(cf);
  class_by_name_[rc.cf.name] = id;
  return id;
}

void Jvm::layout_class(RtClass& rc) {
  // Instance layout: superclass fields first (so subclass objects are layout
  // compatible), then own fields, each aligned to its width.
  std::uint32_t offset = kObjHeaderBytes;
  if (rc.super_id >= 0) {
    // Superclasses are laid out first (classes are topologically processed).
    offset = classes_[rc.super_id].obj_size;
  }
  rc.field_ids.reserve(rc.cf.fields.size());
  for (const FieldInfo& fi : rc.cf.fields) {
    RtField f;
    f.id = static_cast<std::int32_t>(fields_.size());
    f.class_id = rc.id;
    f.kind = fi.kind;
    f.is_static = fi.is_static;
    if (fi.is_static) {
      f.static_addr = core_.arena->alloc_immortal(8, 8);
    } else {
      const std::uint32_t w = type_width(fi.kind);
      offset = (offset + w - 1) & ~(w - 1);
      f.offset = offset;
      offset += w;
    }
    rc.field_ids.push_back(f.id);
    fields_.push_back(f);
  }
  rc.obj_size = (offset + 7u) & ~7u;
}

void Jvm::link() {
  if (linked_) return;

  // Resolve superclasses; process in topological order (supers first).
  for (auto& rc : classes_) {
    if (rc.cf.super_name.empty()) {
      rc.super_id = -1;
      continue;
    }
    const auto it = class_by_name_.find(rc.cf.super_name);
    if (it == class_by_name_.end())
      throw Error("jvm: unresolved superclass " + rc.cf.super_name);
    rc.super_id = it->second;
    if (rc.super_id >= rc.id)
      throw Error("jvm: superclass must be loaded before subclass (" +
                  rc.cf.name + ")");
  }

  // Full verification over the class set (paper Section 3.3: bytecode is
  // verified at load; native code cannot be).
  ClassSetResolver resolver;
  for (auto& rc : classes_) resolver.add(&rc.cf);
  for (auto& rc : classes_)
    for (auto& m : rc.cf.methods) verify_method(rc.cf, m, resolver);

  // Register methods and install bytecode at simulated addresses.
  for (auto& rc : classes_) {
    rc.method_ids.reserve(rc.cf.methods.size());
    for (const MethodInfo& mi : rc.cf.methods) {
      RtMethod m;
      m.id = static_cast<std::int32_t>(methods_.size());
      m.class_id = rc.id;
      m.info = &mi;
      m.bc_addr = core_.arena->alloc_immortal(mi.code.size() * 4 + 4, 4);
      m.qualified_name = rc.cf.name + "." + mi.name;
      rc.method_ids.push_back(m.id);
      methods_.push_back(std::move(m));
    }
  }

  // Lay out fields/statics (supers processed before subclasses by id order).
  for (auto& rc : classes_) layout_class(rc);

  // Resolve constant pools to global ids.
  for (auto& rc : classes_) {
    rc.pool_method_ids.reserve(rc.cf.pool.methods.size());
    for (const MethodRef& ref : rc.cf.pool.methods) {
      std::int32_t found = -1;
      // Walk the chain from the named class.
      for (std::int32_t cid = find_class(ref.class_name); cid >= 0;
           cid = classes_[cid].super_id) {
        const RtClass& c = classes_[cid];
        for (std::size_t i = 0; i < c.cf.methods.size(); ++i) {
          if (c.cf.methods[i].name == ref.method_name) {
            found = c.method_ids[i];
            break;
          }
        }
        if (found >= 0) break;
      }
      if (found < 0)
        throw Error("jvm: unresolved method " + ref.class_name + "." +
                    ref.method_name);
      rc.pool_method_ids.push_back(found);
    }
    rc.pool_field_ids.reserve(rc.cf.pool.fields.size());
    for (const FieldRef& ref : rc.cf.pool.fields) {
      std::int32_t found = -1;
      for (std::int32_t cid = find_class(ref.class_name); cid >= 0;
           cid = classes_[cid].super_id) {
        const RtClass& c = classes_[cid];
        for (std::size_t i = 0; i < c.cf.fields.size(); ++i) {
          if (c.cf.fields[i].name == ref.field_name) {
            found = c.field_ids[i];
            break;
          }
        }
        if (found >= 0) break;
      }
      if (found < 0)
        throw Error("jvm: unresolved field " + ref.class_name + "." +
                    ref.field_name);
      rc.pool_field_ids.push_back(found);
    }
    rc.pool_class_ids.reserve(rc.cf.pool.classes.size());
    for (const std::string& name : rc.cf.pool.classes) {
      const std::int32_t cid = find_class(name);
      if (cid < 0) throw Error("jvm: unresolved class " + name);
      rc.pool_class_ids.push_back(cid);
    }
  }

  // Build the decoded-bytecode cache: every pool-indirect operand is
  // resolved once per method, so the interpreter's dispatch loop touches no
  // constant pool. Host-side only; the simulated decode cost is unchanged.
  if (decode_cache_)
    for (RtMethod& m : methods_) {
      const RtClass& rc = classes_[static_cast<std::size_t>(m.class_id)];
      m.decoded.reserve(m.info->code.size());
      for (const Insn& in : m.info->code)
        m.decoded.push_back(decode_insn(rc, in));
    }

  // Build the L0.5 baseline superinstruction streams on top of the decoded
  // cache. With the cache disabled the interpreter is deliberately on the
  // decode-per-iteration path, so no stream is built either.
  if (decode_cache_ && baseline_stream_)
    for (RtMethod& m : methods_) m.baseline = build_baseline_stream(m.decoded);

  linked_ = true;
}

void Jvm::set_decode_cache(bool enabled) {
  if (linked_) throw Error("jvm: set_decode_cache after link()");
  decode_cache_ = enabled;
}

void Jvm::set_baseline_stream(bool enabled) {
  if (linked_) throw Error("jvm: set_baseline_stream after link()");
  baseline_stream_ = enabled;
}

DecodedInsn Jvm::decode_insn(const RtClass& rc, const Insn& in) {
  DecodedInsn d;
  d.op = in.op;
  d.a = in.a;
  switch (in.op) {
    case Op::kDconst:
      d.d = rc.cf.pool.doubles[static_cast<std::size_t>(in.a)];
      break;
    case Op::kInvokeStatic:
    case Op::kInvokeVirtual:
      d.rid = rc.pool_method_ids[static_cast<std::size_t>(in.a)];
      break;
    case Op::kGetField:
    case Op::kPutField:
    case Op::kGetStatic:
    case Op::kPutStatic:
      d.rid = rc.pool_field_ids[static_cast<std::size_t>(in.a)];
      break;
    case Op::kNew:
      d.rid = rc.pool_class_ids[static_cast<std::size_t>(in.a)];
      break;
    default:
      break;
  }
  return d;
}

std::int32_t Jvm::find_class(const std::string& name) const {
  const auto it = class_by_name_.find(name);
  return it == class_by_name_.end() ? -1 : it->second;
}

std::int32_t Jvm::find_method(const std::string& cls_name,
                              const std::string& method_name) const {
  for (std::int32_t cid = find_class(cls_name); cid >= 0;
       cid = classes_[cid].super_id) {
    const RtClass& c = classes_[cid];
    for (std::size_t i = 0; i < c.cf.methods.size(); ++i)
      if (c.cf.methods[i].name == method_name) return c.method_ids[i];
  }
  return -1;
}

std::int32_t Jvm::resolve_virtual(std::int32_t declared_method_id,
                                  mem::Addr receiver) const {
  const std::int32_t rc_id = obj_class_id(receiver);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(rc_id) << 32) |
      static_cast<std::uint32_t>(declared_method_id);
  const auto it = vdispatch_cache_.find(key);
  if (it != vdispatch_cache_.end()) return it->second;

  const RtMethod& declared = method(declared_method_id);
  const std::string& name = declared.info->name;
  std::int32_t found = -1;
  for (std::int32_t cid = rc_id; cid >= 0; cid = classes_[cid].super_id) {
    const RtClass& c = classes_[cid];
    for (std::size_t i = 0; i < c.cf.methods.size(); ++i) {
      if (c.cf.methods[i].name == name) {
        found = c.method_ids[i];
        break;
      }
    }
    if (found >= 0) break;
  }
  if (found < 0)
    throw VmError("jvm: virtual dispatch failed for " +
                  declared.qualified_name);
  vdispatch_cache_[key] = found;
  return found;
}

bool Jvm::is_monomorphic(std::int32_t method_id) const {
  const RtMethod& m = method(method_id);
  if (m.info->is_static) return true;
  const std::string& name = m.info->name;
  // A method is monomorphic if no strict descendant of its class declares a
  // method with the same name.
  for (const RtClass& c : classes_) {
    if (c.id == m.class_id) continue;
    bool descends = false;
    for (std::int32_t cid = c.super_id; cid >= 0; cid = classes_[cid].super_id)
      if (cid == m.class_id) {
        descends = true;
        break;
      }
    if (!descends) continue;
    for (const auto& mi : c.cf.methods)
      if (mi.name == name) return false;
  }
  return true;
}

mem::Addr Jvm::new_object(std::int32_t class_id, bool charge) {
  const RtClass& rc = cls(class_id);
  const mem::Addr a = core_.arena->alloc(rc.obj_size, 8);
  core_.arena->store_u32(a, static_cast<std::uint32_t>(class_id));
  core_.arena->store_u32(a + 4, kObjPadSentinel);
  if (charge) {
    // Allocation path: bump pointer + header write + zero the body.
    core_.charge_class(energy::InstrClass::kAluSimple, 6);
    core_.stall(core_.hier->store(a));
    core_.charge_class(energy::InstrClass::kStore, 1);
    for (std::uint32_t off = kObjHeaderBytes; off < rc.obj_size; off += 8) {
      core_.stall(core_.hier->store(a + off));
      core_.charge_class(energy::InstrClass::kStore, 1);
    }
  }
  return a;
}

mem::Addr Jvm::new_array(TypeKind elem, std::int32_t length, bool charge) {
  if (length < 0) throw VmError("jvm: negative array length");
  const std::uint64_t bytes =
      kArrHeaderBytes + static_cast<std::uint64_t>(length) * type_width(elem);
  const mem::Addr a = core_.arena->alloc(bytes, 8);
  core_.arena->store_u32(a, static_cast<std::uint32_t>(elem));
  core_.arena->store_i32(a + 4, length);
  if (charge) {
    core_.charge_class(energy::InstrClass::kAluSimple, 6);
    core_.stall(core_.hier->store(a));
    core_.stall(core_.hier->store(a + 4));
    core_.charge_class(energy::InstrClass::kStore, 2);
    for (std::uint64_t off = kArrHeaderBytes; off < bytes; off += 8) {
      core_.stall(core_.hier->store(a + static_cast<mem::Addr>(off)));
      core_.charge_class(energy::InstrClass::kStore, 1);
    }
  }
  return a;
}

std::int32_t Jvm::array_length(mem::Addr ref) const {
  if (ref == mem::kNullAddr) throw VmError("null pointer dereference");
  return core_.arena->load_i32(ref + 4);
}

TypeKind Jvm::array_elem_kind(mem::Addr ref) const {
  if (ref == mem::kNullAddr) throw VmError("null pointer dereference");
  return static_cast<TypeKind>(core_.arena->load_u32(ref));
}

std::int32_t Jvm::obj_class_id(mem::Addr ref) const {
  if (ref == mem::kNullAddr) throw VmError("null pointer dereference");
  const auto id = static_cast<std::int32_t>(core_.arena->load_u32(ref));
  if (id < 0 || static_cast<std::size_t>(id) >= classes_.size())
    throw VmError("jvm: corrupt object header");
  return id;
}

mem::Addr Jvm::elem_addr(mem::Addr ref, std::int32_t idx) const {
  if (ref == mem::kNullAddr) throw VmError("null pointer dereference");
  const std::int32_t len = core_.arena->load_i32(ref + 4);
  if (idx < 0 || idx >= len)
    throw VmError("array index out of bounds: " + std::to_string(idx) +
                  " of " + std::to_string(len));
  const auto kind = static_cast<TypeKind>(core_.arena->load_u32(ref));
  return ref + kArrHeaderBytes +
         static_cast<mem::Addr>(idx) * type_width(kind);
}

mem::Addr Jvm::field_addr(mem::Addr obj, const RtField& f) const {
  if (f.is_static) return f.static_addr;
  if (obj == mem::kNullAddr) throw VmError("null pointer dereference");
  return obj + f.offset;
}

std::vector<std::int32_t> Jvm::read_i32_array(mem::Addr ref) const {
  const std::int32_t n = array_length(ref);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  if (n > 0) core_.arena->copy_out(ref + kArrHeaderBytes, v.data(), v.size() * 4);
  return v;
}

std::vector<double> Jvm::read_f64_array(mem::Addr ref) const {
  const std::int32_t n = array_length(ref);
  std::vector<double> v(static_cast<std::size_t>(n));
  if (n > 0) core_.arena->copy_out(ref + kArrHeaderBytes, v.data(), v.size() * 8);
  return v;
}

std::vector<std::uint8_t> Jvm::read_u8_array(mem::Addr ref) const {
  const std::int32_t n = array_length(ref);
  std::vector<std::uint8_t> v(static_cast<std::size_t>(n));
  if (n > 0) core_.arena->copy_out(ref + kArrHeaderBytes, v.data(), v.size());
  return v;
}

void Jvm::write_i32_array(mem::Addr ref, const std::vector<std::int32_t>& v) {
  if (array_length(ref) != static_cast<std::int32_t>(v.size()))
    throw Error("jvm: write_i32_array size mismatch");
  if (!v.empty()) core_.arena->copy_in(ref + kArrHeaderBytes, v.data(), v.size() * 4);
}

void Jvm::write_f64_array(mem::Addr ref, const std::vector<double>& v) {
  if (array_length(ref) != static_cast<std::int32_t>(v.size()))
    throw Error("jvm: write_f64_array size mismatch");
  if (!v.empty()) core_.arena->copy_in(ref + kArrHeaderBytes, v.data(), v.size() * 8);
}

void Jvm::write_u8_array(mem::Addr ref, const std::vector<std::uint8_t>& v) {
  if (array_length(ref) != static_cast<std::int32_t>(v.size()))
    throw Error("jvm: write_u8_array size mismatch");
  if (!v.empty()) core_.arena->copy_in(ref + kArrHeaderBytes, v.data(), v.size());
}

}  // namespace javelin::jvm
