// L0.5 baseline-tier translator: linear, near-zero-cost translation of a
// decoded method body into a pre-resolved superinstruction stream.
//
// The stream is the cheapest compilation tier in the system (between the
// interpreter and the L1 JIT): one linear pass, no IR, no register
// allocation. Common adjacent pairs are fused into one stream entry so the
// executor performs one dispatch per pair; all operands (pool constants,
// resolved ids, branch targets as *stream* indices) are pre-decoded.
//
// Invariant: executing a method through the stream charges exactly the same
// simulated energy/cycles and performs exactly the same cache accesses as
// the plain interpreter loop — only host-side dispatch work is eliminated.
// tests/dispatch_differential_test.cpp asserts this bit-for-bit. The tier's
// *accounting* divergence (skipping the fused second dispatch) is a separate,
// opt-in execution mode (Interpreter::run_baseline), never the default.
#pragma once

#include <vector>

#include "jvm/vm.hpp"

namespace javelin::jvm {

/// True if (a, b) is a fusable adjacent pair; sets `sop` to the fused stream
/// opcode. Fusion rules (kept in sync with the handlers in
/// interp_fused.inc):
///   - neither constituent may throw (loads, consts, int stores, Iadd/Imul,
///     Dadd/Dmul only),
///   - the second constituent must not be a branch or a branch target,
///   - Dstore is never a fusion tail (kept conservative: f64 stack traffic
///     stays on the generic path).
bool fusable_pair(const DecodedInsn& a, const DecodedInsn& b,
                  std::uint16_t& sop);

/// Translate a decoded method body into a baseline stream. Branch operands
/// (`di.a` of branch ops) are remapped from bytecode indices to stream
/// indices; out-of-range targets map to the stream size so the executor's
/// bounds check fires at exactly the same point as the interpreter's.
/// Returns an empty stream for an empty body.
std::vector<BaselineInsn> build_baseline_stream(
    const std::vector<DecodedInsn>& decoded);

}  // namespace javelin::jvm
