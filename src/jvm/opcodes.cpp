#include "jvm/opcodes.hpp"

#include <sstream>

#include "jvm/opspec.hpp"

namespace javelin::jvm {

// All three predicates are views over the opcode-spec table (opspec.hpp);
// tests/opspec_test.cpp pins them against the enum so they cannot drift from
// the interpreter or the static cost model.

const char* op_name(Op op) {
  if (static_cast<std::size_t>(op) >= kNumOps) return "?";
  return opspec::spec(op).mnemonic;
}

bool is_branch(Op op) {
  if (static_cast<std::size_t>(op) >= kNumOps) return false;
  return (opspec::spec(op).flags & opspec::kFlagBranch) != 0;
}

bool ends_block(Op op) {
  if (static_cast<std::size_t>(op) >= kNumOps) return false;
  return (opspec::spec(op).flags & opspec::kFlagEndsBlock) != 0;
}

std::string disassemble(const std::vector<Insn>& code) {
  std::ostringstream os;
  for (std::size_t i = 0; i < code.size(); ++i) {
    os << i << ":\t" << op_name(code[i].op);
    os << " " << code[i].a;
    if (code[i].b) os << ", " << code[i].b;
    os << "\n";
  }
  return os.str();
}

}  // namespace javelin::jvm
