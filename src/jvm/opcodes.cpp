#include "jvm/opcodes.hpp"

#include <sstream>

namespace javelin::jvm {

const char* op_name(Op op) {
  switch (op) {
    case Op::kIconst: return "iconst";
    case Op::kDconst: return "dconst";
    case Op::kAconstNull: return "aconst_null";
    case Op::kIload: return "iload";
    case Op::kIstore: return "istore";
    case Op::kDload: return "dload";
    case Op::kDstore: return "dstore";
    case Op::kAload: return "aload";
    case Op::kAstore: return "astore";
    case Op::kPop: return "pop";
    case Op::kDup: return "dup";
    case Op::kIadd: return "iadd";
    case Op::kIsub: return "isub";
    case Op::kImul: return "imul";
    case Op::kIdiv: return "idiv";
    case Op::kIrem: return "irem";
    case Op::kIneg: return "ineg";
    case Op::kIshl: return "ishl";
    case Op::kIshr: return "ishr";
    case Op::kIushr: return "iushr";
    case Op::kIand: return "iand";
    case Op::kIor: return "ior";
    case Op::kIxor: return "ixor";
    case Op::kDadd: return "dadd";
    case Op::kDsub: return "dsub";
    case Op::kDmul: return "dmul";
    case Op::kDdiv: return "ddiv";
    case Op::kDneg: return "dneg";
    case Op::kI2d: return "i2d";
    case Op::kD2i: return "d2i";
    case Op::kDcmp: return "dcmp";
    case Op::kIfeq: return "ifeq";
    case Op::kIfne: return "ifne";
    case Op::kIflt: return "iflt";
    case Op::kIfle: return "ifle";
    case Op::kIfgt: return "ifgt";
    case Op::kIfge: return "ifge";
    case Op::kIfIcmpEq: return "if_icmpeq";
    case Op::kIfIcmpNe: return "if_icmpne";
    case Op::kIfIcmpLt: return "if_icmplt";
    case Op::kIfIcmpLe: return "if_icmple";
    case Op::kIfIcmpGt: return "if_icmpgt";
    case Op::kIfIcmpGe: return "if_icmpge";
    case Op::kIfNull: return "ifnull";
    case Op::kIfNonNull: return "ifnonnull";
    case Op::kGoto: return "goto";
    case Op::kInvokeStatic: return "invokestatic";
    case Op::kInvokeVirtual: return "invokevirtual";
    case Op::kInvokeIntrinsic: return "invokeintrinsic";
    case Op::kReturn: return "return";
    case Op::kIreturn: return "ireturn";
    case Op::kDreturn: return "dreturn";
    case Op::kAreturn: return "areturn";
    case Op::kGetField: return "getfield";
    case Op::kPutField: return "putfield";
    case Op::kGetStatic: return "getstatic";
    case Op::kPutStatic: return "putstatic";
    case Op::kNew: return "new";
    case Op::kNewArray: return "newarray";
    case Op::kIaload: return "iaload";
    case Op::kIastore: return "iastore";
    case Op::kDaload: return "daload";
    case Op::kDastore: return "dastore";
    case Op::kBaload: return "baload";
    case Op::kBastore: return "bastore";
    case Op::kAaload: return "aaload";
    case Op::kAastore: return "aastore";
    case Op::kArrayLength: return "arraylength";
    case Op::kCount: break;
  }
  return "?";
}

bool is_branch(Op op) {
  switch (op) {
    case Op::kIfeq:
    case Op::kIfne:
    case Op::kIflt:
    case Op::kIfle:
    case Op::kIfgt:
    case Op::kIfge:
    case Op::kIfIcmpEq:
    case Op::kIfIcmpNe:
    case Op::kIfIcmpLt:
    case Op::kIfIcmpLe:
    case Op::kIfIcmpGt:
    case Op::kIfIcmpGe:
    case Op::kIfNull:
    case Op::kIfNonNull:
    case Op::kGoto:
      return true;
    default:
      return false;
  }
}

bool ends_block(Op op) {
  switch (op) {
    case Op::kGoto:
    case Op::kReturn:
    case Op::kIreturn:
    case Op::kDreturn:
    case Op::kAreturn:
      return true;
    default:
      return false;
  }
}

std::string disassemble(const std::vector<Insn>& code) {
  std::ostringstream os;
  for (std::size_t i = 0; i < code.size(); ++i) {
    os << i << ":\t" << op_name(code[i].op);
    os << " " << code[i].a;
    if (code[i].b) os << ", " << code[i].b;
    os << "\n";
  }
  return os.str();
}

}  // namespace javelin::jvm
