#include "jit/regalloc.hpp"

#include <algorithm>

#include "isa/nisa.hpp"

namespace javelin::jit {

namespace {

struct Interval {
  std::int32_t vreg = -1;
  std::int32_t start = -1;
  std::int32_t end = -1;
  bool fp = false;
};

}  // namespace

Allocation allocate(const Function& f, CompileMeter& meter) {
  Analysis a = analyze(f, meter);
  Liveness lv = compute_liveness(f, meter);

  Allocation out;
  out.reg.assign(f.num_vregs(), -1);
  out.spill.assign(f.num_vregs(), -1);
  out.order = a.rpo;

  // Linear positions: two per instruction (use position, def position), with
  // block boundaries occupying positions too.
  std::vector<std::int32_t> block_start(f.blocks.size(), 0);
  std::vector<std::int32_t> block_end(f.blocks.size(), 0);
  std::int32_t pos = 1;  // position 0 = function entry (args defined here)
  std::vector<Interval> iv(f.num_vregs());
  for (std::size_t v = 0; v < f.num_vregs(); ++v) {
    iv[v].vreg = static_cast<std::int32_t>(v);
    iv[v].fp = f.vreg_kinds[v] == TypeKind::kDouble;
  }
  auto touch = [&](std::int32_t v, std::int32_t p) {
    if (iv[v].start < 0 || p < iv[v].start) iv[v].start = p;
    if (p > iv[v].end) iv[v].end = p;
  };

  for (std::int32_t v : f.arg_vregs) touch(v, 0);

  for (std::int32_t b : out.order) {
    block_start[b] = pos;
    for (const IInstr& in : f.blocks[b].instrs) {
      for_each_use(in, [&](std::int32_t v) { touch(v, pos); });
      ++pos;
      if (has_dest(in.op) && in.d >= 0) touch(in.d, pos);
      ++pos;
      meter.work(1);
    }
    block_end[b] = pos;
    ++pos;
  }
  // Extend intervals across blocks where the vreg is live.
  for (std::int32_t b : out.order) {
    for (std::size_t v = 0; v < f.num_vregs(); ++v) {
      if (lv.live_in(b, static_cast<std::int32_t>(v)))
        touch(static_cast<std::int32_t>(v), block_start[b]);
      if (lv.live_out(b, static_cast<std::int32_t>(v)))
        touch(static_cast<std::int32_t>(v), block_end[b]);
    }
    meter.work(f.num_vregs() / 16 + 1);
  }

  // Sort live intervals by start.
  std::vector<Interval> live;
  live.reserve(f.num_vregs());
  for (const auto& i : iv)
    if (i.start >= 0) live.push_back(i);
  std::sort(live.begin(), live.end(), [](const Interval& x, const Interval& y) {
    return x.start < y.start;
  });

  // Allocatable pools.
  std::vector<std::int32_t> int_pool, fp_pool;
  for (std::uint8_t r = isa::kFirstTempReg; r <= isa::kLastTempReg; ++r)
    int_pool.push_back(r);
  for (std::uint8_t r = isa::kFFirstTempReg; r <= isa::kFLastTempReg; ++r)
    fp_pool.push_back(r);

  struct Active {
    std::int32_t end;
    std::int32_t vreg;
    std::int32_t reg;
  };
  std::vector<Active> active_int, active_fp;

  auto assign_spill = [&](std::int32_t v) {
    out.spill[v] = static_cast<std::int32_t>(out.frame_bytes);
    out.frame_bytes += 8;
    ++out.num_spilled;
  };

  for (const Interval& cur : live) {
    meter.work(3);
    auto& active = cur.fp ? active_fp : active_int;
    auto& pool = cur.fp ? fp_pool : int_pool;
    // Expire finished intervals.
    for (std::size_t i = active.size(); i-- > 0;) {
      if (active[i].end < cur.start) {
        pool.push_back(active[i].reg);
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    if (!pool.empty()) {
      const std::int32_t r = pool.back();
      pool.pop_back();
      out.reg[cur.vreg] = r;
      active.push_back(Active{cur.end, cur.vreg, r});
      continue;
    }
    // Spill the interval with the furthest end.
    auto furthest =
        std::max_element(active.begin(), active.end(),
                         [](const Active& x, const Active& y) {
                           return x.end < y.end;
                         });
    if (furthest != active.end() && furthest->end > cur.end) {
      out.reg[cur.vreg] = furthest->reg;
      out.reg[furthest->vreg] = -1;
      assign_spill(furthest->vreg);
      *furthest = Active{cur.end, cur.vreg, out.reg[cur.vreg]};
    } else {
      assign_spill(cur.vreg);
    }
  }

  return out;
}

}  // namespace javelin::jit
