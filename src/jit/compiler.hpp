// The JIT compiler driver and its energy meter.
//
// Compilation is itself a guest computation — the paper's Fig 8 measures the
// energy a client spends compiling at each optimization level. Every stage of
// this compiler therefore reports its work to a CompileMeter, which converts
// abstract compiler operations into instruction-class counts (a threaded
// symbolic workload: hash lookups, list walks, bit-set updates), and the
// caller charges the resulting energy to whichever device ran the compile.
//
// Levels (paper Section 3, Fig 5):
//   Level 1 — plain translation: bytecode -> IR -> linear-scan RA -> code.
//   Level 2 — + constant folding/propagation, local & dominator-based global
//             CSE, loop-invariant code motion, strength reduction, copy
//             propagation and dead-code elimination ("redundancy
//             elimination").
//   Level 3 — + method inlining (static and monomorphic virtual calls),
//             then the Level-2 pipeline over the widened function.
#pragma once

#include "energy/energy.hpp"
#include "isa/nisa.hpp"
#include "jit/ir.hpp"
#include "jvm/vm.hpp"
#include "obs/trace.hpp"

namespace javelin::jit {

/// Raised when a method cannot be compiled (the engine falls back to
/// interpretation, as production JITs do).
class CompileError : public Error {
 public:
  explicit CompileError(const std::string& what) : Error(what) {}
};

/// Accumulates compiler work in instruction-class units.
class CompileMeter {
 public:
  /// Native instructions represented by one abstract unit of compiler work.
  /// Calibrated so a Level-1 compile costs on the order of 10^3 cycles per
  /// bytecode and an optimizing compile several times that — the range
  /// reported for optimizing JITs of the paper's era (LaTTe, Jalapeño),
  /// which is what makes compilation energy a first-class term in Fig 6/8.
  static constexpr std::uint64_t kUnitScale = 24;

  /// One abstract compiler operation ~ a dozen native instructions of
  /// symbolic processing (loads of IR nodes, table lookups, stores,
  /// branches), times the calibration scale.
  void work(std::uint64_t units) {
    using energy::InstrClass;
    units *= kUnitScale;
    counts_.add(InstrClass::kLoad, 3 * units);
    counts_.add(InstrClass::kStore, 2 * units);
    counts_.add(InstrClass::kBranch, 2 * units);
    counts_.add(InstrClass::kAluSimple, 5 * units);
  }

  const energy::InstrCounts& counts() const { return counts_; }
  /// Joules under an energy table (plus a DRAM share for compiler data
  /// structures, ~2% of accesses missing cache).
  double energy(const energy::InstructionEnergyTable& t) const {
    return counts_.energy(t) +
           0.02 * static_cast<double>(counts_.of(energy::InstrClass::kLoad) +
                                      counts_.of(energy::InstrClass::kStore)) *
               t.main_memory;
  }
  /// Compile-time cycles (1 CPI plus the DRAM-share stalls).
  std::uint64_t cycles() const {
    return counts_.total() +
           static_cast<std::uint64_t>(
               0.02 * static_cast<double>(
                          counts_.of(energy::InstrClass::kLoad) +
                          counts_.of(energy::InstrClass::kStore)) *
               20.0);
  }

 private:
  energy::InstrCounts counts_;
};

/// One parameter's interprocedural array fact, computed by the length-fact
/// pass (analysis/lengths.hpp) over every call site reaching the method:
/// "this reference parameter is never null, and when it is an array its
/// length is at least min_len". Facts for non-reference parameters are left
/// at the all-false default.
struct ArrayParamFact {
  bool non_null = false;
  std::int32_t min_len = 0;
};

struct CompileOptions {
  int opt_level = 1;               ///< 1..3 (Local1..Local3).
  std::size_t inline_budget = 48;  ///< Max callee IR instrs to inline.
  int inline_depth = 3;            ///< Max nested inlining depth.
  /// Level-3 extra: eliminate null/bounds checks proven by a dominating
  /// access to the same (array, index) pair (see passes::bounds_check_elim).
  bool bounds_check_elimination = true;
  /// Per-parameter interprocedural facts for this method (index = parameter
  /// position), or nullptr (the default — compiled code is unchanged). Only
  /// consulted by bounds_check_elim at Level 3. Not owned; must outlive the
  /// compile.
  const std::vector<ArrayParamFact>* param_facts = nullptr;
  /// Per-bytecode-pc range proofs for this method (index = bytecode pc;
  /// non-zero = the interval analysis proved the access at that pc has a
  /// non-null base and an index in [0, length) on every execution), or
  /// nullptr (the default — compiled code is unchanged). Produced by
  /// analysis::analyze_intervals (MethodIntervals::proven_inbounds) under
  /// facts sound for every caller; consulted by bounds_check_elim at Level 3
  /// via IInstr::bc_pc. Not owned; must outlive the compile.
  const std::vector<std::uint8_t>* range_inbounds = nullptr;
};

struct CompileResult {
  isa::NativeProgram program;      ///< Not yet installed.
  energy::InstrCounts compile_work;
  double compile_energy = 0.0;     ///< Under the compiling machine's table.
  std::uint64_t compile_cycles = 0;
  std::size_t ir_instrs_before = 0;
  std::size_t ir_instrs_after = 0;
  std::size_t guards_elided = 0;           ///< Total ops with guards skipped.
  std::size_t guards_elided_interproc = 0; ///< ... proven by param facts.
  std::size_t guards_elided_range = 0;     ///< ... proven by interval ranges.
};

/// Compile one method. Throws CompileError if the method cannot be compiled.
/// `trace` (null = disabled) counts compiles and IR instructions in/out; the
/// compiler has no clock, so timed compile spans are emitted by callers that
/// do (rt::Client).
CompileResult compile_method(const jvm::Jvm& jvm, std::int32_t method_id,
                             const CompileOptions& opts,
                             const energy::InstructionEnergyTable& table,
                             obs::TraceBuffer* trace = nullptr);

/// Cost of the L0.5 baseline translation for one method (the stream itself
/// is built host-side at link(); this is the *simulated* energy/cycles the
/// client pays to run the linear translator). One pass, no IR: roughly a
/// dozen native instructions per bytecode versus ~10^3 cycles/bytecode for
/// a Level-1 compile.
struct BaselineCompileResult {
  energy::InstrCounts compile_work;
  double compile_energy = 0.0;  ///< Under the compiling machine's table.
  std::uint64_t compile_cycles = 0;
  std::size_t stream_len = 0;   ///< Superinstruction entries produced.
};

BaselineCompileResult compile_baseline(const jvm::Jvm& jvm,
                                       std::int32_t method_id,
                                       const energy::InstructionEnergyTable& table);

/// Translate a method to IR only (exposed for tests and for the inliner).
Function translate_to_ir(const jvm::Jvm& jvm, std::int32_t method_id,
                         CompileMeter& meter);

/// Methods reachable from `method_id` through static calls and
/// statically-resolved virtual call sites, excluding `method_id` itself.
/// Used to build the paper's "compilation plan" (the potential method plus
/// the methods it calls).
std::vector<std::int32_t> collect_callees(const jvm::Jvm& jvm,
                                          std::int32_t method_id);

// ---- individual passes (exposed for unit tests and ablation benches) ------
namespace passes {
/// Local value numbering with constant folding and strength reduction.
void local_value_numbering(Function& f, CompileMeter& meter);
/// Dominator-based global CSE.
void global_cse(Function& f, CompileMeter& meter);
/// Loop-invariant code motion (creates preheaders).
void licm(Function& f, CompileMeter& meter);
/// Copy propagation followed by dead-code elimination.
void copy_prop_dce(Function& f, CompileMeter& meter);
/// Inline static/monomorphic calls (Level 3).
void inline_calls(Function& f, const jvm::Jvm& jvm, const CompileOptions& o,
                  CompileMeter& meter);
/// Level-3 extra: mark guarded memory ops whose null/bounds checks are
/// implied by a dominating access to the same single-def (array, index)
/// pair — sound because guest arrays never move or resize. Returns the
/// number of ops whose guards were eliminated.
std::size_t bounds_check_elim(Function& f, CompileMeter& meter);
/// As above, additionally consuming interprocedural per-parameter facts
/// (nullable). Ops elided via facts are tagged IInstr::kGuardProofInterproc
/// and counted in *interproc_elided when non-null.
std::size_t bounds_check_elim(Function& f, CompileMeter& meter,
                              const std::vector<ArrayParamFact>* facts,
                              std::size_t* interproc_elided);
/// As above, additionally consuming per-bytecode-pc range proofs (nullable):
/// a guarded op whose IInstr::bc_pc is flagged in `range_inbounds` drops its
/// guards, tagged IInstr::kGuardProofRange and counted in *range_elided when
/// non-null.
std::size_t bounds_check_elim(Function& f, CompileMeter& meter,
                              const std::vector<ArrayParamFact>* facts,
                              std::size_t* interproc_elided,
                              const std::vector<std::uint8_t>* range_inbounds,
                              std::size_t* range_elided);
}  // namespace passes

}  // namespace javelin::jit
