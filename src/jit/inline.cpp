// Method inlining (Level 3).
//
// Inlines static calls and monomorphic virtual calls (the paper's "virtual
// method inlining", citing LaTTe/JaMake) subject to a callee-size budget and
// a nesting-depth limit. The callee's IR is spliced into the caller: the call
// block is split, argument moves bridge the calling convention, and callee
// returns become jumps to the continuation block.

#include "jit/analysis.hpp"
#include "jit/compiler.hpp"

namespace javelin::jit::passes {

namespace {

struct CallSite {
  std::int32_t block;
  std::size_t index;
  std::int32_t callee;
};

/// Find the first inlinable call site, if any. `veto` lists callees that
/// have hit their per-callee inlining cap (bounds recursive chains).
bool find_site(const Function& f, const jvm::Jvm& jvm, const CompileOptions& o,
               const std::vector<std::int32_t>& inline_counts, CallSite& out) {
  for (std::size_t b = 0; b < f.blocks.size(); ++b) {
    const auto& instrs = f.blocks[b].instrs;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const IInstr& in = instrs[i];
      std::int32_t callee = -1;
      if (in.op == IOp::kCallStatic) {
        callee = in.imm;
      } else if (in.op == IOp::kCallVirtual) {
        if (!jvm.is_monomorphic(in.imm)) continue;
        callee = in.imm;
      } else {
        continue;
      }
      if (callee == f.method_id) continue;  // no self-inlining
      if (inline_counts[callee] >= 2) continue;  // recursive-chain cap
      const jvm::RtMethod& cm = jvm.method(callee);
      // A coarse size filter on bytecode length before paying for
      // translation (4 IR instrs per bytecode is a safe overestimate).
      if (cm.info->code.size() > o.inline_budget) continue;
      out = CallSite{static_cast<std::int32_t>(b), i, callee};
      return true;
    }
  }
  return false;
}

void inline_one(Function& f, const jvm::Jvm& jvm, const CallSite& site,
                CompileMeter& meter) {
  // Translate the callee with vregs remapped into the caller's space.
  Function callee = translate_to_ir(jvm, site.callee, meter);
  const auto vreg_base = static_cast<std::int32_t>(f.num_vregs());
  for (TypeKind k : callee.vreg_kinds) f.vreg_kinds.push_back(k);
  auto remap = [vreg_base](std::int32_t v) { return v + vreg_base; };

  Block& caller_block = f.blocks[site.block];
  IInstr call = caller_block.instrs[site.index];

  // Split the caller block: [0, index) stays, (index, end) moves to `cont`.
  const auto cont_id = static_cast<std::int32_t>(f.blocks.size());
  f.blocks.push_back(Block{});
  // NOTE: vector may have reallocated; re-take references.
  Block& head = f.blocks[site.block];
  Block& cont = f.blocks[cont_id];
  cont.instrs.assign(head.instrs.begin() +
                         static_cast<std::ptrdiff_t>(site.index + 1),
                     head.instrs.end());
  cont.succs = head.succs;
  head.instrs.resize(site.index);
  head.succs.clear();

  // Splice callee blocks after `cont`.
  const auto block_base = static_cast<std::int32_t>(f.blocks.size());
  for (auto& cb : callee.blocks) {
    Block nb;
    nb.instrs.reserve(cb.instrs.size());
    for (IInstr in : cb.instrs) {
      if (has_dest(in.op) && in.d >= 0) in.d = remap(in.d);
      rewrite_uses(in, remap);
      // Inlined instructions live in the caller's pc space now; their callee
      // bytecode pcs must not key into the caller's per-pc analysis facts.
      in.bc_pc = -1;
      if (is_cond_branch(in.op) || in.op == IOp::kJmp) in.imm += block_base;
      if (in.op == IOp::kRet) {
        // return -> (mov result) + jmp cont
        if (in.a >= 0 && call.d >= 0) {
          IInstr mv;
          mv.op = IOp::kMov;
          mv.d = call.d;
          mv.a = in.a;
          mv.kind = f.vreg_kinds[call.d];
          nb.instrs.push_back(mv);
        }
        IInstr j;
        j.op = IOp::kJmp;
        j.imm = cont_id;
        nb.instrs.push_back(j);
        nb.succs.push_back(cont_id);
        meter.work(2);
        continue;
      }
      nb.instrs.push_back(std::move(in));
      meter.work(2);
    }
    for (std::int32_t s : cb.succs) nb.succs.push_back(s + block_base);
    f.blocks.push_back(std::move(nb));
  }

  // Bridge arguments and jump into the callee entry.
  Block& head2 = f.blocks[site.block];
  for (std::size_t k = 0; k < call.args.size(); ++k) {
    IInstr mv;
    mv.op = IOp::kMov;
    mv.d = remap(callee.arg_vregs[k]);
    mv.a = call.args[k];
    mv.kind = f.vreg_kinds[mv.a];
    head2.instrs.push_back(mv);
    meter.work(1);
  }
  IInstr j;
  j.op = IOp::kJmp;
  j.imm = block_base;  // callee entry
  head2.instrs.push_back(j);
  head2.succs.push_back(block_base);

  f.recompute_preds();
}

}  // namespace

void inline_calls(Function& f, const jvm::Jvm& jvm, const CompileOptions& o,
                  CompileMeter& meter) {
  constexpr std::size_t kMaxFunctionInstrs = 4000;
  std::vector<std::int32_t> inline_counts(jvm.num_methods(), 0);
  for (int depth = 0; depth < o.inline_depth; ++depth) {
    bool any = false;
    // Inline every currently-visible site once per round.
    for (;;) {
      CallSite site;
      if (f.num_instrs() >= kMaxFunctionInstrs) return;
      if (!find_site(f, jvm, o, inline_counts, site)) break;
      ++inline_counts[site.callee];
      inline_one(f, jvm, site, meter);
      any = true;
    }
    if (!any) return;
  }
}

}  // namespace javelin::jit::passes
