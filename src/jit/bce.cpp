// Bounds-check elimination (Level-3 extra pass).
//
// Guest arrays never move and never resize, and a single-def vreg never
// changes its value — so once an access `a[i]` has executed (proving a != null
// and 0 <= i < a.length), every later access to the same (a, i) pair whose
// execution is dominated by the first can skip both guards. The same holds
// for kArrLen's null check (keyed with index -1) and for field access null
// checks (keyed likewise).
//
// Classic induction-variable range analysis would remove even more checks;
// the dominating-pair rule already removes the repeated-access checks that
// dominate the image kernels (mag[idx] read four times in ed's hysteresis),
// stays trivially sound, and needs no loop analysis.

#include <unordered_set>

#include "jit/analysis.hpp"
#include "jit/compiler.hpp"

namespace javelin::jit::passes {

namespace {

std::uint64_t pair_key(std::int32_t a, std::int32_t b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

std::size_t bounds_check_elim(Function& f, CompileMeter& meter) {
  // Single-def vregs only: a redefinition could rebind the name to a
  // different array or index value.
  std::vector<std::int32_t> defs(f.num_vregs(), 0);
  for (const auto& b : f.blocks)
    for (const auto& in : b.instrs)
      if (has_dest(in.op) && in.d >= 0) ++defs[in.d];
  for (std::int32_t v : f.arg_vregs) ++defs[v];

  Analysis a = analyze(f, meter);

  // Walk the dominator tree via RPO (parents precede children in RPO for
  // reducible graphs; for safety we re-check dominance on lookup).
  struct Proof {
    std::uint64_t key;
    std::int32_t block;
  };
  std::vector<Proof> proofs;
  auto proven = [&](std::uint64_t key, std::int32_t block) {
    for (const Proof& p : proofs)
      if (p.key == key && a.dominates(p.block, block)) return true;
    return false;
  };

  std::size_t eliminated = 0;
  for (std::int32_t b : a.rpo) {
    for (auto& in : f.blocks[b].instrs) {
      meter.work(2);
      std::uint64_t key = 0;
      switch (in.op) {
        case IOp::kArrLoad:
        case IOp::kArrStore:
          if (defs[in.a] != 1 || defs[in.b] != 1) continue;
          key = pair_key(in.a, in.b);
          break;
        case IOp::kArrLen:
        case IOp::kFldLoad:
          if (defs[in.a] != 1) continue;
          key = pair_key(in.a, -1);
          break;
        case IOp::kFldStore:
          if (defs[in.a] != 1) continue;
          key = pair_key(in.a, -1);
          break;
        default:
          continue;
      }
      // kArrLen/kFld* only prove/require the null check; an array-element
      // proof (a, i) implies the null proof (a, -1), so record both for
      // element accesses.
      if (proven(key, b)) {
        in.skip_guards = true;
        ++eliminated;
        meter.work(2);
        continue;
      }
      proofs.push_back(Proof{key, b});
      if (in.op == IOp::kArrLoad || in.op == IOp::kArrStore)
        proofs.push_back(Proof{pair_key(in.a, -1), b});
    }
  }
  return eliminated;
}

}  // namespace javelin::jit::passes
