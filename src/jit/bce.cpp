// Bounds-check elimination (Level-3 extra pass).
//
// Guest arrays never move and never resize, and a single-def vreg never
// changes its value — so once an access `a[i]` has executed (proving a != null
// and 0 <= i < a.length), every later access to the same (a, i) pair whose
// execution is dominated by the first can skip both guards. The same holds
// for kArrLen's null check (keyed with index -1) and for field access null
// checks (keyed likewise).
//
// Classic induction-variable range analysis would remove even more checks;
// the dominating-pair rule already removes the repeated-access checks that
// dominate the image kernels (mag[idx] read four times in ed's hysteresis),
// stays trivially sound, and needs no loop analysis.
//
// The overload taking ArrayParamFacts extends the proof base across call
// boundaries: the interprocedural length-fact pass (analysis/lengths.hpp)
// proves per-parameter "never null, length >= N" facts from every call site
// reaching the method, so even the *first* access to a parameter array can
// drop its guards. Fact-elided ops are tagged kGuardProofInterproc; shadow-
// bounds mode (mem/shadow.hpp) dynamically cross-validates every elision.
//
// The overload additionally taking per-bytecode range proofs consumes the
// interval analysis (analysis/intervals.hpp): an access whose index is
// proven in [0, length) at its originating bytecode (IInstr::bc_pc) drops
// guards regardless of vreg def-counts — this catches locally-allocated
// arrays and loop-bounded indices the other two rules cannot. Tagged
// kGuardProofRange.

#include <unordered_set>

#include "jit/analysis.hpp"
#include "jit/compiler.hpp"

namespace javelin::jit::passes {

namespace {

std::uint64_t pair_key(std::int32_t a, std::int32_t b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

std::size_t bounds_check_elim(Function& f, CompileMeter& meter) {
  return bounds_check_elim(f, meter, nullptr, nullptr, nullptr, nullptr);
}

std::size_t bounds_check_elim(Function& f, CompileMeter& meter,
                              const std::vector<ArrayParamFact>* facts,
                              std::size_t* interproc_elided) {
  return bounds_check_elim(f, meter, facts, interproc_elided, nullptr,
                           nullptr);
}

std::size_t bounds_check_elim(Function& f, CompileMeter& meter,
                              const std::vector<ArrayParamFact>* facts,
                              std::size_t* interproc_elided,
                              const std::vector<std::uint8_t>* range_inbounds,
                              std::size_t* range_elided) {
  // Single-def vregs only: a redefinition could rebind the name to a
  // different array or index value.
  std::vector<std::int32_t> defs(f.num_vregs(), 0);
  for (const auto& b : f.blocks)
    for (const auto& in : b.instrs)
      if (has_dest(in.op) && in.d >= 0) ++defs[in.d];
  for (std::int32_t v : f.arg_vregs) ++defs[v];

  // Interprocedural facts bind to the (single-def) argument vregs; constant
  // indices below a parameter's proven minimum length need no range guard.
  // Copy propagation (run before this pass at L2+) has already collapsed
  // kAload moves, so accesses reference the argument vregs directly.
  std::vector<const ArrayParamFact*> vreg_fact(f.num_vregs(), nullptr);
  std::vector<char> is_const(f.num_vregs(), 0);
  std::vector<std::int32_t> const_val(f.num_vregs(), 0);
  if (facts != nullptr) {
    for (std::size_t i = 0; i < facts->size() && i < f.arg_vregs.size(); ++i) {
      const std::int32_t v = f.arg_vregs[i];
      if (defs[v] == 1) vreg_fact[v] = &(*facts)[i];
    }
    for (const auto& b : f.blocks)
      for (const auto& in : b.instrs)
        if (in.op == IOp::kConstI && in.d >= 0 && defs[in.d] == 1) {
          is_const[in.d] = 1;
          const_val[in.d] = in.imm;
        }
  }

  Analysis a = analyze(f, meter);

  // Walk the dominator tree via RPO (parents precede children in RPO for
  // reducible graphs; for safety we re-check dominance on lookup).
  struct Proof {
    std::uint64_t key;
    std::int32_t block;
  };
  std::vector<Proof> proofs;
  auto proven = [&](std::uint64_t key, std::int32_t block) {
    for (const Proof& p : proofs)
      if (p.key == key && a.dominates(p.block, block)) return true;
    return false;
  };

  std::size_t eliminated = 0;
  for (std::int32_t b : a.rpo) {
    for (auto& in : f.blocks[b].instrs) {
      meter.work(2);
      // Range proofs are per bytecode site, not per vreg pair, so they apply
      // even to multi-def names the dominating-pair rule must skip. They
      // cover both guards (non-null base, index in [0, length)) of array
      // element accesses only — kArrLen/kFld* pcs are never flagged.
      if (range_inbounds != nullptr &&
          (in.op == IOp::kArrLoad || in.op == IOp::kArrStore) &&
          in.bc_pc >= 0 &&
          static_cast<std::size_t>(in.bc_pc) < range_inbounds->size() &&
          (*range_inbounds)[static_cast<std::size_t>(in.bc_pc)] != 0) {
        in.skip_guards = true;
        in.guard_proof = kGuardProofRange;
        ++eliminated;
        if (range_elided != nullptr) ++*range_elided;
        meter.work(2);
        // The unguarded access still executes, so when single-def it proves
        // the pair for dominated successors like a guarded one would.
        if (defs[in.a] == 1 && defs[in.b] == 1) {
          proofs.push_back(Proof{pair_key(in.a, in.b), b});
          proofs.push_back(Proof{pair_key(in.a, -1), b});
        }
        continue;
      }
      std::uint64_t key = 0;
      switch (in.op) {
        case IOp::kArrLoad:
        case IOp::kArrStore:
          if (defs[in.a] != 1 || defs[in.b] != 1) continue;
          key = pair_key(in.a, in.b);
          break;
        case IOp::kArrLen:
        case IOp::kFldLoad:
          if (defs[in.a] != 1) continue;
          key = pair_key(in.a, -1);
          break;
        case IOp::kFldStore:
          if (defs[in.a] != 1) continue;
          key = pair_key(in.a, -1);
          break;
        default:
          continue;
      }
      // kArrLen/kFld* only prove/require the null check; an array-element
      // proof (a, i) implies the null proof (a, -1), so record both for
      // element accesses.
      if (proven(key, b)) {
        in.skip_guards = true;
        in.guard_proof = kGuardProofDominating;
        ++eliminated;
        meter.work(2);
        continue;
      }
      if (facts != nullptr && in.a >= 0 && vreg_fact[in.a] != nullptr &&
          vreg_fact[in.a]->non_null) {
        const ArrayParamFact& pf = *vreg_fact[in.a];
        // kArrLen/kFld* need only the null proof; element accesses also need
        // the index provably inside the parameter's minimum length.
        const bool elide =
            (in.op == IOp::kArrLen || in.op == IOp::kFldLoad ||
             in.op == IOp::kFldStore) ||
            (is_const[in.b] && const_val[in.b] >= 0 &&
             const_val[in.b] < pf.min_len);
        if (elide) {
          in.skip_guards = true;
          in.guard_proof = kGuardProofInterproc;
          ++eliminated;
          if (interproc_elided != nullptr) ++*interproc_elided;
          meter.work(2);
          // The unguarded access still executes, so it proves the pair for
          // dominated successors exactly like a guarded one would.
          proofs.push_back(Proof{key, b});
          if (in.op == IOp::kArrLoad || in.op == IOp::kArrStore)
            proofs.push_back(Proof{pair_key(in.a, -1), b});
          continue;
        }
      }
      proofs.push_back(Proof{key, b});
      if (in.op == IOp::kArrLoad || in.op == IOp::kArrStore)
        proofs.push_back(Proof{pair_key(in.a, -1), b});
    }
  }
  return eliminated;
}

}  // namespace javelin::jit::passes
