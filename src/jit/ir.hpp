// The JIT's intermediate representation.
//
// A three-address IR over typed virtual registers, organized as a CFG of
// basic blocks. Bytecode is translated into this IR (translate.cpp), the
// optimization levels run their passes over it (opt.cpp, inline.cpp), and
// codegen lowers it to the native ISA after linear-scan register allocation.
//
// Array and field accesses stay high-level in the IR (null/bounds checks are
// implicit) and are expanded by codegen; this keeps the optimizer honest —
// guarded memory operations are never reordered or eliminated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/value.hpp"

namespace javelin::jit {

using jvm::TypeKind;

enum class IOp : std::uint8_t {
  kConstI,   ///< d = imm
  kConstD,   ///< d = dimm
  kMov,      ///< d = a (any kind)

  // Integer arithmetic (operands/dest int vregs).
  kIAdd, kISub, kIMul, kIDiv, kIRem, kINeg,
  kIAnd, kIOr, kIXor, kIShl, kIShr, kIShru,

  // Double arithmetic.
  kDAdd, kDSub, kDMul, kDDiv, kDNeg,

  // Conversions / comparison.
  kI2D, kD2I,
  kDCmp,  ///< d(int) = cmp(a, b) in {-1, 0, 1}

  // Guarded memory operations (null/bounds checks implicit).
  kArrLoad,   ///< d = a[b]; `kind` gives element kind
  kArrStore,  ///< a[b] = c
  kArrLen,    ///< d = a.length
  kFldLoad,   ///< d = *(a + imm); `kind` gives field kind
  kFldStore,  ///< *(a + imm) = b
  kStLoad,    ///< d = *static(imm = address)
  kStStore,   ///< *static(imm) = a

  // Allocation (runtime calls).
  kNewArr,  ///< d = new [a]; imm = element TypeKind
  kNewObj,  ///< d = new; imm = class id

  // Calls. `args` holds argument vregs; imm = global method/intrinsic id.
  kCallStatic,
  kCallVirtual,  ///< imm = declared method id; args[0] is the receiver
  kIntrinsic,

  // Terminators.
  kBrEq, kBrNe, kBrLt, kBrLe, kBrGt, kBrGe,  ///< compare a, b; then goto imm
  kBrDEq, kBrDNe, kBrDLt, kBrDLe, kBrDGt, kBrDGe,  ///< double compares
  kJmp,   ///< goto imm (block id)
  kRet,   ///< return a (or none if a < 0)
};

const char* iop_name(IOp op);

// IInstr::guard_proof values (why bounds_check_elim set skip_guards).
inline constexpr std::uint8_t kGuardProofDominating = 1;
inline constexpr std::uint8_t kGuardProofInterproc = 2;
inline constexpr std::uint8_t kGuardProofRange = 3;

/// True if the instruction produces a value in `d`.
bool has_dest(IOp op);
/// True if the op is a pure computation (no side effects, no traps) —
/// eligible for CSE/DCE/LICM. Note kIDiv/kIRem can trap and are excluded.
bool is_pure(IOp op);
/// True for block terminators.
bool is_terminator(IOp op);
/// True for conditional branches (fall through to the next block when the
/// condition is false).
bool is_cond_branch(IOp op);

struct IInstr {
  IOp op;
  std::int32_t d = -1;           ///< Dest vreg (-1 if none).
  std::int32_t a = -1;           ///< First operand vreg.
  std::int32_t b = -1;           ///< Second operand vreg.
  std::int32_t c = -1;           ///< Third operand vreg (array stores).
  std::int32_t imm = 0;          ///< Immediate / offset / target / callee id.
  double dimm = 0.0;             ///< Double immediate (kConstD).
  TypeKind kind = TypeKind::kInt;  ///< Value kind for memory ops / dest.
  /// Set by bounds-check elimination: a dominating access already proved the
  /// null/bounds guards for this (array, index) pair, so codegen may omit
  /// them (kArrLoad/kArrStore/kArrLen/kFldLoad/kFldStore only).
  bool skip_guards = false;
  /// Which proof justified skip_guards (diagnostics + the shadow-mode
  /// differential test): 0 = none, kGuardProofDominating = a dominating
  /// access in this function, kGuardProofInterproc = interprocedural
  /// parameter facts, kGuardProofRange = interval analysis proved the index
  /// in [0, length) at the originating bytecode.
  std::uint8_t guard_proof = 0;
  /// Originating bytecode pc, or -1 when the instruction has no single
  /// source bytecode (synthesized by a pass, or inlined from a callee whose
  /// pc space is different). Keys per-bytecode analysis facts — a range
  /// proof at bytecode pc covers the guarded op translated from it.
  std::int32_t bc_pc = -1;
  std::vector<std::int32_t> args;  ///< Call arguments.
};

struct Block {
  std::vector<IInstr> instrs;
  std::vector<std::int32_t> succs;  ///< Successor block ids.
  std::vector<std::int32_t> preds;  ///< Predecessor block ids.
};

struct Function {
  std::int32_t method_id = -1;
  std::vector<Block> blocks;  ///< Block 0 is the entry.
  std::vector<TypeKind> vreg_kinds;  ///< Kind of each vreg.
  /// Argument vregs in invocation order (receiver first).
  std::vector<std::int32_t> arg_vregs;
  TypeKind ret_kind = TypeKind::kVoid;

  std::int32_t new_vreg(TypeKind k) {
    vreg_kinds.push_back(k);
    return static_cast<std::int32_t>(vreg_kinds.size() - 1);
  }
  std::size_t num_vregs() const { return vreg_kinds.size(); }
  std::size_t num_instrs() const {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.instrs.size();
    return n;
  }

  /// Recompute preds from succs.
  void recompute_preds();
  /// Rebuild succs of every block from its terminator (and fallthrough
  /// target `fall[b]` if >= 0), then recompute preds.
  std::string dump() const;
};

/// Iterate over the vregs an instruction uses (not defines).
template <typename Fn>
void for_each_use(const IInstr& in, Fn&& fn) {
  if (in.a >= 0) fn(in.a);
  if (in.b >= 0) fn(in.b);
  if (in.c >= 0) fn(in.c);
  for (std::int32_t v : in.args) fn(v);
}

/// Mutate uses in place.
template <typename Fn>
void rewrite_uses(IInstr& in, Fn&& fn) {
  if (in.a >= 0) in.a = fn(in.a);
  if (in.b >= 0) in.b = fn(in.b);
  if (in.c >= 0) in.c = fn(in.c);
  for (std::int32_t& v : in.args) v = fn(v);
}

}  // namespace javelin::jit
