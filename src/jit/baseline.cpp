// L0.5 baseline-translation cost model.
//
// The baseline tier's superinstruction stream (jvm/baseline.cpp) is built
// host-side at link(), but a client that *adopts* the tier for a method pays
// the simulated cost of running the linear translator: one pass over the
// bytecode with no IR, no register allocation and no analysis. We model it
// as ~a dozen native instructions per bytecode (read the instruction, write
// the pre-resolved entry, one fusion-window compare, a little arithmetic)
// plus a small fixed setup — about 24x cheaper per bytecode than a Level-1
// compile (whose CompileMeter charges ~10^3 cycles/bytecode), matching the
// baseline-vs-optimizing gap reported for the era's JVMs.
#include "jit/compiler.hpp"

namespace javelin::jit {

namespace {

// Per-bytecode translator work: 3 loads (fetch insn + pool/operand reads),
// 2 stores (stream entry), 1 branch (fusion-window test), 6 simple ALU
// (decode, remap arithmetic). Setup/teardown: one small fixed block.
constexpr std::uint64_t kLoadsPerBc = 3;
constexpr std::uint64_t kStoresPerBc = 2;
constexpr std::uint64_t kBranchesPerBc = 1;
constexpr std::uint64_t kAluPerBc = 6;
constexpr std::uint64_t kSetupInstrs = 32;

}  // namespace

BaselineCompileResult compile_baseline(
    const jvm::Jvm& jvm, std::int32_t method_id,
    const energy::InstructionEnergyTable& table) {
  using energy::InstrClass;
  const jvm::RtMethod& m = jvm.method(method_id);
  const auto n = static_cast<std::uint64_t>(m.info->code.size());

  BaselineCompileResult r;
  r.compile_work.add(InstrClass::kLoad, kLoadsPerBc * n);
  r.compile_work.add(InstrClass::kStore, kStoresPerBc * n);
  r.compile_work.add(InstrClass::kBranch, kBranchesPerBc * n);
  r.compile_work.add(InstrClass::kAluSimple, kAluPerBc * n + kSetupInstrs);

  // Same DRAM-share convention as CompileMeter: ~2% of the translator's
  // loads/stores miss cache and touch main memory.
  const auto ls = static_cast<double>(
      r.compile_work.of(InstrClass::kLoad) +
      r.compile_work.of(InstrClass::kStore));
  r.compile_energy = r.compile_work.energy(table) + 0.02 * ls * table.main_memory;
  r.compile_cycles =
      r.compile_work.total() + static_cast<std::uint64_t>(0.02 * ls * 20.0);
  r.stream_len = m.baseline.size();
  return r;
}

}  // namespace javelin::jit
