// Optimization passes for Level 2 / Level 3 compilation.
//
// The paper's Level 2 list (Section 3): common sub-expression elimination,
// loop-invariant code motion, strength reduction, and redundancy elimination
// (copy propagation + dead-code elimination here). The IR is not SSA, so the
// global passes restrict themselves to *single-def* vregs — virtually all
// temporaries produced by the translator — which keeps them simple and sound;
// multi-def vregs (locals, canonical stack slots) are handled by the local
// value-numbering pass within each block.

#include <optional>
#include <unordered_map>

#include "jit/analysis.hpp"
#include "jit/compiler.hpp"

namespace javelin::jit::passes {

namespace {

std::vector<std::int32_t> def_counts(const Function& f) {
  std::vector<std::int32_t> defs(f.num_vregs(), 0);
  for (const auto& b : f.blocks)
    for (const auto& in : b.instrs)
      if (has_dest(in.op) && in.d >= 0) ++defs[in.d];
  // Arguments are defined at entry.
  for (std::int32_t v : f.arg_vregs) ++defs[v];
  return defs;
}

std::vector<std::int32_t> use_counts(const Function& f) {
  std::vector<std::int32_t> uses(f.num_vregs(), 0);
  for (const auto& b : f.blocks)
    for (const auto& in : b.instrs)
      for_each_use(in, [&](std::int32_t v) { ++uses[v]; });
  return uses;
}

bool is_pow2(std::int32_t v) { return v > 0 && (v & (v - 1)) == 0; }
int log2i(std::int32_t v) {
  int s = 0;
  while ((1 << s) < v) ++s;
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Local value numbering with constant folding and strength reduction.
// ---------------------------------------------------------------------------
void local_value_numbering(Function& f, CompileMeter& meter) {
  struct ExprKey {
    IOp op;
    std::int32_t va, vb;  // value numbers of operands
    std::int64_t imm;
    bool operator==(const ExprKey&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const ExprKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 1000003u + static_cast<std::size_t>(k.va + 7);
      h = h * 1000003u + static_cast<std::size_t>(k.vb + 7);
      h = h * 1000003u +
          static_cast<std::size_t>(static_cast<std::uint64_t>(k.imm) *
                                   2654435761u);
      return h;
    }
  };

  for (auto& blk : f.blocks) {
    std::vector<std::int32_t> vn;
    std::int32_t next_vn = 0;
    auto vn_of = [&](std::int32_t vreg) {
      if (static_cast<std::size_t>(vreg) >= vn.size())
        vn.resize(f.num_vregs(), -1);
      if (vn[vreg] < 0) vn[vreg] = next_vn++;
      return vn[vreg];
    };
    auto set_vn = [&](std::int32_t vreg, std::int32_t v) {
      if (static_cast<std::size_t>(vreg) >= vn.size())
        vn.resize(f.num_vregs(), -1);
      vn[vreg] = v;
    };
    // expr -> (value number, holder vreg). Holder validity is checked by
    // comparing the holder's current VN (the holder may be overwritten).
    std::unordered_map<ExprKey, std::pair<std::int32_t, std::int32_t>, KeyHash>
        table;
    // VN -> known constants.
    std::unordered_map<std::int32_t, std::int32_t> const_i;
    std::unordered_map<std::int32_t, double> const_d;

    auto holder_valid = [&](const std::pair<std::int32_t, std::int32_t>& e) {
      return static_cast<std::size_t>(e.second) < vn.size() &&
             vn[e.second] == e.first;
    };

    for (std::size_t idx = 0; idx < blk.instrs.size(); ++idx) {
      meter.work(2);

      auto ci = [&](std::int32_t vreg) -> std::optional<std::int32_t> {
        const auto it = const_i.find(vn_of(vreg));
        if (it == const_i.end()) return std::nullopt;
        return it->second;
      };

      // --- constant folding & strength reduction -------------------------
      {
        IInstr& in = blk.instrs[idx];
        switch (in.op) {
          case IOp::kIAdd: case IOp::kISub: case IOp::kIMul:
          case IOp::kIAnd: case IOp::kIOr: case IOp::kIXor:
          case IOp::kIShl: case IOp::kIShr: case IOp::kIShru: {
            const auto a = ci(in.a), b = ci(in.b);
            if (a && b) {
              std::int32_t r = 0;
              switch (in.op) {
                case IOp::kIAdd: r = *a + *b; break;
                case IOp::kISub: r = *a - *b; break;
                case IOp::kIMul: r = *a * *b; break;
                case IOp::kIAnd: r = *a & *b; break;
                case IOp::kIOr: r = *a | *b; break;
                case IOp::kIXor: r = *a ^ *b; break;
                case IOp::kIShl: r = *a << (*b & 31); break;
                case IOp::kIShr: r = *a >> (*b & 31); break;
                default:
                  r = static_cast<std::int32_t>(
                      static_cast<std::uint32_t>(*a) >> (*b & 31));
                  break;
              }
              in.op = IOp::kConstI;
              in.imm = r;
              in.a = in.b = -1;
            } else if (in.op == IOp::kIMul && a && !b) {
              // Canonicalize the constant to the right.
              std::swap(in.a, in.b);
            }
            // Re-read constants after canonicalization.
            const auto b2 =
                in.op == IOp::kIMul || in.op == IOp::kIAdd ? ci(in.b)
                                                           : std::nullopt;
            if (in.op == IOp::kIAdd && b2 && *b2 == 0) {
              in.op = IOp::kMov;  // x + 0 -> x
              in.b = -1;
              in.kind = TypeKind::kInt;
            } else if (in.op == IOp::kIMul && b2 && *b2 == 1) {
              in.op = IOp::kMov;  // x * 1 -> x
              in.b = -1;
              in.kind = TypeKind::kInt;
            } else if (in.op == IOp::kIMul && b2 && *b2 == 0) {
              in.op = IOp::kConstI;  // x * 0 -> 0
              in.imm = 0;
              in.a = in.b = -1;
            } else if (in.op == IOp::kIMul && b2 && is_pow2(*b2)) {
              // Strength reduction: x * 2^k -> x << k. Materialize the shift
              // amount as a fresh constant before this instruction.
              const std::int32_t shift = log2i(*b2);
              IInstr cst;
              cst.op = IOp::kConstI;
              cst.d = f.new_vreg(TypeKind::kInt);
              cst.imm = shift;
              IInstr& mul = blk.instrs[idx];
              mul.op = IOp::kIShl;
              mul.b = cst.d;
              blk.instrs.insert(
                  blk.instrs.begin() + static_cast<std::ptrdiff_t>(idx), cst);
              // Process the inserted constant on the next iteration.
              --idx;
              meter.work(3);
              continue;
            }
            break;
          }
          case IOp::kINeg: {
            if (const auto a = ci(in.a)) {
              in.op = IOp::kConstI;
              in.imm = -*a;
              in.a = -1;
            }
            break;
          }
          default:
            break;
        }
      }

      // --- value numbering ------------------------------------------------
      IInstr& in = blk.instrs[idx];
      if (in.op == IOp::kConstI && in.d >= 0) {
        ExprKey key{IOp::kConstI, -1, -1, in.imm};
        auto it = table.find(key);
        if (it != table.end() && holder_valid(it->second) &&
            it->second.second != in.d) {
          const std::int32_t holder = it->second.second;
          const std::int32_t v = it->second.first;
          in.op = IOp::kMov;
          in.a = holder;
          in.kind = f.vreg_kinds[in.d];
          set_vn(in.d, v);
        } else {
          const std::int32_t v = next_vn++;
          set_vn(in.d, v);
          const_i[v] = in.imm;
          table[key] = {v, in.d};
        }
        continue;
      }
      if (in.op == IOp::kConstD && in.d >= 0) {
        ExprKey key{IOp::kConstD, -1, -1,
                    static_cast<std::int64_t>(std::hash<double>{}(in.dimm))};
        auto it = table.find(key);
        const bool hit = it != table.end() && holder_valid(it->second) &&
                         it->second.second != in.d &&
                         const_d.count(it->second.first) &&
                         const_d[it->second.first] == in.dimm;
        if (hit) {
          in.op = IOp::kMov;
          in.a = it->second.second;
          in.kind = TypeKind::kDouble;
          set_vn(in.d, it->second.first);
        } else {
          const std::int32_t v = next_vn++;
          set_vn(in.d, v);
          const_d[v] = in.dimm;
          table[key] = {v, in.d};
        }
        continue;
      }
      if (in.op == IOp::kMov && in.d >= 0) {
        set_vn(in.d, vn_of(in.a));  // copies share the value number
        continue;
      }
      if (is_pure(in.op) && in.d >= 0) {
        ExprKey key{in.op, vn_of(in.a), in.b >= 0 ? vn_of(in.b) : -1, in.imm};
        auto it = table.find(key);
        if (it != table.end() && holder_valid(it->second) &&
            it->second.second != in.d) {
          const std::int32_t holder = it->second.second;
          const std::int32_t v = it->second.first;
          in.op = IOp::kMov;
          in.a = holder;
          in.b = -1;
          in.kind = f.vreg_kinds[in.d];
          set_vn(in.d, v);
        } else {
          const std::int32_t v = next_vn++;
          set_vn(in.d, v);
          table[key] = {v, in.d};
        }
        continue;
      }
      // Impure defs get fresh value numbers.
      if (has_dest(in.op) && in.d >= 0) set_vn(in.d, next_vn++);
    }
  }
  (void)use_counts;
}

// ---------------------------------------------------------------------------
// Dominator-based global CSE over single-def vregs.
// ---------------------------------------------------------------------------
void global_cse(Function& f, CompileMeter& meter) {
  const auto defs = def_counts(f);
  Analysis a = analyze(f, meter);

  struct ExprKey {
    IOp op;
    std::int32_t va, vb;
    std::int64_t imm;
    bool operator==(const ExprKey&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const ExprKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 1000003u + static_cast<std::size_t>(k.va + 7);
      h = h * 1000003u + static_cast<std::size_t>(k.vb + 7);
      h = h * 1000003u +
          static_cast<std::size_t>(static_cast<std::uint64_t>(k.imm) *
                                   2654435761u);
      return h;
    }
  };
  struct Holder {
    std::int32_t vreg;
    std::int32_t block;
  };
  std::unordered_map<ExprKey, Holder, KeyHash> table;

  // Process blocks in RPO; an earlier computation can serve a later one only
  // if its block dominates the later block.
  for (std::int32_t b : a.rpo) {
    for (auto& in : f.blocks[b].instrs) {
      meter.work(2);
      if (!is_pure(in.op) || in.d < 0) continue;
      if (in.op == IOp::kMov) continue;
      if (defs[in.d] != 1) continue;
      if (in.a >= 0 && defs[in.a] != 1) continue;
      if (in.b >= 0 && defs[in.b] != 1) continue;

      ExprKey key{in.op, in.a, in.b,
                  in.op == IOp::kConstD
                      ? static_cast<std::int64_t>(std::hash<double>{}(in.dimm))
                      : in.imm};
      auto it = table.find(key);
      if (it != table.end() && a.dominates(it->second.block, b) &&
          it->second.vreg != in.d) {
        in.op = IOp::kMov;
        in.a = it->second.vreg;
        in.b = -1;
        in.kind = f.vreg_kinds[in.d];
      } else {
        table[key] = Holder{in.d, b};
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Loop-invariant code motion.
// ---------------------------------------------------------------------------
namespace {

/// Create (or reuse) a preheader for `header`: every non-back-edge
/// predecessor is redirected to the new block.
std::int32_t make_preheader(Function& f, const Loop& loop,
                            std::int32_t header) {
  const auto new_id = static_cast<std::int32_t>(f.blocks.size());
  f.blocks.push_back(Block{});
  Block& pre = f.blocks.back();
  IInstr jmp;
  jmp.op = IOp::kJmp;
  jmp.imm = header;
  pre.instrs.push_back(jmp);
  pre.succs.push_back(header);

  for (std::size_t p = 0; p < f.blocks.size(); ++p) {
    if (static_cast<std::int32_t>(p) == new_id) continue;
    if (loop.contains(static_cast<std::int32_t>(p))) continue;  // back edges stay
    Block& pred = f.blocks[p];
    bool touches = false;
    for (auto& s : pred.succs)
      if (s == header) {
        s = new_id;
        touches = true;
      }
    if (!touches) continue;
    // Retarget the terminator(s).
    for (auto& in : pred.instrs) {
      if (is_cond_branch(in.op) || in.op == IOp::kJmp) {
        if (in.imm == header) in.imm = new_id;
      }
    }
  }
  f.recompute_preds();
  return new_id;
}

}  // namespace

void licm(Function& f, CompileMeter& meter) {
  Analysis a = analyze(f, meter);
  const std::vector<Loop> loops = find_loops(f, a, meter);
  if (loops.empty()) return;

  auto defs = def_counts(f);

  for (const Loop& loop : loops) {
    // Defs inside the loop.
    std::vector<char> defined_in_loop(f.num_vregs(), 0);
    for (std::int32_t b : loop.blocks)
      for (const auto& in : f.blocks[b].instrs)
        if (has_dest(in.op) && in.d >= 0) defined_in_loop[in.d] = 1;

    std::int32_t preheader = -1;
    bool moved = true;
    while (moved) {
      moved = false;
      for (std::int32_t b : loop.blocks) {
        // NOTE: make_preheader may reallocate f.blocks; never hold a
        // reference to a block across it.
        for (std::size_t i = 0; i < f.blocks[b].instrs.size(); ++i) {
          meter.work(2);
          {
            const IInstr& in = f.blocks[b].instrs[i];
            if (!is_pure(in.op) || in.d < 0) continue;
            if (defs[in.d] != 1) continue;  // single def in the function
            bool invariant = true;
            for_each_use(in, [&](std::int32_t v) {
              if (defined_in_loop[v]) invariant = false;
            });
            if (!invariant) continue;
          }
          if (preheader < 0) preheader = make_preheader(f, loop, loop.header);
          const IInstr hoisted = f.blocks[b].instrs[i];
          Block& pre = f.blocks[preheader];
          // Insert before the preheader's terminating jump.
          pre.instrs.insert(pre.instrs.end() - 1, hoisted);
          defined_in_loop[hoisted.d] = 0;  // now defined outside
          auto& instrs = f.blocks[b].instrs;
          instrs.erase(instrs.begin() + static_cast<std::ptrdiff_t>(i));
          --i;
          moved = true;
          meter.work(4);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Copy propagation + dead-code elimination (+ dcmp/branch fusion).
// ---------------------------------------------------------------------------
void copy_prop_dce(Function& f, CompileMeter& meter) {
  // --- copy propagation over single-def vregs -------------------------------
  bool changed = true;
  while (changed) {
    changed = false;
    const auto defs = def_counts(f);
    // v -> u for each single-def v defined by "mov v <- u" with u single-def.
    std::vector<std::int32_t> alias(f.num_vregs(), -1);
    for (const auto& blk : f.blocks) {
      for (const auto& in : blk.instrs) {
        if (in.op == IOp::kMov && in.d >= 0 && defs[in.d] == 1 &&
            defs[in.a] == 1 && in.d != in.a)
          alias[in.d] = in.a;
        meter.work(1);
      }
    }
    auto resolve = [&](std::int32_t v) {
      while (alias[v] >= 0) v = alias[v];
      return v;
    };
    for (auto& blk : f.blocks) {
      for (auto& in : blk.instrs) {
        rewrite_uses(in, [&](std::int32_t v) {
          const std::int32_t r = resolve(v);
          if (r != v) changed = true;
          return r;
        });
      }
    }

    // --- dcmp/branch fusion ---------------------------------------------------
    // Pattern: t = dcmp a, b; ...; br.<cond> t, zero  (t and zero single-def,
    // zero a constant 0). Replaced by br.d<cond> a, b.
    for (auto& blk : f.blocks) {
      if (blk.instrs.empty()) continue;
      IInstr& term = blk.instrs.back();
      if (!is_cond_branch(term.op)) continue;
      if (term.op >= IOp::kBrDEq && term.op <= IOp::kBrDGe) continue;
      if (term.a < 0 || term.b < 0) continue;
      if (defs[term.a] != 1 || defs[term.b] != 1) continue;
      // Find defs within this block.
      const IInstr* cmp = nullptr;
      const IInstr* zero = nullptr;
      for (const auto& in : blk.instrs) {
        if (in.d == term.a && in.op == IOp::kDCmp) cmp = &in;
        if (in.d == term.b && in.op == IOp::kConstI && in.imm == 0) zero = &in;
      }
      if (!cmp || !zero) continue;
      IOp fused;
      switch (term.op) {
        case IOp::kBrEq: fused = IOp::kBrDEq; break;
        case IOp::kBrNe: fused = IOp::kBrDNe; break;
        case IOp::kBrLt: fused = IOp::kBrDLt; break;
        case IOp::kBrLe: fused = IOp::kBrDLe; break;
        case IOp::kBrGt: fused = IOp::kBrDGt; break;
        default: fused = IOp::kBrDGe; break;
      }
      term.op = fused;
      term.a = cmp->a;
      term.b = cmp->b;
      changed = true;
      meter.work(4);
    }

    // --- dead-code elimination ---------------------------------------------------
    const auto uses = use_counts(f);
    std::vector<char> live_ret(f.num_vregs(), 0);
    for (auto& blk : f.blocks) {
      auto& instrs = blk.instrs;
      for (std::size_t i = instrs.size(); i-- > 0;) {
        const IInstr& in = instrs[i];
        meter.work(1);
        const bool removable =
            (is_pure(in.op) || in.op == IOp::kMov) && in.d >= 0 &&
            uses[in.d] == 0;
        if (removable) {
          instrs.erase(instrs.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
        } else if (in.op == IOp::kMov && in.d == in.a) {
          instrs.erase(instrs.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
        }
      }
    }
  }
}

}  // namespace javelin::jit::passes
