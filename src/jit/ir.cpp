#include "jit/ir.hpp"

#include <sstream>

namespace javelin::jit {

const char* iop_name(IOp op) {
  switch (op) {
    case IOp::kConstI: return "const.i";
    case IOp::kConstD: return "const.d";
    case IOp::kMov: return "mov";
    case IOp::kIAdd: return "iadd";
    case IOp::kISub: return "isub";
    case IOp::kIMul: return "imul";
    case IOp::kIDiv: return "idiv";
    case IOp::kIRem: return "irem";
    case IOp::kINeg: return "ineg";
    case IOp::kIAnd: return "iand";
    case IOp::kIOr: return "ior";
    case IOp::kIXor: return "ixor";
    case IOp::kIShl: return "ishl";
    case IOp::kIShr: return "ishr";
    case IOp::kIShru: return "ishru";
    case IOp::kDAdd: return "dadd";
    case IOp::kDSub: return "dsub";
    case IOp::kDMul: return "dmul";
    case IOp::kDDiv: return "ddiv";
    case IOp::kDNeg: return "dneg";
    case IOp::kI2D: return "i2d";
    case IOp::kD2I: return "d2i";
    case IOp::kDCmp: return "dcmp";
    case IOp::kArrLoad: return "arr.load";
    case IOp::kArrStore: return "arr.store";
    case IOp::kArrLen: return "arr.len";
    case IOp::kFldLoad: return "fld.load";
    case IOp::kFldStore: return "fld.store";
    case IOp::kStLoad: return "st.load";
    case IOp::kStStore: return "st.store";
    case IOp::kNewArr: return "newarr";
    case IOp::kNewObj: return "newobj";
    case IOp::kCallStatic: return "call";
    case IOp::kCallVirtual: return "callv";
    case IOp::kIntrinsic: return "intrinsic";
    case IOp::kBrEq: return "br.eq";
    case IOp::kBrNe: return "br.ne";
    case IOp::kBrLt: return "br.lt";
    case IOp::kBrLe: return "br.le";
    case IOp::kBrGt: return "br.gt";
    case IOp::kBrGe: return "br.ge";
    case IOp::kBrDEq: return "br.deq";
    case IOp::kBrDNe: return "br.dne";
    case IOp::kBrDLt: return "br.dlt";
    case IOp::kBrDLe: return "br.dle";
    case IOp::kBrDGt: return "br.dgt";
    case IOp::kBrDGe: return "br.dge";
    case IOp::kJmp: return "jmp";
    case IOp::kRet: return "ret";
  }
  return "?";
}

bool has_dest(IOp op) {
  switch (op) {
    case IOp::kConstI: case IOp::kConstD: case IOp::kMov:
    case IOp::kIAdd: case IOp::kISub: case IOp::kIMul: case IOp::kIDiv:
    case IOp::kIRem: case IOp::kINeg: case IOp::kIAnd: case IOp::kIOr:
    case IOp::kIXor: case IOp::kIShl: case IOp::kIShr: case IOp::kIShru:
    case IOp::kDAdd: case IOp::kDSub: case IOp::kDMul: case IOp::kDDiv:
    case IOp::kDNeg: case IOp::kI2D: case IOp::kD2I: case IOp::kDCmp:
    case IOp::kArrLoad: case IOp::kArrLen: case IOp::kFldLoad:
    case IOp::kStLoad: case IOp::kNewArr: case IOp::kNewObj:
      return true;
    case IOp::kCallStatic: case IOp::kCallVirtual: case IOp::kIntrinsic:
      return true;  // d may still be -1 for void calls
    default:
      return false;
  }
}

bool is_pure(IOp op) {
  switch (op) {
    case IOp::kConstI: case IOp::kConstD: case IOp::kMov:
    case IOp::kIAdd: case IOp::kISub: case IOp::kIMul: case IOp::kINeg:
    case IOp::kIAnd: case IOp::kIOr: case IOp::kIXor:
    case IOp::kIShl: case IOp::kIShr: case IOp::kIShru:
    case IOp::kDAdd: case IOp::kDSub: case IOp::kDMul: case IOp::kDDiv:
    case IOp::kDNeg: case IOp::kI2D: case IOp::kD2I: case IOp::kDCmp:
      return true;
    default:
      return false;  // div/rem trap; memory ops, calls, branches
  }
}

bool is_terminator(IOp op) {
  switch (op) {
    case IOp::kBrEq: case IOp::kBrNe: case IOp::kBrLt:
    case IOp::kBrLe: case IOp::kBrGt: case IOp::kBrGe:
    case IOp::kBrDEq: case IOp::kBrDNe: case IOp::kBrDLt:
    case IOp::kBrDLe: case IOp::kBrDGt: case IOp::kBrDGe:
    case IOp::kJmp: case IOp::kRet:
      return true;
    default:
      return false;
  }
}

bool is_cond_branch(IOp op) {
  switch (op) {
    case IOp::kBrEq: case IOp::kBrNe: case IOp::kBrLt:
    case IOp::kBrLe: case IOp::kBrGt: case IOp::kBrGe:
    case IOp::kBrDEq: case IOp::kBrDNe: case IOp::kBrDLt:
    case IOp::kBrDLe: case IOp::kBrDGt: case IOp::kBrDGe:
      return true;
    default:
      return false;
  }
}

void Function::recompute_preds() {
  for (auto& b : blocks) b.preds.clear();
  for (std::size_t i = 0; i < blocks.size(); ++i)
    for (std::int32_t s : blocks[i].succs)
      blocks[s].preds.push_back(static_cast<std::int32_t>(i));
}

std::string Function::dump() const {
  std::ostringstream os;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    os << "B" << bi << ":  (succs:";
    for (auto s : blocks[bi].succs) os << " B" << s;
    os << ")\n";
    for (const IInstr& in : blocks[bi].instrs) {
      os << "  " << iop_name(in.op);
      if (in.d >= 0) os << " v" << in.d << " <-";
      if (in.a >= 0) os << " v" << in.a;
      if (in.b >= 0) os << " v" << in.b;
      if (in.c >= 0) os << " v" << in.c;
      if (!in.args.empty()) {
        os << " (";
        for (std::size_t i = 0; i < in.args.size(); ++i)
          os << (i ? ", v" : "v") << in.args[i];
        os << ")";
      }
      if (in.op == IOp::kConstD)
        os << " " << in.dimm;
      else if (in.imm != 0 || in.op == IOp::kConstI || is_cond_branch(in.op) ||
               in.op == IOp::kJmp)
        os << " #" << in.imm;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace javelin::jit
