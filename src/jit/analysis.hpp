// CFG analyses shared by the optimizer and register allocator:
// reverse postorder, dominator tree (Cooper–Harvey–Kennedy), natural loops,
// and per-block liveness (iterative bitset dataflow).
#pragma once

#include <cstdint>
#include <vector>

#include "jit/compiler.hpp"
#include "jit/ir.hpp"

namespace javelin::jit {

struct Analysis {
  std::vector<std::int32_t> rpo;        ///< Reachable blocks in RPO.
  std::vector<std::int32_t> rpo_index;  ///< Block -> RPO position (-1 = dead).
  std::vector<std::int32_t> idom;       ///< Immediate dominator (-1 = none).

  bool reachable(std::int32_t b) const { return rpo_index[b] >= 0; }
  /// True if `a` dominates `b` (reflexive).
  bool dominates(std::int32_t a, std::int32_t b) const;
};

Analysis analyze(const Function& f, CompileMeter& meter);

/// One natural loop (all back edges to the same header merged).
struct Loop {
  std::int32_t header = -1;
  std::vector<std::int32_t> blocks;  ///< Includes the header.
  bool contains(std::int32_t b) const {
    for (auto x : blocks)
      if (x == b) return true;
    return false;
  }
};

std::vector<Loop> find_loops(const Function& f, const Analysis& a,
                             CompileMeter& meter);

/// Dense per-block live-in/out vreg bitsets.
class Liveness {
 public:
  Liveness(std::size_t num_blocks, std::size_t num_vregs);

  bool live_in(std::int32_t block, std::int32_t vreg) const {
    return get(in_, block, vreg);
  }
  bool live_out(std::int32_t block, std::int32_t vreg) const {
    return get(out_, block, vreg);
  }

  friend Liveness compute_liveness(const Function& f, CompileMeter& meter);

 private:
  bool get(const std::vector<std::uint64_t>& v, std::int32_t b,
           std::int32_t r) const {
    return (v[static_cast<std::size_t>(b) * words_ + r / 64] >> (r % 64)) & 1;
  }
  std::size_t words_;
  std::vector<std::uint64_t> in_, out_;
};

Liveness compute_liveness(const Function& f, CompileMeter& meter);

}  // namespace javelin::jit
