// Compiler driver: ties translation, optimization, allocation and lowering
// together per optimization level, and reports the work performed (the basis
// of the paper's compilation-energy numbers, Fig 8).

#include "jit/analysis.hpp"
#include "jit/codegen.hpp"
#include "jit/compiler.hpp"
#include "jit/regalloc.hpp"

namespace javelin::jit {

CompileResult compile_method(const jvm::Jvm& jvm, std::int32_t method_id,
                             const CompileOptions& opts,
                             const energy::InstructionEnergyTable& table,
                             obs::TraceBuffer* trace) {
  if (opts.opt_level < 1 || opts.opt_level > 3)
    throw Error("jit: bad optimization level");

  CompileMeter meter;
  CompileResult result;

  Function f = translate_to_ir(jvm, method_id, meter);
  result.ir_instrs_before = f.num_instrs();

  if (opts.opt_level >= 3) {
    passes::inline_calls(f, jvm, opts, meter);
  }
  if (opts.opt_level >= 2) {
    // The paper's Level-2 list: CSE, loop-invariant code motion, strength
    // reduction, redundancy elimination.
    passes::local_value_numbering(f, meter);
    passes::copy_prop_dce(f, meter);
    passes::global_cse(f, meter);
    passes::copy_prop_dce(f, meter);
    passes::licm(f, meter);
    passes::local_value_numbering(f, meter);
    passes::copy_prop_dce(f, meter);
  }
  if (opts.opt_level >= 3 && opts.bounds_check_elimination) {
    result.guards_elided = passes::bounds_check_elim(
        f, meter, opts.param_facts, &result.guards_elided_interproc,
        opts.range_inbounds, &result.guards_elided_range);
  }
  result.ir_instrs_after = f.num_instrs();

  Allocation al = allocate(f, meter);
  result.program = lower_to_native(f, al, meter);
  result.program.method_id = method_id;

  result.compile_work = meter.counts();
  result.compile_energy = meter.energy(table);
  result.compile_cycles = meter.cycles();
  if (trace) {
    trace->count(obs::Counter::kJitCompiles);
    trace->count(obs::Counter::kJitIrInstrsIn,
                 static_cast<std::uint64_t>(result.ir_instrs_before));
    trace->count(obs::Counter::kJitIrInstrsOut,
                 static_cast<std::uint64_t>(result.ir_instrs_after));
  }
  return result;
}

}  // namespace javelin::jit
