// Thin adapters binding the shared CFG machinery in src/analysis to the JIT
// IR and its compile-energy meter. The algorithms live in analysis/cfg.cpp;
// these wrappers only build the adjacency graph and forward meter.work().
#include "jit/analysis.hpp"

#include <utility>

#include "analysis/cfg.hpp"

namespace javelin::jit {

bool Analysis::dominates(std::int32_t a, std::int32_t b) const {
  while (b >= 0) {
    if (a == b) return true;
    b = idom[b];
  }
  return false;
}

namespace {

analysis::Cfg make_cfg(const Function& f) {
  analysis::Cfg g;
  g.succs.reserve(f.blocks.size());
  g.preds.reserve(f.blocks.size());
  for (const Block& b : f.blocks) {
    g.succs.push_back(b.succs);
    g.preds.push_back(b.preds);
  }
  return g;
}

analysis::WorkFn metered(CompileMeter& meter) {
  return [&meter](std::uint64_t units) { meter.work(units); };
}

}  // namespace

Analysis analyze(const Function& f, CompileMeter& meter) {
  analysis::DomInfo d =
      analysis::compute_dominators(make_cfg(f), metered(meter));
  Analysis a;
  a.rpo = std::move(d.rpo);
  a.rpo_index = std::move(d.rpo_index);
  a.idom = std::move(d.idom);
  return a;
}

std::vector<Loop> find_loops(const Function& f, const Analysis& a,
                             CompileMeter& meter) {
  analysis::DomInfo d;
  d.rpo = a.rpo;
  d.rpo_index = a.rpo_index;
  d.idom = a.idom;
  std::vector<analysis::NaturalLoop> nl =
      analysis::find_natural_loops(make_cfg(f), d, metered(meter));
  std::vector<Loop> loops;
  loops.reserve(nl.size());
  for (auto& l : nl) loops.push_back(Loop{l.header, std::move(l.blocks)});
  return loops;
}

Liveness::Liveness(std::size_t num_blocks, std::size_t num_vregs)
    : words_((num_vregs + 63) / 64),
      in_(num_blocks * words_, 0),
      out_(num_blocks * words_, 0) {}

Liveness compute_liveness(const Function& f, CompileMeter& meter) {
  const std::size_t nb = f.blocks.size();
  const std::size_t nv = f.num_vregs();
  Liveness lv(nb, nv);
  const std::size_t w = (nv + 63) / 64;

  // Per-block use/def bitsets ("use" = upward-exposed use).
  std::vector<std::uint64_t> use(nb * w, 0), def(nb * w, 0);
  auto set_bit = [w](std::vector<std::uint64_t>& v, std::size_t b,
                     std::int32_t r) {
    v[b * w + static_cast<std::size_t>(r) / 64] |= 1ULL << (r % 64);
  };
  auto get_bit = [w](const std::vector<std::uint64_t>& v, std::size_t b,
                     std::int32_t r) {
    return (v[b * w + static_cast<std::size_t>(r) / 64] >> (r % 64)) & 1;
  };

  for (std::size_t b = 0; b < nb; ++b) {
    for (const IInstr& in : f.blocks[b].instrs) {
      for_each_use(in, [&](std::int32_t v) {
        if (!get_bit(def, b, v)) set_bit(use, b, v);
      });
      if (has_dest(in.op) && in.d >= 0) set_bit(def, b, in.d);
      meter.work(1);
    }
  }

  analysis::BitsetFlow flow = analysis::solve_backward_may(
      make_cfg(f), nv, use, def, metered(meter));
  lv.in_ = std::move(flow.in);
  lv.out_ = std::move(flow.out);
  return lv;
}

}  // namespace javelin::jit
