#include "jit/analysis.hpp"

#include <algorithm>

namespace javelin::jit {

bool Analysis::dominates(std::int32_t a, std::int32_t b) const {
  while (b >= 0) {
    if (a == b) return true;
    b = idom[b];
  }
  return false;
}

namespace {

void postorder(const Function& f, std::int32_t b, std::vector<char>& seen,
               std::vector<std::int32_t>& out) {
  seen[b] = 1;
  for (std::int32_t s : f.blocks[b].succs)
    if (!seen[s]) postorder(f, s, seen, out);
  out.push_back(b);
}

}  // namespace

Analysis analyze(const Function& f, CompileMeter& meter) {
  const std::size_t n = f.blocks.size();
  Analysis a;
  a.rpo_index.assign(n, -1);
  a.idom.assign(n, -1);

  std::vector<char> seen(n, 0);
  std::vector<std::int32_t> po;
  postorder(f, 0, seen, po);
  a.rpo.assign(po.rbegin(), po.rend());
  for (std::size_t i = 0; i < a.rpo.size(); ++i)
    a.rpo_index[a.rpo[i]] = static_cast<std::int32_t>(i);
  meter.work(a.rpo.size());

  // Cooper–Harvey–Kennedy iterative dominators.
  a.idom[0] = 0;
  bool changed = true;
  auto intersect = [&](std::int32_t x, std::int32_t y) {
    while (x != y) {
      while (a.rpo_index[x] > a.rpo_index[y]) x = a.idom[x];
      while (a.rpo_index[y] > a.rpo_index[x]) y = a.idom[y];
    }
    return x;
  };
  while (changed) {
    changed = false;
    for (std::int32_t b : a.rpo) {
      if (b == 0) continue;
      std::int32_t new_idom = -1;
      for (std::int32_t p : f.blocks[b].preds) {
        if (!a.reachable(p) || a.idom[p] < 0) continue;
        new_idom = new_idom < 0 ? p : intersect(p, new_idom);
      }
      if (new_idom >= 0 && a.idom[b] != new_idom) {
        a.idom[b] = new_idom;
        changed = true;
      }
      meter.work(1);
    }
  }
  a.idom[0] = -1;  // entry has no dominator
  return a;
}

std::vector<Loop> find_loops(const Function& f, const Analysis& a,
                             CompileMeter& meter) {
  std::vector<Loop> loops;
  // Back edge t -> h where h dominates t.
  for (std::size_t t = 0; t < f.blocks.size(); ++t) {
    if (!a.reachable(static_cast<std::int32_t>(t))) continue;
    for (std::int32_t h : f.blocks[t].succs) {
      if (!a.dominates(h, static_cast<std::int32_t>(t))) continue;
      // Find or create the loop for header h.
      Loop* loop = nullptr;
      for (auto& l : loops)
        if (l.header == h) loop = &l;
      if (!loop) {
        loops.push_back(Loop{h, {h}});
        loop = &loops.back();
      }
      // Walk predecessors from t up to h (natural-loop body collection).
      std::vector<std::int32_t> stack;
      if (static_cast<std::int32_t>(t) != h &&
          !loop->contains(static_cast<std::int32_t>(t))) {
        loop->blocks.push_back(static_cast<std::int32_t>(t));
        stack.push_back(static_cast<std::int32_t>(t));
      }
      while (!stack.empty()) {
        const std::int32_t b = stack.back();
        stack.pop_back();
        for (std::int32_t p : f.blocks[b].preds) {
          if (!a.reachable(p) || p == h || loop->contains(p)) continue;
          loop->blocks.push_back(p);
          stack.push_back(p);
        }
        meter.work(1);
      }
    }
  }
  // Inner loops first (fewer blocks) so LICM hoists innermost-outward.
  std::sort(loops.begin(), loops.end(), [](const Loop& x, const Loop& y) {
    return x.blocks.size() < y.blocks.size();
  });
  return loops;
}

Liveness::Liveness(std::size_t num_blocks, std::size_t num_vregs)
    : words_((num_vregs + 63) / 64),
      in_(num_blocks * words_, 0),
      out_(num_blocks * words_, 0) {}

Liveness compute_liveness(const Function& f, CompileMeter& meter) {
  const std::size_t nb = f.blocks.size();
  const std::size_t nv = f.num_vregs();
  Liveness lv(nb, nv);
  const std::size_t w = (nv + 63) / 64;

  // Per-block use/def bitsets ("use" = upward-exposed use).
  std::vector<std::uint64_t> use(nb * w, 0), def(nb * w, 0);
  auto set_bit = [w](std::vector<std::uint64_t>& v, std::size_t b,
                     std::int32_t r) {
    v[b * w + static_cast<std::size_t>(r) / 64] |= 1ULL << (r % 64);
  };
  auto get_bit = [w](const std::vector<std::uint64_t>& v, std::size_t b,
                     std::int32_t r) {
    return (v[b * w + static_cast<std::size_t>(r) / 64] >> (r % 64)) & 1;
  };

  for (std::size_t b = 0; b < nb; ++b) {
    for (const IInstr& in : f.blocks[b].instrs) {
      for_each_use(in, [&](std::int32_t v) {
        if (!get_bit(def, b, v)) set_bit(use, b, v);
      });
      if (has_dest(in.op) && in.d >= 0) set_bit(def, b, in.d);
      meter.work(1);
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = nb; bi-- > 0;) {
      // out[b] = union of in[succ]
      for (std::size_t k = 0; k < w; ++k) {
        std::uint64_t o = 0;
        for (std::int32_t s : f.blocks[bi].succs)
          o |= lv.in_[static_cast<std::size_t>(s) * w + k];
        if (o != lv.out_[bi * w + k]) {
          lv.out_[bi * w + k] = o;
          changed = true;
        }
        // in[b] = use[b] | (out[b] & ~def[b])
        const std::uint64_t i =
            use[bi * w + k] | (lv.out_[bi * w + k] & ~def[bi * w + k]);
        if (i != lv.in_[bi * w + k]) {
          lv.in_[bi * w + k] = i;
          changed = true;
        }
      }
      meter.work(1);
    }
  }
  return lv;
}

}  // namespace javelin::jit
