// IR -> native code lowering (see codegen.cpp).
#pragma once

#include "jit/compiler.hpp"
#include "jit/regalloc.hpp"

namespace javelin::jit {

/// Lower an allocated function to a native program (not yet installed).
isa::NativeProgram lower_to_native(const Function& f, const Allocation& al,
                                   CompileMeter& meter);

}  // namespace javelin::jit
