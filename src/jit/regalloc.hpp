// Linear-scan register allocation.
//
// Live intervals are derived from block-level liveness (so values live
// across loop back edges get correctly extended intervals), then the classic
// linear scan assigns the allocatable pools:
//   integer/ref vregs -> r9..r26
//   double vregs      -> f9..f13
// Vregs that do not receive a register get an 8-byte spill slot in the frame;
// codegen reloads them through reserved scratch registers.
#pragma once

#include "jit/analysis.hpp"
#include "jit/ir.hpp"

namespace javelin::jit {

struct Allocation {
  std::vector<std::int32_t> reg;    ///< vreg -> physical register, -1 = spill.
  std::vector<std::int32_t> spill;  ///< vreg -> frame offset, -1 = in reg.
  std::uint32_t frame_bytes = 0;
  std::vector<std::int32_t> order;  ///< Linearized (reachable) block order.
  std::size_t num_spilled = 0;

  bool in_reg(std::int32_t v) const { return reg[v] >= 0; }
};

Allocation allocate(const Function& f, CompileMeter& meter);

}  // namespace javelin::jit
