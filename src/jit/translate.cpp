// Bytecode -> IR translation (the "baseline compilation" every level does).
//
// Classic abstract-stack translation: basic-block leaders are found first,
// then each block is translated with a symbolic operand stack holding vregs.
// At block boundaries the stack is flushed into canonical per-depth vregs so
// all predecessors of a join point agree on where values live. Level 1 emits
// exactly this naive code (plus register allocation); higher levels clean it
// up with real optimization passes.

#include <deque>
#include <map>
#include <optional>

#include "jit/compiler.hpp"

namespace javelin::jit {

using jvm::Insn;
using jvm::MethodInfo;
using jvm::Op;
using jvm::RtClass;
using jvm::RtMethod;

namespace {

class Translator {
 public:
  Translator(const jvm::Jvm& jvm, std::int32_t method_id, CompileMeter& meter)
      : jvm_(jvm),
        m_(jvm.method(method_id)),
        mi_(*m_.info),
        rc_(jvm.cls(m_.class_id)),
        meter_(meter) {}

  Function run();

 private:
  [[noreturn]] void bail(const std::string& why) const {
    throw CompileError("jit: cannot compile " + m_.qualified_name + ": " + why);
  }

  // Locals are assigned one vreg each with a fixed kind; kind conflicts make
  // the method non-compilable (we fall back to interpretation).
  std::int32_t local_vreg(std::int32_t slot, TypeKind k) {
    if (slot < 0 || static_cast<std::size_t>(slot) >= local_kind_.size())
      bail("local index out of range");
    if (local_kind_[slot] == TypeKind::kVoid) {
      local_kind_[slot] = k;
      local_vreg_[slot] = f_.new_vreg(k);
    } else if (local_kind_[slot] != k) {
      bail("local slot reused with different kinds");
    }
    return local_vreg_[slot];
  }

  /// Canonical vreg for operand-stack depth `depth` with kind `k`.
  std::int32_t canonical(std::size_t depth, TypeKind k) {
    const auto key = std::make_pair(depth, k);
    auto it = canon_.find(key);
    if (it != canon_.end()) return it->second;
    const std::int32_t v = f_.new_vreg(k);
    canon_[key] = v;
    return v;
  }

  void push(std::int32_t vreg) { stack_.push_back(vreg); }
  std::int32_t pop(TypeKind want = TypeKind::kVoid) {
    if (stack_.empty()) bail("operand stack underflow (verifier bug?)");
    const std::int32_t v = stack_.back();
    stack_.pop_back();
    if (want != TypeKind::kVoid && f_.vreg_kinds[v] != want)
      bail("operand kind mismatch (verifier bug?)");
    return v;
  }

  IInstr& emit(IOp op) {
    cur_->instrs.push_back(IInstr{});
    cur_->instrs.back().op = op;
    cur_->instrs.back().bc_pc = cur_bc_;
    meter_.work(1);
    return cur_->instrs.back();
  }
  std::int32_t emit_const_i(std::int32_t v) {
    IInstr& in = emit(IOp::kConstI);
    in.d = f_.new_vreg(TypeKind::kInt);
    in.imm = v;
    return in.d;
  }

  /// Flush the abstract stack into canonical vregs (hazard-safe). Vregs
  /// pointed to by `protect` (e.g. already-popped branch operands) are staged
  /// through temps if a flush move would clobber them.
  void flush_stack(std::initializer_list<std::int32_t*> protect = {});
  /// Record/verify the successor's entry stack kinds and return target block.
  void note_edge(std::int32_t target_block);

  void translate_block(std::int32_t block_id);
  void translate_insn(const Insn& in, std::size_t bc_index,
                      std::int32_t block_id, bool& terminated);

  const jvm::Jvm& jvm_;
  const RtMethod& m_;
  const MethodInfo& mi_;
  const RtClass& rc_;
  CompileMeter& meter_;

  Function f_;
  Block* cur_ = nullptr;
  std::vector<std::int32_t> bc2block_;   // bytecode index -> block id (-1)
  std::vector<std::size_t> block_start_; // block id -> bytecode index
  std::vector<TypeKind> local_kind_;
  std::vector<std::int32_t> local_vreg_;
  std::map<std::pair<std::size_t, TypeKind>, std::int32_t> canon_;
  std::vector<std::int32_t> stack_;  // vregs
  std::vector<std::optional<std::vector<TypeKind>>> entry_kinds_;
  std::deque<std::int32_t> worklist_;
  std::int32_t cur_bc_ = -1;  // bytecode pc stamped onto emitted instrs
};

void Translator::flush_stack(std::initializer_list<std::int32_t*> protect) {
  // Moves dst(canonical) <- src(current), skipping identities. If a source is
  // also a destination of another pending move, stage it through a temp.
  struct Move {
    std::int32_t dst, src;
    TypeKind kind;
  };
  std::vector<Move> moves;
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    const TypeKind k = f_.vreg_kinds[stack_[i]];
    const std::int32_t dst = canonical(i, k);
    if (dst != stack_[i]) moves.push_back({dst, stack_[i], k});
  }
  // Protect already-popped values (branch operands) from being clobbered.
  for (std::int32_t* p : protect) {
    if (*p < 0) continue;
    for (const auto& mv : moves) {
      if (mv.dst == *p) {
        const TypeKind k = f_.vreg_kinds[*p];
        const std::int32_t tmp = f_.new_vreg(k);
        IInstr& in = emit(IOp::kMov);
        in.d = tmp;
        in.a = *p;
        in.kind = k;
        *p = tmp;
        break;
      }
    }
  }
  // Stage conflicting sources.
  for (auto& mv : moves) {
    for (const auto& other : moves) {
      if (&other != &mv && other.dst == mv.src) {
        const std::int32_t tmp = f_.new_vreg(mv.kind);
        IInstr& in = emit(IOp::kMov);
        in.d = tmp;
        in.a = mv.src;
        in.kind = mv.kind;
        mv.src = tmp;
        break;
      }
    }
  }
  for (const auto& mv : moves) {
    IInstr& in = emit(IOp::kMov);
    in.d = mv.dst;
    in.a = mv.src;
    in.kind = mv.kind;
  }
  // The abstract stack now lives in canonical registers.
  for (std::size_t i = 0; i < stack_.size(); ++i)
    stack_[i] = canonical(i, f_.vreg_kinds[stack_[i]]);
}

void Translator::note_edge(std::int32_t target_block) {
  std::vector<TypeKind> kinds;
  kinds.reserve(stack_.size());
  for (std::int32_t v : stack_) kinds.push_back(f_.vreg_kinds[v]);
  auto& slot = entry_kinds_[target_block];
  if (!slot.has_value()) {
    slot = std::move(kinds);
    worklist_.push_back(target_block);
  } else if (*slot != kinds) {
    bail("inconsistent stack at join (verifier bug?)");
  }
}

Function Translator::run() {
  const auto& code = mi_.code;
  if (code.empty()) bail("empty method");

  // --- find leaders ---------------------------------------------------------
  std::vector<char> leader(code.size(), 0);
  leader[0] = 1;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Insn& in = code[i];
    if (jvm::is_branch(in.op)) {
      if (in.a < 0 || static_cast<std::size_t>(in.a) >= code.size())
        bail("branch target out of range");
      leader[in.a] = 1;
      if (i + 1 < code.size()) leader[i + 1] = 1;
    } else if (jvm::ends_block(in.op) && i + 1 < code.size()) {
      leader[i + 1] = 1;
    }
    meter_.work(1);
  }

  bc2block_.assign(code.size(), -1);
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (leader[i]) {
      bc2block_[i] = static_cast<std::int32_t>(block_start_.size());
      block_start_.push_back(i);
    }
  }
  f_.blocks.resize(block_start_.size());
  entry_kinds_.resize(block_start_.size());
  f_.method_id = m_.id;
  f_.ret_kind = mi_.sig.ret;

  // --- locals & arguments -----------------------------------------------------
  local_kind_.assign(mi_.max_locals, TypeKind::kVoid);
  local_vreg_.assign(mi_.max_locals, -1);
  for (std::size_t i = 0; i < mi_.num_args(); ++i) {
    TypeKind k = mi_.arg_kind(i);
    if (k == TypeKind::kByte) k = TypeKind::kInt;
    f_.arg_vregs.push_back(local_vreg(static_cast<std::int32_t>(i), k));
  }

  // --- translate ----------------------------------------------------------------
  entry_kinds_[0] = std::vector<TypeKind>{};
  worklist_.push_back(0);
  std::vector<char> done(f_.blocks.size(), 0);
  while (!worklist_.empty()) {
    const std::int32_t b = worklist_.front();
    worklist_.pop_front();
    if (done[b]) continue;
    done[b] = 1;
    translate_block(b);
  }

  // Unreachable blocks keep an explicit terminator so the CFG stays sane.
  for (auto& blk : f_.blocks) {
    if (blk.instrs.empty()) {
      IInstr ret;
      ret.op = IOp::kRet;
      ret.a = -1;
      blk.instrs.push_back(ret);
    }
  }

  f_.recompute_preds();
  return f_;
}

void Translator::translate_block(std::int32_t block_id) {
  cur_ = &f_.blocks[block_id];
  // Materialize the entry stack from canonical vregs.
  stack_.clear();
  const auto& kinds = *entry_kinds_[block_id];
  for (std::size_t i = 0; i < kinds.size(); ++i)
    stack_.push_back(canonical(i, kinds[i]));

  const auto& code = mi_.code;
  std::size_t pc = block_start_[block_id];
  bool terminated = false;
  while (!terminated) {
    cur_bc_ = static_cast<std::int32_t>(pc);
    translate_insn(code[pc], pc, block_id, terminated);
    ++pc;
    if (!terminated && (pc >= code.size()))
      bail("control flow falls off code end (verifier bug?)");
    if (!terminated && bc2block_[pc] >= 0) {
      // Fallthrough into the next block.
      flush_stack();
      note_edge(bc2block_[pc]);
      IInstr& j = emit(IOp::kJmp);
      j.imm = bc2block_[pc];
      cur_->succs.push_back(bc2block_[pc]);
      terminated = true;
    }
  }
}

void Translator::translate_insn(const Insn& in, std::size_t bc_index,
                                std::int32_t block_id, bool& terminated) {
  (void)bc_index;
  meter_.work(4);  // decode + template selection

  auto binop_i = [&](IOp op) {
    const std::int32_t b = pop(TypeKind::kInt);
    const std::int32_t a = pop(TypeKind::kInt);
    IInstr& i = emit(op);
    i.d = f_.new_vreg(TypeKind::kInt);
    i.a = a;
    i.b = b;
    push(i.d);
  };
  auto binop_d = [&](IOp op) {
    const std::int32_t b = pop(TypeKind::kDouble);
    const std::int32_t a = pop(TypeKind::kDouble);
    IInstr& i = emit(op);
    i.d = f_.new_vreg(TypeKind::kDouble);
    i.a = a;
    i.b = b;
    push(i.d);
  };
  auto branch = [&](IOp op, std::int32_t va, std::int32_t vb) {
    flush_stack({&va, &vb});
    const std::int32_t t = bc2block_[in.a];
    note_edge(t);
    IInstr& br = emit(op);
    br.a = va;
    br.b = vb;
    br.imm = t;
    cur_->succs.push_back(t);
  };

  switch (in.op) {
    case Op::kIconst:
      push(emit_const_i(in.a));
      break;
    case Op::kDconst: {
      IInstr& i = emit(IOp::kConstD);
      i.d = f_.new_vreg(TypeKind::kDouble);
      i.dimm = rc_.cf.pool.doubles[in.a];
      push(i.d);
      break;
    }
    case Op::kAconstNull: {
      IInstr& i = emit(IOp::kConstI);
      i.d = f_.new_vreg(TypeKind::kRef);
      i.imm = 0;
      push(i.d);
      break;
    }

    case Op::kIload: push_local: {
      const TypeKind k = in.op == Op::kIload    ? TypeKind::kInt
                         : in.op == Op::kDload  ? TypeKind::kDouble
                                                : TypeKind::kRef;
      const std::int32_t lv = local_vreg(in.a, k);
      IInstr& i = emit(IOp::kMov);
      i.d = f_.new_vreg(k);
      i.a = lv;
      i.kind = k;
      push(i.d);
      break;
    }
    case Op::kDload:
    case Op::kAload:
      goto push_local;

    case Op::kIstore: store_local: {
      const TypeKind k = in.op == Op::kIstore    ? TypeKind::kInt
                         : in.op == Op::kDstore  ? TypeKind::kDouble
                                                 : TypeKind::kRef;
      const std::int32_t v = pop(k);
      const std::int32_t lv = local_vreg(in.a, k);
      IInstr& i = emit(IOp::kMov);
      i.d = lv;
      i.a = v;
      i.kind = k;
      break;
    }
    case Op::kDstore:
    case Op::kAstore:
      goto store_local;

    case Op::kPop:
      pop();
      break;
    case Op::kDup: {
      const std::int32_t v = pop();
      push(v);
      push(v);  // same vreg twice is fine: pushes are read-only copies
      break;
    }

    case Op::kIadd: binop_i(IOp::kIAdd); break;
    case Op::kIsub: binop_i(IOp::kISub); break;
    case Op::kImul: binop_i(IOp::kIMul); break;
    case Op::kIdiv: binop_i(IOp::kIDiv); break;
    case Op::kIrem: binop_i(IOp::kIRem); break;
    case Op::kIand: binop_i(IOp::kIAnd); break;
    case Op::kIor: binop_i(IOp::kIOr); break;
    case Op::kIxor: binop_i(IOp::kIXor); break;
    case Op::kIshl: binop_i(IOp::kIShl); break;
    case Op::kIshr: binop_i(IOp::kIShr); break;
    case Op::kIushr: binop_i(IOp::kIShru); break;
    case Op::kIneg: {
      const std::int32_t a = pop(TypeKind::kInt);
      IInstr& i = emit(IOp::kINeg);
      i.d = f_.new_vreg(TypeKind::kInt);
      i.a = a;
      push(i.d);
      break;
    }
    case Op::kDadd: binop_d(IOp::kDAdd); break;
    case Op::kDsub: binop_d(IOp::kDSub); break;
    case Op::kDmul: binop_d(IOp::kDMul); break;
    case Op::kDdiv: binop_d(IOp::kDDiv); break;
    case Op::kDneg: {
      const std::int32_t a = pop(TypeKind::kDouble);
      IInstr& i = emit(IOp::kDNeg);
      i.d = f_.new_vreg(TypeKind::kDouble);
      i.a = a;
      push(i.d);
      break;
    }
    case Op::kI2d: {
      const std::int32_t a = pop(TypeKind::kInt);
      IInstr& i = emit(IOp::kI2D);
      i.d = f_.new_vreg(TypeKind::kDouble);
      i.a = a;
      push(i.d);
      break;
    }
    case Op::kD2i: {
      const std::int32_t a = pop(TypeKind::kDouble);
      IInstr& i = emit(IOp::kD2I);
      i.d = f_.new_vreg(TypeKind::kInt);
      i.a = a;
      push(i.d);
      break;
    }
    case Op::kDcmp: binop_d(IOp::kDCmp);
      // kDCmp produces an int despite double operands.
      f_.vreg_kinds[stack_.back()] = TypeKind::kInt;
      break;

    case Op::kIfeq: case Op::kIfne: case Op::kIflt:
    case Op::kIfle: case Op::kIfgt: case Op::kIfge: {
      const std::int32_t a = pop(TypeKind::kInt);
      const std::int32_t zero = emit_const_i(0);
      IOp op;
      switch (in.op) {
        case Op::kIfeq: op = IOp::kBrEq; break;
        case Op::kIfne: op = IOp::kBrNe; break;
        case Op::kIflt: op = IOp::kBrLt; break;
        case Op::kIfle: op = IOp::kBrLe; break;
        case Op::kIfgt: op = IOp::kBrGt; break;
        default: op = IOp::kBrGe; break;
      }
      branch(op, a, zero);
      break;
    }
    case Op::kIfIcmpEq: case Op::kIfIcmpNe: case Op::kIfIcmpLt:
    case Op::kIfIcmpLe: case Op::kIfIcmpGt: case Op::kIfIcmpGe: {
      const std::int32_t b = pop(TypeKind::kInt);
      const std::int32_t a = pop(TypeKind::kInt);
      IOp op;
      switch (in.op) {
        case Op::kIfIcmpEq: op = IOp::kBrEq; break;
        case Op::kIfIcmpNe: op = IOp::kBrNe; break;
        case Op::kIfIcmpLt: op = IOp::kBrLt; break;
        case Op::kIfIcmpLe: op = IOp::kBrLe; break;
        case Op::kIfIcmpGt: op = IOp::kBrGt; break;
        default: op = IOp::kBrGe; break;
      }
      branch(op, a, b);
      break;
    }
    case Op::kIfNull: case Op::kIfNonNull: {
      const std::int32_t a = pop(TypeKind::kRef);
      const std::int32_t zero = emit_const_i(0);
      branch(in.op == Op::kIfNull ? IOp::kBrEq : IOp::kBrNe, a, zero);
      break;
    }
    case Op::kGoto: {
      flush_stack();
      const std::int32_t t = bc2block_[in.a];
      note_edge(t);
      IInstr& j = emit(IOp::kJmp);
      j.imm = t;
      cur_->succs.push_back(t);
      terminated = true;
      break;
    }

    case Op::kInvokeStatic:
    case Op::kInvokeVirtual: {
      const std::int32_t callee_id = rc_.pool_method_ids[in.a];
      const jvm::RtMethod& callee = jvm_.method(callee_id);
      const std::size_t nargs = callee.info->num_args();
      std::vector<std::int32_t> args(nargs);
      for (std::size_t i = nargs; i-- > 0;) args[i] = pop();
      IInstr& i = emit(in.op == Op::kInvokeStatic ? IOp::kCallStatic
                                                  : IOp::kCallVirtual);
      i.imm = callee_id;
      i.args = std::move(args);
      const TypeKind ret = callee.info->sig.ret;
      if (ret != TypeKind::kVoid) {
        i.d = f_.new_vreg(ret);
        i.kind = ret;
        push(i.d);
      }
      break;
    }
    case Op::kInvokeIntrinsic: {
      const auto id = static_cast<isa::Intrinsic>(in.a);
      const int nfp = isa::intrinsic_fp_args(id);
      const int nint = isa::intrinsic_int_args(id);
      std::vector<std::int32_t> args(static_cast<std::size_t>(nfp + nint));
      for (std::size_t i = args.size(); i-- > 0;) args[i] = pop();
      IInstr& i = emit(IOp::kIntrinsic);
      i.imm = in.a;
      i.args = std::move(args);
      const TypeKind ret = isa::intrinsic_returns_double(id)
                               ? TypeKind::kDouble
                               : TypeKind::kInt;
      i.d = f_.new_vreg(ret);
      i.kind = ret;
      push(i.d);
      break;
    }

    case Op::kReturn: {
      IInstr& i = emit(IOp::kRet);
      i.a = -1;
      terminated = true;
      break;
    }
    case Op::kIreturn: case Op::kDreturn: case Op::kAreturn: {
      const std::int32_t v = pop();
      IInstr& i = emit(IOp::kRet);
      i.a = v;
      i.kind = f_.vreg_kinds[v];
      terminated = true;
      break;
    }

    case Op::kGetField: case Op::kPutField: {
      const jvm::RtField& fld = jvm_.field(rc_.pool_field_ids[in.a]);
      if (in.op == Op::kGetField) {
        const std::int32_t obj = pop(TypeKind::kRef);
        IInstr& i = emit(IOp::kFldLoad);
        const TypeKind k =
            fld.kind == TypeKind::kByte ? TypeKind::kInt : fld.kind;
        i.d = f_.new_vreg(k);
        i.a = obj;
        i.imm = static_cast<std::int32_t>(fld.offset);
        i.kind = fld.kind;
        push(i.d);
      } else {
        const std::int32_t v = pop();
        const std::int32_t obj = pop(TypeKind::kRef);
        IInstr& i = emit(IOp::kFldStore);
        i.a = obj;
        i.b = v;
        i.imm = static_cast<std::int32_t>(fld.offset);
        i.kind = fld.kind;
      }
      break;
    }
    case Op::kGetStatic: case Op::kPutStatic: {
      const jvm::RtField& fld = jvm_.field(rc_.pool_field_ids[in.a]);
      if (in.op == Op::kGetStatic) {
        IInstr& i = emit(IOp::kStLoad);
        const TypeKind k =
            fld.kind == TypeKind::kByte ? TypeKind::kInt : fld.kind;
        i.d = f_.new_vreg(k);
        i.imm = static_cast<std::int32_t>(fld.static_addr);
        i.kind = fld.kind;
        push(i.d);
      } else {
        const std::int32_t v = pop();
        IInstr& i = emit(IOp::kStStore);
        i.a = v;
        i.imm = static_cast<std::int32_t>(fld.static_addr);
        i.kind = fld.kind;
      }
      break;
    }

    case Op::kNew: {
      IInstr& i = emit(IOp::kNewObj);
      i.d = f_.new_vreg(TypeKind::kRef);
      i.imm = rc_.pool_class_ids[in.a];
      push(i.d);
      break;
    }
    case Op::kNewArray: {
      const std::int32_t len = pop(TypeKind::kInt);
      IInstr& i = emit(IOp::kNewArr);
      i.d = f_.new_vreg(TypeKind::kRef);
      i.a = len;
      i.imm = in.a;  // element TypeKind
      push(i.d);
      break;
    }

    case Op::kIaload: case Op::kDaload: case Op::kBaload: case Op::kAaload: {
      const std::int32_t idx = pop(TypeKind::kInt);
      const std::int32_t arr = pop(TypeKind::kRef);
      IInstr& i = emit(IOp::kArrLoad);
      TypeKind ek, dk;
      switch (in.op) {
        case Op::kIaload: ek = TypeKind::kInt; dk = TypeKind::kInt; break;
        case Op::kDaload: ek = TypeKind::kDouble; dk = TypeKind::kDouble; break;
        case Op::kBaload: ek = TypeKind::kByte; dk = TypeKind::kInt; break;
        default: ek = TypeKind::kRef; dk = TypeKind::kRef; break;
      }
      i.d = f_.new_vreg(dk);
      i.a = arr;
      i.b = idx;
      i.kind = ek;
      push(i.d);
      break;
    }
    case Op::kIastore: case Op::kDastore: case Op::kBastore:
    case Op::kAastore: {
      const std::int32_t v = pop();
      const std::int32_t idx = pop(TypeKind::kInt);
      const std::int32_t arr = pop(TypeKind::kRef);
      IInstr& i = emit(IOp::kArrStore);
      i.a = arr;
      i.b = idx;
      i.c = v;
      switch (in.op) {
        case Op::kIastore: i.kind = TypeKind::kInt; break;
        case Op::kDastore: i.kind = TypeKind::kDouble; break;
        case Op::kBastore: i.kind = TypeKind::kByte; break;
        default: i.kind = TypeKind::kRef; break;
      }
      break;
    }
    case Op::kArrayLength: {
      const std::int32_t arr = pop(TypeKind::kRef);
      IInstr& i = emit(IOp::kArrLen);
      i.d = f_.new_vreg(TypeKind::kInt);
      i.a = arr;
      push(i.d);
      break;
    }

    case Op::kCount:
      bail("invalid opcode");
  }

  // Conditional branches fall through into the following block.
  if (jvm::is_branch(in.op) && in.op != Op::kGoto) {
    // The next bytecode must be a leader (we marked it).
    const std::size_t next_pc = bc_index + 1;
    const std::int32_t fall = bc2block_[next_pc];
    note_edge(fall);
    cur_->succs.push_back(fall);
    terminated = true;
  }
  (void)block_id;
}

}  // namespace

Function translate_to_ir(const jvm::Jvm& jvm, std::int32_t method_id,
                         CompileMeter& meter) {
  return Translator(jvm, method_id, meter).run();
}

std::vector<std::int32_t> collect_callees(const jvm::Jvm& jvm,
                                          std::int32_t method_id) {
  std::vector<std::int32_t> out;
  std::vector<char> seen(jvm.num_methods(), 0);
  seen[method_id] = 1;
  std::vector<std::int32_t> stack{method_id};
  while (!stack.empty()) {
    const std::int32_t id = stack.back();
    stack.pop_back();
    const jvm::RtMethod& m = jvm.method(id);
    const jvm::RtClass& rc = jvm.cls(m.class_id);
    for (const Insn& in : m.info->code) {
      if (in.op != Op::kInvokeStatic && in.op != Op::kInvokeVirtual) continue;
      const std::int32_t callee = rc.pool_method_ids[in.a];
      if (seen[callee]) continue;
      seen[callee] = 1;
      out.push_back(callee);
      stack.push_back(callee);
    }
  }
  return out;
}

}  // namespace javelin::jit
