// Lowering: allocated IR -> native code.
//
// Expands the IR's guarded memory operations into explicit null/bounds checks
// (branches to trap stubs appended at the end of the method), materializes
// double constants from a per-method literal pool addressed off r27, and
// bridges the calling convention (int/ref args in r1.., doubles in f1..).

#include <unordered_map>

#include "jit/codegen.hpp"

namespace javelin::jit {

namespace {

using isa::NInstr;
using isa::NOp;

constexpr std::int32_t kFixupTrapNull = -2;
constexpr std::int32_t kFixupTrapBounds = -3;

class Lowerer {
 public:
  Lowerer(const Function& f, const Allocation& al, CompileMeter& meter)
      : f_(f), al_(al), meter_(meter) {}

  isa::NativeProgram run();

 private:
  void emit(NOp op, std::uint8_t rd = 0, std::uint8_t ra = 0,
            std::uint8_t rb = 0, std::int32_t imm = 0) {
    prog_.code.push_back(NInstr{op, rd, ra, rb, imm});
    meter_.work(1);
  }
  void emit_branch(NOp op, std::uint8_t ra, std::uint8_t rb,
                   std::int32_t target_block) {
    fixups_.emplace_back(prog_.code.size(), target_block);
    emit(op, 0, ra, rb, 0);
  }
  /// emit() plus a pool-site marker: the memory operand is a program
  /// constant (literal pool off r27, static slot off r0), so the fused
  /// stream tier pre-resolves it to an absolute address. The marker is
  /// advisory (isa/nstream.cpp re-detects the pattern); tests cross-check.
  void emit_pool(NOp op, std::uint8_t rd, std::uint8_t ra, std::int32_t imm) {
    prog_.pool_sites.push_back(static_cast<std::uint32_t>(prog_.code.size()));
    emit(op, rd, ra, 0, imm);
  }

  std::int32_t literal(double v) {
    const auto it = lit_.find(v);
    if (it != lit_.end()) return it->second;
    prog_.literals.push_back(v);
    const auto idx = static_cast<std::int32_t>(prog_.literals.size() - 1);
    lit_[v] = idx;
    return idx;
  }

  // Operand access. `scratch` is used when the vreg is spilled.
  std::uint8_t read_int(std::int32_t v, std::uint8_t scratch) {
    if (al_.in_reg(v)) return static_cast<std::uint8_t>(al_.reg[v]);
    emit(NOp::kLdw, scratch, isa::kFrameReg, 0, al_.spill[v]);
    return scratch;
  }
  std::uint8_t read_fp(std::int32_t v, std::uint8_t scratch) {
    if (al_.in_reg(v)) return static_cast<std::uint8_t>(al_.reg[v]);
    emit(NOp::kLdd, scratch, isa::kFrameReg, 0, al_.spill[v]);
    return scratch;
  }
  /// Register to compute an int result into.
  std::uint8_t out_int(std::int32_t v, std::uint8_t scratch = isa::kScratch2) {
    return al_.in_reg(v) ? static_cast<std::uint8_t>(al_.reg[v]) : scratch;
  }
  std::uint8_t out_fp(std::int32_t v, std::uint8_t scratch = isa::kFScratch1) {
    return al_.in_reg(v) ? static_cast<std::uint8_t>(al_.reg[v]) : scratch;
  }
  void store_int(std::int32_t v, std::uint8_t from) {
    if (!al_.in_reg(v)) emit(NOp::kStw, from, isa::kFrameReg, 0, al_.spill[v]);
  }
  void store_fp(std::int32_t v, std::uint8_t from) {
    if (!al_.in_reg(v)) emit(NOp::kStd, from, isa::kFrameReg, 0, al_.spill[v]);
  }

  bool is_fp(std::int32_t v) const {
    return f_.vreg_kinds[v] == TypeKind::kDouble;
  }

  void lower_instr(const IInstr& in, std::int32_t block,
                   std::int32_t order_pos);
  void lower_call(const IInstr& in);
  void lower_arr_load(const IInstr& in);
  void lower_arr_store(const IInstr& in);
  /// Null-check + bounds-check (unless `skip_guards`); leaves the element
  /// address in kScratch2.
  void emit_array_addr(std::int32_t arr, std::int32_t idx, TypeKind elem,
                       bool skip_guards);

  const Function& f_;
  const Allocation& al_;
  CompileMeter& meter_;
  isa::NativeProgram prog_;
  std::vector<std::int32_t> block_at_;  // block -> native index
  std::vector<std::pair<std::size_t, std::int32_t>> fixups_;
  std::unordered_map<double, std::int32_t> lit_;
};

NOp int_binop(IOp op) {
  switch (op) {
    case IOp::kIAdd: return NOp::kAdd;
    case IOp::kISub: return NOp::kSub;
    case IOp::kIMul: return NOp::kMul;
    case IOp::kIDiv: return NOp::kDiv;
    case IOp::kIRem: return NOp::kRem;
    case IOp::kIAnd: return NOp::kAnd;
    case IOp::kIOr: return NOp::kOr;
    case IOp::kIXor: return NOp::kXor;
    case IOp::kIShl: return NOp::kShl;
    case IOp::kIShr: return NOp::kShr;
    case IOp::kIShru: return NOp::kShru;
    default: throw Error("codegen: not an int binop");
  }
}

NOp fp_binop(IOp op) {
  switch (op) {
    case IOp::kDAdd: return NOp::kFadd;
    case IOp::kDSub: return NOp::kFsub;
    case IOp::kDMul: return NOp::kFmul;
    case IOp::kDDiv: return NOp::kFdiv;
    default: throw Error("codegen: not an fp binop");
  }
}

NOp cond_branch(IOp op) {
  switch (op) {
    case IOp::kBrEq: case IOp::kBrDEq: return NOp::kBeq;
    case IOp::kBrNe: case IOp::kBrDNe: return NOp::kBne;
    case IOp::kBrLt: case IOp::kBrDLt: return NOp::kBlt;
    case IOp::kBrLe: case IOp::kBrDLe: return NOp::kBle;
    case IOp::kBrGt: case IOp::kBrDGt: return NOp::kBgt;
    case IOp::kBrGe: case IOp::kBrDGe: return NOp::kBge;
    default: throw Error("codegen: not a branch");
  }
}

void Lowerer::emit_array_addr(std::int32_t arr, std::int32_t idx,
                              TypeKind elem, bool skip_guards) {
  const std::uint8_t ra = read_int(arr, isa::kScratch0);
  const std::uint8_t ri = read_int(idx, isa::kScratch1);
  if (!skip_guards) {
    emit_branch(NOp::kBeq, ra, isa::kZeroReg, kFixupTrapNull);
    emit(NOp::kLdw, isa::kScratch2, ra, 0, 4);  // length
    emit_branch(NOp::kBlt, ri, isa::kZeroReg, kFixupTrapBounds);
    emit_branch(NOp::kBge, ri, isa::kScratch2, kFixupTrapBounds);
  }
  switch (type_width(elem)) {
    case 1:
      emit(NOp::kMov, isa::kScratch2, ri);
      break;
    case 4:
      emit(NOp::kShli, isa::kScratch2, ri, 0, 2);
      break;
    default:
      emit(NOp::kShli, isa::kScratch2, ri, 0, 3);
      break;
  }
  emit(NOp::kAdd, isa::kScratch2, ra, isa::kScratch2);
  // Element address = kScratch2 + kArrHeaderBytes (folded into the access).
}

void Lowerer::lower_arr_load(const IInstr& in) {
  emit_array_addr(in.a, in.b, in.kind, in.skip_guards);
  const std::int32_t hdr = static_cast<std::int32_t>(jvm::kArrHeaderBytes);
  if (in.kind == TypeKind::kDouble) {
    const std::uint8_t w = out_fp(in.d);
    emit(NOp::kLdd, w, isa::kScratch2, 0, hdr);
    store_fp(in.d, w);
  } else if (in.kind == TypeKind::kByte) {
    const std::uint8_t w = out_int(in.d, isa::kScratch0);
    emit(NOp::kLdb, w, isa::kScratch2, 0, hdr);
    store_int(in.d, w);
  } else {
    const std::uint8_t w = out_int(in.d, isa::kScratch0);
    emit(NOp::kLdw, w, isa::kScratch2, 0, hdr);
    store_int(in.d, w);
  }
}

void Lowerer::lower_arr_store(const IInstr& in) {
  emit_array_addr(in.a, in.b, in.kind, in.skip_guards);
  const std::int32_t hdr = static_cast<std::int32_t>(jvm::kArrHeaderBytes);
  if (in.kind == TypeKind::kDouble) {
    const std::uint8_t rv = read_fp(in.c, isa::kFScratch0);
    emit(NOp::kStd, rv, isa::kScratch2, 0, hdr);
  } else if (in.kind == TypeKind::kByte) {
    const std::uint8_t rv = read_int(in.c, isa::kScratch0);
    emit(NOp::kStb, rv, isa::kScratch2, 0, hdr);
  } else {
    const std::uint8_t rv = read_int(in.c, isa::kScratch0);
    emit(NOp::kStw, rv, isa::kScratch2, 0, hdr);
  }
}

void Lowerer::lower_call(const IInstr& in) {
  // Marshal arguments into the argument registers. Allocated registers are
  // from the temp pools, so the argument registers are free to write.
  std::uint8_t next_int = isa::kFirstArgReg;
  std::uint8_t next_fp = isa::kFFirstArgReg;
  for (std::int32_t v : in.args) {
    if (is_fp(v)) {
      const std::uint8_t r = read_fp(v, isa::kFScratch0);
      emit(NOp::kFmov, next_fp++, r);
    } else {
      const std::uint8_t r = read_int(v, isa::kScratch0);
      emit(NOp::kMov, next_int++, r);
    }
  }
  switch (in.op) {
    case IOp::kCallStatic:
      emit(NOp::kCall, 0, 0, 0, in.imm);
      break;
    case IOp::kCallVirtual:
      emit(NOp::kCallv, 0, 0, 0, in.imm);
      break;
    case IOp::kIntrinsic: {
      const auto id = static_cast<isa::Intrinsic>(in.imm);
      if (isa::intrinsic_returns_double(id)) {
        const std::uint8_t w = out_fp(in.d);
        emit(NOp::kIntrD, w, 0, 0, in.imm);
        store_fp(in.d, w);
      } else {
        const std::uint8_t w = out_int(in.d, isa::kScratch0);
        emit(NOp::kIntrI, w, 0, 0, in.imm);
        store_int(in.d, w);
      }
      return;
    }
    default:
      throw Error("codegen: bad call op");
  }
  if (in.d >= 0) {
    if (is_fp(in.d)) {
      if (al_.in_reg(in.d))
        emit(NOp::kFmov, static_cast<std::uint8_t>(al_.reg[in.d]),
             isa::kFRetReg);
      else
        store_fp(in.d, isa::kFRetReg);
    } else {
      if (al_.in_reg(in.d))
        emit(NOp::kMov, static_cast<std::uint8_t>(al_.reg[in.d]),
             isa::kRetReg);
      else
        store_int(in.d, isa::kRetReg);
    }
  }
}

void Lowerer::lower_instr(const IInstr& in, std::int32_t block,
                          std::int32_t order_pos) {
  switch (in.op) {
    case IOp::kConstI: {
      const std::uint8_t w = out_int(in.d, isa::kScratch0);
      emit(NOp::kMovi, w, 0, 0, in.imm);
      store_int(in.d, w);
      break;
    }
    case IOp::kConstD: {
      const std::uint8_t w = out_fp(in.d);
      emit_pool(NOp::kLdd, w, isa::kLiteralBaseReg, literal(in.dimm) * 8);
      store_fp(in.d, w);
      break;
    }
    case IOp::kMov: {
      if (is_fp(in.d)) {
        const std::uint8_t r = read_fp(in.a, isa::kFScratch0);
        if (al_.in_reg(in.d))
          emit(NOp::kFmov, static_cast<std::uint8_t>(al_.reg[in.d]), r);
        else
          store_fp(in.d, r);
      } else {
        const std::uint8_t r = read_int(in.a, isa::kScratch0);
        if (al_.in_reg(in.d))
          emit(NOp::kMov, static_cast<std::uint8_t>(al_.reg[in.d]), r);
        else
          store_int(in.d, r);
      }
      break;
    }

    case IOp::kIAdd: case IOp::kISub: case IOp::kIMul: case IOp::kIDiv:
    case IOp::kIRem: case IOp::kIAnd: case IOp::kIOr: case IOp::kIXor:
    case IOp::kIShl: case IOp::kIShr: case IOp::kIShru: {
      const std::uint8_t ra = read_int(in.a, isa::kScratch0);
      const std::uint8_t rb = read_int(in.b, isa::kScratch1);
      const std::uint8_t w = out_int(in.d, isa::kScratch0);
      emit(int_binop(in.op), w, ra, rb);
      store_int(in.d, w);
      break;
    }
    case IOp::kINeg: {
      const std::uint8_t ra = read_int(in.a, isa::kScratch0);
      const std::uint8_t w = out_int(in.d, isa::kScratch0);
      emit(NOp::kSub, w, isa::kZeroReg, ra);
      store_int(in.d, w);
      break;
    }
    case IOp::kDAdd: case IOp::kDSub: case IOp::kDMul: case IOp::kDDiv: {
      const std::uint8_t ra = read_fp(in.a, isa::kFScratch0);
      const std::uint8_t rb = read_fp(in.b, isa::kFScratch1);
      const std::uint8_t w = out_fp(in.d, isa::kFScratch0);
      emit(fp_binop(in.op), w, ra, rb);
      store_fp(in.d, w);
      break;
    }
    case IOp::kDNeg: {
      const std::uint8_t ra = read_fp(in.a, isa::kFScratch0);
      const std::uint8_t w = out_fp(in.d, isa::kFScratch0);
      emit(NOp::kFneg, w, ra);
      store_fp(in.d, w);
      break;
    }
    case IOp::kI2D: {
      const std::uint8_t ra = read_int(in.a, isa::kScratch0);
      const std::uint8_t w = out_fp(in.d);
      emit(NOp::kI2d, w, ra);
      store_fp(in.d, w);
      break;
    }
    case IOp::kD2I: {
      const std::uint8_t ra = read_fp(in.a, isa::kFScratch0);
      const std::uint8_t w = out_int(in.d, isa::kScratch0);
      emit(NOp::kD2i, w, ra);
      store_int(in.d, w);
      break;
    }
    case IOp::kDCmp: {
      const std::uint8_t ra = read_fp(in.a, isa::kFScratch0);
      const std::uint8_t rb = read_fp(in.b, isa::kFScratch1);
      const std::uint8_t w = out_int(in.d, isa::kScratch0);
      emit(NOp::kFcmp, w, ra, rb);
      store_int(in.d, w);
      break;
    }

    case IOp::kArrLoad:
      lower_arr_load(in);
      break;
    case IOp::kArrStore:
      lower_arr_store(in);
      break;
    case IOp::kArrLen: {
      const std::uint8_t ra = read_int(in.a, isa::kScratch0);
      if (!in.skip_guards)
        emit_branch(NOp::kBeq, ra, isa::kZeroReg, kFixupTrapNull);
      const std::uint8_t w = out_int(in.d, isa::kScratch1);
      emit(NOp::kLdw, w, ra, 0, 4);
      store_int(in.d, w);
      break;
    }
    case IOp::kFldLoad: {
      const std::uint8_t ra = read_int(in.a, isa::kScratch0);
      if (!in.skip_guards)
        emit_branch(NOp::kBeq, ra, isa::kZeroReg, kFixupTrapNull);
      if (in.kind == TypeKind::kDouble) {
        const std::uint8_t w = out_fp(in.d);
        emit(NOp::kLdd, w, ra, 0, in.imm);
        store_fp(in.d, w);
      } else if (in.kind == TypeKind::kByte) {
        const std::uint8_t w = out_int(in.d, isa::kScratch1);
        emit(NOp::kLdb, w, ra, 0, in.imm);
        store_int(in.d, w);
      } else {
        const std::uint8_t w = out_int(in.d, isa::kScratch1);
        emit(NOp::kLdw, w, ra, 0, in.imm);
        store_int(in.d, w);
      }
      break;
    }
    case IOp::kFldStore: {
      const std::uint8_t ra = read_int(in.a, isa::kScratch0);
      if (!in.skip_guards)
        emit_branch(NOp::kBeq, ra, isa::kZeroReg, kFixupTrapNull);
      if (in.kind == TypeKind::kDouble) {
        const std::uint8_t rv = read_fp(in.b, isa::kFScratch0);
        emit(NOp::kStd, rv, ra, 0, in.imm);
      } else if (in.kind == TypeKind::kByte) {
        const std::uint8_t rv = read_int(in.b, isa::kScratch1);
        emit(NOp::kStb, rv, ra, 0, in.imm);
      } else {
        const std::uint8_t rv = read_int(in.b, isa::kScratch1);
        emit(NOp::kStw, rv, ra, 0, in.imm);
      }
      break;
    }
    case IOp::kStLoad: {
      if (in.kind == TypeKind::kDouble) {
        const std::uint8_t w = out_fp(in.d);
        emit_pool(NOp::kLdd, w, isa::kZeroReg, in.imm);
        store_fp(in.d, w);
      } else {
        const std::uint8_t w = out_int(in.d, isa::kScratch0);
        emit_pool(in.kind == TypeKind::kByte ? NOp::kLdb : NOp::kLdw, w,
                  isa::kZeroReg, in.imm);
        store_int(in.d, w);
      }
      break;
    }
    case IOp::kStStore: {
      if (in.kind == TypeKind::kDouble) {
        const std::uint8_t rv = read_fp(in.a, isa::kFScratch0);
        emit_pool(NOp::kStd, rv, isa::kZeroReg, in.imm);
      } else {
        const std::uint8_t rv = read_int(in.a, isa::kScratch0);
        emit_pool(in.kind == TypeKind::kByte ? NOp::kStb : NOp::kStw, rv,
                  isa::kZeroReg, in.imm);
      }
      break;
    }

    case IOp::kNewArr: {
      const std::uint8_t ra = read_int(in.a, isa::kScratch0);
      const std::uint8_t w = out_int(in.d, isa::kScratch1);
      emit(NOp::kRtNewArr, w, ra, 0, in.imm);
      store_int(in.d, w);
      break;
    }
    case IOp::kNewObj: {
      const std::uint8_t w = out_int(in.d, isa::kScratch0);
      emit(NOp::kRtNewObj, w, 0, 0, in.imm);
      store_int(in.d, w);
      break;
    }

    case IOp::kCallStatic: case IOp::kCallVirtual: case IOp::kIntrinsic:
      lower_call(in);
      break;

    case IOp::kBrEq: case IOp::kBrNe: case IOp::kBrLt:
    case IOp::kBrLe: case IOp::kBrGt: case IOp::kBrGe: {
      const std::uint8_t ra = read_int(in.a, isa::kScratch0);
      const std::uint8_t rb = read_int(in.b, isa::kScratch1);
      emit_branch(cond_branch(in.op), ra, rb, in.imm);
      // Explicit jump to the fallthrough successor unless it is next.
      std::int32_t fall = -1;
      for (std::int32_t s : f_.blocks[block].succs)
        if (s != in.imm) fall = s;
      if (fall < 0) fall = in.imm;
      const bool next_is_fall =
          order_pos + 1 < static_cast<std::int32_t>(al_.order.size()) &&
          al_.order[order_pos + 1] == fall;
      if (!next_is_fall) {
        fixups_.emplace_back(prog_.code.size(), fall);
        emit(NOp::kJmp);
      }
      break;
    }
    case IOp::kBrDEq: case IOp::kBrDNe: case IOp::kBrDLt:
    case IOp::kBrDLe: case IOp::kBrDGt: case IOp::kBrDGe: {
      const std::uint8_t ra = read_fp(in.a, isa::kFScratch0);
      const std::uint8_t rb = read_fp(in.b, isa::kFScratch1);
      emit(NOp::kFcmp, isa::kScratch2, ra, rb);
      emit_branch(cond_branch(in.op), isa::kScratch2, isa::kZeroReg, in.imm);
      std::int32_t fall = -1;
      for (std::int32_t s : f_.blocks[block].succs)
        if (s != in.imm) fall = s;
      if (fall < 0) fall = in.imm;
      const bool next_is_fall =
          order_pos + 1 < static_cast<std::int32_t>(al_.order.size()) &&
          al_.order[order_pos + 1] == fall;
      if (!next_is_fall) {
        fixups_.emplace_back(prog_.code.size(), fall);
        emit(NOp::kJmp);
      }
      break;
    }
    case IOp::kJmp: {
      const bool next_is_target =
          order_pos + 1 < static_cast<std::int32_t>(al_.order.size()) &&
          al_.order[order_pos + 1] == in.imm;
      if (!next_is_target) {
        fixups_.emplace_back(prog_.code.size(), in.imm);
        emit(NOp::kJmp);
      }
      break;
    }
    case IOp::kRet: {
      if (in.a >= 0) {
        if (is_fp(in.a)) {
          const std::uint8_t r = read_fp(in.a, isa::kFScratch0);
          emit(NOp::kFmov, isa::kFRetReg, r);
        } else {
          const std::uint8_t r = read_int(in.a, isa::kScratch0);
          emit(NOp::kMov, isa::kRetReg, r);
        }
      }
      emit(NOp::kRet);
      break;
    }
  }
}

isa::NativeProgram Lowerer::run() {
  block_at_.assign(f_.blocks.size(), -1);
  prog_.method_id = f_.method_id;
  prog_.spill_bytes = al_.frame_bytes;

  // Entry: move incoming arguments to their allocated homes. Sources
  // (r1../f1..) and destinations (temp pools / spill slots) are disjoint.
  {
    std::uint8_t next_int = isa::kFirstArgReg;
    std::uint8_t next_fp = isa::kFFirstArgReg;
    for (std::int32_t v : f_.arg_vregs) {
      if (is_fp(v)) {
        const std::uint8_t src = next_fp++;
        if (al_.in_reg(v))
          emit(NOp::kFmov, static_cast<std::uint8_t>(al_.reg[v]), src);
        else if (al_.spill[v] >= 0)
          emit(NOp::kStd, src, isa::kFrameReg, 0, al_.spill[v]);
      } else {
        const std::uint8_t src = next_int++;
        if (al_.in_reg(v))
          emit(NOp::kMov, static_cast<std::uint8_t>(al_.reg[v]), src);
        else if (al_.spill[v] >= 0)
          emit(NOp::kStw, src, isa::kFrameReg, 0, al_.spill[v]);
      }
    }
  }

  for (std::size_t oi = 0; oi < al_.order.size(); ++oi) {
    const std::int32_t b = al_.order[oi];
    block_at_[b] = static_cast<std::int32_t>(prog_.code.size());
    for (const IInstr& in : f_.blocks[b].instrs)
      lower_instr(in, b, static_cast<std::int32_t>(oi));
  }

  // Trap stubs.
  std::int32_t trap_null = -1, trap_bounds = -1;
  for (const auto& [at, target] : fixups_) {
    if (target == kFixupTrapNull && trap_null < 0) {
      trap_null = static_cast<std::int32_t>(prog_.code.size());
      emit(NOp::kTrap, 0, 0, 0,
           static_cast<std::int32_t>(isa::TrapCode::kNullPointer));
    } else if (target == kFixupTrapBounds && trap_bounds < 0) {
      trap_bounds = static_cast<std::int32_t>(prog_.code.size());
      emit(NOp::kTrap, 0, 0, 0,
           static_cast<std::int32_t>(isa::TrapCode::kArrayBounds));
    }
  }

  for (const auto& [at, target] : fixups_) {
    std::int32_t resolved;
    if (target == kFixupTrapNull)
      resolved = trap_null;
    else if (target == kFixupTrapBounds)
      resolved = trap_bounds;
    else
      resolved = block_at_.at(target);
    if (resolved < 0) throw Error("codegen: unresolved branch target");
    prog_.code[at].imm = resolved;
  }

  return std::move(prog_);
}

}  // namespace

isa::NativeProgram lower_to_native(const Function& f, const Allocation& al,
                                   CompileMeter& meter) {
  return Lowerer(f, al, meter).run();
}

}  // namespace javelin::jit
