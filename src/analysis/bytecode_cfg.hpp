// Basic-block decomposition of verified mini-JVM bytecode.
//
// Leaders are instruction 0, every branch target, and every instruction
// following a branch or block terminator. The resulting `Cfg` plugs directly
// into the shared dominator/loop/dataflow machinery in analysis/cfg.hpp.
// Inputs are assumed verified (targets in range, no falling off the end);
// build_bytecode_cfg() tolerates hostile inputs only enough to not crash.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"
#include "jvm/opcodes.hpp"

namespace javelin::analysis {

/// Half-open instruction range [begin, end) of one basic block.
struct BytecodeBlock {
  std::int32_t begin = 0;
  std::int32_t end = 0;
};

struct BytecodeCfg {
  std::vector<BytecodeBlock> blocks;    ///< In bytecode order; block 0 = entry.
  std::vector<std::int32_t> block_of;   ///< Instruction index -> block index.
  Cfg graph;                            ///< Successor/predecessor adjacency.

  std::size_t num_blocks() const { return blocks.size(); }
};

/// Split `code` into basic blocks. Empty code yields an empty CFG.
/// Successor order is fallthrough first, then branch target (mirroring the
/// interpreter's `next` computation) — deterministic for a given method.
BytecodeCfg build_bytecode_cfg(const std::vector<jvm::Insn>& code);

}  // namespace javelin::analysis
