#include "analysis/bytecode_cfg.hpp"

namespace javelin::analysis {

using jvm::Insn;
using jvm::Op;

BytecodeCfg build_bytecode_cfg(const std::vector<Insn>& code) {
  BytecodeCfg cfg;
  const std::size_t n = code.size();
  if (n == 0) return cfg;

  // Mark leaders.
  std::vector<char> leader(n, 0);
  leader[0] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const Insn& in = code[i];
    if (jvm::is_branch(in.op)) {
      if (in.a >= 0 && static_cast<std::size_t>(in.a) < n) leader[in.a] = 1;
      if (i + 1 < n) leader[i + 1] = 1;
    } else if (jvm::ends_block(in.op)) {
      if (i + 1 < n) leader[i + 1] = 1;
    }
  }

  // Carve blocks and index instructions.
  cfg.block_of.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i])
      cfg.blocks.push_back(BytecodeBlock{static_cast<std::int32_t>(i),
                                         static_cast<std::int32_t>(i)});
    cfg.block_of[i] = static_cast<std::int32_t>(cfg.blocks.size() - 1);
    cfg.blocks.back().end = static_cast<std::int32_t>(i + 1);
  }

  // Edges. Fallthrough first, then branch target (interpreter order).
  cfg.graph.succs.assign(cfg.blocks.size(), {});
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const Insn& last = code[cfg.blocks[b].end - 1];
    auto add = [&](std::int32_t target_insn) {
      if (target_insn >= 0 && static_cast<std::size_t>(target_insn) < n)
        cfg.graph.succs[b].push_back(cfg.block_of[target_insn]);
    };
    if (last.op == Op::kGoto) {
      add(last.a);
    } else if (jvm::is_branch(last.op)) {
      add(cfg.blocks[b].end);  // fallthrough
      add(last.a);             // taken
    } else if (!jvm::ends_block(last.op)) {
      add(cfg.blocks[b].end);  // split only by a leader: plain fallthrough
    }
  }
  cfg.graph.compute_preds();
  return cfg;
}

}  // namespace javelin::analysis
