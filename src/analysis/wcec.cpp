// Static energy-bound analysis (see wcec.hpp for the charging model and
// soundness contract).
//
// Layout: a cost accumulator shared by both tiers; the interpreter-tier
// model driven by jvm/opspec.hpp and the bytecode interval analysis; a
// native-register interval solver (same delayed-widening / edge-split /
// narrowing / trip-count scheme as intervals.cpp, but over the 32 integer
// registers of the nisa machine); and the memoized interprocedural driver.
#include "analysis/wcec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>

#include "analysis/dataflow.hpp"
#include "analysis/interval_arith.hpp"
#include "jvm/opspec.hpp"
#include "jvm/value.hpp"
#include "jvm/vm.hpp"
#include "support/error.hpp"

namespace javelin::analysis {
namespace {

using energy::InstrClass;
using jvm::Insn;
using jvm::Op;
using jvm::TypeKind;
using isa::NInstr;
using isa::NOp;
using namespace ivops;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kWidenDelay = 3;
constexpr int kNarrowPasses = 2;

/// Best-/worst-case joules of one basic block. Class charges that happen on
/// every execution land in both; DRAM (worst only: 2 accesses per D-cache
/// access, 1 per native fetch), allocation-body deltas and callee intervals
/// split the two sides.
struct Cost {
  double best = 0.0;
  double worst = 0.0;

  void cls(const energy::InstructionEnergyTable& t, InstrClass c, double n) {
    const double j = n * t.of(c);
    best += j;
    worst += j;
  }
  void cls_worst(const energy::InstructionEnergyTable& t, InstrClass c,
                 double n) {
    worst += n * t.of(c);
  }
  void dram_worst(const energy::InstructionEnergyTable& t, double accesses) {
    worst += accesses * t.main_memory;
  }
  void call(const EnergyInterval& e) {
    best += e.bcec_j;
    worst += e.wcec_j;
  }
  void fail() { worst = kInf; }
};

/// Shortest entry-to-exit path over non-negative per-block lower bounds: a
/// true lower bound on any completed execution (which is a walk from the
/// entry block to an exit block). O(V^2) scan — methods have tens of blocks.
double best_path(const std::vector<std::vector<std::int32_t>>& succs,
                 const std::vector<double>& node_cost,
                 const std::vector<char>& is_exit) {
  const std::size_t n = succs.size();
  if (n == 0) return kInf;
  std::vector<double> dist(n, kInf);
  std::vector<char> done(n, 0);
  dist[0] = node_cost[0];
  for (;;) {
    std::size_t u = n;
    for (std::size_t i = 0; i < n; ++i)
      if (!done[i] && dist[i] < kInf && (u == n || dist[i] < dist[u])) u = i;
    if (u == n) break;
    done[u] = 1;
    for (std::int32_t s : succs[u]) {
      const auto si = static_cast<std::size_t>(s);
      const double d = dist[u] + node_cost[si];
      if (d < dist[si]) dist[si] = d;
    }
  }
  double best = kInf;
  for (std::size_t i = 0; i < n; ++i)
    if (is_exit[i]) best = std::min(best, dist[i]);
  return best;
}

// ---- native-register interval analysis --------------------------------------

struct NReg {
  Interval iv = Interval::top();
  Interval len = Interval::len_top();
  bool is_array = false;
  bool non_null = false;
  /// Value-equality provenance: this register currently holds the same value
  /// as register `copy_of` (set by `mov`, cleared by any other write to
  /// either side). Branch refinement applies to the whole equality class -
  /// codegen compares a *temporary copy* of the loop-carried register, and
  /// without the class link the refinement would never reach the value that
  /// actually flows around the backedge.
  std::int8_t copy_of = -1;

  bool operator==(const NReg&) const = default;
};

struct NSt {
  bool reachable = false;
  std::array<NReg, isa::kNumIntRegs> r{};
  std::uint32_t joins = 0;
};

struct NBlock {
  std::int32_t begin = 0;
  std::int32_t end = 0;  ///< Half-open instruction range.
};

bool n_is_cond(NOp op) { return op >= NOp::kBeq && op <= NOp::kBge; }
bool n_writes_int(const NInstr& I, std::uint8_t* rd) {
  switch (I.op) {
    case NOp::kLdw: case NOp::kLdb:
    case NOp::kAdd: case NOp::kSub: case NOp::kAnd: case NOp::kOr:
    case NOp::kXor: case NOp::kShl: case NOp::kShr: case NOp::kShru:
    case NOp::kAddi: case NOp::kAndi: case NOp::kOri: case NOp::kXori:
    case NOp::kShli: case NOp::kShri: case NOp::kShrui:
    case NOp::kMovi: case NOp::kMov:
    case NOp::kMul: case NOp::kDiv: case NOp::kRem:
    case NOp::kD2i: case NOp::kFcmp:
    case NOp::kRtNewArr: case NOp::kRtNewObj:
    case NOp::kIntrI:
      *rd = I.rd;
      return true;
    case NOp::kCall:
    case NOp::kCallv:
      *rd = isa::kRetReg;  // Bridge return marshaling may write r1.
      return true;
    default:
      return false;
  }
}

/// Native CFG + register interval solver + trip counts: the nisa twin of
/// IntervalSolver. Refinement uses the same edge-split scheme; operands of
/// native conditionals are *named registers*, so synthetic edge transfers
/// refine them in place (no operand stack involved).
class NativeSolver {
 public:
  explicit NativeSolver(const isa::NativeProgram& prog) : prog_(prog) {}

  /// False = fixpoint truncated (fail closed for worst-case consumers).
  bool converged = false;
  bool reducible = false;
  std::vector<NBlock> blocks;
  std::vector<std::vector<std::int32_t>> succs;  ///< Real block graph.
  std::vector<char> is_exit;        ///< Can leave to "done" (ret / fall off).
  std::vector<double> block_count;  ///< Per real block; inf when unbounded.
  std::vector<NSt> in;              ///< Narrowed in-state per real block.

  /// Install the entry-block in-state (argument-register facts) before run().
  void seed_entry(NSt e) { entry_ = std::move(e); }
  void run();
  /// Apply one instruction's transfer to `s` (public so the cost walk can
  /// replay a block from its in-state while reading intermediate facts).
  void step(NSt& s, const NInstr& I) const;

 private:
  struct SynEdge {
    std::int32_t block = 0;
    std::int8_t taken = -1;
  };

  static void wr(NSt& s, std::uint8_t rd, NReg v) {
    if (rd == 0) return;  // r0 stays hardwired zero.
    // Registers copying the old rd value are still equal to *each other*:
    // promote the first to class root and repoint the rest at it.
    std::int8_t heir = -1;
    for (std::size_t x = 1; x < s.r.size(); ++x) {
      if (x == rd || s.r[x].copy_of != static_cast<std::int8_t>(rd)) continue;
      if (heir < 0) {
        heir = static_cast<std::int8_t>(x);
        s.r[x].copy_of = -1;
      } else {
        s.r[x].copy_of = heir;
      }
    }
    s.r[rd] = v;
  }
  static NReg int_reg(Interval iv) {
    NReg v;
    v.iv = iv;
    return v;
  }

  bool join_st(NSt& into, const NSt& from, bool count_joins) const;
  void refine_edge(NSt& s, const NInstr& I, bool taken) const;
  NSt transfer_node(std::int32_t node, const NSt& st) const;
  double loop_trips(const NaturalLoop& loop,
                    const std::vector<NaturalLoop>& loops,
                    const DomInfo& dom) const;

  const isa::NativeProgram& prog_;
  Cfg aug_;
  std::vector<SynEdge> syn_;
  std::int32_t nblocks_ = 0;
  NSt entry_;
  WidenThresholds thr_;  ///< Widening landmarks (see interval_arith.hpp).
};

bool NativeSolver::join_st(NSt& into, const NSt& from, bool count_joins) const {
  if (!from.reachable) return false;
  if (!into.reachable) {
    into = from;
    into.joins = 0;
    return true;
  }
  bool widen = false;
  if (count_joins) {
    ++into.joins;
    widen = into.joins > kWidenDelay;
  }
  bool ch = false;
  for (std::size_t i = 1; i < into.r.size(); ++i) {
    NReg& a = into.r[i];
    const NReg& b = from.r[i];
    const NReg old = a;
    a.iv = Interval::hull(a.iv, b.iv);
    a.len = Interval::hull(a.len, b.len);
    if (widen) {
      if (a.iv.lo < old.iv.lo) a.iv.lo = thr_.widen_lo(a.iv.lo);
      if (a.iv.hi > old.iv.hi) a.iv.hi = thr_.widen_hi(a.iv.hi);
      if (a.len.lo < old.len.lo) a.len.lo = 0;
      if (a.len.hi > old.len.hi) a.len.hi = thr_.widen_hi(a.len.hi);
    }
    a.is_array = a.is_array && b.is_array;
    a.non_null = a.non_null && b.non_null;
    if (a.copy_of != b.copy_of) a.copy_of = -1;
    ch = ch || a != old;
  }
  return ch;
}

void NativeSolver::step(NSt& s, const NInstr& I) const {
  switch (I.op) {
    case NOp::kLdw: {
      NReg out;
      out.iv = Interval::top();
      // Array-length load: `ldw rd, [ra + 4]` off a known array base.
      const NReg& a = s.r[I.ra];
      if (I.rb == 0 && I.imm == 4 && a.is_array)
        out.iv = a.len.meet(Interval::len_top());
      wr(s, I.rd, out);
      break;
    }
    case NOp::kLdb:
      wr(s, I.rd, int_reg({0, 255}));
      break;
    case NOp::kAdd:
      wr(s, I.rd, int_reg(add_iv(s.r[I.ra].iv, s.r[I.rb].iv)));
      break;
    case NOp::kSub:
      wr(s, I.rd, int_reg(sub_iv(s.r[I.ra].iv, s.r[I.rb].iv)));
      break;
    case NOp::kAnd:
      wr(s, I.rd, int_reg(and_iv(s.r[I.ra].iv, s.r[I.rb].iv)));
      break;
    case NOp::kOr:
    case NOp::kXor:
      wr(s, I.rd, int_reg(orx_iv(s.r[I.ra].iv, s.r[I.rb].iv)));
      break;
    case NOp::kShl: {
      const Interval b = s.r[I.rb].iv;
      Interval r = Interval::top();
      if (b.singleton() && b.lo >= 0 && b.lo <= 31)
        r = mul_iv(s.r[I.ra].iv, Interval::constant(std::int64_t{1} << b.lo));
      wr(s, I.rd, int_reg(r));
      break;
    }
    case NOp::kShr: {
      const Interval a = s.r[I.ra].iv, b = s.r[I.rb].iv;
      Interval r = Interval::top();
      if (b.singleton() && b.lo >= 0 && b.lo <= 31)
        r = {a.lo >> b.lo, a.hi >> b.lo};
      wr(s, I.rd, int_reg(r));
      break;
    }
    case NOp::kShru: {
      const Interval a = s.r[I.ra].iv, b = s.r[I.rb].iv;
      Interval r = Interval::top();
      if (a.lo >= 0 && b.singleton() && b.lo >= 0 && b.lo <= 31)
        r = {a.lo >> b.lo, a.hi >> b.lo};
      else if (b.lo >= 1)
        r = {0, kMax32};
      wr(s, I.rd, int_reg(r));
      break;
    }
    case NOp::kAddi:
      wr(s, I.rd, int_reg(add_iv(s.r[I.ra].iv, Interval::constant(I.imm))));
      break;
    case NOp::kAndi:
      wr(s, I.rd, int_reg(and_iv(s.r[I.ra].iv, Interval::constant(I.imm))));
      break;
    case NOp::kOri:
    case NOp::kXori:
      wr(s, I.rd, int_reg(orx_iv(s.r[I.ra].iv, Interval::constant(I.imm))));
      break;
    case NOp::kShli: {
      const std::int64_t c = I.imm & 31;
      wr(s, I.rd, int_reg(mul_iv(s.r[I.ra].iv,
                                 Interval::constant(std::int64_t{1} << c))));
      break;
    }
    case NOp::kShri: {
      const Interval a = s.r[I.ra].iv;
      const std::int64_t c = I.imm & 31;
      wr(s, I.rd, int_reg({a.lo >> c, a.hi >> c}));
      break;
    }
    case NOp::kShrui: {
      const Interval a = s.r[I.ra].iv;
      const std::int64_t c = I.imm & 31;
      Interval r = Interval::top();
      if (a.lo >= 0)
        r = {a.lo >> c, a.hi >> c};
      else if (c >= 1)
        r = {0, kMax32};
      wr(s, I.rd, int_reg(r));
      break;
    }
    case NOp::kMovi:
      wr(s, I.rd, int_reg(Interval::constant(I.imm)));
      break;
    case NOp::kMov: {
      if (I.rd == I.ra) break;
      NReg v = s.r[I.ra];
      // Link rd into ra's equality class, anchoring at ra when ra's root is
      // the register about to be overwritten.
      std::int8_t root = v.copy_of >= 0 ? v.copy_of : static_cast<std::int8_t>(I.ra);
      if (root == static_cast<std::int8_t>(I.rd)) root = static_cast<std::int8_t>(I.ra);
      v.copy_of = root;
      wr(s, I.rd, v);
      break;
    }
    case NOp::kMul:
      wr(s, I.rd, int_reg(mul_iv(s.r[I.ra].iv, s.r[I.rb].iv)));
      break;
    case NOp::kDiv:
      wr(s, I.rd, int_reg(div_iv(s.r[I.ra].iv, s.r[I.rb].iv)));
      break;
    case NOp::kRem:
      wr(s, I.rd, int_reg(rem_iv(s.r[I.ra].iv, s.r[I.rb].iv)));
      break;
    case NOp::kD2i:
      wr(s, I.rd, int_reg(Interval::top()));
      break;
    case NOp::kFcmp:
      wr(s, I.rd, int_reg({-1, 1}));
      break;
    case NOp::kCall:
    case NOp::kCallv:
      wr(s, isa::kRetReg, NReg{});
      break;
    case NOp::kRtNewArr: {
      // Negative length traps, so normal completion clamps to >= 0; a
      // guaranteed-negative length means this path never completes.
      if (s.r[I.ra].iv.hi < 0) {
        s.reachable = false;
        break;
      }
      if (I.ra != 0) s.r[I.ra].iv = s.r[I.ra].iv.meet({0, kMax32});
      NReg out;
      out.is_array = true;
      out.non_null = true;
      out.len = s.r[I.ra].iv.meet(Interval::len_top());
      out.iv = Interval::top();
      wr(s, I.rd, out);
      break;
    }
    case NOp::kRtNewObj: {
      NReg out;
      out.non_null = true;
      out.iv = Interval::top();
      wr(s, I.rd, out);
      break;
    }
    case NOp::kIntrI:
      wr(s, I.rd, int_reg(Interval::top()));
      break;
    default:
      break;  // FP ops, stores, branches, ret, trap, nop: no int-reg effect.
  }
}

void NativeSolver::refine_edge(NSt& s, const NInstr& I, bool taken) const {
  // Effective relation on (R[ra], R[rb]) along this edge.
  enum Rel { kEq, kNe, kLt, kLe, kGt, kGe } rel;
  switch (I.op) {
    case NOp::kBeq: rel = kEq; break;
    case NOp::kBne: rel = kNe; break;
    case NOp::kBlt: rel = kLt; break;
    case NOp::kBle: rel = kLe; break;
    case NOp::kBgt: rel = kGt; break;
    case NOp::kBge: rel = kGe; break;
    default: return;
  }
  if (!taken) {
    switch (rel) {
      case kEq: rel = kNe; break;
      case kNe: rel = kEq; break;
      case kLt: rel = kGe; break;
      case kGe: rel = kLt; break;
      case kGt: rel = kLe; break;
      case kLe: rel = kGt; break;
    }
  }
  const Interval a = s.r[I.ra].iv, b = s.r[I.rb].iv;
  // Constraint each operand must satisfy on this edge (not yet intersected).
  Interval ca = Interval::top(), cb = Interval::top();
  switch (rel) {
    case kEq: ca = b; cb = a; break;
    case kNe:
      // Holes are unrepresentable; trim endpoints only. x != x (both
      // singleton, equal) is still an infeasible edge.
      if (a.singleton() && b.singleton() && a.lo == b.lo) {
        s.reachable = false;
        return;
      }
      if (b.singleton() && I.ra != 0) s.r[I.ra].iv = exclude(a, b.lo);
      if (a.singleton() && I.rb != 0) s.r[I.rb].iv = exclude(b, a.lo);
      return;
    case kLt: ca = {kMin32, b.hi - 1}; cb = {a.lo + 1, kMax32}; break;
    case kLe: ca = {kMin32, b.hi}; cb = {a.lo, kMax32}; break;
    case kGt: ca = {b.lo + 1, kMax32}; cb = {kMin32, a.hi - 1}; break;
    case kGe: ca = {b.lo, kMax32}; cb = {kMin32, a.hi}; break;
  }
  // Edge infeasible for the current approximation (a loop-exit test while
  // the counter is still at its initial value, say): drop to bottom instead
  // of leaking the contradiction into downstream joins, where widening would
  // make it permanent. The edge re-activates once the operands have grown.
  if (std::max(a.lo, ca.lo) > std::min(a.hi, ca.hi) ||
      std::max(b.lo, cb.lo) > std::min(b.hi, cb.hi)) {
    s.reachable = false;
    return;
  }
  // A refinement of one register holds for every register proven equal to it
  // (the codegen shape is `mov tmp, phi; b<cond> tmp, bound`, so the branch
  // operand is usually a copy and the loop-carried value is a class sibling).
  // A sibling whose own interval contradicts the constraint is the same
  // infeasibility in disguise.
  const auto apply = [&s](std::uint8_t reg, Interval nv) {
    const std::int8_t root =
        s.r[reg].copy_of >= 0 ? s.r[reg].copy_of : static_cast<std::int8_t>(reg);
    for (std::size_t x = 1; x < s.r.size(); ++x) {
      const std::int8_t rx =
          s.r[x].copy_of >= 0 ? s.r[x].copy_of : static_cast<std::int8_t>(x);
      if (rx != root) continue;
      const Interval r{std::max(s.r[x].iv.lo, nv.lo),
                       std::min(s.r[x].iv.hi, nv.hi)};
      if (r.lo > r.hi) {
        s.reachable = false;
        return;
      }
      s.r[x].iv = r;
    }
  };
  if (I.ra != 0) apply(I.ra, ca);
  if (s.reachable && I.rb != 0) apply(I.rb, cb);
}

NSt NativeSolver::transfer_node(std::int32_t node, const NSt& st) const {
  if (!st.reachable) return st;
  NSt s = st;
  if (node >= nblocks_) {
    const SynEdge& e = syn_[static_cast<std::size_t>(node - nblocks_)];
    const NInstr& I =
        prog_.code[static_cast<std::size_t>(blocks[e.block].end - 1)];
    if (e.taken >= 0) refine_edge(s, I, e.taken == 1);
    return s;
  }
  const NBlock& b = blocks[static_cast<std::size_t>(node)];
  for (std::int32_t i = b.begin; i < b.end && s.reachable; ++i)
    step(s, prog_.code[static_cast<std::size_t>(i)]);
  return s;
}

double NativeSolver::loop_trips(const NaturalLoop& loop,
                                const std::vector<NaturalLoop>& loops,
                                const DomInfo& dom) const {
  std::vector<std::int32_t> latches;
  for (std::int32_t p : aug_.preds[static_cast<std::size_t>(loop.header)])
    if (loop.contains(p)) latches.push_back(p);
  if (latches.empty()) return kInf;

  // A stepping site inside a loop nested strictly within `loop` executes up
  // to that inner loop's trip count per iteration of `loop`, so the
  // per-iteration excursion is NOT bounded by the sum of per-site step
  // magnitudes and the wrap-free check below would admit an int32 wrap back
  // into the header interval. Natural loops sharing a header are merged, so
  // a distinct header inside `loop` identifies a strictly-nested loop.
  auto in_nested_loop = [&](std::int32_t b) {
    for (const NaturalLoop& inner : loops) {
      if (inner.header == loop.header || !loop.contains(inner.header))
        continue;
      if (inner.contains(b)) return true;
    }
    return false;
  };

  // Net per-block effect on each register from a symbolic within-block scan:
  // sym[r] tracks "value of some register at block entry, plus a constant"
  // through mov / addi / add-with-constant / sub-with-constant chains. At the
  // block end a register is untouched (sym == itself + 0), stepped (itself +
  // c with c != 0), or clobbered (anything else). Classifying the *net*
  // effect is what sees through the JIT's `mov tmp, phi; add tmp, tmp, step;
  // mov phi, tmp` round trip: a per-instruction rule never fires on this
  // codegen because the loop-carried register is written by a plain mov.
  struct Eff {
    std::int32_t block;
    std::optional<std::int64_t> step;
  };
  struct Sym {
    std::int8_t base = -1;
    std::int64_t off = 0;
  };
  std::array<std::vector<Eff>, isa::kNumIntRegs> effects;
  for (std::int32_t bn : loop.blocks) {
    if (bn >= nblocks_) continue;
    const NBlock& b = blocks[static_cast<std::size_t>(bn)];
    NSt s = in[static_cast<std::size_t>(bn)];
    std::array<Sym, isa::kNumIntRegs> sym;
    for (std::size_t r = 0; r < sym.size(); ++r)
      sym[r] = {static_cast<std::int8_t>(r), 0};
    for (std::int32_t i = b.begin; i < b.end; ++i) {
      const NInstr& I = prog_.code[static_cast<std::size_t>(i)];
      std::uint8_t rd = 0;
      if (n_writes_int(I, &rd) && rd != 0) {
        Sym ns;  // Clobber unless a derivable copy/offset shape.
        switch (I.op) {
          case NOp::kMov:
            ns = sym[I.ra];
            break;
          case NOp::kAddi:
            if (sym[I.ra].base >= 0) ns = {sym[I.ra].base, sym[I.ra].off + I.imm};
            break;
          case NOp::kAdd: {
            const Interval ca = s.reachable ? s.r[I.ra].iv : Interval::top();
            const Interval cb = s.reachable ? s.r[I.rb].iv : Interval::top();
            if (cb.singleton() && sym[I.ra].base >= 0)
              ns = {sym[I.ra].base, sym[I.ra].off + cb.lo};
            else if (ca.singleton() && sym[I.rb].base >= 0)
              ns = {sym[I.rb].base, sym[I.rb].off + ca.lo};
            break;
          }
          case NOp::kSub: {
            const Interval cb = s.reachable ? s.r[I.rb].iv : Interval::top();
            if (cb.singleton() && sym[I.ra].base >= 0)
              ns = {sym[I.ra].base, sym[I.ra].off - cb.lo};
            break;
          }
          default:
            break;
        }
        sym[rd] = ns;
      }
      if (s.reachable) step(s, I);
    }
    for (std::size_t r = 1; r < sym.size(); ++r) {
      if (sym[r].base == static_cast<std::int8_t>(r)) {
        if (sym[r].off != 0) effects[r].push_back({bn, sym[r].off});
        // Net zero: the block leaves the register's value unchanged.
      } else {
        effects[r].push_back({bn, std::nullopt});
      }
    }
  }

  double best = kInf;
  for (std::size_t reg = 1; reg < effects.size(); ++reg) {
    const auto& ws = effects[reg];
    if (ws.empty()) continue;
    std::int64_t cmin = 0, csum = 0;
    int sign = 0;
    bool ok = true;
    for (const Eff& w : ws) {
      if (!w.step || in_nested_loop(w.block)) {
        ok = false;
        break;
      }
      const int sg = *w.step > 0 ? 1 : -1;
      if (sign == 0) sign = sg;
      if (sg != sign) {
        ok = false;
        break;
      }
      const std::int64_t mag = std::llabs(*w.step);
      cmin = cmin == 0 ? mag : std::min(cmin, mag);
      csum += mag;
    }
    if (!ok) continue;
    bool dominated = false;
    for (const Eff& w : ws) {
      bool all = true;
      for (std::int32_t t : latches)
        if (!dom.dominates(w.block, t)) {
          all = false;
          break;
        }
      if (all) {
        dominated = true;
        break;
      }
    }
    if (!dominated) continue;
    const NSt& hs = in[static_cast<std::size_t>(loop.header)];
    if (!hs.reachable) continue;
    const Interval hv = hs.r[reg].iv;
    // One iteration may execute several stepping blocks; the monotone-advance
    // argument needs the whole excursion to stay wrap-free inside [lo, hi].
    // (Each site runs at most once per iteration: blocks in nested inner
    // loops were disqualified above.)
    if (sign > 0 && hv.hi + csum > kMax32) continue;
    if (sign < 0 && hv.lo - csum < kMin32) continue;
    const double width = static_cast<double>(hv.hi - hv.lo);
    best = std::min(best, width / static_cast<double>(cmin) + 2.0);
  }
  return best;
}

void NativeSolver::run() {
  const auto& code = prog_.code;
  const auto n = static_cast<std::int32_t>(code.size());
  if (n == 0) return;

  // ---- leaders / blocks -----------------------------------------------------
  std::vector<char> leader(static_cast<std::size_t>(n), 0);
  leader[0] = 1;
  auto mark = [&](std::int32_t t) {
    if (t >= 0 && t < n) leader[static_cast<std::size_t>(t)] = 1;
  };
  for (std::int32_t i = 0; i < n; ++i) {
    const NInstr& I = code[static_cast<std::size_t>(i)];
    if (n_is_cond(I.op) || I.op == NOp::kJmp) {
      mark(I.imm);
      mark(i + 1);
    } else if (I.op == NOp::kRet || I.op == NOp::kTrap) {
      mark(i + 1);
    }
  }
  std::vector<std::int32_t> block_of(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = 0; i < n; ++i) {
    if (leader[static_cast<std::size_t>(i)]) blocks.push_back({i, i + 1});
    blocks.back().end = i + 1;
    block_of[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(blocks.size()) - 1;
  }
  nblocks_ = static_cast<std::int32_t>(blocks.size());

  // ---- successors / exits ---------------------------------------------------
  succs.assign(blocks.size(), {});
  is_exit.assign(blocks.size(), 0);
  auto succ_of = [&](std::int32_t target, std::size_t b) {
    if (target >= 0 && target < n)
      succs[b].push_back(block_of[static_cast<std::size_t>(target)]);
    else
      is_exit[b] = 1;  // Leaving the code completes the method.
  };
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const NInstr& last = code[static_cast<std::size_t>(blocks[b].end - 1)];
    if (n_is_cond(last.op)) {
      succ_of(blocks[b].end, b);  // Fallthrough first (bytecode_cfg order).
      if (last.imm != blocks[b].end) succ_of(last.imm, b);
    } else if (last.op == NOp::kJmp) {
      succ_of(last.imm, b);
    } else if (last.op == NOp::kRet) {
      is_exit[b] = 1;
    } else if (last.op == NOp::kTrap) {
      // Abnormal completion: no successors, not an exit.
    } else {
      succ_of(blocks[b].end, b);
    }
  }

  // ---- edge-split graph -----------------------------------------------------
  aug_.succs.assign(blocks.size(), std::vector<std::int32_t>{});
  for (std::int32_t b = 0; b < nblocks_; ++b) {
    const NInstr& last = code[static_cast<std::size_t>(blocks[b].end - 1)];
    const auto& ss = succs[static_cast<std::size_t>(b)];
    if (!n_is_cond(last.op)) {
      aug_.succs[static_cast<std::size_t>(b)] = ss;
      continue;
    }
    for (std::size_t i = 0; i < ss.size(); ++i) {
      const std::int8_t taken =
          ss.size() == 2 ? static_cast<std::int8_t>(i == 1 ? 1 : 0)
                         : std::int8_t{-1};
      const auto node = static_cast<std::int32_t>(aug_.succs.size());
      syn_.push_back({b, taken});
      aug_.succs[static_cast<std::size_t>(b)].push_back(node);
      aug_.succs.push_back({ss[i]});
    }
  }
  aug_.compute_preds();
  const DomInfo dom = compute_dominators(aug_);

  // ---- entry state (set by caller via `in[0]` seeding) ----------------------
  NSt entry = std::move(entry_);
  entry.reachable = true;
  entry.r[0].iv = Interval::constant(0);

  // Widening landmarks: materialized immediates plus the caller-known entry
  // facts (argument values and array lengths - the bounds counted loops run
  // to arrive in registers via `mov` chains from these).
  for (const NInstr& I : code)
    if (I.op == NOp::kMovi || I.op == NOp::kAddi) thr_.add(I.imm);
  for (const NReg& r : entry.r) {
    thr_.add_interval(r.iv);
    thr_.add_interval(r.len);
  }
  thr_.seal();

  const std::uint64_t max_transfers = 200 * aug_.succs.size() + 1000;
  auto res = solve_forward<NSt>(
      aug_, dom, entry,
      [this](NSt& into, const NSt& from) { return join_st(into, from, true); },
      [this](std::int32_t b, const NSt& st) { return transfer_node(b, st); },
      max_transfers);
  if (res.status != FixpointStatus::kConverged) {
    in.assign(blocks.size(), NSt{});
    block_count.assign(blocks.size(), kInf);
    return;
  }

  for (int pass = 0; pass < kNarrowPasses; ++pass) {
    for (std::int32_t node : dom.rpo) {
      if (node == 0) continue;
      NSt nin;
      for (std::int32_t p : aug_.preds[static_cast<std::size_t>(node)]) {
        if (!dom.reachable(p)) continue;
        join_st(nin, transfer_node(p, res.in[static_cast<std::size_t>(p)]),
                false);
      }
      res.in[static_cast<std::size_t>(node)] = std::move(nin);
    }
  }
  in.assign(res.in.begin(), res.in.begin() + nblocks_);

  reducible = true;
  for (std::size_t u = 0; u < aug_.succs.size(); ++u) {
    if (!dom.reachable(static_cast<std::int32_t>(u))) continue;
    for (std::int32_t v : aug_.succs[u])
      if (dom.reachable(v) &&
          dom.rpo_index[static_cast<std::size_t>(v)] <= dom.rpo_index[u] &&
          !dom.dominates(v, static_cast<std::int32_t>(u)))
        reducible = false;
  }
  const std::vector<NaturalLoop> loops = find_natural_loops(aug_, dom);
  std::vector<double> trips(loops.size());
  for (std::size_t i = 0; i < loops.size(); ++i)
    trips[i] = loop_trips(loops[i], loops, dom);
  block_count.assign(blocks.size(), kInf);
  for (std::int32_t b = 0; b < nblocks_; ++b) {
    if (!dom.reachable(b) || !in[static_cast<std::size_t>(b)].reachable) {
      block_count[static_cast<std::size_t>(b)] = 0.0;
      continue;
    }
    double c = 1.0;
    if (!reducible) {
      c = kInf;
    } else {
      for (std::size_t i = 0; i < loops.size(); ++i)
        if (loops[i].contains(b)) c *= trips[i];
    }
    block_count[static_cast<std::size_t>(b)] = c;
  }
  converged = true;
}

}  // namespace

WcecAnalysis::WcecAnalysis(std::vector<const jvm::ClassFile*> classes,
                           const energy::InstructionEnergyTable& table)
    : classes_(std::move(classes)), table_(table) {
  for (const jvm::ClassFile* cf : classes_) {
    resolver_.add(cf);
    for (const jvm::MethodInfo& m : cf->methods) {
      by_mi_.emplace(&m, methods_.size());
      methods_.push_back({cf, &m});
    }
  }
  // Replicate Jvm::layout_class: superclass fields first, each field aligned
  // to its width, total rounded up to 8.
  for (const jvm::ClassFile* cf : classes_) (void)obj_size_of(cf->name);
}

std::uint32_t WcecAnalysis::obj_size_of(const std::string& cls) const {
  auto& cache = const_cast<WcecAnalysis*>(this)->obj_size_;
  const auto it = cache.find(cls);
  if (it != cache.end()) return it->second;
  const jvm::ClassFile* cf = resolver_.resolve_class(cls);
  if (cf == nullptr) return 0;
  std::uint32_t offset = jvm::kObjHeaderBytes;
  if (!cf->super_name.empty()) {
    const std::uint32_t super = obj_size_of(cf->super_name);
    if (super == 0) return 0;  // Unresolved superclass: fail closed.
    offset = super;
  }
  for (const jvm::FieldInfo& fi : cf->fields) {
    if (fi.is_static) continue;
    const std::uint32_t w = jvm::type_width(fi.kind);
    offset = (offset + w - 1) & ~(w - 1);
    offset += w;
  }
  const std::uint32_t size = (offset + 7u) & ~7u;
  cache.emplace(cls, size);
  return size;
}

const WcecAnalysis::MethodCtx* WcecAnalysis::ctx_of(
    const jvm::MethodInfo* m) const {
  const auto it = by_mi_.find(m);
  return it == by_mi_.end() ? nullptr : &methods_[it->second];
}

void WcecAnalysis::bind_method(std::int32_t method_id,
                               const jvm::MethodInfo* m) {
  by_id_[method_id] = m;
}

void WcecAnalysis::set_native(int tier, const jvm::MethodInfo* m,
                              const isa::NativeProgram* prog) {
  if (tier < 1 || tier >= kNumTiers)
    throw Error("wcec: native code binds to tiers 1..3");
  native_[tier][m] = prog;
  memo_.clear();  // Configuration changed; summaries are stale.
}

EnergyInterval WcecAnalysis::bounds(std::string_view cls,
                                    std::string_view method, int tier,
                                    std::span<const ArgFact> args) {
  const jvm::MethodRef ref{std::string(cls), std::string(method)};
  const jvm::MethodInfo* m = resolver_.resolve_method(ref);
  if (m == nullptr) return {};
  return bounds(m, tier, args);
}

EnergyInterval WcecAnalysis::bounds(const jvm::MethodInfo* m, int tier,
                                    std::span<const ArgFact> args) {
  if (tier < 0 || tier >= kNumTiers) return {};
  if (args.empty()) return summary(m, tier);
  // Root query with argument facts: computed fresh (not memoized), callees
  // still resolve through the unconditioned memoized summaries.
  const auto key = std::make_pair(m, tier);
  if (on_stack_.count(key)) return {0.0, kInf};
  on_stack_.emplace(key, 1);
  const EnergyInterval r = compute(m, tier, args);
  on_stack_.erase(key);
  return r;
}

EnergyInterval WcecAnalysis::summary(const jvm::MethodInfo* m, int tier) {
  const auto key = std::make_pair(m, tier);
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  if (on_stack_.count(key)) return {0.0, kInf};  // Recursion: fail closed.
  on_stack_.emplace(key, 1);
  const EnergyInterval r = compute(m, tier, {});
  on_stack_.erase(key);
  memo_.emplace(key, r);
  return r;
}

EnergyInterval WcecAnalysis::compute(const jvm::MethodInfo* m, int tier,
                                     std::span<const ArgFact> args) {
  const MethodCtx* c = ctx_of(m);
  if (c == nullptr) return {0.0, kInf};
  if (tier >= 1) {
    const auto it = native_[tier].find(m);
    if (it != native_[tier].end() && it->second != nullptr)
      return native_bounds(*c, tier, *it->second, args);
  }
  return interp_bounds(*c, tier, args);
}

EnergyInterval WcecAnalysis::call_bounds(const jvm::MethodInfo* callee,
                                         int tier) {
  if (callee == nullptr) return {0.0, kInf};
  return summary(callee, tier);
}

EnergyInterval WcecAnalysis::virtual_bounds(const std::string& name,
                                            int tier) {
  // Superset of the dynamic-dispatch set: every non-static method with this
  // name in any loaded class (overriding preserves the name).
  EnergyInterval out{kInf, 0.0};
  bool any = false;
  for (const MethodCtx& c : methods_) {
    if (c.mi->is_static || c.mi->name != name) continue;
    const EnergyInterval e = summary(c.mi, tier);
    out.bcec_j = std::min(out.bcec_j, e.bcec_j);
    out.wcec_j = std::max(out.wcec_j, e.wcec_j);
    any = true;
  }
  if (!any) return {0.0, kInf};
  return out;
}

EnergyInterval WcecAnalysis::interp_bounds(const MethodCtx& c, int tier,
                                           std::span<const ArgFact> args) {
  const jvm::MethodInfo& m = *c.mi;
  if (m.code.empty()) return {0.0, kInf};

  // Interval facts: the memoized unconditioned run for summaries, a fresh
  // run when root argument facts are present.
  const MethodIntervals* mi;
  MethodIntervals fresh;
  if (args.empty()) {
    auto it = intervals_.find(&m);
    if (it == intervals_.end())
      it = intervals_
               .emplace(&m, analyze_intervals(*c.cf, m, &resolver_, {}))
               .first;
    mi = &it->second;
  } else {
    fresh = analyze_intervals(*c.cf, m, &resolver_, args);
    mi = &fresh;
  }

  const auto& spec = jvm::opspec::kTable;
  std::vector<Cost> cost(mi->cfg.num_blocks());
  std::vector<char> exits(mi->cfg.num_blocks(), 0);
  for (std::size_t b = 0; b < mi->cfg.num_blocks(); ++b) {
    Cost& k = cost[b];
    double ldst = 0.0;  // kLoad+kStore charges: bounds D-cache accesses.
    const BytecodeBlock& blk = mi->cfg.blocks[b];
    for (std::int32_t pc = blk.begin; pc < blk.end; ++pc) {
      const Insn& I = m.code[static_cast<std::size_t>(pc)];
      const auto& sp = spec[static_cast<std::size_t>(I.op)];
      // Fetch/decode/dispatch triple, charged for every bytecode.
      k.cls(table_, InstrClass::kLoad, 1);
      k.cls(table_, InstrClass::kAluSimple, 1);
      k.cls(table_, InstrClass::kBranch, 1);
      ldst += 1;
      // Context-free semantic charges from the opspec table.
      k.cls(table_, InstrClass::kLoad, sp.cost.loads);
      k.cls(table_, InstrClass::kStore, sp.cost.stores);
      k.cls(table_, InstrClass::kBranch, sp.cost.branches);
      k.cls(table_, InstrClass::kAluSimple, sp.cost.alu_simple);
      k.cls(table_, InstrClass::kAluComplex, sp.cost.alu_complex);
      ldst += sp.cost.loads + sp.cost.stores;
      switch (I.op) {
        case Op::kInvokeStatic:
        case Op::kInvokeVirtual: {
          if (static_cast<std::size_t>(I.a) >= c.cf->pool.methods.size()) {
            k.fail();
            break;
          }
          const jvm::MethodRef& ref =
              c.cf->pool.methods[static_cast<std::size_t>(I.a)];
          const jvm::MethodInfo* callee = resolver_.resolve_method(ref);
          if (callee == nullptr) {
            k.fail();
            break;
          }
          const double nargs = static_cast<double>(callee->num_args());
          k.cls(table_, InstrClass::kLoad, nargs);  // Argument pops.
          k.cls(table_, InstrClass::kBranch, 1);
          ldst += nargs;
          if (callee->sig.ret != TypeKind::kVoid) {
            k.cls(table_, InstrClass::kStore, 1);  // Result push.
            ldst += 1;
          }
          if (I.op == Op::kInvokeVirtual) {
            // Receiver-header load + dispatch-table loads.
            k.cls(table_, InstrClass::kLoad, 2);
            ldst += 2;
            k.call(virtual_bounds(ref.method_name, tier));
          } else {
            k.call(call_bounds(callee, tier));
          }
          break;
        }
        case Op::kInvokeIntrinsic: {
          if (I.a < 0 ||
              I.a >= static_cast<std::int32_t>(isa::Intrinsic::kCount)) {
            k.fail();
            break;
          }
          const auto id = static_cast<isa::Intrinsic>(I.a);
          const double nargs = static_cast<double>(
              isa::intrinsic_fp_args(id) + isa::intrinsic_int_args(id));
          k.cls(table_, InstrClass::kLoad, nargs);
          k.cls(table_, InstrClass::kStore, 1);
          ldst += nargs + 1;
          k.cls(table_, InstrClass::kAluComplex,
                static_cast<double>(isa::intrinsic_cost(id)));
          break;
        }
        case Op::kNew: {
          if (static_cast<std::size_t>(I.a) >= c.cf->pool.classes.size()) {
            k.fail();
            break;
          }
          const std::uint32_t sz =
              obj_size_of(c.cf->pool.classes[static_cast<std::size_t>(I.a)]);
          if (sz == 0) {
            k.fail();
            break;
          }
          const double body = (sz - jvm::kObjHeaderBytes) / 8.0;
          k.cls(table_, InstrClass::kAluSimple, 6);
          k.cls(table_, InstrClass::kStore, 1 + body);
          ldst += 1 + body;
          break;
        }
        case Op::kNewArray: {
          const auto kind = static_cast<TypeKind>(I.a);
          if (kind != TypeKind::kInt && kind != TypeKind::kDouble &&
              kind != TypeKind::kRef && kind != TypeKind::kByte) {
            k.fail();
            break;
          }
          const double w = jvm::type_width(kind);
          // Negative lengths throw, so normal completion implies len >= 0.
          const Interval L =
              (mi->converged ? mi->alloc_len[static_cast<std::size_t>(pc)]
                             : Interval::len_top())
                  .meet(Interval::len_top());
          const double lo_body =
              std::ceil(static_cast<double>(L.lo) * w / 8.0);
          const double hi_body =
              std::ceil(static_cast<double>(L.hi) * w / 8.0);
          k.cls(table_, InstrClass::kAluSimple, 6);
          k.cls(table_, InstrClass::kStore, 2 + lo_body);
          k.cls_worst(table_, InstrClass::kStore, hi_body - lo_body);
          ldst += 2 + hi_body;
          break;
        }
        default:
          break;
      }
    }
    // Worst-case DRAM: the interpreter performs at most one D-cache access
    // per load/store class charge; each access is at most a miss fill plus
    // a dirty-line writeback.
    k.dram_worst(table_, 2.0 * ldst);
    const Op term = m.code[static_cast<std::size_t>(blk.end - 1)].op;
    exits[b] = term >= Op::kReturn && term <= Op::kAreturn;
  }

  // Entry: one charged local-store (plus D-cache access) per argument spill.
  const double nargs = static_cast<double>(m.num_args());
  Cost entry;
  entry.cls(table_, InstrClass::kStore, nargs);
  entry.dram_worst(table_, 2.0 * nargs);

  EnergyInterval out;
  std::vector<double> best_cost(cost.size());
  for (std::size_t b = 0; b < cost.size(); ++b) best_cost[b] = cost[b].best;
  out.bcec_j =
      entry.best + best_path(mi->cfg.graph.succs, best_cost, exits);

  if (!mi->converged || !mi->reducible) {
    out.wcec_j = kInf;
    return out;
  }
  double worst = entry.worst;
  for (std::size_t b = 0; b < cost.size(); ++b) {
    const double count = mi->block_count[b];
    if (count <= 0.0) continue;
    // An unbounded count makes the whole method unbounded; multiplying
    // through would yield NaN when the block's worst cost is 0.0 (inf*0),
    // and a NaN wcec reads as "not bounded()" yet corrupts comparisons.
    if (!std::isfinite(count)) {
      worst = kInf;
      break;
    }
    worst += count * cost[b].worst;
  }
  out.wcec_j = worst;
  return out;
}

EnergyInterval WcecAnalysis::native_bounds(const MethodCtx& c, int tier,
                                           const isa::NativeProgram& prog,
                                           std::span<const ArgFact> args) {
  const jvm::MethodInfo& m = *c.mi;
  if (prog.code.empty()) return {0.0, kInf};

  NativeSolver ns(prog);
  // Entry registers: int/ref arguments fill r1.. in marshal order; known
  // facts come from the caller (root queries only).
  {
    NSt entry;
    std::uint8_t next_int = isa::kFirstArgReg;
    for (std::size_t i = 0; i < m.num_args(); ++i) {
      const ArgFact fact = i < args.size() ? args[i] : ArgFact{};
      switch (m.arg_kind(i)) {
        case TypeKind::kDouble:
          break;  // FP argument registers are untracked.
        case TypeKind::kRef: {
          if (next_int >= isa::kNumIntRegs) break;
          NReg& r = entry.r[next_int++];
          r.non_null = fact.non_null;
          r.is_array = fact.is_array;
          if (fact.is_array) r.len = fact.array_len.meet(Interval::len_top());
          break;
        }
        default: {
          if (next_int >= isa::kNumIntRegs) break;
          entry.r[next_int++].iv = fact.value.meet(Interval::top());
          break;
        }
      }
    }
    ns.seed_entry(std::move(entry));
  }
  ns.run();

  std::vector<Cost> cost(ns.blocks.size());
  for (std::size_t b = 0; b < ns.blocks.size(); ++b) {
    Cost& k = cost[b];
    // Replay the block from its narrowed in-state so allocation lengths see
    // the register facts at the allocation site. Without a converged solve
    // the state stays top (sound: best case uses interval lows).
    NSt s = ns.converged ? ns.in[b] : NSt{};
    for (std::int32_t i = ns.blocks[b].begin; i < ns.blocks[b].end; ++i) {
      const NInstr& I = prog.code[static_cast<std::size_t>(i)];
      k.cls(table_, isa::instr_class_of(I.op), 1);
      k.dram_worst(table_, 1.0);  // Fetch: I-cache lines are never dirty.
      switch (I.op) {
        case NOp::kLdw: case NOp::kLdb: case NOp::kLdd:
        case NOp::kStw: case NOp::kStb: case NOp::kStd:
          k.dram_worst(table_, 2.0);  // One D-cache access.
          break;
        case NOp::kCall: {
          const auto it = by_id_.find(I.imm);
          if (it == by_id_.end()) {
            k.fail();
            break;
          }
          k.call(call_bounds(it->second, tier));
          break;
        }
        case NOp::kCallv: {
          // Bridge dispatch: receiver-header load + two table loads.
          k.cls(table_, InstrClass::kLoad, 2);
          k.dram_worst(table_, 2.0);
          const auto it = by_id_.find(I.imm);
          if (it == by_id_.end()) {
            k.fail();
            break;
          }
          k.call(virtual_bounds(it->second->name, tier));
          break;
        }
        case NOp::kIntrI:
        case NOp::kIntrD: {
          const auto id = static_cast<isa::Intrinsic>(I.imm);
          if (I.imm < 0 ||
              I.imm >= static_cast<std::int32_t>(isa::Intrinsic::kCount)) {
            k.fail();
            break;
          }
          k.cls(table_, InstrClass::kAluComplex,
                static_cast<double>(isa::intrinsic_cost(id)) - 1.0);
          break;
        }
        case NOp::kRtNewArr: {
          const auto kind = static_cast<TypeKind>(I.imm);
          if (kind != TypeKind::kInt && kind != TypeKind::kDouble &&
              kind != TypeKind::kRef && kind != TypeKind::kByte) {
            k.fail();
            break;
          }
          const double w = jvm::type_width(kind);
          const Interval L =
              (s.reachable ? s.r[I.ra].iv : Interval::top())
                  .meet(Interval::len_top());
          const double lo_body =
              std::ceil(static_cast<double>(L.lo) * w / 8.0);
          const double hi_body =
              std::ceil(static_cast<double>(L.hi) * w / 8.0);
          k.cls(table_, InstrClass::kAluSimple, 6);
          k.cls(table_, InstrClass::kStore, 2 + lo_body);
          k.cls_worst(table_, InstrClass::kStore, hi_body - lo_body);
          k.dram_worst(table_, 2.0 * (2 + hi_body));
          break;
        }
        case NOp::kRtNewObj: {
          if (I.imm < 0 ||
              static_cast<std::size_t>(I.imm) >= classes_.size()) {
            k.fail();
            break;
          }
          const std::uint32_t sz =
              obj_size_of(classes_[static_cast<std::size_t>(I.imm)]->name);
          if (sz == 0) {
            k.fail();
            break;
          }
          const double body = (sz - jvm::kObjHeaderBytes) / 8.0;
          k.cls(table_, InstrClass::kAluSimple, 6);
          k.cls(table_, InstrClass::kStore, 1 + body);
          k.dram_worst(table_, 2.0 * (1 + body));
          break;
        }
        default:
          break;
      }
      if (s.reachable) ns.step(s, I);
    }
  }

  EnergyInterval out;
  std::vector<double> best_cost(cost.size());
  for (std::size_t b = 0; b < cost.size(); ++b) best_cost[b] = cost[b].best;
  out.bcec_j = best_path(ns.succs, best_cost, ns.is_exit);

  if (!ns.converged || !ns.reducible) {
    out.wcec_j = kInf;
    return out;
  }
  double worst = 0.0;
  for (std::size_t b = 0; b < cost.size(); ++b) {
    const double count = ns.block_count[b];
    if (count <= 0.0) continue;
    // Same inf*0 == NaN hazard as interp_bounds: fail to kInf, not NaN.
    if (!std::isfinite(count)) {
      worst = kInf;
      break;
    }
    worst += count * cost[b].worst;
  }
  out.wcec_j = worst;
  return out;
}

}  // namespace javelin::analysis
