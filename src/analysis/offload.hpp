// Offload-safety / purity analysis.
//
// Decides whether a method can run on the server with only its serialized
// arguments as context (the paper's remote-execution model ships args and
// receives the result; it cannot replicate client heap state that the method
// reaches through other channels). The pass runs the forward lattice solver
// over an alias abstraction of the operand stack and locals — each slot
// carries a bitmask of "may hold a reference reaching parameter i" /
// "fresh allocation" / "non-reference" — and records:
//
//   * static-field writes (server cannot push them back),
//   * mutation of parameter-reachable state (arrays/fields written through a
//     parameter ref — the response would have to ship the mutation back),
//   * parameter escape (param ref stored into the heap or returned),
//   * allocation inside a loop (unbounded fresh memory), and
//   * a static serialization-size bound for the request (from the
//     signature; any reference parameter makes it unbounded).
//
// Interprocedural: callee verdicts fold into the caller; call-graph cycles
// are treated conservatively (the in-progress callee is assumed to mutate
// and leak whatever parameter-derived refs it is passed).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "jvm/classfile.hpp"
#include "jvm/verifier.hpp"

namespace javelin::analysis {

/// Offload-safety verdict for one method.
struct OffloadSafety {
  bool writes_statics = false;   ///< Mutates static fields (self or callee).
  bool mutates_params = false;   ///< Writes through a param-reachable ref.
  bool param_escapes = false;    ///< Param ref stored to heap or returned.
  bool alloc_in_loop = false;    ///< new/newarray inside a loop.
  bool calls_unresolved = false; ///< Call target outside the resolution set.
  bool recursive = false;        ///< On (or calling into) a call-graph cycle.
  /// Static bound on the serialized request payload, bytes (1-byte tag +
  /// value per argument). -1 = unbounded (some argument is a reference).
  std::int64_t request_bytes_bound = 0;
  std::uint64_t work = 0;        ///< Deterministic effort (lattice transfers).

  /// Safe to execute remotely from serialized args alone. Mutating or
  /// leaking params is *observable* state the response protocol already
  /// ships back (arrays round-trip), so only effects the server cannot
  /// deliver — static writes — and unresolvable callees disqualify.
  bool offloadable() const { return !writes_statics && !calls_unresolved; }
};

/// Memoizing interprocedural offload analyzer over a resolution set.
class OffloadAnalyzer {
 public:
  explicit OffloadAnalyzer(const jvm::SignatureResolver& resolver)
      : resolver_(resolver) {}

  const OffloadSafety& analyze(const jvm::ClassFile& cf,
                               const jvm::MethodInfo& m);

 private:
  OffloadSafety compute(const jvm::ClassFile& cf, const jvm::MethodInfo& m);

  const jvm::SignatureResolver& resolver_;
  std::unordered_map<const jvm::MethodInfo*, OffloadSafety> memo_;
  std::vector<const jvm::MethodInfo*> stack_;  ///< DFS path (cycle cut).
};

/// Serialized size of one argument of kind `k` (1-byte tag + payload), or
/// -1 for references (statically unbounded).
std::int64_t serialized_arg_bytes(jvm::TypeKind k);

}  // namespace javelin::analysis
