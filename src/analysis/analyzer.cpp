#include "analysis/analyzer.hpp"

namespace javelin::analysis {

std::string safety_verdict(const OffloadSafety& s) {
  std::string v;
  auto tag = [&v](const char* t) {
    if (!v.empty()) v += ',';
    v += t;
  };
  if (s.writes_statics) tag("writes-statics");
  if (s.calls_unresolved) tag("calls-unresolved");
  if (s.mutates_params) tag("mutates-params");
  if (s.param_escapes) tag("param-escapes");
  if (s.alloc_in_loop) tag("alloc-in-loop");
  if (s.recursive) tag("recursive");
  if (v.empty()) v = "pure";
  return s.offloadable() ? (v == "pure" ? "offloadable" : "offloadable:" + v)
                         : "not-offloadable:" + v;
}

MethodAnalysis Analyzer::analyze_method(const jvm::ClassFile& cf,
                                        const jvm::MethodInfo& m) {
  MethodAnalysis r;
  r.qualified_name = cf.name + "." + m.name;
  r.method = &m;
  r.cost = cost_.summarize(cf, m);
  r.safety = offload_.analyze(cf, m);
  r.lint_work = lint_method(cf, m, r.diagnostics);
  sort_diagnostics(r.diagnostics);

  if (trace_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kAnalysis;
    e.name = trace_->intern(r.qualified_name);
    e.detail = trace_->intern(safety_verdict(r.safety));
    e.a = r.cost.energy_j;
    e.b = static_cast<double>(r.cost.work + r.safety.work + r.lint_work);
    trace_->emit(e);
  }
  return r;
}

std::vector<MethodAnalysis> Analyzer::analyze_class(const jvm::ClassFile& cf) {
  std::vector<MethodAnalysis> out;
  out.reserve(cf.methods.size());
  for (const auto& m : cf.methods) out.push_back(analyze_method(cf, m));
  return out;
}

}  // namespace javelin::analysis
