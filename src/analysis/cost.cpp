#include "analysis/cost.hpp"

#include <algorithm>

#include "analysis/bytecode_cfg.hpp"
#include "isa/nisa.hpp"
#include "jvm/opspec.hpp"

namespace javelin::analysis {

using energy::InstrClass;
using jvm::Op;

namespace {

/// Saturating arithmetic so pathological nests can't wrap the counters.
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > UINT64_MAX / a) return UINT64_MAX;
  return a * b;
}
std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

void add_scaled(energy::InstrCounts& into, const energy::InstrCounts& from,
                std::uint64_t scale) {
  for (std::size_t i = 0; i < energy::kNumInstrClasses; ++i)
    into.by_class[i] = sat_add(into.by_class[i],
                               sat_mul(from.by_class[i], scale));
}

}  // namespace

ResolvedMethod resolve_method_class(const jvm::SignatureResolver& resolver,
                                    const jvm::MethodRef& ref) {
  for (const jvm::ClassFile* cf = resolver.resolve_class(ref.class_name);
       cf != nullptr;
       cf = cf->super_name.empty() ? nullptr
                                   : resolver.resolve_class(cf->super_name)) {
    if (const jvm::MethodInfo* m = cf->find_method(ref.method_name))
      return {cf, m};
  }
  return {};
}

const StaticCostSummary& CostEstimator::summarize(const jvm::ClassFile& cf,
                                                  const jvm::MethodInfo& m) {
  auto it = memo_.find(&m);
  if (it != memo_.end()) return it->second;
  StaticCostSummary s = compute(cf, m);
  return memo_.emplace(&m, std::move(s)).first->second;
}

StaticCostSummary CostEstimator::compute(const jvm::ClassFile& cf,
                                         const jvm::MethodInfo& m) {
  StaticCostSummary sum;
  sum.num_insns = static_cast<std::int32_t>(m.code.size());
  if (m.code.empty()) return sum;

  stack_.push_back(&m);

  const BytecodeCfg cfg = build_bytecode_cfg(m.code);
  const DomInfo dom = compute_dominators(cfg.graph);
  const std::vector<NaturalLoop> loops = find_natural_loops(cfg.graph, dom);
  const std::vector<std::int32_t> depth = loop_depths(cfg.num_blocks(), loops);

  sum.num_blocks = static_cast<std::int32_t>(dom.rpo.size());
  for (std::int32_t b : dom.rpo)
    sum.max_loop_depth = std::max(sum.max_loop_depth, depth[b]);

  for (std::int32_t b : dom.rpo) {
    sum.work = sat_add(sum.work, 1);
    std::uint64_t weight = 1;
    const std::int32_t d = std::min(depth[b], opts_.max_weighted_depth);
    for (std::int32_t i = 0; i < d; ++i)
      weight = sat_mul(weight, opts_.loop_trip_weight);

    energy::InstrCounts block;  // one execution of this block
    for (std::int32_t pc = cfg.blocks[b].begin; pc < cfg.blocks[b].end; ++pc) {
      const jvm::Insn& in = m.code[pc];
      // Fetch-decode-dispatch, charged for every instruction — the same
      // opspec::kDispatchCost triple the interpreter's dispatch loops charge.
      block.add(InstrClass::kLoad, jvm::opspec::kDispatchCost.loads);
      block.add(InstrClass::kAluSimple, jvm::opspec::kDispatchCost.alu_simple);
      block.add(InstrClass::kBranch, jvm::opspec::kDispatchCost.branches);

      if (static_cast<std::size_t>(in.op) >= jvm::kNumOps) continue;

      // Context-free semantic cost straight from the opcode-spec table
      // (tests/opspec_test.cpp pins each row against the interpreter's
      // actual charge sequence). Invokes and intrinsics carry an additional
      // context-dependent part handled below.
      const jvm::opspec::StaticOpCost& c = jvm::opspec::spec(in.op).cost;
      block.add(InstrClass::kLoad, c.loads);
      block.add(InstrClass::kStore, c.stores);
      block.add(InstrClass::kBranch, c.branches);
      block.add(InstrClass::kAluSimple, c.alu_simple);
      block.add(InstrClass::kAluComplex, c.alu_complex);
      if (!c.context_dependent) continue;

      switch (in.op) {
        case Op::kInvokeStatic:
        case Op::kInvokeVirtual: {
          if (in.a < 0 ||
              static_cast<std::size_t>(in.a) >= cf.pool.methods.size())
            break;  // hostile pool index: charge dispatch only
          const jvm::MethodRef& ref = cf.pool.methods[in.a];
          const ResolvedMethod callee = resolve_method_class(resolver_, ref);
          const jvm::MethodInfo* ci =
              callee.method ? callee.method : resolver_.resolve_method(ref);
          // Invoke overhead: argument pops, dispatch, result push.
          if (ci) block.add(InstrClass::kLoad, ci->num_args());
          if (in.op == Op::kInvokeVirtual) block.add(InstrClass::kLoad, 2);
          block.add(InstrClass::kBranch);
          if (ci && ci->sig.ret != jvm::TypeKind::kVoid)
            block.add(InstrClass::kStore);
          // Callee body: fold the summary in once per (weighted) call site;
          // cut cycles at the back edge.
          if (callee.method && callee.cls) {
            const bool on_stack =
                std::find(stack_.begin(), stack_.end(), callee.method) !=
                stack_.end();
            if (on_stack) {
              sum.recursive = true;
            } else {
              const StaticCostSummary& cs =
                  summarize(*callee.cls, *callee.method);
              add_scaled(sum.counts, cs.counts, weight);
              sum.recursive = sum.recursive || cs.recursive;
              sum.work = sat_add(sum.work, cs.work);
            }
          }
          break;
        }
        case Op::kInvokeIntrinsic: {
          if (in.a < 0 ||
              in.a >= static_cast<std::int32_t>(isa::Intrinsic::kCount))
            break;
          const auto id = static_cast<isa::Intrinsic>(in.a);
          block.add(InstrClass::kLoad,
                    static_cast<std::uint64_t>(isa::intrinsic_fp_args(id) +
                                               isa::intrinsic_int_args(id)));
          block.add(InstrClass::kAluComplex, isa::intrinsic_cost(id));
          block.add(InstrClass::kStore);
          break;
        }

        default:
          break;  // No other op is context-dependent.
      }
    }
    add_scaled(sum.counts, block, weight);
  }

  stack_.pop_back();
  sum.energy_j = sum.counts.energy(table_);
  return sum;
}

}  // namespace javelin::analysis
