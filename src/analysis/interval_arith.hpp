// Interval arithmetic over guest int32 values, shared by the bytecode
// interval solver (intervals.cpp) and the native-register solver inside the
// static energy-bound pass (wcec.cpp).
//
// All transfer functions are *sound over-approximations* of the concrete
// 32-bit wrap semantics: a result range that escapes int32 collapses to the
// full int32 range (never to a wrapped narrow interval). Inputs are assumed
// int32-bounded, so the int64 endpoint arithmetic cannot overflow.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "analysis/intervals.hpp"

namespace javelin::analysis::ivops {

inline constexpr std::int64_t kMin32 = Interval::kI32Min;
inline constexpr std::int64_t kMax32 = Interval::kI32Max;

/// Clamp an int64-computed result to guest int32 wrap semantics: a range
/// that escapes int32 may wrap anywhere, so it collapses to top. `fits`
/// (optional) reports whether the exact range fit — the cannot-overflow
/// lint fact.
inline Interval wrap32(std::int64_t lo, std::int64_t hi, bool* fits = nullptr) {
  const bool ok = lo >= kMin32 && hi <= kMax32;
  if (fits) *fits = ok;
  return ok ? Interval{lo, hi} : Interval::top();
}

inline Interval add_iv(Interval a, Interval b, bool* fits = nullptr) {
  return wrap32(a.lo + b.lo, a.hi + b.hi, fits);
}
inline Interval sub_iv(Interval a, Interval b, bool* fits = nullptr) {
  return wrap32(a.lo - b.hi, a.hi - b.lo, fits);
}
inline Interval mul_iv(Interval a, Interval b, bool* fits = nullptr) {
  const std::int64_t p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                             a.hi * b.hi};
  return wrap32(*std::min_element(p, p + 4), *std::max_element(p, p + 4),
                fits);
}
inline Interval neg_iv(Interval a, bool* fits = nullptr) {
  return wrap32(-a.hi, -a.lo, fits);
}

/// Truncating division; divisor 0 cannot complete normally. For a constant
/// divisor trunc(x/c) is monotone in x, so endpoint quotients bound it.
inline Interval div_iv(Interval a, Interval b) {
  if (b.singleton() && b.lo != 0) {
    const std::int64_t q1 = a.lo / b.lo, q2 = a.hi / b.lo;
    return wrap32(std::min(q1, q2), std::max(q1, q2));
  }
  if (b.lo >= 1)  // Positive divisor shrinks magnitude toward zero.
    return {std::min<std::int64_t>(a.lo, 0), std::max<std::int64_t>(a.hi, 0)};
  return Interval::top();
}
inline Interval rem_iv(Interval a, Interval b) {
  const std::int64_t mag = std::max(std::llabs(b.lo), std::llabs(b.hi));
  if (mag == 0) return Interval::top();
  Interval r{-(mag - 1), mag - 1};
  if (a.lo >= 0) r.lo = 0;
  if (a.hi <= 0) r.hi = 0;
  return r;
}
inline Interval and_iv(Interval a, Interval b) {
  if (a.lo >= 0 && b.lo >= 0) return {0, std::min(a.hi, b.hi)};
  if (a.lo >= 0) return {0, a.hi};
  if (b.lo >= 0) return {0, b.hi};
  return Interval::top();
}
inline Interval orx_iv(Interval a, Interval b) {
  if (a.lo < 0 || b.lo < 0) return Interval::top();
  std::int64_t m = 1;
  while (m - 1 < std::max(a.hi, b.hi)) m <<= 1;
  return {0, m - 1};
}

/// x != v trims only an endpoint (intervals cannot encode holes).
inline Interval exclude(Interval iv, std::int64_t v) {
  if (iv.lo == v && iv.hi > v) return {v + 1, iv.hi};
  if (iv.hi == v && iv.lo < v) return {iv.lo, v - 1};
  return iv;
}

/// Widening-with-thresholds landmark set. Jumping a growing bound straight to
/// +-2^31 is what makes a counter interval wrap in the loop body and destroys
/// the *other* bound irrecoverably (narrowing walks back one step per pass).
/// Widening to the next program constant instead (loop bounds, argument
/// values, array lengths - each with its +-1 neighbours for the off-by-one
/// shapes `i < n` / `i <= n-1` produce) converges to the exact invariant in
/// the common counted-loop case. The set is finite, so repeated widenings per
/// bound still terminate.
class WidenThresholds {
 public:
  void add(std::int64_t v) {
    for (const std::int64_t d : {v - 1, v, v + 1})
      if (d > kMin32 && d < kMax32) t_.push_back(d);
  }
  void add_interval(Interval iv) {
    add(iv.lo);
    add(iv.hi);
  }
  void seal() {
    add(0);
    std::sort(t_.begin(), t_.end());
    t_.erase(std::unique(t_.begin(), t_.end()), t_.end());
  }
  /// Largest threshold <= lo, else the int32 floor.
  std::int64_t widen_lo(std::int64_t lo) const {
    const auto it = std::upper_bound(t_.begin(), t_.end(), lo);
    return it == t_.begin() ? kMin32 : *std::prev(it);
  }
  /// Smallest threshold >= hi, else the int32 ceiling.
  std::int64_t widen_hi(std::int64_t hi) const {
    const auto it = std::lower_bound(t_.begin(), t_.end(), hi);
    return it == t_.end() ? kMax32 : *it;
  }

 private:
  std::vector<std::int64_t> t_;
};

}  // namespace javelin::analysis::ivops
