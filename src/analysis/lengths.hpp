// Interprocedural array-length-fact analysis (the offense half of the
// elide-then-validate pair; DESIGN.md §13).
//
// For every method in a closed class set, compute per-parameter facts of the
// form "this reference parameter is never null, and when it is an array its
// length is at least N" — the meet, over *every* call site that can reach the
// method, of the abstract argument values flowing in. The JIT's Level-3
// bounds-check elimination consumes the facts (jit::ArrayParamFact) to drop
// null/range guards on parameter arrays that no dominating access inside the
// method could prove.
//
// Soundness model:
//  * Closed world: the class set is the deployed application; the runtime
//    cannot call anything else.
//  * Roots — methods marked `potential` (externally invokable) — are assumed
//    to receive arbitrary arguments and get no facts.
//  * Virtual call sites meet their argument facts into every loaded
//    non-static method with a matching name and signature (a superset of the
//    dynamic dispatch targets), static sites into the resolved method only.
//  * The fixpoint is optimistic (facts start at top and only descend), so it
//    terminates: non_null is boolean and min_len is a min over the finite
//    set of observed constants.
//  * Any unresolvable call site marks the whole analysis `incomplete`;
//    callers must then attach no facts at all ("Static Metrics Are
//    Insufficient" — a partial static view must fail closed).
// Facts are only *valid* for methods that are not roots and have at least
// one observed call site; everything else keeps the guard-everything
// default. Shadow-bounds mode (mem/shadow.hpp) cross-validates every
// elision dynamically.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "jvm/classfile.hpp"

namespace javelin::analysis {

/// One parameter's accumulated fact (receiver included for instance methods).
struct LengthParamFact {
  bool non_null = false;
  std::int32_t min_len = 0;  ///< Proven minimum array length (0 = unknown).
};

/// Facts for one method.
struct MethodLengthFacts {
  std::vector<LengthParamFact> params;  ///< Indexed by argument position.
  std::uint64_t site_count = 0;         ///< Call sites observed (re-visits
                                        ///< during the fixpoint included).
  bool root = false;                    ///< Externally invokable (`potential`).
  /// Facts may be consumed only when true: the method is not a root and at
  /// least one call site constrained it.
  bool valid() const { return !root && site_count > 0; }
};

struct LengthAnalysis {
  std::unordered_map<const jvm::MethodInfo*, MethodLengthFacts> methods;
  std::uint64_t work = 0;   ///< Deterministic effort (blocks/edges processed).
  bool incomplete = false;  ///< An unresolvable call site poisoned the pass.

  const MethodLengthFacts* find(const jvm::MethodInfo* m) const {
    const auto it = methods.find(m);
    return it == methods.end() ? nullptr : &it->second;
  }
};

/// Run the pass over a closed class set (load order fixes iteration order,
/// so results are deterministic). Classes must be verified.
LengthAnalysis analyze_lengths(const std::vector<const jvm::ClassFile*>& classes);

}  // namespace javelin::analysis
