#include "analysis/lengths.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "analysis/bytecode_cfg.hpp"
#include "analysis/cost.hpp"
#include "isa/nisa.hpp"
#include "jvm/opspec.hpp"
#include "jvm/verifier.hpp"

namespace javelin::analysis {

using jvm::ClassFile;
using jvm::Insn;
using jvm::MethodInfo;
using jvm::Op;
using jvm::TypeKind;

namespace {

/// Abstract value flowing through one method: what we know about the
/// reference/int on the stack or in a local. Bottom (the default) knows
/// nothing.
struct AbsVal {
  bool non_null = false;
  std::int32_t min_len = 0;
  bool is_const = false;       ///< Known int constant.
  std::int32_t const_val = 0;
};

AbsVal meet_val(const AbsVal& x, const AbsVal& y) {
  AbsVal r;
  r.non_null = x.non_null && y.non_null;
  r.min_len = std::min(x.min_len, y.min_len);
  r.is_const = x.is_const && y.is_const && x.const_val == y.const_val;
  r.const_val = r.is_const ? x.const_val : 0;
  return r;
}

bool same_val(const AbsVal& x, const AbsVal& y) {
  return x.non_null == y.non_null && x.min_len == y.min_len &&
         x.is_const == y.is_const && x.const_val == y.const_val;
}

/// Per-block dataflow state: locals and the abstract operand stack.
struct State {
  std::vector<AbsVal> locals;
  std::vector<AbsVal> stack;
};

constexpr std::int32_t kTopLen = INT32_MAX;

/// The optimistic starting point for a not-yet-called method's parameter.
LengthParamFact top_fact() { return LengthParamFact{true, kTopLen}; }

class Pass {
 public:
  explicit Pass(const std::vector<const ClassFile*>& classes)
      : classes_(classes) {
    for (const ClassFile* cf : classes_) resolver_.add(cf);
  }

  LengthAnalysis run();

 private:
  void init_method(const ClassFile& cf, const MethodInfo& m);
  void analyze_method(const ClassFile& cf, const MethodInfo& m);
  /// Abstract-interpret one instruction. Returns false (and poisons the
  /// pass) on anything inconsistent — unresolvable callee, hostile indices.
  bool simulate(const ClassFile& cf, const MethodInfo& m, const Insn& in,
                State& st);
  void contribute(const MethodInfo* callee, const std::vector<AbsVal>& args);
  void enqueue(const MethodInfo* m);
  void poison() { out_.incomplete = true; }

  const std::vector<const ClassFile*>& classes_;
  jvm::ClassSetResolver resolver_;
  LengthAnalysis out_;
  std::unordered_map<const MethodInfo*, const ClassFile*> owner_;
  std::deque<const MethodInfo*> worklist_;
  std::unordered_map<const MethodInfo*, char> in_queue_;
};

void Pass::init_method(const ClassFile& cf, const MethodInfo& m) {
  MethodLengthFacts f;
  f.root = m.potential;
  f.params.assign(m.num_args(), f.root ? LengthParamFact{} : top_fact());
  // The receiver of an instance method is null-checked by the dispatch
  // itself, so it is non-null at entry no matter what call sites pass.
  if (!m.is_static && !f.params.empty()) f.params[0].non_null = true;
  out_.methods.emplace(&m, std::move(f));
  owner_.emplace(&m, &cf);
}

void Pass::enqueue(const MethodInfo* m) {
  auto& flag = in_queue_[m];
  if (flag) return;
  flag = 1;
  worklist_.push_back(m);
}

void Pass::contribute(const MethodInfo* callee,
                      const std::vector<AbsVal>& args) {
  MethodLengthFacts& f = out_.methods.at(callee);
  ++f.site_count;
  ++out_.work;
  bool changed = false;
  if (args.size() != f.params.size()) {
    // Signature drift (shouldn't happen on verified code): fail closed by
    // dropping every fact for this callee.
    for (LengthParamFact& p : f.params) {
      changed = changed || p.non_null || p.min_len != 0;
      p = LengthParamFact{};
    }
  } else {
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      LengthParamFact& p = f.params[i];
      const bool nn = p.non_null && args[i].non_null;
      const std::int32_t ml = std::min(p.min_len, args[i].min_len);
      if (nn != p.non_null || ml != p.min_len) changed = true;
      p.non_null = nn;
      p.min_len = ml;
    }
  }
  if (!callee->is_static && !f.params.empty()) f.params[0].non_null = true;
  if (changed) enqueue(callee);
}

bool Pass::simulate(const ClassFile& cf, const MethodInfo& m, const Insn& in,
                    State& st) {
  using jvm::opspec::OpCategory;
  if (static_cast<std::size_t>(in.op) >= jvm::kNumOps) return false;
  const auto& sp = jvm::opspec::spec(in.op);

  const auto pop_n = [&](std::size_t n) {
    if (st.stack.size() < n) return false;
    st.stack.resize(st.stack.size() - n);
    return true;
  };
  const auto push = [&](AbsVal v) { st.stack.push_back(v); };
  const auto slot_ok = [&](std::int32_t s) {
    return s >= 0 && static_cast<std::size_t>(s) < st.locals.size();
  };

  switch (sp.category) {
    case OpCategory::kConst: {
      AbsVal v;
      if (in.op == Op::kIconst) {
        v.is_const = true;
        v.const_val = in.a;
      }
      push(v);
      return true;
    }
    case OpCategory::kLocalLoad:
      if (!slot_ok(in.a)) return false;
      push(st.locals[static_cast<std::size_t>(in.a)]);
      return true;
    case OpCategory::kLocalStore: {
      if (!slot_ok(in.a) || st.stack.empty()) return false;
      st.locals[static_cast<std::size_t>(in.a)] = st.stack.back();
      st.stack.pop_back();
      return true;
    }
    case OpCategory::kStack:
      if (st.stack.empty()) return false;
      if (in.op == Op::kDup) push(st.stack.back());
      else st.stack.pop_back();
      return true;
    case OpCategory::kIntBinop:
    case OpCategory::kDblBinop:
    case OpCategory::kCmp:
      if (!pop_n(2)) return false;
      push(AbsVal{});
      return true;
    case OpCategory::kIntUnary:
    case OpCategory::kDblUnary:
    case OpCategory::kConv:
      if (!pop_n(1)) return false;
      push(AbsVal{});
      return true;
    case OpCategory::kCondBranch: {
      const bool two = in.op == Op::kIfIcmpEq || in.op == Op::kIfIcmpNe ||
                       in.op == Op::kIfIcmpLt || in.op == Op::kIfIcmpLe ||
                       in.op == Op::kIfIcmpGt || in.op == Op::kIfIcmpGe;
      return pop_n(two ? 2 : 1);
    }
    case OpCategory::kGoto:
      return true;
    case OpCategory::kReturn:
      if (in.op == Op::kReturn) return true;
      return pop_n(1);
    case OpCategory::kField:
      switch (in.op) {
        case Op::kGetField:
          if (!pop_n(1)) return false;
          push(AbsVal{});
          return true;
        case Op::kPutField:
          return pop_n(2);
        case Op::kGetStatic:
          push(AbsVal{});
          return true;
        default:  // kPutStatic
          return pop_n(1);
      }
    case OpCategory::kNew: {
      AbsVal v;
      v.non_null = true;
      push(v);
      return true;
    }
    case OpCategory::kNewArray: {
      if (st.stack.empty()) return false;
      const AbsVal len = st.stack.back();
      st.stack.pop_back();
      AbsVal v;
      v.non_null = true;
      if (len.is_const && len.const_val > 0) v.min_len = len.const_val;
      push(v);
      return true;
    }
    case OpCategory::kArrayLoad:
      if (!pop_n(2)) return false;
      push(AbsVal{});
      return true;
    case OpCategory::kArrayStore:
      return pop_n(3);
    case OpCategory::kArrayLength:
      if (!pop_n(1)) return false;
      push(AbsVal{});
      return true;
    case OpCategory::kIntrinsic: {
      if (in.a < 0 || in.a >= static_cast<std::int32_t>(isa::Intrinsic::kCount))
        return false;
      const auto id = static_cast<isa::Intrinsic>(in.a);
      const std::size_t n =
          static_cast<std::size_t>(isa::intrinsic_fp_args(id)) +
          static_cast<std::size_t>(isa::intrinsic_int_args(id));
      if (!pop_n(n)) return false;
      push(AbsVal{});
      return true;
    }
    case OpCategory::kInvoke: {
      if (in.a < 0 || static_cast<std::size_t>(in.a) >= cf.pool.methods.size())
        return false;
      const jvm::MethodRef& ref = cf.pool.methods[static_cast<std::size_t>(in.a)];
      const MethodInfo* sig = resolver_.resolve_method(ref);
      if (sig == nullptr) return false;
      const std::size_t n = sig->num_args();
      if (st.stack.size() < n) return false;
      std::vector<AbsVal> args(st.stack.end() - static_cast<std::ptrdiff_t>(n),
                               st.stack.end());
      st.stack.resize(st.stack.size() - n);
      if (sig->sig.ret != TypeKind::kVoid) push(AbsVal{});
      if (in.op == Op::kInvokeStatic) {
        const ResolvedMethod r = resolve_method_class(resolver_, ref);
        if (r.method == nullptr) return false;
        contribute(r.method, args);
      } else {
        // Sound virtual dispatch: meet into every loaded instance method
        // with a matching name and signature — a superset of the dynamic
        // targets in this closed world.
        bool any = false;
        for (const ClassFile* c : classes_) {
          const MethodInfo* cand = c->find_method(ref.method_name);
          if (cand == nullptr || cand->is_static) continue;
          if (cand->sig.params != sig->sig.params ||
              cand->sig.ret != sig->sig.ret)
            continue;
          contribute(cand, args);
          any = true;
        }
        if (!any) return false;
      }
      (void)m;
      return true;
    }
  }
  return false;
}

void Pass::analyze_method(const ClassFile& cf, const MethodInfo& m) {
  if (m.code.empty() || out_.incomplete) return;
  ++out_.work;

  const MethodLengthFacts& f = out_.methods.at(&m);
  State entry;
  entry.locals.assign(m.max_locals, AbsVal{});
  const std::size_t nargs = m.num_args();
  for (std::size_t i = 0; i < nargs && i < entry.locals.size(); ++i) {
    AbsVal v;
    if (!f.root) {
      v.non_null = f.params[i].non_null;
      v.min_len = f.params[i].min_len == kTopLen ? 0 : f.params[i].min_len;
    }
    if (i == 0 && !m.is_static) v.non_null = true;
    entry.locals[i] = v;
  }

  const BytecodeCfg cfg = build_bytecode_cfg(m.code);
  if (cfg.num_blocks() == 0) return;
  std::vector<std::optional<State>> in_states(cfg.num_blocks());
  in_states[0] = std::move(entry);
  std::deque<std::int32_t> blocks{0};
  std::vector<char> queued(cfg.num_blocks(), 0);
  queued[0] = 1;

  while (!blocks.empty()) {
    const std::int32_t b = blocks.front();
    blocks.pop_front();
    queued[static_cast<std::size_t>(b)] = 0;
    ++out_.work;
    State st = *in_states[static_cast<std::size_t>(b)];
    bool ok = true;
    for (std::int32_t pc = cfg.blocks[static_cast<std::size_t>(b)].begin;
         ok && pc < cfg.blocks[static_cast<std::size_t>(b)].end; ++pc)
      ok = simulate(cf, m, m.code[static_cast<std::size_t>(pc)], st);
    if (!ok) {
      poison();
      return;
    }
    for (std::int32_t s : cfg.graph.succs[static_cast<std::size_t>(b)]) {
      auto& target = in_states[static_cast<std::size_t>(s)];
      bool changed = false;
      if (!target.has_value()) {
        target = st;
        changed = true;
      } else {
        if (target->locals.size() != st.locals.size() ||
            target->stack.size() != st.stack.size()) {
          poison();  // verified code has consistent depths at joins
          return;
        }
        for (std::size_t i = 0; i < st.locals.size(); ++i) {
          const AbsVal mv = meet_val(target->locals[i], st.locals[i]);
          if (!same_val(mv, target->locals[i])) changed = true;
          target->locals[i] = mv;
        }
        for (std::size_t i = 0; i < st.stack.size(); ++i) {
          const AbsVal mv = meet_val(target->stack[i], st.stack[i]);
          if (!same_val(mv, target->stack[i])) changed = true;
          target->stack[i] = mv;
        }
      }
      if (changed && !queued[static_cast<std::size_t>(s)]) {
        queued[static_cast<std::size_t>(s)] = 1;
        blocks.push_back(s);
      }
    }
  }
}

LengthAnalysis Pass::run() {
  for (const ClassFile* cf : classes_)
    for (const MethodInfo& m : cf->methods) init_method(*cf, m);

  for (const ClassFile* cf : classes_)
    for (const MethodInfo& m : cf->methods) enqueue(&m);

  // Generous valve: the optimistic lattice guarantees termination, but a
  // hostile class set should degrade to "no facts", not spin.
  constexpr std::uint64_t kWorkLimit = 10'000'000;
  while (!worklist_.empty() && !out_.incomplete) {
    if (out_.work > kWorkLimit) {
      poison();
      break;
    }
    const MethodInfo* m = worklist_.front();
    worklist_.pop_front();
    in_queue_[m] = 0;
    analyze_method(*owner_.at(m), *m);
  }

  // Fail closed on a poisoned pass: no method may advertise facts.
  if (out_.incomplete)
    for (auto& [mi, f] : out_.methods) {
      (void)mi;
      f.site_count = 0;
    }
  return out_;
}

}  // namespace

LengthAnalysis analyze_lengths(
    const std::vector<const ClassFile*>& classes) {
  Pass p(classes);
  return p.run();
}

}  // namespace javelin::analysis
