// Interval abstract interpretation over bytecode (see intervals.hpp).
//
// Structure:
//  * The CFG is *edge-split*: every conditional branch leaves its operands
//    on the abstract stack, and each outgoing edge gets a synthetic node
//    whose transfer pops them and applies the branch refinement for that
//    direction. This keeps refinement inside the shared solve_forward
//    framework (whose join callback cannot see which edge a state flowed
//    along) with no stale side channels: a synthetic node refines exactly
//    the state its one predecessor produced.
//  * Widening is delayed (kWidenDelay precise joins per in-state, counted in
//    the state itself) and jumps straight to the int32 clamp; after the
//    ascending solve converges, kNarrowPasses full descending recomputation
//    sweeps in RPO recover bounds the widening destroyed — sound because
//    any descending iterate from a post-fixpoint stays above the least
//    fixpoint of a monotone transfer.
//  * Trip counts: for each natural loop, a local slot qualifies as an
//    induction variable if every store to it inside the loop is the exact
//    `iload s; iconst c; iadd|isub; istore s` pattern with all steps in one
//    direction, no store sits in a loop nested strictly inside this one
//    (such a site executes up to the inner trip count per iteration, so the
//    per-iteration excursion would not be bounded by the per-site step sum
//    and an int32 wrap could re-enter the header interval), and some
//    store's block dominates every back-edge source (any loop block that
//    dominates all latches is executed by every completed iteration). The
//    narrowed header interval [a, b] of the slot then bounds header visits
//    by (b - a) / min|c| + 2, provided the steps cannot wrap int32 while
//    the value stays in [a, b].
#include "analysis/intervals.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>

#include "analysis/dataflow.hpp"
#include "analysis/interval_arith.hpp"
#include "isa/nisa.hpp"

namespace javelin::analysis {
namespace {

using jvm::Insn;
using jvm::Op;
using jvm::TypeKind;
using namespace ivops;

constexpr std::uint32_t kWidenDelay = 3;
constexpr int kNarrowPasses = 2;

/// One abstract value: the int view (`iv`), the array-ref view (`len`,
/// `non_null`), and three relational provenance facts, each killed by any
/// store to the slot it names:
///  * from_local  — this value is a copy of local slot s;
///  * len_of_local — this int equals length(array in local slot s);
///  * lt_len_of   — this int is proven < length(array in local slot s).
struct AbsVal {
  Interval iv = Interval::top();
  Interval len = Interval::len_top();
  bool non_null = false;
  std::int16_t from_local = -1;
  std::int16_t len_of_local = -1;
  std::int16_t lt_len_of = -1;

  bool operator==(const AbsVal&) const = default;
};

/// Lattice element: abstract locals + operand stack. Default-constructed =
/// bottom (unreachable). `joins` counts joins into this in-state so widening
/// can be delayed without the join callback knowing the block index.
struct St {
  bool reachable = false;
  std::vector<AbsVal> locals;
  std::vector<AbsVal> stack;
  std::uint32_t joins = 0;
};

bool is_cond(Op op) { return op >= Op::kIfeq && op <= Op::kIfNonNull; }
int cond_arity(Op op) {
  return (op >= Op::kIfIcmpEq && op <= Op::kIfIcmpGe) ? 2 : 1;
}

/// Synthetic edge node: pops the branch operands of `block` and, when the
/// direction is known, applies the refinement. taken < 0 = unknown edge
/// (degenerate branch with a single deduplicated successor).
struct SynEdge {
  std::int32_t block = 0;
  std::int8_t taken = -1;
};

class IntervalSolver {
 public:
  IntervalSolver(const jvm::ClassFile& cf, const jvm::MethodInfo& m,
                 const jvm::SignatureResolver* resolver,
                 std::span<const ArgFact> args)
      : cf_(cf), m_(m), resolver_(resolver), args_(args) {}

  MethodIntervals run();

 private:
  // ---- lattice operations ---------------------------------------------------
  bool join_val(AbsVal& into, const AbsVal& from, bool widen) {
    const AbsVal old = into;
    into.iv = Interval::hull(into.iv, from.iv);
    into.len = Interval::hull(into.len, from.len);
    if (widen) {
      if (into.iv.lo < old.iv.lo) into.iv.lo = thr_.widen_lo(into.iv.lo);
      if (into.iv.hi > old.iv.hi) into.iv.hi = thr_.widen_hi(into.iv.hi);
      if (into.len.lo < old.len.lo) into.len.lo = 0;
      if (into.len.hi > old.len.hi) into.len.hi = thr_.widen_hi(into.len.hi);
    }
    into.non_null = into.non_null && from.non_null;
    if (into.from_local != from.from_local) into.from_local = -1;
    if (into.len_of_local != from.len_of_local) into.len_of_local = -1;
    if (into.lt_len_of != from.lt_len_of) into.lt_len_of = -1;
    return into != old;
  }

  bool join_st(St& into, const St& from, bool count_joins) {
    if (!from.reachable) return false;
    if (!into.reachable) {
      into = from;
      into.joins = 0;
      return true;
    }
    if (into.locals.size() != from.locals.size() ||
        into.stack.size() != from.stack.size()) {
      poisoned_ = true;  // Verified code has consistent depth at joins.
      return false;
    }
    bool widen = false;
    if (count_joins) {
      ++into.joins;
      widen = into.joins > kWidenDelay;
    }
    bool ch = false;
    for (std::size_t i = 0; i < into.locals.size(); ++i)
      ch = join_val(into.locals[i], from.locals[i], widen) || ch;
    for (std::size_t i = 0; i < into.stack.size(); ++i)
      ch = join_val(into.stack[i], from.stack[i], widen) || ch;
    return ch;
  }

  // ---- abstract execution ---------------------------------------------------
  AbsVal pop(St& s) {
    if (s.stack.empty()) {
      poisoned_ = true;
      return {};
    }
    AbsVal v = s.stack.back();
    s.stack.pop_back();
    return v;
  }
  void push(St& s, AbsVal v) {
    if (s.stack.size() >= m_.max_stack) {
      poisoned_ = true;
      return;
    }
    s.stack.push_back(std::move(v));
  }
  static AbsVal int_val(Interval iv) {
    AbsVal v;
    v.iv = iv;
    return v;
  }

  /// Any store to `slot` invalidates every relational fact naming it.
  void kill_slot(St& s, std::int32_t slot) {
    auto scrub = [slot](AbsVal& v) {
      if (v.from_local == slot) v.from_local = -1;
      if (v.len_of_local == slot) v.len_of_local = -1;
      if (v.lt_len_of == slot) v.lt_len_of = -1;
    };
    for (auto& v : s.locals) scrub(v);
    for (auto& v : s.stack) scrub(v);
  }

  /// Raw interval intersection into `t`. An empty result proves the refining
  /// fact contradicts the flowing state - the current path is infeasible for
  /// this approximation - so the state drops to bottom. (Interval::meet's
  /// keep-other fallback must NOT be used for state refinement: it would
  /// *replace* the value with the contradiction, which then leaks into
  /// downstream joins where widening makes it permanent. That is how a
  /// never-stored argument local can end up at top.)
  void meet_or_kill(St& s, Interval& t, Interval by) {
    const Interval r{std::max(t.lo, by.lo), std::min(t.hi, by.hi)};
    if (r.lo > r.hi) {
      s.reachable = false;
      return;
    }
    t = r;
  }
  void refine_local_iv(St& s, std::int16_t slot, Interval iv) {
    if (slot < 0) return;
    meet_or_kill(s, s.locals[static_cast<std::size_t>(slot)].iv, iv);
  }
  void mark_non_null(St& s, const AbsVal& ref) {
    if (ref.from_local >= 0)
      s.locals[static_cast<std::size_t>(ref.from_local)].non_null = true;
  }

  void sim(St& s, const Insn& I, std::int32_t pc, MethodIntervals* rep);
  void array_access(St& s, std::int32_t pc, Op op, MethodIntervals* rep);
  void binop(St& s, const Insn& I, std::int32_t pc, MethodIntervals* rep);
  void apply_rel(St& s, Op rel, const AbsVal& a, const AbsVal& b);
  void refine_branch(St& s, Op op, const AbsVal& lhs, const AbsVal& rhs,
                     bool taken);
  /// 1 = always taken, 0 = never, -1 = unknown.
  int eval_cond(Op op, const AbsVal& lhs, const AbsVal& rhs) const;

  St transfer_node(std::int32_t n, const St& in);

  double loop_trips(const NaturalLoop& loop,
                    const std::vector<NaturalLoop>& loops, const DomInfo& dom,
                    const std::vector<St>& in) const;

  const jvm::ClassFile& cf_;
  const jvm::MethodInfo& m_;
  const jvm::SignatureResolver* resolver_;
  std::span<const ArgFact> args_;

  BytecodeCfg cfg_;
  Cfg aug_;                  ///< Edge-split graph (blocks first, then edges).
  std::vector<SynEdge> syn_; ///< Node nblocks+i -> edge descriptor.
  std::int32_t nblocks_ = 0;
  WidenThresholds thr_;      ///< Widening landmarks (see interval_arith.hpp).
  bool poisoned_ = false;
};

void IntervalSolver::apply_rel(St& s, Op rel, const AbsVal& a,
                               const AbsVal& b) {
  // Constraint each operand must satisfy on this edge (not yet intersected
  // with the operand's own interval).
  Interval ca = Interval::top(), cb = Interval::top();
  switch (rel) {
    case Op::kIfIcmpEq:
      ca = b.iv;
      cb = a.iv;
      break;
    case Op::kIfIcmpNe:
      // Holes are unrepresentable; trim endpoints only. x != x (both
      // singleton, equal) is still an infeasible edge.
      if (a.iv.singleton() && b.iv.singleton() && a.iv.lo == b.iv.lo) {
        s.reachable = false;
        return;
      }
      if (b.iv.singleton())
        refine_local_iv(s, a.from_local, exclude(a.iv, b.iv.lo));
      if (a.iv.singleton())
        refine_local_iv(s, b.from_local, exclude(b.iv, a.iv.lo));
      return;
    case Op::kIfIcmpLt:
      ca = {kMin32, b.iv.hi - 1};
      cb = {a.iv.lo + 1, kMax32};
      break;
    case Op::kIfIcmpLe:
      ca = {kMin32, b.iv.hi};
      cb = {a.iv.lo, kMax32};
      break;
    case Op::kIfIcmpGt:
      ca = {b.iv.lo + 1, kMax32};
      cb = {kMin32, a.iv.hi - 1};
      break;
    case Op::kIfIcmpGe:
      ca = {b.iv.lo, kMax32};
      cb = {kMin32, a.iv.hi};
      break;
    default:
      return;
  }
  // Edge infeasible for the current approximation (e.g. a loop-exit test
  // while the counter is still at its initial value): the state is bottom.
  // It re-activates on a later ascending pass once the operands have grown.
  if (std::max(a.iv.lo, ca.lo) > std::min(a.iv.hi, ca.hi) ||
      std::max(b.iv.lo, cb.lo) > std::min(b.iv.hi, cb.hi)) {
    s.reachable = false;
    return;
  }
  refine_local_iv(s, a.from_local, ca);
  refine_local_iv(s, b.from_local, cb);
  // Relational fact: x < array.length survives as long as neither the index
  // slot nor the array slot is overwritten (kill_slot enforces both).
  if (rel == Op::kIfIcmpLt && b.len_of_local >= 0 && a.from_local >= 0)
    s.locals[static_cast<std::size_t>(a.from_local)].lt_len_of =
        b.len_of_local;
  if (rel == Op::kIfIcmpGt && a.len_of_local >= 0 && b.from_local >= 0)
    s.locals[static_cast<std::size_t>(b.from_local)].lt_len_of =
        a.len_of_local;
}

void IntervalSolver::refine_branch(St& s, Op op, const AbsVal& lhs,
                                   const AbsVal& rhs, bool taken) {
  if (op == Op::kIfNull) {
    if (!taken) mark_non_null(s, lhs);
    return;
  }
  if (op == Op::kIfNonNull) {
    if (taken) mark_non_null(s, lhs);
    return;
  }
  AbsVal r = rhs;
  Op rel = op;
  if (op >= Op::kIfeq && op <= Op::kIfge) {  // Compare against constant 0.
    r = int_val(Interval::constant(0));
    rel = static_cast<Op>(static_cast<int>(Op::kIfIcmpEq) +
                          (static_cast<int>(op) - static_cast<int>(Op::kIfeq)));
  }
  if (!taken) {
    switch (rel) {  // Negate the relation for the fallthrough edge.
      case Op::kIfIcmpEq: rel = Op::kIfIcmpNe; break;
      case Op::kIfIcmpNe: rel = Op::kIfIcmpEq; break;
      case Op::kIfIcmpLt: rel = Op::kIfIcmpGe; break;
      case Op::kIfIcmpGe: rel = Op::kIfIcmpLt; break;
      case Op::kIfIcmpGt: rel = Op::kIfIcmpLe; break;
      case Op::kIfIcmpLe: rel = Op::kIfIcmpGt; break;
      default: break;
    }
  }
  apply_rel(s, rel, lhs, r);
}

int IntervalSolver::eval_cond(Op op, const AbsVal& lhs,
                              const AbsVal& rhs) const {
  if (op == Op::kIfNull) return lhs.non_null ? 0 : -1;
  if (op == Op::kIfNonNull) return lhs.non_null ? 1 : -1;
  Interval a = lhs.iv;
  Interval b = rhs.iv;
  Op rel = op;
  if (op >= Op::kIfeq && op <= Op::kIfge) {
    b = Interval::constant(0);
    rel = static_cast<Op>(static_cast<int>(Op::kIfIcmpEq) +
                          (static_cast<int>(op) - static_cast<int>(Op::kIfeq)));
  }
  switch (rel) {
    case Op::kIfIcmpEq:
      if (a.singleton() && b.singleton() && a.lo == b.lo) return 1;
      if (a.hi < b.lo || a.lo > b.hi) return 0;
      return -1;
    case Op::kIfIcmpNe:
      if (a.hi < b.lo || a.lo > b.hi) return 1;
      if (a.singleton() && b.singleton() && a.lo == b.lo) return 0;
      return -1;
    case Op::kIfIcmpLt:
      if (a.hi < b.lo) return 1;
      if (a.lo >= b.hi) return 0;
      return -1;
    case Op::kIfIcmpLe:
      if (a.hi <= b.lo) return 1;
      if (a.lo > b.hi) return 0;
      return -1;
    case Op::kIfIcmpGt:
      if (a.lo > b.hi) return 1;
      if (a.hi <= b.lo) return 0;
      return -1;
    case Op::kIfIcmpGe:
      if (a.lo >= b.hi) return 1;
      if (a.hi < b.lo) return 0;
      return -1;
    default:
      return -1;
  }
}

void IntervalSolver::array_access(St& s, std::int32_t pc, Op op,
                                  MethodIntervals* rep) {
  const bool is_store = op == Op::kIastore || op == Op::kDastore ||
                        op == Op::kBastore || op == Op::kAastore;
  if (is_store) (void)pop(s);  // value
  const AbsVal idx = pop(s);
  const AbsVal ref = pop(s);
  if (poisoned_) return;
  if (rep) {
    const bool rel_ok = idx.lt_len_of >= 0 && ref.from_local == idx.lt_len_of;
    const bool num_ok = idx.iv.hi < ref.len.lo;
    if (ref.non_null && idx.iv.lo >= 0 && (rel_ok || num_ok))
      rep->proven_inbounds[static_cast<std::size_t>(pc)] = 1;
    if (idx.iv.hi < 0 || idx.iv.lo >= ref.len.hi)
      rep->oob_facts.push_back({pc});
  }
  // Normal completion implies ref != null and 0 <= idx < length(ref).
  // A contradictory refinement means the access always throws here.
  if (ref.from_local >= 0) {
    auto& arr = s.locals[static_cast<std::size_t>(ref.from_local)];
    arr.non_null = true;
    meet_or_kill(s, arr.len,
                 {std::max<std::int64_t>(idx.iv.lo, 0) + 1, kMax32});
  }
  if (idx.from_local >= 0) {
    auto& v = s.locals[static_cast<std::size_t>(idx.from_local)];
    meet_or_kill(s, v.iv, {0, std::max<std::int64_t>(ref.len.hi - 1, 0)});
    if (ref.from_local >= 0) v.lt_len_of = ref.from_local;
  }
  if (is_store) return;
  AbsVal out;
  switch (op) {
    case Op::kBaload:
      // Byte elements: [-128, 255] covers both sign- and zero-extension.
      out.iv = {-128, 255};
      break;
    case Op::kIaload:
      out.iv = Interval::top();
      break;
    default:  // kDaload / kAaload: top of their kind.
      break;
  }
  push(s, out);
}

void IntervalSolver::binop(St& s, const Insn& I, std::int32_t pc,
                           MethodIntervals* rep) {
  const AbsVal b = pop(s);
  const AbsVal a = pop(s);
  if (poisoned_) return;
  bool fits = true;
  bool track_wrap = false;
  Interval r = Interval::top();
  switch (I.op) {
    case Op::kIadd: r = add_iv(a.iv, b.iv, &fits); track_wrap = true; break;
    case Op::kIsub: r = sub_iv(a.iv, b.iv, &fits); track_wrap = true; break;
    case Op::kImul: r = mul_iv(a.iv, b.iv, &fits); track_wrap = true; break;
    case Op::kIdiv:
      r = div_iv(a.iv, b.iv);
      if (b.from_local >= 0)  // Completion implies divisor != 0.
        refine_local_iv(s, b.from_local, exclude(b.iv, 0));
      break;
    case Op::kIrem:
      r = rem_iv(a.iv, b.iv);
      if (b.from_local >= 0)
        refine_local_iv(s, b.from_local, exclude(b.iv, 0));
      break;
    case Op::kIshl:
      if (b.iv.singleton() && b.iv.lo >= 0 && b.iv.lo <= 31) {
        r = mul_iv(a.iv, Interval::constant(std::int64_t{1} << b.iv.lo),
                   &fits);
        track_wrap = true;
      }
      break;
    case Op::kIshr:
      if (b.iv.singleton() && b.iv.lo >= 0 && b.iv.lo <= 31)
        r = {a.iv.lo >> b.iv.lo, a.iv.hi >> b.iv.lo};
      break;
    case Op::kIushr:
      if (a.iv.lo >= 0 && b.iv.singleton() && b.iv.lo >= 0 && b.iv.lo <= 31)
        r = {a.iv.lo >> b.iv.lo, a.iv.hi >> b.iv.lo};
      else if (b.iv.lo >= 1)
        r = {0, kMax32};
      break;
    case Op::kIand: r = and_iv(a.iv, b.iv); break;
    case Op::kIor:
    case Op::kIxor: r = orx_iv(a.iv, b.iv); break;
    default: break;
  }
  if (rep && track_wrap && !a.iv.is_top() && !b.iv.is_top()) {
    if (fits) {
      rep->wrap_facts.push_back({pc, false});
    } else {
      // Calibration: only call a wrap *likely* when both operands are
      // genuinely narrow (|bound| <= 2^30). Length-derived bounds span
      // [0, 2^31), where "lo + hi might exceed int32" is structural noise.
      const std::int64_t lim = std::int64_t{1} << 30;
      const std::int64_t mag =
          std::max({std::llabs(a.iv.lo), std::llabs(a.iv.hi),
                    std::llabs(b.iv.lo), std::llabs(b.iv.hi)});
      if (mag <= lim) rep->wrap_facts.push_back({pc, true});
    }
  }
  push(s, int_val(r));
}

void IntervalSolver::sim(St& s, const Insn& I, std::int32_t pc,
                         MethodIntervals* rep) {
  switch (I.op) {
    case Op::kIconst:
      push(s, int_val(Interval::constant(I.a)));
      break;
    case Op::kDconst:
      push(s, AbsVal{});
      break;
    case Op::kAconstNull: {
      AbsVal v;
      v.non_null = false;
      push(s, v);
      break;
    }
    case Op::kIload:
    case Op::kDload:
    case Op::kAload: {
      AbsVal v = s.locals[static_cast<std::size_t>(I.a)];
      v.from_local = static_cast<std::int16_t>(I.a);
      push(s, v);
      break;
    }
    case Op::kIstore:
    case Op::kDstore:
    case Op::kAstore: {
      AbsVal v = pop(s);
      if (poisoned_) break;
      kill_slot(s, I.a);
      // The popped value predates kill_slot's scrub: any relational fact it
      // carries naming the destination slot is about the slot's *old*
      // occupant (e.g. storing arraylength(local s) into slot s) and must
      // not survive the store.
      if (v.from_local == static_cast<std::int16_t>(I.a)) v.from_local = -1;
      if (v.len_of_local == static_cast<std::int16_t>(I.a)) v.len_of_local = -1;
      if (v.lt_len_of == static_cast<std::int16_t>(I.a)) v.lt_len_of = -1;
      s.locals[static_cast<std::size_t>(I.a)] = v;
      break;
    }
    case Op::kPop:
      (void)pop(s);
      break;
    case Op::kDup: {
      if (s.stack.empty()) {
        poisoned_ = true;
        break;
      }
      push(s, s.stack.back());
      break;
    }
    case Op::kIadd: case Op::kIsub: case Op::kImul: case Op::kIdiv:
    case Op::kIrem: case Op::kIshl: case Op::kIshr: case Op::kIushr:
    case Op::kIand: case Op::kIor: case Op::kIxor:
      binop(s, I, pc, rep);
      break;
    case Op::kIneg: {
      const AbsVal a = pop(s);
      if (poisoned_) break;
      bool fits = true;
      const Interval r = neg_iv(a.iv, &fits);
      if (rep && !a.iv.is_top()) rep->wrap_facts.push_back({pc, !fits});
      push(s, int_val(r));
      break;
    }
    case Op::kDadd: case Op::kDsub: case Op::kDmul: case Op::kDdiv:
      (void)pop(s);
      (void)pop(s);
      push(s, AbsVal{});
      break;
    case Op::kDneg:
    case Op::kI2d:
      (void)pop(s);
      push(s, AbsVal{});
      break;
    case Op::kD2i:
      (void)pop(s);
      push(s, int_val(Interval::top()));
      break;
    case Op::kDcmp:
      (void)pop(s);
      (void)pop(s);
      push(s, int_val({-1, 1}));
      break;
    case Op::kGoto:
      break;
    case Op::kInvokeStatic:
    case Op::kInvokeVirtual: {
      if (resolver_ == nullptr ||
          static_cast<std::size_t>(I.a) >= cf_.pool.methods.size()) {
        poisoned_ = true;
        break;
      }
      const jvm::MethodInfo* mi =
          resolver_->resolve_method(cf_.pool.methods[static_cast<std::size_t>(I.a)]);
      if (mi == nullptr) {
        poisoned_ = true;  // Fail closed on unresolved callees.
        break;
      }
      const std::size_t n = mi->num_args();
      if (s.stack.size() < n) {
        poisoned_ = true;
        break;
      }
      if (I.op == Op::kInvokeVirtual && n > 0)
        mark_non_null(s, s.stack[s.stack.size() - n]);
      s.stack.resize(s.stack.size() - n);
      if (mi->sig.ret != TypeKind::kVoid) push(s, AbsVal{});
      break;
    }
    case Op::kInvokeIntrinsic: {
      if (I.a < 0 || I.a >= static_cast<std::int32_t>(isa::Intrinsic::kCount)) {
        poisoned_ = true;
        break;
      }
      const auto id = static_cast<isa::Intrinsic>(I.a);
      const int n = isa::intrinsic_fp_args(id) + isa::intrinsic_int_args(id);
      if (s.stack.size() < static_cast<std::size_t>(n)) {
        poisoned_ = true;
        break;
      }
      s.stack.resize(s.stack.size() - static_cast<std::size_t>(n));
      push(s, isa::intrinsic_returns_double(id) ? AbsVal{}
                                                : int_val(Interval::top()));
      break;
    }
    case Op::kReturn:
      break;
    case Op::kIreturn:
    case Op::kDreturn:
    case Op::kAreturn:
      (void)pop(s);
      break;
    case Op::kGetField: {
      const AbsVal ref = pop(s);
      mark_non_null(s, ref);
      push(s, AbsVal{});
      break;
    }
    case Op::kPutField: {
      (void)pop(s);  // value
      const AbsVal ref = pop(s);
      mark_non_null(s, ref);
      break;
    }
    case Op::kGetStatic:
      push(s, AbsVal{});
      break;
    case Op::kPutStatic:
      (void)pop(s);
      break;
    case Op::kNew: {
      AbsVal v;
      v.non_null = true;
      push(s, v);
      break;
    }
    case Op::kNewArray: {
      const AbsVal n = pop(s);
      if (poisoned_) break;
      // Negative length throws, so normal completion clamps to >= 0; a
      // guaranteed-negative length means this path never completes.
      if (n.iv.hi < 0) {
        s.reachable = false;
        break;
      }
      const Interval L = n.iv.meet({0, kMax32});
      if (n.from_local >= 0) refine_local_iv(s, n.from_local, {0, kMax32});
      if (rep) rep->alloc_len[static_cast<std::size_t>(pc)] = L;
      AbsVal v;
      v.non_null = true;
      v.len = L;
      push(s, v);
      break;
    }
    case Op::kIaload: case Op::kDaload: case Op::kBaload: case Op::kAaload:
    case Op::kIastore: case Op::kDastore: case Op::kBastore: case Op::kAastore:
      array_access(s, pc, I.op, rep);
      break;
    case Op::kArrayLength: {
      const AbsVal ref = pop(s);
      if (poisoned_) break;
      mark_non_null(s, ref);
      AbsVal v;
      v.iv = ref.len.meet(Interval::len_top());
      v.len_of_local = ref.from_local;
      push(s, v);
      break;
    }
    default:
      // Conditional branches are handled by block/edge transfer, not here.
      break;
  }
}

St IntervalSolver::transfer_node(std::int32_t n, const St& in) {
  if (!in.reachable) return in;
  St s = in;
  if (n >= nblocks_) {
    const SynEdge& e = syn_[static_cast<std::size_t>(n - nblocks_)];
    const Insn& I =
        m_.code[static_cast<std::size_t>(cfg_.blocks[e.block].end - 1)];
    const int arity = cond_arity(I.op);
    if (s.stack.size() < static_cast<std::size_t>(arity)) {
      poisoned_ = true;
      return s;
    }
    AbsVal rhs, lhs;
    if (arity == 2) {
      rhs = pop(s);
      lhs = pop(s);
    } else {
      lhs = pop(s);
    }
    if (e.taken >= 0) refine_branch(s, I.op, lhs, rhs, e.taken == 1);
    return s;
  }
  const BytecodeBlock& blk = cfg_.blocks[static_cast<std::size_t>(n)];
  for (std::int32_t pc = blk.begin; pc < blk.end && !poisoned_ && s.reachable;
       ++pc) {
    const Insn& I = m_.code[static_cast<std::size_t>(pc)];
    if (is_cond(I.op) && pc == blk.end - 1) break;  // Operands stay on stack.
    sim(s, I, pc, nullptr);
  }
  return s;
}

/// Syntactic induction-step recognition: the exact `iload s; iconst c;
/// iadd|isub; istore s` sequence. Returns the signed step, or nullopt for
/// any other store shape.
std::optional<std::int64_t> induction_step(const std::vector<Insn>& code,
                                           std::int32_t begin,
                                           std::int32_t pc) {
  const std::int32_t slot = code[static_cast<std::size_t>(pc)].a;
  if (pc - begin < 3) return std::nullopt;
  const Insn& add = code[static_cast<std::size_t>(pc - 1)];
  const Insn& cst = code[static_cast<std::size_t>(pc - 2)];
  const Insn& ld = code[static_cast<std::size_t>(pc - 3)];
  if ((add.op != Op::kIadd && add.op != Op::kIsub) ||
      cst.op != Op::kIconst || ld.op != Op::kIload || ld.a != slot)
    return std::nullopt;
  const std::int64_t step =
      add.op == Op::kIadd ? std::int64_t{cst.a} : -std::int64_t{cst.a};
  if (step == 0) return std::nullopt;
  return step;
}

double IntervalSolver::loop_trips(const NaturalLoop& loop,
                                  const std::vector<NaturalLoop>& loops,
                                  const DomInfo& dom,
                                  const std::vector<St>& in) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Back-edge sources: loop predecessors of the header.
  std::vector<std::int32_t> latches;
  for (std::int32_t p : aug_.preds[static_cast<std::size_t>(loop.header)])
    if (loop.contains(p)) latches.push_back(p);
  if (latches.empty()) return kInf;

  // A stepping site inside a loop nested strictly within `loop` executes up
  // to that inner loop's trip count per iteration of `loop`, so the
  // per-iteration excursion is NOT bounded by the sum of per-site step
  // magnitudes and the wrap-free check below would admit an int32 wrap back
  // into the header interval. Natural loops sharing a header are merged, so
  // a distinct header inside `loop` identifies a strictly-nested loop.
  auto in_nested_loop = [&](std::int32_t b) {
    for (const NaturalLoop& inner : loops) {
      if (inner.header == loop.header || !loop.contains(inner.header))
        continue;
      if (inner.contains(b)) return true;
    }
    return false;
  };

  // Stores per slot across the loop's real blocks.
  struct SlotStores {
    std::int32_t slot;
    std::vector<std::pair<std::int32_t, std::optional<std::int64_t>>> stores;
  };
  std::vector<SlotStores> per_slot;
  auto slot_entry = [&per_slot](std::int32_t slot) -> SlotStores& {
    for (auto& e : per_slot)
      if (e.slot == slot) return e;
    per_slot.push_back({slot, {}});
    return per_slot.back();
  };
  for (std::int32_t b : loop.blocks) {
    if (b >= nblocks_) continue;
    const BytecodeBlock& blk = cfg_.blocks[static_cast<std::size_t>(b)];
    for (std::int32_t pc = blk.begin; pc < blk.end; ++pc) {
      const Insn& I = m_.code[static_cast<std::size_t>(pc)];
      if (I.op == Op::kIstore)
        slot_entry(I.a).stores.emplace_back(b, induction_step(m_.code,
                                                              blk.begin, pc));
      else if (I.op == Op::kDstore || I.op == Op::kAstore)
        slot_entry(I.a).stores.emplace_back(b, std::nullopt);
    }
  }

  const St& hs = in[static_cast<std::size_t>(loop.header)];
  if (!hs.reachable) return kInf;

  double best = kInf;
  for (const SlotStores& cand : per_slot) {
    std::int64_t cmin = 0, csum = 0;
    int sign = 0;
    bool ok = !cand.stores.empty();
    for (const auto& [blk, step] : cand.stores) {
      if (!step || in_nested_loop(blk)) {
        ok = false;
        break;
      }
      const int s = *step > 0 ? 1 : -1;
      if (sign == 0) sign = s;
      if (s != sign) {
        ok = false;
        break;
      }
      const std::int64_t mag = std::llabs(*step);
      cmin = cmin == 0 ? mag : std::min(cmin, mag);
      csum += mag;
    }
    if (!ok) continue;
    // Some store's block must dominate every latch: a loop block dominating
    // all back-edge sources is executed by every completed iteration.
    bool dominated = false;
    for (const auto& [blk, step] : cand.stores) {
      bool all = true;
      for (std::int32_t t : latches)
        if (!dom.dominates(blk, t)) {
          all = false;
          break;
        }
      if (all) {
        dominated = true;
        break;
      }
    }
    if (!dominated) continue;
    if (static_cast<std::size_t>(cand.slot) >= hs.locals.size()) continue;
    const Interval hv = hs.locals[static_cast<std::size_t>(cand.slot)].iv;
    // The monotone-advance argument needs the steps to stay wrap-free while
    // the value is inside [hv.lo, hv.hi]; one iteration may execute several
    // stepping stores, so bound the excursion by the sum of magnitudes.
    // (Each site runs at most once per iteration: stores in nested inner
    // loops were disqualified above.)
    if (sign > 0 && hv.hi + csum > kMax32) continue;
    if (sign < 0 && hv.lo - csum < kMin32) continue;
    const double width = static_cast<double>(hv.hi - hv.lo);
    best = std::min(best, width / static_cast<double>(cmin) + 2.0);
  }
  return best;
}

MethodIntervals IntervalSolver::run() {
  MethodIntervals out;
  out.cfg = build_bytecode_cfg(m_.code);
  cfg_ = out.cfg;
  nblocks_ = static_cast<std::int32_t>(cfg_.num_blocks());
  out.proven_inbounds.assign(m_.code.size(), 0);
  out.alloc_len.assign(m_.code.size(), Interval::len_top());
  out.block_count.assign(cfg_.num_blocks(),
                         std::numeric_limits<double>::infinity());
  if (m_.code.empty() || nblocks_ == 0) return out;  // Fail closed.

  // ---- edge-split graph -----------------------------------------------------
  aug_.succs.assign(cfg_.num_blocks(), std::vector<std::int32_t>{});
  for (std::int32_t b = 0; b < nblocks_; ++b) {
    const BytecodeBlock& blk = cfg_.blocks[static_cast<std::size_t>(b)];
    const Insn& last = m_.code[static_cast<std::size_t>(blk.end - 1)];
    const auto& ss = cfg_.graph.succs[static_cast<std::size_t>(b)];
    if (!is_cond(last.op)) {
      aug_.succs[static_cast<std::size_t>(b)] = ss;
      continue;
    }
    for (std::size_t i = 0; i < ss.size(); ++i) {
      // Successor order is fallthrough first, then target (bytecode_cfg).
      const std::int8_t taken =
          ss.size() == 2 ? static_cast<std::int8_t>(i == 1 ? 1 : 0)
                         : std::int8_t{-1};
      const auto node = static_cast<std::int32_t>(aug_.succs.size());
      syn_.push_back({b, taken});
      aug_.succs[static_cast<std::size_t>(b)].push_back(node);
      aug_.succs.push_back({ss[i]});
    }
  }
  aug_.compute_preds();
  const DomInfo dom = compute_dominators(aug_);

  // ---- entry state ----------------------------------------------------------
  St entry;
  entry.reachable = true;
  entry.locals.assign(m_.max_locals, AbsVal{});
  const std::size_t nargs =
      std::min<std::size_t>(m_.num_args(), m_.max_locals);
  for (std::size_t i = 0; i < nargs; ++i) {
    AbsVal& v = entry.locals[i];
    const ArgFact fact = i < args_.size() ? args_[i] : ArgFact{};
    switch (m_.arg_kind(i)) {
      case TypeKind::kInt:
      case TypeKind::kByte:
        v.iv = fact.value.meet(Interval::top());
        break;
      case TypeKind::kRef:
        v.len = fact.array_len.meet(Interval::len_top());
        v.non_null = fact.non_null;
        break;
      default:
        break;
    }
  }

  // ---- widening thresholds --------------------------------------------------
  // Landmarks: every int constant in the method, plus the caller-supplied
  // argument values and array lengths (the bounds counted loops run to).
  for (const Insn& I : m_.code)
    if (I.op == Op::kIconst) thr_.add(I.a);
  for (const ArgFact& f : args_) {
    thr_.add_interval(f.value);
    thr_.add_interval(f.array_len);
  }
  thr_.seal();

  // ---- ascending solve with delayed widening --------------------------------
  const std::uint64_t max_transfers = 200 * aug_.succs.size() + 1000;
  auto res = solve_forward<St>(
      aug_, dom, entry,
      [this](St& into, const St& from) { return join_st(into, from, true); },
      [this](std::int32_t b, const St& in) { return transfer_node(b, in); },
      max_transfers);
  out.transfers = res.transfer_count;
  if (res.status != FixpointStatus::kConverged || poisoned_) return out;

  // ---- descending narrowing sweeps ------------------------------------------
  for (int pass = 0; pass < kNarrowPasses; ++pass) {
    for (std::int32_t n : dom.rpo) {
      if (n == 0) continue;
      St nin;
      for (std::int32_t p : aug_.preds[static_cast<std::size_t>(n)]) {
        if (!dom.reachable(p)) continue;
        join_st(nin, transfer_node(p, res.in[static_cast<std::size_t>(p)]),
                false);
      }
      res.in[static_cast<std::size_t>(n)] = std::move(nin);
    }
  }
  if (poisoned_) return out;

  // ---- reducibility + loop trip bounds --------------------------------------
  out.reducible = true;
  for (std::size_t u = 0; u < aug_.succs.size(); ++u) {
    if (!dom.reachable(static_cast<std::int32_t>(u))) continue;
    for (std::int32_t v : aug_.succs[u])
      if (dom.reachable(v) &&
          dom.rpo_index[static_cast<std::size_t>(v)] <= dom.rpo_index[u] &&
          !dom.dominates(v, static_cast<std::int32_t>(u)))
        out.reducible = false;
  }
  const std::vector<NaturalLoop> loops = find_natural_loops(aug_, dom);
  std::vector<double> trips(loops.size());
  for (std::size_t i = 0; i < loops.size(); ++i)
    trips[i] = loop_trips(loops[i], loops, dom, res.in);
  for (std::int32_t b = 0; b < nblocks_; ++b) {
    if (!dom.reachable(b) ||
        !res.in[static_cast<std::size_t>(b)].reachable) {
      out.block_count[static_cast<std::size_t>(b)] = 0.0;
      continue;
    }
    double c = 1.0;
    if (!out.reducible) {
      c = std::numeric_limits<double>::infinity();
    } else {
      for (std::size_t i = 0; i < loops.size(); ++i)
        if (loops[i].contains(b)) c *= trips[i];
    }
    out.block_count[static_cast<std::size_t>(b)] = c;
  }

  // ---- reporting walk over the final states ---------------------------------
  for (std::int32_t b = 0; b < nblocks_; ++b) {
    const St& fin = res.in[static_cast<std::size_t>(b)];
    if (!dom.reachable(b) || !fin.reachable) continue;
    St s = fin;
    const BytecodeBlock& blk = cfg_.blocks[static_cast<std::size_t>(b)];
    for (std::int32_t pc = blk.begin;
         pc < blk.end && !poisoned_ && s.reachable; ++pc) {
      const Insn& I = m_.code[static_cast<std::size_t>(pc)];
      if (is_cond(I.op) && pc == blk.end - 1) {
        const int arity = cond_arity(I.op);
        if (s.stack.size() < static_cast<std::size_t>(arity)) {
          poisoned_ = true;
          break;
        }
        AbsVal rhs, lhs;
        if (arity == 2) {
          rhs = pop(s);
          lhs = pop(s);
        } else {
          lhs = pop(s);
        }
        const int verdict = eval_cond(I.op, lhs, rhs);
        if (verdict >= 0) out.branch_facts.push_back({pc, verdict == 1});
        break;
      }
      sim(s, I, pc, &out);
    }
  }
  if (poisoned_) {
    out.proven_inbounds.assign(m_.code.size(), 0);
    out.branch_facts.clear();
    out.oob_facts.clear();
    out.wrap_facts.clear();
    return out;
  }
  out.converged = true;
  return out;
}

}  // namespace

MethodIntervals analyze_intervals(const jvm::ClassFile& cf,
                                  const jvm::MethodInfo& m,
                                  const jvm::SignatureResolver* resolver,
                                  std::span<const ArgFact> args) {
  return IntervalSolver(cf, m, resolver, args).run();
}

}  // namespace javelin::analysis
