// Shared control-flow-graph machinery: reverse postorder, dominator tree
// (Cooper–Harvey–Kennedy), natural loops, loop-nesting depth, and a dense
// backward bitset dataflow solver.
//
// This is the single implementation consumed by every CFG client in the
// system: the JIT's analyses (src/jit/analysis.* are thin adapters over this
// module), the static-analysis passes that run at class-load time
// (analysis::Analyzer), and the lint tool. Algorithms are expressed over a
// plain adjacency `Cfg` so graphs built from JIT IR and graphs built from
// bytecode share one code path.
//
// Callers that meter their work (the JIT charges compilation energy per
// abstract operation, paper Fig 8) pass a WorkFn; the callback is invoked
// with exactly the unit counts the pre-refactor jit::analyze /
// jit::find_loops / jit::compute_liveness charged, so compile energy is
// bit-identical to the historical implementation. Passing an empty WorkFn
// costs one branch per call site.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace javelin::analysis {

/// Work-metering callback: `fn(units)` charges `units` abstract operations.
using WorkFn = std::function<void(std::uint64_t)>;

/// Adjacency-list CFG. Node 0 is the entry. `preds` can be derived from
/// `succs` via compute_preds().
struct Cfg {
  std::vector<std::vector<std::int32_t>> succs;
  std::vector<std::vector<std::int32_t>> preds;

  std::size_t size() const { return succs.size(); }

  /// Rebuild `preds` from `succs`.
  void compute_preds();
};

/// Reverse postorder + immediate dominators of the reachable subgraph.
struct DomInfo {
  std::vector<std::int32_t> rpo;        ///< Reachable blocks in RPO.
  std::vector<std::int32_t> rpo_index;  ///< Block -> RPO position (-1 = dead).
  std::vector<std::int32_t> idom;       ///< Immediate dominator (-1 = none).

  bool reachable(std::int32_t b) const { return rpo_index[b] >= 0; }
  /// True if `a` dominates `b` (reflexive).
  bool dominates(std::int32_t a, std::int32_t b) const;
};

/// RPO + iterative dominators (Cooper–Harvey–Kennedy). Work metering: one
/// call with rpo.size() after the DFS, then one unit per non-entry RPO block
/// per fixed-point pass — the JIT's historical charging, preserved exactly.
DomInfo compute_dominators(const Cfg& g, const WorkFn& work = {});

/// One natural loop (all back edges to the same header merged).
struct NaturalLoop {
  std::int32_t header = -1;
  std::vector<std::int32_t> blocks;  ///< Includes the header.
  bool contains(std::int32_t b) const {
    for (auto x : blocks)
      if (x == b) return true;
    return false;
  }
};

/// Natural loops from back edges t -> h with h dominating t, sorted inner
/// loops first (fewer blocks). Work metering: one unit per body-collection
/// step, as the JIT historically charged.
std::vector<NaturalLoop> find_natural_loops(const Cfg& g, const DomInfo& dom,
                                            const WorkFn& work = {});

/// Per-block loop-nesting depth (0 = not in any loop). A block inside two
/// nested loops has depth 2; headers count as inside their own loop.
std::vector<std::int32_t> loop_depths(std::size_t num_blocks,
                                      const std::vector<NaturalLoop>& loops);

/// Dense per-block bitset dataflow result: `words` 64-bit words per block.
struct BitsetFlow {
  std::size_t words = 0;
  std::vector<std::uint64_t> in, out;

  bool get_in(std::int32_t block, std::int32_t bit) const {
    return (in[static_cast<std::size_t>(block) * words + bit / 64] >>
            (bit % 64)) & 1;
  }
  bool get_out(std::int32_t block, std::int32_t bit) const {
    return (out[static_cast<std::size_t>(block) * words + bit / 64] >>
            (bit % 64)) & 1;
  }
};

/// Iterative backward may-analysis over dense bitsets (the liveness shape):
///   out[b] = union of in[succ];  in[b] = gen[b] | (out[b] & ~kill[b])
/// `gen`/`kill` are per-block bitsets laid out like BitsetFlow (block-major,
/// `words(nbits)` words per block). Blocks are swept in reverse index order
/// until a fixed point; `work` is invoked with 1 per block per sweep (the
/// JIT's historical liveness charging).
BitsetFlow solve_backward_may(const Cfg& g, std::size_t nbits,
                              const std::vector<std::uint64_t>& gen,
                              const std::vector<std::uint64_t>& kill,
                              const WorkFn& work = {});

/// Words needed per block for `nbits` bits.
inline std::size_t bitset_words(std::size_t nbits) { return (nbits + 63) / 64; }

}  // namespace javelin::analysis
