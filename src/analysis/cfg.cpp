#include "analysis/cfg.hpp"

#include <algorithm>

namespace javelin::analysis {

void Cfg::compute_preds() {
  preds.assign(succs.size(), {});
  for (std::size_t b = 0; b < succs.size(); ++b)
    for (std::int32_t s : succs[b])
      preds[static_cast<std::size_t>(s)].push_back(static_cast<std::int32_t>(b));
}

bool DomInfo::dominates(std::int32_t a, std::int32_t b) const {
  while (b >= 0) {
    if (a == b) return true;
    b = idom[b];
  }
  return false;
}

namespace {

void postorder(const Cfg& g, std::int32_t b, std::vector<char>& seen,
               std::vector<std::int32_t>& out) {
  seen[b] = 1;
  for (std::int32_t s : g.succs[b])
    if (!seen[s]) postorder(g, s, seen, out);
  out.push_back(b);
}

inline void charge(const WorkFn& work, std::uint64_t units) {
  if (work) work(units);
}

}  // namespace

DomInfo compute_dominators(const Cfg& g, const WorkFn& work) {
  const std::size_t n = g.size();
  DomInfo a;
  a.rpo_index.assign(n, -1);
  a.idom.assign(n, -1);

  std::vector<char> seen(n, 0);
  std::vector<std::int32_t> po;
  postorder(g, 0, seen, po);
  a.rpo.assign(po.rbegin(), po.rend());
  for (std::size_t i = 0; i < a.rpo.size(); ++i)
    a.rpo_index[a.rpo[i]] = static_cast<std::int32_t>(i);
  charge(work, a.rpo.size());

  // Cooper–Harvey–Kennedy iterative dominators.
  a.idom[0] = 0;
  bool changed = true;
  auto intersect = [&](std::int32_t x, std::int32_t y) {
    while (x != y) {
      while (a.rpo_index[x] > a.rpo_index[y]) x = a.idom[x];
      while (a.rpo_index[y] > a.rpo_index[x]) y = a.idom[y];
    }
    return x;
  };
  while (changed) {
    changed = false;
    for (std::int32_t b : a.rpo) {
      if (b == 0) continue;
      std::int32_t new_idom = -1;
      for (std::int32_t p : g.preds[b]) {
        if (!a.reachable(p) || a.idom[p] < 0) continue;
        new_idom = new_idom < 0 ? p : intersect(p, new_idom);
      }
      if (new_idom >= 0 && a.idom[b] != new_idom) {
        a.idom[b] = new_idom;
        changed = true;
      }
      charge(work, 1);
    }
  }
  a.idom[0] = -1;  // entry has no dominator
  return a;
}

std::vector<NaturalLoop> find_natural_loops(const Cfg& g, const DomInfo& a,
                                            const WorkFn& work) {
  std::vector<NaturalLoop> loops;
  // Back edge t -> h where h dominates t.
  for (std::size_t t = 0; t < g.size(); ++t) {
    if (!a.reachable(static_cast<std::int32_t>(t))) continue;
    for (std::int32_t h : g.succs[t]) {
      if (!a.dominates(h, static_cast<std::int32_t>(t))) continue;
      // Find or create the loop for header h.
      NaturalLoop* loop = nullptr;
      for (auto& l : loops)
        if (l.header == h) loop = &l;
      if (!loop) {
        loops.push_back(NaturalLoop{h, {h}});
        loop = &loops.back();
      }
      // Walk predecessors from t up to h (natural-loop body collection).
      std::vector<std::int32_t> stack;
      if (static_cast<std::int32_t>(t) != h &&
          !loop->contains(static_cast<std::int32_t>(t))) {
        loop->blocks.push_back(static_cast<std::int32_t>(t));
        stack.push_back(static_cast<std::int32_t>(t));
      }
      while (!stack.empty()) {
        const std::int32_t b = stack.back();
        stack.pop_back();
        for (std::int32_t p : g.preds[b]) {
          if (!a.reachable(p) || p == h || loop->contains(p)) continue;
          loop->blocks.push_back(p);
          stack.push_back(p);
        }
        charge(work, 1);
      }
    }
  }
  // Inner loops first (fewer blocks) so clients hoist innermost-outward.
  std::sort(loops.begin(), loops.end(),
            [](const NaturalLoop& x, const NaturalLoop& y) {
              return x.blocks.size() < y.blocks.size();
            });
  return loops;
}

std::vector<std::int32_t> loop_depths(std::size_t num_blocks,
                                      const std::vector<NaturalLoop>& loops) {
  std::vector<std::int32_t> depth(num_blocks, 0);
  for (const auto& l : loops)
    for (std::int32_t b : l.blocks) ++depth[b];
  return depth;
}

BitsetFlow solve_backward_may(const Cfg& g, std::size_t nbits,
                              const std::vector<std::uint64_t>& gen,
                              const std::vector<std::uint64_t>& kill,
                              const WorkFn& work) {
  const std::size_t nb = g.size();
  const std::size_t w = bitset_words(nbits);
  BitsetFlow flow;
  flow.words = w;
  flow.in.assign(nb * w, 0);
  flow.out.assign(nb * w, 0);

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = nb; bi-- > 0;) {
      // out[b] = union of in[succ]
      for (std::size_t k = 0; k < w; ++k) {
        std::uint64_t o = 0;
        for (std::int32_t s : g.succs[bi])
          o |= flow.in[static_cast<std::size_t>(s) * w + k];
        if (o != flow.out[bi * w + k]) {
          flow.out[bi * w + k] = o;
          changed = true;
        }
        // in[b] = gen[b] | (out[b] & ~kill[b])
        const std::uint64_t i =
            gen[bi * w + k] | (flow.out[bi * w + k] & ~kill[bi * w + k]);
        if (i != flow.in[bi * w + k]) {
          flow.in[bi * w + k] = i;
          changed = true;
        }
      }
      charge(work, 1);
    }
  }
  return flow;
}

}  // namespace javelin::analysis
