// Bytecode lint: structural and dataflow diagnostics over verified methods.
//
// Checks (codes are stable identifiers used in text/JSON output and tests):
//   unreachable-block   [error]   block never reached from entry
//   dead-store          [warning] local store whose value is never read
//   constant-foldable   [warning] arithmetic on two constant operands
//   redundant-load-pair [note]    same local loaded twice in a row (dup?)
//   pop-of-pure-value   [warning] pop of a value a pure op just produced
//
// Interval-backed checks (lint_bounds, `javelin_lint --bounds`), derived
// from the abstract-interpretation value-range analysis (intervals.hpp)
// with no argument facts — every verdict holds for *every* input:
//   branch-always-true  [warning] conditional branch always taken
//   branch-always-false [warning] conditional branch never taken
//   guaranteed-oob      [error]   array access index provably outside
//                                 [0, length) on every execution reaching it
//   may-wrap            [warning] int arithmetic on bounded operands whose
//                                 result interval escapes int32
//   cannot-overflow     [note]    bounded int arithmetic proven to fit int32
//                                 (suppressed unless `verbose`: the proof is
//                                 the common case, not a finding)
//
// Diagnostics are deterministic and source-ordered: sorted by (class,
// method, pc, code). The verifier tolerates unreachable code (its abstract
// interpretation simply never visits it), which is exactly why a separate
// lint exists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/classfile.hpp"
#include "jvm/verifier.hpp"

namespace javelin::analysis {

enum class Severity : std::uint8_t { kNote = 0, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string cls;
  std::string method;
  std::int32_t pc = 0;
  std::string code;     ///< Stable check identifier, e.g. "dead-store".
  std::string message;  ///< Human-readable detail.
};

/// Lint one method. Appends to `out`; the caller sorts (lint_class does).
/// Returns the number of basic blocks walked (deterministic pass effort).
std::uint64_t lint_method(const jvm::ClassFile& cf, const jvm::MethodInfo& m,
                          std::vector<Diagnostic>& out);

/// Lint every method of a class; result sorted by (method, pc, code).
std::vector<Diagnostic> lint_class(const jvm::ClassFile& cf);

/// Interval-backed lint of one method (the `--bounds` checks). `resolver`
/// supplies callee arities for the underlying interval analysis; a method
/// whose fixpoint fails closed produces no diagnostics (never guesses).
/// `verbose` additionally emits the cannot-overflow notes. Appends to
/// `out`; returns the analysis transfer count (deterministic pass effort).
std::uint64_t lint_bounds(const jvm::ClassFile& cf, const jvm::MethodInfo& m,
                          const jvm::SignatureResolver* resolver,
                          std::vector<Diagnostic>& out, bool verbose = false);

/// Stable ordering: (class, method, pc, code).
void sort_diagnostics(std::vector<Diagnostic>& ds);

}  // namespace javelin::analysis
