// Bytecode lint: structural and dataflow diagnostics over verified methods.
//
// Checks (codes are stable identifiers used in text/JSON output and tests):
//   unreachable-block   [error]   block never reached from entry
//   dead-store          [warning] local store whose value is never read
//   constant-foldable   [warning] arithmetic on two constant operands
//   redundant-load-pair [note]    same local loaded twice in a row (dup?)
//   pop-of-pure-value   [warning] pop of a value a pure op just produced
//
// Diagnostics are deterministic and source-ordered: sorted by (class,
// method, pc, code). The verifier tolerates unreachable code (its abstract
// interpretation simply never visits it), which is exactly why a separate
// lint exists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jvm/classfile.hpp"

namespace javelin::analysis {

enum class Severity : std::uint8_t { kNote = 0, kWarning, kError };

const char* severity_name(Severity s);

struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string cls;
  std::string method;
  std::int32_t pc = 0;
  std::string code;     ///< Stable check identifier, e.g. "dead-store".
  std::string message;  ///< Human-readable detail.
};

/// Lint one method. Appends to `out`; the caller sorts (lint_class does).
/// Returns the number of basic blocks walked (deterministic pass effort).
std::uint64_t lint_method(const jvm::ClassFile& cf, const jvm::MethodInfo& m,
                          std::vector<Diagnostic>& out);

/// Lint every method of a class; result sorted by (method, pc, code).
std::vector<Diagnostic> lint_class(const jvm::ClassFile& cf);

/// Stable ordering: (class, method, pc, code).
void sort_diagnostics(std::vector<Diagnostic>& ds);

}  // namespace javelin::analysis
