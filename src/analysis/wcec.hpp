// Guaranteed static energy bounds: a per-method, per-execution-tier energy
// interval [bcec_j, wcec_j] (best-/worst-case energy consumption) such that
// every *normally completing* invocation's exact ledger energy lies inside
// it. The containment-oracle tier-1 test (tests/wcec_oracle_test.cpp)
// asserts exactly that across the whole app corpus, so the analysis is
// falsifiable against the simulator's ground truth, not advisory.
//
// Charging model (mirrors the execution engines instruction for
// instruction):
//  * Interpreter tier: every bytecode costs the fetch/decode/dispatch
//    triple (opspec::kDispatchCost) plus its StaticOpCost classes from
//    jvm/opspec.hpp — the same table the interpreter handlers charge.
//    Context-dependent ops (invokes, intrinsics, allocations) add their
//    argument pops / result push, the intrinsic's complex-ALU cost, or the
//    allocation's header+body stores.
//  * Native tiers: every native instruction costs its instr_class_of class;
//    memory ops add one D-cache access, the virtual-call bridge adds the
//    receiver-header load + 2 table-lookup loads, intrinsics their
//    (cost - 1) extra complex-ALU units, allocations the runtime's
//    header+body stores.
//  * DRAM: best case zero (all cache hits). Worst case 2 accesses per
//    D-cache access (miss fill + dirty-line writeback) and 1 per native
//    instruction fetch (I-cache lines are never dirty); the interpreter
//    performs at most one D-cache access per load/store class charge, so
//    2 x (load + store charges) bounds its DRAM traffic.
//  * Block counts: the worst case multiplies each basic block's cost by the
//    loop trip-count product from the interval analysis (intervals.hpp);
//    the best case is a shortest entry-to-return path (any completed
//    execution is a walk visiting entry and a return, so the cheapest path
//    under per-block lower bounds is a true lower bound).
//
// Interprocedural rule (mirrors lengths.cpp): callee summaries are memoized
// per (method, tier) with unconstrained arguments and composed into call
// sites; virtual calls take the min/max over every same-name non-static
// method (a superset of the dynamic dispatch set). Fail-closed cases —
// recursion, unresolved callees, a truncated or poisoned interval fixpoint,
// irreducible control flow — contribute [0, +inf): the bcec stays a sound
// (if weak) lower bound and the wcec honestly reports "unbounded".
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/intervals.hpp"
#include "energy/energy.hpp"
#include "isa/nisa.hpp"
#include "jvm/classfile.hpp"
#include "jvm/verifier.hpp"

namespace javelin::analysis {

/// Guaranteed energy interval for one invocation, in joules. `wcec_j` is
/// +inf when no finite bound can be proven (fail closed).
struct EnergyInterval {
  double bcec_j = 0.0;
  double wcec_j = std::numeric_limits<double>::infinity();

  bool bounded() const { return std::isfinite(wcec_j); }
  bool contains(double j) const { return j >= bcec_j && j <= wcec_j; }
};

/// Static energy-bound analysis over a deployed class set.
///
/// Tier 0 models the pure interpreter (every method interpreted). Tiers
/// 1..3 model a JIT configuration: methods bound to a NativeProgram via
/// set_native() execute natively, everything else falls back to the
/// interpreter model — exactly the engine's dispatch rule, so the caller
/// must bind precisely the methods that are installed at that tier.
class WcecAnalysis {
 public:
  static constexpr int kTierInterp = 0;
  static constexpr int kNumTiers = 4;  ///< interp + L1..L3.

  WcecAnalysis(std::vector<const jvm::ClassFile*> classes,
               const energy::InstructionEnergyTable& table);

  /// Bind a Jvm method id (deploy order) to its MethodInfo so native
  /// kCall/kCallv immediates resolve. Unbound callee ids fail closed.
  void bind_method(std::int32_t method_id, const jvm::MethodInfo* m);

  /// Declare that at `tier` (1..3) `m` executes `prog`. The program need
  /// not be installed in simulated memory; only its code is read.
  void set_native(int tier, const jvm::MethodInfo* m,
                  const isa::NativeProgram* prog);

  /// Guaranteed energy interval for one invocation of `m` at `tier`.
  /// `args` refines the root method's entry state only — callee summaries
  /// always use unconstrained arguments (memoized, fail-closed).
  EnergyInterval bounds(const jvm::MethodInfo* m, int tier,
                        std::span<const ArgFact> args = {});
  /// Lookup by "Class"/"method" name (nullopt-style: fail-closed interval
  /// when the method does not exist).
  EnergyInterval bounds(std::string_view cls, std::string_view method,
                        int tier, std::span<const ArgFact> args = {});

 private:
  struct MethodCtx {
    const jvm::ClassFile* cf = nullptr;
    const jvm::MethodInfo* mi = nullptr;
  };

  const MethodCtx* ctx_of(const jvm::MethodInfo* m) const;
  std::uint32_t obj_size_of(const std::string& cls) const;

  EnergyInterval summary(const jvm::MethodInfo* m, int tier);
  EnergyInterval compute(const jvm::MethodInfo* m, int tier,
                         std::span<const ArgFact> args);
  EnergyInterval interp_bounds(const MethodCtx& c, int tier,
                               std::span<const ArgFact> args);
  EnergyInterval native_bounds(const MethodCtx& c, int tier,
                               const isa::NativeProgram& prog,
                               std::span<const ArgFact> args);
  EnergyInterval call_bounds(const jvm::MethodInfo* callee, int tier);
  EnergyInterval virtual_bounds(const std::string& name, int tier);

  std::vector<const jvm::ClassFile*> classes_;
  energy::InstructionEnergyTable table_;
  jvm::ClassSetResolver resolver_;
  std::vector<MethodCtx> methods_;                      ///< All methods.
  std::map<const jvm::MethodInfo*, std::size_t> by_mi_;
  std::map<std::string, std::uint32_t> obj_size_;       ///< Replicated layout.
  std::map<std::int32_t, const jvm::MethodInfo*> by_id_;
  std::map<const jvm::MethodInfo*, const isa::NativeProgram*>
      native_[kNumTiers];
  std::map<std::pair<const jvm::MethodInfo*, int>, EnergyInterval> memo_;
  std::map<std::pair<const jvm::MethodInfo*, int>, char> on_stack_;
  std::map<const jvm::MethodInfo*, MethodIntervals> intervals_;
};

}  // namespace javelin::analysis
