// Generic forward abstract-interpretation framework: a deterministic
// worklist solver over lattices keyed by basic block.
//
// A pass supplies a lattice element type `State` plus two callables:
//
//   join(State& into, const State& from) -> bool   // true if `into` changed
//   transfer(block_index, const State& in) -> State
//
// The solver seeds the worklist in reverse postorder (so acyclic regions
// converge in one sweep), iterates to a fixed point, and reports the number
// of transfer applications — a deterministic, host-clock-free measure of
// pass effort used as the "pass timing" in trace events.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/cfg.hpp"

namespace javelin::analysis {

/// How a solve ended. Clients that derive *guarantees* from the fixpoint
/// (interval widening, WCEC trip bounds) must check for kBoundExhausted and
/// fail closed: a truncated solve returns states that are sound only for the
/// joins that actually ran, not a fixed point.
enum class FixpointStatus : std::uint8_t {
  kConverged = 0,     ///< Worklist drained: a true fixed point.
  kBoundExhausted,    ///< max_transfers hit with work remaining.
};

template <typename State>
struct FixpointResult {
  std::vector<State> in;               ///< Fixed-point in-state per block.
  std::uint64_t transfer_count = 0;    ///< Transfer applications until fixpoint.
  FixpointStatus status = FixpointStatus::kConverged;
};

/// Forward worklist solver. `entry` is the in-state of block 0; unreachable
/// blocks keep the default-constructed `State`. `max_transfers` bounds
/// runaway lattices (0 = no bound); on hitting the bound the current
/// (sound-if-monotone-joined) states are returned as-is with
/// `status == FixpointStatus::kBoundExhausted`.
template <typename State, typename JoinFn, typename TransferFn>
FixpointResult<State> solve_forward(const Cfg& g, const DomInfo& dom,
                                    State entry, JoinFn join,
                                    TransferFn transfer,
                                    std::uint64_t max_transfers = 0) {
  FixpointResult<State> r;
  r.in.assign(g.size(), State{});
  if (g.size() == 0) return r;
  r.in[0] = std::move(entry);

  std::deque<std::int32_t> worklist(dom.rpo.begin(), dom.rpo.end());
  std::vector<char> queued(g.size(), 0);
  for (std::int32_t b : dom.rpo) queued[b] = 1;

  while (!worklist.empty()) {
    const std::int32_t b = worklist.front();
    worklist.pop_front();
    queued[b] = 0;
    State out = transfer(b, r.in[b]);
    ++r.transfer_count;
    if (max_transfers && r.transfer_count >= max_transfers) {
      // `out` has not been propagated and the worklist may be non-empty:
      // this is a truncation, not convergence. (When the bound lands on the
      // very last transfer the result happens to equal the fixed point, but
      // the solver cannot know that without the propagation it just skipped,
      // so it still reports exhaustion — callers fail closed.)
      r.status = FixpointStatus::kBoundExhausted;
      break;
    }
    for (std::int32_t s : g.succs[b]) {
      if (!dom.reachable(s)) continue;
      if (join(r.in[s], out) && !queued[s]) {
        worklist.push_back(s);
        queued[s] = 1;
      }
    }
  }
  return r;
}

}  // namespace javelin::analysis
