#include "analysis/offload.hpp"

#include <algorithm>

#include "analysis/bytecode_cfg.hpp"
#include "analysis/cost.hpp"
#include "analysis/dataflow.hpp"
#include "isa/nisa.hpp"

namespace javelin::analysis {

using jvm::Op;
using jvm::TypeKind;

namespace {

// Alias abstraction: a bitmask per slot. Bits 0..29 = "may hold a reference
// reaching parameter i" (parameters past 29 share bit 29), bit 30 = fresh
// allocation, bit 31 = anything else (ints, doubles, nulls, statics).
using Mask = std::uint32_t;
constexpr Mask kFreshBit = 1u << 30;
constexpr Mask kOtherBit = 1u << 31;
constexpr Mask kParamBits = kFreshBit - 1;

Mask param_bit(std::size_t i) { return 1u << std::min<std::size_t>(i, 29); }

struct AliasState {
  bool valid = false;
  std::vector<Mask> locals;
  std::vector<Mask> stack;
};

bool join_states(AliasState& into, const AliasState& from) {
  if (!from.valid) return false;
  if (!into.valid) {
    into = from;
    return true;
  }
  bool changed = false;
  if (into.stack.size() > from.stack.size())
    into.stack.resize(from.stack.size());  // verified code never hits this
  for (std::size_t i = 0; i < into.stack.size(); ++i) {
    const Mask m = into.stack[i] | from.stack[i];
    if (m != into.stack[i]) { into.stack[i] = m; changed = true; }
  }
  for (std::size_t i = 0; i < into.locals.size(); ++i) {
    const Mask m = into.locals[i] | from.locals[i];
    if (m != into.locals[i]) { into.locals[i] = m; changed = true; }
  }
  return changed;
}

}  // namespace

std::int64_t serialized_arg_bytes(TypeKind k) {
  switch (k) {
    case TypeKind::kInt: return 5;     // tag + i32
    case TypeKind::kDouble: return 9;  // tag + f64
    case TypeKind::kRef: return -1;    // length known only at runtime
    default: return 1;
  }
}

const OffloadSafety& OffloadAnalyzer::analyze(const jvm::ClassFile& cf,
                                              const jvm::MethodInfo& m) {
  auto it = memo_.find(&m);
  if (it != memo_.end()) return it->second;
  OffloadSafety s = compute(cf, m);
  return memo_.emplace(&m, std::move(s)).first->second;
}

OffloadSafety OffloadAnalyzer::compute(const jvm::ClassFile& cf,
                                       const jvm::MethodInfo& m) {
  OffloadSafety safety;

  // Request-size bound from the signature alone.
  for (std::size_t i = 0; i < m.num_args(); ++i) {
    const std::int64_t b = serialized_arg_bytes(m.arg_kind(i));
    if (b < 0 || safety.request_bytes_bound < 0)
      safety.request_bytes_bound = -1;
    else
      safety.request_bytes_bound += b;
  }
  if (m.code.empty()) return safety;

  stack_.push_back(&m);

  const BytecodeCfg cfg = build_bytecode_cfg(m.code);
  const DomInfo dom = compute_dominators(cfg.graph);
  const std::vector<NaturalLoop> loops = find_natural_loops(cfg.graph, dom);
  const std::vector<std::int32_t> depth = loop_depths(cfg.num_blocks(), loops);

  // One symbolic execution of block `b` from `st`. When `record` is set,
  // side effects are accumulated (the post-fixpoint reporting sweep).
  auto step_block = [&](std::int32_t b, AliasState st,
                        OffloadSafety* record) -> AliasState {
    auto pop = [&]() -> Mask {
      if (st.stack.empty()) return kOtherBit;  // hostile input; stay sound
      const Mask v = st.stack.back();
      st.stack.pop_back();
      return v;
    };
    auto push = [&](Mask v) { st.stack.push_back(v); };
    auto local = [&](std::int32_t slot) -> Mask {
      return slot >= 0 && static_cast<std::size_t>(slot) < st.locals.size()
                 ? st.locals[slot]
                 : kOtherBit;
    };
    auto set_local = [&](std::int32_t slot, Mask v) {
      if (slot >= 0 && static_cast<std::size_t>(slot) < st.locals.size())
        st.locals[slot] = v;
    };

    for (std::int32_t pc = cfg.blocks[b].begin; pc < cfg.blocks[b].end; ++pc) {
      const jvm::Insn& in = m.code[pc];
      switch (in.op) {
        case Op::kIconst: case Op::kDconst: case Op::kAconstNull:
          push(kOtherBit);
          break;
        case Op::kIload: case Op::kDload:
          push(kOtherBit);
          break;
        case Op::kAload:
          push(local(in.a));
          break;
        case Op::kIstore: case Op::kDstore:
          pop();
          set_local(in.a, kOtherBit);
          break;
        case Op::kAstore:
          set_local(in.a, pop());
          break;

        case Op::kPop:
          pop();
          break;
        case Op::kDup: {
          const Mask v = pop();
          push(v);
          push(v);
          break;
        }

        case Op::kIadd: case Op::kIsub: case Op::kImul: case Op::kIdiv:
        case Op::kIrem: case Op::kIshl: case Op::kIshr: case Op::kIushr:
        case Op::kIand: case Op::kIor: case Op::kIxor:
        case Op::kDadd: case Op::kDsub: case Op::kDmul: case Op::kDdiv:
        case Op::kDcmp:
          pop();
          pop();
          push(kOtherBit);
          break;
        case Op::kIneg: case Op::kDneg: case Op::kI2d: case Op::kD2i:
          pop();
          push(kOtherBit);
          break;

        case Op::kIfeq: case Op::kIfne: case Op::kIflt:
        case Op::kIfle: case Op::kIfgt: case Op::kIfge:
        case Op::kIfNull: case Op::kIfNonNull:
          pop();
          break;
        case Op::kIfIcmpEq: case Op::kIfIcmpNe: case Op::kIfIcmpLt:
        case Op::kIfIcmpLe: case Op::kIfIcmpGt: case Op::kIfIcmpGe:
          pop();
          pop();
          break;
        case Op::kGoto:
          break;

        case Op::kInvokeStatic:
        case Op::kInvokeVirtual: {
          if (in.a < 0 ||
              static_cast<std::size_t>(in.a) >= cf.pool.methods.size()) {
            if (record) record->calls_unresolved = true;
            break;
          }
          const jvm::MethodRef& ref = cf.pool.methods[in.a];
          const ResolvedMethod callee = resolve_method_class(resolver_, ref);
          const jvm::MethodInfo* ci =
              callee.method ? callee.method : resolver_.resolve_method(ref);
          if (ci == nullptr) {
            if (record) record->calls_unresolved = true;
            break;
          }
          Mask ref_args = 0;  // union of masks of reference arguments
          for (std::size_t i = ci->num_args(); i-- > 0;) {
            const Mask v = pop();
            if (ci->arg_kind(i) == TypeKind::kRef) ref_args |= v;
          }
          if (ci->sig.ret != TypeKind::kVoid)
            push(ci->sig.ret == TypeKind::kRef
                     ? ((ref_args & kParamBits) | kFreshBit)
                     : kOtherBit);
          if (record) {
            const bool cycle =
                std::find(stack_.begin(), stack_.end(), ci) != stack_.end();
            if (cycle) {
              // In-progress callee: assume it does to its ref args whatever
              // a worst-case body could.
              record->recursive = true;
              if (ref_args & kParamBits) {
                record->mutates_params = true;
                record->param_escapes = true;
              }
            } else if (callee.cls) {
              const OffloadSafety& cs = analyze(*callee.cls, *ci);
              record->writes_statics |= cs.writes_statics;
              record->calls_unresolved |= cs.calls_unresolved;
              record->recursive |= cs.recursive;
              record->alloc_in_loop |= cs.alloc_in_loop;
              record->work += cs.work;
              if (ref_args & kParamBits) {
                record->mutates_params |= cs.mutates_params;
                record->param_escapes |= cs.param_escapes;
              }
            } else {
              record->calls_unresolved = true;
            }
          }
          break;
        }
        case Op::kInvokeIntrinsic: {
          if (in.a >= 0 &&
              in.a < static_cast<std::int32_t>(isa::Intrinsic::kCount)) {
            const auto id = static_cast<isa::Intrinsic>(in.a);
            for (int i = 0; i < isa::intrinsic_fp_args(id); ++i) pop();
            for (int i = 0; i < isa::intrinsic_int_args(id); ++i) pop();
          }
          push(kOtherBit);
          break;
        }

        case Op::kReturn:
          break;
        case Op::kIreturn: case Op::kDreturn:
          pop();
          break;
        case Op::kAreturn: {
          const Mask v = pop();
          if (record && (v & kParamBits)) record->param_escapes = true;
          break;
        }

        case Op::kGetStatic:
          push(kOtherBit);
          break;
        case Op::kPutStatic: {
          const Mask v = pop();
          if (record) {
            record->writes_statics = true;
            if (v & kParamBits) record->param_escapes = true;
          }
          break;
        }
        case Op::kGetField: {
          const Mask base = pop();
          Mask out = kOtherBit;
          if (in.a >= 0 &&
              static_cast<std::size_t>(in.a) < cf.pool.fields.size()) {
            const jvm::FieldInfo* f =
                resolver_.resolve_field(cf.pool.fields[in.a]);
            if (f && f->kind == TypeKind::kRef)
              out |= base & kParamBits;  // reachable-from-param propagates
          }
          push(out);
          break;
        }
        case Op::kPutField: {
          const Mask v = pop();
          const Mask base = pop();
          if (record) {
            if (base & kParamBits) record->mutates_params = true;
            if (v & kParamBits) record->param_escapes = true;
          }
          break;
        }

        case Op::kNew:
          push(kFreshBit);
          if (record && depth[b] > 0) record->alloc_in_loop = true;
          break;
        case Op::kNewArray:
          pop();
          push(kFreshBit);
          if (record && depth[b] > 0) record->alloc_in_loop = true;
          break;

        case Op::kIaload: case Op::kDaload: case Op::kBaload:
          pop();
          pop();
          push(kOtherBit);
          break;
        case Op::kAaload: {
          pop();  // index
          const Mask base = pop();
          push((base & kParamBits) | kOtherBit);
          break;
        }
        case Op::kIastore: case Op::kDastore: case Op::kBastore:
        case Op::kAastore: {
          const Mask v = pop();
          pop();  // index
          const Mask base = pop();
          if (record) {
            if (base & kParamBits) record->mutates_params = true;
            if (in.op == Op::kAastore && (v & kParamBits))
              record->param_escapes = true;
          }
          break;
        }
        case Op::kArrayLength:
          pop();
          push(kOtherBit);
          break;

        case Op::kCount:
          break;
      }
    }
    return st;
  };

  // Entry state: parameters in their argument slots.
  AliasState entry;
  entry.valid = true;
  entry.locals.assign(m.max_locals, 0);
  for (std::size_t i = 0; i < m.num_args() && i < entry.locals.size(); ++i)
    entry.locals[i] =
        m.arg_kind(i) == TypeKind::kRef ? param_bit(i) : kOtherBit;

  auto fix = solve_forward<AliasState>(
      cfg.graph, dom, std::move(entry), join_states,
      [&](std::int32_t b, const AliasState& in) {
        return step_block(b, in, nullptr);
      });
  safety.work += fix.transfer_count;

  // Reporting sweep over the fixed point, in RPO for determinism.
  for (std::int32_t b : dom.rpo) {
    if (!fix.in[b].valid) continue;
    step_block(b, fix.in[b], &safety);
  }

  stack_.pop_back();
  return safety;
}

}  // namespace javelin::analysis
