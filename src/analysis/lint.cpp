#include "analysis/lint.hpp"

#include <algorithm>

#include "analysis/bytecode_cfg.hpp"
#include "analysis/cfg.hpp"
#include "analysis/intervals.hpp"
#include "jvm/opspec.hpp"

namespace javelin::analysis {

using jvm::Op;

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

namespace {

// Opcode-classification predicates come from the shared opcode-spec table,
// so the lint checks cannot drift from the interpreter / cost model when an
// opcode is added (tests/opspec_test.cpp pins the categories).
using jvm::opspec::is_double_binop;
using jvm::opspec::is_int_binop;
using jvm::opspec::is_local_load;
using jvm::opspec::is_local_store;
using jvm::opspec::is_pure_producer;
using jvm::opspec::is_shift;

/// Literal small enough that pre-folding it would plainly be clearer than
/// writing the expression (see the calibration note at the check site).
bool is_small_literal(std::int32_t v) { return v >= -128 && v <= 127; }

}  // namespace

std::uint64_t lint_method(const jvm::ClassFile& cf, const jvm::MethodInfo& m,
                          std::vector<Diagnostic>& out) {
  if (m.code.empty()) return 0;
  const BytecodeCfg cfg = build_bytecode_cfg(m.code);
  const DomInfo dom = compute_dominators(cfg.graph);

  auto diag = [&](Severity sev, std::int32_t pc, const char* code,
                  std::string msg) {
    out.push_back(Diagnostic{sev, cf.name, m.name, pc, code, std::move(msg)});
  };

  // --- unreachable-block -------------------------------------------------
  for (std::size_t b = 0; b < cfg.num_blocks(); ++b) {
    if (!dom.reachable(static_cast<std::int32_t>(b)))
      diag(Severity::kError, cfg.blocks[b].begin, "unreachable-block",
           "instructions " + std::to_string(cfg.blocks[b].begin) + ".." +
               std::to_string(cfg.blocks[b].end - 1) +
               " are unreachable from entry");
  }

  // --- dead-store (backward local-slot liveness) -------------------------
  const std::size_t nslots = m.max_locals;
  const std::size_t w = bitset_words(nslots);
  if (nslots > 0) {
    std::vector<std::uint64_t> gen(cfg.num_blocks() * w, 0);
    std::vector<std::uint64_t> kill(cfg.num_blocks() * w, 0);
    auto bit_set = [w](std::vector<std::uint64_t>& v, std::size_t b,
                       std::int32_t s) {
      v[b * w + static_cast<std::size_t>(s) / 64] |= 1ULL << (s % 64);
    };
    auto bit_get = [w](const std::vector<std::uint64_t>& v, std::size_t b,
                       std::int32_t s) {
      return (v[b * w + static_cast<std::size_t>(s) / 64] >> (s % 64)) & 1;
    };
    for (std::size_t b = 0; b < cfg.num_blocks(); ++b) {
      for (std::int32_t pc = cfg.blocks[b].begin; pc < cfg.blocks[b].end;
           ++pc) {
        const jvm::Insn& in = m.code[pc];
        if (in.a < 0 || static_cast<std::size_t>(in.a) >= nslots) continue;
        if (is_local_load(in.op)) {
          if (!bit_get(kill, b, in.a)) bit_set(gen, b, in.a);
        } else if (is_local_store(in.op)) {
          bit_set(kill, b, in.a);
        }
      }
    }
    const BitsetFlow live = solve_backward_may(cfg.graph, nslots, gen, kill);
    for (std::int32_t b : dom.rpo) {
      // Walk the block backwards from its live-out set.
      std::vector<std::uint64_t> cur(
          live.out.begin() + static_cast<std::ptrdiff_t>(b * w),
          live.out.begin() + static_cast<std::ptrdiff_t>((b + 1) * w));
      for (std::int32_t pc = cfg.blocks[b].end; pc-- > cfg.blocks[b].begin;) {
        const jvm::Insn& in = m.code[pc];
        if (in.a < 0 || static_cast<std::size_t>(in.a) >= nslots) continue;
        const std::size_t word = static_cast<std::size_t>(in.a) / 64;
        const std::uint64_t mask = 1ULL << (in.a % 64);
        if (is_local_store(in.op)) {
          if (!(cur[word] & mask))
            diag(Severity::kWarning, pc, "dead-store",
                 "value stored to local " + std::to_string(in.a) +
                     " is never read");
          cur[word] &= ~mask;
        } else if (is_local_load(in.op)) {
          cur[word] |= mask;
        }
      }
    }
  }

  // --- peephole checks (within one block only) ---------------------------
  auto same_block = [&](std::int32_t a, std::int32_t b) {
    return cfg.block_of[a] == cfg.block_of[b];
  };
  for (std::int32_t pc = 0;
       pc < static_cast<std::int32_t>(m.code.size()); ++pc) {
    if (!dom.reachable(cfg.block_of[pc])) continue;  // already reported
    const jvm::Insn& in = m.code[pc];

    // Calibrated against the shipped benchmark corpus: shifts are exempt
    // (`1 << k` is deliberate bit-flag construction) and so is arithmetic
    // involving a large literal (`BIG_SENTINEL + 1` style named-constant
    // expressions); what remains — small-literal arithmetic like `2 + 3` —
    // is almost always a typo'd magic number.
    if (pc >= 2 && same_block(pc - 2, pc) &&
        ((is_int_binop(in.op) && !is_shift(in.op) &&
          m.code[pc - 1].op == Op::kIconst &&
          m.code[pc - 2].op == Op::kIconst &&
          is_small_literal(m.code[pc - 1].a) &&
          is_small_literal(m.code[pc - 2].a)) ||
         (is_double_binop(in.op) && m.code[pc - 1].op == Op::kDconst &&
          m.code[pc - 2].op == Op::kDconst)))
      diag(Severity::kWarning, pc, "constant-foldable",
           std::string(jvm::op_name(in.op)) +
               " of two constants can be folded at build time");

    // A load pair immediately consumed by one binary op is the `x op x`
    // idiom (squaring, doubling) — the natural encoding, not a defect. Flag
    // only pairs that are *not* consumed together that way.
    const bool pair_is_binop_operands =
        pc + 1 < static_cast<std::int32_t>(m.code.size()) &&
        same_block(pc, pc + 1) &&
        (is_int_binop(m.code[pc + 1].op) ||
         is_double_binop(m.code[pc + 1].op) ||
         m.code[pc + 1].op == Op::kDcmp);
    if (pc >= 1 && same_block(pc - 1, pc) && is_local_load(in.op) &&
        m.code[pc - 1].op == in.op && m.code[pc - 1].a == in.a &&
        !pair_is_binop_operands)
      diag(Severity::kNote, pc, "redundant-load-pair",
           "local " + std::to_string(in.a) +
               " loaded twice in a row; dup is cheaper");

    if (in.op == Op::kPop && pc >= 1 && same_block(pc - 1, pc) &&
        is_pure_producer(m.code[pc - 1].op))
      diag(Severity::kWarning, pc, "pop-of-pure-value",
           std::string("pop discards the result of ") +
               jvm::op_name(m.code[pc - 1].op) +
               "; both instructions are dead");
  }

  return dom.rpo.size();
}

std::uint64_t lint_bounds(const jvm::ClassFile& cf, const jvm::MethodInfo& m,
                          const jvm::SignatureResolver* resolver,
                          std::vector<Diagnostic>& out, bool verbose) {
  if (m.code.empty()) return 0;
  const MethodIntervals mi = analyze_intervals(cf, m, resolver);
  if (!mi.converged) return mi.transfers;  // Fail closed: never guess.

  auto diag = [&](Severity sev, std::int32_t pc, const char* code,
                  std::string msg) {
    out.push_back(Diagnostic{sev, cf.name, m.name, pc, code, std::move(msg)});
  };

  // The analysis ran with no argument facts, so every verdict below holds
  // for every possible invocation, not just some witnessed one.
  for (const BranchFact& f : mi.branch_facts)
    diag(Severity::kWarning, f.pc,
         f.always_taken ? "branch-always-true" : "branch-always-false",
         std::string(jvm::op_name(m.code[static_cast<std::size_t>(f.pc)].op)) +
             (f.always_taken ? " is taken on every execution; the fall-"
                               "through edge is dead"
                             : " is never taken; the branch-target edge is "
                               "dead"));
  for (const OobFact& f : mi.oob_facts)
    diag(Severity::kError, f.pc, "guaranteed-oob",
         std::string(jvm::op_name(m.code[static_cast<std::size_t>(f.pc)].op)) +
             " index is provably outside [0, length) on every execution "
             "reaching it");
  for (const WrapFact& f : mi.wrap_facts) {
    if (f.may_wrap)
      diag(Severity::kWarning, f.pc, "may-wrap",
           std::string(
               jvm::op_name(m.code[static_cast<std::size_t>(f.pc)].op)) +
               " on bounded operands can exceed int32 and wrap");
    else if (verbose)
      diag(Severity::kNote, f.pc, "cannot-overflow",
           std::string(
               jvm::op_name(m.code[static_cast<std::size_t>(f.pc)].op)) +
               " result is proven to fit int32 for every input");
  }
  return mi.transfers;
}

void sort_diagnostics(std::vector<Diagnostic>& ds) {
  std::sort(ds.begin(), ds.end(), [](const Diagnostic& x, const Diagnostic& y) {
    if (x.cls != y.cls) return x.cls < y.cls;
    if (x.method != y.method) return x.method < y.method;
    if (x.pc != y.pc) return x.pc < y.pc;
    return x.code < y.code;
  });
}

std::vector<Diagnostic> lint_class(const jvm::ClassFile& cf) {
  std::vector<Diagnostic> out;
  for (const auto& m : cf.methods) lint_method(cf, m, out);
  sort_diagnostics(out);
  return out;
}

}  // namespace javelin::analysis
