// Static cost estimation: per-block instruction-class counts mirroring the
// interpreter's charging model, weighted by loop-nesting depth, folded
// through the energy table, and summarized interprocedurally over the call
// graph with a recursion cut-off.
//
// The estimate is a *prior*, not a prediction: loops are assumed to run
// `CostOptions::loop_trip_weight` iterations per nesting level, each call
// site folds the callee's summary in once, and call-graph cycles contribute
// a single unrolling (the cycle edge adds nothing and sets `recursive`).
// Related work shows static structure alone under-predicts energy but ranks
// methods well — which is all decision pre-seeding needs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "energy/energy.hpp"
#include "jvm/classfile.hpp"
#include "jvm/verifier.hpp"

namespace javelin::analysis {

struct CostOptions {
  /// Assumed iterations per loop-nesting level when weighting a block.
  std::uint64_t loop_trip_weight = 10;
  /// Nesting levels beyond this stop multiplying (bounds the weights).
  std::int32_t max_weighted_depth = 4;
};

/// Interprocedural static cost summary of one method.
struct StaticCostSummary {
  energy::InstrCounts counts;       ///< Loop-weighted, callees folded in.
  double energy_j = 0.0;            ///< `counts` through the energy table.
  std::int32_t num_blocks = 0;      ///< Reachable basic blocks (this method).
  std::int32_t num_insns = 0;       ///< Bytecode length (this method).
  std::int32_t max_loop_depth = 0;  ///< Deepest loop nest (this method).
  bool recursive = false;           ///< On (or calling into) a cycle.
  std::uint64_t work = 0;           ///< Deterministic effort: blocks walked,
                                    ///< callee work included.
};

/// Memoizing estimator over a resolution set (the loaded classpath). The
/// resolver must implement resolve_class() (ClassSetResolver does) for call
/// sites to fold in callee summaries; unresolvable callees contribute only
/// their invoke overhead.
class CostEstimator {
 public:
  explicit CostEstimator(const jvm::SignatureResolver& resolver,
                         const energy::InstructionEnergyTable& table = {},
                         CostOptions opts = {})
      : resolver_(resolver), table_(table), opts_(opts) {}

  /// Summary for `m`, whose constant pool lives in `cf` (memoized by method
  /// identity; references stay valid for the estimator's lifetime).
  const StaticCostSummary& summarize(const jvm::ClassFile& cf,
                                     const jvm::MethodInfo& m);

 private:
  StaticCostSummary compute(const jvm::ClassFile& cf, const jvm::MethodInfo& m);

  const jvm::SignatureResolver& resolver_;
  energy::InstructionEnergyTable table_;
  CostOptions opts_;
  std::unordered_map<const jvm::MethodInfo*, StaticCostSummary> memo_;
  std::vector<const jvm::MethodInfo*> stack_;  ///< DFS path (recursion cut).
};

/// Resolve a method reference to its declaring class + method, walking the
/// superclass chain like ClassSetResolver::resolve_method. Returns
/// {nullptr, nullptr} when the resolver cannot supply class files.
struct ResolvedMethod {
  const jvm::ClassFile* cls = nullptr;
  const jvm::MethodInfo* method = nullptr;
};
ResolvedMethod resolve_method_class(const jvm::SignatureResolver& resolver,
                                    const jvm::MethodRef& ref);

}  // namespace javelin::analysis
