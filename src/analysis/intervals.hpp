// Abstract-interpretation value-range analysis over verified mini-JVM
// bytecode: an interval lattice on locals and operand-stack slots, solved on
// the shared dataflow framework (dataflow.hpp) with delayed widening and
// descending narrowing sweeps, plus relational array-length facts
// ("this int is < length(array in local s)") and branch-edge refinement via
// an edge-split control-flow graph.
//
// The analysis answers four kinds of questions, all *guaranteed* (sound for
// every normally-completing execution; see the soundness note below):
//  * per-pc bounds proofs: array accesses whose index is proven in
//    [0, length) — consumed by the JIT's Level-3 range-BCE;
//  * per-pc branch feasibility and arithmetic wrap facts — consumed by
//    `javelin_lint --bounds`;
//  * per-pc allocation-length intervals (kNewArray) — consumed by the
//    static energy-bound pass (wcec.hpp) to bound allocation charges;
//  * per-block execution-count bounds from loop trip-count inference on
//    recognized induction variables — the structural half of WCEC.
//
// Soundness model: facts describe executions that complete normally. An
// execution that throws (out-of-bounds, negative array size, div-by-zero)
// aborts the invocation, so "the access at pc completed" may soundly refine
// the index to [0, length) *for the program points it dominates* — the same
// contract the JIT's dominating-access BCE already uses. Arithmetic uses
// 32-bit wrap semantics: a result interval that escapes int32 collapses to
// the full int32 range (never to a wrapped narrow interval).
//
// Fail-closed rules (mirroring lengths.cpp): if the fixpoint hits the
// transfer bound (FixpointStatus::kBoundExhausted), the method's stack
// discipline looks inconsistent, or the CFG is irreducible, `converged` /
// `reducible` report it and every consumer must treat the method as
// fact-free (no proofs, unbounded counts).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/bytecode_cfg.hpp"
#include "jvm/classfile.hpp"
#include "jvm/verifier.hpp"

namespace javelin::analysis {

/// Closed integer interval [lo, hi] over int64. Guest ints are 32-bit, so
/// "top" for a value is [kI32Min, kI32Max]; array lengths live in
/// [0, kI32Max]. int64 arithmetic cannot overflow on int32-bounded inputs.
struct Interval {
  static constexpr std::int64_t kI32Min = INT32_MIN;
  static constexpr std::int64_t kI32Max = INT32_MAX;

  std::int64_t lo = kI32Min;
  std::int64_t hi = kI32Max;

  static Interval top() { return {kI32Min, kI32Max}; }
  static Interval constant(std::int64_t c) { return {c, c}; }
  static Interval len_top() { return {0, kI32Max}; }

  bool is_top() const { return lo == kI32Min && hi == kI32Max; }
  bool singleton() const { return lo == hi; }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }

  /// Hull (lattice join).
  static Interval hull(Interval a, Interval b) {
    return {a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
  }
  /// Intersection clamped to non-empty: an empty intersection keeps `other`.
  /// Use ONLY to clamp consistent data (e.g. a value into len_top()). State
  /// refinement along branch edges must NOT use this fallback — an edge that
  /// is infeasible for the current approximation must drop the state to
  /// bottom instead (see meet_or_kill in intervals.cpp), or the contradictory
  /// interval leaks into joins and widening makes it permanent.
  Interval meet(Interval other) const {
    Interval r{lo > other.lo ? lo : other.lo, hi < other.hi ? hi : other.hi};
    if (r.lo > r.hi) return other;
    return r;
  }

  bool operator==(const Interval&) const = default;
};

/// One argument's externally-known facts for a root analysis (e.g. the
/// containment-oracle test knows the exact invocation arguments; the deploy-
/// time pass knows nothing and passes defaults). Defaults are "no facts".
struct ArgFact {
  Interval value = Interval::top();         ///< Int/byte arguments.
  Interval array_len = Interval::len_top(); ///< Array-ref arguments.
  bool non_null = false;                    ///< Ref argument known non-null.
  /// Ref argument known to be an array (enables the native-code length-load
  /// rule in wcec.cpp, which cannot rely on bytecode typing). Callers must
  /// set `array_len` only together with this flag.
  bool is_array = false;
};

/// Per-pc wrap-arithmetic verdict (only emitted for int arithmetic whose
/// operands were *bounded* — flagging top operands would flag everything).
struct WrapFact {
  std::int32_t pc = 0;
  bool may_wrap = false;  ///< false = proven cannot overflow int32.
};

/// Per-pc branch feasibility (only conditional branches with a decided
/// outcome are listed).
struct BranchFact {
  std::int32_t pc = 0;
  bool always_taken = false;  ///< else never taken.
};

/// Guaranteed out-of-bounds array access (the index interval lies entirely
/// outside every possible [0, length) window).
struct OobFact {
  std::int32_t pc = 0;
};

/// Result of one method's interval analysis.
struct MethodIntervals {
  /// Fixpoint converged and stack discipline held; when false every other
  /// field must be ignored (fail closed).
  bool converged = false;
  /// All retreating edges are dominated back edges. When false, per-block
  /// execution counts are meaningless (set to infinity).
  bool reducible = false;

  BytecodeCfg cfg;  ///< Real-block CFG of the analyzed code.

  /// Per-instruction: 1 = array load/store with index proven in [0, length).
  std::vector<char> proven_inbounds;
  /// Per-instruction: for kNewArray, the element-count interval (meaningless
  /// elsewhere).
  std::vector<Interval> alloc_len;
  /// Per real block: upper bound on executions per invocation (trip-count
  /// products over enclosing loops; +inf when some enclosing loop is
  /// unbounded or the CFG is irreducible). Unreachable blocks get 0.
  std::vector<double> block_count;

  std::vector<BranchFact> branch_facts;  ///< pc-sorted.
  std::vector<OobFact> oob_facts;        ///< pc-sorted.
  std::vector<WrapFact> wrap_facts;      ///< pc-sorted.

  std::uint64_t transfers = 0;  ///< Deterministic pass effort.
};

/// Analyze one verified method of `cf`. `resolver` supplies callee
/// signatures for invoke arity (nullptr, or an unresolvable call site, fails
/// the analysis closed). `args` supplies per-argument facts for the entry
/// state (empty span = no facts, every argument starts at top); extra
/// entries beyond num_args() are ignored.
MethodIntervals analyze_intervals(const jvm::ClassFile& cf,
                                  const jvm::MethodInfo& m,
                                  const jvm::SignatureResolver* resolver,
                                  std::span<const ArgFact> args = {});

}  // namespace javelin::analysis
