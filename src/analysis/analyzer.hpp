// Class-load-time analysis driver.
//
// Runs after verification (the passes assume structurally sound code) and
// bundles the three passes — static cost estimation, offload safety, lint —
// into one per-method record. Optionally emits one `analysis` trace event
// per method into the obs layer (nullptr buffer = zero overhead, the
// convention every other hook site follows). Pass "timings" are
// deterministic work-unit counts, never host clocks, so traces stay
// byte-identical across hosts and worker counts.
#pragma once

#include <string>
#include <vector>

#include "analysis/cost.hpp"
#include "analysis/lint.hpp"
#include "analysis/offload.hpp"
#include "jvm/classfile.hpp"
#include "jvm/verifier.hpp"
#include "obs/trace.hpp"

namespace javelin::analysis {

/// Everything the analyzer knows about one method.
struct MethodAnalysis {
  std::string qualified_name;  ///< "Class.method".
  const jvm::MethodInfo* method = nullptr;
  StaticCostSummary cost;
  OffloadSafety safety;
  std::vector<Diagnostic> diagnostics;  ///< Sorted, this method only.
  std::uint64_t lint_work = 0;
};

class Analyzer {
 public:
  explicit Analyzer(const jvm::SignatureResolver& resolver,
                    const energy::InstructionEnergyTable& table = {},
                    CostOptions cost_opts = {})
      : resolver_(resolver),
        cost_(resolver, table, cost_opts),
        offload_(resolver) {}

  /// Attach a trace buffer (nullptr = disabled, the default).
  void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

  MethodAnalysis analyze_method(const jvm::ClassFile& cf,
                                const jvm::MethodInfo& m);

  /// Analyze every method of `cf`, in declaration order.
  std::vector<MethodAnalysis> analyze_class(const jvm::ClassFile& cf);

 private:
  const jvm::SignatureResolver& resolver_;
  CostEstimator cost_;
  OffloadAnalyzer offload_;
  obs::TraceBuffer* trace_ = nullptr;
};

/// Compact verdict string for traces/CLI, e.g. "offloadable" or
/// "writes-statics,recursive".
std::string safety_verdict(const OffloadSafety& s);

}  // namespace javelin::analysis
