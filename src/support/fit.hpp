// Least-squares curve fitting.
//
// The paper estimates a method's local-execution and remote-execution energy
// as a function of its "size parameter" using curve fitting (Section 3.2,
// accuracy within 2%). We implement ordinary least squares over a polynomial
// basis; the runtime fits degree-2 polynomials of the size parameter, which
// covers the linear and quadratic kernels in the benchmark suite.
#pragma once

#include <cstddef>
#include <vector>

namespace javelin {

/// Coefficients c[0] + c[1]*x + ... + c[d]*x^d.
struct PolyFit {
  std::vector<double> coeffs;

  double eval(double x) const;
};

/// Fit a polynomial of the given degree to (x, y) samples by ordinary least
/// squares (normal equations, Gaussian elimination with partial pivoting).
/// Requires xs.size() == ys.size() and xs.size() >= degree + 1.
PolyFit fit_polynomial(const std::vector<double>& xs,
                       const std::vector<double>& ys, std::size_t degree);

/// Solve the dense linear system A x = b in place. A is row-major n x n.
/// Throws javelin::Error on (numerically) singular systems.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n);

/// Coefficient of determination (R^2) of a fit against samples.
double r_squared(const PolyFit& fit, const std::vector<double>& xs,
                 const std::vector<double>& ys);

}  // namespace javelin
