#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace javelin {

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render() const {
  // Compute column widths over header + all rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < cols; ++c) s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& r : rows_) out += line(r);
  out += rule();
  return out;
}

}  // namespace javelin
