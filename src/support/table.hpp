// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's figures/tables as an
// aligned ASCII table so its output can be diffed against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace javelin {

/// Column-aligned text table with a title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render with box-drawing separators.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace javelin
