// Little-endian byte stream reader/writer.
//
// Shared by the class-file binary format and the wire serializer so both
// layers agree on encoding and both can report exact byte counts (the byte
// count is what the radio model charges for).
//
// The reader is hardened against hostile input: every length field is
// validated against the bytes actually present *before* any allocation, so a
// corrupted 0xFFFFFFFF string length raises FormatError instead of attempting
// a 4 GiB allocation, and the bounds arithmetic cannot overflow.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace javelin {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). Pass a
/// previous return value as `crc` to checksum data incrementally.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t crc = 0) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i)
    crc = detail::kCrc32Table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(const void* p, std::size_t n) { raw(p, n); }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : buf_(buf), end_(buf.size()) {}
  /// Read only the first `limit` bytes of `buf` (e.g. a payload followed by
  /// a checksum trailer the caller has already verified and peeled off).
  ByteReader(const std::vector<std::uint8_t>& buf, std::size_t limit)
      : buf_(buf), end_(limit < buf.size() ? limit : buf.size()) {}

  /// Opt-in shadow mode for readers feeding checked heaps: overruns raise
  /// BoundsFault (a VmError) instead of FormatError, so the deserializer's
  /// faults unify with the arena's shadow-bounds faults and are never
  /// mistaken for a merely-corrupt frame. Default off — every existing
  /// caller keeps the FormatError contract.
  void set_checked(bool checked) { checked_ = checked; }

  std::uint8_t u8() { return buf_[need(1)]; }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::int32_t i32() { return read<std::int32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  double f64() { return read<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    // Validate the length field against the bytes present before touching
    // the allocator: a hostile length must fail cheaply, not via bad_alloc.
    if (n > remaining())
      fail("byte stream: string length field exceeds remaining bytes");
    const std::size_t at = need(n);
    return std::string(reinterpret_cast<const char*>(buf_.data() + at), n);
  }
  void bytes(void* p, std::size_t n) {
    if (n > remaining()) fail("byte stream: byte run exceeds remaining bytes");
    const std::size_t at = need(n);
    std::memcpy(p, buf_.data() + at, n);
  }

  bool at_end() const { return pos_ == end_; }
  std::size_t remaining() const { return end_ - pos_; }

 private:
  template <typename T>
  T read() {
    const std::size_t at = need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + at, sizeof(T));
    return v;
  }
  std::size_t need(std::size_t n) {
    // `n > end_ - pos_` (never `pos_ + n > end_`): the subtraction cannot
    // wrap because pos_ <= end_, whereas the addition can.
    if (n > end_ - pos_) fail("byte stream underflow");
    const std::size_t at = pos_;
    pos_ += n;
    return at;
  }
  [[noreturn]] void fail(const char* what) const {
    if (checked_) throw BoundsFault(std::string("shadow: ") + what);
    throw FormatError(what);
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t end_;
  std::size_t pos_ = 0;
  bool checked_ = false;
};

}  // namespace javelin
