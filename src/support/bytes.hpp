// Little-endian byte stream reader/writer.
//
// Shared by the class-file binary format and the wire serializer so both
// layers agree on encoding and both can report exact byte counts (the byte
// count is what the radio model charges for).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace javelin {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(const void* p, std::size_t n) { raw(p, n); }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8() { return buf_[need(1)]; }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::int32_t i32() { return read<std::int32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  double f64() { return read<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    const std::size_t at = need(n);
    return std::string(reinterpret_cast<const char*>(buf_.data() + at), n);
  }
  void bytes(void* p, std::size_t n) {
    const std::size_t at = need(n);
    std::memcpy(p, buf_.data() + at, n);
  }

  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  T read() {
    const std::size_t at = need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + at, sizeof(T));
    return v;
  }
  std::size_t need(std::size_t n) {
    if (pos_ + n > buf_.size()) throw FormatError("byte stream underflow");
    const std::size_t at = pos_;
    pos_ += n;
    return at;
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace javelin
