// Streaming statistics used by the benchmark harnesses and tests.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace javelin {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample (nearest-rank). Sorts a copy; fine for bench sizes.
double percentile(std::vector<double> xs, double p);

/// Geometric mean of strictly positive samples.
double geomean(const std::vector<double>& xs);

}  // namespace javelin
