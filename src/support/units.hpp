// Unit conventions shared across the simulator.
//
// All energies are joules, powers are watts, times are seconds, data sizes
// are bits unless a name says otherwise. Helpers below make the literals in
// configuration tables read like the paper's figures.
#pragma once

namespace javelin {

constexpr double kNano = 1e-9;
constexpr double kMicro = 1e-6;
constexpr double kMilli = 1e-3;
constexpr double kMega = 1e6;

/// nanojoules -> joules
constexpr double nJ(double v) { return v * kNano; }
/// millijoules -> joules
constexpr double mJ(double v) { return v * kMilli; }
/// milliwatts -> watts
constexpr double mW(double v) { return v * kMilli; }
/// megahertz -> hertz
constexpr double MHz(double v) { return v * kMega; }
/// megabits/second -> bits/second
constexpr double Mbps(double v) { return v * kMega; }

constexpr double kBitsPerByte = 8.0;

}  // namespace javelin
