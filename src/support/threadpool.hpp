// Fixed-size worker pool with a bounded task queue.
//
// The sweep engine fans independent simulation cells out across host cores;
// this is the execution substrate. Design choices, in order of importance:
//
//  * Determinism lives one layer up: tasks must not observe submission or
//    completion order. The pool therefore needs no work stealing and no
//    per-thread queues — a single mutex-protected ring is plenty, because a
//    task here is an entire scenario cell (milliseconds to seconds of work),
//    so queue contention is noise.
//  * The queue is bounded: submit() blocks once `queue_capacity` tasks are
//    waiting, so a producer enumerating millions of cells cannot balloon
//    memory. Capacity 0 is normalized to 1.
//  * submit() returns a std::future; exceptions thrown by the task are
//    captured and rethrown at future.get(), never swallowed.
//  * Graceful shutdown: the destructor (or shutdown()) lets already-queued
//    tasks run to completion before joining the workers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace javelin::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int threads, std::size_t queue_capacity = 256);

  /// Drains queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a callable; blocks while the queue is full. Throws
  /// std::runtime_error if the pool has been shut down. The returned future
  /// delivers the callable's result or rethrows its exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // shared_ptr because std::function requires copyable targets.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Wait for all queued and running tasks, then join. Idempotent; called by
  /// the destructor. After shutdown, submit() throws.
  void shutdown();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  const std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace javelin::support
