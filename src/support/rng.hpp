// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the simulator (channel processes, workload
// generators, scenario input distributions) draw from this generator so
// experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace javelin {

/// xoshiro256** PRNG seeded through SplitMix64.
///
/// Small, fast, and with well-understood statistical quality; we avoid
/// std::mt19937 so that streams are identical across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Sample an index from a discrete distribution given non-negative
  /// weights (need not be normalized). Requires at least one positive
  /// weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Derive an independent child stream (for per-component generators).
  Rng split();

 private:
  std::uint64_t s_[4]{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace javelin
