#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace javelin {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          static_cast<double>(total);
  n_ = total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("geomean: empty sample");
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: non-positive sample");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace javelin
