#include "support/threadpool.hpp"

#include <stdexcept>

namespace javelin::support {

ThreadPool::ThreadPool(int threads, std::size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return stopping_ || queue_.size() < capacity_; });
  if (stopping_)
    throw std::runtime_error("threadpool: submit after shutdown");
  queue_.push_back(std::move(task));
  not_empty_.notify_one();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      not_full_.notify_one();
    }
    // packaged_task captures exceptions into the future; nothing escapes.
    task();
  }
}

}  // namespace javelin::support
