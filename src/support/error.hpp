// Error type shared by all Javelin modules.
#pragma once

#include <stdexcept>
#include <string>

namespace javelin {

/// Base exception for all errors raised by the Javelin libraries.
///
/// Errors that indicate malformed inputs (bad class files, verifier
/// rejections, protocol violations) derive from this type so callers can
/// distinguish "your input is bad" from genuine logic bugs (assert/abort).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a class file fails structural or type verification.
class VerifyError : public Error {
 public:
  explicit VerifyError(const std::string& what) : Error(what) {}
};

/// Raised on malformed serialized data (class files, wire messages).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// Raised by the virtual machine for runtime faults in guest programs
/// (null dereference, array bounds, division by zero, stack overflow).
class VmError : public Error {
 public:
  explicit VmError(const std::string& what) : Error(what) {}
};

/// Raised by the opt-in shadow-bounds machinery (mem/shadow.hpp, and the
/// checked ByteReader mode) when an access escapes every live allocation or
/// declared extent. A guest fault, not a wire-format problem: it derives from
/// VmError so the corrupt-frame handlers that catch FormatError never swallow
/// a heap-bounds violation. Declared here (not in mem/) because the support
/// layer's ByteReader raises it too and support cannot depend on mem.
class BoundsFault : public VmError {
 public:
  explicit BoundsFault(const std::string& what) : VmError(what) {}
};

}  // namespace javelin
