#include "support/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace javelin {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::categorical: no positive weight");
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0xa5a5a5a55a5a5a5aULL);
}

}  // namespace javelin
