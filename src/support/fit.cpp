#include "support/fit.hpp"

#include <cmath>
#include <stdexcept>

#include "support/error.hpp"

namespace javelin {

double PolyFit::eval(double x) const {
  // Horner's rule.
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b,
                                 std::size_t n) {
  if (a.size() != n * n || b.size() != n)
    throw std::invalid_argument("solve_linear: dimension mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    if (std::fabs(a[pivot * n + col]) < 1e-12)
      throw Error("solve_linear: singular system");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t c = row + 1; c < n; ++c) acc -= a[row * n + c] * x[c];
    x[row] = acc / a[row * n + row];
  }
  return x;
}

PolyFit fit_polynomial(const std::vector<double>& xs,
                       const std::vector<double>& ys, std::size_t degree) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("fit_polynomial: size mismatch");
  const std::size_t n = degree + 1;
  if (xs.size() < n)
    throw std::invalid_argument("fit_polynomial: not enough samples");

  // Normal equations: (X^T X) c = X^T y with X the Vandermonde matrix.
  std::vector<double> xtx(n * n, 0.0);
  std::vector<double> xty(n, 0.0);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    // powers[i] = xs[k]^i
    std::vector<double> powers(2 * n - 1, 1.0);
    for (std::size_t i = 1; i < powers.size(); ++i) powers[i] = powers[i - 1] * xs[k];
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) xtx[r * n + c] += powers[r + c];
      xty[r] += powers[r] * ys[k];
    }
  }
  PolyFit fit;
  fit.coeffs = solve_linear(std::move(xtx), std::move(xty), n);
  return fit;
}

double r_squared(const PolyFit& fit, const std::vector<double>& xs,
                 const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty())
    throw std::invalid_argument("r_squared: bad samples");
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - fit.eval(xs[i]);
    ss_res += e * e;
    const double d = ys[i] - mean;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace javelin
