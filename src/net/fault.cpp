#include "net/fault.hpp"

#include <cmath>

namespace javelin::net {

bool FaultPlan::server_down(double t) const {
  if (!enabled || outage_period_s <= 0.0 || outage_duration_s <= 0.0)
    return false;
  const double local = t - outage_phase_s;
  if (local < 0.0) return false;
  const double into = local - std::floor(local / outage_period_s) * outage_period_s;
  return into < outage_duration_s;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {}

void FaultInjector::reset() {
  rng_.reseed(plan_.seed);
  bad_ = false;
  counters_ = Counters{};
}

bool FaultInjector::message_lost() {
  ++counters_.messages;
  if (trace_) trace_->count(obs::Counter::kFaultMessages);
  // Fixed draw count per message: one transition draw + one loss draw.
  const double u_trans = rng_.next_double();
  const double u_loss = rng_.next_double();
  if (bad_) {
    if (u_trans < plan_.ge_p_bad_to_good) bad_ = false;
  } else {
    if (u_trans < plan_.ge_p_good_to_bad) bad_ = true;
  }
  const double p = bad_ ? plan_.ge_loss_bad : plan_.ge_loss_good;
  const bool lost = u_loss < p;
  if (lost) {
    ++counters_.losses;
    if (trace_) trace_->count(obs::Counter::kFaultLosses);
  }
  return lost;
}

double FaultInjector::latency_spike() {
  if (!sample(plan_.spike_p)) return 0.0;
  ++counters_.spikes;
  if (trace_) trace_->count(obs::Counter::kFaultSpikes);
  return plan_.spike_seconds;
}

void FaultInjector::corrupt(std::vector<std::uint8_t>& bytes) {
  ++counters_.corruptions;
  if (trace_) trace_->count(obs::Counter::kFaultCorruptions);
  if (bytes.empty()) return;
  if (bytes.size() > 1 && rng_.bernoulli(0.5)) {
    // Truncate to a strict prefix (possibly empty).
    bytes.resize(static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1)));
  } else {
    const auto byte_at = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    const auto bit = static_cast<unsigned>(rng_.uniform_int(0, 7));
    bytes[byte_at] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

}  // namespace javelin::net
