// Guest object serialization (the Java object-serialization analogue).
//
// The offload framework (paper Fig 4) ships method parameters and results
// between client and server as serialized object graphs. This serializer
// walks the guest heap: arrays (all element kinds, including ref arrays),
// objects (fields in layout order, superclass fields first), with back
// references for shared/cyclic structure. Classes are identified by name so
// the two JVMs need not share ids.
//
// When `charge` is set, the walk is billed to the device's core: each element
// read/written goes through the cache model at its real heap address plus a
// small ALU cost — serialization is client CPU work the paper's energy
// accounting must include.
#pragma once

#include <vector>

#include "jvm/vm.hpp"

namespace javelin::net {

/// Serialize one value (possibly a whole object graph) from `vm`'s heap.
std::vector<std::uint8_t> serialize_value(const jvm::Jvm& vm, jvm::Value v,
                                          bool charge);

/// Deserialize into `vm`'s heap; allocates objects/arrays as needed.
/// Note that potential methods in this framework *return* their outputs
/// (rather than mutating argument objects), so deserializing the result is
/// sufficient to transfer remote side effects back to the caller.
jvm::Value deserialize_value(jvm::Jvm& vm, const std::vector<std::uint8_t>& bytes,
                             bool charge);

}  // namespace javelin::net
