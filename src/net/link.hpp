// The simulated wireless link.
//
// Transfers charge the *client's* radio chain (the server is wall-powered):
// uplink at the power-amplifier class chosen by power control, downlink at
// the receiver-chain power. An optional loss probability models prolonged
// loss of connectivity (paper Section 3.2: when a response does not arrive
// within a threshold, the client falls back to local execution).
//
// Loss models, combined independently per message:
//  * legacy `set_loss_probability(p)` — the product default: the probability
//    that a whole request/response *exchange* is lost, sampled once on the
//    uplink (a lost exchange charges only the uplink energy, matching the
//    paper's "response never arrives" event);
//  * `set_direction_loss(up, down)` — per-direction Bernoulli loss: uplink
//    and downlink messages are sampled independently, so a lost *downlink*
//    charges the full uplink + server wait + downlink receive energy before
//    the client discovers the failure;
//  * an attached net::FaultInjector — Gilbert–Elliott burst loss (and CRC
//    framing overhead, see below).
// Each model draws from the RNG only while active, so enabling one never
// perturbs the stream of another (and the default configuration draws
// nothing at all).
//
// When a FaultInjector is attached, every message additionally carries the
// 4-byte CRC32 frame trailer over the air (kFrameCrcBytes); in fault-free
// mode the trailer is not charged so the paper's Fig 8 byte counts stay
// pinned.
#pragma once

#include <memory>

#include "energy/energy.hpp"
#include "net/fault.hpp"
#include "radio/radio.hpp"
#include "support/rng.hpp"

namespace javelin::net {

class Link {
 public:
  explicit Link(radio::CommModel comm = radio::CommModel{},
                std::uint64_t seed = 1)
      : comm_(comm), rng_(seed) {}

  /// Probability that a whole request/response exchange is lost (legacy
  /// whole-exchange semantics, sampled on the uplink).
  void set_loss_probability(double p) { loss_ = p; }
  double loss_probability() const { return loss_; }

  /// Independent per-direction Bernoulli loss probabilities.
  void set_direction_loss(double up, double down) {
    up_loss_ = up;
    down_loss_ = down;
  }
  double uplink_loss_probability() const { return up_loss_; }
  double downlink_loss_probability() const { return down_loss_; }

  /// Attach a fault-injection schedule (burst loss + CRC frame charging).
  /// Plans with `enabled == false` are ignored.
  void attach_faults(const FaultPlan& plan) {
    if (plan.enabled) {
      injector_ = std::make_unique<FaultInjector>(plan);
      if (trace_) injector_->set_trace(trace_);
    }
  }
  /// The attached injector, or nullptr in fault-free mode. The client uses
  /// it for corruption and latency-spike decisions on its side of the wire.
  FaultInjector* fault_injector() { return injector_.get(); }

  /// Observability hook (null = disabled, the default). Counts over-the-air
  /// messages and framed bytes per direction, and forwards to the attached
  /// fault injector (order-independent with attach_faults).
  void set_trace(obs::TraceBuffer* t) {
    trace_ = t;
    if (injector_) injector_->set_trace(t);
  }

  struct Transfer {
    double seconds = 0.0;
    bool lost = false;
  };

  /// Uplink: client transmits `bytes` with PA setting `pa`. Charges the
  /// client meter. The energy is spent even if the transfer is lost.
  Transfer client_send(std::uint64_t bytes, radio::PowerClass pa,
                       energy::EnergyMeter& client_meter) {
    const std::uint64_t framed = bytes + (injector_ ? kFrameCrcBytes : 0);
    Transfer t;
    t.seconds = comm_.tx_seconds(framed);
    client_meter.add(energy::Subsystem::kCommTx, comm_.tx_energy(framed, pa));
    if (trace_) {
      trace_->count(obs::Counter::kRadioTxMessages);
      trace_->count(obs::Counter::kRadioTxBytes, framed);
    }
    if (loss_ > 0.0 && rng_.bernoulli(loss_)) t.lost = true;
    if (up_loss_ > 0.0 && rng_.bernoulli(up_loss_)) t.lost = true;
    if (injector_ && injector_->uplink_lost()) t.lost = true;
    return t;
  }

  /// Downlink: client receives `bytes`. Charges the client meter. A lost
  /// downlink still charges the receive window (the radio listened).
  Transfer client_recv(std::uint64_t bytes, energy::EnergyMeter& client_meter) {
    const std::uint64_t framed = bytes + (injector_ ? kFrameCrcBytes : 0);
    Transfer t;
    t.seconds = comm_.rx_seconds(framed);
    client_meter.add(energy::Subsystem::kCommRx, comm_.rx_energy(framed));
    if (trace_) {
      trace_->count(obs::Counter::kRadioRxMessages);
      trace_->count(obs::Counter::kRadioRxBytes, framed);
    }
    if (down_loss_ > 0.0 && rng_.bernoulli(down_loss_)) t.lost = true;
    if (injector_ && injector_->downlink_lost()) t.lost = true;
    return t;
  }

  const radio::CommModel& comm() const { return comm_; }

 private:
  radio::CommModel comm_;
  double loss_ = 0.0;
  double up_loss_ = 0.0;
  double down_loss_ = 0.0;
  Rng rng_;
  std::unique_ptr<FaultInjector> injector_;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace javelin::net
